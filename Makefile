GO ?= go

.PHONY: all build test vet race racecp bench crashcheck ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# racecp is the focused race gate for the parallel CP engine: the smoke
# tests plus the parallel-CP regression and determinism tests.
racecp:
	$(GO) test -race ./... -run 'TestSmoke|TestParallelCP'

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
	$(GO) run ./cmd/waflbench -exp agedvol -benchjson BENCH_PR4.json
	$(GO) run ./cmd/waflbench -exp parallelcp -benchjson BENCH_PR5.json

# crashcheck runs the bounded crash-schedule fault-injection sweep: crash at
# dozens of reproducible points (event indices + CP phase boundaries),
# recover, fsck, and verify every acknowledged op — twice, via double crash.
crashcheck:
	$(GO) run ./cmd/waflbench -crashsweep -crashpoints 8 -crashseeds 1,2 -crashphases 9

# ci is the gate run before merging: vet, build, the full test suite under
# the race detector, and the bounded crash sweep.
ci: vet build race racecp crashcheck

clean:
	rm -f wafltop waflbench *.test
