GO ?= go

.PHONY: all build test vet race racecp bench crashcheck affcheck clustercheck overloadcheck clonecheck ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# racecp is the focused race gate for the parallel CP engine: the smoke
# tests plus the parallel-CP regression and determinism tests.
racecp:
	$(GO) test -race ./... -run 'TestSmoke|TestParallelCP'

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
	$(GO) run ./cmd/waflbench -exp agedvol -benchjson BENCH_PR4.json
	$(GO) run ./cmd/waflbench -exp parallelcp -benchjson BENCH_PR5.json
	$(GO) run ./cmd/waflbench -exp flexgroup -members 4 -benchjson BENCH_PR6.json
	$(GO) run ./cmd/waflbench -exp overload -benchjson BENCH_PR7.json
	$(GO) run ./cmd/waflbench -exp clonefleet -benchjson BENCH_PR8.json

# crashcheck runs the bounded crash-schedule fault-injection sweep: crash at
# dozens of reproducible points (event indices + CP phase boundaries),
# recover, fsck, and verify every acknowledged op — twice, via double crash.
crashcheck:
	$(GO) run ./cmd/waflbench -crashsweep -crashpoints 8 -crashseeds 1,2 -crashphases 9

# affcheck enforces the single-point member resolution rule: among the
# facade sources, only member.go may index the Waffinity hierarchy's
# aggregate array directly — everything else routes through the Member
# helpers (volAffs/stripeAff/logicalAff).
affcheck:
	@bad=$$(grep -ln 'Aggrs\[' *.go | grep -v '^member\.go$$' || true); \
	if [ -n "$$bad" ]; then \
		echo "affcheck: direct h.Aggrs[...] access outside member.go:"; \
		grep -n 'Aggrs\[' $$bad; \
		exit 1; \
	fi; \
	echo "affcheck OK: Aggrs[] indexed only in member.go"

# overloadcheck runs the open-loop burst study (admission control off vs
# on) and asserts the SLO contract: without admission the burst drives the
# latency-sensitive p99.9 into open-loop blowup; with admission the
# controller sheds bulk load and the latency-sensitive tail stays bounded.
overloadcheck:
	$(GO) run ./cmd/waflbench -overloadcheck

# clustercheck runs the bounded multi-member crash sweep: one member of a
# two-member cluster is crashed at reproducible event indices while the
# survivor serves traffic, then recovered in place (plus an immediate double
# crash), with per-member fsck and oracle verification.
clustercheck:
	$(GO) run ./cmd/waflbench -clustersweep -crashpoints 6 -crashseeds 1,2

# clonecheck runs the clone/restore crash sweep: the in-repo per-boundary
# crash tests (clone create, clone split, SnapRestore, each crashed at all
# nine CP phase boundaries) plus the harness's scripted clone-ops window
# (snapshot -> clone -> divergence -> split -> restore) crashed at 18
# consecutive boundaries, every leg checked against the clone oracle + fsck.
clonecheck:
	$(GO) test -count=1 -run 'TestClone|TestSnapRestore|TestBCacheRestore' .
	$(GO) run ./cmd/waflbench -clonecheck -clonepoints 18

# ci is the gate run before merging: vet, build, the affinity-access gate,
# the full test suite under the race detector, the bounded crash sweeps
# (whole-node, single-member, and clone/restore), and the admission-control
# SLO check.
ci: vet build affcheck race racecp crashcheck clustercheck clonecheck overloadcheck

clean:
	rm -f wafltop waflbench *.test
