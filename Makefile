GO ?= go

.PHONY: all build test vet race bench ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# ci is the gate run before merging: vet, build, and the full test suite
# under the race detector.
ci: vet build race

clean:
	rm -f wafltop waflbench *.test
