package wafl

import (
	"testing"
)

// fullPayloadConfig verifies byte-exact content end to end.
func fullPayloadConfig() Config {
	cfg := smallConfig()
	cfg.PayloadBytes = 4096
	cfg.NVRAMHalfBytes = 1 << 20
	return cfg
}

func TestDataIntegrityThroughCP(t *testing.T) {
	sys, err := NewSystem(fullPayloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	ino := sys.CreateFileDirect(0, 1<<14)
	const nblocks = 500
	sys.ClientThread("writer", func(c *ClientCtx) {
		for i := 0; i < nblocks; i += 4 {
			c.Write(0, ino, FBN(i), 4)
		}
	})
	sys.Run(500 * Millisecond)
	if err := sys.Quiesce(); err != nil {
		t.Fatal(err)
	}
	for fbn := FBN(0); fbn < nblocks; fbn++ {
		if err := sys.VerifyAgainst(0, ino, fbn); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFsckCleanAfterQuiesce(t *testing.T) {
	sys, err := NewSystem(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	inos := []uint64{
		sys.CreateFileDirect(0, 1<<14),
		sys.CreateFileDirect(1, 1<<14),
	}
	sys.ClientThread("w0", func(c *ClientCtx) {
		for i := 0; c.Alive() && i < 3000; i++ {
			c.Write(0, inos[0], FBN((i*8)%4096), 8)
		}
	})
	sys.ClientThread("w1", func(c *ClientCtx) {
		for i := 0; c.Alive() && i < 3000; i++ {
			c.Write(1, inos[1], FBN(int(c.Rand(4096))), 4)
		}
	})
	sys.Run(2 * Second)
	if err := sys.Quiesce(); err != nil {
		t.Fatal(err)
	}
	rep := sys.Fsck()
	t.Logf("%s", rep)
	if !rep.OK() {
		for _, e := range rep.Errors {
			t.Errorf("fsck: %s", e)
		}
		t.Fatalf("fsck failed: %s", rep)
	}
	if rep.Files != 2 {
		t.Fatalf("fsck found %d files, want 2", rep.Files)
	}
}

func TestCrashRecoveryRoundTrip(t *testing.T) {
	sys, err := NewSystem(fullPayloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	ino := sys.CreateFileDirect(0, 1<<14)
	written := 0
	sys.ClientThread("writer", func(c *ClientCtx) {
		for i := 0; c.Alive() && i < 2000; i++ {
			c.Write(0, ino, FBN(i%2048), 2)
			written = i
		}
	})
	// Crash mid-run, with CPs completed and operations still in NVRAM.
	sys.Run(300 * Millisecond)
	if sys.CPCount() == 0 {
		t.Fatal("test needs at least one committed CP before the crash")
	}
	sys.Crash()
	rec, err := sys.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if written < 10 {
		t.Fatalf("only %d ops before crash", written)
	}
	// Every acknowledged write must be present after recovery (last CP +
	// NVRAM replay).
	checked := 0
	for fbn := FBN(0); fbn < 2048 && checked < 500; fbn++ {
		got := rec.VerifyRead(0, ino, fbn)
		if got == nil {
			continue // hole: this FBN was beyond the written range
		}
		if err := rec.VerifyAgainst(0, ino, fbn); err != nil {
			t.Fatal(err)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no blocks recovered")
	}
	// The recovered system must be fully usable: flush replayed state and
	// fsck it.
	if err := rec.Quiesce(); err != nil {
		t.Fatal(err)
	}
	rep := rec.Fsck()
	if !rep.OK() {
		for _, e := range rep.Errors {
			t.Errorf("fsck: %s", e)
		}
		t.Fatalf("post-recovery fsck failed: %s", rep)
	}
}

func TestCrashRecoveryWithCreates(t *testing.T) {
	sys, err := NewSystem(fullPayloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	var inos []uint64
	sys.ClientThread("creator", func(c *ClientCtx) {
		for i := 0; c.Alive() && i < 50; i++ {
			ino := c.Create(0, 256)
			c.Write(0, ino, 0, 1)
			inos = append(inos, ino)
		}
	})
	sys.Run(200 * Millisecond)
	sys.Crash()
	rec, err := sys.Recover()
	if err != nil {
		t.Fatal(err)
	}
	for _, ino := range inos {
		if err := rec.VerifyAgainst(0, ino, 0); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, uint64, Time) {
		sys, err := NewSystem(smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		ino := sys.CreateFileDirect(0, 1<<14)
		sys.ClientThread("w", func(c *ClientCtx) {
			for i := 0; c.Alive(); i++ {
				c.Write(0, ino, FBN(int(c.Rand(8192))), 8)
			}
		})
		sys.Run(300 * Millisecond)
		return sys.m0().opsDone, sys.CPCount(), sys.Now()
	}
	ops1, cps1, _ := run()
	ops2, cps2, _ := run()
	if ops1 != ops2 || cps1 != cps2 {
		t.Fatalf("nondeterministic: ops %d vs %d, cps %d vs %d", ops1, ops2, cps1, cps2)
	}
}
