package wafl

import (
	"testing"
)

// smallConfig returns a fast configuration for unit tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Cores = 8
	cfg.RAIDGroups = 2
	cfg.DataDrives = 3
	cfg.DriveBlocks = 16384
	cfg.AAStripes = 1024
	cfg.Volumes = 2
	cfg.VolumeBlocks = 1 << 15
	cfg.NVRAMHalfBytes = 2 << 20
	cfg.StripesPerVolume = 8
	cfg.RangesPerVBN = 4
	cfg.Allocator.MaxCleaners = 4
	cfg.Allocator.InitialCleaners = 2
	return cfg
}

func TestSmokeSequentialWrites(t *testing.T) {
	sys, err := NewSystem(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	ino := sys.CreateFileDirect(0, 1<<14)
	sys.ClientThread("writer", func(c *ClientCtx) {
		i := 0
		for c.Alive() {
			c.Write(0, ino, FBN((i*8)%8192), 8)
			i++
		}
	})
	res := sys.Measure(50*Millisecond, 200*Millisecond)
	t.Logf("results: %s", res)
	t.Logf("infra: %s", sys.InfraStats())
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if res.CPs == 0 {
		t.Fatal("no consistency points ran")
	}
	if res.Cores.Cleaner == 0 || res.Cores.Infra == 0 {
		t.Fatalf("no allocator work measured: %+v", res.Cores)
	}
}
