package storage

import (
	"bytes"
	"testing"

	"wafl/internal/block"
	"wafl/internal/sim"
)

func testBlock(tag byte) []byte {
	b := block.New()
	for i := range b {
		b[i] = tag
	}
	return b
}

func TestWriteThenRead(t *testing.T) {
	s := sim.New(2, 1)
	d := NewDrive(s, "d0", SSD, 1024)
	var got [][]byte
	s.Go("io", sim.CatOther, func(th *sim.Thread) {
		d.WriteSync(th, []WriteReq{{DBN: 5, Data: testBlock(0xAA)}, {DBN: 6, Data: testBlock(0xBB)}})
		got = d.ReadSync(th, []block.DBN{5, 6, 7})
	})
	s.Run(sim.Time(sim.Second))
	if len(got) != 3 {
		t.Fatalf("got %d blocks", len(got))
	}
	if !bytes.Equal(got[0], testBlock(0xAA)) || !bytes.Equal(got[1], testBlock(0xBB)) {
		t.Fatal("read data mismatch")
	}
	if got[2] != nil {
		t.Fatal("never-written block should read nil")
	}
}

func TestServiceTimeModel(t *testing.T) {
	s := sim.New(1, 1)
	d := NewDrive(s, "d0", Profile{Name: "p", PerIO: 100 * sim.Microsecond, PerBlock: 10 * sim.Microsecond}, 1024)
	var end sim.Time
	s.Go("io", sim.CatOther, func(th *sim.Thread) {
		d.WriteSync(th, []WriteReq{{DBN: 1, Data: testBlock(1)}, {DBN: 2, Data: testBlock(2)}, {DBN: 3, Data: testBlock(3)}})
		end = th.Now()
	})
	s.Run(sim.Time(sim.Second))
	if end != sim.Time(130*sim.Microsecond) {
		t.Fatalf("3-block write completed at %v, want 130us", end)
	}
}

func TestFCFSQueueing(t *testing.T) {
	// Two I/Os submitted back-to-back are serviced serially.
	s := sim.New(4, 1)
	d := NewDrive(s, "d0", Profile{Name: "p", PerIO: 100 * sim.Microsecond, PerBlock: 0}, 1024)
	var ends []sim.Time
	d.Write([]WriteReq{{DBN: 1, Data: testBlock(1)}}, func() { ends = append(ends, s.Now()) })
	d.Write([]WriteReq{{DBN: 2, Data: testBlock(2)}}, func() { ends = append(ends, s.Now()) })
	s.Run(sim.Time(sim.Second))
	if len(ends) != 2 || ends[0] != sim.Time(100*sim.Microsecond) || ends[1] != sim.Time(200*sim.Microsecond) {
		t.Fatalf("ends = %v, want [100us 200us]", ends)
	}
}

func TestCrashDropsInFlightWrites(t *testing.T) {
	s := sim.New(1, 1)
	d := NewDrive(s, "d0", Profile{Name: "p", PerIO: 100 * sim.Microsecond, PerBlock: 0}, 1024)
	committed := false
	d.Write([]WriteReq{{DBN: 1, Data: testBlock(1)}}, func() { committed = true })
	// Crash at 50us, before the 100us completion.
	s.After(50*sim.Microsecond, func() { d.DropInFlight() })
	s.Run(sim.Time(sim.Second))
	if committed {
		t.Fatal("in-flight write completed despite crash")
	}
	if d.Peek(1) != nil {
		t.Fatal("in-flight write landed on media despite crash")
	}
}

func TestCrashPreservesCompletedWrites(t *testing.T) {
	s := sim.New(1, 1)
	d := NewDrive(s, "d0", Profile{Name: "p", PerIO: 100 * sim.Microsecond, PerBlock: 0}, 1024)
	d.Write([]WriteReq{{DBN: 1, Data: testBlock(7)}}, nil)
	s.After(200*sim.Microsecond, func() { d.DropInFlight() })
	s.Run(sim.Time(sim.Second))
	if !bytes.Equal(d.Peek(1), testBlock(7)) {
		t.Fatal("completed write lost by crash")
	}
}

func TestStats(t *testing.T) {
	s := sim.New(1, 1)
	d := NewDrive(s, "d0", SSD, 1024)
	s.Go("io", sim.CatOther, func(th *sim.Thread) {
		d.WriteSync(th, []WriteReq{{DBN: 1, Data: testBlock(1)}, {DBN: 2, Data: testBlock(2)}})
		d.ReadSync(th, []block.DBN{1})
	})
	s.Run(sim.Time(sim.Second))
	st := d.Stats()
	if st.WriteIOs != 1 || st.BlocksWritten != 2 || st.ReadIOs != 1 || st.BlocksRead != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BusyTime == 0 {
		t.Fatal("busy time not accounted")
	}
}

func TestOutOfRangeWritePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range write")
		}
	}()
	s := sim.New(1, 1)
	d := NewDrive(s, "d0", SSD, 10)
	d.Write([]WriteReq{{DBN: 10, Data: testBlock(1)}}, nil)
}

func TestEmptyIO(t *testing.T) {
	s := sim.New(1, 1)
	d := NewDrive(s, "d0", SSD, 10)
	called := false
	d.Write(nil, func() { called = true })
	s.Run(sim.Time(sim.Second))
	if !called {
		t.Fatal("empty write should still complete")
	}
	if st := d.Stats(); st.WriteIOs != 0 {
		t.Fatal("empty write should not count as an I/O")
	}
}

// stubInjector is a programmable Injector for drive-level tests.
type stubInjector struct {
	writeFault  WriteFault
	readFault   ReadFault
	crashPrefix int
	peekFail    map[block.DBN]int // dbn -> remaining failures
}

func (in *stubInjector) WriteFault(string, int) WriteFault { return in.writeFault }
func (in *stubInjector) ReadFault(string, int) ReadFault   { return in.readFault }
func (in *stubInjector) CrashPrefix(string, int) int       { return in.crashPrefix }
func (in *stubInjector) PeekFault(_ string, dbn block.DBN) bool {
	if in.peekFail == nil || in.peekFail[dbn] == 0 {
		return false
	}
	in.peekFail[dbn]--
	return true
}

func TestTornWriteAtCrash(t *testing.T) {
	s := sim.New(1, 1)
	d := NewDrive(s, "d0", SSD, 1024)
	d.SetInjector(&stubInjector{crashPrefix: 2})
	fired := false
	d.Write([]WriteReq{
		{DBN: 10, Data: testBlock(1)},
		{DBN: 11, Data: testBlock(2)},
		{DBN: 12, Data: testBlock(3)},
	}, func() { fired = true })
	// Crash before the I/O completes: only the 2-block prefix lands.
	d.DropInFlight()
	s.Run(sim.Time(sim.Second))
	if fired {
		t.Fatal("completion fired for a crashed I/O")
	}
	if d.Peek(10) == nil || d.Peek(11) == nil {
		t.Fatal("torn-write prefix did not land")
	}
	if d.Peek(12) != nil {
		t.Fatal("torn-write suffix landed")
	}
	st := d.Stats()
	if st.TornWrites != 1 || st.TornBlocksLost != 1 {
		t.Fatalf("torn stats = %+v", st)
	}
	if d.InflightWrites() != 0 {
		t.Fatal("inflight list not cleared by crash")
	}
}

func TestUntornCrashLandsNothing(t *testing.T) {
	s := sim.New(1, 1)
	d := NewDrive(s, "d0", SSD, 1024)
	d.Write([]WriteReq{{DBN: 3, Data: testBlock(9)}}, nil)
	d.DropInFlight()
	s.Run(sim.Time(sim.Second))
	if d.Peek(3) != nil {
		t.Fatal("in-flight write landed without injector")
	}
}

func TestDroppedWriteCompletionNeverFires(t *testing.T) {
	s := sim.New(1, 1)
	d := NewDrive(s, "d0", SSD, 1024)
	d.SetInjector(&stubInjector{writeFault: WriteFault{Drop: true}})
	fired := false
	d.Write([]WriteReq{{DBN: 7, Data: testBlock(4)}}, func() { fired = true })
	s.Run(sim.Time(sim.Second))
	if fired {
		t.Fatal("dropped I/O completed")
	}
	if d.Peek(7) != nil {
		t.Fatal("dropped I/O landed")
	}
	if d.Stats().DroppedIOs != 1 || d.InflightWrites() != 1 {
		t.Fatalf("stats = %+v inflight=%d", d.Stats(), d.InflightWrites())
	}
	// A later crash can still tear the lost I/O's prefix onto the media.
	d.inj = &stubInjector{crashPrefix: 1}
	d.DropInFlight()
	if d.Peek(7) == nil {
		t.Fatal("crash prefix of lost I/O did not land")
	}
}

func TestDelayedWriteCompletion(t *testing.T) {
	s := sim.New(1, 1)
	plain := NewDrive(s, "p", SSD, 64)
	delayed := NewDrive(s, "q", SSD, 64)
	delayed.SetInjector(&stubInjector{writeFault: WriteFault{Delay: 500 * sim.Microsecond}})
	var tPlain, tDelayed sim.Time
	plain.Write([]WriteReq{{DBN: 1, Data: testBlock(1)}}, func() { tPlain = s.Now() })
	delayed.Write([]WriteReq{{DBN: 1, Data: testBlock(1)}}, func() { tDelayed = s.Now() })
	s.Run(sim.Time(sim.Second))
	if tDelayed != tPlain+sim.Time(500*sim.Microsecond) {
		t.Fatalf("delayed completion at %v, plain at %v", tDelayed, tPlain)
	}
	if delayed.Stats().DelayedIOs != 1 {
		t.Fatalf("stats = %+v", delayed.Stats())
	}
}

func TestPeekCheckedFaults(t *testing.T) {
	s := sim.New(1, 1)
	d := NewDrive(s, "d0", SSD, 64)
	var wrote bool
	d.Write([]WriteReq{{DBN: 2, Data: testBlock(5)}}, func() { wrote = true })
	s.Run(sim.Time(sim.Second))
	if !wrote {
		t.Fatal("setup write did not complete")
	}
	d.SetInjector(&stubInjector{peekFail: map[block.DBN]int{2: 1}})
	if _, ok := d.PeekChecked(2); ok {
		t.Fatal("first peek should fail (transient)")
	}
	if b, ok := d.PeekChecked(2); !ok || !bytes.Equal(b, testBlock(5)) {
		t.Fatal("retry peek should succeed with committed data")
	}
	if d.Stats().PeekErrors != 1 {
		t.Fatalf("stats = %+v", d.Stats())
	}
	// The god-view Peek is never subject to injection.
	d.SetInjector(&stubInjector{peekFail: map[block.DBN]int{2: 100}})
	if !bytes.Equal(d.Peek(2), testBlock(5)) {
		t.Fatal("raw Peek must bypass faults")
	}
}
