// Package storage simulates persistent drives: per-drive FCFS service
// queues with configurable service-time profiles (SSD, SAS HDD, and the
// hybrid Flash Pool models used by the paper's testbeds), plus the stable
// block store that gives the simulated file system real crash semantics —
// a block's content changes only when its write I/O completes.
package storage

import (
	"fmt"

	"wafl/internal/block"
	"wafl/internal/obs"
	"wafl/internal/sim"
)

// Profile describes a drive's service-time model. An I/O of n blocks
// occupies the drive for PerIO + n*PerBlock of simulated time; I/Os on one
// drive are serviced FCFS with no overlap, which models a single-spindle or
// single-channel device. Enterprise arrays get their parallelism across
// drives, which is exactly the behaviour the write allocator's
// equal-progress objective (paper §IV-D, objective 3) exists to exploit.
type Profile struct {
	Name     string
	PerIO    sim.Duration // fixed per-I/O overhead (seek/rotate or channel setup)
	PerBlock sim.Duration // transfer time per 4 KiB block
}

// Canonical drive profiles used by the experiments.
var (
	// SSD models the all-SSD mid-range system of §V-A.
	SSD = Profile{Name: "ssd", PerIO: 60 * sim.Microsecond, PerBlock: 2 * sim.Microsecond}
	// HDD models the SAS drives of §V-C: scheduled, write-cached large
	// writes, so the effective per-I/O overhead is well below a raw seek.
	HDD = Profile{Name: "hdd", PerIO: 1200 * sim.Microsecond, PerBlock: 15 * sim.Microsecond}
	// FlashPool models the hybrid SSD+HDD testbed of §V-B: HDD capacity
	// behind an SSD write cache, giving sub-HDD effective write latency.
	FlashPool = Profile{Name: "flashpool", PerIO: 500 * sim.Microsecond, PerBlock: 6 * sim.Microsecond}
)

// WriteReq is a single-block write within a multi-block drive I/O.
type WriteReq struct {
	DBN  block.DBN
	Data []byte // must remain immutable once submitted (CoW guarantees this)
}

// WriteFault describes how an injector perturbs one write I/O.
type WriteFault struct {
	// Drop loses the I/O entirely: its completion never fires and its data
	// lands only if a later crash tears a prefix onto the media. The drive
	// still spends the service time (the controller accepted the I/O).
	Drop bool
	// Delay postpones the completion callback (and the media update) by the
	// given simulated time without occupying the drive — a controller or
	// interrupt hiccup.
	Delay sim.Duration
}

// ReadFault describes how an injector perturbs one read I/O.
type ReadFault struct {
	Delay sim.Duration
}

// Injector is the drive-level fault-injection hook. All methods are called
// synchronously from simulation context and must be deterministic — the
// crash-schedule sweep depends on (seed, event index) reproducing the same
// run. internal/faultinject provides the standard implementation.
type Injector interface {
	// WriteFault is consulted once per submitted write I/O.
	WriteFault(drive string, nblocks int) WriteFault
	// ReadFault is consulted once per submitted read I/O.
	ReadFault(drive string, nblocks int) ReadFault
	// PeekFault reports whether this media read attempt fails (a checksum
	// or media error surfaced to the mount/verification path). Transient
	// faults fail once and succeed on retry; persistent faults keep failing
	// and force RAID reconstruction.
	PeekFault(drive string, dbn block.DBN) bool
	// CrashPrefix is consulted for each write I/O still in flight when the
	// power fails: it returns how many of the I/O's first blocks made it to
	// the media (0..nblocks). 0 models the default all-or-nothing drop; a
	// positive value models a torn multi-block write.
	CrashPrefix(drive string, nblocks int) int
}

// Stats holds cumulative per-drive I/O statistics.
type Stats struct {
	ReadIOs       uint64
	WriteIOs      uint64
	BlocksRead    uint64
	BlocksWritten uint64
	BusyTime      sim.Duration // total time the drive was servicing I/O

	// Fault-injection outcomes.
	DroppedIOs     uint64 // write I/Os lost (completion never fired)
	DelayedIOs     uint64 // I/Os whose completion was delayed
	TornWrites     uint64 // in-flight writes torn by a crash (prefix landed)
	TornBlocksLost uint64 // blocks of torn writes that did not land
	PeekErrors     uint64 // media read attempts failed by injection
}

// Drive is a simulated drive: an array of blocks plus a service queue.
type Drive struct {
	s       *sim.Scheduler
	name    string
	profile Profile
	nblocks block.DBN

	// media is the stable storage image; entries are nil until first
	// written. Writes land at I/O completion time, never earlier, so a
	// simulated crash (dropping all in-memory state and pending I/O)
	// leaves exactly the committed image.
	media [][]byte

	busyUntil sim.Time
	epoch     uint64 // bumped by DropInFlight; stale completions are discarded
	obsTid    int32  // interned trace track id + 1; 0 = unset
	stats     Stats

	// inj is the optional fault-injection hook; nil means no faults.
	inj Injector
	// inflight tracks submitted-but-incomplete write I/Os in submission
	// order, so a crash can tear them (land a prefix) deterministically.
	inflight []*inflightWrite
}

// inflightWrite is one submitted write I/O awaiting completion.
type inflightWrite struct {
	reqs []WriteReq
}

// track returns the drive's trace track id, interning it on first use.
func (d *Drive) track(tr *obs.Tracer) int32 {
	if d.obsTid == 0 {
		d.obsTid = tr.Track(obs.PidStorage, d.name) + 1
	}
	return d.obsTid - 1
}

// NewDrive creates a drive of nblocks blocks with the given service profile.
func NewDrive(s *sim.Scheduler, name string, profile Profile, nblocks block.DBN) *Drive {
	return &Drive{
		s:       s,
		name:    name,
		profile: profile,
		nblocks: nblocks,
		media:   make([][]byte, nblocks),
	}
}

// Name returns the drive's debug name.
func (d *Drive) Name() string { return d.name }

// Blocks returns the drive capacity in blocks.
func (d *Drive) Blocks() block.DBN { return d.nblocks }

// Profile returns the drive's service-time profile.
func (d *Drive) Profile() Profile { return d.profile }

// Stats returns a snapshot of the drive's I/O statistics.
func (d *Drive) Stats() Stats { return d.stats }

// SetInjector attaches a fault injector (nil disables fault injection).
func (d *Drive) SetInjector(in Injector) { d.inj = in }

// InflightWrites returns the number of write I/Os submitted but not yet
// completed (or lost) — the population a crash would tear.
func (d *Drive) InflightWrites() int { return len(d.inflight) }

// InflightMultiBlock returns how many of those in-flight writes span two or
// more blocks — the ones a crash-time torn-write fault can actually tear.
func (d *Drive) InflightMultiBlock() int {
	n := 0
	for _, e := range d.inflight {
		if len(e.reqs) >= 2 {
			n++
		}
	}
	return n
}

// removeInflight drops one completed entry; in-flight counts are small
// (drive queue depth), so a linear scan is fine.
func (d *Drive) removeInflight(e *inflightWrite) {
	for i, x := range d.inflight {
		if x == e {
			d.inflight = append(d.inflight[:i], d.inflight[i+1:]...)
			return
		}
	}
}

// service reserves the drive for an I/O of n blocks and returns its
// completion time. kind labels the trace span ("read"/"write").
func (d *Drive) service(n int, kind string) sim.Time {
	start := d.s.Now()
	if d.busyUntil > start {
		start = d.busyUntil
	}
	dur := d.profile.PerIO + sim.Duration(n)*d.profile.PerBlock
	d.busyUntil = start + sim.Time(dur)
	d.stats.BusyTime += dur
	if tr := d.s.Tracer(); tr != nil {
		tr.SpanArg(obs.PidStorage, d.track(tr), "io", kind, int64(start), int64(d.busyUntil), int64(n))
		tr.Observe("storage.io_service:"+kind, int64(dur))
		tr.Observe("storage.io_latency:"+kind, int64(d.busyUntil-d.s.Now()))
	}
	return d.busyUntil
}

// Write submits one write I/O covering reqs and calls done (in scheduler
// context) when it completes. The data lands on the media at completion.
func (d *Drive) Write(reqs []WriteReq, done func()) {
	if len(reqs) == 0 {
		if done != nil {
			d.s.After(0, done)
		}
		return
	}
	for _, r := range reqs {
		if r.DBN >= d.nblocks {
			panic(fmt.Sprintf("storage: write beyond device %s: dbn %d >= %d", d.name, r.DBN, d.nblocks))
		}
	}
	var wf WriteFault
	if d.inj != nil {
		wf = d.inj.WriteFault(d.name, len(reqs))
	}
	completion := d.service(len(reqs), "write")
	d.stats.WriteIOs++
	d.stats.BlocksWritten += uint64(len(reqs))
	// Capture the request slice; payloads are immutable by contract.
	rs := append([]WriteReq(nil), reqs...)
	entry := &inflightWrite{reqs: rs}
	d.inflight = append(d.inflight, entry)
	if wf.Drop {
		// Lost I/O: no completion ever fires; the entry stays in flight so
		// a later crash tears it like any other outstanding write.
		d.stats.DroppedIOs++
		return
	}
	if wf.Delay > 0 {
		d.stats.DelayedIOs++
	}
	epoch := d.epoch
	d.s.After(sim.Duration(completion-d.s.Now())+wf.Delay, func() {
		if d.epoch != epoch {
			return // lost to a crash before completing
		}
		d.removeInflight(entry)
		for _, r := range rs {
			d.media[r.DBN] = r.Data
		}
		if done != nil {
			done()
		}
	})
}

// Read submits one read I/O for the given blocks and calls done with the
// block contents when it completes. Missing (never-written) blocks read as
// nil; callers treat nil as a zero block.
func (d *Drive) Read(dbns []block.DBN, done func([][]byte)) {
	if len(dbns) == 0 {
		if done != nil {
			d.s.After(0, func() { done(nil) })
		}
		return
	}
	var rf ReadFault
	if d.inj != nil {
		rf = d.inj.ReadFault(d.name, len(dbns))
		if rf.Delay > 0 {
			d.stats.DelayedIOs++
		}
	}
	completion := d.service(len(dbns), "read")
	d.stats.ReadIOs++
	d.stats.BlocksRead += uint64(len(dbns))
	ds := append([]block.DBN(nil), dbns...)
	epoch := d.epoch
	d.s.After(sim.Duration(completion-d.s.Now())+rf.Delay, func() {
		if d.epoch != epoch {
			return
		}
		out := make([][]byte, len(ds))
		for i, dbn := range ds {
			out[i] = d.media[dbn]
		}
		if done != nil {
			done(out)
		}
	})
}

// ReadSync performs a read I/O and blocks the calling simulated thread until
// it completes.
func (d *Drive) ReadSync(t *sim.Thread, dbns []block.DBN) [][]byte {
	var result [][]byte
	wq := sim.NewWaitQueue(d.s, d.name+".readsync")
	donefired := false
	d.Read(dbns, func(bs [][]byte) {
		result = bs
		donefired = true
		wq.Signal()
	})
	if !donefired {
		wq.Wait(t)
	}
	return result
}

// WriteSync performs a write I/O and blocks the calling simulated thread
// until it completes.
func (d *Drive) WriteSync(t *sim.Thread, reqs []WriteReq) {
	wq := sim.NewWaitQueue(d.s, d.name+".writesync")
	donefired := false
	d.Write(reqs, func() {
		donefired = true
		wq.Signal()
	})
	if !donefired {
		wq.Wait(t)
	}
}

// Peek returns the committed media content of dbn without timing effects —
// the simulator's god view of the stable image, never subject to fault
// injection. RAID reconstruction and test assertions use it.
func (d *Drive) Peek(dbn block.DBN) []byte { return d.media[dbn] }

// PeekChecked is the fallible media read the file system's mount and
// verification paths use: it returns the committed content of dbn, or
// ok=false when the injector fails this attempt (a media/checksum error).
// Transient faults succeed on retry; persistent faults force the caller to
// RAID reconstruction.
func (d *Drive) PeekChecked(dbn block.DBN) ([]byte, bool) {
	if d.inj != nil && d.inj.PeekFault(d.name, dbn) {
		d.stats.PeekErrors++
		return nil, false
	}
	return d.media[dbn], true
}

// DropInFlight models a power loss: every write I/O submitted but not yet
// completed is discarded — its completion callback never fires. Without an
// injector nothing of a dropped I/O lands on the media; with one, each
// in-flight write may be torn, landing only a prefix of its blocks (the
// injector's CrashPrefix decides, in submission order). The stable image
// is otherwise exactly the set of writes that had completed before the
// crash.
func (d *Drive) DropInFlight() {
	d.epoch++
	d.busyUntil = d.s.Now()
	for _, e := range d.inflight {
		p := 0
		if d.inj != nil {
			p = d.inj.CrashPrefix(d.name, len(e.reqs))
		}
		if p > len(e.reqs) {
			p = len(e.reqs)
		}
		if p > 0 {
			for _, r := range e.reqs[:p] {
				d.media[r.DBN] = r.Data
			}
			d.stats.TornWrites++
			d.stats.TornBlocksLost += uint64(len(e.reqs) - p)
		}
	}
	d.inflight = nil
}
