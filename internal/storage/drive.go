// Package storage simulates persistent drives: per-drive FCFS service
// queues with configurable service-time profiles (SSD, SAS HDD, and the
// hybrid Flash Pool models used by the paper's testbeds), plus the stable
// block store that gives the simulated file system real crash semantics —
// a block's content changes only when its write I/O completes.
package storage

import (
	"fmt"

	"wafl/internal/block"
	"wafl/internal/obs"
	"wafl/internal/sim"
)

// Profile describes a drive's service-time model. An I/O of n blocks
// occupies the drive for PerIO + n*PerBlock of simulated time; I/Os on one
// drive are serviced FCFS with no overlap, which models a single-spindle or
// single-channel device. Enterprise arrays get their parallelism across
// drives, which is exactly the behaviour the write allocator's
// equal-progress objective (paper §IV-D, objective 3) exists to exploit.
type Profile struct {
	Name     string
	PerIO    sim.Duration // fixed per-I/O overhead (seek/rotate or channel setup)
	PerBlock sim.Duration // transfer time per 4 KiB block
}

// Canonical drive profiles used by the experiments.
var (
	// SSD models the all-SSD mid-range system of §V-A.
	SSD = Profile{Name: "ssd", PerIO: 60 * sim.Microsecond, PerBlock: 2 * sim.Microsecond}
	// HDD models the SAS drives of §V-C: scheduled, write-cached large
	// writes, so the effective per-I/O overhead is well below a raw seek.
	HDD = Profile{Name: "hdd", PerIO: 1200 * sim.Microsecond, PerBlock: 15 * sim.Microsecond}
	// FlashPool models the hybrid SSD+HDD testbed of §V-B: HDD capacity
	// behind an SSD write cache, giving sub-HDD effective write latency.
	FlashPool = Profile{Name: "flashpool", PerIO: 500 * sim.Microsecond, PerBlock: 6 * sim.Microsecond}
)

// WriteReq is a single-block write within a multi-block drive I/O.
type WriteReq struct {
	DBN  block.DBN
	Data []byte // must remain immutable once submitted (CoW guarantees this)
}

// Stats holds cumulative per-drive I/O statistics.
type Stats struct {
	ReadIOs       uint64
	WriteIOs      uint64
	BlocksRead    uint64
	BlocksWritten uint64
	BusyTime      sim.Duration // total time the drive was servicing I/O
}

// Drive is a simulated drive: an array of blocks plus a service queue.
type Drive struct {
	s       *sim.Scheduler
	name    string
	profile Profile
	nblocks block.DBN

	// media is the stable storage image; entries are nil until first
	// written. Writes land at I/O completion time, never earlier, so a
	// simulated crash (dropping all in-memory state and pending I/O)
	// leaves exactly the committed image.
	media [][]byte

	busyUntil sim.Time
	epoch     uint64 // bumped by DropInFlight; stale completions are discarded
	obsTid    int32  // interned trace track id + 1; 0 = unset
	stats     Stats
}

// track returns the drive's trace track id, interning it on first use.
func (d *Drive) track(tr *obs.Tracer) int32 {
	if d.obsTid == 0 {
		d.obsTid = tr.Track(obs.PidStorage, d.name) + 1
	}
	return d.obsTid - 1
}

// NewDrive creates a drive of nblocks blocks with the given service profile.
func NewDrive(s *sim.Scheduler, name string, profile Profile, nblocks block.DBN) *Drive {
	return &Drive{
		s:       s,
		name:    name,
		profile: profile,
		nblocks: nblocks,
		media:   make([][]byte, nblocks),
	}
}

// Name returns the drive's debug name.
func (d *Drive) Name() string { return d.name }

// Blocks returns the drive capacity in blocks.
func (d *Drive) Blocks() block.DBN { return d.nblocks }

// Profile returns the drive's service-time profile.
func (d *Drive) Profile() Profile { return d.profile }

// Stats returns a snapshot of the drive's I/O statistics.
func (d *Drive) Stats() Stats { return d.stats }

// service reserves the drive for an I/O of n blocks and returns its
// completion time. kind labels the trace span ("read"/"write").
func (d *Drive) service(n int, kind string) sim.Time {
	start := d.s.Now()
	if d.busyUntil > start {
		start = d.busyUntil
	}
	dur := d.profile.PerIO + sim.Duration(n)*d.profile.PerBlock
	d.busyUntil = start + sim.Time(dur)
	d.stats.BusyTime += dur
	if tr := d.s.Tracer(); tr != nil {
		tr.SpanArg(obs.PidStorage, d.track(tr), "io", kind, int64(start), int64(d.busyUntil), int64(n))
		tr.Observe("storage.io_service:"+kind, int64(dur))
		tr.Observe("storage.io_latency:"+kind, int64(d.busyUntil-d.s.Now()))
	}
	return d.busyUntil
}

// Write submits one write I/O covering reqs and calls done (in scheduler
// context) when it completes. The data lands on the media at completion.
func (d *Drive) Write(reqs []WriteReq, done func()) {
	if len(reqs) == 0 {
		if done != nil {
			d.s.After(0, done)
		}
		return
	}
	for _, r := range reqs {
		if r.DBN >= d.nblocks {
			panic(fmt.Sprintf("storage: write beyond device %s: dbn %d >= %d", d.name, r.DBN, d.nblocks))
		}
	}
	completion := d.service(len(reqs), "write")
	d.stats.WriteIOs++
	d.stats.BlocksWritten += uint64(len(reqs))
	// Capture the request slice; payloads are immutable by contract.
	rs := append([]WriteReq(nil), reqs...)
	epoch := d.epoch
	d.s.After(sim.Duration(completion-d.s.Now()), func() {
		if d.epoch != epoch {
			return // lost to a crash before completing
		}
		for _, r := range rs {
			d.media[r.DBN] = r.Data
		}
		if done != nil {
			done()
		}
	})
}

// Read submits one read I/O for the given blocks and calls done with the
// block contents when it completes. Missing (never-written) blocks read as
// nil; callers treat nil as a zero block.
func (d *Drive) Read(dbns []block.DBN, done func([][]byte)) {
	if len(dbns) == 0 {
		if done != nil {
			d.s.After(0, func() { done(nil) })
		}
		return
	}
	completion := d.service(len(dbns), "read")
	d.stats.ReadIOs++
	d.stats.BlocksRead += uint64(len(dbns))
	ds := append([]block.DBN(nil), dbns...)
	epoch := d.epoch
	d.s.After(sim.Duration(completion-d.s.Now()), func() {
		if d.epoch != epoch {
			return
		}
		out := make([][]byte, len(ds))
		for i, dbn := range ds {
			out[i] = d.media[dbn]
		}
		if done != nil {
			done(out)
		}
	})
}

// ReadSync performs a read I/O and blocks the calling simulated thread until
// it completes.
func (d *Drive) ReadSync(t *sim.Thread, dbns []block.DBN) [][]byte {
	var result [][]byte
	wq := sim.NewWaitQueue(d.s, d.name+".readsync")
	donefired := false
	d.Read(dbns, func(bs [][]byte) {
		result = bs
		donefired = true
		wq.Signal()
	})
	if !donefired {
		wq.Wait(t)
	}
	return result
}

// WriteSync performs a write I/O and blocks the calling simulated thread
// until it completes.
func (d *Drive) WriteSync(t *sim.Thread, reqs []WriteReq) {
	wq := sim.NewWaitQueue(d.s, d.name+".writesync")
	donefired := false
	d.Write(reqs, func() {
		donefired = true
		wq.Signal()
	})
	if !donefired {
		wq.Wait(t)
	}
}

// Peek returns the committed media content of dbn without timing effects.
// Recovery code uses it to model reading the stable image after a crash
// (mount-time reads are not part of any measured experiment), and tests use
// it to assert what actually reached persistent storage.
func (d *Drive) Peek(dbn block.DBN) []byte { return d.media[dbn] }

// DropInFlight models a power loss: every I/O submitted but not yet
// completed is discarded — its data never lands on the media and its
// completion callback never fires. The stable image remains exactly the set
// of writes that had completed before the crash.
func (d *Drive) DropInFlight() {
	d.epoch++
	d.busyUntil = d.s.Now()
}
