// Package bitmap implements WAFL-style allocation bitmaps ("activemaps"):
// one bit per block of an address space (physical VBNs of an aggregate or
// virtual VVBNs of a FlexVol volume), stored in the L0 blocks of a metafile.
// Allocations and frees toggle bits through the consistency-point mutation
// path, so every change dirties the owning metafile block into the running
// CP — which is precisely the metafile-update load that the White Alligator
// infrastructure exists to parallelize (paper §III-C, §IV-B2).
package bitmap

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"wafl/internal/block"
	"wafl/internal/fs"
)

// BitsPerBlock is the number of block-state bits per metafile block.
const BitsPerBlock = block.Size * 8 // 32768

// Activemap is an allocation bitmap over [0, nbits) backed by a metafile.
// A set bit means the block is in use.
type Activemap struct {
	file  *fs.File
	nbits uint64
	free  uint64

	// OnChange, if set, observes every bit transition (used by the
	// aggregate to maintain per-Allocation-Area free counts).
	OnChange func(bn uint64, used bool)

	// statistics
	SetOps, ClearOps uint64
}

// New creates an all-free activemap of nbits bits backed by file.
func New(file *fs.File, nbits uint64) *Activemap {
	need := (nbits + BitsPerBlock - 1) / BitsPerBlock
	if need > file.MaxBlocks() {
		panic(fmt.Sprintf("bitmap: metafile too small: need %d blocks, capacity %d", need, file.MaxBlocks()))
	}
	return &Activemap{file: file, nbits: nbits, free: nbits}
}

// Rebind attaches the activemap to a (re-mounted) metafile and recomputes
// the free count from its contents — the mount-time rebuild path. The
// recount is word-wise over resident metafile blocks (absent blocks are
// all-clear), not a per-bit IsSet loop.
func Rebind(file *fs.File, nbits uint64) *Activemap {
	a := New(file, nbits)
	used := uint64(0)
	nblocks := (nbits + BitsPerBlock - 1) / BitsPerBlock
	for fbn := block.FBN(0); uint64(fbn) < nblocks; fbn++ {
		buf := file.Buffer(0, fbn)
		if buf == nil {
			continue
		}
		d := buf.Data()
		// Bits at/after nbits in the last block are unused and must be zero
		// (Set panics past nbits), so counting whole words is safe.
		for off := 0; off < block.Size; off += 8 {
			used += uint64(bits.OnesCount64(binary.LittleEndian.Uint64(d[off:])))
		}
	}
	a.free = nbits - used
	return a
}

// File returns the backing metafile.
func (a *Activemap) File() *fs.File { return a.file }

// Bits returns the size of the tracked address space.
func (a *Activemap) Bits() uint64 { return a.nbits }

// Free returns the number of free (clear) bits.
func (a *Activemap) Free() uint64 { return a.free }

// Used returns the number of used (set) bits.
func (a *Activemap) Used() uint64 { return a.nbits - a.free }

// BlockOf returns the metafile FBN holding the bit for bn. Range affinities
// partition metafile accesses by this value.
func BlockOf(bn uint64) block.FBN { return block.FBN(bn / BitsPerBlock) }

func (a *Activemap) locate(bn uint64) (*fs.Buffer, int, byte) {
	if bn >= a.nbits {
		panic(fmt.Sprintf("bitmap: bn %d out of range %d", bn, a.nbits))
	}
	buf := a.file.GetOrCreateL0(BlockOf(bn))
	off := bn % BitsPerBlock
	return buf, int(off / 8), byte(1 << (off % 8))
}

// IsSet reports whether bn is marked in use.
func (a *Activemap) IsSet(bn uint64) bool {
	buf, byteOff, mask := a.locate(bn)
	return buf.Data()[byteOff]&mask != 0
}

// wordAt returns the 64-bit word starting at bit wordStart (which must be
// 64-aligned) without creating the backing metafile block: an absent block
// reads as all-clear. The read path for the free-space index, which must
// not perturb the file's buffer population.
func (a *Activemap) wordAt(wordStart uint64) uint64 {
	buf := a.file.Buffer(0, BlockOf(wordStart))
	if buf == nil {
		return 0
	}
	byteOff := (wordStart % BitsPerBlock) / 8
	return binary.LittleEndian.Uint64(buf.Data()[byteOff:])
}

// ForEachSet calls fn for every set bit, scanning word-wise over resident
// metafile blocks (absent blocks are all-clear) — the bulk iteration path
// for mount-time rebuilds that would otherwise pay nbits buffer lookups.
func (a *Activemap) ForEachSet(fn func(bn uint64)) {
	nblocks := (a.nbits + BitsPerBlock - 1) / BitsPerBlock
	for fbn := block.FBN(0); uint64(fbn) < nblocks; fbn++ {
		buf := a.file.Buffer(0, fbn)
		if buf == nil {
			continue
		}
		d := buf.Data()
		base := uint64(fbn) * BitsPerBlock
		for off := 0; off < block.Size; off += 8 {
			w := binary.LittleEndian.Uint64(d[off:])
			for w != 0 {
				i := bits.TrailingZeros64(w)
				fn(base + uint64(off)*8 + uint64(i))
				w &= w - 1
			}
		}
	}
}

// Set marks bn in use, dirtying the owning metafile block into the running
// CP. It panics on double allocation — that invariant is the heart of
// allocator correctness.
func (a *Activemap) Set(bn uint64) {
	buf, byteOff, mask := a.locate(bn)
	d := buf.CPMutableData()
	if d[byteOff]&mask != 0 {
		panic(fmt.Sprintf("bitmap: double allocation of block %d", bn))
	}
	d[byteOff] |= mask
	a.file.DirtyIntoCP(buf)
	a.free--
	a.SetOps++
	if a.OnChange != nil {
		a.OnChange(bn, true)
	}
}

// Clear marks bn free, dirtying the owning metafile block into the running
// CP. It panics on double free.
func (a *Activemap) Clear(bn uint64) {
	buf, byteOff, mask := a.locate(bn)
	d := buf.CPMutableData()
	if d[byteOff]&mask == 0 {
		panic(fmt.Sprintf("bitmap: double free of block %d", bn))
	}
	d[byteOff] &^= mask
	a.file.DirtyIntoCP(buf)
	a.free++
	a.ClearOps++
	if a.OnChange != nil {
		a.OnChange(bn, false)
	}
}

// SetRaw marks bn in use without CP dirtying — used only while formatting a
// fresh file system (reserved blocks) before any CP machinery exists.
func (a *Activemap) SetRaw(bn uint64) {
	buf, byteOff, mask := a.locate(bn)
	d := buf.CPMutableData()
	if d[byteOff]&mask != 0 {
		return
	}
	d[byteOff] |= mask
	a.free--
	if a.OnChange != nil {
		a.OnChange(bn, true)
	}
}

// FindFree appends up to max free block numbers in [start, end) to dst,
// scanning 64 bits at a time, and returns the extended slice together with
// the number of 64-bit words examined (the caller charges CPU proportional
// to the scan work).
func (a *Activemap) FindFree(dst []uint64, start, end uint64, max int) ([]uint64, int) {
	if end > a.nbits {
		end = a.nbits
	}
	words := 0
	bn := start
	for bn < end && max > 0 {
		buf := a.file.GetOrCreateL0(BlockOf(bn))
		data := buf.Data()
		// Scan within this metafile block.
		blockEnd := (uint64(BlockOf(bn)) + 1) * BitsPerBlock
		if blockEnd > end {
			blockEnd = end
		}
		for bn < blockEnd && max > 0 {
			wordStart := bn &^ 63
			byteOff := (wordStart % BitsPerBlock) / 8
			w := binary.LittleEndian.Uint64(data[byteOff:])
			words++
			// Mask off bits below bn and at/after blockEnd.
			w |= (1 << (bn - wordStart)) - 1
			if wordEnd := wordStart + 64; wordEnd > blockEnd {
				w |= ^uint64(0) << (blockEnd - wordStart)
			}
			for w != ^uint64(0) && max > 0 {
				i := bits.TrailingZeros64(^w)
				dst = append(dst, wordStart+uint64(i))
				w |= 1 << i
				max--
			}
			bn = wordStart + 64
		}
	}
	return dst, words
}

// OrFrom ORs every set bit of the src metafile's bitmap content into this
// map, dirtying changed metafile blocks into the running CP and maintaining
// the free count. It is the bulk path for folding a snapmap into a volume's
// snapshot summary map: per-bit Set would charge one metafile dirty per bit,
// where one CP only needs one per changed block. Every newly set bit is
// reported through OnChange — it is a real allocatability transition, and
// observers (the hierarchical free-space index) must see it like any Set.
// Returns the number of newly set bits.
func (a *Activemap) OrFrom(src *fs.File) uint64 {
	newly := uint64(0)
	nblocks := (a.nbits + BitsPerBlock - 1) / BitsPerBlock
	for fbn := block.FBN(0); uint64(fbn) < nblocks; fbn++ {
		sbuf := src.Buffer(0, fbn)
		if sbuf == nil {
			continue // src block all-clear
		}
		sd := sbuf.Data()
		dbuf := a.file.GetOrCreateL0(fbn)
		changed := false
		dd := dbuf.Data()
		for off := 0; off < block.Size; off += 8 {
			sw := binary.LittleEndian.Uint64(sd[off:])
			if sw == 0 {
				continue
			}
			dw := binary.LittleEndian.Uint64(dd[off:])
			fresh := sw &^ dw
			if fresh == 0 {
				continue
			}
			if !changed {
				dd = dbuf.CPMutableData()
				dw = binary.LittleEndian.Uint64(dd[off:])
				fresh = sw &^ dw
				changed = true
			}
			newly += uint64(bits.OnesCount64(fresh))
			binary.LittleEndian.PutUint64(dd[off:], dw|sw)
			if a.OnChange != nil {
				base := uint64(fbn)*BitsPerBlock + uint64(off)*8
				for w := fresh; w != 0; w &= w - 1 {
					a.OnChange(base+uint64(bits.TrailingZeros64(w)), true)
				}
			}
		}
		if changed {
			a.file.DirtyIntoCP(dbuf)
		}
	}
	a.free -= newly
	a.SetOps += newly
	return newly
}

// CountFreeNotIn returns the number of bits in [start, end) clear in both
// this map and mask — the allocatable population when mask is a snapshot
// summary map holding blocks out of the free pool — plus the words scanned.
// A nil mask degenerates to CountFree.
func (a *Activemap) CountFreeNotIn(mask *Activemap, start, end uint64) (uint64, int) {
	if mask == nil {
		return a.CountFree(start, end)
	}
	if end > a.nbits {
		end = a.nbits
	}
	n := uint64(0)
	words := 0
	for bn := start; bn < end; {
		buf := a.file.GetOrCreateL0(BlockOf(bn))
		data := buf.Data()
		var mdata []byte
		if mbuf := mask.file.Buffer(0, BlockOf(bn)); mbuf != nil {
			mdata = mbuf.Data()
		}
		blockEnd := (uint64(BlockOf(bn)) + 1) * BitsPerBlock
		if blockEnd > end {
			blockEnd = end
		}
		for bn < blockEnd {
			wordStart := bn &^ 63
			byteOff := (wordStart % BitsPerBlock) / 8
			w := binary.LittleEndian.Uint64(data[byteOff:])
			if mdata != nil {
				w |= binary.LittleEndian.Uint64(mdata[byteOff:])
			}
			words++
			w |= (1 << (bn - wordStart)) - 1
			if wordEnd := wordStart + 64; wordEnd > blockEnd {
				w |= ^uint64(0) << (blockEnd - wordStart)
			}
			n += uint64(bits.OnesCount64(^w))
			bn = wordStart + 64
		}
	}
	return n, words
}

// CountFree returns the number of free bits in [start, end) and the number
// of words scanned.
func (a *Activemap) CountFree(start, end uint64) (uint64, int) {
	if end > a.nbits {
		end = a.nbits
	}
	n := uint64(0)
	words := 0
	for bn := start; bn < end; {
		buf := a.file.GetOrCreateL0(BlockOf(bn))
		data := buf.Data()
		blockEnd := (uint64(BlockOf(bn)) + 1) * BitsPerBlock
		if blockEnd > end {
			blockEnd = end
		}
		for bn < blockEnd {
			wordStart := bn &^ 63
			byteOff := (wordStart % BitsPerBlock) / 8
			w := binary.LittleEndian.Uint64(data[byteOff:])
			words++
			w |= (1 << (bn - wordStart)) - 1
			if wordEnd := wordStart + 64; wordEnd > blockEnd {
				w |= ^uint64(0) << (blockEnd - wordStart)
			}
			n += uint64(bits.OnesCount64(^w))
			bn = wordStart + 64
		}
	}
	return n, words
}

// fileWord returns the 64-bit word at bit offset wordStart (64-aligned) of a
// bitmap metafile's content, treating absent blocks as all-clear.
func fileWord(f *fs.File, wordStart uint64) uint64 {
	buf := f.Buffer(0, block.FBN(wordStart/BitsPerBlock))
	if buf == nil {
		return 0
	}
	byteOff := (wordStart % BitsPerBlock) / 8
	return binary.LittleEndian.Uint64(buf.Data()[byteOff:])
}

// ForEachDiff walks this map against src (a bitmap metafile over the same
// bit space) word-wise and calls fn once for every differing bit, with inSrc
// reporting which side holds it. fn may mutate this map through Set/Clear —
// each changed word is read before its bits are visited, and every bit is
// visited exactly once. This is the SnapRestore rebind walk: the active map
// converges on the snapmap's content through the ordinary per-bit mutation
// path, so the free-space index and all OnChange observers stay exact.
// Returns the number of words scanned for CPU charging.
func (a *Activemap) ForEachDiff(src *fs.File, fn func(bn uint64, inSrc bool)) int {
	words := 0
	for wordStart := uint64(0); wordStart < a.nbits; wordStart += 64 {
		cur := a.wordAt(wordStart)
		sw := fileWord(src, wordStart)
		words++
		diff := cur ^ sw
		if diff == 0 {
			continue
		}
		if wordEnd := wordStart + 64; wordEnd > a.nbits {
			diff &^= ^uint64(0) << (a.nbits - wordStart)
		}
		for w := diff; w != 0; w &= w - 1 {
			bn := wordStart + uint64(bits.TrailingZeros64(w))
			fn(bn, sw&(1<<(bn-wordStart)) != 0)
		}
	}
	return words
}

// AndPopcount returns the number of bits in [0, nbits) set in both bitmap
// metafiles — e.g. a clone's still-live base blocks (baseMap AND activemap),
// the population a clone split must copy before the parent hold can drop.
func AndPopcount(x, y *fs.File, nbits uint64) uint64 {
	n := uint64(0)
	for wordStart := uint64(0); wordStart < nbits; wordStart += 64 {
		w := fileWord(x, wordStart) & fileWord(y, wordStart)
		if w == 0 {
			continue
		}
		if wordEnd := wordStart + 64; wordEnd > nbits {
			w &^= ^uint64(0) << (nbits - wordStart)
		}
		n += uint64(bits.OnesCount64(w))
	}
	return n
}
