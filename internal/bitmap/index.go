package bitmap

import (
	"fmt"
	"math/bits"
)

// Index is the hierarchical free-space accounting over an activemap and an
// optional mask map (a volume activemap and its snapshot summary map): a
// bit is allocatable iff it is clear in both. Two levels are maintained
// incrementally from the maps' OnChange streams:
//
//   - regionFree[r]: the allocatable-bit count of each regionBits-sized
//     region, so region selection is an O(regions) counter lookup instead
//     of an O(address-space/64) recount (the volume-side analogue of the
//     aggregate's per-AA free counters).
//   - freeWords: one bit per 64-bit data word of the maps, set iff the
//     word holds at least one allocatable bit, so fills skip exhausted
//     words entirely and cost is proportional to blocks found, not to the
//     occupancy of the space scanned.
//
// Counters track the maps' on-disk bit state, exactly like a full
// CountFreeNotIn recount would: per-CP overlays (pending frees, bucket
// reservations) stay with the caller. Every transition path must feed the
// index — Set, Clear, bulk OrFrom (snapshot summary fold), and snapshot
// reclaim's Clears all fire OnChange — and Rebuild recomputes both levels
// word-wise on mount/Rebind.
//
// The index reads map words without creating metafile buffers (absent
// blocks are all-clear), so maintaining it never perturbs the files'
// buffer population.
type Index struct {
	active     *Activemap
	mask       *Activemap // may be nil (no snapshot summary)
	nbits      uint64
	regionBits uint64

	regionFree []int64
	freeWords  []uint64 // bit w set => data word w has >=1 allocatable bit
}

// NewIndex builds the index over active (and mask, which may be nil),
// chains itself onto both maps' OnChange hooks, and performs the initial
// word-wise rebuild. regionBits must be a multiple of 64.
func NewIndex(active, mask *Activemap, regionBits uint64) *Index {
	if regionBits == 0 || regionBits%64 != 0 {
		panic(fmt.Sprintf("bitmap: index region size %d not a multiple of 64", regionBits))
	}
	x := &Index{
		active:     active,
		mask:       mask,
		nbits:      active.nbits,
		regionBits: regionBits,
	}
	nRegions := (x.nbits + regionBits - 1) / regionBits
	nWords := (x.nbits + 63) / 64
	x.regionFree = make([]int64, nRegions)
	x.freeWords = make([]uint64, (nWords+63)/64)
	prevA := active.OnChange
	active.OnChange = func(bn uint64, used bool) {
		if prevA != nil {
			prevA(bn, used)
		}
		x.observe(bn, used, x.mask)
	}
	if mask != nil {
		if mask.nbits != active.nbits {
			panic(fmt.Sprintf("bitmap: index over mismatched spaces (%d vs %d bits)", active.nbits, mask.nbits))
		}
		prevM := mask.OnChange
		mask.OnChange = func(bn uint64, used bool) {
			if prevM != nil {
				prevM(bn, used)
			}
			x.observe(bn, used, x.active)
		}
	}
	x.Rebuild()
	return x
}

// Regions returns the number of regions tracked.
func (x *Index) Regions() int { return len(x.regionFree) }

// RegionBits returns the region size in bits.
func (x *Index) RegionBits() uint64 { return x.regionBits }

// RegionFree returns region r's allocatable-bit count.
func (x *Index) RegionFree(r int) int64 { return x.regionFree[r] }

// wordUsed returns the OR of the active and mask words at wordStart
// (64-aligned), with bits past the end of the address space forced to 1 —
// so ^uint64(0) means "no allocatable bit in this word".
func (x *Index) wordUsed(wordStart uint64) uint64 {
	w := x.active.wordAt(wordStart)
	if x.mask != nil {
		w |= x.mask.wordAt(wordStart)
	}
	if wordStart+64 > x.nbits {
		w |= ^uint64(0) << (x.nbits - wordStart)
	}
	return w
}

// observe folds one bit transition of either map into both index levels.
// other is the map that did NOT transition: if it holds the bit, the bit
// was not allocatable before and is not after, so nothing changes.
func (x *Index) observe(bn uint64, nowUsed bool, other *Activemap) {
	if other != nil && other.wordAt(bn&^63)&(1<<(bn&63)) != 0 {
		return
	}
	r := bn / x.regionBits
	wi := bn >> 6
	if nowUsed {
		x.regionFree[r]--
		if x.regionFree[r] < 0 {
			panic(fmt.Sprintf("bitmap: free-space index region %d count negative after alloc of bit %d", r, bn))
		}
		if x.wordUsed(bn&^63) == ^uint64(0) {
			x.freeWords[wi>>6] &^= 1 << (wi & 63)
		}
	} else {
		x.regionFree[r]++
		x.freeWords[wi>>6] |= 1 << (wi & 63)
	}
}

// Rebuild recomputes both levels word-wise from the maps' current content —
// the mount/Rebind path. Cost is one pass over the maps' words, not a
// per-bit loop.
func (x *Index) Rebuild() {
	for i := range x.regionFree {
		x.regionFree[i] = 0
	}
	for i := range x.freeWords {
		x.freeWords[i] = 0
	}
	nWords := (x.nbits + 63) / 64
	for wi := uint64(0); wi < nWords; wi++ {
		w := x.wordUsed(wi << 6)
		if free := 64 - bits.OnesCount64(w); free > 0 {
			x.regionFree[(wi<<6)/x.regionBits] += int64(free)
			x.freeWords[wi>>6] |= 1 << (wi & 63)
		}
	}
}

// FindFree appends up to max allocatable bit numbers in [start, end) to dst
// — bits clear in both maps — and returns the extended slice plus the
// number of 64-bit words examined (free-words bitset words consulted plus
// data words actually read), the caller's CPU-charging unit. Words with no
// allocatable bit are skipped via the free-words level, so the scan cost is
// proportional to the bits found plus the (64x smaller) summary traversal,
// not to the span's occupancy.
func (x *Index) FindFree(dst []uint64, start, end uint64, max int) ([]uint64, int) {
	if end > x.nbits {
		end = x.nbits
	}
	if start >= end || max <= 0 {
		return dst, 0
	}
	words := 0
	endW := (end + 63) >> 6
	wi := start >> 6
	lastSlot := ^uint64(0)
	for wi < endW && max > 0 {
		slot := wi >> 6
		if slot != lastSlot {
			words++ // one free-words bitset word consulted
			lastSlot = slot
		}
		sw := x.freeWords[slot] &^ ((1 << (wi & 63)) - 1)
		if sw == 0 {
			wi = (slot + 1) << 6
			continue
		}
		wi = slot<<6 + uint64(bits.TrailingZeros64(sw))
		if wi >= endW {
			break
		}
		words++ // one data word examined
		wordStart := wi << 6
		w := x.wordUsed(wordStart)
		if wordStart < start {
			w |= (1 << (start - wordStart)) - 1
		}
		if wordStart+64 > end {
			w |= ^uint64(0) << (end - wordStart)
		}
		for w != ^uint64(0) && max > 0 {
			i := bits.TrailingZeros64(^w)
			dst = append(dst, wordStart+uint64(i))
			w |= 1 << i
			max--
		}
		wi++
	}
	return dst, words
}

// Verify cross-checks both index levels against a full recount of the maps
// and returns a description of every mismatch (capped): per-region counters
// against CountFreeNotIn, and every free-words bit against its data word.
// The fsck invariant for the incremental maintenance.
func (x *Index) Verify() []string {
	var errs []string
	add := func(s string) {
		if len(errs) < 20 {
			errs = append(errs, s)
		}
	}
	for r := range x.regionFree {
		lo := uint64(r) * x.regionBits
		hi := lo + x.regionBits
		if hi > x.nbits {
			hi = x.nbits
		}
		var want uint64
		if x.mask != nil {
			want, _ = x.active.CountFreeNotIn(x.mask, lo, hi)
		} else {
			want, _ = x.active.CountFree(lo, hi)
		}
		if got := x.regionFree[r]; got != int64(want) {
			add(fmt.Sprintf("free-index region %d: counter %d != recount %d", r, got, want))
		}
	}
	nWords := (x.nbits + 63) / 64
	for wi := uint64(0); wi < nWords; wi++ {
		has := x.wordUsed(wi<<6) != ^uint64(0)
		bit := x.freeWords[wi>>6]&(1<<(wi&63)) != 0
		if bit != has {
			add(fmt.Sprintf("free-index word %d: summary bit %v but word has allocatable=%v", wi, bit, has))
		}
	}
	return errs
}

// CorruptRegionCounter adds delta to region r's counter — a fault-injection
// hook for exercising the fsck invariant in tests.
func (x *Index) CorruptRegionCounter(r int, delta int64) { x.regionFree[r] += delta }

// CorruptFreeWord flips the free-words summary bit covering data word wi —
// the second fault-injection hook.
func (x *Index) CorruptFreeWord(wi uint64) { x.freeWords[wi>>6] ^= 1 << (wi & 63) }
