package bitmap

import (
	"testing"
	"testing/quick"

	"wafl/internal/block"
	"wafl/internal/fs"
)

func newMap(nbits uint64) *Activemap {
	f := fs.NewFile(1, 2)
	return New(f, nbits)
}

func TestSetClearIsSet(t *testing.T) {
	a := newMap(100000)
	if a.Free() != 100000 {
		t.Fatalf("free = %d", a.Free())
	}
	a.Set(5)
	a.Set(99999)
	if !a.IsSet(5) || !a.IsSet(99999) || a.IsSet(6) {
		t.Fatal("IsSet wrong")
	}
	if a.Free() != 99998 || a.Used() != 2 {
		t.Fatalf("free=%d used=%d", a.Free(), a.Used())
	}
	a.Clear(5)
	if a.IsSet(5) || a.Free() != 99999 {
		t.Fatal("clear failed")
	}
}

func TestDoubleAllocationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double allocation")
		}
	}()
	a := newMap(1000)
	a.Set(7)
	a.Set(7)
}

func TestDoubleFreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double free")
		}
	}()
	a := newMap(1000)
	a.Clear(7)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a := newMap(1000)
	a.IsSet(1000)
}

func TestSetDirtiesMetafileBlockIntoCP(t *testing.T) {
	f := fs.NewFile(1, 2)
	a := New(f, 10*BitsPerBlock)
	a.Set(0)
	a.Set(BitsPerBlock + 5) // second metafile block
	if f.FrozenCount() != 2 {
		t.Fatalf("frozen metafile blocks = %d, want 2", f.FrozenCount())
	}
	a.Set(1) // same block as bit 0: no new dirty block
	if f.FrozenCount() != 2 {
		t.Fatalf("frozen metafile blocks = %d, want 2", f.FrozenCount())
	}
}

func TestFindFree(t *testing.T) {
	a := newMap(100000)
	for bn := uint64(0); bn < 100; bn++ {
		a.Set(bn)
	}
	a.Set(105)
	got, words := a.FindFree(nil, 0, 200, 10)
	want := []uint64{100, 101, 102, 103, 104, 106, 107, 108, 109, 110}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if words == 0 {
		t.Fatal("scan work not reported")
	}
}

func TestFindFreeRespectsRangeBounds(t *testing.T) {
	a := newMap(100000)
	got, _ := a.FindFree(nil, 10, 14, 100)
	if len(got) != 4 || got[0] != 10 || got[3] != 13 {
		t.Fatalf("got %v", got)
	}
	// Start mid-word, end mid-word.
	got, _ = a.FindFree(nil, 67, 69, 100)
	if len(got) != 2 || got[0] != 67 || got[1] != 68 {
		t.Fatalf("got %v", got)
	}
}

func TestFindFreeAcrossMetafileBlocks(t *testing.T) {
	a := newMap(3 * BitsPerBlock)
	start := uint64(BitsPerBlock - 2)
	got, _ := a.FindFree(nil, start, start+5, 100)
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	for i, bn := range got {
		if bn != start+uint64(i) {
			t.Fatalf("got %v", got)
		}
	}
}

func TestCountFree(t *testing.T) {
	a := newMap(2 * BitsPerBlock)
	for bn := uint64(100); bn < 200; bn++ {
		a.Set(bn)
	}
	n, _ := a.CountFree(0, BitsPerBlock)
	if n != BitsPerBlock-100 {
		t.Fatalf("count = %d", n)
	}
	n, _ = a.CountFree(150, 250)
	if n != 50 {
		t.Fatalf("count = %d, want 50", n)
	}
}

func TestOnChangeCallback(t *testing.T) {
	a := newMap(1000)
	var events []uint64
	a.OnChange = func(bn uint64, used bool) {
		if used {
			events = append(events, bn)
		} else {
			events = append(events, bn+1000000)
		}
	}
	a.Set(3)
	a.Clear(3)
	if len(events) != 2 || events[0] != 3 || events[1] != 1000003 {
		t.Fatalf("events = %v", events)
	}
}

func TestRebindRecomputesFree(t *testing.T) {
	f := fs.NewFile(1, 2)
	a := New(f, 70000)
	a.Set(1)
	a.Set(40000)
	b := Rebind(f, 70000)
	if b.Free() != 69998 {
		t.Fatalf("rebound free = %d", b.Free())
	}
	if !b.IsSet(1) || !b.IsSet(40000) {
		t.Fatal("rebound bits lost")
	}
}

func TestPropertyFreeCountConsistency(t *testing.T) {
	// Property: after arbitrary set/clear sequences, Free() equals a full
	// recount, and FindFree never returns a set bit.
	fn := func(ops []uint16) bool {
		a := newMap(4096)
		state := make(map[uint64]bool)
		for _, op := range ops {
			bn := uint64(op) % 4096
			if state[bn] {
				a.Clear(bn)
				state[bn] = false
			} else {
				a.Set(bn)
				state[bn] = true
			}
		}
		n, _ := a.CountFree(0, 4096)
		if n != a.Free() {
			return false
		}
		found, _ := a.FindFree(nil, 0, 4096, 4096)
		for _, bn := range found {
			if state[bn] {
				return false
			}
		}
		return uint64(len(found)) == a.Free()
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockOf(t *testing.T) {
	if BlockOf(0) != 0 || BlockOf(BitsPerBlock-1) != 0 || BlockOf(BitsPerBlock) != 1 {
		t.Fatal("BlockOf wrong")
	}
	if BlockOf(10*BitsPerBlock+5) != block.FBN(10) {
		t.Fatal("BlockOf wrong for large bn")
	}
}

func TestSetRawDoesNotDirty(t *testing.T) {
	f := fs.NewFile(1, 2)
	a := New(f, 1000)
	a.SetRaw(5)
	if f.FrozenCount() != 0 {
		t.Fatal("SetRaw must not dirty into CP")
	}
	if !a.IsSet(5) || a.Free() != 999 {
		t.Fatal("SetRaw state wrong")
	}
	a.SetRaw(5) // idempotent
	if a.Free() != 999 {
		t.Fatal("SetRaw must be idempotent")
	}
}
