package bitmap

import (
	"math/rand"
	"testing"

	"wafl/internal/fs"
)

// testIndex builds an active+summary pair with an index over them, using a
// small region size so multi-region behavior is exercised.
func testIndex(nbits, regionBits uint64) (*Activemap, *Activemap, *Index) {
	active := New(fs.NewFile(1, 2), nbits)
	summary := New(fs.NewFile(2, 2), nbits)
	return active, summary, NewIndex(active, summary, regionBits)
}

// verifyEmpty fails the test if the index disagrees with a full recount.
func verifyEmpty(t *testing.T, x *Index, when string) {
	t.Helper()
	if errs := x.Verify(); len(errs) != 0 {
		t.Fatalf("%s: index inconsistent: %v", when, errs)
	}
}

func TestIndexTracksSetClear(t *testing.T) {
	active, _, x := testIndex(1024, 256)
	if x.Regions() != 4 || x.RegionFree(0) != 256 {
		t.Fatalf("regions=%d free0=%d", x.Regions(), x.RegionFree(0))
	}
	active.Set(5)
	active.Set(300)
	if x.RegionFree(0) != 255 || x.RegionFree(1) != 255 {
		t.Fatalf("free0=%d free1=%d", x.RegionFree(0), x.RegionFree(1))
	}
	active.Clear(5)
	if x.RegionFree(0) != 256 {
		t.Fatalf("free0=%d after clear", x.RegionFree(0))
	}
	verifyEmpty(t, x, "after set/clear")
}

func TestIndexMaskedBitsAreNotAllocatable(t *testing.T) {
	active, summary, x := testIndex(1024, 256)
	// Summary-held bit leaves the free pool.
	sm := New(fs.NewFile(3, 2), 1024)
	sm.SetRaw(10)
	sm.SetRaw(700)
	summary.OrFrom(sm.File())
	if x.RegionFree(0) != 255 || x.RegionFree(2) != 255 {
		t.Fatalf("free0=%d free2=%d after fold", x.RegionFree(0), x.RegionFree(2))
	}
	// Setting the active bit while the summary holds it changes nothing:
	// the bit was already unallocatable.
	active.Set(10)
	if x.RegionFree(0) != 255 {
		t.Fatalf("free0=%d after active set of summary-held bit", x.RegionFree(0))
	}
	// Clearing active while summary still holds it: still unallocatable.
	active.Clear(10)
	if x.RegionFree(0) != 255 {
		t.Fatalf("free0=%d after active clear of summary-held bit", x.RegionFree(0))
	}
	// Snapshot reclaim clears the summary bit: now it is free again.
	summary.Clear(10)
	summary.Clear(700)
	if x.RegionFree(0) != 256 || x.RegionFree(2) != 256 {
		t.Fatalf("free0=%d free2=%d after reclaim", x.RegionFree(0), x.RegionFree(2))
	}
	verifyEmpty(t, x, "after fold+reclaim")
}

func TestIndexFindFreeMatchesLegacyScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	active, summary, x := testIndex(8192, 1024)
	for i := 0; i < 5000; i++ {
		bn := uint64(rng.Intn(8192))
		if !active.IsSet(bn) {
			active.Set(bn)
		}
	}
	sm := New(fs.NewFile(3, 2), 8192)
	for i := 0; i < 1000; i++ {
		sm.SetRaw(uint64(rng.Intn(8192)))
	}
	summary.OrFrom(sm.File())
	for _, span := range [][2]uint64{{0, 8192}, {100, 1000}, {67, 69}, {1024, 2048}, {8000, 8192}} {
		got, _ := x.FindFree(nil, span[0], span[1], 1<<20)
		legacy, _ := active.FindFree(nil, span[0], span[1], 1<<20)
		var want []uint64
		for _, bn := range legacy {
			if !summary.IsSet(bn) {
				want = append(want, bn)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("span %v: got %d bits, want %d", span, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("span %v: bit %d: got %d want %d", span, i, got[i], want[i])
			}
		}
	}
	// max is honored.
	got, _ := x.FindFree(nil, 0, 8192, 7)
	if len(got) > 7 {
		t.Fatalf("max ignored: %d bits", len(got))
	}
}

func TestIndexFindFreeSkipsExhaustedWords(t *testing.T) {
	// Fill all but the last word of an 8192-bit space: the indexed scan must
	// not pay for the 127 exhausted words.
	active, _, x := testIndex(8192, 8192)
	for bn := uint64(0); bn < 8128; bn++ {
		active.Set(bn)
	}
	got, words := x.FindFree(nil, 0, 8192, 64)
	if len(got) != 64 || got[0] != 8128 {
		t.Fatalf("got %d bits, first %d", len(got), got[0])
	}
	// 2 free-words bitset words + 1 data word — far below the 128 data words
	// a legacy scan reads.
	if words > 4 {
		t.Fatalf("indexed scan examined %d words", words)
	}
	_, legacyWords := active.FindFree(nil, 0, 8192, 64)
	if legacyWords != 128 {
		t.Fatalf("legacy scan examined %d words", legacyWords)
	}
}

func TestIndexPropertyRandomTransitions(t *testing.T) {
	// Property: after an arbitrary interleaving of active set/clear, summary
	// folds (snapshot create) and summary clears (snapshot reclaim), both
	// index levels equal a full recount.
	const nbits = 4096
	rng := rand.New(rand.NewSource(1234))
	active, summary, x := testIndex(nbits, 512)
	activeState := make(map[uint64]bool)
	summaryState := make(map[uint64]bool)
	for step := 0; step < 2000; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // active set/clear toggle
			bn := uint64(rng.Intn(nbits))
			if activeState[bn] {
				active.Clear(bn)
				activeState[bn] = false
			} else {
				active.Set(bn)
				activeState[bn] = true
			}
		case op < 7: // snapshot create: fold a random snapmap into summary
			sm := New(fs.NewFile(9, 2), nbits)
			for i := 0; i < 64; i++ {
				bn := uint64(rng.Intn(nbits))
				if sm.IsSet(bn) {
					continue
				}
				sm.SetRaw(bn)
				summaryState[bn] = true
			}
			summary.OrFrom(sm.File())
		default: // snapshot reclaim: clear some held summary bits
			cleared := 0
			for bn := range summaryState {
				if !summaryState[bn] {
					continue
				}
				summary.Clear(bn)
				summaryState[bn] = false
				if cleared++; cleared == 32 {
					break
				}
			}
		}
	}
	verifyEmpty(t, x, "after random transitions")
	// Spot-check one region against the oracle directly.
	want, _ := active.CountFreeNotIn(summary, 512, 1024)
	if got := x.RegionFree(1); got != int64(want) {
		t.Fatalf("region 1: counter %d != recount %d", got, want)
	}
}

func TestIndexRebuildMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	active, summary, x := testIndex(4096, 1024)
	for i := 0; i < 1500; i++ {
		bn := uint64(rng.Intn(4096))
		if !active.IsSet(bn) {
			active.Set(bn)
		}
	}
	sm := New(fs.NewFile(3, 2), 4096)
	for i := 0; i < 400; i++ {
		sm.SetRaw(uint64(rng.Intn(4096)))
	}
	summary.OrFrom(sm.File())
	before := make([]int64, x.Regions())
	for r := range before {
		before[r] = x.RegionFree(r)
	}
	// Rebuild from map content must reproduce the incrementally maintained
	// state — the mount/Rebind path.
	x.Rebuild()
	for r := range before {
		if x.RegionFree(r) != before[r] {
			t.Fatalf("region %d: rebuild %d != incremental %d", r, x.RegionFree(r), before[r])
		}
	}
	verifyEmpty(t, x, "after rebuild")
}

func TestIndexVerifyCatchesCorruption(t *testing.T) {
	active, _, x := testIndex(2048, 512)
	active.Set(3)
	verifyEmpty(t, x, "baseline")
	x.CorruptRegionCounter(1, -2)
	if errs := x.Verify(); len(errs) == 0 {
		t.Fatal("Verify missed corrupted region counter")
	}
	x.CorruptRegionCounter(1, 2) // restore
	verifyEmpty(t, x, "after restore")
	x.CorruptFreeWord(5)
	if errs := x.Verify(); len(errs) == 0 {
		t.Fatal("Verify missed corrupted free-words bit")
	}
}

func TestIndexRegionSizeMustBeWordMultiple(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for region size not a multiple of 64")
		}
	}()
	active := New(fs.NewFile(1, 2), 1024)
	NewIndex(active, nil, 100)
}
