package fs

import (
	"encoding/binary"

	"wafl/internal/block"
)

// RecordSize is the on-disk size of a serialized inode record.
const RecordSize = 64

// RecordsPerBlock is the number of inode records per inode-file block.
const RecordsPerBlock = block.Size / RecordSize

// Record is the persistent form of an inode: what the inode file stores.
type Record struct {
	Ino        uint64
	SizeBlocks uint64
	Height     uint32
	Flags      uint32
	RootVVBN   block.VVBN
	RootVBN    block.VBN
	Gen        uint64
}

// Record flags.
const (
	FlagInUse uint32 = 1 << iota
	FlagMetafile
)

// EncodeRecord serializes r into dst (at least RecordSize bytes).
func EncodeRecord(dst []byte, r Record) {
	binary.LittleEndian.PutUint64(dst[0:], r.Ino)
	binary.LittleEndian.PutUint64(dst[8:], r.SizeBlocks)
	binary.LittleEndian.PutUint32(dst[16:], r.Height)
	binary.LittleEndian.PutUint32(dst[20:], r.Flags)
	binary.LittleEndian.PutUint64(dst[24:], uint64(r.RootVVBN))
	binary.LittleEndian.PutUint64(dst[32:], uint64(r.RootVBN))
	binary.LittleEndian.PutUint64(dst[40:], r.Gen)
	for i := 48; i < RecordSize; i++ {
		dst[i] = 0
	}
}

// DecodeRecord deserializes a record from src.
func DecodeRecord(src []byte) Record {
	return Record{
		Ino:        binary.LittleEndian.Uint64(src[0:]),
		SizeBlocks: binary.LittleEndian.Uint64(src[8:]),
		Height:     binary.LittleEndian.Uint32(src[16:]),
		Flags:      binary.LittleEndian.Uint32(src[20:]),
		RootVVBN:   block.VVBN(binary.LittleEndian.Uint64(src[24:])),
		RootVBN:    block.VBN(binary.LittleEndian.Uint64(src[32:])),
		Gen:        binary.LittleEndian.Uint64(src[40:]),
	}
}

// RecordLocation returns the inode-file FBN and the byte offset within that
// block where inode ino's record lives.
func RecordLocation(ino uint64) (block.FBN, int) {
	return block.FBN(ino / RecordsPerBlock), int(ino%RecordsPerBlock) * RecordSize
}

// RecordOf captures f's current persistent state as a record.
func (f *File) RecordOf(flags uint32) Record {
	return Record{
		Ino:        f.ino,
		SizeBlocks: uint64(f.size),
		Height:     uint32(f.height),
		Flags:      flags | FlagInUse,
		RootVVBN:   f.RootVVBN,
		RootVBN:    f.RootVBN,
		Gen:        f.Gen,
	}
}

// FileFromRecord reconstructs a file's skeleton from its record (mount
// path); buffers are demand-loaded later.
func FileFromRecord(r Record) *File {
	f := NewFile(r.Ino, int(r.Height))
	f.size = block.FBN(r.SizeBlocks)
	f.RootVVBN = r.RootVVBN
	f.RootVBN = r.RootVBN
	f.Gen = r.Gen
	return f
}
