package fs

import (
	"bytes"
	"testing"
	"testing/quick"

	"wafl/internal/block"
)

func pattern(tag byte) []byte {
	b := make([]byte, block.Size)
	for i := range b {
		b[i] = tag ^ byte(i)
	}
	return b
}

func TestHeightFor(t *testing.T) {
	cases := []struct {
		blocks uint64
		want   int
	}{
		{1, 1}, {256, 1}, {257, 2}, {65536, 2}, {65537, 3}, {1 << 24, 3}, {1<<24 + 1, 4},
	}
	for _, c := range cases {
		if got := HeightFor(c.blocks); got != c.want {
			t.Errorf("HeightFor(%d) = %d, want %d", c.blocks, got, c.want)
		}
	}
}

func TestWriteReadBlock(t *testing.T) {
	f := NewFile(1, 2)
	f.WriteBlock(0, pattern(1))
	f.WriteBlock(300, pattern(2))
	if !bytes.Equal(f.ReadBlock(0), pattern(1)) || !bytes.Equal(f.ReadBlock(300), pattern(2)) {
		t.Fatal("read-after-write mismatch")
	}
	if f.ReadBlock(5) != nil {
		t.Fatal("hole should read nil from cache")
	}
	if f.Size() != 301 {
		t.Fatalf("size = %d, want 301", f.Size())
	}
	if f.DirtyCount() != 2 {
		t.Fatalf("dirty = %d, want 2", f.DirtyCount())
	}
}

func TestRewriteSameBlockDirtiesOnce(t *testing.T) {
	f := NewFile(1, 1)
	f.WriteBlock(7, pattern(1))
	f.WriteBlock(7, pattern(2))
	if f.DirtyCount() != 1 {
		t.Fatalf("dirty = %d, want 1", f.DirtyCount())
	}
	if !bytes.Equal(f.ReadBlock(7), pattern(2)) {
		t.Fatal("second write lost")
	}
}

func TestFreezeMovesDirtySet(t *testing.T) {
	f := NewFile(1, 1)
	f.WriteBlock(1, pattern(1))
	f.WriteBlock(2, pattern(2))
	n := f.Freeze()
	if n != 2 || f.FrozenCount() != 2 || f.DirtyCount() != 0 {
		t.Fatalf("freeze: n=%d frozen=%d dirty=%d", n, f.FrozenCount(), f.DirtyCount())
	}
	l0 := f.FrozenLevel(0)
	if len(l0) != 2 || l0[0].FBN() != 1 || l0[1].FBN() != 2 {
		t.Fatalf("frozen level 0 = %v", l0)
	}
	for _, b := range l0 {
		if !b.InCP() {
			t.Fatal("frozen buffer not marked inCP")
		}
	}
}

func TestCOWDuringCP(t *testing.T) {
	f := NewFile(1, 1)
	f.WriteBlock(3, pattern(1))
	f.Freeze()
	b := f.Buffer(0, 3)
	// Client overwrites during the CP: the CP image must keep pattern(1).
	f.WriteBlock(3, pattern(9))
	if !bytes.Equal(b.CPImage(), pattern(1)) {
		t.Fatal("CP image lost pre-modification content")
	}
	if !bytes.Equal(b.Data(), pattern(9)) {
		t.Fatal("live image lost client write")
	}
	if f.CoWCopies != 1 {
		t.Fatalf("CoWCopies = %d, want 1", f.CoWCopies)
	}
	if f.DirtyCount() != 1 {
		t.Fatal("client write during CP must dirty the next generation")
	}
	// Second write during CP must not copy again.
	f.WriteBlock(3, pattern(10))
	if f.CoWCopies != 1 {
		t.Fatalf("CoWCopies = %d after second write, want 1", f.CoWCopies)
	}
}

func TestCleanChildUpdatesParentAndRoot(t *testing.T) {
	f := NewFile(1, 2)
	f.WriteBlock(5, pattern(5))
	f.Freeze()

	b := f.FrozenLevel(0)[0]
	oldVVBN, oldVBN := f.CleanChild(b, 100, 200)
	if oldVVBN != block.InvalidVVBN || oldVBN != block.InvalidVBN {
		t.Fatal("new block should have no old location")
	}
	if b.VVBN() != 100 || b.VBN() != 200 {
		t.Fatal("buffer location not updated")
	}
	// Parent (L1 idx 0) must now be frozen-dirty with the pointer set.
	l1 := f.FrozenLevel(1)
	if len(l1) != 1 {
		t.Fatalf("L1 frozen = %d, want 1", len(l1))
	}
	vv, vb := PtrAt(l1[0], 5)
	if vv != 100 || vb != 200 {
		t.Fatalf("parent pointer = (%v,%v)", vv, vb)
	}
	// Clean up the chain: L1 then root (level 2).
	f.CleanChild(l1[0], 101, 201)
	l2 := f.FrozenLevel(2)
	if len(l2) != 1 {
		t.Fatalf("root level frozen = %d, want 1", len(l2))
	}
	vv, vb = PtrAt(l2[0], 0)
	if vv != 101 || vb != 201 {
		t.Fatalf("root pointer entry = (%v,%v)", vv, vb)
	}
	f.CleanChild(l2[0], 102, 202)
	if f.RootVVBN != 102 || f.RootVBN != 202 {
		t.Fatalf("root = (%v,%v)", f.RootVVBN, f.RootVBN)
	}
	if f.FrozenCount() != 0 {
		t.Fatalf("frozen count = %d after full clean", f.FrozenCount())
	}
	if f.Gen != 1 {
		t.Fatalf("gen = %d, want 1", f.Gen)
	}
}

func TestRecleanReportsOldLocation(t *testing.T) {
	f := NewFile(1, 1)
	f.WriteBlock(0, pattern(1))
	f.Freeze()
	b := f.FrozenLevel(0)[0]
	f.CleanChild(b, 10, 20)
	f.CleanChild(f.FrozenLevel(1)[0], 11, 21)

	// Overwrite and clean again: the old location must be reported.
	f.WriteBlock(0, pattern(2))
	f.Freeze()
	b2 := f.FrozenLevel(0)[0]
	if b2 != b {
		t.Fatal("same FBN should reuse the buffer")
	}
	oldVVBN, oldVBN := f.CleanChild(b2, 30, 40)
	if oldVVBN != 10 || oldVBN != 20 {
		t.Fatalf("old location = (%v,%v), want (10,20)", oldVVBN, oldVBN)
	}
}

func TestSealedBufferCloneOnWrite(t *testing.T) {
	f := NewFile(1, 1)
	f.WriteBlock(0, pattern(1))
	f.Freeze()
	b := f.FrozenLevel(0)[0]
	submitted := b.CPImage()
	f.CleanChild(b, 10, 20)
	f.CleanChild(f.FrozenLevel(1)[0], 11, 21)
	// After cleaning, the submitted array is owned by the media; a new
	// client write must not mutate it.
	f.WriteBlock(0, pattern(2))
	if !bytes.Equal(submitted, pattern(1)) {
		t.Fatal("post-clean write mutated the submitted (persisted) image")
	}
}

func TestDirtyIntoCPAndCPMutableData(t *testing.T) {
	f := NewFile(1, 1)
	b := f.GetOrCreateL0(3)
	d := b.CPMutableData()
	d[0] = 0xEE
	f.DirtyIntoCP(b)
	if f.FrozenCount() != 1 {
		t.Fatal("DirtyIntoCP must add to frozen set")
	}
	f.DirtyIntoCP(b) // idempotent
	if f.FrozenCount() != 1 {
		t.Fatal("DirtyIntoCP must be idempotent")
	}
	if f.CleanChildAll(t) != 2 { // L0 + root
		t.Fatal("unexpected clean count")
	}
}

// CleanChildAll cleans every frozen buffer bottom-up with synthetic
// locations and returns how many were cleaned. Test helper.
func (f *File) CleanChildAll(t *testing.T) int {
	t.Helper()
	n := 0
	loc := uint64(1000)
	for level := 0; level <= f.height; level++ {
		for _, b := range f.FrozenLevel(level) {
			f.CleanChild(b, block.VVBN(loc), block.VBN(loc+1))
			loc += 2
			n++
		}
	}
	return n
}

func TestFreezeWithUncleanedFrozenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f := NewFile(1, 1)
	f.WriteBlock(0, pattern(1))
	f.Freeze()
	f.WriteBlock(1, pattern(2))
	f.Freeze() // previous CP incomplete
}

func TestRecordRoundTrip(t *testing.T) {
	fn := func(ino, size uint64, height uint8, vvbn, vbn, gen uint64) bool {
		h := uint32(height%MaxHeight) + 1
		r := Record{
			Ino: ino, SizeBlocks: size, Height: h, Flags: FlagInUse | FlagMetafile,
			RootVVBN: block.VVBN(vvbn), RootVBN: block.VBN(vbn), Gen: gen,
		}
		buf := make([]byte, RecordSize)
		EncodeRecord(buf, r)
		return DecodeRecord(buf) == r
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecordLocation(t *testing.T) {
	fbn, off := RecordLocation(0)
	if fbn != 0 || off != 0 {
		t.Fatal("record 0 location")
	}
	fbn, off = RecordLocation(RecordsPerBlock + 3)
	if fbn != 1 || off != 3*RecordSize {
		t.Fatalf("location = (%d,%d)", fbn, off)
	}
}

func TestFileFromRecordRoundTrip(t *testing.T) {
	f := NewFile(9, 2)
	f.WriteBlock(100, pattern(1))
	f.Freeze()
	f.CleanChildAll(t)
	rec := f.RecordOf(0)
	g := FileFromRecord(rec)
	if g.Ino() != 9 || g.Height() != 2 || g.Size() != 101 || g.RootVVBN != f.RootVVBN || g.RootVBN != f.RootVBN {
		t.Fatalf("rebuilt file mismatch: %+v vs %+v", g, f)
	}
}

func TestInstallBufferSealsAndAliases(t *testing.T) {
	f := NewFile(1, 1)
	media := pattern(7)
	b := f.InstallBuffer(0, 4, media, 50, 60)
	if !bytes.Equal(f.ReadBlock(4), pattern(7)) {
		t.Fatal("installed buffer unreadable")
	}
	if b.VVBN() != 50 || b.VBN() != 60 {
		t.Fatal("installed location wrong")
	}
	// Writing must clone, preserving the media array.
	f.WriteBlock(4, pattern(8))
	if !bytes.Equal(media, pattern(7)) {
		t.Fatal("write mutated media-owned array")
	}
}

func TestWriteBeyondCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f := NewFile(1, 1)
	f.WriteBlock(block.FBN(block.PtrsPerBlock), pattern(1))
}

func TestFrozenLevelSorted(t *testing.T) {
	f := NewFile(1, 1)
	for _, fbn := range []block.FBN{9, 3, 7, 1, 200} {
		f.WriteBlock(fbn, pattern(byte(fbn)))
	}
	f.Freeze()
	l0 := f.FrozenLevel(0)
	for i := 1; i < len(l0); i++ {
		if l0[i-1].FBN() >= l0[i].FBN() {
			t.Fatal("FrozenLevel not sorted")
		}
	}
}

func TestPropertyFreezeCleanCycle(t *testing.T) {
	// Property: across random write/freeze/clean cycles, every frozen
	// buffer is cleaned exactly once per cycle and dirty counts stay
	// consistent.
	fn := func(writes []uint16) bool {
		f := NewFile(1, 2)
		seen := map[block.FBN]bool{}
		for _, w := range writes {
			fbn := block.FBN(w) % 1000
			f.WriteBlock(fbn, pattern(byte(w)))
			seen[fbn] = true
		}
		if f.DirtyCount() != len(seen) {
			return false
		}
		n := f.Freeze()
		if n != len(seen) {
			return false
		}
		cleaned := 0
		loc := uint64(10)
		for level := 0; level <= f.Height(); level++ {
			for _, b := range f.FrozenLevel(level) {
				f.CleanChild(b, block.VVBN(loc), block.VBN(loc+1))
				loc += 2
				cleaned++
			}
		}
		if f.FrozenCount() != 0 {
			return false
		}
		if len(seen) > 0 && (f.RootVVBN == block.InvalidVVBN || cleaned <= len(seen)) {
			// cleaning must also have written indirects + root
			return false
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
