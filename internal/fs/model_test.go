package fs

import (
	"bytes"
	"math/rand"
	"testing"

	"wafl/internal/block"
)

// TestModelRandomOps drives a File through random interleavings of client
// writes, CP freezes, mid-CP overwrites (CoW), and cleans, comparing its
// observable content against a plain map reference model at every step.
func TestModelRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		f := NewFile(1, 2)
		model := make(map[block.FBN][]byte)
		loc := uint64(100)
		inCP := false

		check := func(step int) {
			for fbn, want := range model {
				got := f.ReadBlock(fbn)
				if got == nil || !bytes.Equal(got[:len(want)], want) {
					t.Fatalf("seed %d step %d: fbn %d mismatch", seed, step, fbn)
				}
			}
		}
		cleanAll := func() {
			for level := 0; level <= f.Height(); level++ {
				for _, b := range f.FrozenLevel(level) {
					f.CleanChild(b, block.VVBN(loc), block.VBN(loc+1))
					loc += 2
				}
			}
		}

		for step := 0; step < 400; step++ {
			switch op := rng.Intn(10); {
			case op < 7: // client write
				fbn := block.FBN(rng.Intn(2000))
				payload := make([]byte, 32)
				rng.Read(payload)
				f.WriteBlock(fbn, payload)
				model[fbn] = payload
			case op < 8: // freeze (start CP) if none running
				if !inCP && f.DirtyCount() > 0 {
					f.Freeze()
					inCP = true
				}
			case op < 9: // partially clean the frozen set
				if inCP {
					for _, b := range f.FrozenLevel(0)[:min(3, len(f.FrozenLevel(0)))] {
						f.CleanChild(b, block.VVBN(loc), block.VBN(loc+1))
						loc += 2
					}
				}
			default: // finish the CP
				if inCP {
					cleanAll()
					inCP = false
				}
			}
			check(step)
		}
		if inCP {
			cleanAll()
		}
		check(-1)
		if f.FrozenCount() != 0 {
			t.Fatalf("seed %d: %d frozen left", seed, f.FrozenCount())
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestCleanLocationsNeverRepeatWithinCycle checks the allocator-facing
// contract: across a freeze/clean cycle each buffer gets exactly one new
// location and reports its previous one exactly once.
func TestCleanLocationsNeverRepeatWithinCycle(t *testing.T) {
	f := NewFile(1, 2)
	prev := make(map[block.FBN]block.VBN)
	loc := uint64(10)
	for round := 0; round < 5; round++ {
		for i := 0; i < 50; i++ {
			f.WriteBlock(block.FBN(i*7%300), []byte{byte(round)})
		}
		f.Freeze()
		seen := make(map[block.VBN]bool)
		for level := 0; level <= f.Height(); level++ {
			for _, b := range f.FrozenLevel(level) {
				newVBN := block.VBN(loc)
				loc++
				oldVVBN, oldVBN := f.CleanChild(b, block.VVBN(loc)<<32, newVBN)
				_ = oldVVBN
				if seen[newVBN] {
					t.Fatal("location assigned twice")
				}
				seen[newVBN] = true
				if b.Level() == 0 {
					if want, ok := prev[b.FBN()]; ok && oldVBN != want {
						t.Fatalf("round %d fbn %d: freed %v, expected %v", round, b.FBN(), oldVBN, want)
					}
					prev[b.FBN()] = newVBN
				}
			}
		}
	}
}
