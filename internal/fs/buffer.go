// Package fs implements the in-memory copy-on-write file system core: block
// buffers with consistency-point COW semantics, files as radix trees of
// indirect blocks (dual VVBN/VBN pointers, as in WAFL), per-file dirty-set
// management across consistency-point freezes, and the serialized inode
// records stored in inode metafiles.
//
// The package is deliberately mechanism-only: it knows nothing about drives,
// allocators, or scheduling. The consistency-point engine (internal/cp) and
// the write allocator (internal/core) drive it through the cleaning
// iteration API on File.
package fs

import (
	"wafl/internal/block"
)

// Buffer is the in-memory image of one block of a file, at any tree level
// (level 0 = user/metafile data, higher levels = indirect blocks).
//
// CoW semantics during a consistency point (paper §II-C): when a CP freezes
// a dirty buffer, the buffer is marked inCP. If a client modifies the buffer
// while it is inCP and not yet cleaned, the pre-modification image is
// preserved as the CP image (cpData) and the live image (data) is cloned for
// the modification; the change lands in the *next* CP. Once the cleaner has
// submitted the buffer's CP image for writing, the buffer is sealed: the
// submitted array is referenced by the drive media and must never be
// mutated, so the next modification clones first.
type Buffer struct {
	fbn   block.FBN
	level int

	data   []byte // live image
	cpData []byte // frozen CP image, set only if modified while inCP
	inCP   bool   // frozen into the running CP, not yet cleaned
	sealed bool   // live image was submitted to storage; clone before mutating

	dirtyCurr   bool // dirty in the open (accepting) generation
	dirtyFrozen bool // dirty in the freezing CP's set

	vvbn block.VVBN // current on-disk virtual location (InvalidVVBN if none)
	vbn  block.VBN  // current on-disk physical location (InvalidVBN if none)
}

func newBuffer(fbn block.FBN, level int) *Buffer {
	return &Buffer{
		fbn:   fbn,
		level: level,
		data:  block.New(),
		vvbn:  block.InvalidVVBN,
		vbn:   block.InvalidVBN,
	}
}

// FBN returns the buffer's file block number (for level > 0, the lowest FBN
// it covers).
func (b *Buffer) FBN() block.FBN { return b.fbn }

// Level returns the buffer's tree level (0 = data).
func (b *Buffer) Level() int { return b.level }

// VVBN returns the buffer's current on-disk virtual address.
func (b *Buffer) VVBN() block.VVBN { return b.vvbn }

// VBN returns the buffer's current on-disk physical address.
func (b *Buffer) VBN() block.VBN { return b.vbn }

// InCP reports whether the buffer is frozen into the running CP.
func (b *Buffer) InCP() bool { return b.inCP }

// DirtyCurr reports whether the buffer is dirty in the open generation.
func (b *Buffer) DirtyCurr() bool { return b.dirtyCurr }

// DirtyFrozen reports whether the buffer is dirty in the freezing CP's set.
func (b *Buffer) DirtyFrozen() bool { return b.dirtyFrozen }

// Data returns the live image for reading. Callers must not mutate it; use
// MutableData for writes.
func (b *Buffer) Data() []byte { return b.data }

// CPImage returns the image that belongs to the running CP: the preserved
// pre-modification copy if the buffer was modified while frozen, otherwise
// the live image.
func (b *Buffer) CPImage() []byte {
	if b.cpData != nil {
		return b.cpData
	}
	return b.data
}

// MutableData returns the live image for mutation, performing whatever
// copy-on-write the buffer's state requires:
//
//   - inCP and not yet preserved: the current image becomes the CP image and
//     the live image is cloned (the modification belongs to the next CP);
//   - sealed (already submitted to storage): the live image is cloned so the
//     media's reference stays immutable.
//
// Returns true in the second return value if this call dirtied state that
// the caller must record (the caller always marks dirty anyway; the flag
// reports whether a CoW copy happened, for statistics).
func (b *Buffer) MutableData() ([]byte, bool) {
	cowed := false
	if b.inCP && b.cpData == nil {
		b.cpData = b.data
		b.data = block.Clone(b.data)
		cowed = true
	} else if b.sealed {
		b.data = block.Clone(b.data)
		b.sealed = false
		cowed = true
	}
	return b.data, cowed
}

// CPMutableData returns the running CP's image for mutation by CP-side code
// (the cleaner updating a parent indirect's child pointers, the
// infrastructure updating allocation-metafile bits, inode-record
// serialization). Unlike MutableData, a modification through this method
// belongs to the *current* CP.
//
// Indirect and metafile buffers are mutated only by CP-side code, so their
// CP image and live image are the same array and updates are visible to
// both; the method unseals (clones) if the live image was already submitted
// to storage in an earlier CP.
func (b *Buffer) CPMutableData() []byte {
	if b.cpData != nil {
		return b.cpData
	}
	if b.sealed {
		b.data = block.Clone(b.data)
		b.sealed = false
	}
	return b.data
}

// freeze moves the buffer's open-generation dirtiness into the freezing CP.
func (b *Buffer) freeze() {
	b.inCP = true
	b.dirtyFrozen = true
	b.dirtyCurr = false
}

// MarkCleaned records that the cleaner submitted the CP image at the new
// location (vvbn, vbn) and returns the previous location for freeing.
// After cleaning, the buffer leaves the CP: if the CP image was the live
// image, the buffer is sealed (the media now references that array).
func (b *Buffer) MarkCleaned(vvbn block.VVBN, vbn block.VBN) (oldVVBN block.VVBN, oldVBN block.VBN) {
	oldVVBN, oldVBN = b.vvbn, b.vbn
	b.vvbn, b.vbn = vvbn, vbn
	if b.cpData == nil {
		b.sealed = true
	}
	b.cpData = nil
	b.inCP = false
	b.dirtyFrozen = false
	return oldVVBN, oldVBN
}
