package fs

import (
	"fmt"
	"sort"

	"wafl/internal/block"
)

// radixBits is the fan-out of the indirect tree in bits (256 pointers per
// indirect block).
const radixBits = 8

// MaxHeight is the largest supported tree height (256^4 blocks ≈ 16 TiB).
const MaxHeight = 4

// HeightFor returns the minimum tree height able to address maxBlocks
// blocks. The height is fixed at file creation, as in WAFL where it grows
// only on explicit extension.
func HeightFor(maxBlocks uint64) int {
	span := uint64(block.PtrsPerBlock)
	for h := 1; h <= MaxHeight; h++ {
		if maxBlocks <= span {
			return h
		}
		span *= uint64(block.PtrsPerBlock)
	}
	panic(fmt.Sprintf("fs: file of %d blocks exceeds maximum height", maxBlocks))
}

// dirtySet tracks dirty buffers per level.
type dirtySet struct {
	levels []map[block.FBN]*Buffer // keyed by buffer index within the level
	count  int
}

func newDirtySet(height int) *dirtySet {
	ds := &dirtySet{levels: make([]map[block.FBN]*Buffer, height+1)}
	for i := range ds.levels {
		ds.levels[i] = make(map[block.FBN]*Buffer)
	}
	return ds
}

func (ds *dirtySet) add(idx block.FBN, b *Buffer) {
	if _, ok := ds.levels[b.level][idx]; !ok {
		ds.levels[b.level][idx] = b
		ds.count++
	}
}

// File is a buffer tree: a radix tree of indirect blocks over L0 data
// blocks. Both user files and metafiles (allocation bitmaps, inode files,
// container maps) are Files — "WAFL stores all metadata in files".
type File struct {
	ino    uint64
	height int
	size   block.FBN // one past the highest FBN ever written

	// levels[l] caches this file's buffers at level l, keyed by buffer
	// index (fbn >> (8*l)).
	levels []map[block.FBN]*Buffer

	curr   *dirtySet // dirty in the open generation
	frozen *dirtySet // dirty in the freezing CP

	// Root location on persistent storage (pointer held by the inode).
	RootVVBN block.VVBN
	RootVBN  block.VBN

	// Gen counts CPs that cleaned this file (persisted in the record).
	Gen uint64

	// CoWCopies counts copy-on-write clones taken because clients modified
	// frozen or sealed buffers.
	CoWCopies uint64
}

// NewFile creates an empty file of the given tree height.
func NewFile(ino uint64, height int) *File {
	if height < 1 || height > MaxHeight {
		panic(fmt.Sprintf("fs: invalid height %d", height))
	}
	f := &File{
		ino:      ino,
		height:   height,
		levels:   make([]map[block.FBN]*Buffer, height+1),
		RootVVBN: block.InvalidVVBN,
		RootVBN:  block.InvalidVBN,
	}
	for i := range f.levels {
		f.levels[i] = make(map[block.FBN]*Buffer)
	}
	f.curr = newDirtySet(height)
	f.frozen = newDirtySet(height)
	return f
}

// Ino returns the file's inode number.
func (f *File) Ino() uint64 { return f.ino }

// Height returns the file's tree height.
func (f *File) Height() int { return f.height }

// Size returns one past the highest FBN ever written.
func (f *File) Size() block.FBN { return f.size }

// MaxBlocks returns the file's addressable capacity in blocks.
func (f *File) MaxBlocks() uint64 {
	n := uint64(1)
	for i := 0; i < f.height; i++ {
		n *= uint64(block.PtrsPerBlock)
	}
	return n
}

// index returns b's key within its level map.
func index(b *Buffer) block.FBN { return b.fbn >> (radixBits * uint(b.level)) }

// Buffer returns the cached buffer at (level, idx), or nil.
func (f *File) Buffer(level int, idx block.FBN) *Buffer {
	return f.levels[level][idx]
}

// getOrCreate returns the buffer at (level, idx), creating it zeroed if
// absent.
func (f *File) getOrCreate(level int, idx block.FBN) *Buffer {
	if b := f.levels[level][idx]; b != nil {
		return b
	}
	b := newBuffer(idx<<(radixBits*uint(level)), level)
	f.levels[level][idx] = b
	return b
}

// InstallBuffer populates the cache with a block loaded from persistent
// storage (the mount/read path). data is adopted, not copied, and the
// buffer is sealed: it aliases the media image until first modification.
func (f *File) InstallBuffer(level int, idx block.FBN, data []byte, vvbn block.VVBN, vbn block.VBN) *Buffer {
	b := f.getOrCreate(level, idx)
	if data != nil {
		b.data = data
		b.sealed = true
	}
	b.vvbn, b.vbn = vvbn, vbn
	if level == 0 && b.fbn >= f.size {
		f.size = b.fbn + 1
	}
	return b
}

// WriteBlock writes data (up to one block) into FBN fbn in the open
// generation, applying CP copy-on-write as needed, and marks the buffer
// dirty. It returns the buffer.
func (f *File) WriteBlock(fbn block.FBN, data []byte) *Buffer {
	if uint64(fbn) >= f.MaxBlocks() {
		panic(fmt.Sprintf("fs: fbn %d beyond file capacity %d (ino %d)", fbn, f.MaxBlocks(), f.ino))
	}
	b := f.getOrCreate(0, fbn)
	dst, cowed := b.MutableData()
	if cowed {
		f.CoWCopies++
	}
	copy(dst, data)
	if !b.dirtyCurr {
		b.dirtyCurr = true
		f.curr.add(fbn, b)
	}
	if fbn >= f.size {
		f.size = fbn + 1
	}
	return b
}

// ReadBlock returns the live image of FBN fbn from the cache, or nil if the
// block is not resident (callers fall back to the demand-load path).
func (f *File) ReadBlock(fbn block.FBN) []byte {
	if b := f.levels[0][fbn]; b != nil {
		return b.Data()
	}
	return nil
}

// DirtyCount returns the number of buffers dirty in the open generation.
func (f *File) DirtyCount() int { return f.curr.count }

// FrozenCount returns the number of buffers still awaiting cleaning in the
// frozen set.
func (f *File) FrozenCount() int { return f.frozen.count }

// Freeze atomically moves the open generation's dirty set into the frozen
// set at CP start. The previous CP must have completed (empty frozen set).
// It returns the number of buffers frozen.
func (f *File) Freeze() int {
	if f.frozen.count != 0 {
		panic(fmt.Sprintf("fs: Freeze with %d uncleaned frozen buffers (ino %d)", f.frozen.count, f.ino))
	}
	n := 0
	for level, m := range f.curr.levels {
		for idx, b := range m {
			b.freeze()
			f.frozen.add(idx, b)
			n++
			delete(m, idx)
		}
		_ = level
	}
	f.curr.count = 0
	return n
}

// FrozenLevel returns the frozen-dirty buffers at the given level, sorted by
// FBN — the cleaning order. Cleaning level l may add newly-dirtied parents
// at level l+1; callers iterate levels bottom-up, calling FrozenLevel for
// each level only after the previous level is fully cleaned.
func (f *File) FrozenLevel(level int) []*Buffer {
	m := f.frozen.levels[level]
	out := make([]*Buffer, 0, len(m))
	for _, b := range m {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].fbn < out[j].fbn })
	return out
}

// CleanChild records that the cleaner assigned (vvbn, vbn) to frozen buffer
// b and submitted its CP image: it updates the parent indirect's CP image
// with the child's new dual address (dirtying the parent into the same CP),
// or the file's root pointer if b is the root. It returns b's previous
// location, to be freed.
func (f *File) CleanChild(b *Buffer, vvbn block.VVBN, vbn block.VBN) (oldVVBN block.VVBN, oldVBN block.VBN) {
	if !b.dirtyFrozen {
		panic("fs: CleanChild on buffer not in frozen set")
	}
	idx := index(b)
	delete(f.frozen.levels[b.level], idx)
	f.frozen.count--
	oldVVBN, oldVBN = b.MarkCleaned(vvbn, vbn)

	if b.level == f.height {
		f.RootVVBN, f.RootVBN = vvbn, vbn
		f.Gen++
		return oldVVBN, oldVBN
	}
	parent := f.getOrCreate(b.level+1, idx>>radixBits)
	pd := parent.CPMutableData()
	block.PutPtr(pd, int(idx&(block.PtrsPerBlock-1)), vvbn, vbn)
	if !parent.dirtyFrozen {
		parent.dirtyFrozen = true
		parent.inCP = true
		f.frozen.add(index(parent), parent)
	}
	return oldVVBN, oldVBN
}

// DirtyIntoCP marks a buffer dirty directly into the frozen set — used for
// metafile updates made on behalf of the running CP, which must reach
// persistent storage in that same CP (paper §II-C). The caller mutates the
// buffer via CPMutableData.
func (f *File) DirtyIntoCP(b *Buffer) {
	if !b.dirtyFrozen {
		b.dirtyFrozen = true
		b.inCP = true
		f.frozen.add(index(b), b)
	}
}

// GetOrCreateL0 returns the L0 buffer for fbn, creating it if needed,
// without marking it dirty. Metafile code uses it with DirtyIntoCP /
// CPMutableData.
func (f *File) GetOrCreateL0(fbn block.FBN) *Buffer {
	if uint64(fbn) >= f.MaxBlocks() {
		panic(fmt.Sprintf("fs: fbn %d beyond metafile capacity %d (ino %d)", fbn, f.MaxBlocks(), f.ino))
	}
	b := f.getOrCreate(0, fbn)
	if fbn >= f.size {
		f.size = fbn + 1
	}
	return b
}

// AncestorPath returns the chain of indirect buffers strictly above b, from
// b's parent up to the root, creating missing ones. Self-referential
// metafile flushing uses it to enumerate every buffer a clean will rewrite
// before committing to bit changes.
func (f *File) AncestorPath(b *Buffer) []*Buffer {
	var out []*Buffer
	idx := index(b)
	for level := b.level + 1; level <= f.height; level++ {
		idx >>= radixBits
		out = append(out, f.getOrCreate(level, idx))
	}
	return out
}

// PtrAt reads entry childIdx of indirect buffer b.
func PtrAt(b *Buffer, childIdx int) (block.VVBN, block.VBN) {
	if b.level == 0 {
		panic("fs: PtrAt on data buffer")
	}
	return block.GetPtr(b.Data(), childIdx)
}

// ResidentBuffers returns the total number of cached buffers (all levels).
func (f *File) ResidentBuffers() int {
	n := 0
	for _, m := range f.levels {
		n += len(m)
	}
	return n
}
