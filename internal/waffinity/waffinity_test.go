package waffinity

import (
	"fmt"
	"testing"

	"wafl/internal/sim"
)

// testEnv builds a scheduler with the default hierarchy on n cores/workers.
func testEnv(cores int) (*sim.Scheduler, *Scheduler, *Hierarchy) {
	s := sim.New(cores, 1)
	w := New(s, cores, 0)
	h := NewHierarchy(w, HierarchyConfig{Aggregates: 1, VolumesPerAgg: 2, StripesPerVol: 4, RangesPerVBN: 4})
	return s, w, h
}

// exclusionTracker records concurrently-active affinities and verifies that
// no two active affinities are ever in an ancestor/descendant relation.
type exclusionTracker struct {
	t      *testing.T
	active map[*Affinity]int
}

func newTracker(t *testing.T) *exclusionTracker {
	return &exclusionTracker{t: t, active: make(map[*Affinity]int)}
}

func related(a, b *Affinity) bool {
	for x := a; x != nil; x = x.parent {
		if x == b {
			return true
		}
	}
	for x := b; x != nil; x = x.parent {
		if x == a {
			return true
		}
	}
	return false
}

func (tr *exclusionTracker) enter(a *Affinity) {
	for other := range tr.active {
		if related(a, other) {
			tr.t.Errorf("exclusion violated: %s running concurrently with %s", a.Name(), other.Name())
		}
	}
	tr.active[a]++
	if tr.active[a] > 1 {
		tr.t.Errorf("affinity %s running two messages at once", a.Name())
	}
}

func (tr *exclusionTracker) exit(a *Affinity) {
	tr.active[a]--
	if tr.active[a] == 0 {
		delete(tr.active, a)
	}
}

func TestSiblingsRunInParallel(t *testing.T) {
	s, w, h := testEnv(4)
	vol := h.Aggrs[0].Volumes[0]
	var ends []sim.Time
	for i := 0; i < 4; i++ {
		aff := vol.Stripes[i]
		w.Send(aff, sim.CatClient, func(th *sim.Thread) {
			th.Consume(100 * sim.Microsecond)
		}, func() { ends = append(ends, s.Now()) })
	}
	s.Run(sim.Time(sim.Second))
	if len(ends) != 4 {
		t.Fatalf("completed %d messages", len(ends))
	}
	for _, e := range ends {
		if e != sim.Time(100*sim.Microsecond) {
			t.Fatalf("ends = %v; stripes should run fully parallel", ends)
		}
	}
}

func TestSameAffinitySerializes(t *testing.T) {
	s, w, h := testEnv(4)
	aff := h.Aggrs[0].Volumes[0].Stripes[0]
	var ends []sim.Time
	for i := 0; i < 3; i++ {
		w.Send(aff, sim.CatClient, func(th *sim.Thread) {
			th.Consume(10 * sim.Microsecond)
		}, func() { ends = append(ends, s.Now()) })
	}
	s.Run(sim.Time(sim.Second))
	want := []sim.Time{sim.Time(10 * sim.Microsecond), sim.Time(20 * sim.Microsecond), sim.Time(30 * sim.Microsecond)}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestParentExcludesChildren(t *testing.T) {
	s, w, h := testEnv(4)
	tr := newTracker(t)
	vol := h.Aggrs[0].Volumes[0]
	mk := func(aff *Affinity, d sim.Duration) {
		w.Send(aff, sim.CatClient, func(th *sim.Thread) {
			tr.enter(aff)
			th.Consume(d)
			tr.exit(aff)
		}, nil)
	}
	mk(vol.Logical, 50*sim.Microsecond)
	for i := 0; i < 4; i++ {
		mk(vol.Stripes[i], 20*sim.Microsecond)
	}
	mk(vol.Volume, 30*sim.Microsecond)
	s.Run(sim.Time(sim.Second))
	if got := w.Stats().Executed; got != 6 {
		t.Fatalf("executed %d messages, want 6", got)
	}
}

func TestCousinsRunInParallel(t *testing.T) {
	// Volume Logical work and Volume VBN work within the SAME volume can
	// run in parallel (paper §IV-B2, third mechanism); stripe work under
	// logical runs in parallel with range work under VBN.
	s, w, h := testEnv(4)
	vol := h.Aggrs[0].Volumes[0]
	var ends []sim.Time
	send := func(aff *Affinity) {
		w.Send(aff, sim.CatClient, func(th *sim.Thread) {
			th.Consume(100 * sim.Microsecond)
		}, func() { ends = append(ends, s.Now()) })
	}
	send(vol.Stripes[0])
	send(vol.Ranges[0])
	send(vol.Ranges[1])
	s.Run(sim.Time(sim.Second))
	for _, e := range ends {
		if e != sim.Time(100*sim.Microsecond) {
			t.Fatalf("ends = %v; stripe and VBN ranges should overlap fully", ends)
		}
	}
}

func TestSerialExcludesEverything(t *testing.T) {
	s, w, h := testEnv(8)
	tr := newTracker(t)
	inSerial := false
	vol := h.Aggrs[0].Volumes[0]
	for i := 0; i < 4; i++ {
		aff := vol.Stripes[i%len(vol.Stripes)]
		w.Send(aff, sim.CatClient, func(th *sim.Thread) {
			tr.enter(aff)
			if inSerial {
				t.Error("stripe message ran during serial message")
			}
			th.Consume(20 * sim.Microsecond)
			tr.exit(aff)
		}, nil)
	}
	w.Send(h.Serial, sim.CatOther, func(th *sim.Thread) {
		tr.enter(h.Serial)
		inSerial = true
		th.Consume(50 * sim.Microsecond)
		inSerial = false
		tr.exit(h.Serial)
	}, nil)
	for i := 0; i < 4; i++ {
		aff := h.Aggrs[0].Volumes[1].Stripes[i%4]
		w.Send(aff, sim.CatClient, func(th *sim.Thread) {
			tr.enter(aff)
			if inSerial {
				t.Error("stripe message ran during serial message")
			}
			th.Consume(20 * sim.Microsecond)
			tr.exit(aff)
		}, nil)
	}
	s.Run(sim.Time(sim.Second))
	if w.Stats().Executed != 9 {
		t.Fatalf("executed %d, want 9", w.Stats().Executed)
	}
}

func TestSerialMessageNotStarved(t *testing.T) {
	// A continuous stream of stripe messages must not starve a pending
	// Serial message.
	s, w, h := testEnv(4)
	vol := h.Aggrs[0].Volumes[0]
	var serialDone sim.Time
	stop := false
	var pump func(i int)
	pump = func(i int) {
		if stop || i > 2000 {
			return
		}
		w.Send(vol.Stripes[i%4], sim.CatClient, func(th *sim.Thread) {
			th.Consume(10 * sim.Microsecond)
		}, func() { pump(i + 1) })
	}
	for k := 0; k < 8; k++ {
		pump(k)
	}
	s.After(100*sim.Microsecond, func() {
		w.Send(h.Serial, sim.CatOther, func(th *sim.Thread) {
			th.Consume(10 * sim.Microsecond)
		}, func() {
			serialDone = s.Now()
			stop = true
		})
	})
	s.Run(sim.Time(sim.Second))
	if serialDone == 0 {
		t.Fatal("serial message starved")
	}
	if serialDone > sim.Time(2*sim.Millisecond) {
		t.Fatalf("serial message took until %v; anti-starvation too weak", serialDone)
	}
}

func TestCallBlocksUntilDone(t *testing.T) {
	s, w, h := testEnv(2)
	var callerResumed, msgRan sim.Time
	s.Go("caller", sim.CatOther, func(th *sim.Thread) {
		w.Call(th, h.Aggrs[0].Volumes[0].Stripes[0], sim.CatClient, func(worker *sim.Thread) {
			worker.Consume(40 * sim.Microsecond)
			msgRan = s.Now()
		})
		callerResumed = s.Now()
	})
	s.Run(sim.Time(sim.Second))
	if msgRan != sim.Time(40*sim.Microsecond) {
		t.Fatalf("message ran at %v", msgRan)
	}
	if callerResumed < msgRan {
		t.Fatalf("caller resumed at %v before message finished at %v", callerResumed, msgRan)
	}
}

func TestExclusionPropertyRandomized(t *testing.T) {
	// Fire a few hundred messages at random affinities and verify, via the
	// tracker, that the exclusion invariant holds throughout.
	s := sim.New(8, 99)
	w := New(s, 8, sim.Microsecond)
	NewHierarchy(w, HierarchyConfig{Aggregates: 2, VolumesPerAgg: 2, StripesPerVol: 4, RangesPerVBN: 4})
	tr := newTracker(t)
	var all []*Affinity
	w.Walk(func(a *Affinity) { all = append(all, a) })
	rng := s.Rand()
	n := 400
	for i := 0; i < n; i++ {
		aff := all[rng.Intn(len(all))]
		delay := sim.Duration(rng.Intn(3000)) * sim.Microsecond
		dur := sim.Duration(rng.Intn(30)+1) * sim.Microsecond
		s.After(delay, func() {
			w.Send(aff, sim.CatOther, func(th *sim.Thread) {
				tr.enter(aff)
				th.Consume(dur)
				tr.exit(aff)
			}, nil)
		})
	}
	s.Run(sim.Time(sim.Second))
	if got := w.Stats().Executed; got != uint64(n) {
		t.Fatalf("executed %d, want %d", got, n)
	}
}

func TestClassicalHierarchy(t *testing.T) {
	s := sim.New(4, 1)
	w := New(s, 4, 0)
	h := NewClassicalHierarchy(w, 8)
	if len(h.Aggrs[0].Volumes[0].Stripes) != 8 {
		t.Fatal("classical hierarchy should have 8 stripes")
	}
	// Metafile work targets Serial (same node as Volume/VBN handles).
	if h.Aggrs[0].AggrVBN != w.Root() {
		t.Fatal("classical AggrVBN must alias Serial")
	}
	var ends []sim.Time
	for i := 0; i < 4; i++ {
		w.Send(h.Aggrs[0].Volumes[0].Stripes[i], sim.CatClient, func(th *sim.Thread) {
			th.Consume(50 * sim.Microsecond)
		}, func() { ends = append(ends, s.Now()) })
	}
	s.Run(sim.Time(sim.Second))
	for _, e := range ends {
		if e != sim.Time(50*sim.Microsecond) {
			t.Fatalf("classical stripes should parallelize: %v", ends)
		}
	}
}

func TestHierarchyString(t *testing.T) {
	_, _, h := testEnv(1)
	out := h.String()
	for _, want := range []string{"Serial", "aggr0 [Aggregate]", "aggr0.vbn [AggrVBN]", "aggr0.vol1.stripe3 [Stripe]"} {
		if !contains(out, want) {
			t.Fatalf("tree rendering missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestDispatchCostAccounted(t *testing.T) {
	s := sim.New(2, 1)
	w := New(s, 2, 5*sim.Microsecond)
	hier := NewHierarchy(w, HierarchyConfig{Aggregates: 1, VolumesPerAgg: 1, StripesPerVol: 2, RangesPerVBN: 1})
	for i := 0; i < 10; i++ {
		w.Send(hier.Aggrs[0].Volumes[0].Stripes[i%2], sim.CatClient, func(th *sim.Thread) {
			th.Consume(sim.Microsecond)
		}, nil)
	}
	s.Run(sim.Time(sim.Second))
	if got := s.CPU().Busy[sim.CatWaffinity]; got != 50*sim.Microsecond {
		t.Fatalf("waffinity overhead = %v, want 50us", got)
	}
}

func TestQueueWaitAccounting(t *testing.T) {
	s, w, h := testEnv(1)
	aff := h.Aggrs[0].Volumes[0].Stripes[0]
	for i := 0; i < 3; i++ {
		w.Send(aff, sim.CatClient, func(th *sim.Thread) { th.Consume(10 * sim.Microsecond) }, nil)
	}
	s.Run(sim.Time(sim.Second))
	// Waits: 0 + 10us + 20us = 30us.
	if aff.QueueWait != 30*sim.Microsecond {
		t.Fatalf("queue wait = %v, want 30us", aff.QueueWait)
	}
}

func TestManyMessagesThroughput(t *testing.T) {
	// Smoke test: thousands of messages across the whole tree complete.
	s := sim.New(16, 3)
	w := New(s, 16, 0)
	NewHierarchy(w, DefaultHierarchy)
	var affs []*Affinity
	w.Walk(func(a *Affinity) {
		if a.Kind() == KindStripe || a.Kind() == KindRange {
			affs = append(affs, a)
		}
	})
	total := 5000
	for i := 0; i < total; i++ {
		w.Send(affs[i%len(affs)], sim.CatClient, func(th *sim.Thread) {
			th.Consume(2 * sim.Microsecond)
		}, nil)
	}
	s.Run(sim.Time(sim.Second))
	if got := int(w.Stats().Executed); got != total {
		t.Fatalf("executed %d/%d", got, total)
	}
}

func ExampleHierarchy_String() {
	s := sim.New(1, 1)
	w := New(s, 1, 0)
	h := NewHierarchy(w, HierarchyConfig{Aggregates: 1, VolumesPerAgg: 1, StripesPerVol: 1, RangesPerVBN: 1})
	fmt.Print(h.String())
	// Output:
	// Serial [Serial] executed=0
	//   aggr0 [Aggregate] executed=0
	//     aggr0.vbn [AggrVBN] executed=0
	//       aggr0.vbn.range0 [Range] executed=0
	//     aggr0.vol0 [Volume] executed=0
	//       aggr0.vol0.logical [VolLogical] executed=0
	//         aggr0.vol0.stripe0 [Stripe] executed=0
	//       aggr0.vol0.vbn [VolVBN] executed=0
	//         aggr0.vol0.vbn.range0 [Range] executed=0
}

func TestFIFOWithinAffinity(t *testing.T) {
	// Messages to one affinity execute in send order even under a full
	// worker pool.
	s := sim.New(4, 1)
	w := New(s, 4, 0)
	h := NewHierarchy(w, HierarchyConfig{Aggregates: 1, VolumesPerAgg: 1, StripesPerVol: 2, RangesPerVBN: 1})
	aff := h.Aggrs[0].Volumes[0].Stripes[0]
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		w.Send(aff, sim.CatClient, func(th *sim.Thread) {
			th.Consume(sim.Duration(8-i) * sim.Microsecond) // varying cost
			order = append(order, i)
		}, nil)
	}
	s.Run(sim.Time(sim.Second))
	for i, got := range order {
		if got != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}

func TestConcurrentCallers(t *testing.T) {
	// Many client threads Call into disjoint affinities concurrently.
	s := sim.New(8, 1)
	w := New(s, 8, 0)
	h := NewHierarchy(w, HierarchyConfig{Aggregates: 1, VolumesPerAgg: 2, StripesPerVol: 4, RangesPerVBN: 2})
	done := 0
	for i := 0; i < 16; i++ {
		i := i
		s.Go(fmt.Sprintf("caller-%d", i), sim.CatClient, func(th *sim.Thread) {
			for k := 0; k < 10; k++ {
				vol := h.Aggrs[0].Volumes[i%2]
				w.Call(th, vol.Stripes[(i+k)%4], sim.CatClient, func(wt *sim.Thread) {
					wt.Consume(3 * sim.Microsecond)
				})
			}
			done++
		})
	}
	s.Run(sim.Time(sim.Second))
	if done != 16 {
		t.Fatalf("only %d callers finished", done)
	}
	if w.Stats().Executed != 160 {
		t.Fatalf("executed %d messages", w.Stats().Executed)
	}
}

func TestRangeAffinityParallelismUnderVBN(t *testing.T) {
	// Ranges under the same VolVBN parent run in parallel with each other
	// but serialize against their parent.
	s := sim.New(8, 1)
	w := New(s, 8, 0)
	h := NewHierarchy(w, HierarchyConfig{Aggregates: 1, VolumesPerAgg: 1, StripesPerVol: 1, RangesPerVBN: 4})
	vol := h.Aggrs[0].Volumes[0]
	var ends []sim.Time
	for i := 0; i < 4; i++ {
		w.Send(vol.Ranges[i], sim.CatInfra, func(th *sim.Thread) {
			th.Consume(50 * sim.Microsecond)
		}, func() { ends = append(ends, s.Now()) })
	}
	parentDone := sim.Time(-1)
	w.Send(vol.VolVBN, sim.CatInfra, func(th *sim.Thread) {
		th.Consume(10 * sim.Microsecond)
	}, func() { parentDone = s.Now() })
	s.Run(sim.Time(sim.Second))
	// All four ranges must have run fully in parallel with each other
	// (identical completion times), and the parent strictly before or
	// strictly after the whole batch — never overlapped.
	for _, e := range ends {
		if e != ends[0] {
			t.Fatalf("ranges did not run in parallel: %v", ends)
		}
	}
	ranFirst := parentDone == sim.Time(10*sim.Microsecond) && ends[0] == sim.Time(60*sim.Microsecond)
	ranLast := ends[0] == sim.Time(50*sim.Microsecond) && parentDone == sim.Time(60*sim.Microsecond)
	if !ranFirst && !ranLast {
		t.Fatalf("parent at %v, ranges at %v: exclusion shape wrong", parentDone, ends[0])
	}
}
