package waffinity

import (
	"fmt"
	"strings"
)

// HierarchyConfig sizes the standard Hierarchical Waffinity tree of Fig 1.
type HierarchyConfig struct {
	Aggregates    int // Aggregate affinity instances
	VolumesPerAgg int // Volume affinity instances per aggregate
	StripesPerVol int // Stripe affinity instances per Volume Logical
	RangesPerVBN  int // Range affinity instances per {Volume,Aggr} VBN
	FirstAggr     int // numbering offset for affinity names (cluster members)
}

// DefaultHierarchy matches the mid-range testbed shape used in §V: one
// aggregate, a handful of volumes, and enough stripe/range instances to
// expose the available parallelism.
var DefaultHierarchy = HierarchyConfig{
	Aggregates:    1,
	VolumesPerAgg: 4,
	StripesPerVol: 16,
	RangesPerVBN:  8,
}

// VolAffinities groups the affinity instances belonging to one volume.
type VolAffinities struct {
	Volume  *Affinity   // per-volume serial work
	Logical *Affinity   // Volume Logical: client-facing file operations
	Stripes []*Affinity // stripes of user files, under Logical
	VolVBN  *Affinity   // volume allocation-metafile work
	Ranges  []*Affinity // block ranges of volume metafiles, under VolVBN
}

// AggrAffinities groups the affinity instances belonging to one aggregate.
type AggrAffinities struct {
	Aggr    *Affinity
	AggrVBN *Affinity   // aggregate allocation-metafile work
	Ranges  []*Affinity // block ranges of aggregate metafiles, under AggrVBN
	Volumes []*VolAffinities
}

// Hierarchy is a fully built Hierarchical Waffinity tree (paper Fig 1):
//
//	Serial
//	└── Aggregate[i]
//	    ├── AggrVBN ── Range[r]
//	    └── Volume[v]
//	        ├── VolLogical ── Stripe[s]
//	        └── VolVBN ── Range[r]
type Hierarchy struct {
	Sched  *Scheduler
	Serial *Affinity
	Aggrs  []*AggrAffinities
}

// NewHierarchy builds the standard tree on scheduler w.
func NewHierarchy(w *Scheduler, cfg HierarchyConfig) *Hierarchy {
	h := &Hierarchy{Sched: w, Serial: w.Root()}
	for i := 0; i < cfg.Aggregates; i++ {
		ai := cfg.FirstAggr + i
		aggr := &AggrAffinities{}
		aggr.Aggr = w.AddChild(h.Serial, KindAggregate, fmt.Sprintf("aggr%d", ai))
		aggr.AggrVBN = w.AddChild(aggr.Aggr, KindAggrVBN, fmt.Sprintf("aggr%d.vbn", ai))
		for r := 0; r < cfg.RangesPerVBN; r++ {
			aggr.Ranges = append(aggr.Ranges,
				w.AddChild(aggr.AggrVBN, KindRange, fmt.Sprintf("aggr%d.vbn.range%d", ai, r)))
		}
		for vi := 0; vi < cfg.VolumesPerAgg; vi++ {
			vol := &VolAffinities{}
			vol.Volume = w.AddChild(aggr.Aggr, KindVolume, fmt.Sprintf("aggr%d.vol%d", ai, vi))
			vol.Logical = w.AddChild(vol.Volume, KindVolumeLogical, fmt.Sprintf("aggr%d.vol%d.logical", ai, vi))
			for si := 0; si < cfg.StripesPerVol; si++ {
				vol.Stripes = append(vol.Stripes,
					w.AddChild(vol.Logical, KindStripe, fmt.Sprintf("aggr%d.vol%d.stripe%d", ai, vi, si)))
			}
			vol.VolVBN = w.AddChild(vol.Volume, KindVolumeVBN, fmt.Sprintf("aggr%d.vol%d.vbn", ai, vi))
			for r := 0; r < cfg.RangesPerVBN; r++ {
				vol.Ranges = append(vol.Ranges,
					w.AddChild(vol.VolVBN, KindRange, fmt.Sprintf("aggr%d.vol%d.vbn.range%d", ai, vi, r)))
			}
			aggr.Volumes = append(aggr.Volumes, vol)
		}
		h.Aggrs = append(h.Aggrs, aggr)
	}
	return h
}

// NewClassicalHierarchy builds the Classical Waffinity model of §III-B: a
// Serial affinity and a flat set of Stripe affinities. All metadata work
// must go to Serial; only user-file stripe operations parallelize.
func NewClassicalHierarchy(w *Scheduler, stripes int) *Hierarchy {
	h := &Hierarchy{Sched: w, Serial: w.Root()}
	aggr := &AggrAffinities{Aggr: w.Root(), AggrVBN: w.Root()}
	vol := &VolAffinities{Volume: w.Root(), Logical: w.Root(), VolVBN: w.Root()}
	for si := 0; si < stripes; si++ {
		vol.Stripes = append(vol.Stripes,
			w.AddChild(h.Serial, KindStripe, fmt.Sprintf("stripe%d", si)))
	}
	aggr.Volumes = []*VolAffinities{vol}
	h.Aggrs = []*AggrAffinities{aggr}
	return h
}

// String renders the hierarchy as an indented tree with per-affinity message
// counts, for wafltop and debugging.
func (h *Hierarchy) String() string {
	var b strings.Builder
	var rec func(a *Affinity, depth int)
	rec = func(a *Affinity, depth int) {
		fmt.Fprintf(&b, "%s%s [%s] executed=%d\n",
			strings.Repeat("  ", depth), a.Name(), a.Kind(), a.Executed)
		for _, c := range a.Children() {
			rec(c, depth+1)
		}
	}
	rec(h.Serial, 0)
	return b.String()
}
