// Package waffinity implements the Hierarchical Waffinity message scheduler
// described in §III of the paper (and Fig 1): file system work is expressed
// as messages sent to affinities arranged in a tree, and the scheduler
// guarantees that a message never runs concurrently with another message in
// the same affinity, any ancestor affinity, or any descendant affinity.
// Affinities that are neither ancestors nor descendants of one another run
// in parallel on the worker pool.
//
// This data partitioning is what lets the file system avoid fine-grained
// locking: two messages that could touch the same data are mapped to
// affinities that exclude each other, while messages on disjoint data (other
// volumes, other block ranges of a metafile, other file stripes) proceed
// concurrently.
//
// Classical Waffinity (§III-B) is the degenerate hierarchy consisting of the
// Serial affinity and a flat set of Stripe affinities; it can be built with
// the same primitives (see NewClassicalHierarchy in hierarchy.go).
package waffinity

import (
	"fmt"

	"wafl/internal/obs"
	"wafl/internal/sim"
)

// Kind classifies an affinity node, mirroring Fig 1 of the paper.
type Kind int

// Affinity kinds, from the root down.
const (
	KindSerial        Kind = iota // excludes everything
	KindAggregate                 // per-aggregate work
	KindAggrVBN                   // aggregate allocation-metafile work
	KindVolume                    // per-FlexVol work
	KindVolumeLogical             // client-facing logical file work
	KindStripe                    // a stripe (block range) of user files
	KindVolumeVBN                 // volume allocation-metafile work
	KindRange                     // a block range of allocation metafiles
)

// String returns the affinity kind name as used in the paper.
func (k Kind) String() string {
	switch k {
	case KindSerial:
		return "Serial"
	case KindAggregate:
		return "Aggregate"
	case KindAggrVBN:
		return "AggrVBN"
	case KindVolume:
		return "Volume"
	case KindVolumeLogical:
		return "VolLogical"
	case KindStripe:
		return "Stripe"
	case KindVolumeVBN:
		return "VolVBN"
	case KindRange:
		return "Range"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Affinity is a node in the hierarchy: a serial execution context for
// messages, excluded by its ancestors and descendants.
type Affinity struct {
	name     string
	kind     Kind
	parent   *Affinity
	children []*Affinity
	depth    int

	running    bool // a message of this affinity is executing (or blocked)
	descActive int  // number of active messages in strict descendants

	pending []*message // FIFO queue of not-yet-dispatched messages

	obsTid int32 // interned trace track id + 1; 0 when not yet interned

	// cumulative statistics
	Executed  uint64       // messages completed
	QueueWait sim.Duration // total time messages waited for dispatch
}

// track returns the affinity's trace track id under obs.PidAffinity,
// interning its name on first use.
func (a *Affinity) track(tr *obs.Tracer) int32 {
	if a.obsTid == 0 {
		a.obsTid = tr.Track(obs.PidAffinity, a.name) + 1
	}
	return a.obsTid - 1
}

// msgNames caches a span name per accounting category so the hot dispatch
// path does not concatenate strings.
var msgNames [sim.NumCategories]string

func init() {
	for c := sim.Category(0); c < sim.NumCategories; c++ {
		msgNames[c] = c.String() + " msg"
	}
}

// Name returns the affinity's debug name.
func (a *Affinity) Name() string { return a.name }

// Kind returns the affinity's kind.
func (a *Affinity) Kind() Kind { return a.kind }

// Parent returns the affinity's parent (nil for the Serial root).
func (a *Affinity) Parent() *Affinity { return a.parent }

// Children returns the affinity's children.
func (a *Affinity) Children() []*Affinity { return a.children }

// message is one unit of Waffinity work.
type message struct {
	aff      *Affinity
	cat      sim.Category
	fn       func(*sim.Thread)
	enqueued sim.Time
	done     func() // optional completion callback (scheduler context)
}

// Stats summarizes scheduler activity.
type Stats struct {
	Sent      uint64
	Executed  uint64
	MaxQueued int
}

// Scheduler dispatches affinity messages onto a pool of simulated worker
// threads while enforcing hierarchical exclusion.
type Scheduler struct {
	s    *sim.Scheduler
	root *Affinity

	// affinities that currently have pending messages, in first-pending
	// order; scanned for the dispatchable message with the oldest head.
	pendingAffs []*Affinity

	idle      *sim.WaitQueue
	nworkers  int
	stats     Stats
	queued    int
	dispatch  sim.Duration // per-message scheduler CPU overhead
	announced bool
}

// New creates a Waffinity scheduler with the given worker-pool size and a
// Serial root affinity. dispatchCost is the simulated CPU charged (to
// CatWaffinity) for each message dispatch — the scheduler's own overhead.
func New(s *sim.Scheduler, workers int, dispatchCost sim.Duration) *Scheduler {
	ws := &Scheduler{
		s:        s,
		root:     &Affinity{name: "Serial", kind: KindSerial},
		idle:     sim.NewWaitQueue(s, "waffinity.idle"),
		nworkers: workers,
		dispatch: dispatchCost,
	}
	for i := 0; i < workers; i++ {
		name := fmt.Sprintf("waff-worker-%d", i)
		s.Go(name, sim.CatWaffinity, func(t *sim.Thread) { ws.workerLoop(t) })
	}
	return ws
}

// Root returns the Serial affinity at the root of the hierarchy.
func (w *Scheduler) Root() *Affinity { return w.root }

// Stats returns scheduler statistics.
func (w *Scheduler) Stats() Stats { return w.stats }

// AddChild creates a new affinity under parent.
func (w *Scheduler) AddChild(parent *Affinity, kind Kind, name string) *Affinity {
	a := &Affinity{name: name, kind: kind, parent: parent, depth: parent.depth + 1}
	parent.children = append(parent.children, a)
	return a
}

// Send enqueues fn as a message in affinity aff. fn executes on a worker
// thread with its CPU attributed to cat. done, if non-nil, fires in
// scheduler context when the message completes.
func (w *Scheduler) Send(aff *Affinity, cat sim.Category, fn func(*sim.Thread), done func()) {
	m := &message{aff: aff, cat: cat, fn: fn, enqueued: w.s.Now(), done: done}
	if len(aff.pending) == 0 {
		w.pendingAffs = append(w.pendingAffs, aff)
	}
	aff.pending = append(aff.pending, m)
	w.stats.Sent++
	w.queued++
	if w.queued > w.stats.MaxQueued {
		w.stats.MaxQueued = w.queued
	}
	if tr := w.s.Tracer(); tr != nil {
		now := int64(w.s.Now())
		tr.InstantArg(obs.PidAffinity, aff.track(tr), "waffinity", "enqueue", now, int64(len(aff.pending)))
		tr.Counter(obs.PidAffinity, 0, "queued msgs", now, int64(w.queued))
	}
	w.idle.Signal()
}

// Call sends fn to aff and blocks the calling simulated thread until the
// message completes. t must not be a Waffinity worker (a worker waiting on
// another message could deadlock the pool).
func (w *Scheduler) Call(t *sim.Thread, aff *Affinity, cat sim.Category, fn func(*sim.Thread)) {
	wq := sim.NewWaitQueue(w.s, "waffinity.call")
	completed := false
	w.Send(aff, cat, fn, func() {
		completed = true
		wq.Signal()
	})
	for !completed {
		wq.Wait(t)
	}
}

// canRun reports whether the head message of aff may start now: the
// affinity itself, all ancestors, and all descendants must be inactive.
// To guarantee progress for coarse affinities (e.g. Serial), a message also
// yields to any ancestor whose own head message has been waiting longer —
// otherwise a steady stream of Stripe messages would starve a pending
// Serial message forever.
func canRun(aff *Affinity) bool {
	if aff.running || aff.descActive > 0 {
		return false
	}
	var head sim.Time = -1
	if len(aff.pending) > 0 {
		head = aff.pending[0].enqueued
	}
	for anc := aff.parent; anc != nil; anc = anc.parent {
		if anc.running {
			return false
		}
		if len(anc.pending) > 0 && anc.pending[0].enqueued <= head {
			return false
		}
	}
	return true
}

// start marks aff active and propagates to ancestors.
func start(aff *Affinity) {
	aff.running = true
	for anc := aff.parent; anc != nil; anc = anc.parent {
		anc.descActive++
	}
}

// finish marks aff inactive and propagates to ancestors.
func finish(aff *Affinity) {
	aff.running = false
	for anc := aff.parent; anc != nil; anc = anc.parent {
		anc.descActive--
	}
}

// pickMessage removes and returns the dispatchable message whose head has
// waited longest, or nil if nothing can run.
func (w *Scheduler) pickMessage() *message {
	bestIdx := -1
	var best *message
	for i, aff := range w.pendingAffs {
		if len(aff.pending) == 0 {
			continue
		}
		head := aff.pending[0]
		if !canRun(aff) {
			continue
		}
		if best == nil || head.enqueued < best.enqueued {
			best, bestIdx = head, i
		}
	}
	if best == nil {
		return nil
	}
	aff := w.pendingAffs[bestIdx]
	aff.pending = aff.pending[1:]
	if len(aff.pending) == 0 {
		w.pendingAffs = append(w.pendingAffs[:bestIdx], w.pendingAffs[bestIdx+1:]...)
	}
	w.queued--
	return best
}

// workerLoop is the body of each pool thread.
func (w *Scheduler) workerLoop(t *sim.Thread) {
	for {
		m := w.pickMessage()
		if m == nil {
			w.idle.Wait(t)
			continue
		}
		start(m.aff)
		dispatchAt := w.s.Now()
		m.aff.QueueWait += sim.Duration(dispatchAt - m.enqueued)
		if w.dispatch > 0 {
			t.ConsumeAs(sim.CatWaffinity, w.dispatch)
		}
		prev := t.SetCat(m.cat)
		m.fn(t)
		t.SetCat(prev)
		finish(m.aff)
		m.aff.Executed++
		w.stats.Executed++
		if tr := w.s.Tracer(); tr != nil {
			// The affinity's exclusion guarantee means execution spans on
			// one affinity track never overlap.
			tr.SpanArg(obs.PidAffinity, m.aff.track(tr), m.cat.String(), msgNames[m.cat],
				int64(dispatchAt), int64(w.s.Now()), int64(dispatchAt-m.enqueued))
			tr.Observe("waffinity.queue_wait", int64(dispatchAt-m.enqueued))
		}
		if m.done != nil {
			m.done()
		}
		// Completing this message may have unblocked ancestors or
		// descendants; wake idle workers to re-scan.
		w.wakeIdle()
	}
}

// wakeIdle wakes as many idle workers as there are queued messages (capped
// at the number of idle workers).
func (w *Scheduler) wakeIdle() {
	n := w.queued
	if n > w.idle.Len() {
		n = w.idle.Len()
	}
	for i := 0; i < n; i++ {
		w.idle.Signal()
	}
}

// Walk visits every affinity in the hierarchy depth-first.
func (w *Scheduler) Walk(visit func(*Affinity)) {
	var rec func(*Affinity)
	rec = func(a *Affinity) {
		visit(a)
		for _, c := range a.children {
			rec(c)
		}
	}
	rec(w.root)
}
