package waffinity

import "wafl/internal/sim"

// Unit is one independent work item for ScatterJoin: fn runs as a message
// in aff with its CPU attributed to cat.
type Unit struct {
	Aff *Affinity
	Cat sim.Category
	Fn  func(*sim.Thread)
}

// ScatterJoin enqueues every unit (in slice order, so the event stream is a
// deterministic function of the caller's ordering) and blocks t until all
// of them have completed. Units on disjoint affinities execute concurrently
// under the hierarchy's usual exclusion rules; the join is a counted wait on
// a single WaitQueue, like Call. t must not be a Waffinity worker — a worker
// blocked on other messages could deadlock the pool.
func (w *Scheduler) ScatterJoin(t *sim.Thread, units []Unit) {
	if len(units) == 0 {
		return
	}
	wq := sim.NewWaitQueue(w.s, "waffinity.scatter")
	remaining := len(units)
	for _, u := range units {
		w.Send(u.Aff, u.Cat, u.Fn, func() {
			remaining--
			if remaining == 0 {
				wq.Signal()
			}
		})
	}
	for remaining > 0 {
		wq.Wait(t)
	}
}
