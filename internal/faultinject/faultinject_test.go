package faultinject

import (
	"testing"

	"wafl/internal/sim"
)

func TestEveryNthArms(t *testing.T) {
	in := New(Config{
		DropWriteEvery:  3,
		DelayWriteEvery: 2,
		Delay:           100 * sim.Microsecond,
	})
	var drops, delays int
	for i := 0; i < 12; i++ {
		f := in.WriteFault("d0", 4)
		if f.Drop {
			drops++
			if f.Delay != 0 {
				t.Fatal("dropped I/O should not also be delayed")
			}
		} else if f.Delay != 0 {
			delays++
		}
	}
	if drops != 4 {
		t.Fatalf("drops = %d, want 4", drops)
	}
	// Every 2nd write is delayed except where the drop arm already claimed
	// it (multiples of 6): writes 2,4,8,10 delayed; 6,12 dropped.
	if delays != 4 {
		t.Fatalf("delays = %d, want 4", delays)
	}
}

func TestTornPrefixHalf(t *testing.T) {
	in := New(Config{TornWriteEvery: 2, TornWritePrefix: -1})
	if p := in.CrashPrefix("d0", 8); p != 0 {
		t.Fatalf("first write torn: prefix %d", p)
	}
	if p := in.CrashPrefix("d0", 8); p != 4 {
		t.Fatalf("second write prefix = %d, want 4", p)
	}
	// Single-block writes are never torn and don't advance the counter.
	if p := in.CrashPrefix("d0", 1); p != 0 {
		t.Fatalf("single-block write torn: prefix %d", p)
	}
}

func TestTornPrefixClamped(t *testing.T) {
	in := New(Config{TornWriteEvery: 1, TornWritePrefix: 10})
	if p := in.CrashPrefix("d0", 3); p != 3 {
		t.Fatalf("prefix = %d, want clamp to 3", p)
	}
}

func TestDeterministicReplay(t *testing.T) {
	cfg := Config{TornWriteEvery: 3, TornWritePrefix: 1, DelayWriteEvery: 5,
		Delay: sim.Millisecond, ReadErrEvery: 7}
	run := func() []bool {
		in := New(cfg)
		var seq []bool
		for i := 0; i < 50; i++ {
			f := in.WriteFault("d0", 4)
			seq = append(seq, f.Drop, f.Delay != 0)
			seq = append(seq, in.PeekFault("d0", 9), in.CrashPrefix("d1", 4) > 0)
		}
		return seq
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical runs", i)
		}
	}
}

func TestFailBlockPersists(t *testing.T) {
	in := New(Config{})
	in.FailBlock("d0", 42)
	for i := 0; i < 3; i++ {
		if !in.PeekFault("d0", 42) {
			t.Fatal("persistent failure did not fire")
		}
	}
	if in.PeekFault("d0", 41) || in.PeekFault("d1", 42) {
		t.Fatal("failure leaked to another block/drive")
	}
	in.HealBlock("d0", 42)
	if in.PeekFault("d0", 42) {
		t.Fatal("healed block still failing")
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config enabled")
	}
	if !(Config{TornWriteEvery: 1}).Enabled() {
		t.Fatal("torn config not enabled")
	}
}
