// Package faultinject provides a deterministic drive-fault plan for the
// crash-schedule sweep. An Injector implements storage.Injector and decides,
// per I/O, whether to tear, drop, or delay it, and whether an OS-path read
// (PeekChecked) fails. Decisions are pure functions of per-arm counters —
// "every Nth I/O" — so a run with the same seed and the same fault Config
// produces the same event stream every time. The injector allocates no
// randomness and schedules no events of its own: faults only perturb I/Os
// the simulation was already issuing.
package faultinject

import (
	"wafl/internal/block"
	"wafl/internal/sim"
	"wafl/internal/storage"
)

// Config selects which fault arms are active. A zero Every disables that
// arm. All counters are global across drives, which keeps the plan simple
// and reproducible; per-drive plans can be layered later if needed.
type Config struct {
	// TornWriteEvery marks every Nth multi-block write as torn: if the
	// system crashes while it is in flight, only a prefix of its blocks
	// lands on media. Torn writes have no effect unless a crash happens —
	// a completed write always lands fully.
	TornWriteEvery uint64
	// TornWritePrefix is how many blocks of a torn write land at crash.
	// -1 means half the request (rounded down).
	TornWritePrefix int
	// DropWriteEvery silently loses every Nth write: the completion never
	// fires. Only a crash (DropInFlight) clears the stuck I/O, so this arm
	// is for targeted tests, not the default sweep.
	DropWriteEvery uint64
	// DelayWriteEvery / DelayReadEvery add Delay to every Nth completion.
	DelayWriteEvery uint64
	DelayReadEvery  uint64
	Delay           sim.Duration
	// ReadErrEvery fails every Nth PeekChecked (OS read path) transiently.
	ReadErrEvery uint64
}

// Enabled reports whether any fault arm is active.
func (c Config) Enabled() bool {
	return c.TornWriteEvery != 0 || c.DropWriteEvery != 0 ||
		c.DelayWriteEvery != 0 || c.DelayReadEvery != 0 || c.ReadErrEvery != 0
}

// Stats is a snapshot of injector decisions.
type Stats struct {
	WritesSeen  uint64
	ReadsSeen   uint64
	PeeksSeen   uint64
	TornPlanned uint64
	Dropped     uint64
	Delayed     uint64
	PeekErrs    uint64
}

// Injector implements storage.Injector with deterministic every-Nth
// counters. The simulation is single-threaded (one runnable sim thread at
// a time), so no locking is needed.
type Injector struct {
	cfg    Config
	writeN uint64
	readN  uint64
	peekN  uint64
	tornN  uint64 // multi-block writes seen, for the torn arm
	failed map[string]map[block.DBN]bool
	stats  Stats
}

var _ storage.Injector = (*Injector)(nil)

// New builds an injector for cfg.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, failed: make(map[string]map[block.DBN]bool)}
}

// WriteFault decides drop/delay for one write I/O.
func (in *Injector) WriteFault(drive string, nblocks int) storage.WriteFault {
	in.writeN++
	in.stats.WritesSeen++
	var f storage.WriteFault
	if in.cfg.DropWriteEvery != 0 && in.writeN%in.cfg.DropWriteEvery == 0 {
		f.Drop = true
		in.stats.Dropped++
		return f
	}
	if in.cfg.DelayWriteEvery != 0 && in.writeN%in.cfg.DelayWriteEvery == 0 {
		f.Delay = in.cfg.Delay
		in.stats.Delayed++
	}
	return f
}

// ReadFault decides delay for one read I/O.
func (in *Injector) ReadFault(drive string, nblocks int) storage.ReadFault {
	in.readN++
	in.stats.ReadsSeen++
	var f storage.ReadFault
	if in.cfg.DelayReadEvery != 0 && in.readN%in.cfg.DelayReadEvery == 0 {
		f.Delay = in.cfg.Delay
		in.stats.Delayed++
	}
	return f
}

// CrashPrefix reports how many leading blocks of an in-flight write land on
// media at crash. Called only from DropInFlight.
func (in *Injector) CrashPrefix(drive string, nblocks int) int {
	if in.cfg.TornWriteEvery == 0 || nblocks < 2 {
		return 0
	}
	in.tornN++
	if in.tornN%in.cfg.TornWriteEvery != 0 {
		return 0
	}
	in.stats.TornPlanned++
	p := in.cfg.TornWritePrefix
	if p < 0 {
		p = nblocks / 2
	}
	if p > nblocks {
		p = nblocks
	}
	return p
}

// PeekFault decides whether one OS-path read (PeekChecked) fails. Persistent
// per-block failures installed with FailBlock fire first; then the transient
// every-Nth arm. Transient errors clear on retry by construction: the retry
// advances the counter past the faulting multiple.
func (in *Injector) PeekFault(drive string, dbn block.DBN) bool {
	if m := in.failed[drive]; m != nil && m[dbn] {
		in.stats.PeekErrs++
		return true
	}
	if in.cfg.ReadErrEvery == 0 {
		return false
	}
	in.peekN++
	in.stats.PeeksSeen++
	if in.peekN%in.cfg.ReadErrEvery == 0 {
		in.stats.PeekErrs++
		return true
	}
	return false
}

// FailBlock installs a persistent read error for (drive, dbn) on the OS
// read path — the model of a latent sector error that forces RAID
// reconstruction. HealBlock removes it.
func (in *Injector) FailBlock(drive string, dbn block.DBN) {
	m := in.failed[drive]
	if m == nil {
		m = make(map[block.DBN]bool)
		in.failed[drive] = m
	}
	m[dbn] = true
}

// HealBlock removes a persistent read error installed by FailBlock.
func (in *Injector) HealBlock(drive string, dbn block.DBN) {
	if m := in.failed[drive]; m != nil {
		delete(m, dbn)
	}
}

// Stats returns a snapshot of injector decisions so far.
func (in *Injector) Stats() Stats { return in.stats }
