// Package raid implements RAID-4 style parity groups over simulated drives:
// a set of data drives plus one parity drive, written in stripes. The write
// allocator's first objective (paper §IV-D) — minimizing reads required for
// RAID parity computation — is directly measurable here: a write covering
// every data block of a stripe computes parity purely from new data (a
// "full-stripe write"), while a partial-stripe write must first read the
// missing blocks.
package raid

import (
	"fmt"
	"sort"

	"wafl/internal/block"
	"wafl/internal/sim"
	"wafl/internal/storage"
)

// Stats holds cumulative parity statistics for a group.
type Stats struct {
	FullStripeWrites    uint64 // stripes whose parity needed no reads
	PartialStripeWrites uint64 // stripes that required reconstruction reads
	ParityReadBlocks    uint64 // data blocks read to compute parity
	ParityBlocksWritten uint64
	StripeWriteIOs      uint64 // multi-stripe write operations submitted
}

// Group is one RAID group: N data drives and one parity drive of equal
// geometry. Block (d, dbn) on each data drive d shares the parity block at
// dbn on the parity drive.
type Group struct {
	s      *sim.Scheduler
	id     int
	data   []*storage.Drive
	parity *storage.Drive
	depth  block.DBN // blocks per drive

	stats Stats
}

// NewGroup builds a RAID group with ndata data drives and one parity drive,
// each of depth blocks, using the given drive profile.
func NewGroup(s *sim.Scheduler, id int, ndata int, depth block.DBN, profile storage.Profile) *Group {
	g := &Group{s: s, id: id, depth: depth}
	for i := 0; i < ndata; i++ {
		g.data = append(g.data, storage.NewDrive(s, fmt.Sprintf("rg%d.d%d", id, i), profile, depth))
	}
	g.parity = storage.NewDrive(s, fmt.Sprintf("rg%d.parity", id), profile, depth)
	return g
}

// Stats returns a snapshot of the group's parity statistics.
func (g *Group) Stats() Stats { return g.stats }

// ID returns the group's index within its aggregate.
func (g *Group) ID() int { return g.id }

// DataDrives returns the number of data drives in the group.
func (g *Group) DataDrives() int { return len(g.data) }

// Depth returns the number of blocks per drive (== number of stripes).
func (g *Group) Depth() block.DBN { return g.depth }

// Drive returns data drive i.
func (g *Group) Drive(i int) *storage.Drive { return g.data[i] }

// ParityDrive returns the group's parity drive.
func (g *Group) ParityDrive() *storage.Drive { return g.parity }

// WriteResult describes the parity work a stripe write required.
type WriteResult struct {
	FullStripes    int
	PartialStripes int
	ParityReads    int          // blocks read for reconstruction
	ParityCPU      sim.Duration // XOR cost to charge to the simulated CPU
}

// Write submits a multi-stripe write: writes[i] is the set of single-block
// writes destined for data drive i. Parity is computed per touched stripe —
// from new data alone when the stripe is fully covered, otherwise after
// reading the stripe's missing blocks — and written to the parity drive.
// done (optional) fires in scheduler context when every drive I/O, parity
// included, has completed. The returned WriteResult is populated
// immediately with the parity work required; callers charge ParityCPU to
// the simulated CPU.
//
// parityCPUPerBlock is the simulated CPU cost of XOR-ing one block; it comes
// from the system cost model.
func (g *Group) Write(writes [][]storage.WriteReq, parityCPUPerBlock sim.Duration, done func()) WriteResult {
	var res WriteResult
	if len(writes) != len(g.data) {
		panic("raid: writes must have one slice per data drive")
	}
	g.stats.StripeWriteIOs++

	// Index new data by stripe: stripe dbn -> drive index -> payload.
	newData := make(map[block.DBN]map[int][]byte)
	for di, reqs := range writes {
		for _, r := range reqs {
			m := newData[r.DBN]
			if m == nil {
				m = make(map[int][]byte)
				newData[r.DBN] = m
			}
			m[di] = r.Data
		}
	}
	if len(newData) == 0 {
		if done != nil {
			g.s.After(0, done)
		}
		return res
	}

	// Classify stripes and plan reconstruction reads for partial ones.
	readPlan := make([][]block.DBN, len(g.data))
	stripeList := make([]block.DBN, 0, len(newData))
	for dbn, m := range newData {
		stripeList = append(stripeList, dbn)
		if len(m) == len(g.data) {
			res.FullStripes++
			continue
		}
		res.PartialStripes++
		for di := range g.data {
			if _, ok := m[di]; !ok {
				readPlan[di] = append(readPlan[di], dbn)
				res.ParityReads++
			}
		}
	}
	sort.Slice(stripeList, func(i, j int) bool { return stripeList[i] < stripeList[j] })
	res.ParityCPU = sim.Duration(len(stripeList)*len(g.data)) * parityCPUPerBlock

	g.stats.FullStripeWrites += uint64(res.FullStripes)
	g.stats.PartialStripeWrites += uint64(res.PartialStripes)
	g.stats.ParityReadBlocks += uint64(res.ParityReads)

	// Phase A: issue reconstruction reads. When all complete, compute
	// parity and issue the data + parity writes (phase B).
	oldData := make(map[block.DBN]map[int][]byte)
	pendingReads := 0
	issueB := func() { g.issueWrites(writes, newData, oldData, stripeList, done) }
	for di, dbns := range readPlan {
		if len(dbns) == 0 {
			continue
		}
		pendingReads++
		di, dbns := di, dbns
		g.data[di].Read(dbns, func(bs [][]byte) {
			for k, dbn := range dbns {
				m := oldData[dbn]
				if m == nil {
					m = make(map[int][]byte)
					oldData[dbn] = m
				}
				m[di] = bs[k]
			}
			pendingReads--
			if pendingReads == 0 {
				issueB()
			}
		})
	}
	if pendingReads == 0 {
		issueB()
	}
	return res
}

// issueWrites computes parity for each touched stripe and submits one I/O
// per data drive plus one parity-drive I/O, invoking done when all complete.
func (g *Group) issueWrites(writes [][]storage.WriteReq, newData, oldData map[block.DBN]map[int][]byte, stripeList []block.DBN, done func()) {
	parityReqs := make([]storage.WriteReq, 0, len(stripeList))
	for _, dbn := range stripeList {
		parity := block.New()
		for di := range g.data {
			var src []byte
			if b, ok := newData[dbn][di]; ok {
				src = b
			} else if b, ok := oldData[dbn][di]; ok && b != nil {
				src = b
			}
			if src != nil {
				block.XOR(parity, src)
			}
		}
		parityReqs = append(parityReqs, storage.WriteReq{DBN: dbn, Data: parity})
	}
	g.stats.ParityBlocksWritten += uint64(len(parityReqs))

	pending := 1 // parity I/O
	for _, reqs := range writes {
		if len(reqs) > 0 {
			pending++
		}
	}
	complete := func() {
		pending--
		if pending == 0 && done != nil {
			done()
		}
	}
	for di, reqs := range writes {
		if len(reqs) > 0 {
			g.data[di].Write(reqs, complete)
		}
	}
	g.parity.Write(parityReqs, complete)
}

// VerifyStripe recomputes parity for stripe dbn from the committed media and
// reports whether it matches the committed parity block. Tests and the
// scrub tool use it to validate RAID consistency.
func (g *Group) VerifyStripe(dbn block.DBN) bool {
	want := block.New()
	for _, d := range g.data {
		if b := d.Peek(dbn); b != nil {
			block.XOR(want, b)
		}
	}
	got := g.parity.Peek(dbn)
	if got == nil {
		got = block.New()
	}
	return block.Checksum(want) == block.Checksum(got)
}

// ReconstructBlock rebuilds the committed content of (driveIdx, dbn) from
// the other drives and parity, as a RAID recovery would.
func (g *Group) ReconstructBlock(driveIdx int, dbn block.DBN) []byte {
	out := block.New()
	if p := g.parity.Peek(dbn); p != nil {
		block.XOR(out, p)
	}
	for di, d := range g.data {
		if di == driveIdx {
			continue
		}
		if b := d.Peek(dbn); b != nil {
			block.XOR(out, b)
		}
	}
	return out
}
