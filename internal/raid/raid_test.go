package raid

import (
	"bytes"
	"testing"

	"wafl/internal/block"
	"wafl/internal/sim"
	"wafl/internal/storage"
)

func fill(tag byte) []byte {
	b := block.New()
	for i := range b {
		b[i] = tag
	}
	return b
}

func newTestGroup(cores int) (*sim.Scheduler, *Group) {
	s := sim.New(cores, 1)
	g := NewGroup(s, 0, 4, 1024, storage.SSD)
	return s, g
}

func TestFullStripeWriteNoReads(t *testing.T) {
	s, g := newTestGroup(2)
	writes := make([][]storage.WriteReq, 4)
	for di := 0; di < 4; di++ {
		writes[di] = []storage.WriteReq{{DBN: 10, Data: fill(byte(di + 1))}}
	}
	doneAt := sim.Time(-1)
	res := g.Write(writes, sim.Microsecond, func() { doneAt = s.Now() })
	if res.FullStripes != 1 || res.PartialStripes != 0 || res.ParityReads != 0 {
		t.Fatalf("res = %+v, want 1 full stripe, no reads", res)
	}
	s.Run(sim.Time(sim.Second))
	if doneAt < 0 {
		t.Fatal("write never completed")
	}
	if !g.VerifyStripe(10) {
		t.Fatal("parity mismatch after full-stripe write")
	}
	st := g.Stats()
	if st.FullStripeWrites != 1 || st.ParityReadBlocks != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPartialStripeWriteReadsMissing(t *testing.T) {
	s, g := newTestGroup(2)
	// Pre-populate drives 2,3 at stripe 5 with committed data.
	pre := make([][]storage.WriteReq, 4)
	pre[2] = []storage.WriteReq{{DBN: 5, Data: fill(0xC2)}}
	pre[3] = []storage.WriteReq{{DBN: 5, Data: fill(0xC3)}}
	g.Write(pre, 0, nil)
	s.Run(sim.Time(100 * sim.Millisecond))

	// Now write only drives 0,1 at stripe 5: a partial stripe that must
	// read drives 2,3.
	writes := make([][]storage.WriteReq, 4)
	writes[0] = []storage.WriteReq{{DBN: 5, Data: fill(1)}}
	writes[1] = []storage.WriteReq{{DBN: 5, Data: fill(2)}}
	done := false
	res := g.Write(writes, sim.Microsecond, func() { done = true })
	if res.PartialStripes != 1 || res.ParityReads != 2 {
		t.Fatalf("res = %+v, want 1 partial stripe with 2 reads", res)
	}
	s.Run(sim.Time(sim.Second))
	if !done {
		t.Fatal("write never completed")
	}
	if !g.VerifyStripe(5) {
		t.Fatal("parity mismatch after partial-stripe write")
	}
}

func TestParityCoversOldData(t *testing.T) {
	// After a partial overwrite, reconstruction of an untouched drive must
	// return its old content.
	s, g := newTestGroup(2)
	pre := make([][]storage.WriteReq, 4)
	for di := 0; di < 4; di++ {
		pre[di] = []storage.WriteReq{{DBN: 7, Data: fill(byte(0x10 + di))}}
	}
	g.Write(pre, 0, nil)
	s.Run(sim.Time(100 * sim.Millisecond))

	upd := make([][]storage.WriteReq, 4)
	upd[0] = []storage.WriteReq{{DBN: 7, Data: fill(0xEE)}}
	g.Write(upd, 0, nil)
	s.Run(sim.Time(sim.Second))

	if !g.VerifyStripe(7) {
		t.Fatal("parity mismatch after partial overwrite")
	}
	rec := g.ReconstructBlock(2, 7)
	if !bytes.Equal(rec, fill(0x12)) {
		t.Fatal("reconstruction of untouched drive returned wrong data")
	}
	rec0 := g.ReconstructBlock(0, 7)
	if !bytes.Equal(rec0, fill(0xEE)) {
		t.Fatal("reconstruction of overwritten drive returned stale data")
	}
}

func TestMultiStripeMixedWrite(t *testing.T) {
	s, g := newTestGroup(4)
	writes := make([][]storage.WriteReq, 4)
	// Stripes 20..23 fully covered; stripe 24 only half covered.
	for di := 0; di < 4; di++ {
		for dbn := block.DBN(20); dbn < 24; dbn++ {
			writes[di] = append(writes[di], storage.WriteReq{DBN: dbn, Data: fill(byte(di)*16 + byte(dbn))})
		}
	}
	writes[0] = append(writes[0], storage.WriteReq{DBN: 24, Data: fill(0xA0)})
	writes[1] = append(writes[1], storage.WriteReq{DBN: 24, Data: fill(0xA1)})
	res := g.Write(writes, sim.Microsecond, nil)
	if res.FullStripes != 4 || res.PartialStripes != 1 || res.ParityReads != 2 {
		t.Fatalf("res = %+v", res)
	}
	if res.ParityCPU != sim.Duration(5*4)*sim.Microsecond {
		t.Fatalf("parity CPU = %v", res.ParityCPU)
	}
	s.Run(sim.Time(sim.Second))
	for dbn := block.DBN(20); dbn <= 24; dbn++ {
		if !g.VerifyStripe(dbn) {
			t.Fatalf("parity mismatch at stripe %d", dbn)
		}
	}
}

func TestEmptyWriteCompletes(t *testing.T) {
	s, g := newTestGroup(1)
	done := false
	g.Write(make([][]storage.WriteReq, 4), 0, func() { done = true })
	s.Run(sim.Time(sim.Second))
	if !done {
		t.Fatal("empty write should complete")
	}
}

func TestVerifyStripeOnEmptyGroup(t *testing.T) {
	_, g := newTestGroup(1)
	if !g.VerifyStripe(0) {
		t.Fatal("all-zero stripe should verify (zero parity)")
	}
}

func TestWrongWriteShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_, g := newTestGroup(1)
	g.Write(make([][]storage.WriteReq, 3), 0, nil)
}
