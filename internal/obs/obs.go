// Package obs is the observability spine of the simulator: a structured,
// zero-cost-when-disabled event and metrics layer shared by every subsystem
// (the discrete-event kernel, the Waffinity scheduler, the White Alligator
// infrastructure, the CP engine, and the simulated drives).
//
// A *Tracer records three kinds of data:
//
//   - typed trace events (spans, instants, counter samples) carrying only
//     simulated timestamps, appended to a bounded ring buffer that drops the
//     oldest events under pressure;
//   - per-category latency histograms (log-linear buckets, p50/p95/p99);
//   - per-block forensic notes — the last context that claimed each physical
//     block, used by the double-allocation panic path.
//
// The disabled state is a nil *Tracer: every method is nil-receiver-safe, so
// emission points reduce to a single pointer comparison and benchmark
// results are bit-identical with tracing off. Determinism with tracing on is
// preserved by construction — the tracer never reads wall-clock time, never
// blocks, and never feeds anything back into the simulation.
//
// Recorded timelines export as Chrome trace-event JSON (WriteChromeTrace)
// and load directly in Perfetto / chrome://tracing.
package obs

import "fmt"

// Time is a simulated timestamp in nanoseconds (mirrors sim.Time without
// importing it; obs must stay dependency-free so every layer can use it).
type Time = int64

// Well-known trace processes ("pid" in the Chrome trace model). Each pid
// groups a family of tracks: one per simulated core, per thread, per
// affinity, per drive, and one for CP phase markers.
const (
	PidCores    = 1 // one track per simulated CPU core: what ran on it, when
	PidThreads  = 2 // one track per simulated thread: ops, jobs, waits
	PidAffinity = 3 // one track per Waffinity affinity: message lifecycle
	PidStorage  = 4 // one track per drive: I/O service spans
	PidCP       = 5 // consistency-point phase markers
	PidInfra    = 6 // one track per RAID group: window/tetris lifecycle
)

// processNames maps pids to Chrome process_name metadata.
var processNames = map[int32]string{
	PidCores:    "cores",
	PidThreads:  "threads",
	PidAffinity: "affinities",
	PidStorage:  "drives",
	PidCP:       "cp",
	PidInfra:    "infra",
}

// Phase classifies an event, mirroring the Chrome trace "ph" field.
type Phase uint8

// Event phases.
const (
	PhaseInstant Phase = iota // a point in time ("i")
	PhaseSpan                 // a complete duration event ("X")
	PhaseCounter              // a counter sample ("C")
)

// Event is one recorded trace event. Spans carry Start and Dur; instants
// and counter samples only Start. Arg is an optional numeric payload
// (queue depth, block count, VBN, counter value) gated by HasArg.
type Event struct {
	Start  Time
	Dur    Time
	Pid    int32
	Tid    int32
	Ph     Phase
	Cat    string
	Name   string
	Arg    int64
	HasArg bool
}

// Options configures a Tracer.
type Options struct {
	// Capacity bounds the event ring buffer (events, not bytes). Zero
	// selects DefaultCapacity. Oldest events drop first.
	Capacity int
}

// DefaultCapacity is the default ring-buffer size: large enough to hold a
// few hundred milliseconds of fully-instrumented simulation.
const DefaultCapacity = 1 << 18

// trackSet interns track names for one pid.
type trackSet struct {
	ids   map[string]int32
	names []string
}

// Tracer records events, histograms, and forensic notes. All methods are
// safe on a nil receiver (no-ops), which is the disabled fast path. A
// Tracer is not safe for concurrent use from multiple goroutines; the
// simulation kernel serializes all access.
type Tracer struct {
	ring    []Event
	head    int // next overwrite position once the ring is full
	full    bool
	dropped uint64

	tracks map[int32]*trackSet

	hists     map[string]*Histogram
	histOrder []string

	notes map[uint64]string
}

// New returns an enabled Tracer. Pass Options{} for defaults.
func New(opts Options) *Tracer {
	capacity := opts.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{
		ring:   make([]Event, 0, capacity),
		tracks: make(map[int32]*trackSet),
		hists:  make(map[string]*Histogram),
		notes:  make(map[uint64]string),
	}
}

// Enabled reports whether the tracer records anything (false for nil).
func (tr *Tracer) Enabled() bool { return tr != nil }

// Track interns a named track under pid and returns its tid. Repeated calls
// with the same (pid, name) return the same tid; tids are assigned in
// first-registration order, which the serialized simulation makes
// deterministic. A nil tracer returns 0.
func (tr *Tracer) Track(pid int32, name string) int32 {
	if tr == nil {
		return 0
	}
	ts := tr.tracks[pid]
	if ts == nil {
		ts = &trackSet{ids: make(map[string]int32)}
		tr.tracks[pid] = ts
	}
	if id, ok := ts.ids[name]; ok {
		return id
	}
	id := int32(len(ts.names))
	ts.ids[name] = id
	ts.names = append(ts.names, name)
	return id
}

// TrackName returns the registered name of (pid, tid), or "".
func (tr *Tracer) TrackName(pid int32, tid int32) string {
	if tr == nil {
		return ""
	}
	ts := tr.tracks[pid]
	if ts == nil || int(tid) >= len(ts.names) {
		return ""
	}
	return ts.names[tid]
}

// push appends an event, overwriting the oldest when the ring is full.
func (tr *Tracer) push(e Event) {
	if !tr.full && len(tr.ring) < cap(tr.ring) {
		tr.ring = append(tr.ring, e)
		return
	}
	tr.full = true
	tr.ring[tr.head] = e
	tr.head++
	if tr.head == len(tr.ring) {
		tr.head = 0
	}
	tr.dropped++
}

// Span records a complete duration event covering [start, end].
func (tr *Tracer) Span(pid, tid int32, cat, name string, start, end Time) {
	if tr == nil {
		return
	}
	tr.push(Event{Start: start, Dur: end - start, Pid: pid, Tid: tid, Ph: PhaseSpan, Cat: cat, Name: name})
}

// SpanArg is Span with a numeric argument attached.
func (tr *Tracer) SpanArg(pid, tid int32, cat, name string, start, end Time, arg int64) {
	if tr == nil {
		return
	}
	tr.push(Event{Start: start, Dur: end - start, Pid: pid, Tid: tid, Ph: PhaseSpan, Cat: cat, Name: name, Arg: arg, HasArg: true})
}

// Instant records a point event.
func (tr *Tracer) Instant(pid, tid int32, cat, name string, at Time) {
	if tr == nil {
		return
	}
	tr.push(Event{Start: at, Pid: pid, Tid: tid, Ph: PhaseInstant, Cat: cat, Name: name})
}

// InstantArg is Instant with a numeric argument attached.
func (tr *Tracer) InstantArg(pid, tid int32, cat, name string, at Time, arg int64) {
	if tr == nil {
		return
	}
	tr.push(Event{Start: at, Pid: pid, Tid: tid, Ph: PhaseInstant, Cat: cat, Name: name, Arg: arg, HasArg: true})
}

// Counter records a counter sample (rendered as a stacked area track).
func (tr *Tracer) Counter(pid, tid int32, name string, at Time, value int64) {
	if tr == nil {
		return
	}
	tr.push(Event{Start: at, Pid: pid, Tid: tid, Ph: PhaseCounter, Name: name, Arg: value, HasArg: true})
}

// Observe adds a sample (typically nanoseconds) to the named histogram,
// creating it on first use.
func (tr *Tracer) Observe(metric string, v int64) {
	if tr == nil {
		return
	}
	h := tr.hists[metric]
	if h == nil {
		h = newHistogram(metric)
		tr.hists[metric] = h
		tr.histOrder = append(tr.histOrder, metric)
	}
	h.Observe(v)
}

// Hist returns the named histogram, or nil if nothing was observed.
func (tr *Tracer) Hist(metric string) *Histogram {
	if tr == nil {
		return nil
	}
	return tr.hists[metric]
}

// Histograms returns every histogram in first-observation order.
func (tr *Tracer) Histograms() []*Histogram {
	if tr == nil {
		return nil
	}
	out := make([]*Histogram, 0, len(tr.histOrder))
	for _, name := range tr.histOrder {
		out = append(out, tr.hists[name])
	}
	return out
}

// NoteBlock records the context that last claimed physical block bn — the
// double-allocation forensics previously kept in an env-gated global map.
func (tr *Tracer) NoteBlock(bn uint64, format string, args ...any) {
	if tr == nil {
		return
	}
	tr.notes[bn] = fmt.Sprintf(format, args...)
}

// BlockNote returns the last recorded note for bn. A nil tracer reports
// that tracing is off.
func (tr *Tracer) BlockNote(bn uint64) string {
	if tr == nil {
		return "tracing off"
	}
	return tr.notes[bn]
}

// Events returns the buffered events oldest-first. The slice is a copy.
func (tr *Tracer) Events() []Event {
	if tr == nil {
		return nil
	}
	if !tr.full {
		return append([]Event(nil), tr.ring...)
	}
	out := make([]Event, 0, len(tr.ring))
	out = append(out, tr.ring[tr.head:]...)
	out = append(out, tr.ring[:tr.head]...)
	return out
}

// Len returns the number of buffered events.
func (tr *Tracer) Len() int {
	if tr == nil {
		return 0
	}
	return len(tr.ring)
}

// Dropped returns how many events were overwritten by ring wraparound.
func (tr *Tracer) Dropped() uint64 {
	if tr == nil {
		return 0
	}
	return tr.dropped
}
