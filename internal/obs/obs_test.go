package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRingWraparound(t *testing.T) {
	tr := New(Options{Capacity: 8})
	for i := 0; i < 20; i++ {
		tr.Instant(PidThreads, 0, "test", "ev", int64(i))
	}
	if tr.Len() != 8 {
		t.Fatalf("Len = %d, want 8", tr.Len())
	}
	if tr.Dropped() != 12 {
		t.Fatalf("Dropped = %d, want 12", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 8 {
		t.Fatalf("Events len = %d, want 8", len(evs))
	}
	// Oldest-first: timestamps 12..19.
	for i, e := range evs {
		if e.Start != int64(12+i) {
			t.Fatalf("event %d: Start = %d, want %d", i, e.Start, 12+i)
		}
	}
}

func TestRingPartiallyFilled(t *testing.T) {
	tr := New(Options{Capacity: 8})
	for i := 0; i < 3; i++ {
		tr.Instant(PidThreads, 0, "test", "ev", int64(i))
	}
	evs := tr.Events()
	if len(evs) != 3 || tr.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d, want 3, 0", len(evs), tr.Dropped())
	}
	for i, e := range evs {
		if e.Start != int64(i) {
			t.Fatalf("event %d: Start = %d, want %d", i, e.Start, i)
		}
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Span(PidCores, 0, "c", "n", 0, 1)
	tr.Instant(PidCores, 0, "c", "n", 0)
	tr.Counter(PidCores, 0, "n", 0, 1)
	tr.Observe("m", 1)
	tr.NoteBlock(7, "ctx %d", 1)
	if got := tr.BlockNote(7); got != "tracing off" {
		t.Fatalf("BlockNote on nil = %q", got)
	}
	if tr.Track(PidCores, "x") != 0 || tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer accessors not inert")
	}
	if tr.Hist("m") != nil || tr.Histograms() != nil {
		t.Fatal("nil tracer returned histograms")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil-tracer export is not valid JSON: %v", err)
	}
}

func TestTrackInterning(t *testing.T) {
	tr := New(Options{})
	a := tr.Track(PidThreads, "alpha")
	b := tr.Track(PidThreads, "beta")
	if a != 0 || b != 1 {
		t.Fatalf("tids = %d, %d; want 0, 1", a, b)
	}
	if again := tr.Track(PidThreads, "alpha"); again != a {
		t.Fatalf("re-interning alpha gave %d, want %d", again, a)
	}
	// Same name under a different pid is a distinct track namespace.
	if other := tr.Track(PidStorage, "alpha"); other != 0 {
		t.Fatalf("first track under PidStorage = %d, want 0", other)
	}
	if got := tr.TrackName(PidThreads, b); got != "beta" {
		t.Fatalf("TrackName = %q, want beta", got)
	}
	if got := tr.TrackName(PidThreads, 99); got != "" {
		t.Fatalf("TrackName out of range = %q, want empty", got)
	}
}

func TestNoteBlock(t *testing.T) {
	tr := New(Options{})
	tr.NoteBlock(42, "commit g=%d", 3)
	if got := tr.BlockNote(42); got != "commit g=3" {
		t.Fatalf("BlockNote = %q", got)
	}
	if got := tr.BlockNote(43); got != "" {
		t.Fatalf("unset BlockNote = %q, want empty", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := newHistogram("empty")
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram: p50=%d mean=%d, want 0, 0", h.Quantile(0.5), h.Mean())
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := newHistogram("one")
	h.Observe(123456)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 123456 {
			t.Fatalf("single-sample Quantile(%v) = %d, want 123456", q, got)
		}
	}
	if h.Mean() != 123456 || h.Min != 123456 || h.Max != 123456 {
		t.Fatalf("single-sample stats wrong: mean=%d min=%d max=%d", h.Mean(), h.Min, h.Max)
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	h := newHistogram("neg")
	h.Observe(-5)
	if h.Min != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("negative sample not clamped: min=%d p50=%d", h.Min, h.Quantile(0.5))
	}
}

func TestHistogramUniform(t *testing.T) {
	h := newHistogram("uniform")
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	// Log-linear buckets are exact to within 1/subCount relative error.
	checks := []struct {
		q    float64
		want int64
	}{{0.5, 500}, {0.95, 950}, {0.99, 990}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		lo := c.want - c.want/subCount - 1
		hi := c.want + c.want/subCount + 1
		if got < lo || got > hi {
			t.Fatalf("Quantile(%v) = %d, want within [%d, %d]", c.q, got, lo, hi)
		}
	}
	if h.Quantile(1) != 1000 {
		t.Fatalf("Quantile(1) = %d, want 1000", h.Quantile(1))
	}
}

func TestBucketMath(t *testing.T) {
	// Bucket indices must be monotone, in range, and self-consistent: every
	// value maps to a bucket whose bounds contain it.
	prev := -1
	for v := int64(0); v < 1<<21; v += 7 {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf not monotone at v=%d: %d < %d", v, b, prev)
		}
		if b >= maxBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, b)
		}
		if up := bucketUpper(b); v > up {
			t.Fatalf("v=%d > bucketUpper(%d)=%d", v, b, up)
		}
		if b > 0 {
			if lowUp := bucketUpper(b - 1); v <= lowUp {
				t.Fatalf("v=%d <= upper bound %d of previous bucket %d", v, lowUp, b-1)
			}
		}
		prev = b
	}
	// The largest representable value must stay in range.
	if b := bucketOf(1<<62 + 12345); b >= maxBuckets {
		t.Fatalf("huge value bucket %d out of range", b)
	}
}

// chromeDoc mirrors the exported JSON for parse-back assertions.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  *float64       `json:"dur"`
		Pid  int32          `json:"pid"`
		Tid  int32          `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestChromeExport(t *testing.T) {
	tr := New(Options{Capacity: 64})
	core0 := tr.Track(PidCores, "core0")
	th := tr.Track(PidThreads, "cleaner-0")
	// Emit out of start-time order: spans are recorded at completion.
	tr.Span(PidCores, core0, "cleaner", "burst", 2000, 5000)
	tr.Span(PidThreads, th, "sync", "lock:cache", 1000, 4000)
	tr.Instant(PidThreads, th, "alloc", "USE", 4500)
	tr.Counter(PidAffinity, 0, "queued msgs", 3000, 7)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	names := map[string]bool{}
	lastTs := -1.0
	var spans, instants, counters, meta int
	for _, e := range doc.TraceEvents {
		names[e.Name] = true
		switch e.Ph {
		case "M":
			meta++
			continue // metadata carries no timestamp
		case "X":
			spans++
			if e.Dur == nil {
				t.Fatalf("span %q lacks dur", e.Name)
			}
		case "i":
			instants++
		case "C":
			counters++
		default:
			t.Fatalf("unexpected ph %q", e.Ph)
		}
		if e.Ts < lastTs {
			t.Fatalf("events not timestamp-ordered: %v after %v", e.Ts, lastTs)
		}
		lastTs = e.Ts
	}
	if spans != 2 || instants != 1 || counters != 1 {
		t.Fatalf("event counts: spans=%d instants=%d counters=%d", spans, instants, counters)
	}
	if meta == 0 {
		t.Fatal("no process/thread metadata emitted")
	}
	for _, want := range []string{"process_name", "thread_name", "burst", "lock:cache", "USE", "queued msgs"} {
		if !names[want] {
			t.Fatalf("exported trace lacks %q", want)
		}
	}
	// The first timed event must be the earliest start: the mutex span at
	// 1000ns = 1µs, even though it was recorded second.
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if e.Name != "lock:cache" || e.Ts != 1.0 {
			t.Fatalf("first timed event = %q at %vµs, want lock:cache at 1µs", e.Name, e.Ts)
		}
		break
	}
}
