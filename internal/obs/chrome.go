package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event JSON format
// (the "JSON Array Format" consumed by chrome://tracing and Perfetto).
// Timestamps and durations are in microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int32          `json:"pid"`
	Tid  int32          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level export document.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// usec converts simulated nanoseconds to trace microseconds.
func usec(t Time) float64 { return float64(t) / 1e3 }

// WriteChromeTrace writes the buffered events as Chrome trace-event JSON:
// process/thread metadata first (process per subsystem, track per core,
// thread, affinity, or drive), then the events sorted by timestamp (ties
// broken longest-span-first so enclosing spans precede their children).
// The output loads directly in Perfetto or chrome://tracing.
func (tr *Tracer) WriteChromeTrace(w io.Writer) error {
	if tr == nil {
		_, err := w.Write([]byte(`{"traceEvents":[],"displayTimeUnit":"ms"}`))
		return err
	}
	events := tr.Events()
	out := make([]chromeEvent, 0, len(events)+4*len(tr.tracks))

	// Metadata: name each process and its tracks, in deterministic order.
	pids := make([]int32, 0, len(tr.tracks))
	for pid := range tr.tracks {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		pname := processNames[pid]
		if pname == "" {
			pname = "process"
		}
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": pname},
		}, chromeEvent{
			Name: "process_sort_index", Ph: "M", Pid: pid,
			Args: map[string]any{"sort_index": pid},
		})
		for tid, name := range tr.tracks[pid].names {
			out = append(out, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: int32(tid),
				Args: map[string]any{"name": name},
			}, chromeEvent{
				Name: "thread_sort_index", Ph: "M", Pid: pid, Tid: int32(tid),
				Args: map[string]any{"sort_index": tid},
			})
		}
	}

	// Events, chronological. The ring is append-ordered by emission time,
	// but spans are emitted at their *end* — sort by start so the file is
	// timestamp-ordered.
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Start != events[j].Start {
			return events[i].Start < events[j].Start
		}
		return events[i].Dur > events[j].Dur
	})
	for _, e := range events {
		ce := chromeEvent{
			Name: e.Name, Cat: e.Cat, Pid: e.Pid, Tid: e.Tid, Ts: usec(e.Start),
		}
		switch e.Ph {
		case PhaseSpan:
			ce.Ph = "X"
			d := usec(e.Dur)
			ce.Dur = &d
			if e.HasArg {
				ce.Args = map[string]any{"value": e.Arg}
			}
		case PhaseInstant:
			ce.Ph = "i"
			ce.S = "t"
			if e.HasArg {
				ce.Args = map[string]any{"value": e.Arg}
			}
		case PhaseCounter:
			ce.Ph = "C"
			ce.Args = map[string]any{e.Name: e.Arg}
		}
		out = append(out, ce)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: out, DisplayTimeUnit: "ms"})
}
