package obs

import (
	"sort"
	"testing"
)

// quantileValues are sample values straddling the histogram's layout
// boundaries: the exact region (v < 16), the first sub-bucketed octave,
// power-of-two edges, and wide octaves where a bucket spans many values.
var quantileValues = []int64{0, 1, 2, 15, 16, 17, 31, 32, 33, 100, 255, 256,
	1000, 4095, 4096, 65536, 1 << 20, 123456789}

// TestQuantileSmallHistograms is the property test over 1..3-sample
// histograms: for every combination of samples, every quantile must land in
// the bucket of the exact order statistic of rank ceil(q*n) — and a
// single-sample histogram must return its sample exactly for every q.
func TestQuantileSmallHistograms(t *testing.T) {
	quantiles := []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1}
	check := func(samples []int64) {
		h := NewHistogram("q")
		for _, v := range samples {
			h.Observe(v)
		}
		sorted := append([]int64(nil), samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, q := range quantiles {
			got := h.Quantile(q)
			// Exact order statistic at rank ceil(q*n), 1-based, min rank 1.
			rank := int(q * float64(len(samples)))
			if float64(rank) < q*float64(len(samples)) {
				rank++
			}
			if rank < 1 {
				rank = 1
			}
			want := sorted[rank-1]
			if len(samples) == 1 && got != want {
				t.Fatalf("single-sample histogram {%d}: Quantile(%g) = %d, want the sample exactly",
					samples[0], q, got)
			}
			if bucketOf(got) != bucketOf(want) {
				t.Fatalf("samples %v: Quantile(%g) = %d (bucket %d), want order statistic %d (bucket %d)",
					samples, q, got, bucketOf(got), want, bucketOf(want))
			}
			if got < h.Min || got > h.Max {
				t.Fatalf("samples %v: Quantile(%g) = %d outside [%d, %d]",
					samples, q, got, h.Min, h.Max)
			}
		}
	}
	for _, a := range quantileValues {
		check([]int64{a})
		for _, b := range quantileValues {
			check([]int64{a, b})
			for _, c := range quantileValues {
				check([]int64{a, b, c})
			}
		}
	}
}

// TestQuantileBucketUpperDrift pins the off-by-one-bucket case directly:
// three distinct samples, the median must come back from the middle
// sample's bucket, p99 from the maximum's.
func TestQuantileBucketUpperDrift(t *testing.T) {
	h := NewHistogram("drift")
	for _, v := range []int64{1, 5, 9} {
		h.Observe(v)
	}
	if got := h.Quantile(0.5); got != 5 {
		t.Errorf("p50 of {1,5,9} = %d, want 5", got)
	}
	if got := h.Quantile(0.99); got != 9 {
		t.Errorf("p99 of {1,5,9} = %d, want 9", got)
	}
	if got := h.Quantile(1); got != 9 {
		t.Errorf("p100 of {1,5,9} = %d, want 9", got)
	}
}
