package obs

import (
	"fmt"
	"math/bits"
	"strings"
)

// Histogram accumulates int64 samples (latencies in nanoseconds, sizes in
// blocks) into log-linear buckets: exact below 2^subBits, then subCount
// sub-buckets per power of two — the classic HDR layout. Memory is O(1),
// recording is O(1), and quantiles are exact to within 1/subCount relative
// error, which is deterministic across runs (no sampling).
type Histogram struct {
	Name  string
	Count uint64
	Sum   int64
	Min   int64
	Max   int64

	buckets []uint64
}

const (
	subBits  = 4
	subCount = 1 << subBits // 16 sub-buckets per octave
	// maxBuckets covers the full non-negative int64 range.
	maxBuckets = subCount + (63-subBits)*subCount
)

func newHistogram(name string) *Histogram {
	return &Histogram{Name: name, buckets: make([]uint64, maxBuckets)}
}

// NewHistogram creates a standalone histogram for callers that keep their
// own metric state (e.g. the CP engine's always-on phase-duration
// histograms) rather than registering through a Tracer.
func NewHistogram(name string) *Histogram { return newHistogram(name) }

// bucketOf maps a non-negative sample to its bucket index: exact for
// v < subCount, then the octave [2^e, 2^(e+1)) splits into subCount
// sub-buckets of width 2^(e-subBits).
func bucketOf(v int64) int {
	if v < subCount {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // 2^exp <= v < 2^(exp+1)
	top := int(v>>(uint(exp-subBits))) - subCount
	return subCount + (exp-subBits)*subCount + top
}

// bucketUpper returns the largest sample value the bucket can hold.
func bucketUpper(b int) int64 {
	if b < subCount {
		return int64(b)
	}
	octave := (b - subCount) / subCount
	top := (b - subCount) % subCount
	return (int64(subCount+top+1) << uint(octave)) - 1
}

// Observe records one sample. Negative samples clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	h.buckets[bucketOf(v)]++
}

// Mean returns the arithmetic mean, or 0 for an empty histogram.
func (h *Histogram) Mean() int64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / int64(h.Count)
}

// Quantile returns the q-quantile (q in [0, 1]) as the upper bound of the
// bucket containing it, clamped to the observed [Min, Max]. An empty
// histogram returns 0; a single-sample histogram returns that sample
// exactly.
func (h *Histogram) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// The target rank is the ceiling of q*Count: the q-quantile of n samples
	// is the ceil(q*n)-th order statistic. Truncating here returned the
	// previous sample (p50 of {a,b,c} came back as a), which a property test
	// over 1..3-sample histograms catches.
	tf := q * float64(h.Count)
	target := uint64(tf)
	if float64(target) < tf {
		target++
	}
	if target < 1 {
		target = 1
	}
	if target > h.Count {
		target = h.Count
	}
	var cum uint64
	for b, n := range h.buckets {
		cum += n
		if cum >= target {
			v := bucketUpper(b)
			if v < h.Min {
				v = h.Min
			}
			if v > h.Max {
				v = h.Max
			}
			return v
		}
	}
	return h.Max
}

// Clone returns an independent deep copy of the histogram. Measurement
// windows snapshot a live histogram with Clone and later Delta the end
// state against the snapshot.
func (h *Histogram) Clone() *Histogram {
	c := *h
	c.buckets = make([]uint64, len(h.buckets))
	copy(c.buckets, h.buckets)
	return &c
}

// Delta returns the samples recorded in h after the snapshot prev (which
// must be an earlier Clone of the same histogram): per-bucket counts,
// Count, and Sum subtract exactly. Min/Max of the window are recovered
// from the first and last non-empty delta buckets (exact to within one
// bucket, the histogram's native resolution), clamped to the cumulative
// extremes.
func (h *Histogram) Delta(prev *Histogram) *Histogram {
	d := &Histogram{Name: h.Name, buckets: make([]uint64, len(h.buckets))}
	if prev == nil {
		copy(d.buckets, h.buckets)
		d.Count, d.Sum, d.Min, d.Max = h.Count, h.Sum, h.Min, h.Max
		return d
	}
	d.Count = h.Count - prev.Count
	d.Sum = h.Sum - prev.Sum
	lo, hi := -1, -1
	for b := range h.buckets {
		n := h.buckets[b] - prev.buckets[b]
		d.buckets[b] = n
		if n > 0 {
			if lo < 0 {
				lo = b
			}
			hi = b
		}
	}
	if lo >= 0 {
		d.Min = bucketUpper(lo)
		if lo > 0 {
			d.Min = bucketUpper(lo-1) + 1
		}
		if d.Min < h.Min {
			d.Min = h.Min
		}
		d.Max = bucketUpper(hi)
		if d.Max > h.Max {
			d.Max = h.Max
		}
	}
	return d
}

// Merge folds other into h: bucket counts, Count, and Sum add exactly;
// Min/Max take the tighter extreme. Used to combine per-member window
// histograms into one cluster-wide latency distribution.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.Count == 0 {
		return
	}
	if h.Count == 0 || other.Min < h.Min {
		h.Min = other.Min
	}
	if other.Max > h.Max {
		h.Max = other.Max
	}
	h.Count += other.Count
	h.Sum += other.Sum
	for b, n := range other.buckets {
		h.buckets[b] += n
	}
}

// String renders the histogram as one summary line.
func (h *Histogram) String() string {
	return fmt.Sprintf("%s: n=%d avg=%s p50=%s p95=%s p99=%s max=%s",
		h.Name, h.Count, fmtNanos(h.Mean()),
		fmtNanos(h.Quantile(0.50)), fmtNanos(h.Quantile(0.95)),
		fmtNanos(h.Quantile(0.99)), fmtNanos(h.Max))
}

// fmtNanos renders a nanosecond quantity with a human unit (histograms
// overwhelmingly hold simulated durations).
func fmtNanos(v int64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3fs", float64(v)/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3fms", float64(v)/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.3fus", float64(v)/1e3)
	default:
		return fmt.Sprintf("%dns", v)
	}
}

// HistogramReport renders every histogram, one per line, in
// first-observation order.
func (tr *Tracer) HistogramReport() string {
	if tr == nil || len(tr.histOrder) == 0 {
		return "no histograms recorded"
	}
	var b strings.Builder
	for _, name := range tr.histOrder {
		b.WriteString(tr.hists[name].String())
		b.WriteByte('\n')
	}
	return b.String()
}
