package sim

import "fmt"

// Category identifies a CPU accounting bucket. Experiments report simulated
// core usage per category, mirroring the paper's instrumented-kernel
// measurements (e.g. "2.35 infrastructure + 3.88 cleaner cores").
type Category int

// CPU accounting categories used throughout the system.
const (
	CatOther      Category = iota // uncategorized work
	CatClient                     // client protocol + op processing in stripe affinities
	CatWaffinity                  // Waffinity scheduler dispatch overhead
	CatCleaner                    // inode cleaner threads (VBN assignment)
	CatInfra                      // write-allocation infrastructure (metafile work)
	CatCP                         // consistency point orchestration
	CatRAID                       // parity computation and I/O assembly
	NumCategories                 // sentinel: number of categories
)

// String returns the human-readable category name.
func (c Category) String() string {
	switch c {
	case CatOther:
		return "other"
	case CatClient:
		return "client"
	case CatWaffinity:
		return "waffinity"
	case CatCleaner:
		return "cleaner"
	case CatInfra:
		return "infra"
	case CatCP:
		return "cp"
	case CatRAID:
		return "raid"
	default:
		return fmt.Sprintf("category(%d)", int(c))
	}
}

// CPUStats is a snapshot of cumulative busy time per category.
type CPUStats struct {
	Busy [NumCategories]Duration // cumulative CPU time per category
	Wall Time                    // simulated time of the snapshot
}

// TotalBusy returns the cumulative busy time across all categories.
func (s CPUStats) TotalBusy() Duration {
	var total Duration
	for _, b := range s.Busy {
		total += b
	}
	return total
}

// Cores converts the busy time of category c over the window since prev into
// an average number of occupied cores.
func (s CPUStats) Cores(prev CPUStats, c Category) float64 {
	wall := s.Wall - prev.Wall
	if wall <= 0 {
		return 0
	}
	return float64(s.Busy[c]-prev.Busy[c]) / float64(wall)
}

// TotalCores converts total busy time over the window since prev into an
// average number of occupied cores.
func (s CPUStats) TotalCores(prev CPUStats) float64 {
	wall := s.Wall - prev.Wall
	if wall <= 0 {
		return 0
	}
	return float64(s.TotalBusy()-prev.TotalBusy()) / float64(wall)
}
