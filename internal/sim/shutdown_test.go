package sim

import (
	"runtime"
	"testing"
	"time"
)

func TestShutdownTerminatesThreads(t *testing.T) {
	s := New(2, 1)
	for i := 0; i < 5; i++ {
		s.Go("looper", CatOther, func(th *Thread) {
			for {
				th.Consume(10 * Microsecond)
				th.Sleep(10 * Microsecond)
			}
		})
	}
	s.Run(Time(Millisecond))
	if s.Live() != 5 {
		t.Fatalf("live = %d", s.Live())
	}
	s.Shutdown()
	if s.Live() != 0 {
		t.Fatalf("live after shutdown = %d", s.Live())
	}
	s.Shutdown() // idempotent
}

func TestShutdownReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for k := 0; k < 10; k++ {
		s := New(2, 1)
		m := NewMutex(s, "m")
		q := NewWaitQueue(s, "q")
		for i := 0; i < 20; i++ {
			i := i
			s.Go("w", CatOther, func(th *Thread) {
				for {
					th.Consume(Microsecond)
					if i%3 == 0 {
						q.Wait(th) // blocks forever
					}
					m.Lock(th)
					th.Consume(Microsecond)
					m.Unlock(th)
				}
			})
		}
		s.Run(Time(100 * Microsecond))
		s.Shutdown()
	}
	// Give exited goroutines a moment to be reaped.
	for i := 0; i < 50; i++ {
		runtime.GC()
		if runtime.NumGoroutine() <= before+5 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestKillFromTerminatesOnlyNewThreads(t *testing.T) {
	s := New(2, 1)
	oldAlive := true
	s.Go("old", CatOther, func(th *Thread) {
		for oldAlive {
			th.Sleep(10 * Microsecond)
		}
	})
	mark := s.ThreadMark()
	newRan := 0
	for i := 0; i < 3; i++ {
		s.Go("new", CatOther, func(th *Thread) {
			for {
				newRan++
				th.Sleep(10 * Microsecond)
			}
		})
	}
	s.Run(Time(Millisecond))
	ranBefore := newRan
	if ranBefore == 0 {
		t.Fatal("new threads never ran")
	}
	s.KillFrom(mark)
	if s.Live() != 1 {
		t.Fatalf("live = %d, want only the old thread", s.Live())
	}
	s.Run(Time(2 * Millisecond))
	if newRan != ranBefore {
		t.Fatal("killed threads kept running")
	}
	oldAlive = false
	s.Run(Time(3 * Millisecond))
	if s.Live() != 0 {
		t.Fatalf("old thread did not exit cleanly: live=%d", s.Live())
	}
}

func TestKillFromWhileThreadInReadyQueue(t *testing.T) {
	// One core, several CPU-hungry threads: some sit in the ready queue.
	s := New(1, 1)
	mark := s.ThreadMark()
	for i := 0; i < 4; i++ {
		s.Go("hog", CatOther, func(th *Thread) {
			for {
				th.Consume(100 * Microsecond)
			}
		})
	}
	// Stop mid-burst: some threads are running, some queued.
	s.Run(Time(150 * Microsecond))
	s.KillFrom(mark)
	if s.Live() != 0 {
		t.Fatalf("live = %d after KillFrom", s.Live())
	}
	// The scheduler must still work for new threads.
	done := false
	s.Go("fresh", CatOther, func(th *Thread) {
		th.Consume(10 * Microsecond)
		done = true
	})
	s.Run(Time(Second))
	if !done {
		t.Fatal("scheduler unusable after KillFrom")
	}
}

func TestKilledThreadStaleEventsAreNoOps(t *testing.T) {
	s := New(1, 1)
	mark := s.ThreadMark()
	s.Go("sleeper", CatOther, func(th *Thread) {
		th.Sleep(500 * Microsecond) // wakeup event remains in the heap
	})
	s.Run(Time(100 * Microsecond))
	s.KillFrom(mark)
	// Run past the stale wakeup: must not hang or panic.
	s.Run(Time(2 * Millisecond))
	if s.Live() != 0 {
		t.Fatalf("live = %d", s.Live())
	}
}
