package sim

import (
	"fmt"
	"math/rand"

	"wafl/internal/obs"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000
	Millisecond Duration = 1000 * 1000
	Second      Duration = 1000 * 1000 * 1000
)

// Seconds returns the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Millis returns the duration as floating-point milliseconds.
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }

// Micros returns the duration as floating-point microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", d.Millis())
	case d >= Microsecond:
		return fmt.Sprintf("%.3fus", d.Micros())
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// event is a scheduled closure. Events with equal timestamps fire in
// insertion (seq) order, which keeps the simulation deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap is a binary min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e *event) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() *event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = nil
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}

// Scheduler is the discrete-event simulation kernel: an event queue, a model
// of N CPU cores, and the set of simulated threads multiplexed onto them.
//
// The zero value is not usable; construct with New. A Scheduler is not safe
// for concurrent use from multiple goroutines; all access must come either
// from outside Run (setup/teardown) or from simulated threads, which the
// kernel serializes.
type Scheduler struct {
	now  Time
	seq  uint64
	heap eventHeap

	cores     int
	freeCores int
	readyQ    []*Thread // threads with a pending CPU burst, FIFO

	busy       [NumCategories]Duration
	dispatched uint64 // events processed

	yield       chan struct{} // threads hand the execution token back here
	rng         *rand.Rand
	running     bool
	live        int       // live (not yet finished) threads
	threads     []*Thread // every thread ever spawned (for Shutdown)
	poisoned    bool      // Shutdown in progress: resumed threads unwind
	spawnPrefix string    // prepended to every spawned thread's name

	// Halt state: crash-schedule fault injection stops the event loop at a
	// precise, reproducible point — between two events — so that a caller
	// can Crash() the system exactly there. haltAt is an event-count
	// threshold (0 = disabled); haltReq is a one-shot request raised from
	// inside an event (e.g. a CP phase hook).
	haltAt  uint64
	haltReq bool
	halted  bool

	// tr is the observability spine; nil means tracing is disabled and
	// every emission point reduces to one pointer comparison.
	tr *obs.Tracer
	// freeCoreIDs assigns stable core identities to bursts so the trace
	// can render one lane per core; maintained only while tracing.
	freeCoreIDs []int32
}

// SetTracer attaches an observability tracer (nil disables tracing). It
// must be called before the simulation starts executing CPU bursts —
// in practice, immediately after New — so core lanes get stable
// identities. The tracer never influences simulation behaviour: results
// are bit-identical with tracing on or off.
func (s *Scheduler) SetTracer(tr *obs.Tracer) {
	s.tr = tr
	s.freeCoreIDs = nil
	if tr == nil {
		return
	}
	for i := 0; i < s.cores; i++ {
		tr.Track(obs.PidCores, fmt.Sprintf("core%d", i))
	}
	// Stack lowest-id on top; trim to the currently free cores if bursts
	// are somehow already in flight.
	for i := s.freeCores - 1; i >= 0; i-- {
		s.freeCoreIDs = append(s.freeCoreIDs, int32(i))
	}
}

// Tracer returns the attached tracer, or nil when tracing is off. Every
// subsystem reaches the observability layer through this accessor.
func (s *Scheduler) Tracer() *obs.Tracer { return s.tr }

// Shutdown terminates every simulated thread so the scheduler and all state
// reachable from thread goroutines become garbage-collectable. The
// scheduler is unusable afterwards. Must not be called while Run is active.
func (s *Scheduler) Shutdown() {
	if s.running {
		panic("sim: Shutdown during Run")
	}
	if s.poisoned {
		return
	}
	s.poisoned = true
	for _, t := range s.threads {
		if !t.done {
			s.runThread(t)
		}
	}
	s.threads = nil
	s.heap = nil
}

// ThreadMark returns a marker identifying the threads spawned so far; a
// later KillFrom(mark) terminates exactly the threads spawned after it.
func (s *Scheduler) ThreadMark() int { return len(s.threads) }

// SetSpawnPrefix prepends p to the name of every subsequently spawned
// thread. A cluster of subsystems sharing one scheduler uses it to keep
// thread (and trace-track) names distinct per subsystem; the empty prefix
// leaves names exactly as passed to Go.
func (s *Scheduler) SetSpawnPrefix(p string) { s.spawnPrefix = p }

// KillFrom terminates every thread spawned at or after the given mark — the
// crash model for one subsystem sharing the scheduler with its recovered
// successor: the old system's threads must stop executing (a real crash
// destroys them), while the scheduler lives on for the new instance. Must
// not be called while Run is active.
func (s *Scheduler) KillFrom(mark int) {
	s.KillRange(mark, len(s.threads))
}

// KillRange terminates exactly the threads with spawn index in [lo, hi) —
// the crash model for ONE member of a cluster sharing the scheduler:
// threads spawned before and after the member's build window keep running
// (survivor members serve traffic through the crash). Must not be called
// while Run is active.
func (s *Scheduler) KillRange(lo, hi int) {
	if s.running {
		panic("sim: KillRange during Run")
	}
	if lo < 0 {
		lo = 0
	}
	if hi > len(s.threads) {
		hi = len(s.threads)
	}
	if lo >= hi {
		return
	}
	for _, t := range s.threads[lo:hi] {
		t.killed = true
	}
	// Purge killed threads waiting for a CPU: they must never take a core.
	live := s.readyQ[:0]
	for _, t := range s.readyQ {
		if !t.killed {
			live = append(live, t)
		}
	}
	s.readyQ = live
	for _, t := range s.threads[lo:hi] {
		if !t.done {
			s.runThread(t)
		}
	}
}

// New returns a Scheduler modelling the given number of CPU cores, with all
// simulation randomness derived from seed.
func New(cores int, seed int64) *Scheduler {
	if cores < 1 {
		panic("sim: scheduler needs at least one core")
	}
	return &Scheduler{
		cores:     cores,
		freeCores: cores,
		yield:     make(chan struct{}),
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Cores returns the number of simulated CPU cores.
func (s *Scheduler) Cores() int { return s.cores }

// Rand returns the simulation's deterministic random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Live returns the number of simulated threads that have been spawned and
// have not yet returned.
func (s *Scheduler) Live() int { return s.live }

// Events returns the number of events processed so far (a cheap progress and
// determinism fingerprint).
func (s *Scheduler) Events() uint64 { return s.dispatched }

// HaltAtEvent arranges for Run/Drain to stop — between events, without
// advancing the clock further — once the dispatched-event count reaches n.
// Because the simulation is deterministic, (seed, event index) names a
// reproducible instant: the crash-schedule sweep uses this to crash the
// system at every point of a run. Pass 0 to disable.
func (s *Scheduler) HaltAtEvent(n uint64) { s.haltAt = n }

// RequestHalt asks the event loop to stop after the currently executing
// event. It is safe to call from inside event or simulated-thread context
// (e.g. a CP phase hook); the caller should park promptly so the event
// finishes.
func (s *Scheduler) RequestHalt() { s.haltReq = true }

// Halted reports whether the last Run/Drain stopped early because of
// HaltAtEvent or RequestHalt rather than reaching its time/queue limit.
func (s *Scheduler) Halted() bool { return s.halted }

// shouldHalt checks and consumes pending halt conditions.
func (s *Scheduler) shouldHalt() bool {
	if s.haltReq || (s.haltAt != 0 && s.dispatched >= s.haltAt) {
		s.haltReq = false
		s.halted = true
		return true
	}
	return false
}

// CPU returns a snapshot of cumulative per-category busy time.
func (s *Scheduler) CPU() CPUStats {
	return CPUStats{Busy: s.busy, Wall: s.now}
}

// post schedules fn to run at time at (>= now).
func (s *Scheduler) post(at Time, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	s.heap.push(&event{at: at, seq: s.seq, fn: fn})
}

// After schedules fn to run in the scheduler context after d simulated time.
// fn must not block; it may signal WaitQueues, post further events, and
// mutate simulation state. Use it for I/O completions and periodic ticks.
func (s *Scheduler) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.post(s.now+Time(d), fn)
}

// Run processes events until the simulated clock reaches until, then advances
// the clock to exactly until and returns. Threads blocked at that point stay
// blocked; a subsequent Run continues the simulation.
//
// If a halt is pending (HaltAtEvent/RequestHalt), Run stops between events
// and leaves the clock at the last dispatched event's time — the state a
// crash at that event index would find.
func (s *Scheduler) Run(until Time) {
	if s.running {
		panic("sim: Run called reentrantly")
	}
	s.running = true
	defer func() { s.running = false }()
	s.halted = false
	for len(s.heap) > 0 && s.heap[0].at <= until {
		if s.shouldHalt() {
			return
		}
		e := s.heap.pop()
		s.now = e.at
		s.dispatched++
		e.fn()
	}
	if s.shouldHalt() {
		return
	}
	if s.now < until {
		s.now = until
	}
}

// RunFor runs the simulation for d more simulated time.
func (s *Scheduler) RunFor(d Duration) { s.Run(s.now + Time(d)) }

// Drain processes events until the event queue is empty or the simulated
// clock would exceed limit. It returns the number of events processed.
// Useful in tests to let in-flight work settle.
func (s *Scheduler) Drain(limit Time) int {
	n := 0
	if s.running {
		panic("sim: Drain called reentrantly")
	}
	s.running = true
	defer func() { s.running = false }()
	s.halted = false
	for len(s.heap) > 0 && s.heap[0].at <= limit {
		if s.shouldHalt() {
			return n
		}
		e := s.heap.pop()
		s.now = e.at
		s.dispatched++
		n++
		e.fn()
	}
	return n
}

// runThread hands the execution token to t and waits until t parks or
// exits. Resuming a finished thread (e.g. a stale burst-completion event
// for a killed thread) is a no-op.
func (s *Scheduler) runThread(t *Thread) {
	if t.done {
		return
	}
	t.resume <- struct{}{}
	<-s.yield
}

// startBurst begins t's pending CPU burst now; completion is an event.
func (s *Scheduler) startBurst(t *Thread) {
	t.burstStart = s.now
	if s.tr != nil {
		if t.queuedAt >= 0 {
			s.tr.Observe("sim.runq_wait", int64(s.now-t.queuedAt))
			t.queuedAt = -1
		}
		if n := len(s.freeCoreIDs); n > 0 {
			t.burstCore = s.freeCoreIDs[n-1]
			s.freeCoreIDs = s.freeCoreIDs[:n-1]
		}
	}
	s.post(s.now+Time(t.burstDur), func() { s.finishBurst(t) })
}

// finishBurst accounts t's completed burst, starts the next queued burst if
// any, and resumes t.
func (s *Scheduler) finishBurst(t *Thread) {
	s.freeCores++
	s.busy[t.burstCat] += t.burstDur
	t.busy += t.burstDur
	if s.tr != nil && t.burstCore >= 0 {
		s.tr.Span(obs.PidCores, t.burstCore, t.burstCat.String(), t.name,
			int64(t.burstStart), int64(s.now))
		s.freeCoreIDs = append(s.freeCoreIDs, t.burstCore)
		t.burstCore = -1
	}
	if len(s.readyQ) > 0 {
		next := s.readyQ[0]
		copy(s.readyQ, s.readyQ[1:])
		s.readyQ = s.readyQ[:len(s.readyQ)-1]
		s.freeCores--
		s.startBurst(next)
	}
	s.runThread(t)
}
