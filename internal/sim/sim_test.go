package sim

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestClockAdvances(t *testing.T) {
	s := New(1, 1)
	if s.Now() != 0 {
		t.Fatalf("initial time = %v, want 0", s.Now())
	}
	s.Run(Time(5 * Second))
	if s.Now() != Time(5*Second) {
		t.Fatalf("time after Run = %v, want 5s", s.Now())
	}
}

func TestSingleThreadConsume(t *testing.T) {
	s := New(1, 1)
	var end Time
	s.Go("worker", CatOther, func(th *Thread) {
		th.Consume(10 * Microsecond)
		th.Consume(5 * Microsecond)
		end = th.Now()
	})
	s.Run(Time(Second))
	if end != Time(15*Microsecond) {
		t.Fatalf("thread finished at %v, want 15us", end)
	}
	if got := s.CPU().Busy[CatOther]; got != 15*Microsecond {
		t.Fatalf("busy = %v, want 15us", got)
	}
}

func TestCPUQueueingOnOneCore(t *testing.T) {
	// Two threads each needing 10us of CPU on a single core must finish at
	// 10us and 20us.
	s := New(1, 1)
	var ends []Time
	for i := 0; i < 2; i++ {
		s.Go(fmt.Sprintf("w%d", i), CatOther, func(th *Thread) {
			th.Consume(10 * Microsecond)
			ends = append(ends, th.Now())
		})
	}
	s.Run(Time(Second))
	if len(ends) != 2 || ends[0] != Time(10*Microsecond) || ends[1] != Time(20*Microsecond) {
		t.Fatalf("ends = %v, want [10us 20us]", ends)
	}
}

func TestCPUParallelismOnManyCores(t *testing.T) {
	// Eight threads of 10us each on 8 cores all finish at 10us.
	s := New(8, 1)
	var ends []Time
	for i := 0; i < 8; i++ {
		s.Go(fmt.Sprintf("w%d", i), CatOther, func(th *Thread) {
			th.Consume(10 * Microsecond)
			ends = append(ends, th.Now())
		})
	}
	s.Run(Time(Second))
	for _, e := range ends {
		if e != Time(10*Microsecond) {
			t.Fatalf("ends = %v, want all 10us", ends)
		}
	}
}

func TestCoreCapacityNeverExceeded(t *testing.T) {
	// With 3 cores and 10 threads issuing bursts, total busy time over the
	// window can never exceed 3 * wall.
	const cores = 3
	s := New(cores, 42)
	for i := 0; i < 10; i++ {
		s.Go(fmt.Sprintf("w%d", i), CatOther, func(th *Thread) {
			for j := 0; j < 100; j++ {
				th.Consume(Duration(1+j%7) * Microsecond)
			}
		})
	}
	s.Run(Time(10 * Millisecond))
	stats := s.CPU()
	if got, limit := stats.TotalBusy(), Duration(stats.Wall)*cores; got > limit {
		t.Fatalf("total busy %v exceeds capacity %v", got, limit)
	}
	// All work should have completed: 10 threads * 100 bursts of avg 4us =
	// 4ms of work on 3 cores ≈ 1.33ms << 10ms.
	if s.Live() != 0 {
		t.Fatalf("%d threads still live", s.Live())
	}
}

func TestSleepDoesNotOccupyCore(t *testing.T) {
	s := New(1, 1)
	var sleeperEnd, workerEnd Time
	s.Go("sleeper", CatOther, func(th *Thread) {
		th.Sleep(100 * Microsecond)
		sleeperEnd = th.Now()
	})
	s.Go("worker", CatClient, func(th *Thread) {
		th.Consume(50 * Microsecond)
		workerEnd = th.Now()
	})
	s.Run(Time(Second))
	if workerEnd != Time(50*Microsecond) {
		t.Fatalf("worker end %v, want 50us (sleep must not hold the core)", workerEnd)
	}
	if sleeperEnd != Time(100*Microsecond) {
		t.Fatalf("sleeper end %v, want 100us", sleeperEnd)
	}
}

func TestMutexMutualExclusionAndFIFO(t *testing.T) {
	s := New(4, 1)
	m := NewMutex(s, "test")
	var order []string
	inCS := 0
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("w%d", i)
		s.Go(name, CatOther, func(th *Thread) {
			m.Lock(th)
			inCS++
			if inCS != 1 {
				t.Errorf("mutual exclusion violated: %d threads in CS", inCS)
			}
			th.Consume(10 * Microsecond)
			order = append(order, th.Name())
			inCS--
			m.Unlock(th)
		})
	}
	s.Run(Time(Second))
	want := []string{"w0", "w1", "w2", "w3"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want FIFO %v", order, want)
		}
	}
	if m.Contended != 3 {
		t.Fatalf("contended = %d, want 3", m.Contended)
	}
	if m.WaitTime == 0 {
		t.Fatal("expected nonzero wait time")
	}
}

func TestTryLock(t *testing.T) {
	s := New(2, 1)
	m := NewMutex(s, "try")
	var got []bool
	s.Go("holder", CatOther, func(th *Thread) {
		m.Lock(th)
		th.Consume(20 * Microsecond)
		m.Unlock(th)
	})
	s.Go("prober", CatOther, func(th *Thread) {
		th.Consume(5 * Microsecond) // ensure holder locked first
		got = append(got, m.TryLock(th))
		th.Sleep(100 * Microsecond)
		got = append(got, m.TryLock(th))
		if got[len(got)-1] {
			m.Unlock(th)
		}
	})
	s.Run(Time(Second))
	if len(got) != 2 || got[0] || !got[1] {
		t.Fatalf("TryLock results = %v, want [false true]", got)
	}
}

func TestWaitQueueSignalOrder(t *testing.T) {
	s := New(4, 1)
	q := NewWaitQueue(s, "q")
	var woken []string
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("w%d", i)
		s.Go(name, CatOther, func(th *Thread) {
			th.Consume(Duration(i+1) * Microsecond)
			q.Wait(th)
			woken = append(woken, th.Name())
		})
	}
	s.Go("signaler", CatOther, func(th *Thread) {
		th.Sleep(Duration(100 * Microsecond))
		for q.Signal() {
		}
	})
	s.Run(Time(Second))
	if len(woken) != 3 {
		t.Fatalf("woken = %v, want 3 threads", woken)
	}
}

func TestWaitWithReleasesMutex(t *testing.T) {
	s := New(2, 1)
	m := NewMutex(s, "m")
	q := NewWaitQueue(s, "q")
	var sequence []string
	s.Go("waiter", CatOther, func(th *Thread) {
		m.Lock(th)
		sequence = append(sequence, "waiter-locked")
		q.WaitWith(th, m)
		sequence = append(sequence, "waiter-woken")
		m.Unlock(th)
	})
	s.Go("signaler", CatOther, func(th *Thread) {
		th.Sleep(10 * Microsecond)
		m.Lock(th) // must be acquirable while waiter waits
		sequence = append(sequence, "signaler-locked")
		q.Signal()
		m.Unlock(th)
	})
	s.Run(Time(Second))
	want := []string{"waiter-locked", "signaler-locked", "waiter-woken"}
	if len(sequence) != len(want) {
		t.Fatalf("sequence = %v, want %v", sequence, want)
	}
	for i := range want {
		if sequence[i] != want[i] {
			t.Fatalf("sequence = %v, want %v", sequence, want)
		}
	}
}

func TestBroadcast(t *testing.T) {
	s := New(4, 1)
	q := NewWaitQueue(s, "q")
	woken := 0
	for i := 0; i < 5; i++ {
		s.Go(fmt.Sprintf("w%d", i), CatOther, func(th *Thread) {
			q.Wait(th)
			woken++
		})
	}
	s.Go("b", CatOther, func(th *Thread) {
		th.Sleep(Duration(Millisecond))
		if n := q.Broadcast(); n != 5 {
			t.Errorf("Broadcast woke %d, want 5", n)
		}
	})
	s.Run(Time(Second))
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
}

func TestAfterCallbacksFireInOrder(t *testing.T) {
	s := New(1, 1)
	var fired []int
	s.After(30*Microsecond, func() { fired = append(fired, 3) })
	s.After(10*Microsecond, func() { fired = append(fired, 1) })
	s.After(20*Microsecond, func() { fired = append(fired, 2) })
	s.After(10*Microsecond, func() { fired = append(fired, 11) }) // same time: insertion order
	s.Run(Time(Second))
	want := []int{1, 11, 2, 3}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestCategoryAccounting(t *testing.T) {
	s := New(2, 1)
	s.Go("mixed", CatClient, func(th *Thread) {
		th.Consume(10 * Microsecond)
		th.ConsumeAs(CatInfra, 20*Microsecond)
		th.ConsumeAs(CatCleaner, 30*Microsecond)
	})
	s.Run(Time(Second))
	st := s.CPU()
	if st.Busy[CatClient] != 10*Microsecond || st.Busy[CatInfra] != 20*Microsecond || st.Busy[CatCleaner] != 30*Microsecond {
		t.Fatalf("accounting = %+v", st.Busy)
	}
}

func TestCoresCalculation(t *testing.T) {
	s := New(4, 1)
	for i := 0; i < 2; i++ {
		s.Go(fmt.Sprintf("w%d", i), CatCleaner, func(th *Thread) {
			for th.Now() < Time(1*Second) {
				th.Consume(100 * Microsecond)
			}
		})
	}
	start := s.CPU()
	s.Run(Time(1 * Second))
	end := s.CPU()
	cores := end.Cores(start, CatCleaner)
	if cores < 1.9 || cores > 2.1 {
		t.Fatalf("cleaner cores = %.2f, want ~2", cores)
	}
}

// runFingerprint runs a small chaotic simulation and returns a fingerprint of
// its behaviour for determinism comparison.
func runFingerprint(seed int64) string {
	s := New(4, seed)
	m := NewMutex(s, "m")
	q := NewWaitQueue(s, "q")
	var trace []string
	shared := 0
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("w%d", i)
		s.Go(name, CatOther, func(th *Thread) {
			for j := 0; j < 50; j++ {
				th.Consume(Duration(s.Rand().Intn(10)+1) * Microsecond)
				m.Lock(th)
				shared++
				if shared%17 == 0 {
					trace = append(trace, fmt.Sprintf("%s@%d", th.Name(), th.Now()))
				}
				m.Unlock(th)
				if j%13 == 5 {
					q.Signal()
				}
				if j%11 == 7 {
					th.Sleep(Duration(s.Rand().Intn(20)) * Microsecond)
				}
			}
		})
	}
	s.Run(Time(100 * Millisecond))
	return fmt.Sprintf("%v|%d|%d", trace, shared, s.Events())
}

func TestDeterminism(t *testing.T) {
	a := runFingerprint(7)
	b := runFingerprint(7)
	if a != b {
		t.Fatalf("same seed produced different runs:\n%s\n%s", a, b)
	}
	c := runFingerprint(8)
	if a == c {
		t.Fatal("different seeds produced identical traces (suspicious)")
	}
}

func TestQuickCPUConservation(t *testing.T) {
	// Property: for any set of bursts across any core count, accounted busy
	// time equals the sum of requested bursts, and the finish time is at
	// least total/cores.
	f := func(coreSeed uint8, burstSeeds []uint16) bool {
		cores := int(coreSeed%8) + 1
		if len(burstSeeds) == 0 {
			return true
		}
		if len(burstSeeds) > 64 {
			burstSeeds = burstSeeds[:64]
		}
		s := New(cores, 1)
		var total Duration
		for i, bs := range burstSeeds {
			d := Duration(bs%1000+1) * Microsecond
			total += d
			s.Go(fmt.Sprintf("w%d", i), CatOther, func(th *Thread) {
				th.Consume(d)
			})
		}
		s.Run(Time(Second * 1000))
		if s.CPU().TotalBusy() != total {
			return false
		}
		return s.Live() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGoAt(t *testing.T) {
	s := New(1, 1)
	var started Time
	s.GoAt(Time(42*Microsecond), "late", CatOther, func(th *Thread) {
		started = th.Now()
	})
	s.Run(Time(Second))
	if started != Time(42*Microsecond) {
		t.Fatalf("started at %v, want 42us", started)
	}
}

func TestYield(t *testing.T) {
	s := New(1, 1)
	var order []string
	s.Go("a", CatOther, func(th *Thread) {
		th.Yield()
		order = append(order, "a")
	})
	s.Go("b", CatOther, func(th *Thread) {
		order = append(order, "b")
	})
	s.Run(Time(Second))
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Fatalf("order = %v, want [b a]", order)
	}
}

func TestHaltAtEvent(t *testing.T) {
	s := New(1, 1)
	fired := 0
	for i := 0; i < 20; i++ {
		i := i
		s.After(Duration(i+1)*Microsecond, func() { fired++ })
	}
	s.HaltAtEvent(5)
	s.Run(Time(Second))
	if !s.Halted() {
		t.Fatal("Run did not halt at event threshold")
	}
	if s.Events() != 5 || fired != 5 {
		t.Fatalf("events=%d fired=%d, want 5", s.Events(), fired)
	}
	if s.Now() != Time(5*Microsecond) {
		t.Fatalf("clock advanced to %v, want time of 5th event", s.Now())
	}
	// Resuming with the threshold already met halts immediately.
	s.Run(Time(Second))
	if !s.Halted() || fired != 5 {
		t.Fatalf("resumed run should halt immediately (fired=%d)", fired)
	}
	// Disabling the threshold lets the run finish and the clock reach until.
	s.HaltAtEvent(0)
	s.Run(Time(Second))
	if s.Halted() || fired != 20 || s.Now() != Time(Second) {
		t.Fatalf("halted=%v fired=%d now=%v, want full completion", s.Halted(), fired, s.Now())
	}
}

func TestRequestHaltFromEvent(t *testing.T) {
	s := New(1, 1)
	fired := 0
	for i := 0; i < 10; i++ {
		i := i
		s.After(Duration(i+1)*Microsecond, func() {
			fired++
			if i == 2 {
				s.RequestHalt()
			}
		})
	}
	s.Run(Time(Second))
	if !s.Halted() || fired != 3 {
		t.Fatalf("halted=%v fired=%d, want halt after 3rd event", s.Halted(), fired)
	}
	// The request is one-shot: the next Run completes.
	s.Run(Time(Second))
	if s.Halted() || fired != 10 {
		t.Fatalf("halted=%v fired=%d, want completed run", s.Halted(), fired)
	}
}

func TestHaltDeterministicResume(t *testing.T) {
	// A run halted at event k and resumed must match an uninterrupted run.
	run := func(haltAt uint64) (Time, uint64) {
		s := New(2, 7)
		var total Duration
		for i := 0; i < 4; i++ {
			s.Go(fmt.Sprintf("w%d", i), CatOther, func(th *Thread) {
				for j := 0; j < 50; j++ {
					th.Consume(3 * Microsecond)
					th.Sleep(Duration(j) * Microsecond)
				}
				total += th.Busy()
			})
		}
		if haltAt > 0 {
			s.HaltAtEvent(haltAt)
			s.Run(Time(Second))
			s.HaltAtEvent(0)
		}
		s.Run(Time(Second))
		return s.Now(), s.Events()
	}
	n1, e1 := run(0)
	n2, e2 := run(97)
	if n1 != n2 || e1 != e2 {
		t.Fatalf("halt+resume diverged: now %v vs %v, events %d vs %d", n1, n2, e1, e2)
	}
}
