package sim

import "wafl/internal/obs"

// Thread is a simulated thread of execution. It is backed by a goroutine,
// but the kernel guarantees at most one simulated thread executes at any
// real instant, so thread bodies may freely read and write shared simulation
// state without host-level synchronization.
//
// All Thread methods must be called from the thread's own body function.
type Thread struct {
	s    *Scheduler
	name string
	cat  Category // default CPU accounting category

	resume chan struct{}

	// pending CPU burst
	burstCat   Category
	burstDur   Duration
	burstStart Time

	busy   Duration // cumulative CPU consumed by this thread
	done   bool
	killed bool // KillFrom: unwind at next resume

	// tracing bookkeeping (inert unless a tracer is attached)
	burstCore int32 // core lane of the burst in flight, -1 if unassigned
	queuedAt  Time  // when the thread entered the ready queue, -1 if not
	obsTid    int32 // interned obs track id + 1; 0 means not yet interned
}

// killSentinel is the panic value used to unwind poisoned threads during
// Shutdown.
type killSentinel struct{}

// spawn builds a thread and its goroutine, scheduled to start at time at.
func (s *Scheduler) spawn(at Time, name string, cat Category, fn func(*Thread)) *Thread {
	name = s.spawnPrefix + name
	t := &Thread{
		s:         s,
		name:      name,
		cat:       cat,
		resume:    make(chan struct{}),
		burstCore: -1,
		queuedAt:  -1,
	}
	s.live++
	s.threads = append(s.threads, t)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killSentinel); !ok {
					// Real failure: crash loudly rather than hang the
					// scheduler.
					panic(r)
				}
			}
			t.done = true
			s.live--
			s.yield <- struct{}{}
		}()
		<-t.resume
		if s.poisoned || t.killed {
			panic(killSentinel{})
		}
		fn(t)
	}()
	s.post(at, func() { s.runThread(t) })
	return t
}

// Go spawns a new simulated thread that begins executing fn at the current
// simulated time. cat is the default CPU accounting category for the
// thread's Consume calls.
func (s *Scheduler) Go(name string, cat Category, fn func(*Thread)) *Thread {
	return s.spawn(s.now, name, cat, fn)
}

// GoAt is like Go but delays the thread's start until time at.
func (s *Scheduler) GoAt(at Time, name string, cat Category, fn func(*Thread)) *Thread {
	return s.spawn(at, name, cat, fn)
}

// Name returns the thread's debug name.
func (t *Thread) Name() string { return t.name }

// Tracer returns the scheduler's tracer (nil when tracing is off). Upper
// layers use it together with TrackID to emit thread-scoped trace events.
func (t *Thread) Tracer() *obs.Tracer { return t.s.tr }

// TrackID returns the thread's interned trace track id under
// obs.PidThreads, registering it (by thread name) on first use.
func (t *Thread) TrackID() int32 {
	if t.obsTid == 0 {
		t.obsTid = t.s.tr.Track(obs.PidThreads, t.name) + 1
	}
	return t.obsTid - 1
}

// Sched returns the scheduler this thread runs on.
func (t *Thread) Sched() *Scheduler { return t.s }

// Now returns the current simulated time.
func (t *Thread) Now() Time { return t.s.now }

// Busy returns the cumulative CPU time this thread has consumed. The dynamic
// cleaner-thread tuner uses deltas of this value to compute per-thread
// utilization over its 50ms windows.
func (t *Thread) Busy() Duration { return t.busy }

// SetCat changes the thread's default accounting category and returns the
// previous one. Waffinity workers use it so that each message's Consume
// calls are attributed to the subsystem that sent the message.
func (t *Thread) SetCat(cat Category) Category {
	prev := t.cat
	t.cat = cat
	return prev
}

// park yields the execution token to the scheduler and blocks until
// resumed. A resume after Shutdown unwinds the thread.
func (t *Thread) park() {
	t.s.yield <- struct{}{}
	<-t.resume
	if t.s.poisoned || t.killed {
		panic(killSentinel{})
	}
}

// Consume occupies a simulated core for d of CPU work, attributed to the
// thread's default category. If all cores are busy the thread first waits,
// FIFO, for a core.
func (t *Thread) Consume(d Duration) { t.ConsumeAs(t.cat, d) }

// ConsumeAs is Consume with an explicit accounting category. Waffinity
// worker threads use it to attribute each message's cost to the subsystem
// that sent the message.
func (t *Thread) ConsumeAs(cat Category, d Duration) {
	if d <= 0 {
		return
	}
	s := t.s
	t.burstCat = cat
	t.burstDur = d
	if s.freeCores > 0 {
		s.freeCores--
		s.startBurst(t)
	} else {
		if s.tr != nil {
			t.queuedAt = s.now
		}
		s.readyQ = append(s.readyQ, t)
	}
	t.park()
}

// Sleep blocks the thread for d simulated time without occupying a core.
func (t *Thread) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	s := t.s
	s.post(s.now+Time(d), func() { s.runThread(t) })
	t.park()
}

// Yield reschedules the thread behind any other events already queued at the
// current simulated time.
func (t *Thread) Yield() {
	s := t.s
	s.post(s.now, func() { s.runThread(t) })
	t.park()
}
