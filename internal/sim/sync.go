package sim

import "wafl/internal/obs"

// Mutex is a simulated lock with FIFO waiters. Because the kernel serializes
// all simulated execution, Mutex exists to model blocking and contention —
// and to measure them — rather than to provide memory safety.
type Mutex struct {
	s       *Scheduler
	name    string
	holder  *Thread
	waiters []*Thread

	// contention statistics
	Acquisitions uint64   // total successful Lock calls
	Contended    uint64   // Lock calls that had to wait
	WaitTime     Duration // total simulated time spent waiting
}

// NewMutex returns a simulated mutex. name is used in diagnostics.
func NewMutex(s *Scheduler, name string) *Mutex {
	return &Mutex{s: s, name: name}
}

// Lock acquires the mutex, blocking t FIFO behind current waiters if it is
// held. Lock costs no CPU by itself; callers model critical-section and
// lock-operation CPU with Consume.
func (m *Mutex) Lock(t *Thread) {
	m.Acquisitions++
	if m.holder == nil {
		m.holder = t
		return
	}
	m.Contended++
	start := m.s.now
	m.waiters = append(m.waiters, t)
	t.park()
	// Ownership was transferred to us by Unlock before we were resumed.
	m.WaitTime += Duration(m.s.now - start)
	if tr := m.s.tr; tr != nil {
		tr.Span(obs.PidThreads, t.TrackID(), "sync", "lock:"+m.name, int64(start), int64(m.s.now))
		tr.Observe("mutex.wait:"+m.name, int64(m.s.now-start))
	}
}

// TryLock acquires the mutex if it is free and reports whether it did.
func (m *Mutex) TryLock(t *Thread) bool {
	if m.holder != nil {
		return false
	}
	m.Acquisitions++
	m.holder = t
	return true
}

// Unlock releases the mutex, handing it directly to the oldest waiter if any.
func (m *Mutex) Unlock(t *Thread) {
	if m.holder != t {
		panic("sim: Unlock of mutex " + m.name + " by non-holder")
	}
	if len(m.waiters) == 0 {
		m.holder = nil
		return
	}
	next := m.waiters[0]
	copy(m.waiters, m.waiters[1:])
	m.waiters = m.waiters[:len(m.waiters)-1]
	m.holder = next
	m.s.post(m.s.now, func() { m.s.runThread(next) })
}

// Held reports whether the mutex is currently held (by any thread).
func (m *Mutex) Held() bool { return m.holder != nil }

// WaitQueue is a condition-variable-like parking lot for simulated threads.
type WaitQueue struct {
	s       *Scheduler
	name    string
	waiters []*Thread

	Waits   uint64 // total Wait calls
	Signals uint64 // total Signal/Broadcast wakeups delivered
}

// NewWaitQueue returns a WaitQueue. name is used in diagnostics.
func NewWaitQueue(s *Scheduler, name string) *WaitQueue {
	return &WaitQueue{s: s, name: name}
}

// Wait parks t on the queue until a Signal or Broadcast wakes it.
func (q *WaitQueue) Wait(t *Thread) {
	q.Waits++
	start := q.s.now
	q.waiters = append(q.waiters, t)
	t.park()
	if tr := q.s.tr; tr != nil {
		tr.Span(obs.PidThreads, t.TrackID(), "sync", "wait:"+q.name, int64(start), int64(q.s.now))
		tr.Observe("waitq.block:"+q.name, int64(q.s.now-start))
	}
}

// WaitWith atomically releases m, parks t, and re-acquires m before
// returning — condition-variable semantics.
func (q *WaitQueue) WaitWith(t *Thread, m *Mutex) {
	m.Unlock(t)
	q.Wait(t)
	m.Lock(t)
}

// Signal wakes the oldest waiter, if any, and reports whether one was woken.
func (q *WaitQueue) Signal() bool {
	if len(q.waiters) == 0 {
		return false
	}
	next := q.waiters[0]
	copy(q.waiters, q.waiters[1:])
	q.waiters = q.waiters[:len(q.waiters)-1]
	q.Signals++
	q.s.post(q.s.now, func() { q.s.runThread(next) })
	return true
}

// Broadcast wakes all waiters and returns how many were woken.
func (q *WaitQueue) Broadcast() int {
	n := len(q.waiters)
	for _, t := range q.waiters {
		tt := t
		q.Signals++
		q.s.post(q.s.now, func() { q.s.runThread(tt) })
	}
	q.waiters = q.waiters[:0]
	return n
}

// Len returns the number of parked threads.
func (q *WaitQueue) Len() int { return len(q.waiters) }
