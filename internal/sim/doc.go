// Package sim implements a deterministic discrete-event simulation kernel
// used to model a many-core storage server on an arbitrary host.
//
// The kernel provides simulated time, a fixed number of simulated CPU cores,
// and simulated threads. Each simulated thread is backed by a goroutine, but
// at most one goroutine (the scheduler or exactly one thread) executes at any
// real instant: control is passed with a token handshake, so all simulation
// state is data-race free by construction and runs, deterministically, even
// with GOMAXPROCS=1.
//
// Threads interact with the kernel through blocking primitives:
//
//   - Consume / ConsumeAs: occupy a simulated core for a CPU burst, queueing
//     behind other runnable threads when all cores are busy.
//   - Sleep: advance simulated time without occupying a core (I/O, timers).
//   - Mutex: a simulated lock with FIFO waiters and contention accounting.
//   - WaitQueue: a condition-variable-like queue for building channels,
//     message queues, and caches.
//
// CPU time is attributed to named categories (client, cleaner, infrastructure,
// ...) so experiments can report per-component core usage exactly like the
// paper's instrumented kernel does.
package sim
