package nvlog

import (
	"testing"
)

func rec(ino uint64, n int) Record {
	return Record{Kind: OpWrite, Ino: ino, Data: make([]byte, n)}
}

func TestAppendAndFullness(t *testing.T) {
	l := New(1000)
	if !l.Append(rec(1, 100)) { // 132 bytes
		t.Fatal("append failed")
	}
	if l.ActiveOps() != 1 || l.ActiveBytes() != 132 {
		t.Fatalf("ops=%d bytes=%d", l.ActiveOps(), l.ActiveBytes())
	}
	if f := l.Fullness(); f < 0.13 || f > 0.14 {
		t.Fatalf("fullness = %f", f)
	}
}

func TestAppendRejectsWhenFull(t *testing.T) {
	l := New(300)
	if !l.Append(rec(1, 100)) || !l.Append(rec(2, 100)) {
		t.Fatal("appends should fit")
	}
	if l.Append(rec(3, 100)) {
		t.Fatal("third append must not fit (396+132 > 300... actually 264+132)")
	}
	if l.Stalls != 1 {
		t.Fatalf("stalls = %d", l.Stalls)
	}
}

func TestSequenceNumbersMonotone(t *testing.T) {
	l := New(10000)
	l.Append(rec(1, 0))
	l.Append(rec(2, 0))
	l.Switch()
	l.Append(rec(3, 0))
	rs := l.Replay()
	if len(rs) != 3 {
		t.Fatalf("replay %d records", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Seq <= rs[i-1].Seq {
			t.Fatal("replay out of order")
		}
	}
}

func TestSwitchAndFreeCycle(t *testing.T) {
	l := New(1000)
	l.Append(rec(1, 100))
	l.Switch()
	if !l.HasFrozen() {
		t.Fatal("no frozen half after switch")
	}
	if l.ActiveBytes() != 0 {
		t.Fatal("active half should be empty after switch")
	}
	l.Append(rec(2, 100))
	got := l.Replay()
	if len(got) != 2 || got[0].Ino != 1 || got[1].Ino != 2 {
		t.Fatalf("replay = %+v", got)
	}
	l.FreeFrozen()
	if l.HasFrozen() {
		t.Fatal("frozen half not freed")
	}
	got = l.Replay()
	if len(got) != 1 || got[0].Ino != 2 {
		t.Fatalf("replay after free = %+v", got)
	}
}

func TestSwitchWhileDrainingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l := New(1000)
	l.Append(rec(1, 0))
	l.Switch()
	l.Switch()
}

func TestFreeWithoutFrozenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1000).FreeFrozen()
}

func TestBackToBackBehaviour(t *testing.T) {
	// Fill active, switch, fill the new active: further appends stall
	// until FreeFrozen + Switch.
	l := New(200)
	if !l.Append(rec(1, 100)) {
		t.Fatal("first append")
	}
	l.Switch()
	if !l.Append(rec(2, 100)) {
		t.Fatal("second append")
	}
	if l.Append(rec(3, 100)) {
		t.Fatal("must stall: both halves occupied")
	}
	l.FreeFrozen() // CP 1 done
	l.Switch()     // CP 2 starts draining ino 2
	if !l.Append(rec(3, 100)) {
		t.Fatal("append after switch")
	}
}

func TestReserveBlocksAppendCapacity(t *testing.T) {
	l := New(1000)
	if !l.Reserve(800) {
		t.Fatal("reserve should fit")
	}
	// A plain Append must respect the reservation.
	if l.Append(rec(1, 400)) {
		t.Fatal("append must not overlap reserved space")
	}
	if l.Stalls != 1 {
		t.Fatalf("stalls = %d", l.Stalls)
	}
	// Reserved appends always succeed and release the reservation.
	l.AppendReserved(rec(2, 368)) // size 400
	l.AppendReserved(rec(3, 368))
	if l.ActiveOps() != 2 {
		t.Fatalf("ops = %d", l.ActiveOps())
	}
	// Reservation fully consumed: normal appends work again.
	if !l.Append(rec(4, 100)) {
		t.Fatal("append should fit after reservation consumed")
	}
}

func TestReserveRejectsWhenFull(t *testing.T) {
	l := New(500)
	if !l.Append(rec(1, 300)) { // 332 bytes
		t.Fatal("append")
	}
	if l.Reserve(300) {
		t.Fatal("reserve should fail when the half cannot hold it")
	}
	if !l.Reserve(100) {
		t.Fatal("smaller reserve should fit")
	}
}

func TestReservationSurvivesSwitch(t *testing.T) {
	// A reservation made before a half switch applies to the new active
	// half: the records land with the next CP generation, consistent with
	// their buffers.
	l := New(1000)
	if !l.Reserve(400) {
		t.Fatal("reserve")
	}
	l.Append(rec(1, 0))
	l.Switch()
	l.AppendReserved(rec(2, 368))
	if l.ActiveOps() != 1 {
		t.Fatalf("active ops = %d, want the reserved record in the new half", l.ActiveOps())
	}
	rs := l.Replay()
	if len(rs) != 2 || rs[0].Ino != 1 || rs[1].Ino != 2 {
		t.Fatalf("replay = %+v", rs)
	}
}

func TestReserveOversizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(100).Reserve(200)
}
