package nvlog

import (
	"testing"
)

func rec(ino uint64, n int) Record {
	return Record{Kind: OpWrite, Ino: ino, Data: make([]byte, n)}
}

func TestAppendAndFullness(t *testing.T) {
	l := New(1000)
	if !l.Append(rec(1, 100)) { // 132 bytes
		t.Fatal("append failed")
	}
	if l.ActiveOps() != 1 || l.ActiveBytes() != 132 {
		t.Fatalf("ops=%d bytes=%d", l.ActiveOps(), l.ActiveBytes())
	}
	if f := l.Fullness(); f < 0.13 || f > 0.14 {
		t.Fatalf("fullness = %f", f)
	}
}

func TestAppendRejectsWhenFull(t *testing.T) {
	l := New(300)
	if !l.Append(rec(1, 100)) || !l.Append(rec(2, 100)) {
		t.Fatal("appends should fit")
	}
	if l.Append(rec(3, 100)) {
		t.Fatal("third append must not fit (396+132 > 300... actually 264+132)")
	}
	if l.Stalls != 1 {
		t.Fatalf("stalls = %d", l.Stalls)
	}
}

func TestSequenceNumbersMonotone(t *testing.T) {
	l := New(10000)
	l.Append(rec(1, 0))
	l.Append(rec(2, 0))
	l.Switch()
	l.Append(rec(3, 0))
	rs := l.Replay()
	if len(rs) != 3 {
		t.Fatalf("replay %d records", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Seq <= rs[i-1].Seq {
			t.Fatal("replay out of order")
		}
	}
}

func TestSwitchAndFreeCycle(t *testing.T) {
	l := New(1000)
	l.Append(rec(1, 100))
	l.Switch()
	if !l.HasFrozen() {
		t.Fatal("no frozen half after switch")
	}
	if l.ActiveBytes() != 0 {
		t.Fatal("active half should be empty after switch")
	}
	l.Append(rec(2, 100))
	got := l.Replay()
	if len(got) != 2 || got[0].Ino != 1 || got[1].Ino != 2 {
		t.Fatalf("replay = %+v", got)
	}
	l.FreeFrozen()
	if l.HasFrozen() {
		t.Fatal("frozen half not freed")
	}
	got = l.Replay()
	if len(got) != 1 || got[0].Ino != 2 {
		t.Fatalf("replay after free = %+v", got)
	}
}

func TestSwitchWhileDrainingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l := New(1000)
	l.Append(rec(1, 0))
	l.Switch()
	l.Switch()
}

func TestFreeWithoutFrozenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1000).FreeFrozen()
}

func TestBackToBackBehaviour(t *testing.T) {
	// Fill active, switch, fill the new active: further appends stall
	// until FreeFrozen + Switch.
	l := New(200)
	if !l.Append(rec(1, 100)) {
		t.Fatal("first append")
	}
	l.Switch()
	if !l.Append(rec(2, 100)) {
		t.Fatal("second append")
	}
	if l.Append(rec(3, 100)) {
		t.Fatal("must stall: both halves occupied")
	}
	l.FreeFrozen() // CP 1 done
	l.Switch()     // CP 2 starts draining ino 2
	if !l.Append(rec(3, 100)) {
		t.Fatal("append after switch")
	}
}

func TestReserveBlocksAppendCapacity(t *testing.T) {
	l := New(1000)
	res, ok := l.Reserve(800)
	if !ok {
		t.Fatal("reserve should fit")
	}
	// A plain Append must respect the reservation.
	if l.Append(rec(1, 400)) {
		t.Fatal("append must not overlap reserved space")
	}
	if l.Stalls != 1 {
		t.Fatalf("stalls = %d", l.Stalls)
	}
	// Reserved appends always succeed and consume the reservation.
	res.Append(rec(2, 368)) // size 400
	res.Append(rec(3, 368))
	if l.ActiveOps() != 2 {
		t.Fatalf("ops = %d", l.ActiveOps())
	}
	// Reservation fully consumed: normal appends work again.
	if !l.Append(rec(4, 100)) {
		t.Fatal("append should fit after reservation consumed")
	}
}

func TestReserveRejectsWhenFull(t *testing.T) {
	l := New(500)
	if !l.Append(rec(1, 300)) { // 332 bytes
		t.Fatal("append")
	}
	if _, ok := l.Reserve(300); ok {
		t.Fatal("reserve should fail when the half cannot hold it")
	}
	if _, ok := l.Reserve(100); !ok {
		t.Fatal("smaller reserve should fit")
	}
}

func TestReservationSurvivesSwitch(t *testing.T) {
	// A reservation made before a half switch applies to the new active
	// half: the records land with the next CP generation, consistent with
	// their buffers.
	l := New(1000)
	res, ok := l.Reserve(400)
	if !ok {
		t.Fatal("reserve")
	}
	l.Append(rec(1, 0))
	l.Switch()
	res.Append(rec(2, 368))
	if l.ActiveOps() != 1 {
		t.Fatalf("active ops = %d, want the reserved record in the new half", l.ActiveOps())
	}
	rs := l.Replay()
	if len(rs) != 2 || rs[0].Ino != 1 || rs[1].Ino != 2 {
		t.Fatalf("replay = %+v", rs)
	}
}

func TestReserveOversizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(100).Reserve(200)
}

func TestOvershootPanicsInsteadOfRaidingPool(t *testing.T) {
	// Regression: a record larger than its own reservation used to clamp
	// the *shared* pool to zero, silently consuming other in-flight ops'
	// promised space. It must panic instead.
	l := New(2000)
	resA, ok := l.Reserve(200)
	if !ok {
		t.Fatal("reserve A")
	}
	if _, ok := l.Reserve(600); !ok { // op B's claim, must stay intact
		t.Fatal("reserve B")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on overshoot")
		}
	}()
	resA.Append(rec(1, 400)) // size 432 > 200
}

func TestReservationsIsolated(t *testing.T) {
	// Two ops' reservations do not interact: A consuming all of its claim
	// leaves B's claim (and the pool accounting) intact.
	l := New(1000)
	resA, okA := l.Reserve(400)
	resB, okB := l.Reserve(400)
	if !okA || !okB {
		t.Fatal("reserves should fit")
	}
	resA.Append(rec(1, 368)) // exactly 400 bytes
	if resA.Remaining() != 0 {
		t.Fatalf("A remaining = %d", resA.Remaining())
	}
	if resB.Remaining() != 400 {
		t.Fatalf("B remaining = %d", resB.Remaining())
	}
	// Pool still holds B's 400: a 200-byte append must stall (400 used +
	// 400 reserved + 332 > 1000).
	if l.Append(rec(3, 300)) {
		t.Fatal("append must respect B's surviving reservation")
	}
	resB.Append(rec(2, 368))
	if !l.Append(rec(3, 100)) {
		t.Fatal("append should fit once B consumed its claim")
	}
}

func TestReleaseReturnsLeftover(t *testing.T) {
	l := New(1000)
	res, ok := l.Reserve(800)
	if !ok {
		t.Fatal("reserve")
	}
	res.Append(rec(1, 168)) // 200 bytes, 600 left on the claim
	res.Release()
	if res.Remaining() != 0 {
		t.Fatalf("remaining after release = %d", res.Remaining())
	}
	// All 800 reserved bytes are accounted for: 200 appended, 600 freed.
	if !l.Append(rec(2, 700)) { // 732 bytes; 200+732 <= 1000
		t.Fatal("released space not returned to the pool")
	}
	res.Release() // idempotent
}

func TestRestorePreservesSeqAndProtects(t *testing.T) {
	// Simulate the post-crash path: records from both halves are replayed
	// and must be re-logged into the new log with their original sequence
	// numbers, even if together they exceed one half's capacity.
	old := New(500)
	old.Append(rec(1, 300)) // 332 bytes
	old.Switch()
	old.Append(rec(2, 300))
	recs := old.Replay()
	if len(recs) != 2 {
		t.Fatalf("replay = %d records", len(recs))
	}

	fresh := New(500)
	fresh.Restore(recs)
	if fresh.ActiveOps() != 2 {
		t.Fatalf("restored ops = %d", fresh.ActiveOps())
	}
	if fresh.ActiveBytes() != 664 { // over halfCap by design
		t.Fatalf("restored bytes = %d", fresh.ActiveBytes())
	}
	got := fresh.Replay()
	for i := range recs {
		if got[i].Seq != recs[i].Seq || got[i].Ino != recs[i].Ino {
			t.Fatalf("record %d mutated: got %+v want %+v", i, got[i], recs[i])
		}
	}
	// New appends continue after the highest restored seq.
	fresh.Switch()
	fresh.Append(rec(3, 0))
	rs := fresh.Replay()
	last := rs[len(rs)-1]
	if last.Ino != 3 || last.Seq <= recs[1].Seq {
		t.Fatalf("post-restore seq not monotone: %+v", last)
	}
}
