// Package nvlog implements the nonvolatile RAM operation log that lets WAFL
// acknowledge client writes long before a consistency point persists them
// (paper §II-C). The log is split into two halves: operations append to the
// active half while a CP drains the frozen half; when the active half fills,
// the halves switch and a new CP begins. If both halves are full the system
// is in a back-to-back CP and incoming operations stall — which is exactly
// how an undersized write allocator throttles client throughput.
//
// After a crash, the file system loads the last committed CP and replays
// the log: the frozen half first (its CP did not complete), then the active
// half.
package nvlog

import (
	"wafl/internal/block"
)

// OpKind identifies a logged operation type.
type OpKind uint8

// Logged operation kinds. Snapshot ops reuse the Ino field for the snapshot
// ID. Clone/restore ops reuse Ino for the snapshot ID too; OpCloneCreate
// additionally reuses FBN for the parent volume's member-local index.
const (
	OpWrite OpKind = iota + 1
	OpCreate
	OpDelete
	OpSnapCreate
	OpSnapDelete
	OpSnapRestore
	OpCloneCreate
	OpCloneSplit
)

// recordOverhead approximates the per-record NVRAM header cost in bytes.
const recordOverhead = 32

// Record is one logged client operation.
type Record struct {
	Kind OpKind
	Vol  uint32
	Ino  uint64
	FBN  block.FBN
	Data []byte // payload for OpWrite (owned by the log)
	// LogicalBytes, when nonzero, is the NVRAM space the record occupies
	// regardless of how much pattern data the simulation stores (payload
	// compression is a simulation-speed knob, not a semantic one).
	LogicalBytes uint32
	MaxBlocks    uint64 // capacity hint for OpCreate
	Seq          uint64 // global order, assigned by Append
}

// Size returns the NVRAM bytes this record occupies.
func (r Record) Size() uint64 {
	payload := uint64(len(r.Data))
	if uint64(r.LogicalBytes) > payload {
		payload = uint64(r.LogicalBytes)
	}
	return recordOverhead + payload
}

type half struct {
	recs  []Record
	bytes uint64
}

// Log is a two-half NVRAM operation log.
type Log struct {
	halfCap  uint64
	halves   [2]half
	active   int
	frozen   int // -1 when no CP is draining
	seq      uint64
	reserved uint64 // space promised to in-flight ops (see Reserve)

	// Stalls counts Append attempts rejected because the active half was
	// full while the other half was still draining (back-to-back CP).
	Stalls uint64
}

// New creates a log whose halves hold halfCap bytes each.
func New(halfCap uint64) *Log {
	return &Log{halfCap: halfCap, frozen: -1}
}

// Append logs r into the active half, assigning its sequence number. It
// returns false — without logging — if the active half cannot hold r on
// top of outstanding reservations (the caller should trigger/wait for a CP
// and retry).
func (l *Log) Append(r Record) bool {
	h := &l.halves[l.active]
	if h.bytes+l.reserved+r.Size() > l.halfCap {
		l.Stalls++
		return false
	}
	l.append(r)
	return true
}

func (l *Log) append(r Record) {
	h := &l.halves[l.active]
	l.seq++
	r.Seq = l.seq
	h.recs = append(h.recs, r)
	h.bytes += r.Size()
}

// Reservation is one in-flight operation's claim on NVRAM space. Each op
// appends only against its own remaining claim; overshooting it is a
// program error (panic), not a silent raid on the shared pool — the old
// pooled accounting let one overshooting op consume other ops' promised
// space and push the active half past halfCap.
type Reservation struct {
	l         *Log
	remaining uint64
}

// Reserve sets aside n bytes of the active half for an in-flight operation,
// so that the operation's later Reservation.Append calls cannot fail. The
// write path reserves in the (stallable) client context, then appends each
// record *atomically adjacent* to dirtying its buffer inside the stripe
// affinity — guaranteeing a record and its dirty buffer land on the same
// side of any CP freeze. Returns (nil, false) when the half cannot hold the
// reservation yet.
func (l *Log) Reserve(n uint64) (*Reservation, bool) {
	if n > l.halfCap {
		panic("nvlog: reservation exceeds half capacity")
	}
	if l.halves[l.active].bytes+l.reserved+n > l.halfCap {
		l.Stalls++
		return nil, false
	}
	l.reserved += n
	return &Reservation{l: l, remaining: n}, true
}

// Append logs rec against this reservation; it cannot stall. If a half
// switch happened since Reserve, the record (and its reservation) simply
// apply to the new active half — consistent with its buffer dirtying, which
// also lands in the new CP generation. Panics if rec exceeds the
// reservation's remaining bytes.
func (r *Reservation) Append(rec Record) {
	size := rec.Size()
	if size > r.remaining {
		panic("nvlog: record exceeds its operation's reservation")
	}
	r.remaining -= size
	r.l.reserved -= size
	r.l.append(rec)
}

// Remaining returns the unconsumed bytes of the reservation.
func (r *Reservation) Remaining() uint64 { return r.remaining }

// Release returns any unconsumed bytes to the pool. Safe to call more than
// once; call it when the operation finishes appending.
func (r *Reservation) Release() {
	r.l.reserved -= r.remaining
	r.remaining = 0
}

// ActiveBytes returns the bytes used in the active half.
func (l *Log) ActiveBytes() uint64 { return l.halves[l.active].bytes }

// ActiveOps returns the number of records in the active half.
func (l *Log) ActiveOps() int { return len(l.halves[l.active].recs) }

// Fullness returns the active half's fill fraction in [0,1].
func (l *Log) Fullness() float64 {
	return float64(l.halves[l.active].bytes) / float64(l.halfCap)
}

// HalfCap returns the capacity of each half in bytes.
func (l *Log) HalfCap() uint64 { return l.halfCap }

// HasFrozen reports whether a CP is currently draining a frozen half.
func (l *Log) HasFrozen() bool { return l.frozen >= 0 }

// Switch freezes the active half for a starting CP and opens the other
// half for new appends. The other half must have been freed (no
// overlapping CPs).
func (l *Log) Switch() {
	if l.frozen >= 0 {
		panic("nvlog: Switch while a frozen half is still draining")
	}
	l.frozen = l.active
	l.active = 1 - l.active
	if l.halves[l.active].bytes != 0 {
		panic("nvlog: switching into a non-empty half")
	}
}

// FreeFrozen discards the frozen half after its CP commits.
func (l *Log) FreeFrozen() {
	if l.frozen < 0 {
		panic("nvlog: FreeFrozen without a frozen half")
	}
	l.halves[l.frozen] = half{}
	l.frozen = -1
}

// Restore reloads replayed records into the active half after a crash,
// preserving their original sequence numbers, so they stay NVRAM-protected
// until the next CP commits them (§II-C): a second crash before that CP
// replays them again. The restored set may legitimately exceed halfCap —
// before the crash the records occupied up to both halves — so capacity is
// deliberately unchecked here; an over-full active half stalls new client
// ops until the recovery CP drains it.
func (l *Log) Restore(recs []Record) {
	h := &l.halves[l.active]
	for _, r := range recs {
		h.recs = append(h.recs, r)
		h.bytes += r.Size()
		if r.Seq > l.seq {
			l.seq = r.Seq
		}
	}
}

// Replay returns every record that must be reapplied after a crash, in
// order: the frozen half (whose CP never committed) first, then the active
// half.
func (l *Log) Replay() []Record {
	var out []Record
	if l.frozen >= 0 {
		out = append(out, l.halves[l.frozen].recs...)
	}
	out = append(out, l.halves[l.active].recs...)
	return out
}
