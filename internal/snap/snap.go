// Package snap implements per-volume point-in-time snapshots. A snapshot is
// taken atomically at a consistency-point boundary: the CP engine captures
// the volume's activemap content as a dedicated **snapmap** metafile and the
// inode-file content as an **inocopy** metafile, then folds the snapmap into
// the volume's **summary map** (the OR of all live snapmaps). The write
// allocator treats a block as free only when it is clear in both the active
// map and the summary map (free = !active && !summary), so snapshot-held
// VVBNs — and, through the container map, their physical homes — are never
// reused while any snapshot references them. Snapshot delete diffs the
// victim's snapmap against the active map and the surviving snapmaps and
// reclaims exclusively-held blocks back to the aggregate.
//
// The package holds the snapshot data types, the on-disk snapdir entry
// format, and the pure bitmap/tree algorithms (content capture, delete
// diffing, media-image reads). Wiring into volumes, the CP engine, the
// allocator, and the NVRAM log lives in the owning packages.
package snap

import (
	"encoding/binary"
	"math/bits"

	"wafl/internal/block"
	"wafl/internal/fs"
)

// EntrySize is the on-disk size of one snapdir entry: a header plus the
// records of the snapshot's two metafiles.
const EntrySize = 256

// EntriesPerBlock is the number of snapdir entries per snapdir block.
const EntriesPerBlock = block.Size / EntrySize

// Snapshot is one materialized point-in-time image of a volume. Snapmap and
// InoCopy are physical-only metafiles written once by the materializing CP
// and immutable afterwards; both roots are persisted in the volume's snapdir
// so the image is reachable from the superblock.
type Snapshot struct {
	ID       uint64
	CreateCP uint64 // CP count at which the image was frozen

	Snapmap *fs.File // copy of the volume activemap content at CreateCP
	InoCopy *fs.File // copy of the inode-file content at CreateCP
}

// EncodeEntry serializes s into one snapdir entry.
func (s *Snapshot) EncodeEntry(dst []byte) {
	for i := range dst[:EntrySize] {
		dst[i] = 0
	}
	binary.LittleEndian.PutUint64(dst[0:], s.ID)
	binary.LittleEndian.PutUint64(dst[8:], s.CreateCP)
	binary.LittleEndian.PutUint32(dst[16:], 1) // in use
	fs.EncodeRecord(dst[64:], s.Snapmap.RecordOf(fs.FlagMetafile))
	fs.EncodeRecord(dst[128:], s.InoCopy.RecordOf(fs.FlagMetafile))
}

// DecodeEntry rebuilds a snapshot skeleton from a snapdir entry (mount
// path). Returns nil for an unused slot. The caller loads the metafile
// trees from media.
func DecodeEntry(src []byte) *Snapshot {
	if binary.LittleEndian.Uint32(src[16:]) == 0 {
		return nil
	}
	return &Snapshot{
		ID:       binary.LittleEndian.Uint64(src[0:]),
		CreateCP: binary.LittleEndian.Uint64(src[8:]),
		Snapmap:  fs.FileFromRecord(fs.DecodeRecord(src[64:])),
		InoCopy:  fs.FileFromRecord(fs.DecodeRecord(src[128:])),
	}
}

// CopyContent copies every resident L0 block of src into dst, dirtying the
// copies into the running CP, and returns the number of blocks copied. The
// CP engine uses it to capture metafile content (activemap, inode file) at
// the freeze point: src's L0s are fully resident for metafiles (mount loads
// them eagerly and they are never evicted), so this is an exact image.
func CopyContent(dst, src *fs.File) int {
	n := 0
	for fbn := block.FBN(0); fbn < src.Size(); fbn++ {
		sbuf := src.Buffer(0, fbn)
		if sbuf == nil {
			continue // hole: absent in the copy too
		}
		dbuf := dst.GetOrCreateL0(fbn)
		copy(dbuf.CPMutableData(), sbuf.Data())
		dst.DirtyIntoCP(dbuf)
		n++
	}
	return n
}

// ReplaceContent makes dst's L0 content exactly equal src's: resident src
// blocks are copied in, and resident dst blocks with no src counterpart are
// zero-filled (a record block full of zeroes decodes as no inodes). Both
// directions dirty into the running CP. SnapRestore uses it to rebind the
// active inode file to a snapshot's inocopy: plain CopyContent would leave
// records of files created after the snapshot dangling past the image's
// end. Returns the number of blocks touched.
func ReplaceContent(dst, src *fs.File) int {
	n := CopyContent(dst, src)
	limit := dst.Size()
	if src.Size() > limit {
		limit = src.Size()
	}
	for fbn := block.FBN(0); fbn < limit; fbn++ {
		if src.Buffer(0, fbn) != nil {
			continue // copied above
		}
		dbuf := dst.Buffer(0, fbn)
		if dbuf == nil {
			continue // hole on both sides
		}
		d := dbuf.CPMutableData()
		for i := range d {
			d[i] = 0
		}
		dst.DirtyIntoCP(dbuf)
		n++
	}
	return n
}

// wordAt returns the 64-bit bitmap word at bit offset wordStart (a multiple
// of 64) of a bitmap metafile, treating absent blocks as all-zero.
func wordAt(f *fs.File, wordStart uint64) uint64 {
	fbn := block.FBN(wordStart / (block.Size * 8))
	buf := f.Buffer(0, fbn)
	if buf == nil {
		return 0
	}
	byteOff := (wordStart % (block.Size * 8)) / 8
	return binary.LittleEndian.Uint64(buf.Data()[byteOff:])
}

// BitSet reports whether bit bn is set in a bitmap metafile (snapmap
// content), treating absent blocks as all-zero.
func BitSet(f *fs.File, bn uint64) bool {
	return wordAt(f, bn&^63)&(1<<(bn%64)) != 0
}

// ReclaimSets computes the two bit sets a snapshot delete must process,
// given the victim's snapmap, the surviving snapmaps, and the active map
// content (all bitmap metafiles over the same nbits VVBN space):
//
//	summaryClear — bits held by the victim and by no survivor: these leave
//	  the summary map (the block is no longer snapshot-held);
//	fullFree — the subset of summaryClear also clear in the active map: the
//	  block is now referenced by nothing, so its physical home (via the
//	  container map) returns to the aggregate's free pool.
//
// The scan cost in 64-bit words is returned for CPU charging.
func ReclaimSets(victim *fs.File, survivors []*fs.File, active *fs.File, nbits uint64) (summaryClear, fullFree []uint64, words int) {
	for wordStart := uint64(0); wordStart < nbits; wordStart += 64 {
		w := wordAt(victim, wordStart)
		words++
		if w == 0 {
			continue
		}
		for _, s := range survivors {
			w &^= wordAt(s, wordStart)
			words++
			if w == 0 {
				break
			}
		}
		if w == 0 {
			continue
		}
		if wordEnd := wordStart + 64; wordEnd > nbits {
			w &^= ^uint64(0) << (nbits - wordStart)
		}
		act := wordAt(active, wordStart)
		words++
		for rem := w; rem != 0; {
			i := uint64(bits.TrailingZeros64(rem))
			rem &^= 1 << i
			bn := wordStart + i
			summaryClear = append(summaryClear, bn)
			if act&(1<<i) == 0 {
				fullFree = append(fullFree, bn)
			}
		}
	}
	return summaryClear, fullFree, words
}

// RecordAt decodes the inode record for ino out of an inocopy metafile's
// content. ok is false if the inode was not in use at snapshot time.
func RecordAt(inoCopy *fs.File, ino uint64) (fs.Record, bool) {
	fbn, off := fs.RecordLocation(ino)
	buf := inoCopy.Buffer(0, fbn)
	if buf == nil {
		return fs.Record{}, false
	}
	rec := fs.DecodeRecord(buf.Data()[off:])
	if rec.Flags&fs.FlagInUse == 0 || rec.Ino != ino {
		return fs.Record{}, false
	}
	return rec, true
}

// ReadTree reads FBN fbn of the frozen file described by rec, walking the
// committed media image through the read callback (typically an untimed or
// timed aggregate block read). Snapshot trees are never resident in buffer
// caches — the walk touches media at every level. A nil return means a hole
// in the snapshot image.
func ReadTree(read func(block.VBN) []byte, rec fs.Record, fbn block.FBN) []byte {
	if rec.RootVBN == block.InvalidVBN {
		return nil
	}
	vbn := rec.RootVBN
	for level := int(rec.Height); level > 0; level-- {
		data := read(vbn)
		if data == nil {
			return nil
		}
		childIdx := int((fbn >> (8 * uint(level-1))) & (block.PtrsPerBlock - 1))
		_, cvbn := block.GetPtr(data, childIdx)
		if cvbn == 0 || cvbn == block.InvalidVBN {
			return nil // hole
		}
		vbn = cvbn
	}
	return read(vbn)
}
