package counters

import (
	"testing"
	"testing/quick"
)

func TestRegisterAndDirectAdd(t *testing.T) {
	g := NewGlobal()
	free := g.Register("aggr.free")
	used := g.Register("aggr.used")
	g.Add(free, 100)
	g.Add(used, -3)
	if g.Get(free) != 100 || g.Get(used) != -3 {
		t.Fatalf("free=%d used=%d", g.Get(free), g.Get(used))
	}
	if g.Name(free) != "aggr.free" {
		t.Fatal("name lost")
	}
	if g.DirectAdds != 2 {
		t.Fatalf("direct adds = %d", g.DirectAdds)
	}
}

func TestTokenStagesWithoutGlobalEffect(t *testing.T) {
	g := NewGlobal()
	free := g.Register("free")
	tok := g.NewToken()
	tok.Add(free, -5)
	tok.Add(free, -5)
	if g.Get(free) != 0 {
		t.Fatal("staged updates must not touch globals")
	}
	if tok.Staged() != 2 || tok.Pending(free) != -10 {
		t.Fatalf("staged=%d pending=%d", tok.Staged(), tok.Pending(free))
	}
	tok.Flush()
	if g.Get(free) != -10 {
		t.Fatalf("after flush = %d", g.Get(free))
	}
	if tok.Staged() != 0 || tok.Pending(free) != 0 {
		t.Fatal("token not reset by flush")
	}
	if g.Flushes != 1 {
		t.Fatalf("flushes = %d", g.Flushes)
	}
}

func TestLateRegisteredCounter(t *testing.T) {
	g := NewGlobal()
	a := g.Register("a")
	tok := g.NewToken()
	tok.Add(a, 1)
	b := g.Register("b") // registered after token creation
	tok.Add(b, 7)
	tok.Flush()
	if g.Get(a) != 1 || g.Get(b) != 7 {
		t.Fatalf("a=%d b=%d", g.Get(a), g.Get(b))
	}
}

func TestPropertyTokensConverge(t *testing.T) {
	// Property: any interleaving of staged updates across tokens equals
	// the direct sum once all tokens flush (loose accounting converges).
	fn := func(deltas []int16, split uint8) bool {
		g := NewGlobal()
		id := g.Register("x")
		toks := []*Token{g.NewToken(), g.NewToken(), g.NewToken()}
		var want int64
		for i, d := range deltas {
			want += int64(d)
			toks[(int(split)+i)%3].Add(id, int64(d))
		}
		mid := g.Get(id) // mid-flight value may deviate — that's the point
		_ = mid
		for _, tok := range toks {
			tok.Flush()
		}
		return g.Get(id) == want
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeviationVisibleBeforeFlush(t *testing.T) {
	g := NewGlobal()
	id := g.Register("free")
	g.Add(id, 1000)
	tok := g.NewToken()
	tok.Add(id, -999)
	if g.Get(id) != 1000 {
		t.Fatal("global must lag the logical value until flush")
	}
	tok.Flush()
	if g.Get(id) != 1 {
		t.Fatal("flush must reconcile")
	}
}

func TestString(t *testing.T) {
	g := NewGlobal()
	a := g.Register("a")
	g.Register("b")
	g.Add(a, 2)
	if s := g.String(); s != "a=2 b=0" {
		t.Fatalf("String = %q", s)
	}
}
