// Package counters implements the "loose accounting" scheme of paper
// §III-C: cleaner threads stage frequent counter updates (free-block
// counts, per-volume and per-aggregate statistics) in a thread-local token
// instead of synchronizing on the global counters for every block, and the
// token is later applied to the globals in one batched flush from within
// Waffinity. The globals therefore deviate from their instantaneous logical
// values between flushes — readers that need exact values must reconcile,
// which tests here demonstrate.
//
// The design is the same idea as per-core "sloppy counters" (Boyd-Wickizer
// et al., OSDI'10), which the paper notes as concurrent related work.
package counters

import "fmt"

// ID names a registered global counter.
type ID int

// Global is a set of named counters shared by the whole system.
type Global struct {
	names []string
	vals  []int64

	// Flushes counts token batches applied; DirectAdds counts
	// non-batched updates (the contended path loose accounting avoids).
	Flushes    uint64
	DirectAdds uint64
}

// NewGlobal returns an empty counter set.
func NewGlobal() *Global { return &Global{} }

// Register adds a counter and returns its ID.
func (g *Global) Register(name string) ID {
	g.names = append(g.names, name)
	g.vals = append(g.vals, 0)
	return ID(len(g.vals) - 1)
}

// Name returns the counter's registered name.
func (g *Global) Name(id ID) string { return g.names[id] }

// Get returns the counter's current (loosely accounted) value.
func (g *Global) Get(id ID) int64 { return g.vals[id] }

// Add applies a delta directly — the tightly synchronized path that loose
// accounting exists to avoid on hot paths.
func (g *Global) Add(id ID, delta int64) {
	g.vals[id] += delta
	g.DirectAdds++
}

// Token is a thread-local staging area for counter deltas.
type Token struct {
	g      *Global
	deltas []int64
	staged uint64 // number of staged updates since last flush
}

// NewToken creates a token against g.
func (g *Global) NewToken() *Token {
	return &Token{g: g, deltas: make([]int64, len(g.vals))}
}

// Add stages a delta locally; no shared state is touched.
func (t *Token) Add(id ID, delta int64) {
	if int(id) >= len(t.deltas) {
		// Counters registered after the token was created.
		grown := make([]int64, len(t.g.vals))
		copy(grown, t.deltas)
		t.deltas = grown
	}
	t.deltas[id] += delta
	t.staged++
}

// Staged returns the number of updates staged since the last flush.
func (t *Token) Staged() uint64 { return t.staged }

// Pending returns the staged delta for id.
func (t *Token) Pending(id ID) int64 {
	if int(id) >= len(t.deltas) {
		return 0
	}
	return t.deltas[id]
}

// Flush applies all staged deltas to the globals in one batch and resets
// the token. In the full system this runs inside a Waffinity message, so it
// needs no locking of its own.
func (t *Token) Flush() {
	for id, d := range t.deltas {
		if d != 0 {
			t.g.vals[id] += d
			t.deltas[id] = 0
		}
	}
	t.staged = 0
	t.g.Flushes++
}

// String renders the counter set for diagnostics.
func (g *Global) String() string {
	s := ""
	for i, n := range g.names {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", n, g.vals[i])
	}
	return s
}
