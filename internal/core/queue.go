package core

// fifo is a slice-backed queue that does not leak its consumed prefix: a
// plain `q = q[1:]` pop keeps the backing array's head elements reachable
// (pinning popped buckets and their block payloads for the array's
// lifetime), whereas fifo zeroes each popped slot and copies the live tail
// down once the dead prefix dominates.
type fifo[T any] struct {
	buf  []T
	head int
}

func (q *fifo[T]) len() int { return len(q.buf) - q.head }

func (q *fifo[T]) push(v T) { q.buf = append(q.buf, v) }

func (q *fifo[T]) pop() T {
	v := q.buf[q.head]
	var zero T
	q.buf[q.head] = zero // release the reference immediately
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head >= 32 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = zero
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	return v
}

// all returns the live elements in queue order without consuming them.
func (q *fifo[T]) all() []T { return q.buf[q.head:] }

// takeAll removes and returns every queued element. The returned slice is
// detached from the queue's storage.
func (q *fifo[T]) takeAll() []T {
	out := q.buf[q.head:]
	q.buf = nil
	q.head = 0
	return out
}
