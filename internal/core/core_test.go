package core

import (
	"testing"

	"wafl/internal/aggregate"
	"wafl/internal/block"
	"wafl/internal/fs"
	"wafl/internal/sim"
	"wafl/internal/storage"
	"wafl/internal/waffinity"
)

// env is a miniature system for allocator unit tests: scheduler, hierarchy,
// aggregate with two volumes, infrastructure, and pool.
type env struct {
	s    *sim.Scheduler
	w    *waffinity.Scheduler
	h    *waffinity.Hierarchy
	a    *aggregate.Aggregate
	in   *Infra
	pool *Pool
	opts Options
}

func newEnv(t *testing.T, mutate func(*Options)) *env {
	t.Helper()
	s := sim.New(8, 1)
	w := waffinity.New(s, 8, 0)
	h := waffinity.NewHierarchy(w, waffinity.HierarchyConfig{
		Aggregates: 1, VolumesPerAgg: 2, StripesPerVol: 4, RangesPerVBN: 4,
	})
	a, err := aggregate.New(s, aggregate.Config{
		Geometry: aggregate.Geometry{NumGroups: 2, DataDrives: 3, Depth: 8192, AAStripes: 1024},
		Profile:  storage.SSD,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.AddVolume(1 << 15)
	a.AddVolume(1 << 15)
	opts := DefaultOptions()
	opts.MaxCleaners = 3
	opts.InitialCleaners = 3
	if mutate != nil {
		mutate(&opts)
	}
	in := NewInfra(w, h, a, opts, DefaultCosts())
	pool := NewPool(in, opts, DefaultCosts())
	return &env{s: s, w: w, h: h, a: a, in: in, pool: pool, opts: opts}
}

// runThread runs fn on a fresh simulated thread and drives the simulation
// until it completes (or the deadline hits).
func (e *env) runThread(t *testing.T, fn func(th *sim.Thread)) {
	t.Helper()
	done := false
	e.s.Go("test", sim.CatCP, func(th *sim.Thread) {
		fn(th)
		done = true
	})
	e.s.RunFor(60 * sim.Second)
	if !done {
		t.Fatal("test thread did not complete (deadlock?)")
	}
}

func TestGetBucketReturnsValidChunk(t *testing.T) {
	e := newEnv(t, nil)
	e.in.StartCP(nil)
	e.runThread(t, func(th *sim.Thread) {
		b := e.in.GetBucket(th)
		if b.Remaining() == 0 {
			t.Error("empty bucket from GET")
		}
		geo := e.a.Geometry()
		for _, vbn := range b.vbns {
			g, d, dbn := geo.Locate(vbn)
			if g != b.group || d != b.drive {
				t.Errorf("vbn %v not on bucket drive (%d,%d)", vbn, b.group, b.drive)
			}
			if dbn < b.window || dbn >= b.window+block.DBN(e.opts.ChunkBlocks) {
				t.Errorf("vbn %v outside window %d", vbn, b.window)
			}
			if !e.in.reserved.test(uint64(vbn)) {
				t.Errorf("vbn %v not reserved after fill", vbn)
			}
			if e.a.Activemap.IsSet(uint64(vbn)) {
				t.Errorf("vbn %v already allocated", vbn)
			}
		}
		e.in.PutBucket(th, b)
	})
}

func TestEqualProgressWindowInsertion(t *testing.T) {
	// With equal progress, buckets arrive in whole windows: after the
	// initial fill, the cache must contain full drive sets per group.
	e := newEnv(t, nil)
	e.in.StartCP(nil)
	e.s.RunFor(sim.Second)
	type winKey struct {
		group  int
		window block.DBN
	}
	perWindow := make(map[winKey]int)
	for _, b := range e.in.cache.all() {
		perWindow[winKey{b.group, b.window}]++
	}
	for win, n := range perWindow {
		if n != e.a.Geometry().DataDrives {
			t.Fatalf("window %v has %d buckets, want %d (equal progress)", win, n, e.a.Geometry().DataDrives)
		}
	}
	if len(perWindow) != e.opts.WindowsAhead*e.a.Groups() {
		t.Fatalf("windows in cache = %d, want %d", len(perWindow), e.opts.WindowsAhead*e.a.Groups())
	}
}

func TestPutBucketCommitsUsedOnly(t *testing.T) {
	e := newEnv(t, nil)
	e.in.StartCP(nil)
	var used, unused []block.VBN
	e.runThread(t, func(th *sim.Thread) {
		b := e.in.GetBucket(th)
		// Consume half the bucket.
		n := b.Remaining() / 2
		for i := 0; i < n; i++ {
			vbn := b.vbns[b.next]
			b.next++
			g, d, dbn := e.a.Geometry().Locate(vbn)
			_ = g
			b.tetris.add(d, dbn, block.New())
		}
		used = append([]block.VBN(nil), b.Used()...)
		unused = append([]block.VBN(nil), b.Unused()...)
		e.in.PutBucket(th, b)
		th.Sleep(100 * sim.Millisecond) // let the commit message run
	})
	for _, vbn := range used {
		if !e.a.Activemap.IsSet(uint64(vbn)) {
			t.Fatalf("used vbn %v not committed", vbn)
		}
	}
	for _, vbn := range unused {
		if e.a.Activemap.IsSet(uint64(vbn)) {
			t.Fatalf("unused vbn %v wrongly committed", vbn)
		}
		if e.in.reserved.test(uint64(vbn)) {
			t.Fatalf("unused vbn %v still reserved after commit", vbn)
		}
	}
}

func TestTetrisSentWhenAllBucketsReturned(t *testing.T) {
	e := newEnv(t, nil)
	e.in.StartCP(nil)
	e.runThread(t, func(th *sim.Thread) {
		// Take all buckets of the first window (same tetris) and use one
		// block from each.
		var buckets []*Bucket
		first := e.in.GetBucket(th)
		buckets = append(buckets, first)
		for i := 1; i < e.a.Geometry().DataDrives; i++ {
			buckets = append(buckets, e.in.GetBucket(th))
		}
		te := first.tetris
		for _, b := range buckets {
			if b.tetris != te {
				t.Fatal("FIFO cache did not return one whole window")
			}
			vbn := b.vbns[b.next]
			b.next++
			_, d, dbn := e.a.Geometry().Locate(vbn)
			data := block.New()
			data[0] = byte(d + 1)
			te.add(d, dbn, data)
		}
		before := e.in.Stats().TetrisesSent
		for i, b := range buckets {
			e.in.PutBucket(th, b)
			sent := e.in.Stats().TetrisesSent
			if i < len(buckets)-1 && sent != before {
				t.Fatal("tetris sent before all buckets returned")
			}
		}
		if e.in.Stats().TetrisesSent != before+1 {
			t.Fatal("tetris not sent after last bucket returned")
		}
		th.Sleep(200 * sim.Millisecond) // let the I/O land
	})
	// The data must be on the media with consistent parity.
	g := e.a.Group(0)
	found := 0
	for dbn := block.DBN(0); dbn < g.Depth(); dbn++ {
		for d := 0; d < g.DataDrives(); d++ {
			if b := g.Drive(d).Peek(dbn); b != nil && b[0] == byte(d+1) {
				found++
				if !g.VerifyStripe(dbn) {
					t.Fatalf("parity mismatch at stripe %d", dbn)
				}
			}
		}
	}
	if found != e.a.Geometry().DataDrives {
		t.Fatalf("found %d written blocks on media, want %d", found, e.a.Geometry().DataDrives)
	}
}

func TestVBucketCommitWritesContainer(t *testing.T) {
	e := newEnv(t, nil)
	vol := e.a.Volume(0)
	e.in.StartCP([]*aggregate.Volume{vol})
	e.runThread(t, func(th *sim.Thread) {
		vb := e.in.GetVBucket(th, vol)
		if vb.Remaining() == 0 {
			t.Fatal("empty vbucket")
		}
		vv1 := vb.use(777)
		vv2 := vb.use(888)
		e.in.PutVBucket(th, vb)
		th.Sleep(100 * sim.Millisecond)
		if !vol.Activemap.IsSet(uint64(vv1)) || !vol.Activemap.IsSet(uint64(vv2)) {
			t.Fatal("vvbn bits not committed")
		}
		if vol.Container(vv1) != 777 || vol.Container(vv2) != 888 {
			t.Fatal("container entries not committed")
		}
	})
}

func TestCommitFreesScatteredVsSequential(t *testing.T) {
	// Frees grouped by metafile block: sequential frees produce one
	// message; scattered frees produce one per activemap block touched —
	// the §V-A2 effect.
	e := newEnv(t, nil)
	e.in.StartCP(nil)
	// Allocate some bits so we can free them.
	seq := make([]uint64, 32)
	for i := range seq {
		seq[i] = uint64(1000 + i)
		e.a.Activemap.Set(seq[i])
	}
	// The small test aggregate (49152 blocks) spans two activemap blocks:
	// frees split across both must produce two messages.
	scattered := []uint64{3000, 3100, 40000, 40100}
	for _, bn := range scattered {
		e.a.Activemap.Set(bn)
	}
	before := e.in.Stats().StageCommitMsgs
	e.runThread(t, func(th *sim.Thread) { e.in.CommitFrees(th, -1, seq) })
	e.s.RunFor(100 * sim.Millisecond)
	seqMsgs := e.in.Stats().StageCommitMsgs - before
	if seqMsgs != 1 {
		t.Fatalf("sequential frees produced %d messages, want 1", seqMsgs)
	}
	before = e.in.Stats().StageCommitMsgs
	e.runThread(t, func(th *sim.Thread) { e.in.CommitFrees(th, -1, scattered) })
	e.s.RunFor(100 * sim.Millisecond)
	scatMsgs := e.in.Stats().StageCommitMsgs - before
	if scatMsgs != 2 {
		t.Fatalf("scattered frees produced %d messages, want 2", scatMsgs)
	}
	for _, bn := range seq {
		if e.a.Activemap.IsSet(bn) {
			t.Fatal("free not applied")
		}
		if !e.in.pendingFree.test(bn) {
			t.Fatal("freed block not in pendingFree")
		}
	}
}

func TestPendingFreeBlocksReuseUntilEndCP(t *testing.T) {
	e := newEnv(t, nil)
	e.in.StartCP(nil)
	bn := uint64(5000)
	e.a.Activemap.Set(bn)
	e.runThread(t, func(th *sim.Thread) { e.in.CommitFrees(th, -1, []uint64{bn}) })
	e.s.RunFor(50 * sim.Millisecond)
	got, _ := e.in.findFreePhys(bn, bn+1, 1)
	if len(got) != 0 {
		t.Fatal("same-CP-freed block offered for reuse")
	}
	e.runThread(t, func(th *sim.Thread) { e.in.Drain(th) })
	e.in.EndCP()
	got, _ = e.in.findFreePhys(bn, bn+1, 1)
	if len(got) != 1 {
		t.Fatal("freed block not reusable after EndCP")
	}
}

func TestFindMetaVBNSkipsReservedAndPending(t *testing.T) {
	e := newEnv(t, nil)
	e.in.StartCP(nil)
	e.s.RunFor(100 * sim.Millisecond) // fills reserve their windows
	e.runThread(t, func(th *sim.Thread) {
		seen := make(map[block.VBN]bool)
		for i := 0; i < 50; i++ {
			vbn := e.in.FindMetaVBN(th)
			if seen[vbn] {
				t.Fatal("FindMetaVBN returned a block twice without Set")
			}
			seen[vbn] = true
			if e.in.reserved.test(uint64(vbn)) || e.in.pendingFree.test(uint64(vbn)) {
				t.Fatal("FindMetaVBN returned a reserved/pending block")
			}
			e.a.Activemap.Set(uint64(vbn))
		}
	})
}

// buildDirtyFile creates a user file with n dirty L0 blocks and freezes it.
func buildDirtyFile(v *aggregate.Volume, n int) *fs.File {
	f := v.CreateFile(1 << 14)
	for i := 0; i < n; i++ {
		f.WriteBlock(block.FBN(i), []byte{byte(i)})
	}
	v.MarkDirty(f)
	files := v.FreezeAll()
	for _, ff := range files {
		if ff == f {
			return f
		}
	}
	return f
}

func TestPoolCleansFileCompletely(t *testing.T) {
	e := newEnv(t, nil)
	vol := e.a.Volume(0)
	f := buildDirtyFile(vol, 100)
	e.in.StartCP([]*aggregate.Volume{vol})
	jobs := e.pool.BuildJobs(vol, []*fs.File{f}, true)
	e.runThread(t, func(th *sim.Thread) {
		e.pool.RunPhase(th, jobs)
		e.in.Drain(th)
	})
	if f.FrozenCount() != 0 {
		t.Fatalf("%d frozen buffers left", f.FrozenCount())
	}
	if f.RootVBN == block.InvalidVBN {
		t.Fatal("root not assigned")
	}
	// Every L0 must have both addresses and a committed container entry.
	for i := 0; i < 100; i++ {
		b := f.Buffer(0, block.FBN(i))
		if b.VBN() == block.InvalidVBN || b.VVBN() == block.InvalidVVBN {
			t.Fatalf("block %d missing address", i)
		}
		if !e.a.Activemap.IsSet(uint64(b.VBN())) {
			t.Fatalf("block %d vbn not committed", i)
		}
		if !vol.Activemap.IsSet(uint64(b.VVBN())) {
			t.Fatalf("block %d vvbn not committed", i)
		}
		if vol.Container(b.VVBN()) != b.VBN() {
			t.Fatalf("block %d container mismatch", i)
		}
	}
	if got := e.pool.Stats().BuffersCleaned; got < 100 {
		t.Fatalf("cleaned %d buffers, want >= 100 (plus indirects)", got)
	}
}

func TestOverwriteStagesFrees(t *testing.T) {
	e := newEnv(t, nil)
	vol := e.a.Volume(0)
	f := buildDirtyFile(vol, 50)
	e.in.StartCP([]*aggregate.Volume{vol})
	e.runThread(t, func(th *sim.Thread) {
		e.pool.RunPhase(th, e.pool.BuildJobs(vol, []*fs.File{f}, true))
		e.in.Drain(th)
	})
	e.in.EndCP()
	oldVBN := f.Buffer(0, 0).VBN()
	usedBefore := e.a.Activemap.Used()

	// Overwrite all 50 blocks and clean again: the old locations free.
	for i := 0; i < 50; i++ {
		f.WriteBlock(block.FBN(i), []byte{0xFF})
	}
	vol.MarkDirty(f)
	vol.FreezeAll()
	e.in.StartCP([]*aggregate.Volume{vol})
	e.runThread(t, func(th *sim.Thread) {
		e.pool.RunPhase(th, e.pool.BuildJobs(vol, []*fs.File{f}, true))
		e.in.Drain(th)
	})
	e.in.EndCP()
	if e.a.Activemap.IsSet(uint64(oldVBN)) {
		t.Fatal("overwritten block's old location not freed")
	}
	usedAfter := e.a.Activemap.Used()
	// Steady state: allocations balanced by frees (within indirect noise).
	if usedAfter > usedBefore+5 {
		t.Fatalf("space leak: used %d -> %d", usedBefore, usedAfter)
	}
	if e.in.Stats().FreesCommitted == 0 {
		t.Fatal("no frees committed")
	}
}

func TestLooseAccountingConverges(t *testing.T) {
	e := newEnv(t, nil)
	vol := e.a.Volume(0)
	f := buildDirtyFile(vol, 80)
	_ = f
	freeBefore := e.in.AggrFree()
	e.in.StartCP([]*aggregate.Volume{vol})
	e.runThread(t, func(th *sim.Thread) {
		e.pool.RunPhase(th, e.pool.BuildJobs(vol, []*fs.File{f}, true))
		e.in.Drain(th)
	})
	e.in.EndCP()
	// After all tokens flush, the loose counter equals ground truth minus
	// the initial-format difference.
	gotDelta := freeBefore - e.in.AggrFree()
	groundDelta := int64(e.a.Geometry().TotalBlocks()) - int64(e.a.TotalFree()) -
		(int64(e.a.Geometry().TotalBlocks()) - freeBefore)
	if gotDelta != groundDelta {
		t.Fatalf("loose counter delta %d != ground truth delta %d", gotDelta, groundDelta)
	}
}

func TestBatchedCleaningTakesMultipleSmallJobs(t *testing.T) {
	e := newEnv(t, func(o *Options) {
		o.BatchedCleaning = true
		o.BatchSize = 4
		o.BatchBufferLimit = 8
		o.MaxCleaners = 1
		o.InitialCleaners = 1
	})
	vol := e.a.Volume(0)
	var files []*fs.File
	for i := 0; i < 8; i++ {
		f := vol.CreateFile(64)
		f.WriteBlock(0, []byte{byte(i)})
		vol.MarkDirty(f)
		files = append(files, f)
	}
	vol.FreezeAll()
	e.in.StartCP([]*aggregate.Volume{vol})
	jobs := e.pool.BuildJobs(vol, files, true)
	e.runThread(t, func(th *sim.Thread) {
		e.pool.RunPhase(th, jobs)
		e.in.Drain(th)
	})
	st := e.pool.Stats()
	if st.JobsRun != 8 {
		t.Fatalf("jobs = %d", st.JobsRun)
	}
	if st.BatchesRun >= st.JobsRun {
		t.Fatalf("batching ineffective: %d batches for %d jobs", st.BatchesRun, st.JobsRun)
	}
}

func TestSplitLargeFile(t *testing.T) {
	e := newEnv(t, func(o *Options) {
		o.SplitLargeFiles = true
		o.SplitThreshold = 64
		o.SplitJobs = 3
	})
	vol := e.a.Volume(0)
	f := buildDirtyFile(vol, 300)
	e.in.StartCP([]*aggregate.Volume{vol})
	jobs := e.pool.BuildJobs(vol, []*fs.File{f}, true)
	if len(jobs) != 3 {
		t.Fatalf("split produced %d jobs, want 3", len(jobs))
	}
	e.runThread(t, func(th *sim.Thread) {
		e.pool.RunPhase(th, jobs)
		e.in.Drain(th)
	})
	if f.FrozenCount() != 0 {
		t.Fatalf("split cleaning left %d frozen buffers", f.FrozenCount())
	}
	if e.pool.Stats().FilesSplit != 1 {
		t.Fatal("split not recorded")
	}
}

func TestSerialAffinityCleaning(t *testing.T) {
	e := newEnv(t, func(o *Options) { o.CleanInSerialAffinity = true })
	vol := e.a.Volume(0)
	f := buildDirtyFile(vol, 40)
	e.in.StartCP([]*aggregate.Volume{vol})
	e.runThread(t, func(th *sim.Thread) {
		e.pool.RunPhase(th, e.pool.BuildJobs(vol, []*fs.File{f}, true))
		e.in.Drain(th)
	})
	if f.FrozenCount() != 0 {
		t.Fatal("serial-affinity cleaning incomplete")
	}
}

func TestTunerActivatesAndParks(t *testing.T) {
	e := newEnv(t, func(o *Options) {
		o.MaxCleaners = 4
		o.InitialCleaners = 1
	})
	tu := StartTuner(e.pool, TunerConfig{Interval: 10 * sim.Millisecond, ActivateAt: 0.9, ParkAt: 0.5})
	// Saturate the single active cleaner with a busy-loop job stream.
	vol := e.a.Volume(0)
	e.in.StartCP([]*aggregate.Volume{vol})
	stop := false
	e.s.Go("feeder", sim.CatCP, func(th *sim.Thread) {
		for k := 0; k < 30 && !stop; k++ {
			f := buildDirtyFile(vol, 200)
			e.pool.RunPhase(th, e.pool.BuildJobs(vol, []*fs.File{f}, true))
		}
		stop = true
	})
	e.s.RunFor(2 * sim.Second)
	if e.pool.Active() <= 1 && e.pool.Stats().Activations == 0 {
		t.Fatalf("tuner never activated threads under load (active=%d)", e.pool.Active())
	}
	// Now idle: the tuner must park back down to one.
	e.s.RunFor(2 * sim.Second)
	if e.pool.Active() != 1 {
		t.Fatalf("tuner did not park idle threads (active=%d)", e.pool.Active())
	}
	tu.Stop()
}

func TestAAPolicies(t *testing.T) {
	for _, pol := range []AAPolicy{AAMostFree, AAFirstFit, AARoundRobin} {
		e := newEnv(t, func(o *Options) { o.AASelection = pol })
		e.in.StartCP(nil)
		e.s.RunFor(200 * sim.Millisecond)
		if e.in.cache.len() == 0 {
			t.Fatalf("policy %v produced no buckets", pol)
		}
	}
}

func TestChunkSizeOne(t *testing.T) {
	// Bucket size one is legal (§IV-C): allocation degenerates to one VBN
	// per GET.
	e := newEnv(t, func(o *Options) { o.ChunkBlocks = 1 })
	vol := e.a.Volume(0)
	f := buildDirtyFile(vol, 20)
	e.in.StartCP([]*aggregate.Volume{vol})
	e.runThread(t, func(th *sim.Thread) {
		e.pool.RunPhase(th, e.pool.BuildJobs(vol, []*fs.File{f}, true))
		e.in.Drain(th)
	})
	if f.FrozenCount() != 0 {
		t.Fatal("chunk-1 cleaning incomplete")
	}
}

func TestDrainLeavesNoReservations(t *testing.T) {
	e := newEnv(t, nil)
	vol := e.a.Volume(0)
	f := buildDirtyFile(vol, 60)
	e.in.StartCP([]*aggregate.Volume{vol})
	e.runThread(t, func(th *sim.Thread) {
		e.pool.RunPhase(th, e.pool.BuildJobs(vol, []*fs.File{f}, true))
		e.in.Drain(th)
	})
	e.in.EndCP()
	for i, w := range e.in.reserved.words {
		if w != 0 {
			t.Fatalf("reservation leak in word %d: %x", i, w)
		}
	}
	for _, vs := range e.in.vols {
		for i, w := range vs.reserved.words {
			if w != 0 {
				t.Fatalf("vvbn reservation leak in word %d: %x", i, w)
			}
		}
	}
}
