package core

import (
	"fmt"

	"wafl/internal/aggregate"
	"wafl/internal/bitmap"
	"wafl/internal/block"
	"wafl/internal/obs"
	"wafl/internal/sim"
)

// vRegionBits is the size of a virtual Allocation Area: the VVBN span
// covered by one volume-activemap block, so a fill touches one metafile
// block (and one Range affinity).
const vRegionBits = bitmap.BitsPerBlock

// selectVRegion picks the virtual region with the most allocatable VVBNs —
// free meaning clear in both the activemap and the snapshot summary map
// (free = !active && !summary) — excluding regions already used this CP.
// The scan cost is charged by the caller via the returned word count.
//
// With HierarchicalFree this is an O(regions) lookup of the incrementally
// maintained per-vregion counters (the volume analogue of AAFree, which
// likewise charges no bitmap-word cost). The legacy path recounts every
// candidate region's full span.
func (in *Infra) selectVRegion(vs *volState) (int, int) {
	nRegions := int((vs.vol.VVBNBlocks() + vRegionBits - 1) / vRegionBits)
	if in.opts.HierarchicalFree {
		best := -1
		var bestFree int64
		for r := 0; r < nRegions; r++ {
			if vs.usedRegions[r] {
				continue
			}
			if f := vs.vol.FreeIdx.RegionFree(r); f > bestFree {
				best, bestFree = r, f
			}
		}
		return best, 0
	}
	best, words := -1, 0
	var bestFree uint64
	for r := 0; r < nRegions; r++ {
		if vs.usedRegions[r] {
			continue
		}
		lo := uint64(r) * vRegionBits
		hi := lo + vRegionBits
		n, w := vs.vol.Activemap.CountFreeNotIn(vs.vol.Summary, lo, hi)
		words += w
		if n > bestFree {
			best, bestFree = r, n
		}
	}
	return best, words
}

// findFreeVirt is findFreePhys for a volume's VVBN space. The indexed path
// asks the free-space index, which skips exhausted words via its free-words
// summary bitmap and already excludes summary-held VVBNs; the legacy path
// grinds through the activemap word-by-word and rejects summary-held bits
// one at a time.
func (in *Infra) findFreeVirt(vs *volState, lo, hi uint64, max int) ([]block.VVBN, int) {
	out := make([]block.VVBN, 0, max)
	words := 0
	for lo < hi && len(out) < max {
		var raw []uint64
		var w int
		if in.opts.HierarchicalFree {
			raw, w = vs.vol.FreeIdx.FindFree(vs.scanBuf[:0], lo, hi, max)
		} else {
			raw, w = vs.vol.Activemap.FindFree(vs.scanBuf[:0], lo, hi, max)
		}
		vs.scanBuf = raw // retain grown capacity for the next scan
		words += w
		if len(raw) == 0 {
			break
		}
		for _, bn := range raw {
			if len(out) == max {
				break
			}
			if vs.pendingFree.test(bn) || vs.reserved.test(bn) {
				continue
			}
			// free = !active && !summary: a clear activemap bit whose VVBN a
			// snapshot still holds is not allocatable. The index excludes
			// such bits already; the legacy path examines a summary-map word
			// per candidate to find out, and is charged for it.
			if !in.opts.HierarchicalFree {
				words++
				if vs.vol.Summary.IsSet(bn) {
					continue
				}
			}
			out = append(out, block.VVBN(bn))
		}
		lo = raw[len(raw)-1] + 1
	}
	return out, words
}

// scanVBucket finds the next chunk of free VVBNs for the volume, charging
// the scan to the executing thread.
func (in *Infra) scanVBucket(t *sim.Thread, vs *volState) []block.VVBN {
	chunk := uint64(in.opts.ChunkBlocks)
	var vvbns []block.VVBN
	fillWords := 0
	for len(vvbns) == 0 {
		if vs.region < 0 || vs.cursor >= uint64(vs.region+1)*vRegionBits {
			r, words := in.selectVRegion(vs)
			fillWords += words
			if r < 0 {
				// Every region was already used this CP: lift the
				// exclusion and re-pick (reservation and pending-free
				// filtering keep reuse safe; this only costs layout
				// locality).
				vs.usedRegions = make(map[int]bool)
				r, words = in.selectVRegion(vs)
				fillWords += words
			}
			if r < 0 {
				panic("core: volume out of virtual space (volume full)")
			}
			vs.region = r
			vs.usedRegions[r] = true
			vs.cursor = uint64(r) * vRegionBits
		}
		hi := vs.cursor + chunk
		if regionEnd := uint64(vs.region+1) * vRegionBits; hi > regionEnd {
			hi = regionEnd
		}
		if limit := vs.vol.VVBNBlocks(); hi > limit {
			hi = limit
		}
		var words int
		vvbns, words = in.findFreeVirt(vs, vs.cursor, hi, int(chunk))
		fillWords += words
		vs.cursor = hi
	}
	in.stats.FillWords += uint64(fillWords)
	in.stats.VFillWords += uint64(fillWords)
	t.ConsumeAs(sim.CatInfra, in.costs.FillFixed+sim.Duration(fillWords)*in.costs.FillPerWord)
	return vvbns
}

// installVBucket reserves the scanned VVBNs and adds the bucket to the
// volume's cache.
func (in *Infra) installVBucket(vs *volState, vvbns []block.VVBN) {
	for _, vv := range vvbns {
		vs.reserved.set(uint64(vv))
	}
	vs.cache.push(&VBucket{vol: vs.vol, vvbns: vvbns})
	in.stats.VBucketsFilled++
	vs.cond.Signal()
}

// requestVBucket sends a fill message that builds one virtual bucket for
// the volume.
func (in *Infra) requestVBucket(vs *volState) {
	vs.pendingFills++
	in.pendingOps++
	fbn := bitmap.BlockOf(vs.cursor)
	in.w.Send(in.volRangeAff(vs.vol.ID(), fbn), sim.CatInfra, func(t *sim.Thread) {
		vvbns := in.scanVBucket(t, vs)
		vs.pendingFills--
		if in.draining || !in.inCP {
			return // quiescing: drop the fill (nothing was reserved yet)
		}
		in.installVBucket(vs, vvbns)
	}, func() { in.opDone() })
}

// GetVBucket returns a virtual bucket for the volume, blocking until one is
// available, and tops the per-volume cache back up to its target.
func (in *Infra) GetVBucket(t *sim.Thread, vol *aggregate.Volume) *VBucket {
	t.Consume(in.costs.BucketOp)
	getStart := t.Now()
	vs := in.vols[vol.ID()]
	if in.opts.CleanInSerialAffinity {
		for vs.cache.len() == 0 {
			in.installVBucket(vs, in.scanVBucket(t, vs))
		}
	}
	waited := false
	for vs.cache.len() == 0 {
		if vs.pendingFills == 0 && in.inCP && !in.draining {
			in.requestVBucket(vs)
		}
		in.stats.GetWaits++
		waited = true
		vs.cond.Wait(t)
	}
	if tr := t.Tracer(); tr != nil {
		if waited {
			tr.Span(obs.PidThreads, t.TrackID(), "alloc", "vGET wait", int64(getStart), int64(t.Now()))
		}
		tr.Observe("infra.vget_wait", int64(t.Now()-getStart))
	}
	vb := vs.cache.pop()
	if !in.draining && in.inCP && vs.cache.len()+vs.pendingFills < in.opts.VolBucketsReady {
		in.requestVBucket(vs)
	}
	return vb
}

// PutVBucket returns a used virtual bucket; a commit message applies its
// VVBN allocations and container-map entries in batch.
func (in *Infra) PutVBucket(t *sim.Thread, vb *VBucket) {
	t.Consume(in.costs.BucketOp)
	if tr := t.Tracer(); tr != nil {
		tr.InstantArg(obs.PidThreads, t.TrackID(), "alloc", "PUT vbucket",
			int64(t.Now()), int64(vb.next))
	}
	vs := in.vols[vb.vol.ID()]
	if vb.next == 0 {
		// Nothing used: release reservations directly.
		for _, vv := range vb.vvbns {
			vs.reserved.clear(uint64(vv))
		}
		return
	}
	if in.opts.CleanInSerialAffinity {
		in.commitVBucketBody(t, vs, vb)
		return
	}
	in.pendingOps++
	fbn := bitmap.BlockOf(uint64(vb.vvbns[0]))
	in.w.Send(in.volRangeAff(vb.vol.ID(), fbn), sim.CatInfra, func(wt *sim.Thread) {
		in.commitVBucketBody(wt, vs, vb)
	}, func() { in.opDone() })
}

// commitVBucketBody applies a used virtual bucket's allocations and
// container entries.
func (in *Infra) commitVBucketBody(wt *sim.Thread, vs *volState, vb *VBucket) {
	used := vb.vvbns[:vb.next]
	amapBlocks := distinctVmapBlocks(used)
	contBlocks := distinctContainerBlocks(used)
	wt.ConsumeAs(sim.CatInfra,
		sim.Duration(amapBlocks+contBlocks)*in.costs.CommitPerBlock+
			sim.Duration(len(used))*in.costs.CommitPerBit+
			sim.Duration(len(used))*in.costs.ContainerEntry)
	for i, vv := range used {
		if vb.vol.Summary.IsSet(uint64(vv)) {
			panic(fmt.Sprintf("core: vol %d allocated snapshot-held vvbn %d", vb.vol.ID(), vv))
		}
		vb.vol.Activemap.Set(uint64(vv))
		vb.vol.SetContainer(vv, vb.pvbns[i])
	}
	for _, vv := range vb.vvbns {
		vs.reserved.clear(uint64(vv))
	}
	in.stats.VBucketsCommitted++
}

// distinctVmapBlocks counts distinct volume-activemap blocks covering a
// VVBN set.
func distinctVmapBlocks(vvbns []block.VVBN) int {
	n := 0
	last := block.FBN(^uint64(0))
	for _, v := range vvbns {
		fbn := bitmap.BlockOf(uint64(v))
		if fbn != last {
			n++
			last = fbn
		}
	}
	return n
}

// distinctContainerBlocks counts distinct container-map blocks for a VVBN
// set.
func distinctContainerBlocks(vvbns []block.VVBN) int {
	n := 0
	last := block.FBN(^uint64(0))
	for _, v := range vvbns {
		fbn := block.FBN(uint64(v) / aggregate.ContainerEntriesPerBlock)
		if fbn != last {
			n++
			last = fbn
		}
	}
	return n
}
