package core

import (
	"wafl/internal/aggregate"
	"wafl/internal/block"
	"wafl/internal/storage"
)

// Bucket is the unit of physical allocation handed to cleaner threads: a
// set of free VBNs within one chunk-sized window on a single drive (§IV-C).
// Because the VBN layout is drive-major, the VBNs are contiguous on disk up
// to already-allocated holes, preserving sequential-read layout.
type Bucket struct {
	group, drive int
	window       block.DBN // first DBN of the covering window
	vbns         []block.VBN
	next         int // vbns[:next] have been consumed by USE
	tetris       *Tetris
}

// Remaining returns how many unused VBNs the bucket still holds.
func (b *Bucket) Remaining() int { return len(b.vbns) - b.next }

// Used returns the VBNs consumed so far.
func (b *Bucket) Used() []block.VBN { return b.vbns[:b.next] }

// Unused returns the VBNs never handed out (released at PUT).
func (b *Bucket) Unused() []block.VBN { return b.vbns[b.next:] }

// Tetris accumulates the write I/O for one chunk-deep stripe window of a
// RAID group (§IV-E): its width is the group's data-drive count and its
// depth the chunk size. Each USE enqueues the cleaned buffer onto the
// per-drive list; a reference count of outstanding buckets tells the
// allocator when the window is complete and the I/O can be built and sent
// to RAID. Within the window, the cleaner that holds a drive's bucket has
// exclusive access to that drive's list, so no locking is needed on the
// enqueue path — the paper's lock-free tetris insertion.
type Tetris struct {
	group    int
	window   block.DBN
	perDrive [][]storage.WriteReq
	// outstanding counts buckets not yet returned via PUT (or exhausted);
	// when it reaches zero the I/O is sent. initialBuckets is the number
	// of non-empty buckets the window produced, and committedBuckets
	// counts how many have had their allocations committed to the
	// activemap — when all have, the infrastructure refills the window.
	outstanding      int
	initialBuckets   int
	committedBuckets int
	blocks           int
}

func newTetris(group int, window block.DBN, drives int) *Tetris {
	return &Tetris{group: group, window: window, perDrive: make([][]storage.WriteReq, drives)}
}

// add enqueues a cleaned block's payload at its assigned location.
func (t *Tetris) add(drive int, dbn block.DBN, data []byte) {
	t.perDrive[drive] = append(t.perDrive[drive], storage.WriteReq{DBN: dbn, Data: data})
	t.blocks++
}

// Blocks returns the number of blocks enqueued so far.
func (t *Tetris) Blocks() int { return t.blocks }

// VBucket is the virtual-space analogue of a Bucket: a chunk of free VVBNs
// of one volume, plus the (vvbn → pvbn) assignments recorded by USE so the
// infrastructure can commit container-map entries in batch ("a version of
// this infrastructure is reused to write allocate Virtual VBNs", §IV-D).
type VBucket struct {
	vol   *aggregate.Volume
	vvbns []block.VVBN
	next  int
	// pvbns[i] is the physical home assigned alongside vvbns[i].
	pvbns []block.VBN
}

// Remaining returns how many unused VVBNs the bucket still holds.
func (v *VBucket) Remaining() int { return len(v.vvbns) - v.next }

// use consumes the next VVBN, recording its physical pairing.
func (v *VBucket) use(pvbn block.VBN) block.VVBN {
	vv := v.vvbns[v.next]
	v.next++
	v.pvbns = append(v.pvbns, pvbn)
	return vv
}

// bitset is an in-memory bit vector used for transient per-CP state:
// blocks freed in the running CP (not reusable until the CP commits) and
// blocks reserved by filled-but-uncommitted buckets.
type bitset struct {
	words []uint64
}

func newBitset(n uint64) *bitset { return &bitset{words: make([]uint64, (n+63)/64)} }

func (s *bitset) set(i uint64)       { s.words[i/64] |= 1 << (i % 64) }
func (s *bitset) clear(i uint64)     { s.words[i/64] &^= 1 << (i % 64) }
func (s *bitset) test(i uint64) bool { return s.words[i/64]&(1<<(i%64)) != 0 }

func (s *bitset) reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}
