package core

import (
	"wafl/internal/aggregate"
	"wafl/internal/bitmap"
	"wafl/internal/block"
	"wafl/internal/counters"
	"wafl/internal/sim"
)

// StartCP prepares the infrastructure for a consistency point: it begins
// filling WindowsAhead tetris windows per RAID group and pre-fills virtual
// buckets for every volume with frozen work.
func (in *Infra) StartCP(dirtyVols []*aggregate.Volume) {
	in.inCP = true
	in.draining = false
	if in.opts.CleanInSerialAffinity {
		return // serial mode fills inline on demand
	}
	for gi := 0; gi < in.a.Groups(); gi++ {
		for k := 0; k < in.opts.WindowsAhead; k++ {
			in.requestWindow(gi)
		}
	}
	for _, v := range dirtyVols {
		vs := in.vols[v.ID()]
		for vs.cache.len()+vs.pendingFills < in.opts.VolBucketsReady {
			in.requestVBucket(vs)
		}
	}
}

// Prefill restarts bucket filling mid-CP (the CP engine calls it before the
// metafile-cleaning phase, which needs physical buckets again after a
// drain).
func (in *Infra) Prefill() {
	in.draining = false
	if in.opts.CleanInSerialAffinity {
		return
	}
	for gi := 0; gi < in.a.Groups(); gi++ {
		in.requestWindow(gi)
	}
}

// Drain quiesces the infrastructure: it stops refills, discards unused
// buckets (releasing their reservations and force-completing their
// tetrises), and blocks until every outstanding infrastructure message and
// storage I/O has finished. Cleaner threads must already be idle (all
// buckets returned, all stages committed).
func (in *Infra) Drain(t *sim.Thread) {
	in.draining = true
	// Discard the physical bucket cache.
	in.cacheMu.Lock(t)
	cache := in.cache.takeAll()
	in.cacheMu.Unlock(t)
	for _, b := range cache {
		for _, vbn := range b.vbns {
			in.reserved.clear(uint64(vbn))
		}
		te := b.tetris
		te.outstanding--
		te.initialBuckets-- // it will never be committed either
		if te.outstanding == 0 && te.blocks > 0 {
			in.sendTetris(t, te)
		}
	}
	// Discard virtual bucket caches.
	for _, vs := range in.vols {
		for _, vb := range vs.cache.takeAll() {
			for _, vv := range vb.vvbns {
				vs.reserved.clear(uint64(vv))
			}
		}
	}
	for in.pendingOps > 0 || in.pendingIO > 0 {
		in.drainCond.Wait(t)
	}
}

// DrainOps is like Drain but only waits for outstanding infrastructure
// messages (fills, commits, free stages) — the point at which the
// allocation-bitmap state is final. Storage I/O keeps flowing; the CP
// engine overlaps it with the metafile phases and only waits for it (via
// DrainIO) before the superblock commit.
func (in *Infra) DrainOps(t *sim.Thread) {
	in.draining = true
	in.cacheMu.Lock(t)
	cache := in.cache.takeAll()
	in.cacheMu.Unlock(t)
	for _, b := range cache {
		for _, vbn := range b.vbns {
			in.reserved.clear(uint64(vbn))
		}
		te := b.tetris
		te.outstanding--
		te.initialBuckets--
		if te.outstanding == 0 && te.blocks > 0 {
			in.sendTetris(t, te)
		}
	}
	for _, vs := range in.vols {
		for _, vb := range vs.cache.takeAll() {
			for _, vv := range vb.vvbns {
				vs.reserved.clear(uint64(vv))
			}
		}
	}
	for in.pendingOps > 0 {
		in.drainCond.Wait(t)
	}
}

// DrainFrees waits for outstanding infrastructure messages — in particular
// staged free commits — WITHOUT entering drain mode: bucket caches and fill
// pipelines keep running. The CP engine calls it between file-zombie and
// snapshot-zombie processing, where snapshot reclaim must observe the
// settled activemap.
func (in *Infra) DrainFrees(t *sim.Thread) {
	for in.pendingOps > 0 {
		in.drainCond.Wait(t)
	}
}

// DrainIO waits for every outstanding storage I/O after ops are drained.
func (in *Infra) DrainIO(t *sim.Thread) {
	for in.pendingOps > 0 || in.pendingIO > 0 {
		in.drainCond.Wait(t)
	}
}

// EndCP clears per-CP state after the superblock commit: blocks freed
// during the CP become allocatable and AA/region exclusions lift.
func (in *Infra) EndCP() {
	in.inCP = false
	in.pendingFree.reset()
	in.reserved.reset()
	for gi := range in.usedAAs {
		in.usedAAs[gi] = make(map[int]bool)
		in.win[gi] = windowState{aa: -1}
	}
	for _, vs := range in.vols {
		vs.pendingFree.reset()
		vs.reserved.reset()
		vs.usedRegions = make(map[int]bool)
		vs.region = -1
	}
}

// CommitFrees sends free-commit messages for a stage of old block numbers:
// physical VBNs when volID < 0, VVBNs of the given volume otherwise. The
// numbers are grouped by owning metafile block, and one message per block
// goes to that block's Range affinity — this is where a random overwrite
// workload, whose frees scatter across the VBN space, generates many more
// metafile-block updates (and messages) than a sequential one (§V-A2).
func (in *Infra) CommitFrees(t *sim.Thread, volID int, bns []uint64) {
	if len(bns) == 0 {
		return
	}
	// Group by metafile block, preserving first-touch order.
	order := make([]block.FBN, 0, 4)
	groups := make(map[block.FBN][]uint64)
	for _, bn := range bns {
		fbn := bitmap.BlockOf(bn)
		if _, ok := groups[fbn]; !ok {
			order = append(order, fbn)
		}
		groups[fbn] = append(groups[fbn], bn)
	}
	for _, fbn := range order {
		batch := groups[fbn]
		in.stats.StageCommitMsgs++
		if in.opts.CleanInSerialAffinity {
			// Exclusive-access mode: apply inline.
			in.commitFreesBody(t, volID, batch)
			continue
		}
		in.pendingOps++
		var aff = in.aggrRangeAff(fbn)
		if volID >= 0 {
			aff = in.volRangeAff(volID, fbn)
		}
		volID := volID
		in.w.Send(aff, sim.CatInfra, func(wt *sim.Thread) {
			in.commitFreesBody(wt, volID, batch)
		}, func() { in.opDone() })
	}
}

// commitFreesBody clears one metafile block's worth of bits.
func (in *Infra) commitFreesBody(t *sim.Thread, volID int, batch []uint64) {
	t.ConsumeAs(sim.CatInfra, in.costs.CommitPerBlock+sim.Duration(len(batch))*in.costs.CommitPerBit)
	if volID < 0 {
		for _, bn := range batch {
			in.a.Activemap.Clear(bn)
		}
	} else {
		vs := in.vols[volID]
		for _, bn := range batch {
			vs.vol.Activemap.Clear(bn)
		}
	}
	in.stats.FreesCommitted += uint64(len(batch))
}

// FindMetaVBN returns a free physical block for metafile placement (the
// activemap flush planner's allocation source), scanning from a persistent
// cursor and skipping blocks freed or reserved in the running CP. It does
// not claim the block; the caller sets the bit.
func (in *Infra) FindMetaVBN(t *sim.Thread) block.VBN {
	total := in.a.Geometry().TotalBlocks()
	if in.metaCursor == 0 || in.metaCursor >= total {
		in.metaCursor = 1
	}
	for wrap := 0; wrap < 2; wrap++ {
		vbns, words := in.findFreePhys(in.metaCursor, total, 1)
		if t != nil {
			t.ConsumeAs(sim.CatInfra, sim.Duration(words)*in.costs.FillPerWord)
		}
		if len(vbns) > 0 {
			in.metaCursor = uint64(vbns[0]) + 1
			return vbns[0]
		}
		in.metaCursor = 1
	}
	panic("core: no free block for metafile allocation (aggregate full?)")
}

// AggrFreeID returns the aggregate free-block counter ID.
func (in *Infra) AggrFreeID() counters.ID { return in.aggrFreeCtr }

// VolFreeID returns the volume's free-block counter ID.
func (in *Infra) VolFreeID(volID int) counters.ID { return in.vols[volID].freeCounter }

// CleanerCounterAdd applies a counter update from a cleaner thread. With
// loose accounting the delta is staged in the thread's token at zero
// synchronization cost; otherwise the global counter lock is taken for
// every update — the contended pre-loose-accounting path (§III-C), kept as
// an ablation.
func (in *Infra) CleanerCounterAdd(t *sim.Thread, tok *counters.Token, id counters.ID, delta int64) {
	if in.opts.LooseAccounting {
		tok.Add(id, delta)
		return
	}
	in.counterMu.Lock(t)
	t.Consume(in.costs.CounterDirect)
	in.Counters.Add(id, delta)
	in.counterMu.Unlock(t)
}

// FlushToken applies a cleaner's staged counter deltas in one batched
// update under the counter lock.
func (in *Infra) FlushToken(t *sim.Thread, tok *counters.Token) {
	if tok.Staged() == 0 {
		return
	}
	in.counterMu.Lock(t)
	t.Consume(in.costs.TokenFlush)
	tok.Flush()
	in.counterMu.Unlock(t)
}
