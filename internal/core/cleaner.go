package core

import (
	"fmt"
	"sort"

	"wafl/internal/aggregate"
	"wafl/internal/block"
	"wafl/internal/counters"
	"wafl/internal/fs"
	"wafl/internal/obs"
	"wafl/internal/sim"
	"wafl/internal/waffinity"
)

// JobMode selects which part of a file a cleaning job covers.
type JobMode int

// Job modes.
const (
	// JobFull cleans every frozen buffer of the file, bottom-up.
	JobFull JobMode = iota
	// JobL0Range cleans only frozen L0 buffers with FBN in [Lo, Hi) — one
	// slice of a large file split across cleaner threads (§V-C).
	JobL0Range
	// JobFinalize cleans levels ≥ 1 after all of a split file's range
	// jobs completed.
	JobFinalize
)

// Job is one unit of work for the cleaner pool: one or more inodes to
// clean (more than one only with batched inode cleaning, §V-C).
type Job struct {
	Vol   *aggregate.Volume // nil for aggregate-level metafiles
	Files []*fs.File
	Dual  bool // assign VVBNs as well as VBNs (user files)
	Mode  JobMode
	Lo    block.FBN
	Hi    block.FBN
	group *splitGroup
}

// splitGroup coordinates the range jobs of one split file; when the last
// range job finishes, a finalize job for the upper tree levels is enqueued.
type splitGroup struct {
	remaining int
	vol       *aggregate.Volume
	file      *fs.File
	dual      bool
}

// PoolStats holds cumulative cleaner-pool counters.
type PoolStats struct {
	JobsRun        uint64
	BatchesRun     uint64
	BuffersCleaned uint64
	FilesSplit     uint64
	StageCommits   uint64
	Activations    uint64 // dynamic tuner thread activations
	Deactivations  uint64
}

// cleanerState is the per-thread context: the held buckets, free stages,
// and loose-accounting token.
type cleanerState struct {
	id   int
	t    *sim.Thread
	tok  *counters.Token
	phys *Bucket
	virt map[int]*VBucket
	// free stages (§IV-A last paragraph): old block numbers accumulate
	// here and are committed to the infrastructure when full.
	stagePhys []uint64
	stageVirt map[int][]uint64
	holding   bool
	engaged   sim.Duration // wall time spent processing jobs (tuner input)
}

// Pool is the set of inode-cleaner threads consuming the White Alligator
// API. Threads beyond the active count park; the dynamic tuner (§V-B)
// adjusts the active count every 50ms.
type Pool struct {
	s     *sim.Scheduler
	w     *waffinity.Scheduler
	h     *waffinity.Hierarchy
	in    *Infra
	opts  Options
	costs CostModel

	queueMu *sim.Mutex
	cond    *sim.WaitQueue
	queue   []*Job

	threads []*cleanerState
	activeN int

	inCP          bool
	pendingJobs   int
	resourcesHeld int
	idleCond      *sim.WaitQueue

	// phaseTime accumulates wall time spent inside cleaning phases; the
	// tuner normalizes cleaner utilization over it rather than over raw
	// wall time, so short CP bursts still expose a saturated cleaner.
	phaseTime sim.Duration

	stats PoolStats
}

// NewPool creates the cleaner pool with opts.MaxCleaners threads (all
// spawned immediately; the active count governs who works).
func NewPool(in *Infra, opts Options, costs CostModel) *Pool {
	p := &Pool{
		s: in.s, w: in.w, h: in.h, in: in, opts: opts, costs: costs,
		queueMu:  sim.NewMutex(in.s, "cleaner-queue"),
		cond:     sim.NewWaitQueue(in.s, "cleaner-queue-cond"),
		idleCond: sim.NewWaitQueue(in.s, "cleaner-idle"),
		activeN:  opts.InitialCleaners,
	}
	if p.activeN < 1 {
		p.activeN = 1
	}
	if p.activeN > opts.MaxCleaners {
		p.activeN = opts.MaxCleaners
	}
	for i := 0; i < opts.MaxCleaners; i++ {
		cs := &cleanerState{
			id:        i,
			tok:       in.Counters.NewToken(),
			virt:      make(map[int]*VBucket),
			stageVirt: make(map[int][]uint64),
		}
		p.threads = append(p.threads, cs)
		if !opts.CleanInSerialAffinity {
			cs.t = in.s.Go(fmt.Sprintf("cleaner-%d", i), sim.CatCleaner, func(t *sim.Thread) {
				cs.t = t
				p.threadLoop(cs)
			})
		}
	}
	return p
}

// Stats returns a snapshot of pool counters.
func (p *Pool) Stats() PoolStats { return p.stats }

// Active returns the current active cleaner-thread count.
func (p *Pool) Active() int { return p.activeN }

// SetActive adjusts the active thread count (used by the tuner and the
// static-thread-count experiments).
func (p *Pool) SetActive(n int) {
	if n < 1 {
		n = 1
	}
	if n > p.opts.MaxCleaners {
		n = p.opts.MaxCleaners
	}
	if n > p.activeN {
		p.stats.Activations += uint64(n - p.activeN)
	} else if n < p.activeN {
		p.stats.Deactivations += uint64(p.activeN - n)
	}
	p.activeN = n
	p.cond.Broadcast()
}

// CleanerBusy returns each thread's cumulative CPU time.
func (p *Pool) CleanerBusy() []sim.Duration {
	out := make([]sim.Duration, len(p.threads))
	for i, cs := range p.threads {
		if cs.t != nil {
			out[i] = cs.t.Busy()
		}
	}
	return out
}

// CleanerEngaged returns each thread's cumulative engaged wall time — time
// spent processing cleaning jobs, including waits for buckets. This is the
// utilization signal the dynamic tuner thresholds against: a cleaner that
// is engaged 90% of the time is the CP's critical path even if much of
// that is pipeline waiting.
func (p *Pool) CleanerEngaged() []sim.Duration {
	out := make([]sim.Duration, len(p.threads))
	for i, cs := range p.threads {
		out[i] = cs.engaged
	}
	return out
}

// BuildJobs converts a volume's frozen inode list into cleaning jobs,
// applying large-file splitting.
func (p *Pool) BuildJobs(vol *aggregate.Volume, files []*fs.File, dual bool) []*Job {
	var jobs []*Job
	for _, f := range files {
		l0 := len(f.FrozenLevel(0))
		if p.opts.SplitLargeFiles && l0 >= p.opts.SplitThreshold && p.opts.SplitJobs > 1 {
			p.stats.FilesSplit++
			g := &splitGroup{remaining: p.opts.SplitJobs, vol: vol, file: f, dual: dual}
			span := (f.Size() + block.FBN(p.opts.SplitJobs) - 1) / block.FBN(p.opts.SplitJobs)
			for j := 0; j < p.opts.SplitJobs; j++ {
				lo := block.FBN(j) * span
				hi := lo + span
				jobs = append(jobs, &Job{
					Vol: vol, Files: []*fs.File{f}, Dual: dual,
					Mode: JobL0Range, Lo: lo, Hi: hi, group: g,
				})
			}
			continue
		}
		jobs = append(jobs, &Job{Vol: vol, Files: []*fs.File{f}, Dual: dual, Mode: JobFull})
	}
	return jobs
}

// RunPhase enqueues jobs, lets the pool clean them, and blocks the calling
// (CP) thread until every job is done and every thread has returned its
// buckets, committed its stages, and flushed its token.
func (p *Pool) RunPhase(t *sim.Thread, jobs []*Job) {
	if len(jobs) == 0 {
		return
	}
	if p.opts.CleanInSerialAffinity {
		p.runPhaseSerial(t, jobs)
		return
	}
	p.queueMu.Lock(t)
	p.inCP = true
	p.queue = append(p.queue, jobs...)
	p.pendingJobs += len(jobs)
	p.queueMu.Unlock(t)
	p.cond.Broadcast()

	phaseStart := t.Now()
	p.queueMu.Lock(t)
	for p.pendingJobs > 0 || p.resourcesHeld > 0 {
		p.idleCond.WaitWith(t, p.queueMu)
	}
	p.inCP = false
	p.queueMu.Unlock(t)
	p.phaseTime += sim.Duration(t.Now() - phaseStart)
}

// PhaseTime returns cumulative wall time spent in cleaning phases.
func (p *Pool) PhaseTime() sim.Duration { return p.phaseTime }

// runPhaseSerial reproduces the pre-2008 design: each cleaning job runs as
// a message in the Serial affinity, excluding all other file system work.
func (p *Pool) runPhaseSerial(t *sim.Thread, jobs []*Job) {
	cs := p.threads[0]
	for _, job := range jobs {
		job := job
		p.w.Call(t, p.h.Serial, sim.CatCleaner, func(wt *sim.Thread) {
			old := cs.t
			cs.t = wt
			wt.Consume(p.costs.CleanerJob)
			p.runJob(cs, job)
			cs.t = old
		})
	}
	// Release resources from the CP thread's context.
	cs.t = t
	p.release(cs)
	cs.t = nil
}

// threadLoop is the body of one cleaner thread.
func (p *Pool) threadLoop(cs *cleanerState) {
	t := cs.t
	for {
		p.queueMu.Lock(t)
		var batch []*Job
		for {
			if cs.id < p.activeN && len(p.queue) > 0 {
				batch = p.takeBatch()
				break
			}
			// Nothing to do (or deactivated): release held resources
			// before parking so the CP can drain.
			if cs.holding {
				p.queueMu.Unlock(t)
				p.release(cs)
				p.queueMu.Lock(t)
				p.resourcesHeld--
				cs.holding = false
				if p.pendingJobs == 0 && p.resourcesHeld == 0 {
					p.idleCond.Broadcast()
				}
				continue // re-check the queue: it may have refilled
			}
			p.cond.WaitWith(t, p.queueMu)
			if p.costs.CleanerWake > 0 {
				// Thread management overhead: every wakeup costs CPU
				// whether or not there is work (§V-B's "increased thread
				// management overhead").
				p.queueMu.Unlock(t)
				t.Consume(p.costs.CleanerWake)
				p.queueMu.Lock(t)
			}
		}
		if !cs.holding {
			cs.holding = true
			p.resourcesHeld++
		}
		p.queueMu.Unlock(t)

		jobStart := t.Now()
		t.Consume(p.costs.CleanerJob)
		p.stats.BatchesRun++
		for _, job := range batch {
			p.runJob(cs, job)
		}
		cs.engaged += sim.Duration(t.Now() - jobStart)
		if tr := t.Tracer(); tr != nil {
			tr.SpanArg(obs.PidThreads, t.TrackID(), "cleaner", "clean batch",
				int64(jobStart), int64(t.Now()), int64(len(batch)))
			tr.Observe("cleaner.batch", int64(t.Now()-jobStart))
		}

		p.queueMu.Lock(t)
		p.pendingJobs -= len(batch)
		p.stats.JobsRun += uint64(len(batch))
		if p.pendingJobs == 0 && p.resourcesHeld == 0 {
			p.idleCond.Broadcast()
		}
		p.queueMu.Unlock(t)
	}
}

// takeBatch pops the next job — and, with batched inode cleaning, up to
// BatchSize-1 further small jobs — from the queue. Caller holds queueMu.
func (p *Pool) takeBatch() []*Job {
	batch := []*Job{p.queue[0]}
	p.queue = p.queue[1:]
	if !p.opts.BatchedCleaning || !p.smallJob(batch[0]) {
		return batch
	}
	for len(batch) < p.opts.BatchSize && len(p.queue) > 0 && p.smallJob(p.queue[0]) {
		batch = append(batch, p.queue[0])
		p.queue = p.queue[1:]
	}
	return batch
}

// smallJob reports whether a job qualifies for batching: a full-file job
// with few frozen buffers.
func (p *Pool) smallJob(j *Job) bool {
	if j.Mode != JobFull || len(j.Files) != 1 {
		return false
	}
	return j.Files[0].FrozenCount() <= p.opts.BatchBufferLimit
}

// runJob cleans one job's files.
func (p *Pool) runJob(cs *cleanerState, job *Job) {
	for _, f := range job.Files {
		p.cleanFile(cs, job, f)
	}
	if job.group != nil {
		job.group.remaining--
		if job.group.remaining == 0 {
			fin := &Job{
				Vol: job.group.vol, Files: []*fs.File{job.group.file},
				Dual: job.group.dual, Mode: JobFinalize,
			}
			p.queueMu.Lock(cs.t)
			p.queue = append(p.queue, fin)
			p.pendingJobs++
			p.queueMu.Unlock(cs.t)
			p.cond.Signal()
		}
	}
}

// cleanFile assigns locations to a file's frozen buffers bottom-up,
// enqueues their CP images to tetrises, and stages the freed old locations
// — the USE step of Fig 2, repeated per dirty buffer.
func (p *Pool) cleanFile(cs *cleanerState, job *Job, f *fs.File) {
	t := cs.t
	geo := p.in.a.Geometry()
	loLevel, hiLevel := 0, f.Height()
	switch job.Mode {
	case JobL0Range:
		hiLevel = 0
	case JobFinalize:
		loLevel = 1
	}
	for level := loLevel; level <= hiLevel; level++ {
		for _, b := range f.FrozenLevel(level) {
			if job.Mode == JobL0Range && (b.FBN() < job.Lo || b.FBN() >= job.Hi) {
				continue
			}
			t.Consume(p.costs.CleanerPerBuffer)

			// USE: one VBN from the physical bucket.
			for cs.phys == nil || cs.phys.Remaining() == 0 {
				if cs.phys != nil {
					p.in.PutBucket(t, cs.phys)
				}
				cs.phys = p.in.GetBucket(t)
			}
			vbn := cs.phys.vbns[cs.phys.next]
			cs.phys.next++
			if tr := t.Tracer(); tr != nil {
				tr.InstantArg(obs.PidThreads, t.TrackID(), "alloc", "USE",
					int64(t.Now()), int64(vbn))
			}

			// And a VVBN from the volume bucket for dual-addressed files.
			vvbn := block.InvalidVVBN
			if job.Dual {
				vb := cs.virt[job.Vol.ID()]
				for vb == nil || vb.Remaining() == 0 {
					if vb != nil {
						p.in.PutVBucket(t, vb)
					}
					vb = p.in.GetVBucket(t, job.Vol)
					cs.virt[job.Vol.ID()] = vb
				}
				vvbn = vb.use(vbn)
			}

			img := b.CPImage()
			oldVVBN, oldVBN := f.CleanChild(b, vvbn, vbn)
			_, drive, dbn := geo.Locate(vbn)
			cs.phys.tetris.add(drive, dbn, img)
			p.stats.BuffersCleaned++

			// Loose accounting: allocation consumed a free block.
			p.in.CleanerCounterAdd(t, cs.tok, p.in.AggrFreeID(), -1)
			if job.Dual {
				p.in.CleanerCounterAdd(t, cs.tok, p.in.VolFreeID(job.Vol.ID()), -1)
			}

			// Stage the frees of the overwritten locations. A snapshot-held
			// old VVBN (summary map) keeps its physical home: the VVBN
			// leaves the active map but the pvbn stays allocated for the
			// snapshot image until the last holding snapshot is deleted.
			snapHeld := job.Dual && oldVVBN != block.InvalidVVBN &&
				job.Vol.Summary.IsSet(uint64(oldVVBN))
			if oldVBN != block.InvalidVBN && oldVBN != 0 && !snapHeld {
				t.Consume(p.costs.StagePush)
				cs.stagePhys = append(cs.stagePhys, uint64(oldVBN))
				p.in.CleanerCounterAdd(t, cs.tok, p.in.AggrFreeID(), 1)
				if len(cs.stagePhys) >= p.opts.StageSize {
					p.commitStagePhys(cs)
				}
			}
			if job.Dual && oldVVBN != block.InvalidVVBN {
				t.Consume(p.costs.StagePush)
				vid := job.Vol.ID()
				cs.stageVirt[vid] = append(cs.stageVirt[vid], uint64(oldVVBN))
				// The volume counter tracks allocatable VVBNs (!active &&
				// !summary): a snapshot-held overwrite leaves the active
				// map but stays pinned by its summary bit, so it is not
				// yet allocatable — its credit comes from the snapshot
				// reclaim that drops the last holder.
				if !snapHeld {
					p.in.CleanerCounterAdd(t, cs.tok, p.in.VolFreeID(vid), 1)
				}
				if len(cs.stageVirt[vid]) >= p.opts.StageSize {
					p.commitStageVirt(cs, vid)
				}
			}
		}
	}
}

func (p *Pool) commitStagePhys(cs *cleanerState) {
	if len(cs.stagePhys) == 0 {
		return
	}
	p.in.CommitFrees(cs.t, -1, cs.stagePhys)
	cs.stagePhys = nil
	p.stats.StageCommits++
}

func (p *Pool) commitStageVirt(cs *cleanerState, vid int) {
	if len(cs.stageVirt[vid]) == 0 {
		return
	}
	p.in.CommitFrees(cs.t, vid, cs.stageVirt[vid])
	delete(cs.stageVirt, vid)
	p.stats.StageCommits++
}

// release returns every resource the thread holds: buckets go back via
// PUT, stages commit, and the counter token flushes.
func (p *Pool) release(cs *cleanerState) {
	t := cs.t
	if cs.phys != nil {
		p.in.PutBucket(t, cs.phys)
		cs.phys = nil
	}
	for _, vid := range sortedKeys(cs.virt) {
		p.in.PutVBucket(t, cs.virt[vid])
		delete(cs.virt, vid)
	}
	p.commitStagePhys(cs)
	for _, vid := range sortedKeys(cs.stageVirt) {
		p.commitStageVirt(cs, vid)
	}
	p.in.FlushToken(t, cs.tok)
}

// sortedKeys returns map keys in ascending order, keeping event generation
// deterministic.
func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
