package core

import (
	"wafl/internal/sim"
)

// TunerConfig parameterizes the dynamic cleaner-thread tuner of §V-B.
type TunerConfig struct {
	Interval   sim.Duration // optimization period ("every 50ms")
	ActivateAt float64      // add a thread above this utilization (0.9)
	ParkAt     float64      // remove a thread below this utilization (0.5)
}

// DefaultTuner matches the paper's parameters.
func DefaultTuner() TunerConfig {
	return TunerConfig{
		Interval:   50 * sim.Millisecond,
		ActivateAt: 0.90,
		ParkAt:     0.50,
	}
}

// TunerSample records one tuning decision, for the Fig 9 style traces.
type TunerSample struct {
	At          sim.Time
	Utilization float64
	Active      int
}

// Tuner dynamically adjusts the number of active cleaner threads based on
// their observed utilization: heavily loaded cleaning gets more threads;
// light cleaning sheds them to avoid lock contention, thread management
// overhead, and CPU stolen from other work (§V-B).
type Tuner struct {
	pool *Pool
	cfg  TunerConfig

	prevBusy  []sim.Duration
	prevAt    sim.Time
	prevPhase sim.Duration

	// History of decisions (bounded) for inspection.
	Samples []TunerSample
	stopped bool
}

// StartTuner launches the tuner loop as a simulated thread.
func StartTuner(pool *Pool, cfg TunerConfig) *Tuner {
	tu := &Tuner{pool: pool, cfg: cfg}
	tu.prevBusy = pool.CleanerEngaged()
	tu.prevPhase = pool.PhaseTime()
	pool.s.Go("cleaner-tuner", sim.CatOther, func(t *sim.Thread) {
		tu.prevAt = t.Now()
		for !tu.stopped {
			t.Sleep(cfg.Interval)
			tu.tick(t.Now())
		}
	})
	return tu
}

// Stop ends the tuner loop after its current sleep.
func (tu *Tuner) Stop() { tu.stopped = true }

// tick computes the active threads' utilization over the window — engaged
// time normalized by the time cleaning phases were actually running, so a
// saturated cleaner shows as ~1.0 even when CPs are short bursts — and
// adjusts the active count by at most one.
func (tu *Tuner) tick(now sim.Time) {
	busy := tu.pool.CleanerEngaged()
	window := sim.Duration(now - tu.prevAt)
	if window <= 0 {
		return
	}
	phase := tu.pool.PhaseTime()
	dPhase := phase - tu.prevPhase
	active := tu.pool.Active()
	var used sim.Duration
	for i := 0; i < active && i < len(busy); i++ {
		d := busy[i]
		if i < len(tu.prevBusy) {
			d -= tu.prevBusy[i]
		}
		used += d
	}
	tu.prevBusy = busy
	tu.prevAt = now
	tu.prevPhase = phase

	if dPhase < window/20 {
		// Almost no cleaning happened: shed a thread.
		tu.pool.SetActive(active - 1)
		tu.sample(now, 0)
		return
	}
	util := float64(used) / (float64(dPhase) * float64(active))
	if util > 1 {
		util = 1
	}
	switch {
	case util > tu.cfg.ActivateAt:
		tu.pool.SetActive(active + 1)
	case util < tu.cfg.ParkAt:
		tu.pool.SetActive(active - 1)
	}
	tu.sample(now, util)
}

func (tu *Tuner) sample(now sim.Time, util float64) {
	if len(tu.Samples) < 100000 {
		tu.Samples = append(tu.Samples, TunerSample{At: now, Utilization: util, Active: tu.pool.Active()})
	}
}
