package core

import (
	"fmt"

	"wafl/internal/aggregate"
	"wafl/internal/bitmap"
	"wafl/internal/block"
	"wafl/internal/counters"
	"wafl/internal/obs"
	"wafl/internal/sim"
	"wafl/internal/storage"
	"wafl/internal/waffinity"
)

// InfraStats holds cumulative infrastructure activity counters.
type InfraStats struct {
	BucketsFilled     uint64
	BucketsCommitted  uint64
	VBucketsFilled    uint64
	VBucketsCommitted uint64
	StageCommitMsgs   uint64 // free-commit messages (one per metafile block)
	FreesCommitted    uint64
	TetrisesSent      uint64
	TetrisBlocks      uint64
	FillWords         uint64 // bitmap words scanned (physical fills)
	VFillWords        uint64 // bitmap words scanned (volume fills)
	GetWaits          uint64 // GET calls that blocked on an empty cache
	WindowsSkipped    uint64 // windows with no free blocks at all
}

// windowState tracks a RAID group's fill cursor.
type windowState struct {
	aa     int       // current Allocation Area (-1 before first selection)
	cursor block.DBN // next window start within the AA
}

// windowFill coordinates the per-drive fill messages of one window.
type windowFill struct {
	tetris  *Tetris
	buckets []*Bucket
	pending int
}

// volState is the per-volume virtual allocation state.
type volState struct {
	vol          *aggregate.Volume
	cache        fifo[*VBucket]
	cond         *sim.WaitQueue
	region       int    // current vAA (one activemap block of VVBNs), -1 initially
	cursor       uint64 // next vvbn to scan within the region
	usedRegions  map[int]bool
	pendingFills int
	pendingFree  *bitset
	reserved     *bitset
	freeCounter  counters.ID

	// scanBuf is the reusable FindFree scratch buffer for this volume's
	// fills. Safe to share across fill messages: the cooperative scheduler
	// never switches threads inside a scan, and the raw candidates are
	// copied out before the next one starts.
	scanBuf []uint64
}

// Infra is the White Alligator infrastructure: it owns the bucket cache and
// used-bucket queue, performs every allocation-metafile read and write as
// Waffinity messages, and exports the GET/USE/PUT API to cleaner threads
// (paper §IV-A, Fig 2).
type Infra struct {
	s     *sim.Scheduler
	w     *waffinity.Scheduler
	h     *waffinity.Hierarchy
	a     *aggregate.Aggregate
	opts  Options
	costs CostModel

	// Bucket cache: the lock-protected list of available buckets.
	cacheMu   *sim.Mutex
	cacheCond *sim.WaitQueue
	cache     fifo[*Bucket]

	// Used-bucket queue: PUT parks buckets here until the infrastructure
	// message that commits them runs.
	usedQueue fifo[*Bucket]

	// scanBuf is the reusable FindFree scratch for physical fills (see
	// volState.scanBuf).
	scanBuf []uint64

	win         []windowState
	usedAAs     []map[int]bool
	rrNext      []int
	serialGroup int     // round-robin group cursor for inline (serial-mode) fills
	pendingFree *bitset // physical blocks freed in the running CP
	reserved    *bitset // physical blocks in filled, uncommitted buckets

	vols map[int]*volState

	metaCursor uint64 // physical scan cursor for metafile allocations

	// Global counters with loose accounting (§III-C).
	Counters    *counters.Global
	counterMu   *sim.Mutex // the lock the LooseAccounting=false ablation contends on
	aggrFreeCtr counters.ID

	pendingOps int // outstanding infra messages (fills + commits)
	pendingIO  int // outstanding storage I/Os (tetris + metafile writes)
	drainCond  *sim.WaitQueue
	draining   bool
	inCP       bool

	obsGroupTid []int32 // interned per-group trace track id + 1; 0 = unset

	stats InfraStats
}

// groupTrack returns the trace track for a RAID group's window/tetris
// lifecycle events, interning it on first use.
func (in *Infra) groupTrack(tr *obs.Tracer, group int) int32 {
	if in.obsGroupTid == nil {
		in.obsGroupTid = make([]int32, in.a.Groups())
	}
	if in.obsGroupTid[group] == 0 {
		in.obsGroupTid[group] = tr.Track(obs.PidInfra, fmt.Sprintf("group%d", group)) + 1
	}
	return in.obsGroupTid[group] - 1
}

// NewInfra builds the infrastructure over an aggregate and a Waffinity
// hierarchy (which must contain at least one aggregate subtree).
func NewInfra(w *waffinity.Scheduler, h *waffinity.Hierarchy, a *aggregate.Aggregate, opts Options, costs CostModel) *Infra {
	s := a.Sched()
	in := &Infra{
		s: s, w: w, h: h, a: a, opts: opts, costs: costs,
		cacheMu:     sim.NewMutex(s, "bucket-cache"),
		cacheCond:   sim.NewWaitQueue(s, "bucket-cache-cond"),
		pendingFree: newBitset(a.Geometry().TotalBlocks()),
		reserved:    newBitset(a.Geometry().TotalBlocks()),
		vols:        make(map[int]*volState),
		counterMu:   sim.NewMutex(s, "global-counters"),
		drainCond:   sim.NewWaitQueue(s, "infra-drain"),
		Counters:    counters.NewGlobal(),
	}
	in.aggrFreeCtr = in.Counters.Register("aggr.free")
	in.Counters.Add(in.aggrFreeCtr, int64(a.TotalFree()))
	for gi := 0; gi < a.Groups(); gi++ {
		in.win = append(in.win, windowState{aa: -1})
		in.usedAAs = append(in.usedAAs, make(map[int]bool))
		in.rrNext = append(in.rrNext, 0)
	}
	for _, v := range a.Volumes() {
		vs := &volState{
			vol:         v,
			cond:        sim.NewWaitQueue(s, fmt.Sprintf("vol%d-vbucket-cond", v.ID())),
			region:      -1,
			usedRegions: make(map[int]bool),
			pendingFree: newBitset(v.VVBNBlocks()),
			reserved:    newBitset(v.VVBNBlocks()),
		}
		vs.freeCounter = in.Counters.Register(fmt.Sprintf("vol%d.free", v.ID()))
		// The volume counter tracks *allocatable* VVBNs — free means
		// !active && !summary, the same predicate the allocator's
		// findFreeVirt obeys — so snapshot-held blocks are excluded from
		// the initial count just as they are from every later credit.
		free, _ := v.Activemap.CountFreeNotIn(v.Summary, 0, v.VVBNBlocks())
		in.Counters.Add(vs.freeCounter, int64(free))
		in.vols[v.ID()] = vs
	}
	// Observe every physical free so same-CP reuse is blocked.
	prev := a.Activemap.OnChange
	a.Activemap.OnChange = func(bn uint64, used bool) {
		if prev != nil {
			prev(bn, used)
		}
		if !used && in.inCP {
			in.pendingFree.set(bn)
		}
	}
	for _, vs := range in.vols {
		vs := vs
		// Chain, don't clobber: the volume's free-space index is already
		// hooked here and must keep seeing every transition.
		vprev := vs.vol.Activemap.OnChange
		vs.vol.Activemap.OnChange = func(bn uint64, used bool) {
			if vprev != nil {
				vprev(bn, used)
			}
			if !used && in.inCP {
				vs.pendingFree.set(bn)
			}
		}
	}
	return in
}

// Stats returns a snapshot of infrastructure counters.
func (in *Infra) Stats() InfraStats { return in.stats }

// AggrFree returns the loosely-accounted global free-block counter.
func (in *Infra) AggrFree() int64 { return in.Counters.Get(in.aggrFreeCtr) }

// VolFree returns the loosely-accounted allocatable-VVBN counter of volID
// (free = !active && !summary; snapshot-held blocks excluded).
func (in *Infra) VolFree(volID int) int64 { return in.Counters.Get(in.vols[volID].freeCounter) }

// aggrRangeAff returns the affinity for aggregate-metafile work on block
// fbn: a Range affinity when the infrastructure is parallelized. When
// serialized (the §V-A instrumented baseline, modelling the pre-White-
// Alligator design where one thread owned all metafile access), every
// infrastructure message — aggregate and volume alike — funnels through
// the single AggrVBN affinity.
func (in *Infra) aggrRangeAff(fbn block.FBN) *waffinity.Affinity {
	ag := in.h.Aggrs[0]
	if !in.opts.InfraParallel || len(ag.Ranges) == 0 {
		return ag.AggrVBN
	}
	return ag.Ranges[int(fbn)%len(ag.Ranges)]
}

// volRangeAff is the volume-metafile analogue of aggrRangeAff.
func (in *Infra) volRangeAff(volID int, fbn block.FBN) *waffinity.Affinity {
	if !in.opts.InfraParallel {
		return in.h.Aggrs[0].AggrVBN // global metafile serialization
	}
	vol := in.h.Aggrs[0].Volumes[volID]
	if len(vol.Ranges) == 0 {
		return vol.VolVBN
	}
	return vol.Ranges[int(fbn)%len(vol.Ranges)]
}

// findFreePhys scans the activemap over [lo, hi) for up to max allocatable
// VBNs: free on disk, not freed in this CP, not reserved by another bucket.
// It keeps scanning until it has max candidates or the range is exhausted,
// and returns the candidates and the number of bitmap words scanned.
func (in *Infra) findFreePhys(lo, hi uint64, max int) ([]block.VBN, int) {
	out := make([]block.VBN, 0, max)
	words := 0
	for lo < hi && len(out) < max {
		raw, w := in.a.Activemap.FindFree(in.scanBuf[:0], lo, hi, max)
		in.scanBuf = raw // retain grown capacity for the next scan
		words += w
		if len(raw) == 0 {
			break
		}
		for _, bn := range raw {
			if len(out) == max {
				break
			}
			if in.pendingFree.test(bn) || in.reserved.test(bn) {
				continue
			}
			out = append(out, block.VBN(bn))
		}
		lo = raw[len(raw)-1] + 1
	}
	return out, words
}

// selectAA picks the next Allocation Area for a group according to the
// configured policy, excluding AAs already used in this CP.
func (in *Infra) selectAA(group int) int {
	geo := in.a.Geometry()
	used := in.usedAAs[group]
	switch in.opts.AASelection {
	case AAFirstFit:
		for aa := 0; aa < geo.AAsPerGroup(); aa++ {
			if !used[aa] && in.a.AAFree(group, aa) > 0 {
				return aa
			}
		}
	case AARoundRobin:
		n := geo.AAsPerGroup()
		for k := 0; k < n; k++ {
			aa := (in.rrNext[group] + k) % n
			if !used[aa] && in.a.AAFree(group, aa) > 0 {
				in.rrNext[group] = (aa + 1) % n
				return aa
			}
		}
	default: // AAMostFree
		best, bestFree := -1, int64(0)
		for aa := 0; aa < geo.AAsPerGroup(); aa++ {
			if used[aa] {
				continue
			}
			if f := in.a.AAFree(group, aa); f > bestFree {
				best, bestFree = aa, f
			}
		}
		return best
	}
	return -1
}

// nextWindow advances the group's fill cursor (selecting a new AA when the
// current one is exhausted) and returns the next chunk-deep window.
func (in *Infra) nextWindow(group int) (start, depth block.DBN) {
	geo := in.a.Geometry()
	ws := &in.win[group]
	if ws.aa < 0 || ws.cursor >= block.DBN(ws.aa+1)*geo.AAStripes {
		aa := in.selectAA(group)
		if aa < 0 {
			// All AAs used this CP: lift the exclusion and re-pick
			// (reservation and pending-free filtering keep reuse safe).
			in.usedAAs[group] = make(map[int]bool)
			aa = in.selectAA(group)
		}
		if aa < 0 {
			panic(fmt.Sprintf("core: group %d out of space", group))
		}
		ws.aa = aa
		in.usedAAs[group][aa] = true
		ws.cursor, _ = geo.AARange(aa)
		if ws.cursor == 0 {
			ws.cursor = 1 // stripe 0 is reserved for the superblock
		}
	}
	start = ws.cursor
	depth = block.DBN(in.opts.ChunkBlocks)
	if end := block.DBN(ws.aa+1) * geo.AAStripes; start+depth > end {
		depth = end - start
	}
	ws.cursor += depth
	return start, depth
}

// fillBucket scans one drive's slice of a window and builds its bucket,
// charging the scan to the executing thread.
func (in *Infra) fillBucket(t *sim.Thread, group, drive int, start, depth block.DBN, te *Tetris) *Bucket {
	geo := in.a.Geometry()
	lo := uint64(geo.VBNOf(group, drive, start))
	hi := lo + uint64(depth)
	fillStart := t.Now()
	vbns, words := in.findFreePhys(lo, hi, int(depth))
	in.stats.FillWords += uint64(words)
	t.ConsumeAs(sim.CatInfra, in.costs.FillFixed+sim.Duration(words)*in.costs.FillPerWord)
	if tr := t.Tracer(); tr != nil {
		tr.SpanArg(obs.PidThreads, t.TrackID(), "infra", "fill bucket",
			int64(fillStart), int64(t.Now()), int64(len(vbns)))
	}
	for _, vbn := range vbns {
		in.reserved.set(uint64(vbn))
	}
	return &Bucket{group: group, drive: drive, window: start, vbns: vbns, tetris: te}
}

// fillWindowInline fills a whole window synchronously on the calling
// thread — the pre-White-Alligator mode where the (single, Serial-affinity)
// cleaner reads the allocation bitmaps itself with exclusive access.
func (in *Infra) fillWindowInline(t *sim.Thread, group int) {
	start, depth := in.nextWindow(group)
	drives := in.a.Geometry().DataDrives
	te := newTetris(group, start, drives)
	nonEmpty := 0
	for d := 0; d < drives; d++ {
		b := in.fillBucket(t, group, d, start, depth, te)
		if len(b.vbns) > 0 {
			in.cache.push(b)
			in.stats.BucketsFilled++
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		in.stats.WindowsSkipped++
		return
	}
	te.outstanding = nonEmpty
	te.initialBuckets = nonEmpty
}

// requestWindow begins filling the next window of a group, sending one fill
// message per data drive into the Range affinity covering that drive's
// bitmap region.
func (in *Infra) requestWindow(group int) {
	geo := in.a.Geometry()
	start, depth := in.nextWindow(group)
	drives := geo.DataDrives
	if tr := in.s.Tracer(); tr != nil {
		tr.InstantArg(obs.PidInfra, in.groupTrack(tr, group), "window", "window request",
			int64(in.s.Now()), int64(start))
	}
	wf := &windowFill{
		tetris:  newTetris(group, start, drives),
		buckets: make([]*Bucket, drives),
		pending: drives,
	}
	for d := 0; d < drives; d++ {
		d := d
		fbn := bitmap.BlockOf(uint64(geo.VBNOf(group, d, start)))
		in.pendingOps++
		in.w.Send(in.aggrRangeAff(fbn), sim.CatInfra, func(t *sim.Thread) {
			b := in.fillBucket(t, group, d, start, depth, wf.tetris)
			wf.buckets[d] = b
			wf.pending--
			if !in.opts.EqualProgress {
				// Ablation: insert each bucket as soon as it fills, with
				// no synchronized whole-window insertion. Drives fall out
				// of lockstep and some idle while others queue.
				in.installBucketEarly(t, wf, b)
				return
			}
			if wf.pending == 0 {
				in.installWindow(t, wf)
			}
		}, func() { in.opDone() })
	}
}

// installBucketEarly is the EqualProgress=false path: one bucket goes
// straight to the cache. Tetris accounting still works — outstanding is
// incremented per inserted bucket — and the window refills once every
// drive's fill has landed (or been dropped).
func (in *Infra) installBucketEarly(t *sim.Thread, wf *windowFill, b *Bucket) {
	if in.draining || !in.inCP {
		for _, vbn := range b.vbns {
			in.reserved.clear(uint64(vbn))
		}
		return
	}
	if len(b.vbns) > 0 {
		wf.tetris.outstanding++
		wf.tetris.initialBuckets++
		in.cacheMu.Lock(t)
		in.cache.push(b)
		in.cacheMu.Unlock(t)
		in.stats.BucketsFilled++
		in.cacheCond.Signal()
	}
	if wf.pending == 0 && wf.tetris.initialBuckets == 0 {
		in.stats.WindowsSkipped++
		in.requestWindow(wf.tetris.group)
	}
}

// installWindow places a completed window's buckets into the bucket cache.
// With EqualProgress (the paper's synchronized insertion) all buckets of
// the window land together; the ablation inserts them as they come.
func (in *Infra) installWindow(t *sim.Thread, wf *windowFill) {
	if in.draining || !in.inCP {
		// The CP is quiescing: a bucket inserted now would outlive the
		// reservation reset at EndCP and collide with the next CP's
		// fills. Release the reservations and drop the window.
		for _, b := range wf.buckets {
			if b == nil {
				continue
			}
			for _, vbn := range b.vbns {
				in.reserved.clear(uint64(vbn))
			}
		}
		return
	}
	nonEmpty := 0
	for _, b := range wf.buckets {
		if b != nil && len(b.vbns) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		in.stats.WindowsSkipped++
		in.requestWindow(wf.tetris.group)
		return
	}
	wf.tetris.outstanding = nonEmpty
	wf.tetris.initialBuckets = nonEmpty
	if tr := t.Tracer(); tr != nil {
		tr.InstantArg(obs.PidInfra, in.groupTrack(tr, wf.tetris.group), "window", "window install",
			int64(t.Now()), int64(nonEmpty))
	}
	in.cacheMu.Lock(t)
	for _, b := range wf.buckets {
		if b != nil && len(b.vbns) > 0 {
			in.cache.push(b)
			in.stats.BucketsFilled++
		}
	}
	in.cacheMu.Unlock(t)
	for i := 0; i < nonEmpty; i++ {
		in.cacheCond.Signal()
	}
}

// GetBucket removes and returns the next available bucket, blocking on the
// bucket cache until the infrastructure has one ready. In the pre-White-
// Alligator serial mode the caller fills the cache itself, inline.
func (in *Infra) GetBucket(t *sim.Thread) *Bucket {
	t.Consume(in.costs.BucketOp)
	getStart := t.Now()
	in.cacheMu.Lock(t)
	if in.opts.CleanInSerialAffinity {
		for in.cache.len() == 0 {
			in.fillWindowInline(t, in.serialGroup)
			in.serialGroup = (in.serialGroup + 1) % in.a.Groups()
		}
	}
	waited := false
	for in.cache.len() == 0 {
		in.stats.GetWaits++
		waited = true
		in.cacheCond.WaitWith(t, in.cacheMu)
	}
	b := in.cache.pop()
	in.cacheMu.Unlock(t)
	if tr := t.Tracer(); tr != nil {
		if waited {
			tr.Span(obs.PidThreads, t.TrackID(), "alloc", "GET wait", int64(getStart), int64(t.Now()))
		}
		tr.Observe("infra.get_wait", int64(t.Now()-getStart))
	}
	return b
}

// PutBucket returns a bucket whose VBNs have been consumed (or that the
// cleaner no longer needs): the bucket joins the used queue and a commit
// message updates the allocation metafiles; if it was the window's last
// outstanding bucket, the tetris I/O is built and sent to RAID.
func (in *Infra) PutBucket(t *sim.Thread, b *Bucket) {
	t.Consume(in.costs.BucketOp)
	if tr := t.Tracer(); tr != nil {
		tr.InstantArg(obs.PidThreads, t.TrackID(), "alloc", "PUT bucket",
			int64(t.Now()), int64(b.next))
	}
	te := b.tetris
	te.outstanding--
	if te.outstanding == 0 && te.blocks > 0 {
		in.sendTetris(t, te)
	}
	if in.opts.CleanInSerialAffinity {
		// Exclusive-access mode: apply the commit inline.
		in.commitBucketBody(t, b)
		return
	}
	in.usedQueue.push(b)
	in.pendingOps++
	fbn := bitmap.BlockOf(uint64(in.a.Geometry().VBNOf(b.group, b.drive, b.window)))
	in.w.Send(in.aggrRangeAff(fbn), sim.CatInfra, func(wt *sim.Thread) {
		in.commitBucket(wt)
	}, func() { in.opDone() })
}

// commitBucket pops the oldest used bucket and applies its allocations to
// the activemap.
func (in *Infra) commitBucket(t *sim.Thread) {
	if in.usedQueue.len() == 0 {
		return
	}
	in.commitBucketBody(t, in.usedQueue.pop())
}

// commitBucketBody applies one bucket's allocations to the activemap.
func (in *Infra) commitBucketBody(t *sim.Thread, b *Bucket) {
	used := b.Used()
	blocks := distinctAmapBlocks(used)
	t.ConsumeAs(sim.CatInfra, sim.Duration(blocks)*in.costs.CommitPerBlock+sim.Duration(len(used))*in.costs.CommitPerBit)
	tr := in.s.Tracer()
	for _, vbn := range used {
		if in.a.Activemap.IsSet(uint64(vbn)) {
			panic(fmt.Sprintf("core: double allocation of %v committing bucket group=%d drive=%d window=%d (reserved=%v pendingFree=%v) last setter: %s",
				vbn, b.group, b.drive, b.window, in.reserved.test(uint64(vbn)), in.pendingFree.test(uint64(vbn)), tr.BlockNote(uint64(vbn))))
		}
		tr.NoteBlock(uint64(vbn), "commitBucket g=%d d=%d win=%d cp=%d", b.group, b.drive, b.window, in.a.CPCount())
		in.a.Activemap.Set(uint64(vbn))
	}
	for _, vbn := range b.vbns {
		in.reserved.clear(uint64(vbn))
	}
	in.stats.BucketsCommitted++

	// Refill: when the whole window has been committed, fill the next one.
	te := b.tetris
	te.committedBuckets++
	if te.committedBuckets == cap0(te) && !in.draining && in.inCP {
		in.requestWindow(te.group)
	}
}

func cap0(te *Tetris) int { return te.initialBuckets }

// distinctAmapBlocks counts the distinct activemap blocks covering a VBN
// set — the number of metafile blocks a commit dirties.
func distinctAmapBlocks(vbns []block.VBN) int {
	n := 0
	last := block.FBN(^uint64(0))
	for _, v := range vbns {
		fbn := bitmap.BlockOf(uint64(v))
		if fbn != last {
			n++
			last = fbn
		}
	}
	return n
}

// sendTetris builds the window's write I/O and submits it to RAID,
// charging parity XOR to the RAID category.
func (in *Infra) sendTetris(t *sim.Thread, te *Tetris) {
	t.Consume(in.costs.TetrisSend)
	in.stats.TetrisesSent++
	in.stats.TetrisBlocks += uint64(te.blocks)
	if tr := t.Tracer(); tr != nil {
		tr.InstantArg(obs.PidInfra, in.groupTrack(tr, te.group), "tetris", "tetris send",
			int64(t.Now()), int64(te.blocks))
		tr.Observe("infra.tetris_blocks", int64(te.blocks))
	}
	in.pendingIO++
	writes := te.perDrive
	// Reset so a bucket inserted into this window later (the
	// EqualProgress=false ablation) accumulates a fresh, smaller I/O
	// instead of resending these blocks.
	te.perDrive = make([][]storage.WriteReq, len(writes))
	te.blocks = 0
	res := in.a.Group(te.group).Write(writes, in.costs.ParityPerBlock, func() {
		in.ioDone()
	})
	if res.ParityCPU > 0 {
		t.ConsumeAs(sim.CatRAID, res.ParityCPU)
	}
}

// AddIO registers an externally-submitted storage I/O (the CP engine's
// metafile writes) with the drain accounting.
func (in *Infra) AddIO() { in.pendingIO++ }

// IODone is the completion callback for AddIO.
func (in *Infra) IODone() { in.ioDone() }

func (in *Infra) ioDone() {
	in.pendingIO--
	if in.pendingIO == 0 {
		in.drainCond.Broadcast()
	}
}

func (in *Infra) opDone() {
	in.pendingOps--
	if in.pendingOps == 0 {
		in.drainCond.Broadcast()
	}
}
