package core

import (
	"fmt"
	"os"

	"wafl/internal/aggregate"
)

// setTrace records, for debugging double allocations, the last context that
// set each physical bit. Enabled with WAFL_TRACE=1 (the single-threaded
// simulation makes a plain map safe).
var setTrace map[uint64]string

func init() {
	if os.Getenv("WAFL_TRACE") != "" {
		setTrace = make(map[uint64]string)
		aggregate.AmapTrace = func(bn uint64) {
			setTrace[bn] = "amap flush plan"
		}
	}
}

func traceSet(bn uint64, format string, args ...any) {
	if setTrace != nil {
		setTrace[bn] = fmt.Sprintf(format, args...)
	}
}

func traceOf(bn uint64) string {
	if setTrace == nil {
		return "tracing off"
	}
	return setTrace[bn]
}
