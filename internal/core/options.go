package core

// AAPolicy selects how the infrastructure picks the next Allocation Area.
type AAPolicy int

// Allocation Area selection policies.
const (
	// AAMostFree is the paper's policy: the AA with the most free blocks,
	// maximizing full-stripe writes and contiguity (§IV-D).
	AAMostFree AAPolicy = iota
	// AAFirstFit takes the lowest AA with space — the ablation baseline.
	AAFirstFit
	// AARoundRobin cycles AAs regardless of occupancy.
	AARoundRobin
)

func (p AAPolicy) String() string {
	switch p {
	case AAMostFree:
		return "most-free"
	case AAFirstFit:
		return "first-fit"
	case AARoundRobin:
		return "round-robin"
	default:
		return "unknown"
	}
}

// Options configures the White Alligator allocator. The zero value is not
// usable; start from DefaultOptions.
type Options struct {
	// ChunkBlocks is the bucket size and tetris depth in blocks: the run
	// of consecutive DBNs a bucket covers on one drive. "Typically a
	// multiple of 64 blocks" (§IV-C). Setting it to 1 degenerates to
	// one-VBN-at-a-time allocation — legal, and the bucket-size ablation
	// measures what that costs.
	ChunkBlocks int

	// InfraParallel routes infrastructure messages to per-range Waffinity
	// affinities (true, the White Alligator design) or serializes them all
	// through the single per-aggregate/per-volume VBN affinity (false, the
	// pre-White-Alligator instrumented baseline of §V-A).
	InfraParallel bool

	// MaxCleaners is the cleaner-thread pool size.
	MaxCleaners int
	// InitialCleaners is how many start active (Dynamic adjusts it).
	InitialCleaners int
	// Dynamic enables the 50ms utilization-driven tuner of §V-B.
	Dynamic bool

	// CleanInSerialAffinity reproduces the pre-2008 design: inode cleaning
	// runs as messages in the Serial affinity, excluding all client work
	// (§III-C history). Used by the history example, not the main benches.
	CleanInSerialAffinity bool

	// BatchedCleaning packs up to BatchSize small inodes (few dirty
	// buffers each) into one cleaning job to amortize per-message
	// overhead (§V-C).
	BatchedCleaning bool
	BatchSize       int
	// BatchBufferLimit: only inodes with at most this many frozen buffers
	// are eligible for batching.
	BatchBufferLimit int

	// SplitLargeFiles lets multiple cleaner threads work on one inode by
	// carving its L0 range into SplitJobs jobs (§V-C, last paragraph).
	SplitLargeFiles bool
	SplitThreshold  int // minimum frozen L0 count to split
	SplitJobs       int

	// WindowsAhead is how many tetris windows per RAID group the
	// infrastructure keeps filled in the bucket cache.
	WindowsAhead int
	// VolBucketsReady is the per-volume target of ready virtual buckets.
	VolBucketsReady int

	// StageSize is the free-stage capacity before a commit message is
	// sent (in blocks).
	StageSize int

	// AASelection picks the Allocation Area policy.
	AASelection AAPolicy

	// EqualProgress inserts refilled buckets into the cache only as whole
	// drive sets (the paper's synchronized insertion, objective 3). When
	// false (ablation), each bucket is inserted as soon as it refills.
	EqualProgress bool

	// LooseAccounting stages counter updates in per-thread tokens flushed
	// in batches (§III-C). When false (ablation), every update takes the
	// global counter lock.
	LooseAccounting bool

	// HierarchicalFree drives volume region selection and bucket fills from
	// the incrementally maintained free-space index (per-vregion allocatable
	// counts plus the free-words summary bitmap), so fill cost scales with
	// blocks found instead of address space scanned. When false (ablation /
	// pre-change baseline), region selection recounts each region's full
	// span and fills grind word-by-word through activemap and summary.
	HierarchicalFree bool

	// ParallelCP fans the per-volume CP phases (freeze, zombie block walks,
	// snapshot capture, inode-record writes, snapdir rewrites) out across
	// the Waffinity Volume affinities instead of running them inline on the
	// cp-engine thread, shrinking the serial section that back-to-back
	// stalls wait on. When false (ablation / pre-change baseline), every
	// phase runs serially on the engine thread. Ignored (forced serial)
	// under CleanInSerialAffinity, whose whole point is the pre-2008
	// exclusive-CP design.
	ParallelCP bool

	// CloneSplitBatch bounds the number of still-live base blocks a clone
	// split rewrites per consistency point. The split is a background
	// block copy; the bound keeps any single CP's extra cleaning load —
	// and hence client NVRAM-stall exposure — fixed.
	CloneSplitBatch int
}

// DefaultOptions returns the standard White Alligator configuration.
func DefaultOptions() Options {
	return Options{
		ChunkBlocks:      64,
		InfraParallel:    true,
		MaxCleaners:      6,
		InitialCleaners:  4,
		Dynamic:          false,
		BatchedCleaning:  false,
		BatchSize:        8,
		BatchBufferLimit: 16,
		SplitLargeFiles:  true,
		SplitThreshold:   2048,
		SplitJobs:        4,
		WindowsAhead:     8,
		VolBucketsReady:  12,
		StageSize:        64,
		AASelection:      AAMostFree,
		CloneSplitBatch:  2048,
		EqualProgress:    true,
		LooseAccounting:  true,
		HierarchicalFree: true,
		ParallelCP:       true,
	}
}
