// Package core implements White Alligator, the paper's scalable write
// allocator (§IV): the infrastructure that builds buckets of free VBNs from
// allocation metafiles inside Hierarchical Waffinity, the GET/USE/PUT API
// consumed by a pool of parallel inode-cleaner threads, tetris write
// batching per RAID group, free-space stages, loose accounting, dynamic
// cleaner-thread tuning, and batched inode cleaning. The serialized
// baselines of §V-A (single cleaner thread, serialized infrastructure) are
// the same machinery with the parallelism knobs turned off, exactly like
// the paper's instrumented kernels.
package core

import "wafl/internal/sim"

// CostModel holds every simulated CPU service demand in the system. The
// values are calibrated so the simulated 20-core system reproduces the
// paper's bottleneck structure (see DESIGN.md §5); the workload-dependent
// *mix* of these costs (e.g. how many metafile blocks a commit touches) is
// emergent from the real data structures, not tuned per experiment.
type CostModel struct {
	// Client path.
	ClientOp       sim.Duration // protocol + message handling per op
	ClientPerBlock sim.Duration // NVRAM copy + buffer dirtying per 4K block

	// Waffinity scheduler.
	MsgDispatch sim.Duration // per-message dispatch overhead

	// Cleaner threads.
	CleanerJob       sim.Duration // per cleaning-message overhead (scan, setup)
	CleanerWake      sim.Duration // per thread wakeup (management overhead)
	CleanerPerBuffer sim.Duration // VBN+VVBN assignment, parent update, checksum
	BucketOp         sim.Duration // GET or PUT: lock + queue manipulation
	StagePush        sim.Duration // append one free to a stage
	TokenFlush       sim.Duration // apply a loose-accounting token
	CounterDirect    sim.Duration // one tightly-locked counter update (ablation)

	// Infrastructure (runs as Waffinity messages).
	FillPerWord    sim.Duration // scan one 64-bit bitmap word
	FillFixed      sim.Duration // fixed cost per bucket refill
	CommitPerBit   sim.Duration // set/clear one allocation bit
	CommitPerBlock sim.Duration // fixed cost per metafile block touched
	ContainerEntry sim.Duration // write one container-map entry

	// CP engine and I/O assembly.
	TetrisSend     sim.Duration // construct and submit one tetris I/O
	ParityPerBlock sim.Duration // XOR one block (charged to CatRAID)
	RecordWrite    sim.Duration // serialize one inode record
	CPPerInode     sim.Duration // freeze/setup per dirty inode
}

// DefaultCosts returns the calibrated cost model.
func DefaultCosts() CostModel {
	return CostModel{
		ClientOp:       70 * sim.Microsecond,
		ClientPerBlock: 500 * sim.Nanosecond,

		MsgDispatch: 500 * sim.Nanosecond,

		CleanerJob:       15 * sim.Microsecond,
		CleanerWake:      3 * sim.Microsecond,
		CleanerPerBuffer: 2500 * sim.Nanosecond,
		BucketOp:         1500 * sim.Nanosecond,
		StagePush:        150 * sim.Nanosecond,
		TokenFlush:       1 * sim.Microsecond,
		CounterDirect:    400 * sim.Nanosecond,

		FillPerWord:    160 * sim.Nanosecond,
		FillFixed:      9 * sim.Microsecond,
		CommitPerBit:   250 * sim.Nanosecond,
		CommitPerBlock: 6600 * sim.Nanosecond,
		ContainerEntry: 185 * sim.Nanosecond,

		TetrisSend:     4 * sim.Microsecond,
		ParityPerBlock: 700 * sim.Nanosecond,
		RecordWrite:    1 * sim.Microsecond,
		CPPerInode:     2 * sim.Microsecond,
	}
}
