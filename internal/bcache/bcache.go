// Package bcache is the sized buffer cache on the client read path: an LRU
// residency set over (volume, inode, file block) keys, capacity-bounded in
// 4 KiB blocks.
//
// The simulator keeps block *content* authoritative in the per-file
// in-memory trees (they are what consistency points clean and what
// verification reads), so the cache tracks residency rather than bytes: a
// key present in the cache means the block is memory-resident and a client
// read of it pays no media I/O; a key absent means the read is charged a
// timed drive read and then inserted. Writes insert their blocks too — a
// freshly written block is the hottest thing in a real buffer cache — so
// the working-set-vs-capacity regimes of CAWL fall out naturally: while the
// working set fits, everything hits after first touch; once it exceeds
// capacity, LRU eviction makes re-reads pay media latency again.
//
// All operations are O(1) (map plus intrusive doubly-linked LRU list) and
// deterministic: the map is only ever probed by key, never iterated —
// eviction order comes from the list alone.
package bcache

import "wafl/internal/block"

// Key names one cached block: member-local volume, member-local inode, and
// file block number.
type Key struct {
	Vol int
	Ino uint64
	FBN block.FBN
}

type entry struct {
	key        Key
	prev, next *entry
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Resident  int // blocks currently resident
}

// Cache is an LRU block-residency cache. Not safe for host-level
// concurrency; the simulation serializes all access.
type Cache struct {
	capacity int
	m        map[Key]*entry
	head     *entry // most recently used
	tail     *entry // least recently used

	hits, misses, evictions uint64
}

// New returns a cache holding at most capacity blocks. Capacity must be
// positive (a zero-capacity cache is expressed by not constructing one).
func New(capacity int) *Cache {
	if capacity < 1 {
		panic("bcache: capacity must be positive")
	}
	return &Cache{capacity: capacity, m: make(map[Key]*entry, capacity)}
}

// Capacity returns the configured block capacity.
func (c *Cache) Capacity() int { return c.capacity }

// Len returns the number of resident blocks.
func (c *Cache) Len() int { return len(c.m) }

// Stats returns the counter snapshot.
func (c *Cache) Stats() Stats {
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Resident: len(c.m)}
}

// unlink removes e from the LRU list.
func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used entry.
func (c *Cache) pushFront(e *entry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// Touch looks k up, counting a hit (and refreshing its recency) or a miss.
// A miss does not insert — the caller performs the media read first and
// then calls Insert, so a read that crashes mid-I/O never leaves a phantom
// resident block.
func (c *Cache) Touch(k Key) bool {
	if e, ok := c.m[k]; ok {
		c.hits++
		if c.head != e {
			c.unlink(e)
			c.pushFront(e)
		}
		return true
	}
	c.misses++
	return false
}

// Contains reports residency without perturbing recency or counters.
func (c *Cache) Contains(k Key) bool {
	_, ok := c.m[k]
	return ok
}

// Insert makes k resident (refreshing it if already resident), evicting the
// least recently used block if the cache is full.
func (c *Cache) Insert(k Key) {
	if e, ok := c.m[k]; ok {
		if c.head != e {
			c.unlink(e)
			c.pushFront(e)
		}
		return
	}
	if len(c.m) >= c.capacity {
		lru := c.tail
		c.unlink(lru)
		delete(c.m, lru.key)
		c.evictions++
	}
	e := &entry{key: k}
	c.m[k] = e
	c.pushFront(e)
}

// Remove evicts k if resident (write-path invalidation when the caller
// wants deleted or truncated blocks out of the resident set).
func (c *Cache) Remove(k Key) {
	if e, ok := c.m[k]; ok {
		c.unlink(e)
		delete(c.m, k)
	}
}

// InvalidateFile evicts every resident block of (vol, ino) — the delete
// path's coherence hook. Walks the LRU list (never the map), so eviction
// order and the surviving list are deterministic. Returns blocks evicted.
func (c *Cache) InvalidateFile(vol int, ino uint64) int {
	n := 0
	for e := c.head; e != nil; {
		next := e.next
		if e.key.Vol == vol && e.key.Ino == ino {
			c.unlink(e)
			delete(c.m, e.key)
			n++
		}
		e = next
	}
	return n
}

// InvalidateVol evicts every resident block of vol — the SnapRestore
// coherence hook: the restored image supersedes whatever of the discarded
// present was resident. Returns blocks evicted.
func (c *Cache) InvalidateVol(vol int) int {
	n := 0
	for e := c.head; e != nil; {
		next := e.next
		if e.key.Vol == vol {
			c.unlink(e)
			delete(c.m, e.key)
			n++
		}
		e = next
	}
	return n
}
