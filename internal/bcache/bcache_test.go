package bcache

import (
	"testing"

	"wafl/internal/block"
)

func k(fbn int) Key { return Key{Vol: 0, Ino: 1, FBN: block.FBN(fbn)} }

func TestLRUEviction(t *testing.T) {
	c := New(3)
	for i := 0; i < 3; i++ {
		c.Insert(k(i))
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	// Touch 0 so 1 becomes the LRU, then insert a fourth block.
	if !c.Touch(k(0)) {
		t.Fatal("resident block missed")
	}
	c.Insert(k(3))
	if c.Contains(k(1)) {
		t.Error("LRU block 1 not evicted")
	}
	for _, i := range []int{0, 2, 3} {
		if !c.Contains(k(i)) {
			t.Errorf("block %d wrongly evicted", i)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 eviction, 1 hit", st)
	}
}

func TestTouchMissDoesNotInsert(t *testing.T) {
	c := New(2)
	if c.Touch(k(7)) {
		t.Fatal("miss reported as hit")
	}
	if c.Len() != 0 {
		t.Fatal("miss inserted an entry")
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
}

func TestRemoveAndReinsert(t *testing.T) {
	c := New(2)
	c.Insert(k(1))
	c.Insert(k(2))
	c.Remove(k(1))
	if c.Contains(k(1)) || c.Len() != 1 {
		t.Fatal("Remove did not evict")
	}
	c.Insert(k(3))
	c.Insert(k(4)) // evicts 2 (LRU), not 3
	if c.Contains(k(2)) || !c.Contains(k(3)) || !c.Contains(k(4)) {
		t.Fatalf("unexpected residency after churn")
	}
	// Re-inserting a resident key must refresh recency, not grow the cache.
	c.Insert(k(3))
	if c.Len() != 2 {
		t.Fatalf("Len = %d after duplicate insert, want 2", c.Len())
	}
	c.Insert(k(5)) // now 4 is LRU
	if c.Contains(k(4)) || !c.Contains(k(3)) {
		t.Fatal("duplicate insert did not refresh recency")
	}
}

func TestKeysDistinguishFiles(t *testing.T) {
	c := New(4)
	c.Insert(Key{Vol: 0, Ino: 1, FBN: 5})
	if c.Touch(Key{Vol: 1, Ino: 1, FBN: 5}) || c.Touch(Key{Vol: 0, Ino: 2, FBN: 5}) {
		t.Fatal("cross-file key collision")
	}
	if !c.Touch(Key{Vol: 0, Ino: 1, FBN: 5}) {
		t.Fatal("exact key missed")
	}
}
