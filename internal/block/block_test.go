package block

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPtrRoundTrip(t *testing.T) {
	b := New()
	for i := 0; i < PtrsPerBlock; i++ {
		PutPtr(b, i, VVBN(i*3+1), VBN(i*7+2))
	}
	for i := 0; i < PtrsPerBlock; i++ {
		vvbn, vbn := GetPtr(b, i)
		if vvbn != VVBN(i*3+1) || vbn != VBN(i*7+2) {
			t.Fatalf("entry %d = (%v,%v)", i, vvbn, vbn)
		}
	}
}

func TestPtrRoundTripQuick(t *testing.T) {
	b := New()
	f := func(idx uint8, vvbn, vbn uint64) bool {
		i := int(idx) % PtrsPerBlock
		PutPtr(b, i, VVBN(vvbn), VBN(vbn))
		gv, gp := GetPtr(b, i)
		return gv == VVBN(vvbn) && gp == VBN(vbn)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumDistinguishesContent(t *testing.T) {
	a, b := New(), New()
	if Checksum(a) != Checksum(b) {
		t.Fatal("identical blocks must have identical checksums")
	}
	b[100] = 1
	if Checksum(a) == Checksum(b) {
		t.Fatal("different blocks should (overwhelmingly) differ in checksum")
	}
}

func TestXORIsInvolution(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a, b := New(), New()
		for i := range a {
			a[i] = byte(seedA >> (uint(i) % 56))
			b[i] = byte(seedB >> (uint(i) % 48))
		}
		orig := Clone(a)
		XOR(a, b)
		if bytes.Equal(a, orig) && Checksum(b) != Checksum(New()) {
			return false
		}
		XOR(a, b)
		return bytes.Equal(a, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestXORParityReconstruction(t *testing.T) {
	// parity = d0^d1^d2; any lost block is recoverable as parity ^ others.
	d := make([][]byte, 3)
	for i := range d {
		d[i] = New()
		for j := range d[i] {
			d[i][j] = byte(i*31 + j)
		}
	}
	parity := New()
	for _, blk := range d {
		XOR(parity, blk)
	}
	rec := Clone(parity)
	XOR(rec, d[0])
	XOR(rec, d[2])
	if !bytes.Equal(rec, d[1]) {
		t.Fatal("reconstruction of d1 from parity failed")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New()
	a[0] = 42
	c := Clone(a)
	c[0] = 7
	if a[0] != 42 {
		t.Fatal("Clone must not alias")
	}
}

func TestInvalidSentinels(t *testing.T) {
	if InvalidVBN.String() != "vbn:invalid" || InvalidVVBN.String() != "vvbn:invalid" {
		t.Fatal("sentinel String() values wrong")
	}
	if VBN(5).String() != "vbn:5" {
		t.Fatalf("VBN(5) = %s", VBN(5).String())
	}
}
