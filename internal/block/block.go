// Package block defines the fundamental storage addressing types and block
// helpers shared by every layer of the system: physical volume block numbers
// (VBNs) in the aggregate space, virtual volume block numbers (VVBNs) in a
// FlexVol's space, file block numbers (FBNs) within a file, and fixed-size
// 4 KiB blocks with checksums.
package block

import (
	"encoding/binary"
	"fmt"
)

// Size is the file system block size in bytes (4 KiB, as in WAFL).
const Size = 4096

// VBN is a physical volume block number: an address in the aggregate's
// block space, mapped onto a (RAID group, drive, disk block) location.
type VBN uint64

// VVBN is a virtual volume block number: an address within a single FlexVol
// volume's block space.
type VVBN uint64

// FBN is a file block number: the index of a 4 KiB block within a file.
type FBN uint64

// DBN is a disk block number: the index of a block within a single drive.
type DBN uint64

// Invalid sentinel values for each address space.
const (
	InvalidVBN  VBN  = ^VBN(0)
	InvalidVVBN VVBN = ^VVBN(0)
	InvalidDBN  DBN  = ^DBN(0)
)

func (v VBN) String() string {
	if v == InvalidVBN {
		return "vbn:invalid"
	}
	return fmt.Sprintf("vbn:%d", uint64(v))
}

func (v VVBN) String() string {
	if v == InvalidVVBN {
		return "vvbn:invalid"
	}
	return fmt.Sprintf("vvbn:%d", uint64(v))
}

// PtrSize is the on-disk size of a block pointer entry in an indirect block:
// a (VVBN, VBN) pair. WAFL indirect blocks store dual addresses so that
// reads can go straight to physical storage while the volume remains
// logically relocatable.
const PtrSize = 16

// PtrsPerBlock is the fan-out of an indirect block.
const PtrsPerBlock = Size / PtrSize // 256

// Checksum returns a 64-bit FNV-1a checksum of p. It stands in for the
// per-block checksums a production file system computes on every write; its
// cost is charged to the simulated CPU by callers via the cost model.
func Checksum(p []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range p {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// New allocates a zeroed block.
func New() []byte { return make([]byte, Size) }

// Clone returns a copy of block p (padding or truncating to Size).
func Clone(p []byte) []byte {
	b := make([]byte, Size)
	copy(b, p)
	return b
}

// PutPtr encodes the pointer pair (vvbn, vbn) at entry index i of indirect
// block b.
func PutPtr(b []byte, i int, vvbn VVBN, vbn VBN) {
	off := i * PtrSize
	binary.LittleEndian.PutUint64(b[off:], uint64(vvbn))
	binary.LittleEndian.PutUint64(b[off+8:], uint64(vbn))
}

// GetPtr decodes the pointer pair at entry index i of indirect block b.
func GetPtr(b []byte, i int) (VVBN, VBN) {
	off := i * PtrSize
	vvbn := VVBN(binary.LittleEndian.Uint64(b[off:]))
	vbn := VBN(binary.LittleEndian.Uint64(b[off+8:]))
	return vvbn, vbn
}

// XOR accumulates src into dst (dst ^= src), used for RAID parity.
// Both must be Size bytes.
func XOR(dst, src []byte) {
	_ = dst[Size-1]
	_ = src[Size-1]
	// 8 bytes at a time via binary package to stay in safe code.
	for i := 0; i < Size; i += 8 {
		d := binary.LittleEndian.Uint64(dst[i:])
		s := binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^s)
	}
}
