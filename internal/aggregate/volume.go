package aggregate

import (
	"encoding/binary"
	"fmt"

	"wafl/internal/bitmap"
	"wafl/internal/block"
	"wafl/internal/clone"
	"wafl/internal/fs"
	"wafl/internal/sim"
	"wafl/internal/snap"
)

// VolEntrySize is the on-disk size of a volume-table entry: a header plus
// the records of the volume's five metafiles (inode file, container map,
// activemap, snapdir, snapshot summary map).
const VolEntrySize = 512

// VolEntriesPerBlock is the number of volume entries per volume-table block.
const VolEntriesPerBlock = block.Size / VolEntrySize

// ContainerEntriesPerBlock is the number of vvbn->pvbn map entries per
// container-file block.
const ContainerEntriesPerBlock = block.Size / 8

// Well-known per-volume metafile inode numbers (user files start at
// FirstUserIno).
const (
	inoVolInofile   = 1
	inoVolContainer = 2
	inoVolActivemap = 3
	inoVolSnapdir   = 4
	inoVolSummary   = 5
	inoVolBasemap   = 6 // clone base map (bound clones only)
	// FirstUserIno is the first inode number handed to user files.
	FirstUserIno = 16
)

// snapMetaIno synthesizes inode numbers for a snapshot's private metafiles
// (snapmap, inocopy). They live outside the inode file — their records are
// held by snapdir entries — so the numbers only matter for debugging and
// fsck labels.
func snapMetaIno(snapID uint64, which uint64) uint64 {
	return 1<<32 + snapID*2 + which
}

// Volume is a FlexVol: a virtual VVBN block space inside the aggregate,
// with its own activemap, container map (vvbn->pvbn), and inode file. All
// volume metafiles are physical-only files (VBN addressed); user file
// blocks are dual-addressed (VVBN + VBN).
type Volume struct {
	id         int
	aggr       *Aggregate
	vvbnBlocks uint64

	Activemap *bitmap.Activemap // VVBN allocation state
	amapFile  *fs.File
	container *fs.File
	inofile   *fs.File

	// FreeIdx is the hierarchical free-space accounting over Activemap and
	// Summary: per-vregion allocatable counts plus a free-words summary
	// bitmap, maintained incrementally from both maps' OnChange streams so
	// region selection and bucket fills never rescan full bitmap spans.
	FreeIdx *bitmap.Index

	// Snapshot state. Summary is the OR of all live snapmaps; the write
	// allocator consults it so snapshot-held VVBNs are never reused
	// (free = !active && !summary). snapdir persists the snapshot set.
	Summary     *bitmap.Activemap
	summaryFile *fs.File
	snapdir     *fs.File
	snaps       map[uint64]*snap.Snapshot
	snapOrder   []uint64 // live snapshot IDs, ascending (determinism)
	nextSnapID  uint64
	snapSlots   int // snapdir slots written on disk (for zeroing on shrink)

	// pendSnaps are requested snapshot creates awaiting the next CP freeze;
	// snapZombies are deleted snapshots awaiting CP-side reclamation.
	pendSnaps   []uint64
	snapZombies []*snap.Snapshot

	files   map[uint64]*fs.File
	nextIno uint64

	// dirty user files in the open generation, and inodes whose records
	// must be (re)written in the next CP even if no blocks are dirty
	// (fresh creates).
	dirty       map[uint64]*fs.File
	recordDirty map[uint64]*fs.File

	// zombies are deleted files awaiting space reclamation: WAFL defers
	// freeing a deleted file's blocks to consistency-point processing.
	// deleted guards against resurrecting an inode from its still-on-disk
	// record between the delete and the CP that clears it.
	zombies []*fs.File
	deleted map[uint64]bool

	// Clone/restore state (see internal/clone). cl is non-nil while the
	// volume is a bound writable clone; pendClone is a requested bind and
	// pendRestores are requested SnapRestores, both awaiting the next CP.
	// cloneRefs counts, per snapshot ID, the clones diverging from that
	// snapshot — the parent-snapshot delete guard, rebuilt on mount from
	// the clones' persisted parent links.
	// restoring holds the client gate closed between the CP freeze that
	// takes the pending restore list and the commit of the CP that applies
	// it — without it, a write slipping in after the apply but before the
	// commit would land in the NVRAM log *after* the restore record yet be
	// discarded by a crash-replayed restore, diverging the crash and
	// no-crash legs. pendSplit queues a split requested while the bind is
	// still pending (replay ordering).
	cl           *clone.State
	pendClone    *pendingClone
	pendSplit    bool
	pendRestores []uint64
	restoring    bool
	cloneRefs    map[uint64]int
}

// AddVolume creates and formats a new volume of vvbnBlocks virtual blocks.
func (a *Aggregate) AddVolume(vvbnBlocks uint64) *Volume {
	v := &Volume{
		id:          len(a.vols),
		aggr:        a,
		vvbnBlocks:  vvbnBlocks,
		files:       make(map[uint64]*fs.File),
		nextIno:     FirstUserIno,
		dirty:       make(map[uint64]*fs.File),
		recordDirty: make(map[uint64]*fs.File),
		deleted:     make(map[uint64]bool),
		snaps:       make(map[uint64]*snap.Snapshot),
		nextSnapID:  1,
	}
	amapBlocks := (vvbnBlocks + bitmap.BitsPerBlock - 1) / bitmap.BitsPerBlock
	v.amapFile = fs.NewFile(inoVolActivemap, fs.HeightFor(amapBlocks+1))
	contBlocks := (vvbnBlocks + ContainerEntriesPerBlock - 1) / ContainerEntriesPerBlock
	v.container = fs.NewFile(inoVolContainer, fs.HeightFor(contBlocks+1))
	v.inofile = fs.NewFile(inoVolInofile, fs.HeightFor(1<<16))
	v.Activemap = bitmap.New(v.amapFile, vvbnBlocks)
	v.summaryFile = fs.NewFile(inoVolSummary, fs.HeightFor(amapBlocks+1))
	v.Summary = bitmap.New(v.summaryFile, vvbnBlocks)
	v.snapdir = fs.NewFile(inoVolSnapdir, fs.HeightFor(64))
	v.FreeIdx = bitmap.NewIndex(v.Activemap, v.Summary, bitmap.BitsPerBlock)
	a.vols = append(a.vols, v)
	return v
}

// ID returns the volume's index in the aggregate.
func (v *Volume) ID() int { return v.id }

// Aggr returns the owning aggregate.
func (v *Volume) Aggr() *Aggregate { return v.aggr }

// VVBNBlocks returns the size of the volume's virtual block space.
func (v *Volume) VVBNBlocks() uint64 { return v.vvbnBlocks }

// AmapFile returns the volume activemap's backing metafile.
func (v *Volume) AmapFile() *fs.File { return v.amapFile }

// ContainerFile returns the container-map metafile.
func (v *Volume) ContainerFile() *fs.File { return v.container }

// InoFile returns the inode-file metafile.
func (v *Volume) InoFile() *fs.File { return v.inofile }

// SnapdirFile returns the snapshot-directory metafile.
func (v *Volume) SnapdirFile() *fs.File { return v.snapdir }

// SummaryFile returns the snapshot summary map's backing metafile.
func (v *Volume) SummaryFile() *fs.File { return v.summaryFile }

// Metafiles returns the volume's permanent metafiles, in CP cleaning order.
// Snapshot snapmap/inocopy metafiles are not listed: they are written once
// by the materializing CP (which cleans them explicitly) and immutable
// afterwards. A bound clone's base map rides along: it mutates on COW
// divergence (bit clears) and during splits.
func (v *Volume) Metafiles() []*fs.File {
	mf := []*fs.File{v.inofile, v.container, v.amapFile, v.snapdir, v.summaryFile}
	if v.cl != nil {
		mf = append(mf, v.cl.BaseFile)
	}
	return mf
}

// SetContainer records that vvbn now lives at pvbn, dirtying the owning
// container block into the running CP. The infrastructure calls this while
// committing used volume buckets.
func (v *Volume) SetContainer(vvbn block.VVBN, pvbn block.VBN) {
	fbn := block.FBN(uint64(vvbn) / ContainerEntriesPerBlock)
	buf := v.container.GetOrCreateL0(fbn)
	d := buf.CPMutableData()
	off := (uint64(vvbn) % ContainerEntriesPerBlock) * 8
	binary.LittleEndian.PutUint64(d[off:], uint64(pvbn))
	v.container.DirtyIntoCP(buf)
}

// Container returns the physical location recorded for vvbn (0 if none).
func (v *Volume) Container(vvbn block.VVBN) block.VBN {
	fbn := block.FBN(uint64(vvbn) / ContainerEntriesPerBlock)
	buf := v.container.Buffer(0, fbn)
	if buf == nil {
		return 0
	}
	off := (uint64(vvbn) % ContainerEntriesPerBlock) * 8
	return block.VBN(binary.LittleEndian.Uint64(buf.Data()[off:]))
}

// CreateFile allocates a new user file able to hold maxBlocks blocks. The
// inode record is persisted in the next CP.
func (v *Volume) CreateFile(maxBlocks uint64) *fs.File {
	ino := v.nextIno
	v.nextIno++
	f := fs.NewFile(ino, fs.HeightFor(maxBlocks))
	v.files[ino] = f
	v.recordDirty[ino] = f
	return f
}

// CreateFileAt recreates a file at a specific inode number — the NVRAM
// replay path, which must be idempotent (the create may already have been
// persisted by a CP that completed during the op).
func (v *Volume) CreateFileAt(ino uint64, maxBlocks uint64) *fs.File {
	if f := v.LookupFile(ino); f != nil {
		if ino >= v.nextIno {
			v.nextIno = ino + 1
		}
		return f
	}
	f := fs.NewFile(ino, fs.HeightFor(maxBlocks))
	v.files[ino] = f
	v.recordDirty[ino] = f
	if ino >= v.nextIno {
		v.nextIno = ino + 1
	}
	return f
}

// MarkRecordDirty forces the file's inode record to be rewritten in the
// next CP (attribute-only changes).
func (v *Volume) MarkRecordDirty(f *fs.File) {
	v.recordDirty[f.Ino()] = f
}

// DeleteFile removes a file: it disappears from the namespace immediately,
// its un-persisted dirty state is dropped, and the file becomes a zombie
// whose on-disk blocks are reclaimed by the next consistency point —
// WAFL's deferred deletion. Idempotent; returns false if the inode is not
// in use.
func (v *Volume) DeleteFile(ino uint64) bool {
	f := v.LookupFile(ino)
	if f == nil {
		return false
	}
	delete(v.files, ino)
	delete(v.dirty, ino)
	delete(v.recordDirty, ino)
	v.deleted[ino] = true
	v.zombies = append(v.zombies, f)
	return true
}

// TakeZombies returns and clears the pending zombie list (CP start).
func (v *Volume) TakeZombies() []*fs.File {
	z := v.zombies
	v.zombies = nil
	return z
}

// DeferZombie re-queues a zombie for the next CP. The engine defers a
// zombie whose file is frozen into the running CP: its tree is mid-clean,
// so the walkable on-media image (and the record the CP will write) only
// stabilizes when this CP commits.
func (v *Volume) DeferZombie(f *fs.File) {
	v.zombies = append(v.zombies, f)
}

// ZombieBlocks walks a zombie file's persisted tree on committed media and
// returns every physical block it occupies and every virtual block it
// holds in the volume's VVBN space. Blocks whose VVBN is held by a snapshot
// (summary map) keep their physical homes: the VVBN leaves the active map
// but the pvbn stays allocated until the last holding snapshot is deleted.
// The walk's cost in metafile reads is returned as a block count for CPU
// charging.
func (v *Volume) ZombieBlocks(f *fs.File) (pvbns []uint64, vvbns []uint64, walked int) {
	if f.RootVBN == block.InvalidVBN {
		return nil, nil, 0
	}
	if f.RootVVBN != block.InvalidVVBN {
		vvbns = append(vvbns, uint64(f.RootVVBN))
		if !v.Summary.IsSet(uint64(f.RootVVBN)) {
			pvbns = append(pvbns, uint64(f.RootVBN))
		}
	} else {
		pvbns = append(pvbns, uint64(f.RootVBN))
	}
	var rec func(level int, vbn block.VBN)
	rec = func(level int, vbn block.VBN) {
		walked++
		if level == 0 {
			return
		}
		data := v.aggr.ReadVBNRaw(vbn)
		if data == nil {
			return
		}
		for i := 0; i < block.PtrsPerBlock; i++ {
			cvv, cvbn := block.GetPtr(data, i)
			if cvbn == 0 || cvbn == block.InvalidVBN {
				continue
			}
			if cvv != block.InvalidVVBN {
				vvbns = append(vvbns, uint64(cvv))
				if !v.Summary.IsSet(uint64(cvv)) {
					pvbns = append(pvbns, uint64(cvbn))
				}
			} else {
				pvbns = append(pvbns, uint64(cvbn))
			}
			rec(level-1, cvbn)
		}
	}
	rec(f.Height(), f.RootVBN)
	return pvbns, vvbns, walked
}

// ClearRecord wipes a deleted inode's record in the inode file (CP-side)
// and lifts the resurrection guard (the on-disk record is gone with this
// CP).
func (v *Volume) ClearRecord(ino uint64) {
	fbn, off := fs.RecordLocation(ino)
	buf := v.inofile.GetOrCreateL0(fbn)
	d := buf.CPMutableData()
	for i := 0; i < fs.RecordSize; i++ {
		d[off+i] = 0
	}
	v.inofile.DirtyIntoCP(buf)
	delete(v.deleted, ino)
}

// LookupFile returns the in-memory file for ino, loading its record from
// the inode file if needed (post-mount path). Returns nil if the inode is
// not in use.
func (v *Volume) LookupFile(ino uint64) *fs.File {
	if f, ok := v.files[ino]; ok {
		return f
	}
	if v.deleted[ino] {
		return nil
	}
	fbn, off := fs.RecordLocation(ino)
	buf := v.inofile.Buffer(0, fbn)
	if buf == nil {
		return nil
	}
	rec := fs.DecodeRecord(buf.Data()[off:])
	if rec.Flags&fs.FlagInUse == 0 || rec.Ino != ino {
		return nil
	}
	f := fs.FileFromRecord(rec)
	v.files[ino] = f
	return f
}

// MarkDirty adds f to the volume's dirty-inode list for the next CP.
func (v *Volume) MarkDirty(f *fs.File) {
	v.dirty[f.Ino()] = f
}

// DirtyFiles returns the number of user files dirty in the open generation.
func (v *Volume) DirtyFiles() int { return len(v.dirty) }

// FreezeAll freezes every dirty user file for the starting CP and returns
// the frozen inode list (sorted by ino for determinism). Files with only a
// record change (fresh creates) are included with zero frozen buffers.
func (v *Volume) FreezeAll() []*fs.File {
	seen := make(map[uint64]*fs.File, len(v.dirty)+len(v.recordDirty))
	for ino, f := range v.dirty {
		f.Freeze()
		seen[ino] = f
	}
	for ino, f := range v.recordDirty {
		if _, ok := seen[ino]; !ok {
			seen[ino] = f
		}
	}
	v.dirty = make(map[uint64]*fs.File)
	v.recordDirty = make(map[uint64]*fs.File)
	out := make([]*fs.File, 0, len(seen))
	for _, f := range seen {
		out = append(out, f)
	}
	sortFilesByIno(out)
	return out
}

func sortFilesByIno(fs []*fs.File) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j-1].Ino() > fs[j].Ino(); j-- {
			fs[j-1], fs[j] = fs[j], fs[j-1]
		}
	}
}

// WriteRecord serializes f's current record into the inode file, dirtying
// the owning inofile block into the running CP. The CP engine calls this
// after f has been fully cleaned (so the root pointer is final).
func (v *Volume) WriteRecord(f *fs.File) {
	fbn, off := fs.RecordLocation(f.Ino())
	buf := v.inofile.GetOrCreateL0(fbn)
	d := buf.CPMutableData()
	fs.EncodeRecord(d[off:], f.RecordOf(0))
	v.inofile.DirtyIntoCP(buf)
}

// EnsurePathResident installs the indirect-block path covering fbn from
// committed media (untimed), so that cleaning can update real parent
// blocks. It is a no-op for files that have never been written to disk.
func (v *Volume) EnsurePathResident(f *fs.File, fbn block.FBN) {
	if f.RootVBN == block.InvalidVBN {
		return
	}
	if f.Buffer(f.Height(), 0) == nil {
		data := v.aggr.ReadVBNRaw(f.RootVBN)
		if data == nil {
			panic(fmt.Sprintf("volume %d: ino %d root %v unreadable", v.id, f.Ino(), f.RootVBN))
		}
		f.InstallBuffer(f.Height(), 0, data, f.RootVVBN, f.RootVBN)
	}
	for level := f.Height(); level > 1; level-- {
		idx := fbn >> (8 * uint(level))
		parent := f.Buffer(level, idx)
		if parent == nil {
			return // hole higher up: nothing persisted below
		}
		childIdx := fbn >> (8 * uint(level-1))
		if f.Buffer(level-1, childIdx) != nil {
			continue
		}
		vvbn, vbn := fs.PtrAt(parent, int(childIdx&(block.PtrsPerBlock-1)))
		if vbn == 0 || vbn == block.InvalidVBN {
			continue // hole: child never persisted
		}
		data := v.aggr.ReadVBNRaw(vbn)
		if data == nil {
			panic(fmt.Sprintf("volume %d: ino %d indirect at %v unreadable", v.id, f.Ino(), vbn))
		}
		f.InstallBuffer(level-1, childIdx, data, vvbn, vbn)
	}
}

// EnsureL0Resident makes f's L0 buffer for fbn resident ahead of an
// overwrite: if the block exists on committed media, its content and —
// critically — its current (vvbn, vbn) addresses are installed, so that
// cleaning the overwrite frees the old location instead of leaking it.
// No-op for holes and already-resident blocks.
func (v *Volume) EnsureL0Resident(f *fs.File, fbn block.FBN) {
	if f.Buffer(0, fbn) != nil || f.RootVBN == block.InvalidVBN {
		return
	}
	v.EnsurePathResident(f, fbn)
	if f.Height() < 1 {
		return
	}
	parent := f.Buffer(1, fbn>>8)
	if parent == nil {
		return
	}
	vvbn, vbn := fs.PtrAt(parent, int(fbn&(block.PtrsPerBlock-1)))
	if vbn == 0 || vbn == block.InvalidVBN {
		return // hole
	}
	data := v.aggr.ReadVBNRaw(vbn)
	f.InstallBuffer(0, fbn, data, vvbn, vbn)
}

// ReadFileBlock returns the content of f's block fbn, demand-loading from
// media. If t is non-nil the loads are timed drive reads; otherwise they
// are untimed (verification path). A nil return means a hole.
func (v *Volume) ReadFileBlock(t *sim.Thread, f *fs.File, fbn block.FBN) []byte {
	if data := f.ReadBlock(fbn); data != nil {
		return data
	}
	v.EnsurePathResident(f, fbn)
	// The L1 parent now resident (if it exists on disk); read the L0.
	if f.Height() >= 1 {
		parent := f.Buffer(1, fbn>>8)
		if parent == nil {
			return nil // hole
		}
		vvbn, vbn := fs.PtrAt(parent, int(fbn&(block.PtrsPerBlock-1)))
		if vbn == 0 || vbn == block.InvalidVBN {
			return nil // hole
		}
		var data []byte
		if t != nil {
			data = v.aggr.ReadVBN(t, vbn)
		} else {
			data = v.aggr.ReadVBNRaw(vbn)
		}
		if data == nil {
			panic(fmt.Sprintf("volume %d: ino %d L0 fbn %d at %v unreadable", v.id, f.Ino(), fbn, vbn))
		}
		f.InstallBuffer(0, fbn, data, vvbn, vbn)
		return data
	}
	return nil
}

// ReadMediaBlock charges a timed drive read for f's block fbn without
// installing the L0 buffer into the file's in-memory tree — the
// buffer-cache read path, where residency (and thus whether a re-read pays
// media latency again) is owned by the caller's sized cache rather than by
// permanent tree installation. Indirect blocks still install (they are
// metadata, cheap and shared); only the data block stays uninstalled.
// Returns false for holes and for blocks with no committed on-media
// location (dirty-only data, which lives in memory by definition).
func (v *Volume) ReadMediaBlock(t *sim.Thread, f *fs.File, fbn block.FBN) bool {
	v.EnsurePathResident(f, fbn)
	if f.Height() < 1 {
		return false
	}
	parent := f.Buffer(1, fbn>>8)
	if parent == nil {
		return false // hole
	}
	_, vbn := fs.PtrAt(parent, int(fbn&(block.PtrsPerBlock-1)))
	if vbn == 0 || vbn == block.InvalidVBN {
		return false // hole or never persisted
	}
	if v.aggr.ReadVBN(t, vbn) == nil {
		panic(fmt.Sprintf("volume %d: ino %d L0 fbn %d at %v unreadable", v.id, f.Ino(), fbn, vbn))
	}
	return true
}

// NextIno returns the next inode number to be assigned (persisted in the
// volume-table entry).
func (v *Volume) NextIno() uint64 { return v.nextIno }

// encodeEntry serializes the volume's persistent state into a volume-table
// entry.
func (v *Volume) encodeEntry(dst []byte) {
	for i := range dst[:VolEntrySize] {
		dst[i] = 0
	}
	binary.LittleEndian.PutUint64(dst[0:], uint64(v.id))
	binary.LittleEndian.PutUint64(dst[8:], v.vvbnBlocks)
	binary.LittleEndian.PutUint64(dst[16:], v.nextIno)
	binary.LittleEndian.PutUint32(dst[24:], 1) // in use
	binary.LittleEndian.PutUint64(dst[32:], v.nextSnapID)
	// Unreclaimed zombies stay on media as live snapshots (see
	// WriteSnapdirEntries); the persisted count covers them too.
	binary.LittleEndian.PutUint32(dst[40:], uint32(len(v.snapOrder)+len(v.snapZombies)))
	fs.EncodeRecord(dst[64:], v.inofile.RecordOf(fs.FlagMetafile))
	fs.EncodeRecord(dst[128:], v.container.RecordOf(fs.FlagMetafile))
	fs.EncodeRecord(dst[192:], v.amapFile.RecordOf(fs.FlagMetafile))
	fs.EncodeRecord(dst[256:], v.snapdir.RecordOf(fs.FlagMetafile))
	fs.EncodeRecord(dst[320:], v.summaryFile.RecordOf(fs.FlagMetafile))
	if v.cl != nil {
		// Clone header + base map record land in the entry's spare bytes;
		// they are all-zero for non-clones, keeping clone-free file systems
		// bit-identical to the pre-clone entry format.
		v.cl.Encode(dst)
	}
}

// WriteVolumeEntries serializes every volume's entry into the volume table,
// dirtying the affected blocks into the running CP. Called by the CP engine
// after volume metafiles are cleaned.
func (a *Aggregate) WriteVolumeEntries() {
	for _, v := range a.vols {
		fbn := block.FBN(v.id / VolEntriesPerBlock)
		buf := a.volTable.GetOrCreateL0(fbn)
		d := buf.CPMutableData()
		off := (v.id % VolEntriesPerBlock) * VolEntrySize
		v.encodeEntry(d[off:])
		a.volTable.DirtyIntoCP(buf)
	}
}

// decodeVolume rebuilds a volume skeleton from its table entry (mount
// path), eagerly loading its metafiles and rebinding the activemap.
func (a *Aggregate) decodeVolume(src []byte) *Volume {
	if binary.LittleEndian.Uint32(src[24:]) == 0 {
		return nil
	}
	v := &Volume{
		id:          int(binary.LittleEndian.Uint64(src[0:])),
		aggr:        a,
		vvbnBlocks:  binary.LittleEndian.Uint64(src[8:]),
		nextIno:     binary.LittleEndian.Uint64(src[16:]),
		files:       make(map[uint64]*fs.File),
		dirty:       make(map[uint64]*fs.File),
		recordDirty: make(map[uint64]*fs.File),
		deleted:     make(map[uint64]bool),
		snaps:       make(map[uint64]*snap.Snapshot),
		nextSnapID:  binary.LittleEndian.Uint64(src[32:]),
	}
	snapCount := int(binary.LittleEndian.Uint32(src[40:]))
	v.inofile = fs.FileFromRecord(fs.DecodeRecord(src[64:]))
	v.container = fs.FileFromRecord(fs.DecodeRecord(src[128:]))
	v.amapFile = fs.FileFromRecord(fs.DecodeRecord(src[192:]))
	v.snapdir = fs.FileFromRecord(fs.DecodeRecord(src[256:]))
	v.summaryFile = fs.FileFromRecord(fs.DecodeRecord(src[320:]))
	a.loadAll(v.inofile)
	a.loadAll(v.container)
	a.loadAll(v.amapFile)
	a.loadAll(v.snapdir)
	a.loadAll(v.summaryFile)
	v.Activemap = bitmap.Rebind(v.amapFile, v.vvbnBlocks)
	v.Summary = bitmap.Rebind(v.summaryFile, v.vvbnBlocks)
	v.FreeIdx = bitmap.NewIndex(v.Activemap, v.Summary, bitmap.BitsPerBlock)
	// Rebuild the snapshot set from the snapdir content.
	for slot := 0; slot < snapCount; slot++ {
		buf := v.snapdir.Buffer(0, block.FBN(slot/snap.EntriesPerBlock))
		if buf == nil {
			panic(fmt.Sprintf("volume %d: snapdir slot %d not on media", v.id, slot))
		}
		s := snap.DecodeEntry(buf.Data()[(slot%snap.EntriesPerBlock)*snap.EntrySize:])
		if s == nil {
			panic(fmt.Sprintf("volume %d: snapdir slot %d empty, want %d snapshots", v.id, slot, snapCount))
		}
		a.loadAll(s.Snapmap)
		a.loadAll(s.InoCopy)
		v.snaps[s.ID] = s
		v.snapOrder = append(v.snapOrder, s.ID)
	}
	// Zombie entries are written after the live ones, so slot order is not
	// necessarily ID order; restore the ascending invariant.
	for i := 1; i < len(v.snapOrder); i++ {
		for j := i; j > 0 && v.snapOrder[j-1] > v.snapOrder[j]; j-- {
			v.snapOrder[j-1], v.snapOrder[j] = v.snapOrder[j], v.snapOrder[j-1]
		}
	}
	v.snapSlots = snapCount
	if v.nextSnapID == 0 {
		v.nextSnapID = 1
	}
	if st := clone.Decode(src); st != nil {
		a.loadAll(st.BaseFile)
		st.Base = bitmap.Rebind(st.BaseFile, v.vvbnBlocks)
		if st.Splitting {
			st.SplitIno = FirstUserIno
		}
		v.cl = st
	}
	return v
}

// rebuildCloneGuards recomputes every volume's parent-snapshot delete
// guard from the bound clones' persisted parent links (mount path).
func (a *Aggregate) rebuildCloneGuards() {
	for _, v := range a.vols {
		if v.cl != nil {
			a.vols[v.cl.ParentVol].AddCloneRef(v.cl.ParentSnap)
		}
	}
}
