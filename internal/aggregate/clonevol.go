package aggregate

import (
	"fmt"

	"wafl/internal/bitmap"
	"wafl/internal/block"
	"wafl/internal/clone"
	"wafl/internal/fs"
	"wafl/internal/snap"
)

// Volume-side clone and SnapRestore lifecycle. Both follow the snapshot
// two-step protocol: the client-facing request only queues (and is what the
// NVRAM log records); the CP engine applies the operation at a phase
// boundary so the transition is atomic with a committed CP. While a restore
// is pending the volume is gated — clients stall new operations — so the
// NVRAM log never holds records that straddle an unapplied restore.

// pendingClone is a requested clone bind awaiting CP materialization.
type pendingClone struct {
	parentVol  int
	parentSnap uint64
}

// IsClone reports whether the volume is a bound writable clone.
func (v *Volume) IsClone() bool { return v.cl != nil }

// CloneState returns the clone state, or nil for a non-clone.
func (v *Volume) CloneState() *clone.State { return v.cl }

// ClonePending reports whether a bind request awaits the next CP.
func (v *Volume) ClonePending() bool { return v.pendClone != nil }

// CloneSplitting reports whether a split is in progress.
func (v *Volume) CloneSplitting() bool { return v.cl != nil && v.cl.Splitting }

// CloneSlotFree reports whether this volume can become a clone: never
// written, not bound, no bind pending.
func (v *Volume) CloneSlotFree() bool {
	return v.cl == nil && v.pendClone == nil && v.nextIno == FirstUserIno &&
		len(v.snaps) == 0 && v.Activemap.Used() == 0
}

// RequestCloneBind queues binding this volume as a writable clone of parent
// snapshot (parentVol, parentSnap) at the next CP. Idempotent for the NVRAM
// replay path: re-requesting an identical binding (pending or already
// materialized) succeeds without queueing. Returns false if the slot is
// taken by a different binding. The caller holds the parent delete guard
// (AddCloneRef) before logging.
func (v *Volume) RequestCloneBind(parentVol int, parentSnap uint64) bool {
	if v.cl != nil {
		return v.cl.ParentVol == parentVol && v.cl.ParentSnap == parentSnap
	}
	if v.pendClone != nil {
		return v.pendClone.parentVol == parentVol && v.pendClone.parentSnap == parentSnap
	}
	v.pendClone = &pendingClone{parentVol: parentVol, parentSnap: parentSnap}
	return true
}

// MaterializeClone binds the clone from the parent snapshot's frozen image
// (CP phase 1b): activemap := snapmap, inode file := inocopy, container
// entries copied for every shared VVBN, and the shared set recorded in the
// base map metafile and folded into the summary map — from then on the
// ordinary cleaner/zombie paths treat base blocks exactly like
// snapshot-held blocks, which is what makes COW divergence free. Returns
// the newly activated bit count (the caller debits the volume free counter)
// and the metafile blocks copied, for CPU charging.
func (v *Volume) MaterializeClone(p *Volume) (activated uint64, copied int) {
	req := v.pendClone
	v.pendClone = nil
	s := p.snaps[req.parentSnap]
	if s == nil {
		panic(fmt.Sprintf("volume %d: clone bind of vol %d snap %d: snapshot gone despite delete guard",
			v.id, req.parentVol, req.parentSnap))
	}
	// Active map := snapmap content. OrFrom degenerates to an exact copy on
	// the empty slot map and fires OnChange per bit, keeping the free-space
	// index and the infrastructure's pending-free observers honest.
	activated = v.Activemap.OrFrom(s.Snapmap)
	bf := fs.NewFile(inoVolBasemap, v.amapFile.Height())
	copied = snap.CopyContent(bf, s.Snapmap)
	base := bitmap.Rebind(bf, v.vvbnBlocks)
	// Summary hold: base VVBNs must never have their (parent-owned)
	// physical homes freed or container bindings reused by clone-side
	// cleaning and deletion.
	v.Summary.OrFrom(bf)
	// Shared VVBNs resolve through the clone's own container map.
	base.ForEachSet(func(bn uint64) {
		v.SetContainer(block.VVBN(bn), p.Container(block.VVBN(bn)))
	})
	copied += snap.ReplaceContent(v.inofile, s.InoCopy)
	if p.nextIno > v.nextIno {
		// Covers every inode in the inocopy image (parent inos only grow).
		v.nextIno = p.nextIno
	}
	v.cl = &clone.State{
		ParentVol:  p.id,
		ParentSnap: req.parentSnap,
		Base:       base,
		BaseFile:   bf,
	}
	if v.pendSplit {
		v.pendSplit = false
		v.cl.Splitting = true
		v.cl.SplitIno = FirstUserIno
		v.cl.SplitFBN = 0
	}
	return activated, copied
}

// ClonePendingInfo returns the queued bind's target. Valid only while
// ClonePending reports true.
func (v *Volume) ClonePendingInfo() (parentVol int, parentSnap uint64) {
	return v.pendClone.parentVol, v.pendClone.parentSnap
}

// AddCloneRef takes the delete guard on snapshot id for a (pending or
// bound) clone.
func (v *Volume) AddCloneRef(id uint64) {
	if v.cloneRefs == nil {
		v.cloneRefs = make(map[uint64]int)
	}
	v.cloneRefs[id]++
}

// DropCloneRef releases one delete-guard hold on snapshot id.
func (v *Volume) DropCloneRef(id uint64) {
	if v.cloneRefs[id] <= 1 {
		delete(v.cloneRefs, id)
		return
	}
	v.cloneRefs[id]--
}

// CloneRefs returns the number of clones guarding snapshot id.
func (v *Volume) CloneRefs(id uint64) int { return v.cloneRefs[id] }

// StartSplit (idempotently) begins splitting the clone from its parent:
// each CP rewrites a bounded batch of still-live base blocks through the
// normal COW write path until none remain, then the base holds and the
// parent delete guard drop. A split requested while the bind is still
// pending (the NVRAM replay path: the clone-create record precedes the
// split record, and neither has materialized yet) is queued and starts when
// the bind does. Returns false if the volume is neither a bound nor a
// pending clone (replay after a completed split is a no-op).
func (v *Volume) StartSplit() bool {
	if v.cl == nil {
		if v.pendClone != nil {
			v.pendSplit = true
			return true
		}
		return false
	}
	if !v.cl.Splitting {
		v.cl.Splitting = true
		v.cl.SplitIno = FirstUserIno
		v.cl.SplitFBN = 0
	}
	return true
}

// SplitStep rewrites up to batch still-live base L0 blocks with their own
// content, dirtying them into the open generation so the next CP's cleaner
// assigns each a fresh VVBN and physical home — block-copy divergence
// through the exact machinery ordinary overwrites use. Resumes at the
// persisted-state-free (SplitIno, SplitFBN) cursor and wraps at the end of
// a pass. Returns blocks queued for copy and the scan cost in blocks.
func (v *Volume) SplitStep(batch int) (copied, walked int) {
	st := v.cl
	for copied < batch {
		if st.SplitIno >= v.nextIno {
			st.SplitIno = FirstUserIno
			st.SplitFBN = 0
			break // pass complete; LiveBase decides whether more are needed
		}
		f := v.LookupFile(st.SplitIno)
		if f == nil {
			st.SplitIno++
			st.SplitFBN = 0
			continue
		}
		for st.SplitFBN < f.Size() && copied < batch {
			fbn := st.SplitFBN
			st.SplitFBN++
			walked++
			v.EnsureL0Resident(f, fbn)
			b := f.Buffer(0, fbn)
			if b == nil {
				continue // hole
			}
			if b.DirtyCurr() || b.DirtyFrozen() {
				continue // already diverging through a pending clean
			}
			vvbn := b.VVBN()
			if vvbn == block.InvalidVVBN || !st.Base.IsSet(uint64(vvbn)) ||
				!v.Activemap.IsSet(uint64(vvbn)) {
				continue // clone-owned or already diverged
			}
			data := make([]byte, block.Size)
			copy(data, b.Data())
			f.WriteBlock(fbn, data)
			v.MarkDirty(f)
			copied++
		}
		if st.SplitFBN >= f.Size() {
			st.SplitIno++
			st.SplitFBN = 0
		}
	}
	return copied, walked
}

// CloneLiveBase returns the number of base blocks still live in the active
// map — the split's remaining block-copy work. Zero for a non-clone.
func (v *Volume) CloneLiveBase() uint64 {
	if v.cl == nil {
		return 0
	}
	return v.cl.LiveBase(v.amapFile, v.vvbnBlocks)
}

// CompleteSplit drops the parent holds once no base block is live in the
// active map: base bits held by no clone-local snapshot leave the summary
// map and become allocatable VVBNs (their parent-owned physical homes are
// NOT freed — the parent keeps them). If the clone's own snapshots still
// hold base bits the split stays in a draining state until those snapshots
// are deleted. On full completion the base map metafile's blocks are
// returned (the caller frees them in the aggregate and drops the parent
// delete guard). freedAlloc is the VVBN count newly allocatable.
func (v *Volume) CompleteSplit() (basePvbns []uint64, freedAlloc int, walked int, done bool) {
	st := v.cl
	survivors := make([]*fs.File, 0, len(v.snapOrder)+len(v.snapZombies))
	for _, id := range v.snapOrder {
		survivors = append(survivors, v.snaps[id].Snapmap)
	}
	for _, z := range v.snapZombies {
		survivors = append(survivors, z.Snapmap)
	}
	sumClear, fullFree, words := snap.ReclaimSets(st.BaseFile, survivors, v.amapFile, v.vvbnBlocks)
	if len(sumClear) != len(fullFree) {
		panic(fmt.Sprintf("volume %d: split completion with live base blocks", v.id))
	}
	for _, bn := range sumClear {
		v.Summary.Clear(bn)
		st.Base.Clear(bn)
	}
	if st.Base.Used() > 0 {
		// Clone-local snapshots still hold base bits: their frozen images
		// reference parent-owned physical homes, so the guard must outlive
		// them. Drain until those snapshots die.
		return nil, len(fullFree), words / 512, false
	}
	p, _, w := v.ZombieBlocks(st.BaseFile)
	v.cl = nil
	return p, len(fullFree), words/512 + w, true
}

// RequestRestore queues reverting the volume to snapshot id at the next CP
// and immediately discards all volatile state — the restore supersedes
// every uncommitted change, and client operations are gated until the
// restore is applied and committed. Accepts a still-pending snapshot create
// as the target (the CP engine defers the restore until the target
// materializes). Returns false if the snapshot does not exist.
func (v *Volume) RequestRestore(id uint64) bool {
	if !v.SnapshotExists(id) {
		pending := false
		for _, p := range v.pendSnaps {
			if p == id {
				pending = true
				break
			}
		}
		if !pending {
			return false
		}
	}
	v.DiscardVolatile()
	v.pendRestores = append(v.pendRestores, id)
	return true
}

// RequestRestoreAt is the NVRAM replay path: the snapshot's create record
// precedes the restore record in the log, so the target is either
// materialized or pending by the time this runs.
func (v *Volume) RequestRestoreAt(id uint64) {
	v.DiscardVolatile()
	v.pendRestores = append(v.pendRestores, id)
}

// RestorePending reports whether an unapplied or uncommitted restore gates
// the volume: true from the request until the CP that applied the restore
// commits. Client operations stall on it, which is what keeps the NVRAM
// log free of records straddling an unapplied restore.
func (v *Volume) RestorePending() bool { return len(v.pendRestores) > 0 || v.restoring }

// TakePendingRestores returns and clears the pending restore list (CP
// freeze). Order is request order. The gate stays closed (RestorePending
// remains true) until FinishRestore, called by the engine after the
// applying CP commits.
func (v *Volume) TakePendingRestores() []uint64 {
	p := v.pendRestores
	v.pendRestores = nil
	if len(p) > 0 {
		v.restoring = true
	}
	return p
}

// FinishRestore reopens the client gate — the CP that applied the taken
// restores has committed.
func (v *Volume) FinishRestore() { v.restoring = false }

// DeferRestore re-queues restores whose target snapshot has not
// materialized yet (created and restored within one NVRAM window); the
// volume stays gated and the next CP applies them.
func (v *Volume) DeferRestore(ids []uint64) {
	v.pendRestores = append(ids, v.pendRestores...)
}

// DiscardVolatile drops every un-persisted change: open files, dirty and
// record-dirty sets, file zombies, and resurrection guards. Called when a
// restore is requested or replayed — the snapshot image supersedes them
// all. Blocks of dropped zombies are reclaimed by the restore's bitmap
// diff (their active bits are still set), and dropped inode records are
// wiped wholesale when the inocopy image replaces the inode file.
func (v *Volume) DiscardVolatile() {
	v.files = make(map[uint64]*fs.File)
	v.dirty = make(map[uint64]*fs.File)
	v.recordDirty = make(map[uint64]*fs.File)
	v.deleted = make(map[uint64]bool)
	v.zombies = nil
}

// ApplyRestore rebinds the volume to snapshot s (CP phase 1b): the active
// map converges on the snapmap content through a word-wise diff — blocks
// only the discarded present held are freed (unless summary-held), blocks
// the snapshot holds re-enter the active set — and the inode file content
// becomes the inocopy image. O(metadata): bitmap words plus inode-file
// blocks, never data blocks. Returns the physical blocks to free in the
// aggregate, the VVBNs returned to the allocatable pool, and the scan cost
// in blocks.
func (v *Volume) ApplyRestore(s *snap.Snapshot) (pvbns []uint64, freedAlloc int, walked int) {
	v.DiscardVolatile()
	words := v.Activemap.ForEachDiff(s.Snapmap, func(bn uint64, inSrc bool) {
		if inSrc {
			// Re-entering the active set. The bit is summary-held (the
			// target snapshot holds it), so it was not allocatable before:
			// no free-counter movement.
			v.Activemap.Set(bn)
			return
		}
		if !v.Summary.IsSet(bn) {
			if pvbn := v.Container(block.VVBN(bn)); pvbn != 0 && pvbn != block.InvalidVBN {
				pvbns = append(pvbns, uint64(pvbn))
			}
			freedAlloc++
		}
		v.Activemap.Clear(bn)
	})
	copied := snap.ReplaceContent(v.inofile, s.InoCopy)
	return pvbns, freedAlloc, words/512 + copied
}

// CloneRestoreQuiescent reports whether no clone or restore work is
// outstanding (flush/quiesce convergence; a draining split — waiting only
// on clone-local snapshot deletes — does not block quiescence, since no CP
// can progress it).
func (v *Volume) CloneRestoreQuiescent() bool {
	if len(v.pendRestores) > 0 || v.restoring || v.pendClone != nil {
		return false
	}
	if v.cl != nil && v.cl.Splitting {
		// Still converging while base blocks are live; once only
		// snapshot-held base bits remain, user action (snapshot delete) is
		// needed and quiesce must not spin.
		return v.cl.LiveBase(v.amapFile, v.vvbnBlocks) == 0
	}
	return true
}
