// Package aggregate implements the WAFL storage aggregate: a pool of RAID
// groups exposing a physical VBN space, the allocation metafiles that track
// it (activemap, volume table), and the FlexVol volumes carved out of it,
// each with its own virtual VVBN space, container map, inode file, and
// volume activemap. It also implements format, superblock commit, and
// mount-time recovery.
package aggregate

import (
	"fmt"

	"wafl/internal/block"
)

// Geometry describes how the linear VBN space maps onto RAID groups and
// drives. Within a group, each data drive contributes a contiguous run of
// VBNs (drive-major layout), so a bucket — a chunk of consecutive DBNs on
// one drive — is also a contiguous VBN range.
type Geometry struct {
	NumGroups  int       // RAID groups in the aggregate
	DataDrives int       // data drives per group (excluding parity)
	Depth      block.DBN // blocks per drive
	AAStripes  block.DBN // stripes per Allocation Area
}

// Validate checks the geometry for consistency.
func (g Geometry) Validate() error {
	if g.NumGroups < 1 || g.DataDrives < 1 || g.Depth < 1 || g.AAStripes < 1 {
		return fmt.Errorf("aggregate: invalid geometry %+v", g)
	}
	if g.Depth%g.AAStripes != 0 {
		return fmt.Errorf("aggregate: depth %d not a multiple of AA stripes %d", g.Depth, g.AAStripes)
	}
	return nil
}

// TotalBlocks returns the number of VBNs in the aggregate.
func (g Geometry) TotalBlocks() uint64 {
	return uint64(g.NumGroups) * uint64(g.DataDrives) * uint64(g.Depth)
}

// AAsPerGroup returns the number of Allocation Areas in each RAID group.
func (g Geometry) AAsPerGroup() int { return int(g.Depth / g.AAStripes) }

// groupSpan returns the number of VBNs contributed by one RAID group.
func (g Geometry) groupSpan() uint64 { return uint64(g.DataDrives) * uint64(g.Depth) }

// Locate maps a VBN to its (group, data drive, dbn) location.
func (g Geometry) Locate(vbn block.VBN) (group, drive int, dbn block.DBN) {
	v := uint64(vbn)
	if v >= g.TotalBlocks() {
		panic(fmt.Sprintf("aggregate: vbn %d out of range %d", v, g.TotalBlocks()))
	}
	span := g.groupSpan()
	group = int(v / span)
	rem := v % span
	drive = int(rem / uint64(g.Depth))
	dbn = block.DBN(rem % uint64(g.Depth))
	return group, drive, dbn
}

// VBNOf maps a (group, drive, dbn) location to its VBN.
func (g Geometry) VBNOf(group, drive int, dbn block.DBN) block.VBN {
	return block.VBN(uint64(group)*g.groupSpan() + uint64(drive)*uint64(g.Depth) + uint64(dbn))
}

// AAOf returns the Allocation Area index (within its group) containing dbn.
func (g Geometry) AAOf(dbn block.DBN) int { return int(dbn / g.AAStripes) }

// AARange returns the DBN range [start, end) of Allocation Area aa.
func (g Geometry) AARange(aa int) (start, end block.DBN) {
	start = block.DBN(aa) * g.AAStripes
	return start, start + g.AAStripes
}

// BlocksPerAA returns the number of data blocks in one AA across all data
// drives of a group.
func (g Geometry) BlocksPerAA() uint64 {
	return uint64(g.DataDrives) * uint64(g.AAStripes)
}
