package aggregate

import (
	"encoding/binary"
	"fmt"

	"wafl/internal/bitmap"
	"wafl/internal/block"
	"wafl/internal/fs"
	"wafl/internal/sim"
	"wafl/internal/storage"
)

// superblock layout (one block at group 0, drive 0, DBN 0):
//
//	0   magic (8)
//	8   cp count (8)
//	16  number of volumes (8)
//	24  activemap metafile record (64)
//	88  volume table metafile record (64)
//	152 .. zero pad ..
//	4088 checksum over [0,4088) (8)
const superMagic = 0x57414c4c_57410001 // "WALL WA" v1

// encodeSuperblock captures the aggregate's commit state into a block.
func (a *Aggregate) encodeSuperblock() []byte {
	b := block.New()
	binary.LittleEndian.PutUint64(b[0:], superMagic)
	binary.LittleEndian.PutUint64(b[8:], a.cpCount)
	binary.LittleEndian.PutUint64(b[16:], uint64(len(a.vols)))
	fs.EncodeRecord(b[24:], a.amapFile.RecordOf(fs.FlagMetafile))
	fs.EncodeRecord(b[88:], a.volTable.RecordOf(fs.FlagMetafile))
	binary.LittleEndian.PutUint64(b[block.Size-8:], block.Checksum(b[:block.Size-8]))
	return b
}

// SuperblockBytes returns the encoded current commit state — the exact
// bytes WriteSuperblock would persist. Determinism tests compare it across
// runs as a compact digest of the committed tree (roots, CP count,
// checksum).
func (a *Aggregate) SuperblockBytes() []byte { return a.encodeSuperblock() }

// WriteSuperblock atomically persists the current commit state by
// overwriting the superblock in place — the single non-copy-on-write write
// in the system (paper §II-C). It blocks the calling simulated thread until
// the write I/O completes.
func (a *Aggregate) WriteSuperblock(t *sim.Thread) {
	b := a.encodeSuperblock()
	a.groups[0].Drive(0).WriteSync(t, []storage.WriteReq{{DBN: 0, Data: b}})
}

// MountFrom rebuilds an aggregate's in-memory state from committed media
// after a crash or restart, reusing the old aggregate's RAID groups (the
// media): it reads the superblock, eagerly loads the aggregate metafiles,
// rebinds the activemap (recomputing free and per-AA counts), and rebuilds
// every volume with its metafiles. User files are demand-loaded from inode
// records on first access.
//
// Mount-time reads are untimed: recovery time is not part of any measured
// experiment.
func MountFrom(old *Aggregate) (*Aggregate, error) {
	a := &Aggregate{
		s:       old.s,
		geo:     old.geo,
		profile: old.profile,
		groups:  old.groups,
	}
	sb := a.ReadVBNRaw(a.geo.VBNOf(0, 0, 0))
	if sb == nil {
		return nil, fmt.Errorf("aggregate: no superblock on media")
	}
	if got := binary.LittleEndian.Uint64(sb[0:]); got != superMagic {
		return nil, fmt.Errorf("aggregate: bad superblock magic %#x", got)
	}
	if sum := binary.LittleEndian.Uint64(sb[block.Size-8:]); sum != block.Checksum(sb[:block.Size-8]) {
		return nil, fmt.Errorf("aggregate: superblock checksum mismatch")
	}
	a.cpCount = binary.LittleEndian.Uint64(sb[8:])
	nvols := binary.LittleEndian.Uint64(sb[16:])

	a.amapFile = fs.FileFromRecord(fs.DecodeRecord(sb[24:]))
	a.volTable = fs.FileFromRecord(fs.DecodeRecord(sb[88:]))
	a.loadAll(a.amapFile)
	a.loadAll(a.volTable)

	a.Activemap = bitmap.Rebind(a.amapFile, a.geo.TotalBlocks())
	a.initAAFree()
	// Recompute per-AA free counts from the rebound bitmap, word-wise —
	// a per-bit IsSet loop would pay TotalBlocks buffer lookups.
	a.Activemap.ForEachSet(func(bn uint64) { a.onBitChange(bn, true) })
	a.Activemap.OnChange = a.onBitChange

	for vi := uint64(0); vi < nvols; vi++ {
		fbn := block.FBN(vi / VolEntriesPerBlock)
		buf := a.volTable.Buffer(0, fbn)
		if buf == nil {
			return nil, fmt.Errorf("aggregate: volume table block %d missing", fbn)
		}
		off := (int(vi) % VolEntriesPerBlock) * VolEntrySize
		v := a.decodeVolume(buf.Data()[off:])
		if v == nil {
			return nil, fmt.Errorf("aggregate: volume %d entry not in use", vi)
		}
		a.vols = append(a.vols, v)
	}
	a.rebuildCloneGuards()
	return a, nil
}
