package aggregate

import (
	"fmt"

	"wafl/internal/block"
	"wafl/internal/fs"
)

// AmapWrite is one block write produced by planning the activemap flush.
type AmapWrite struct {
	VBN  block.VBN
	Data []byte
}

// PlanAmapFlush cleans the aggregate activemap metafile and returns the
// block writes to issue. The activemap is self-referential: cleaning one of
// its blocks allocates a new VBN and frees the old one, and both bit
// changes may live in *other* activemap blocks — naively interleaving
// cleans with bit updates re-dirties already-cleaned blocks and never
// converges (the recursion WAFL's free-space machinery is specifically
// engineered around; cf. Kesavan et al., FAST'17).
//
// The algorithm here reaches a fixed point before writing anything:
//
//  1. Collect the set D of dirty activemap buffers plus every ancestor of a
//     member of D (ancestors are rewritten too, since child pointers move).
//  2. Pre-allocate a new VBN for every member of D (Set bits now). Any
//     newly-dirtied activemap block joins D and the loop repeats.
//  3. Pre-free every member's old location (Clear bits now); again, newly
//     dirtied blocks join D.
//  4. When D stops growing, the bit state is final. Clean bottom-up using
//     the pre-assigned VBNs — no further bit changes occur — and emit the
//     final images.
//
// alloc must return a free VBN suitable for metafile placement (the CP
// engine passes a cursor over a chosen Allocation Area that also avoids
// blocks freed in the running CP). The D-set is bounded by the total number
// of activemap buffers, so termination is structural.
func (a *Aggregate) PlanAmapFlush(alloc func() block.VBN) []AmapWrite {
	f := a.amapFile
	type key struct {
		level int
		idx   block.FBN
	}
	keyOf := func(b *fs.Buffer) key {
		return key{b.Level(), b.FBN() >> (8 * uint(b.Level()))}
	}

	assigned := make(map[key]block.VBN)
	member := make(map[key]*fs.Buffer)
	prefreed := make(map[key]bool)
	// memberOrder fixes the VBN-assignment order: alloc() is a cursor, so
	// handing out VBNs in map-iteration order would nondeterministically
	// shuffle which activemap block lands where on disk.
	var memberOrder []key

	// enroll adds b (and implicitly, later, its ancestors) to D.
	enroll := func(b *fs.Buffer) bool {
		k := keyOf(b)
		if _, ok := member[k]; ok {
			return false
		}
		member[k] = b
		memberOrder = append(memberOrder, k)
		f.DirtyIntoCP(b)
		return true
	}

	for pass := 0; ; pass++ {
		if pass > 64 {
			panic("aggregate: activemap flush did not reach a fixed point")
		}
		changed := false
		// Step 1: sweep the frozen set and ancestors into D.
		for level := 0; level <= f.Height(); level++ {
			for _, b := range f.FrozenLevel(level) {
				if enroll(b) {
					changed = true
				}
				for _, anc := range f.AncestorPath(b) {
					if enroll(anc) {
						changed = true
					}
				}
			}
		}
		// Step 2: pre-allocate for members without a new home. Set() may
		// dirty further activemap blocks; they are swept next pass.
		for _, k := range memberOrder {
			if _, ok := assigned[k]; ok {
				continue
			}
			vbn := alloc()
			if vbn == block.InvalidVBN {
				panic("aggregate: no space for activemap flush")
			}
			a.Sched().Tracer().NoteBlock(uint64(vbn), "amap flush plan")
			a.Activemap.Set(uint64(vbn))
			assigned[k] = vbn
			changed = true
		}
		// Step 3: pre-free old locations.
		for _, k := range memberOrder {
			if prefreed[k] {
				continue
			}
			prefreed[k] = true
			if old := member[k].VBN(); old != block.InvalidVBN && old != 0 {
				a.Activemap.Clear(uint64(old))
			}
			changed = true
		}
		if !changed {
			break
		}
	}

	// Step 4: bit state is final; clean bottom-up with assigned VBNs.
	var writes []AmapWrite
	for level := 0; level <= f.Height(); level++ {
		for _, b := range f.FrozenLevel(level) {
			k := keyOf(b)
			vbn, ok := assigned[k]
			if !ok {
				panic(fmt.Sprintf("aggregate: frozen activemap buffer (level %d, fbn %d) missing from flush plan", b.Level(), b.FBN()))
			}
			img := b.CPImage()
			f.CleanChild(b, block.InvalidVVBN, vbn) // old location already freed
			writes = append(writes, AmapWrite{VBN: vbn, Data: img})
		}
	}
	if f.FrozenCount() != 0 {
		panic("aggregate: activemap flush left frozen buffers")
	}
	return writes
}
