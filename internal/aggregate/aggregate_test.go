package aggregate

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"wafl/internal/block"
	"wafl/internal/fs"
	"wafl/internal/sim"
	"wafl/internal/storage"
)

var testGeo = Geometry{NumGroups: 2, DataDrives: 3, Depth: 8192, AAStripes: 1024}

func newTestAggr(t *testing.T) (*sim.Scheduler, *Aggregate) {
	t.Helper()
	s := sim.New(4, 1)
	a, err := New(s, Config{Geometry: testGeo, Profile: storage.SSD})
	if err != nil {
		t.Fatal(err)
	}
	return s, a
}

func TestGeometryRoundTrip(t *testing.T) {
	fn := func(v uint32) bool {
		vbn := block.VBN(uint64(v) % testGeo.TotalBlocks())
		g, d, dbn := testGeo.Locate(vbn)
		return testGeo.VBNOf(g, d, dbn) == vbn
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometryAAMath(t *testing.T) {
	if testGeo.AAsPerGroup() != 8 {
		t.Fatalf("AAs per group = %d", testGeo.AAsPerGroup())
	}
	if testGeo.AAOf(0) != 0 || testGeo.AAOf(1023) != 0 || testGeo.AAOf(1024) != 1 {
		t.Fatal("AAOf wrong")
	}
	s, e := testGeo.AARange(2)
	if s != 2048 || e != 3072 {
		t.Fatalf("AARange = [%d,%d)", s, e)
	}
	if testGeo.BlocksPerAA() != 3*1024 {
		t.Fatal("BlocksPerAA wrong")
	}
}

func TestGeometryValidate(t *testing.T) {
	bad := Geometry{NumGroups: 1, DataDrives: 2, Depth: 1000, AAStripes: 512}
	if bad.Validate() == nil {
		t.Fatal("depth not multiple of AA stripes must fail")
	}
	if (Geometry{}).Validate() == nil {
		t.Fatal("zero geometry must fail")
	}
	if testGeo.Validate() != nil {
		t.Fatal("test geometry should validate")
	}
}

func TestFormatReservesSuperblockStripe(t *testing.T) {
	_, a := newTestAggr(t)
	for gi := 0; gi < testGeo.NumGroups; gi++ {
		for di := 0; di < testGeo.DataDrives; di++ {
			if !a.Activemap.IsSet(uint64(testGeo.VBNOf(gi, di, 0))) {
				t.Fatalf("dbn 0 of (%d,%d) not reserved", gi, di)
			}
		}
	}
	wantFree := testGeo.TotalBlocks() - uint64(testGeo.NumGroups*testGeo.DataDrives)
	if a.TotalFree() != wantFree {
		t.Fatalf("free = %d, want %d", a.TotalFree(), wantFree)
	}
}

func TestAAFreeTracking(t *testing.T) {
	_, a := newTestAggr(t)
	per := int64(testGeo.BlocksPerAA())
	// AA 0 of each group lost the reserved stripe-0 blocks.
	if a.AAFree(0, 0) != per-3 || a.AAFree(1, 0) != per-3 {
		t.Fatalf("AA0 free = %d,%d", a.AAFree(0, 0), a.AAFree(1, 0))
	}
	vbn := uint64(testGeo.VBNOf(0, 1, 2048)) // group 0, AA 2
	a.Activemap.Set(vbn)
	if a.AAFree(0, 2) != per-1 {
		t.Fatalf("AA2 free = %d", a.AAFree(0, 2))
	}
	a.Activemap.Clear(vbn)
	if a.AAFree(0, 2) != per {
		t.Fatalf("AA2 free after clear = %d", a.AAFree(0, 2))
	}
}

func TestSelectAAMostFree(t *testing.T) {
	_, a := newTestAggr(t)
	// Consume blocks in AA 0..6 of group 0, leaving AA 7 fullest.
	for aa := 0; aa < 7; aa++ {
		start, _ := testGeo.AARange(aa)
		for i := block.DBN(0); i < block.DBN(10*(aa+1)); i++ {
			dbn := start + i + 1 // skip reserved stripe 0
			a.Activemap.Set(uint64(testGeo.VBNOf(0, 0, dbn)))
		}
	}
	if got := a.SelectAA(0, -1); got != 7 {
		t.Fatalf("SelectAA = %d, want 7", got)
	}
	if got := a.SelectAA(0, 7); got == 7 {
		t.Fatal("exclude ignored")
	}
	if got := a.SelectAAFirstFit(0, -1); got != 0 {
		t.Fatalf("first fit = %d, want 0", got)
	}
	if got := a.SelectAAFirstFit(0, 0); got != 1 {
		t.Fatalf("first fit excluding 0 = %d, want 1", got)
	}
}

func TestAAFreeMatchesBitmapRecount(t *testing.T) {
	_, a := newTestAggr(t)
	rng := a.Sched().Rand()
	for i := 0; i < 5000; i++ {
		bn := uint64(rng.Int63n(int64(testGeo.TotalBlocks())))
		if a.Activemap.IsSet(bn) {
			continue
		}
		a.Activemap.Set(bn)
	}
	for gi := 0; gi < testGeo.NumGroups; gi++ {
		for aa := 0; aa < testGeo.AAsPerGroup(); aa++ {
			s, e := testGeo.AARange(aa)
			var want int64
			for di := 0; di < testGeo.DataDrives; di++ {
				lo := uint64(testGeo.VBNOf(gi, di, s))
				hi := uint64(testGeo.VBNOf(gi, di, e-1)) + 1
				n, _ := a.Activemap.CountFree(lo, hi)
				want += int64(n)
			}
			if got := a.AAFree(gi, aa); got != want {
				t.Fatalf("aaFree[%d][%d] = %d, recount = %d", gi, aa, got, want)
			}
		}
	}
}

func TestVolumeCreateAndContainer(t *testing.T) {
	_, a := newTestAggr(t)
	v := a.AddVolume(1 << 16)
	f := v.CreateFile(1 << 12)
	if f.Ino() != FirstUserIno {
		t.Fatalf("first ino = %d", f.Ino())
	}
	g := v.CreateFile(100)
	if g.Ino() != FirstUserIno+1 || g.Height() != 1 {
		t.Fatalf("second file ino=%d height=%d", g.Ino(), g.Height())
	}
	v.SetContainer(700, 12345)
	if got := v.Container(700); got != 12345 {
		t.Fatalf("container = %v", got)
	}
	if got := v.Container(701); got != 0 {
		t.Fatalf("unset container = %v", got)
	}
}

// testCheckpoint is a miniature, single-threaded consistency point used to
// exercise persistence and mount before the real CP engine exists: it
// allocates VBNs with a forward cursor, writes CP images directly to the
// drives (synchronously, bypassing tetris batching), and skips frees
// (leaking old blocks, which mount does not care about).
type testCheckpoint struct {
	t      *testing.T
	s      *sim.Scheduler
	a      *Aggregate
	cursor uint64
	err    string
}

// findVBN returns the next free VBN at the cursor without claiming it.
func (c *testCheckpoint) findVBN() block.VBN {
	for {
		c.cursor++
		if c.cursor >= c.a.geo.TotalBlocks() {
			c.err = "test checkpoint out of space"
			return block.InvalidVBN
		}
		if !c.a.Activemap.IsSet(c.cursor) {
			return block.VBN(c.cursor)
		}
	}
}

func (c *testCheckpoint) allocVBN() block.VBN {
	vbn := c.findVBN()
	if vbn != block.InvalidVBN {
		c.a.Activemap.Set(uint64(vbn))
	}
	return vbn
}

func (c *testCheckpoint) writeVBN(th *sim.Thread, vbn block.VBN, data []byte) {
	g, d, dbn := c.a.geo.Locate(vbn)
	c.a.Group(g).Drive(d).WriteSync(th, []storage.WriteReq{{DBN: dbn, Data: data}})
}

func (c *testCheckpoint) cleanFile(th *sim.Thread, f *fs.File, dual bool, v *Volume) {
	for round := 0; round < 50 && f.FrozenCount() > 0; round++ {
		for level := 0; level <= f.Height(); level++ {
			for _, b := range f.FrozenLevel(level) {
				vvbn := block.InvalidVVBN
				if dual && v != nil {
					// Allocate a VVBN with a simple cursor too.
					for bn := uint64(1); ; bn++ {
						if !v.Activemap.IsSet(bn) {
							v.Activemap.Set(bn)
							vvbn = block.VVBN(bn)
							break
						}
					}
				}
				vbn := c.allocVBN()
				img := b.CPImage()
				f.CleanChild(b, vvbn, vbn)
				c.writeVBN(th, vbn, img)
				if dual && v != nil {
					v.SetContainer(vvbn, vbn)
				}
			}
		}
	}
	if f.FrozenCount() > 0 {
		c.err = fmt.Sprintf("file %d did not converge", f.Ino())
	}
}

// run performs the full mini-CP on the calling sim thread.
func (c *testCheckpoint) run(th *sim.Thread) {
	a := c.a
	for _, v := range a.Volumes() {
		files := v.FreezeAll()
		for _, f := range files {
			c.cleanFile(th, f, true, v)
			v.WriteRecord(f)
		}
		for _, mf := range v.Metafiles() {
			c.cleanFile(th, mf, false, nil)
		}
	}
	a.WriteVolumeEntries()
	c.cleanFile(th, a.VolTableFile(), false, nil)
	// The activemap is self-referential: use the flush planner.
	writes := a.PlanAmapFlush(c.findVBN)
	for _, w := range writes {
		c.writeVBN(th, w.VBN, w.Data)
	}
	a.SetCPCount(a.CPCount() + 1)
	a.WriteSuperblock(th)
}

// check fails the test if the mini-CP recorded an error.
func (c *testCheckpoint) check() {
	c.t.Helper()
	if c.err != "" {
		c.t.Fatal(c.err)
	}
}

func pattern(tag byte) []byte {
	b := make([]byte, block.Size)
	for i := range b {
		b[i] = tag ^ byte(i*7)
	}
	return b
}

func TestCheckpointMountRoundTrip(t *testing.T) {
	s, a := newTestAggr(t)
	v := a.AddVolume(1 << 16)
	f := v.CreateFile(1 << 12)
	f.WriteBlock(0, pattern(1))
	f.WriteBlock(5, pattern(2))
	f.WriteBlock(300, pattern(3))
	v.MarkDirty(f)
	empty := v.CreateFile(100) // created, never written: record must persist

	cp := &testCheckpoint{t: t, s: s, a: a}
	s.Go("cp", sim.CatCP, func(th *sim.Thread) { cp.run(th) })
	s.Run(sim.Time(10 * sim.Second))
	cp.check()

	// Crash: drop all volatile state, remount from media.
	a.CrashAll()
	m, err := MountFrom(a)
	if err != nil {
		t.Fatal(err)
	}
	if m.CPCount() != 1 {
		t.Fatalf("cp count = %d", m.CPCount())
	}
	mv := m.Volume(0)
	if mv.VVBNBlocks() != 1<<16 || mv.NextIno() != FirstUserIno+2 {
		t.Fatalf("volume fields: vvbn=%d nextIno=%d", mv.VVBNBlocks(), mv.NextIno())
	}
	mf := mv.LookupFile(f.Ino())
	if mf == nil {
		t.Fatal("file lost")
	}
	for fbn, want := range map[block.FBN][]byte{0: pattern(1), 5: pattern(2), 300: pattern(3)} {
		got := mv.ReadFileBlock(nil, mf, fbn)
		if !bytes.Equal(got, want) {
			t.Fatalf("fbn %d content mismatch after mount", fbn)
		}
	}
	if mv.ReadFileBlock(nil, mf, 7) != nil {
		t.Fatal("hole should read nil")
	}
	me := mv.LookupFile(empty.Ino())
	if me == nil {
		t.Fatal("empty created file's record lost")
	}
	if mv.LookupFile(999) != nil {
		t.Fatal("nonexistent ino should return nil")
	}
	// Container map must agree with the file's pointers.
	b0 := mf.Buffer(0, 0)
	if b0 == nil || mv.Container(b0.VVBN()) != b0.VBN() {
		t.Fatal("container map inconsistent with file pointer")
	}
}

func TestMountPreservesBitmapState(t *testing.T) {
	s, a := newTestAggr(t)
	v := a.AddVolume(1 << 16)
	f := v.CreateFile(1000)
	for fbn := block.FBN(0); fbn < 50; fbn++ {
		f.WriteBlock(fbn, pattern(byte(fbn)))
	}
	v.MarkDirty(f)
	cp := &testCheckpoint{t: t, s: s, a: a}
	s.Go("cp", sim.CatCP, func(th *sim.Thread) { cp.run(th) })
	s.Run(sim.Time(10 * sim.Second))
	cp.check()
	usedBefore := a.Activemap.Used()

	a.CrashAll()
	m, err := MountFrom(a)
	if err != nil {
		t.Fatal(err)
	}
	if m.Activemap.Used() != usedBefore {
		t.Fatalf("used blocks %d != %d after mount", m.Activemap.Used(), usedBefore)
	}
	// Per-AA counts must be consistent with the recount.
	for gi := 0; gi < testGeo.NumGroups; gi++ {
		for aa := 0; aa < testGeo.AAsPerGroup(); aa++ {
			if m.AAFree(gi, aa) != a.AAFree(gi, aa) {
				t.Fatalf("aaFree[%d][%d] mismatch after mount", gi, aa)
			}
		}
	}
}

func TestMountFailsWithoutSuperblock(t *testing.T) {
	_, a := newTestAggr(t)
	if _, err := MountFrom(a); err == nil {
		t.Fatal("mount of unformatted media must fail")
	}
}

func TestMountFailsOnCorruptSuperblock(t *testing.T) {
	s, a := newTestAggr(t)
	v := a.AddVolume(1 << 16)
	f := v.CreateFile(100)
	f.WriteBlock(0, pattern(1))
	v.MarkDirty(f)
	cp := &testCheckpoint{t: t, s: s, a: a}
	s.Go("cp", sim.CatCP, func(th *sim.Thread) { cp.run(th) })
	s.Run(sim.Time(10 * sim.Second))
	cp.check()

	// Corrupt the superblock checksum region.
	sb := a.ReadVBNRaw(a.geo.VBNOf(0, 0, 0))
	bad := block.Clone(sb)
	bad[100] ^= 0xFF
	s.Go("corrupt", sim.CatOther, func(th *sim.Thread) {
		a.Group(0).Drive(0).WriteSync(th, []storage.WriteReq{{DBN: 0, Data: bad}})
	})
	s.Run(sim.Time(20 * sim.Second))
	if _, err := MountFrom(a); err == nil {
		t.Fatal("mount must reject corrupt superblock")
	}
}

func TestRaidParityConsistentAfterCheckpoint(t *testing.T) {
	// The mini-CP bypasses tetris/parity, so this only checks that
	// VerifyStripe tolerates data written without parity when
	// reconstructing is not claimed. Full parity verification happens in
	// the core allocator tests. Here we just ensure media reads work via
	// the RAID accessors used by mount.
	s, a := newTestAggr(t)
	v := a.AddVolume(1 << 16)
	f := v.CreateFile(100)
	f.WriteBlock(0, pattern(9))
	v.MarkDirty(f)
	cp := &testCheckpoint{t: t, s: s, a: a}
	s.Go("cp", sim.CatCP, func(th *sim.Thread) { cp.run(th) })
	s.Run(sim.Time(10 * sim.Second))
	cp.check()
	if a.ReadVBNRaw(a.geo.VBNOf(0, 0, 0)) == nil {
		t.Fatal("superblock unreadable through geometry accessor")
	}
}
