package aggregate

import (
	"fmt"

	"wafl/internal/bitmap"
	"wafl/internal/block"
	"wafl/internal/fs"
	"wafl/internal/raid"
	"wafl/internal/sim"
	"wafl/internal/storage"
)

// Well-known inode numbers for aggregate-level metafiles. Their records are
// stored in the superblock, the root of trust.
const (
	InoAggrActivemap = 1
	InoAggrVolTable  = 2
)

// Config describes an aggregate to create.
type Config struct {
	Geometry
	Profile storage.Profile
}

// DefaultGeometry mirrors the paper's mid-range testbed shape at simulation
// scale: two RAID groups of four data drives plus parity (Fig 3 shows a
// five-data-drive aggregate across two groups).
var DefaultGeometry = Geometry{
	NumGroups:  2,
	DataDrives: 4,
	Depth:      32768,
	AAStripes:  2048,
}

// Aggregate is a shared pool of RAID groups hosting FlexVol volumes.
type Aggregate struct {
	s       *sim.Scheduler
	geo     Geometry
	profile storage.Profile
	groups  []*raid.Group

	// Activemap tracks physical VBN allocation; its backing metafile's
	// blocks live in the aggregate itself.
	Activemap *bitmap.Activemap
	amapFile  *fs.File
	volTable  *fs.File

	// aaFree[group][aa] is the count of free data blocks in each
	// Allocation Area, maintained incrementally from activemap changes
	// and used by the infrastructure's AA selection (most-free wins).
	aaFree [][]int64

	vols    []*Volume
	cpCount uint64

	// inj, when set, is the drive-fault plan wired into every drive; the
	// aggregate keeps it to survive MountFrom and to report repair stats.
	inj    storage.Injector
	repair RepairStats
}

// RepairStats counts ReadVBNRaw fault handling: transient read errors that
// succeeded on retry, and persistent errors repaired from RAID parity.
type RepairStats struct {
	Retries      uint64
	Reconstructs uint64
}

// New formats a fresh aggregate: builds the RAID groups, the activemap and
// volume-table metafiles, and reserves the superblock stripe.
func New(s *sim.Scheduler, cfg Config) (*Aggregate, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Aggregate{s: s, geo: cfg.Geometry, profile: cfg.Profile}
	for gi := 0; gi < cfg.NumGroups; gi++ {
		a.groups = append(a.groups, raid.NewGroup(s, gi, cfg.DataDrives, cfg.Depth, cfg.Profile))
	}

	total := cfg.TotalBlocks()
	amapBlocks := (total + bitmap.BitsPerBlock - 1) / bitmap.BitsPerBlock
	a.amapFile = fs.NewFile(InoAggrActivemap, fs.HeightFor(amapBlocks+1))
	a.volTable = fs.NewFile(InoAggrVolTable, fs.HeightFor(64))
	a.Activemap = bitmap.New(a.amapFile, total)

	a.initAAFree()
	a.Activemap.OnChange = a.onBitChange

	// Reserve DBN 0 on every data drive: (group 0, drive 0, 0) holds the
	// superblock; the rest are reserved for symmetry so that stripe 0 is
	// never allocated. Set (not SetRaw) so the covering activemap blocks
	// are dirtied and the reservations persist in the first CP.
	for gi := 0; gi < cfg.NumGroups; gi++ {
		for di := 0; di < cfg.DataDrives; di++ {
			a.Activemap.Set(uint64(a.geo.VBNOf(gi, di, 0)))
		}
	}
	return a, nil
}

func (a *Aggregate) initAAFree() {
	a.aaFree = make([][]int64, a.geo.NumGroups)
	per := int64(a.geo.BlocksPerAA())
	for gi := range a.aaFree {
		a.aaFree[gi] = make([]int64, a.geo.AAsPerGroup())
		for aa := range a.aaFree[gi] {
			a.aaFree[gi][aa] = per
		}
	}
}

func (a *Aggregate) onBitChange(bn uint64, used bool) {
	g, _, dbn := a.geo.Locate(block.VBN(bn))
	aa := a.geo.AAOf(dbn)
	if used {
		a.aaFree[g][aa]--
	} else {
		a.aaFree[g][aa]++
	}
}

// Sched returns the simulation scheduler.
func (a *Aggregate) Sched() *sim.Scheduler { return a.s }

// Geometry returns the aggregate's geometry.
func (a *Aggregate) Geometry() Geometry { return a.geo }

// Group returns RAID group gi.
func (a *Aggregate) Group(gi int) *raid.Group { return a.groups[gi] }

// Groups returns the number of RAID groups.
func (a *Aggregate) Groups() int { return len(a.groups) }

// AmapFile returns the activemap's backing metafile.
func (a *Aggregate) AmapFile() *fs.File { return a.amapFile }

// VolTableFile returns the volume-table metafile.
func (a *Aggregate) VolTableFile() *fs.File { return a.volTable }

// CPCount returns the number of completed consistency points.
func (a *Aggregate) CPCount() uint64 { return a.cpCount }

// SetCPCount is used by the CP engine after a successful commit.
func (a *Aggregate) SetCPCount(n uint64) { a.cpCount = n }

// Volumes returns the aggregate's volumes.
func (a *Aggregate) Volumes() []*Volume { return a.vols }

// Volume returns volume vi.
func (a *Aggregate) Volume(vi int) *Volume { return a.vols[vi] }

// AAFree returns the free-block count of (group, aa).
func (a *Aggregate) AAFree(group, aa int) int64 { return a.aaFree[group][aa] }

// SelectAA returns the Allocation Area in group with the most free blocks —
// the paper's AA selection policy (§IV-D). exclude (-1 for none) skips the
// currently-in-use AA so a refill moves on rather than re-picking a
// just-exhausted area.
func (a *Aggregate) SelectAA(group, exclude int) int {
	best, bestFree := -1, int64(-1)
	for aa, free := range a.aaFree[group] {
		if aa == exclude {
			continue
		}
		if free > bestFree {
			best, bestFree = aa, free
		}
	}
	return best
}

// SelectAAFirstFit returns the lowest-numbered AA with any free block — the
// alternative policy used by the AA-selection ablation.
func (a *Aggregate) SelectAAFirstFit(group, exclude int) int {
	for aa, free := range a.aaFree[group] {
		if aa != exclude && free > 0 {
			return aa
		}
	}
	return -1
}

// SetInjector wires a drive-fault plan into every drive (data and parity)
// of every RAID group. Pass nil to disable injection.
func (a *Aggregate) SetInjector(in storage.Injector) {
	a.inj = in
	for _, g := range a.groups {
		for i := 0; i < g.DataDrives(); i++ {
			g.Drive(i).SetInjector(in)
		}
		g.ParityDrive().SetInjector(in)
	}
}

// Injector returns the wired drive-fault plan, or nil.
func (a *Aggregate) Injector() storage.Injector { return a.inj }

// Repairs returns the ReadVBNRaw fault-repair counters.
func (a *Aggregate) Repairs() RepairStats { return a.repair }

// ReadVBNRaw returns the committed media content of vbn without timing
// effects (mount/verification path). Never-written blocks return nil.
//
// This is the OS-visible read path, so it is subject to injected read
// errors: a failed read is retried once (transient errors clear), and a
// persistent failure is repaired by XOR reconstruction from the rest of the
// RAID stripe — valid because this path only ever reads committed blocks,
// whose stripes have consistent parity.
func (a *Aggregate) ReadVBNRaw(vbn block.VBN) []byte {
	g, d, dbn := a.geo.Locate(vbn)
	drive := a.groups[g].Drive(d)
	b, ok := drive.PeekChecked(dbn)
	if ok {
		return b
	}
	a.repair.Retries++
	if b, ok = drive.PeekChecked(dbn); ok {
		return b
	}
	a.repair.Reconstructs++
	return a.groups[g].ReconstructBlock(d, dbn)
}

// ReadVBN performs a timed single-block read of vbn, blocking the calling
// simulated thread for the drive service time.
func (a *Aggregate) ReadVBN(t *sim.Thread, vbn block.VBN) []byte {
	g, d, dbn := a.geo.Locate(vbn)
	bs := a.groups[g].Drive(d).ReadSync(t, []block.DBN{dbn})
	return bs[0]
}

// TotalFree returns the aggregate's current free block count (ground truth
// from the activemap; the loosely-accounted global counter shadows this).
func (a *Aggregate) TotalFree() uint64 { return a.Activemap.Free() }

// CrashAll drops in-flight I/O on every drive, modelling power loss.
func (a *Aggregate) CrashAll() {
	for _, g := range a.groups {
		for i := 0; i < g.DataDrives(); i++ {
			g.Drive(i).DropInFlight()
		}
		g.ParityDrive().DropInFlight()
	}
}

// loadAll eagerly installs every reachable block of f from committed media
// (untimed; mount path). It walks the tree from the root.
func (a *Aggregate) loadAll(f *fs.File) {
	if f.RootVBN == block.InvalidVBN {
		return
	}
	root := a.ReadVBNRaw(f.RootVBN)
	if root == nil {
		panic(fmt.Sprintf("aggregate: metafile %d root vbn %v unreadable", f.Ino(), f.RootVBN))
	}
	f.InstallBuffer(f.Height(), 0, root, f.RootVVBN, f.RootVBN)
	a.loadChildren(f, f.Height(), 0, root)
}

func (a *Aggregate) loadChildren(f *fs.File, level int, idx block.FBN, data []byte) {
	if level == 0 {
		return
	}
	for i := 0; i < block.PtrsPerBlock; i++ {
		vvbn, vbn := block.GetPtr(data, i)
		if vbn == 0 || vbn == block.InvalidVBN {
			continue // hole
		}
		childIdx := idx*block.PtrsPerBlock + block.FBN(i)
		child := a.ReadVBNRaw(vbn)
		if child == nil {
			panic(fmt.Sprintf("aggregate: metafile %d block (level %d, idx %d) at %v unreadable", f.Ino(), level-1, childIdx, vbn))
		}
		f.InstallBuffer(level-1, childIdx, child, vvbn, vbn)
		a.loadChildren(f, level-1, childIdx, child)
	}
}
