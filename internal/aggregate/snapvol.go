package aggregate

import (
	"wafl/internal/block"
	"wafl/internal/fs"
	"wafl/internal/sim"
	"wafl/internal/snap"
)

// Volume-side snapshot lifecycle. A snapshot create is a two-step protocol:
// the client-facing RequestSnapshot only queues the request (and is what the
// NVRAM log records); the CP engine takes the pending set at freeze and
// calls MaterializeSnapshot once the frozen image's metafile content is
// final, so the captured snapmap/inocopy are exactly the committed CP.
// Delete mirrors deferred file deletion: the snapshot leaves the namespace
// immediately and becomes a zombie reclaimed by the next CP.

// RequestSnapshot queues a snapshot create for the next CP freeze and
// returns its assigned ID.
func (v *Volume) RequestSnapshot() uint64 {
	id := v.nextSnapID
	v.nextSnapID++
	v.pendSnaps = append(v.pendSnaps, id)
	return id
}

// RequestSnapshotAt re-queues a snapshot create at a specific ID — the NVRAM
// replay path, which must be idempotent (the create may already have been
// materialized by a CP that completed before the crash).
func (v *Volume) RequestSnapshotAt(id uint64) {
	if id >= v.nextSnapID {
		v.nextSnapID = id + 1
	}
	if _, ok := v.snaps[id]; ok {
		return
	}
	for _, p := range v.pendSnaps {
		if p == id {
			return
		}
	}
	v.pendSnaps = append(v.pendSnaps, id)
}

// SnapshotExists reports whether snapshot id is materialized (readable and
// durable once the materializing CP has committed).
func (v *Volume) SnapshotExists(id uint64) bool {
	_, ok := v.snaps[id]
	return ok
}

// SnapshotByID returns the materialized snapshot id, or nil.
func (v *Volume) SnapshotByID(id uint64) *snap.Snapshot { return v.snaps[id] }

// Snapshots returns the materialized snapshots in ID order.
func (v *Volume) Snapshots() []*snap.Snapshot {
	out := make([]*snap.Snapshot, 0, len(v.snapOrder))
	for _, id := range v.snapOrder {
		out = append(out, v.snaps[id])
	}
	return out
}

// SnapshotCount returns the number of materialized snapshots.
func (v *Volume) SnapshotCount() int { return len(v.snapOrder) }

// SnapshotIDs returns the materialized snapshot IDs in ascending order.
func (v *Volume) SnapshotIDs() []uint64 {
	return append([]uint64(nil), v.snapOrder...)
}

// DeleteSnapshot removes snapshot id from the namespace. A still-pending
// create is simply cancelled; a materialized snapshot becomes a zombie whose
// exclusively-held blocks the next CP reclaims. Idempotent; returns false if
// the snapshot does not exist, is the base of a bound or pending clone (the
// delete guard — split or delete the clones first), or is the target of a
// pending SnapRestore.
func (v *Volume) DeleteSnapshot(id uint64) bool {
	if v.cloneRefs[id] > 0 {
		return false
	}
	for _, r := range v.pendRestores {
		if r == id {
			return false
		}
	}
	for i, p := range v.pendSnaps {
		if p == id {
			v.pendSnaps = append(v.pendSnaps[:i], v.pendSnaps[i+1:]...)
			return true
		}
	}
	s, ok := v.snaps[id]
	if !ok {
		return false
	}
	delete(v.snaps, id)
	for i, sid := range v.snapOrder {
		if sid == id {
			v.snapOrder = append(v.snapOrder[:i], v.snapOrder[i+1:]...)
			break
		}
	}
	v.snapZombies = append(v.snapZombies, s)
	return true
}

// TakePendingSnapshots returns and clears the pending create list (CP
// freeze). The returned IDs are materialized later in the same CP.
func (v *Volume) TakePendingSnapshots() []uint64 {
	p := v.pendSnaps
	v.pendSnaps = nil
	return p
}

// TakeSnapZombies returns and clears the pending snapshot-zombie list (CP
// start).
func (v *Volume) TakeSnapZombies() []*snap.Snapshot {
	z := v.snapZombies
	v.snapZombies = nil
	return z
}

// SnapshotsQuiescent reports whether no snapshot work is outstanding (used
// by flush/quiesce convergence checks).
func (v *Volume) SnapshotsQuiescent() bool {
	return len(v.pendSnaps) == 0 && len(v.snapZombies) == 0
}

// MaterializeSnapshot captures snapshot id from the volume's current
// metafile content — the CP engine calls it after the frozen generation's
// activemap and inode-file updates are final, so the copies are exactly the
// committing CP's image. The snapmap is folded into the summary map. Returns
// the new snapshot and the number of metafile blocks copied (CPU charging).
func (v *Volume) MaterializeSnapshot(id, cpCount uint64) (*snap.Snapshot, int) {
	sm := fs.NewFile(snapMetaIno(id, 0), v.amapFile.Height())
	ic := fs.NewFile(snapMetaIno(id, 1), v.inofile.Height())
	copied := snap.CopyContent(sm, v.amapFile)
	copied += snap.CopyContent(ic, v.inofile)
	s := &snap.Snapshot{ID: id, CreateCP: cpCount, Snapmap: sm, InoCopy: ic}
	v.snaps[id] = s
	v.snapOrder = append(v.snapOrder, id)
	for i := len(v.snapOrder) - 1; i > 0 && v.snapOrder[i-1] > v.snapOrder[i]; i-- {
		v.snapOrder[i-1], v.snapOrder[i] = v.snapOrder[i], v.snapOrder[i-1]
	}
	v.Summary.OrFrom(sm)
	return s, copied
}

// ReclaimSnapshot applies the volume-local half of deleting a materialized
// snapshot: it diffs the victim's snapmap against the survivors and the
// active map, clears the summary bits nobody else holds, and returns the
// physical blocks now referenced by nothing — the exclusively-held user
// blocks (located through the container map) plus the snapshot's own
// snapmap/inocopy metafile trees. The caller frees the returned pvbns in the
// aggregate activemap. freedVVBNs counts user blocks fully reclaimed (their
// VVBNs return to the volume's allocatable pool by the summary clear alone:
// their active bits were already clear). walked is the scan cost in
// words/blocks for CPU charging.
//
// laterZombies are same-batch victims the caller has not processed yet: when
// one CP reclaims several snapshots, a block shared between two victims must
// be kept by the earlier pass and freed exactly once by the last holder, or
// the shared bits double-free.
func (v *Volume) ReclaimSnapshot(s *snap.Snapshot, laterZombies []*snap.Snapshot) (pvbns []uint64, freedVVBNs int, walked int) {
	survivors := make([]*fs.File, 0, len(v.snapOrder)+len(laterZombies)+len(v.snapZombies))
	for _, id := range v.snapOrder {
		survivors = append(survivors, v.snaps[id].Snapmap)
	}
	for _, z := range laterZombies {
		survivors = append(survivors, z.Snapmap)
	}
	for _, z := range v.snapZombies {
		// Deleted after the running CP took its zombie batch (the CP thread
		// yields mid-phase): still summary-held, reclaimed by a later CP.
		// Treat as a survivor so a shared bit is cleared exactly once, by
		// its last holder.
		survivors = append(survivors, z.Snapmap)
	}
	if v.cl != nil {
		// A clone's base map holds its shared VVBNs in the summary exactly
		// like a snapshot would — and their physical homes belong to the
		// parent, so a clone-local snapshot delete must never free them.
		survivors = append(survivors, v.cl.BaseFile)
	}
	sumClear, fullFree, words := snap.ReclaimSets(s.Snapmap, survivors, v.amapFile, v.vvbnBlocks)
	// Capture physical homes before clearing summary bits: a cleared bit
	// makes its VVBN allocatable again, after which the container entry may
	// be overwritten by a new binding.
	for _, bn := range fullFree {
		if pvbn := v.Container(block.VVBN(bn)); pvbn != 0 && pvbn != block.InvalidVBN {
			pvbns = append(pvbns, uint64(pvbn))
		}
	}
	for _, bn := range sumClear {
		v.Summary.Clear(bn)
	}
	p1, _, w1 := v.ZombieBlocks(s.Snapmap)
	p2, _, w2 := v.ZombieBlocks(s.InoCopy)
	pvbns = append(pvbns, p1...)
	pvbns = append(pvbns, p2...)
	return pvbns, len(fullFree), words/512 + w1 + w2
}

// WriteSnapdirEntries rewrites the snapdir content from the live snapshot
// set, zeroing slots vacated by deletes, dirtying touched blocks into the
// running CP. The CP engine calls it after the snapshots' own metafiles are
// cleaned (their records must hold final root pointers).
func (v *Volume) WriteSnapdirEntries() {
	slot := 0
	touch := func(fn func(d []byte)) {
		fbn := block.FBN(slot / snap.EntriesPerBlock)
		buf := v.snapdir.GetOrCreateL0(fbn)
		d := buf.CPMutableData()
		fn(d[(slot%snap.EntriesPerBlock)*snap.EntrySize:])
		v.snapdir.DirtyIntoCP(buf)
	}
	for _, id := range v.snapOrder {
		s := v.snaps[id]
		touch(func(d []byte) { s.EncodeEntry(d) })
		slot++
	}
	for _, s := range v.snapZombies {
		// Deleted after the running CP took its zombie batch: reclamation
		// belongs to a later CP, so the committed image must keep the
		// snapshot fully alive — entry and summary bits leave the media
		// image together, in the CP that reclaims it. Dropping the entry
		// now would commit ownerless summary bits, and after a crash the
		// replayed delete would find nothing to reclaim them.
		touch(func(d []byte) { s.EncodeEntry(d) })
		slot++
	}
	written := slot
	for ; slot < v.snapSlots; slot++ {
		touch(func(d []byte) {
			for i := range d[:snap.EntrySize] {
				d[i] = 0
			}
		})
	}
	v.snapSlots = written
}

// SnapReadBlock reads FBN fbn of inode ino from snapshot snapID's frozen
// image, walking the committed media image (snapshot trees live only on
// media). When t is non-nil the walk's block loads are timed drive reads.
// ok=false means the snapshot or the inode does not exist in it; a nil data
// with ok=true is a hole in the frozen image.
func (v *Volume) SnapReadBlock(t *sim.Thread, snapID, ino uint64, fbn block.FBN) (data []byte, ok bool) {
	s := v.snaps[snapID]
	if s == nil {
		return nil, false
	}
	rec, ok := snap.RecordAt(s.InoCopy, ino)
	if !ok {
		return nil, false
	}
	read := func(vbn block.VBN) []byte {
		if t != nil {
			return v.aggr.ReadVBN(t, vbn)
		}
		return v.aggr.ReadVBNRaw(vbn)
	}
	return snap.ReadTree(read, rec, fbn), true
}

// SummaryHeld reports whether vvbn is held by at least one snapshot.
func (v *Volume) SummaryHeld(vvbn uint64) bool { return v.Summary.IsSet(vvbn) }
