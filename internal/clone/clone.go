// Package clone implements the volume-side state of writable clones
// (FlexClone-style) and instant SnapRestore on top of the snapshot layer's
// summary-map invariant (free = !active && !summary).
//
// A clone is a volume bound to a parent snapshot on the same member: its
// activemap, inode file, and container map start as copies of the parent
// snapshot's snapmap/inocopy/container content, so the clone shares every
// base block's physical home with the parent. The shared VVBNs are recorded
// in a dedicated base map metafile AND folded into the clone's summary map:
// the ordinary cleaner/zombie paths then already do the right thing on
// copy-on-first-write divergence — the old VVBN leaves the clone's active
// map but its summary hold keeps the parent-owned physical block from being
// freed or its container binding reused. The parent snapshot cannot be
// deleted while clones reference it (a delete guard replaces per-block
// reference counts); a clone split rewrites every still-live base block
// through the normal write path, in bounded per-CP batches, until no live
// base blocks remain, then drops the base holds and the guard.
//
// SnapRestore rebinds a volume to one of its snapshots without copying data
// blocks: the active map converges on the snapmap content through a
// word-wise diff (freeing blocks only the discarded present held), and the
// inode file content is replaced by the inocopy image. Both operations are
// requested by clients, NVRAM-logged, and applied atomically inside a
// consistency point by the CP engine; this package holds the pure state and
// serialization shared by the aggregate, the facade, and fsck.
package clone

import (
	"encoding/binary"

	"wafl/internal/bitmap"
	"wafl/internal/block"
	"wafl/internal/fs"
)

// Volume-table entry layout owned by this package: the clone header lives in
// the spare bytes after the snapshot count (offset 40..43), and the base map
// metafile record occupies the spare record slot after the summary map's.
// All bytes are zero for a non-clone volume, so a clone-free file system's
// entries are bit-identical to the pre-clone format.
const (
	flagsOff      = 44  // u32: bit0 = bound clone, bit1 = split in progress
	parentVolOff  = 48  // u64: parent volume's member-local index
	parentSnapOff = 56  // u64: parent snapshot ID
	baseRecordOff = 384 // 64-byte record of the base map metafile

	flagClone     = 1 << 0
	flagSplitting = 1 << 1
)

// State is the clone-specific state of a bound clone volume. A nil *State
// means the volume is not a clone.
type State struct {
	ParentVol  int    // member-local index of the parent volume
	ParentSnap uint64 // parent snapshot the clone diverges from

	// Base marks the VVBNs whose physical homes are owned by the parent
	// snapshot (shared at bind, cleared only when the clone is split). Its
	// content is also folded into the volume's summary map; fsck checks
	// summary == OR(snapmaps) | base for clones.
	Base     *bitmap.Activemap
	BaseFile *fs.File

	// Splitting marks an in-progress split: each CP rewrites a bounded
	// batch of still-live base blocks through the normal COW write path,
	// resuming at the (SplitIno, SplitFBN) cursor.
	Splitting bool
	SplitIno  uint64
	SplitFBN  block.FBN
}

// Encode serializes the clone header and base map record into a volume-table
// entry (the caller has already zeroed it).
func (st *State) Encode(entry []byte) {
	flags := uint32(flagClone)
	if st.Splitting {
		flags |= flagSplitting
	}
	binary.LittleEndian.PutUint32(entry[flagsOff:], flags)
	binary.LittleEndian.PutUint64(entry[parentVolOff:], uint64(st.ParentVol))
	binary.LittleEndian.PutUint64(entry[parentSnapOff:], st.ParentSnap)
	fs.EncodeRecord(entry[baseRecordOff:], st.BaseFile.RecordOf(fs.FlagMetafile))
}

// Decode rebuilds the clone state skeleton from a volume-table entry, or
// returns nil for a non-clone volume. The caller loads the base map
// metafile from media and rebinds Base.
func Decode(entry []byte) *State {
	flags := binary.LittleEndian.Uint32(entry[flagsOff:])
	if flags&flagClone == 0 {
		return nil
	}
	return &State{
		ParentVol:  int(binary.LittleEndian.Uint64(entry[parentVolOff:])),
		ParentSnap: binary.LittleEndian.Uint64(entry[parentSnapOff:]),
		Splitting:  flags&flagSplitting != 0,
		BaseFile:   fs.FileFromRecord(fs.DecodeRecord(entry[baseRecordOff:])),
		SplitIno:   0,
	}
}

// Held returns the number of VVBNs still held by the parent snapshot on the
// clone's behalf (clone-held blocks in space accounting).
func (st *State) Held() uint64 {
	if st == nil {
		return 0
	}
	return st.Base.Used()
}

// LiveBase returns the number of base VVBNs still live in the clone's
// active map — the blocks a split must rewrite before the parent hold can
// drop. amapFile is the clone's activemap metafile.
func (st *State) LiveBase(amapFile *fs.File, nbits uint64) uint64 {
	if st == nil {
		return 0
	}
	return bitmap.AndPopcount(st.BaseFile, amapFile, nbits)
}
