// Package cp implements the consistency-point engine (paper §II-C): the
// transaction that atomically flushes all dirty state to new locations on
// persistent storage. A CP freezes the dirty-inode lists, drives the
// cleaner pool and White Alligator infrastructure through inode cleaning,
// writes inode records and volume metafiles, flushes the self-referential
// aggregate activemap, and finally commits by overwriting the superblock in
// place. After the commit, the NVRAM log half that fed the CP is freed.
package cp

import (
	"fmt"

	"wafl/internal/aggregate"
	"wafl/internal/block"
	"wafl/internal/core"
	"wafl/internal/fs"
	"wafl/internal/nvlog"
	"wafl/internal/obs"
	"wafl/internal/sim"
	"wafl/internal/snap"
	"wafl/internal/storage"
	"wafl/internal/waffinity"
)

// Stats holds cumulative CP engine counters.
type Stats struct {
	CPs             uint64
	InodesCleaned   uint64
	RecordsWritten  uint64
	ZombiesReaped   uint64
	SnapsCreated    uint64
	SnapsDeleted    uint64
	SnapReclaimed   uint64 // physical blocks returned by snapshot deletes
	AmapWrites      uint64
	TotalDuration   sim.Duration
	LastDuration    sim.Duration
	CleanDuration   sim.Duration // user-file cleaning phase (cumulative)
	MetaDuration    sim.Duration // metafile flush phases (cumulative)
	BackToBack      uint64       // CPs that started with another already requested
	LongestDuration sim.Duration
}

// Engine orchestrates consistency points on its own simulated thread.
type Engine struct {
	s     *sim.Scheduler
	w     *waffinity.Scheduler
	h     *waffinity.Hierarchy
	a     *aggregate.Aggregate
	in    *core.Infra
	pool  *core.Pool
	log   *nvlog.Log
	costs core.CostModel

	trigger *sim.WaitQueue
	cpDone  *sim.WaitQueue
	wantCP  bool
	running bool
	stopped bool

	obsTid     int32 // interned CP-phase trace track id + 1; 0 = unset
	obsSnapTid int32 // interned snapshot-event trace track id + 1; 0 = unset

	// phaseHook, when set, is consulted at every CP phase boundary with the
	// boundary's name. Returning true means "the crash harness wants to
	// stop here": the engine thread yields once, so a pending scheduler
	// halt (sim.Scheduler.RequestHalt) takes effect at exactly that
	// boundary. The hook must be a pure observer otherwise — when it
	// returns false no simulation primitive runs, keeping the event stream
	// bit-identical to a run without a hook.
	phaseHook func(phase string) bool

	stats Stats
}

// SetPhaseHook installs (or, with nil, removes) the CP phase-boundary hook.
func (e *Engine) SetPhaseHook(fn func(phase string) bool) { e.phaseHook = fn }

// boundary reports one CP phase boundary to the crash-schedule hook.
func (e *Engine) boundary(t *sim.Thread, name string) {
	if e.phaseHook != nil && e.phaseHook(name) {
		t.Yield()
	}
}

// track returns the CP phase-marker trace track, interning it on first use.
func (e *Engine) track(tr *obs.Tracer) int32 {
	if e.obsTid == 0 {
		e.obsTid = tr.Track(obs.PidCP, "phases") + 1
	}
	return e.obsTid - 1
}

// snapTrack returns the snapshot-event trace track, interning it on first
// use. Snapshot create/delete/reclaim instants land here.
func (e *Engine) snapTrack(tr *obs.Tracer) int32 {
	if e.obsSnapTid == 0 {
		e.obsSnapTid = tr.Track(obs.PidCP, "snapshots") + 1
	}
	return e.obsSnapTid - 1
}

// phaseSpan emits one CP phase span and returns the phase's end time, the
// start of the next phase.
func (e *Engine) phaseSpan(tr *obs.Tracer, name string, start sim.Time, now sim.Time) sim.Time {
	tr.Span(obs.PidCP, e.track(tr), "cp", name, int64(start), int64(now))
	return now
}

// New creates the engine and starts its thread.
func New(w *waffinity.Scheduler, h *waffinity.Hierarchy, a *aggregate.Aggregate, in *core.Infra, pool *core.Pool, log *nvlog.Log, costs core.CostModel) *Engine {
	e := &Engine{
		s: a.Sched(), w: w, h: h, a: a, in: in, pool: pool, log: log, costs: costs,
		trigger: sim.NewWaitQueue(a.Sched(), "cp-trigger"),
		cpDone:  sim.NewWaitQueue(a.Sched(), "cp-done"),
	}
	e.s.Go("cp-engine", sim.CatCP, func(t *sim.Thread) { e.loop(t) })
	return e
}

// Stats returns a snapshot of engine counters.
func (e *Engine) Stats() Stats { return e.stats }

// Running reports whether a CP is in progress.
func (e *Engine) Running() bool { return e.running }

// Stop makes the engine thread exit after the current CP.
func (e *Engine) Stop() {
	e.stopped = true
	e.trigger.Signal()
}

// RequestCP asks for a consistency point. If one is already running, the
// request is remembered and a back-to-back CP follows immediately — the
// state in which client writes stall on NVRAM space.
func (e *Engine) RequestCP() {
	if e.running {
		e.wantCP = true
		return
	}
	e.wantCP = true
	e.trigger.Signal()
}

// WaitCPDone blocks the calling thread until the next CP completes. Client
// operations stalled on NVRAM space use it to wait for a half to free up.
func (e *Engine) WaitCPDone(t *sim.Thread) {
	e.cpDone.Wait(t)
}

func (e *Engine) loop(t *sim.Thread) {
	for !e.stopped {
		for !e.wantCP && !e.stopped {
			e.trigger.Wait(t)
		}
		if e.stopped {
			return
		}
		e.wantCP = false
		e.running = true
		e.runCP(t)
		e.running = false
		if e.wantCP {
			e.stats.BackToBack++
		}
		e.cpDone.Broadcast()
	}
}

// runCP executes one full consistency point on the engine thread.
func (e *Engine) runCP(t *sim.Thread) {
	start := t.Now()
	tr := t.Tracer()
	ph := start // start of the phase currently executing

	e.boundary(t, "start")
	// Phase 1: freeze. Atomically capture the dirty state: switch NVRAM
	// halves and move every dirty inode's buffers into its frozen set.
	// Pending snapshot creates are taken in the same atomic cut (no yield
	// between the switch and the take): a create logged to the frozen half
	// is materialized by this CP, one logged after the switch waits for the
	// next — so an acked create is always covered by a committed CP or a
	// surviving log record.
	e.log.Switch()
	snapPend := make(map[int][]uint64)
	snapSetChanged := make(map[int]bool)
	for _, v := range e.a.Volumes() {
		if p := v.TakePendingSnapshots(); len(p) > 0 {
			snapPend[v.ID()] = p
		}
	}
	var dirtyVols []*aggregate.Volume
	frozen := make(map[int][]*fs.File)
	for _, v := range e.a.Volumes() {
		files := v.FreezeAll()
		if len(files) > 0 {
			dirtyVols = append(dirtyVols, v)
			frozen[v.ID()] = files
			t.Consume(sim.Duration(len(files)) * e.costs.CPPerInode)
		}
	}

	// Phase 1b: zombie processing — deleted files' on-disk blocks are
	// reclaimed through the same free-commit machinery, and their inode
	// records cleared. Deferred deletion, as in WAFL.
	e.in.StartCP(dirtyVols)
	snapZombies := make(map[int][]*snap.Snapshot)
	for _, v := range e.a.Volumes() {
		for _, z := range v.TakeZombies() {
			if z.FrozenCount() > 0 {
				// The file was frozen into this very CP before being
				// deleted: its cleaning is about to rewrite the tree and
				// its record. Reap it next CP, from the stable image.
				v.DeferZombie(z)
				continue
			}
			pvbns, vvbns, walked := v.ZombieBlocks(z)
			t.Consume(sim.Duration(walked) * e.costs.CommitPerBit)
			e.in.CommitFrees(t, -1, pvbns)
			e.in.CommitFrees(t, v.ID(), vvbns)
			// Zombie frees happen outside any cleaner token: account them
			// directly (the CP thread is uncontended).
			e.in.Counters.Add(e.in.AggrFreeID(), int64(len(pvbns)))
			e.in.Counters.Add(e.in.VolFreeID(v.ID()), int64(len(vvbns)))
			v.ClearRecord(z.Ino())
			e.stats.ZombiesReaped++
		}
		if z := v.TakeSnapZombies(); len(z) > 0 {
			snapZombies[v.ID()] = z
		}
	}
	if len(snapZombies) > 0 {
		// The file-zombie free commits above are applied asynchronously by
		// range-affinity messages. A snapshot reclaim diffs the victim's
		// snapmap against activemap *content*, so an in-flight clear — a file
		// deleted in this CP whose blocks a dying snapshot holds — would make
		// the reclaim see the VVBN as still active: it would clear the summary
		// bit but never free the physical block, leaking it permanently. Wait
		// for the messages to settle (without entering drain mode — the
		// cleaning phase's fill pipeline hasn't started yet).
		e.in.DrainFrees(t)
	}
	for _, v := range e.a.Volumes() {
		// Snapshot zombies: diff the victim's snapmap against the active map
		// and surviving snapmaps, clear the summary bits nobody else holds,
		// and return exclusively-held blocks (plus the snapshot's own
		// metafile trees) to the aggregate. Same-CP physical reuse is fenced
		// by the pending-free set, exactly like file zombie frees.
		zombies := snapZombies[v.ID()]
		for zi, z := range zombies {
			pvbns, freedVVBNs, walked := v.ReclaimSnapshot(z, zombies[zi+1:])
			t.Consume(sim.Duration(walked) * e.costs.CommitPerBit)
			e.in.CommitFrees(t, -1, pvbns)
			e.in.Counters.Add(e.in.AggrFreeID(), int64(len(pvbns)))
			e.stats.SnapsDeleted++
			e.stats.SnapReclaimed += uint64(len(pvbns))
			snapSetChanged[v.ID()] = true
			_ = freedVVBNs
			if tr != nil {
				tr.InstantArg(obs.PidCP, e.snapTrack(tr), "snap", "snap-delete", int64(t.Now()), int64(z.ID))
				tr.Observe("snap.reclaimed", int64(len(pvbns)))
			}
		}
	}

	// Phase 2: inode cleaning through the White Alligator API.
	var jobs []*core.Job
	for _, v := range dirtyVols {
		jobs = append(jobs, e.pool.BuildJobs(v, frozen[v.ID()], true)...)
	}
	cleanStart := t.Now()
	if tr != nil {
		ph = e.phaseSpan(tr, "freeze+zombies", ph, cleanStart)
	}
	e.pool.RunPhase(t, jobs)
	// Wait only for infrastructure messages: the allocation-bitmap state
	// must be final before metafiles are cleaned, but the tetris write
	// I/Os keep flowing underneath the metafile phases.
	e.in.DrainOps(t)
	e.stats.CleanDuration += sim.Duration(t.Now() - cleanStart)
	if tr != nil {
		ph = e.phaseSpan(tr, "clean", ph, t.Now())
		tr.Observe("cp.clean", int64(t.Now()-cleanStart))
	}
	e.boundary(t, "clean")

	// Phase 2b: snapshot capture, part one. With cleaning drained, the
	// volume activemaps hold this CP's final allocation state: copy each
	// pending snapshot's snapmap from the live amap content and fold it into
	// the summary map. (The inode-file half of the image is captured after
	// phase 3, once records are written.)
	type pendingSnap struct {
		vol *aggregate.Volume
		s   *snap.Snapshot
	}
	var newSnaps []pendingSnap
	for _, v := range e.a.Volumes() {
		for _, id := range snapPend[v.ID()] {
			s, copied := v.MaterializeSnapshot(id, e.a.CPCount()+1)
			t.Consume(sim.Duration(copied) * e.costs.CommitPerBlock)
			newSnaps = append(newSnaps, pendingSnap{vol: v, s: s})
			snapSetChanged[v.ID()] = true
			e.stats.SnapsCreated++
			if tr != nil {
				tr.InstantArg(obs.PidCP, e.snapTrack(tr), "snap", "snap-create", int64(t.Now()), int64(id))
			}
		}
	}

	// Phase 3: inode records. Roots are final; serialize the records into
	// the inode files.
	metaStart := t.Now()
	for _, v := range dirtyVols {
		for _, f := range frozen[v.ID()] {
			v.WriteRecord(f)
			t.Consume(e.costs.RecordWrite)
			e.stats.RecordsWritten++
		}
		e.stats.InodesCleaned += uint64(len(frozen[v.ID()]))
	}

	if tr != nil {
		ph = e.phaseSpan(tr, "records", ph, t.Now())
	}
	e.boundary(t, "records")

	// Phase 3b: snapshot capture, part two. Inode-file content is final
	// (records written, deleted records cleared): copy it into each new
	// snapshot's inocopy metafile. Both snapshot metafiles are then cleaned
	// alongside the volume metafiles in phase 4.
	var snapJobs []*core.Job
	for _, ps := range newSnaps {
		copied := snap.CopyContent(ps.s.InoCopy, ps.vol.InoFile())
		t.Consume(sim.Duration(copied) * e.costs.CommitPerBlock)
		snapJobs = append(snapJobs,
			&core.Job{Vol: ps.vol, Files: []*fs.File{ps.s.Snapmap}, Mode: core.JobFull},
			&core.Job{Vol: ps.vol, Files: []*fs.File{ps.s.InoCopy}, Mode: core.JobFull})
	}

	// Phase 4: volume metafiles (inode file, container map, volume
	// activemap, snapdir, summary map) plus any newborn snapshot metafiles,
	// cleaned through the same allocator.
	e.in.Prefill()
	metaJobs := snapJobs
	for _, v := range e.a.Volumes() {
		for _, mf := range v.Metafiles() {
			if mf.FrozenCount() > 0 {
				metaJobs = append(metaJobs, &core.Job{Vol: v, Files: []*fs.File{mf}, Mode: core.JobFull})
			}
		}
	}
	e.pool.RunPhase(t, metaJobs)
	if tr != nil {
		ph = e.phaseSpan(tr, "metafiles", ph, t.Now())
	}
	e.boundary(t, "metafiles")

	// Phase 5: snapdir + volume table. Volumes whose snapshot set changed
	// rewrite their snapdir from the live set — the snapmap/inocopy roots
	// are final after phase 4 — and the snapdir is cleaned before the
	// volume-table entries (which hold its root) are serialized.
	var sdJobs []*core.Job
	for _, v := range e.a.Volumes() {
		if !snapSetChanged[v.ID()] {
			continue
		}
		v.WriteSnapdirEntries()
		t.Consume(e.costs.RecordWrite)
		if v.SnapdirFile().FrozenCount() > 0 {
			sdJobs = append(sdJobs, &core.Job{Vol: v, Files: []*fs.File{v.SnapdirFile()}, Mode: core.JobFull})
		}
	}
	if len(sdJobs) > 0 {
		e.pool.RunPhase(t, sdJobs)
	}
	e.a.WriteVolumeEntries()
	if e.a.VolTableFile().FrozenCount() > 0 {
		e.pool.RunPhase(t, []*core.Job{{Files: []*fs.File{e.a.VolTableFile()}, Mode: core.JobFull}})
	}
	e.in.DrainOps(t)
	if tr != nil {
		ph = e.phaseSpan(tr, "voltable", ph, t.Now())
	}
	e.boundary(t, "voltable")

	// Phase 6: the self-referential aggregate activemap, via the
	// fixed-point flush planner; then wait for every outstanding write
	// I/O before committing.
	freeBefore := int64(e.a.TotalFree())
	writes := e.a.PlanAmapFlush(func() block.VBN { return e.in.FindMetaVBN(t) })
	// The flush planner allocates and frees directly; reconcile the loose
	// global counter with the net change — the per-CP "audit and correct"
	// step loose accounting requires (§III-C).
	e.in.Counters.Add(e.in.AggrFreeID(), int64(e.a.TotalFree())-freeBefore)
	e.stats.AmapWrites += uint64(len(writes))
	t.ConsumeAs(sim.CatInfra, sim.Duration(len(writes))*e.costs.CommitPerBlock)
	e.issueAmapWrites(t, writes)
	e.in.DrainIO(t)
	e.stats.MetaDuration += sim.Duration(t.Now() - metaStart)
	if tr != nil {
		ph = e.phaseSpan(tr, "amap flush", ph, t.Now())
		tr.Observe("cp.meta", int64(t.Now()-metaStart))
	}
	e.boundary(t, "amap")

	// Phase 7: commit. The superblock overwrite is the atomic transition
	// to the new file system tree; afterwards the NVRAM half that fed
	// this CP is freed and same-CP-freed blocks become allocatable.
	e.boundary(t, "commit")
	e.a.SetCPCount(e.a.CPCount() + 1)
	e.a.WriteSuperblock(t)
	e.boundary(t, "post-commit")
	e.log.FreeFrozen()
	e.in.EndCP()
	e.boundary(t, "done")

	if tr != nil {
		e.phaseSpan(tr, "commit", ph, t.Now())
		tr.SpanArg(obs.PidCP, e.track(tr), "cp", "CP", int64(start), int64(t.Now()),
			int64(e.a.CPCount()))
		tr.Observe("cp.total", int64(t.Now()-start))
	}
	d := sim.Duration(t.Now() - start)
	e.stats.CPs++
	e.stats.TotalDuration += d
	e.stats.LastDuration = d
	if d > e.stats.LongestDuration {
		e.stats.LongestDuration = d
	}
}

// issueAmapWrites sends the planned activemap block writes to RAID, one
// grouped write per RAID group.
func (e *Engine) issueAmapWrites(t *sim.Thread, writes []aggregate.AmapWrite) {
	if len(writes) == 0 {
		return
	}
	geo := e.a.Geometry()
	perGroup := make(map[int][][]storage.WriteReq)
	for _, w := range writes {
		g, d, dbn := geo.Locate(w.VBN)
		reqs := perGroup[g]
		if reqs == nil {
			reqs = make([][]storage.WriteReq, geo.DataDrives)
		}
		reqs[d] = append(reqs[d], storage.WriteReq{DBN: dbn, Data: w.Data})
		perGroup[g] = reqs
	}
	for g := 0; g < e.a.Groups(); g++ {
		reqs, ok := perGroup[g]
		if !ok {
			continue
		}
		e.in.AddIO()
		res := e.a.Group(g).Write(reqs, e.costs.ParityPerBlock, e.in.IODone)
		if res.ParityCPU > 0 {
			t.ConsumeAs(sim.CatRAID, res.ParityCPU)
		}
	}
}

// VerifyClean panics if any file still has frozen buffers after a CP — a
// development invariant check used by tests.
func (e *Engine) VerifyClean() error {
	var bad []string
	check := func(f *fs.File, tag string) {
		if f.FrozenCount() > 0 {
			bad = append(bad, fmt.Sprintf("%s ino %d: %d frozen", tag, f.Ino(), f.FrozenCount()))
		}
	}
	check(e.a.AmapFile(), "aggr amap")
	check(e.a.VolTableFile(), "voltable")
	for _, v := range e.a.Volumes() {
		for _, mf := range v.Metafiles() {
			check(mf, fmt.Sprintf("vol%d metafile", v.ID()))
		}
		for _, s := range v.Snapshots() {
			check(s.Snapmap, fmt.Sprintf("vol%d snap%d snapmap", v.ID(), s.ID))
			check(s.InoCopy, fmt.Sprintf("vol%d snap%d inocopy", v.ID(), s.ID))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("cp: uncleaned state after CP: %v", bad)
	}
	return nil
}
