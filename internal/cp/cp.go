// Package cp implements the consistency-point engine (paper §II-C): the
// transaction that atomically flushes all dirty state to new locations on
// persistent storage. A CP freezes the dirty-inode lists, drives the
// cleaner pool and White Alligator infrastructure through inode cleaning,
// writes inode records and volume metafiles, flushes the self-referential
// aggregate activemap, and finally commits by overwriting the superblock in
// place. After the commit, the NVRAM log half that fed the CP is freed.
package cp

import (
	"fmt"
	"strings"

	"wafl/internal/aggregate"
	"wafl/internal/block"
	"wafl/internal/core"
	"wafl/internal/fs"
	"wafl/internal/nvlog"
	"wafl/internal/obs"
	"wafl/internal/sim"
	"wafl/internal/snap"
	"wafl/internal/storage"
	"wafl/internal/waffinity"
)

// Stats holds cumulative CP engine counters.
type Stats struct {
	CPs             uint64
	InodesCleaned   uint64
	RecordsWritten  uint64
	ZombiesReaped   uint64
	SnapsCreated    uint64
	SnapsDeleted    uint64
	SnapReclaimed   uint64 // physical blocks returned by snapshot deletes
	Restores        uint64 // SnapRestores applied
	RestoreFreed    uint64 // physical blocks freed by restores
	RestoreBlocks   uint64 // metadata blocks walked/copied by restores (never data)
	CloneBinds      uint64 // clone binds materialized
	CloneCopied     uint64 // metafile blocks copied by clone binds
	SplitCopied     uint64 // data blocks queued for copy by clone splits
	SplitsDone      uint64 // clone splits fully completed (guard released)
	AmapWrites      uint64
	TotalDuration   sim.Duration
	LastDuration    sim.Duration
	CleanDuration   sim.Duration // user-file cleaning phase (cumulative)
	MetaDuration    sim.Duration // metafile flush phases (cumulative)
	BackToBack      uint64       // CPs that started with another already requested
	LongestDuration sim.Duration
}

// Engine orchestrates consistency points on its own simulated thread.
type Engine struct {
	s     *sim.Scheduler
	w     *waffinity.Scheduler
	h     *waffinity.Hierarchy
	a     *aggregate.Aggregate
	in    *core.Infra
	pool  *core.Pool
	log   *nvlog.Log
	opts  core.Options
	costs core.CostModel

	// phaseHist holds the always-on per-phase duration histograms (keyed by
	// phase name, phaseOrder preserving execution order). Only the engine
	// thread observes into them, between scatter joins.
	phaseHist  map[string]*obs.Histogram
	phaseOrder []string

	trigger *sim.WaitQueue
	cpDone  *sim.WaitQueue
	wantCP  bool
	running bool
	stopped bool

	obsTid     int32 // interned CP-phase trace track id + 1; 0 = unset
	obsSnapTid int32 // interned snapshot-event trace track id + 1; 0 = unset

	// phaseHook, when set, is consulted at every CP phase boundary with the
	// boundary's name. Returning true means "the crash harness wants to
	// stop here": the engine thread yields once, so a pending scheduler
	// halt (sim.Scheduler.RequestHalt) takes effect at exactly that
	// boundary. The hook must be a pure observer otherwise — when it
	// returns false no simulation primitive runs, keeping the event stream
	// bit-identical to a run without a hook.
	phaseHook func(phase string) bool

	// onRestore, when set, fires on the engine thread after a SnapRestore is
	// applied to a volume, before the CP commits. The facade uses it to
	// invalidate that volume's buffer-cache entries and refund in-flight
	// placement reservations — state that describes the discarded present.
	onRestore func(volID int)

	stats Stats
}

// SetPhaseHook installs (or, with nil, removes) the CP phase-boundary hook.
func (e *Engine) SetPhaseHook(fn func(phase string) bool) { e.phaseHook = fn }

// SetRestoreHook installs the post-restore-apply callback.
func (e *Engine) SetRestoreHook(fn func(volID int)) { e.onRestore = fn }

// boundary reports one CP phase boundary to the crash-schedule hook.
func (e *Engine) boundary(t *sim.Thread, name string) {
	if e.phaseHook != nil && e.phaseHook(name) {
		t.Yield()
	}
}

// track returns the CP phase-marker trace track, interning it on first use.
func (e *Engine) track(tr *obs.Tracer) int32 {
	if e.obsTid == 0 {
		e.obsTid = tr.Track(obs.PidCP, "phases") + 1
	}
	return e.obsTid - 1
}

// snapTrack returns the snapshot-event trace track, interning it on first
// use. Snapshot create/delete/reclaim instants land here.
func (e *Engine) snapTrack(tr *obs.Tracer) int32 {
	if e.obsSnapTid == 0 {
		e.obsSnapTid = tr.Track(obs.PidCP, "snapshots") + 1
	}
	return e.obsSnapTid - 1
}

// observePhase records one phase duration into the engine-held, always-on
// histogram set (maintained whether or not tracing is enabled).
func (e *Engine) observePhase(name string, d int64) {
	h := e.phaseHist[name]
	if h == nil {
		h = obs.NewHistogram("cp.phase." + name)
		e.phaseHist[name] = h
		e.phaseOrder = append(e.phaseOrder, name)
	}
	h.Observe(d)
}

// PhaseHistogram returns the duration histogram of one CP phase by name
// ("clean", "records", ...), or nil if that phase has never completed.
func (e *Engine) PhaseHistogram(name string) *obs.Histogram { return e.phaseHist[name] }

// PhaseReport renders the per-phase CP duration breakdown (count, mean,
// p50/p95/p99, max) in execution order, so the serial-vs-parallel CP split
// is visible without loading a Chrome trace.
func (e *Engine) PhaseReport() string {
	if len(e.phaseOrder) == 0 {
		return "no consistency points completed"
	}
	var b strings.Builder
	for _, name := range e.phaseOrder {
		b.WriteString(e.phaseHist[name].String())
		b.WriteByte('\n')
	}
	return b.String()
}

// New creates the engine and starts its thread.
func New(w *waffinity.Scheduler, h *waffinity.Hierarchy, a *aggregate.Aggregate, in *core.Infra, pool *core.Pool, log *nvlog.Log, opts core.Options, costs core.CostModel) *Engine {
	e := &Engine{
		s: a.Sched(), w: w, h: h, a: a, in: in, pool: pool, log: log, opts: opts, costs: costs,
		trigger:   sim.NewWaitQueue(a.Sched(), "cp-trigger"),
		cpDone:    sim.NewWaitQueue(a.Sched(), "cp-done"),
		phaseHist: make(map[string]*obs.Histogram),
	}
	e.s.Go("cp-engine", sim.CatCP, func(t *sim.Thread) { e.loop(t) })
	return e
}

// parallel reports whether per-volume CP phases fan out across the Volume
// affinities. CleanInSerialAffinity forces the serial path: that mode
// models the pre-2008 design in which CP work owns the Serial affinity.
func (e *Engine) parallel() bool { return e.opts.ParallelCP && !e.opts.CleanInSerialAffinity }

// scatterVolumes runs fn once per volume of vols, in slice (sorted-ID)
// order. Serial mode runs the units inline on the engine thread; parallel
// mode dispatches each as a message in that volume's Volume affinity and
// joins before returning, so volumes proceed concurrently under the same
// exclusion rules client operations obey. Determinism: units are enqueued
// in volume order and the sim scheduler is deterministic, so the
// interleaving is a pure function of prior simulation state. Workers may
// touch engine/infra state directly — at most one simulated thread runs at
// any real instant, so there is no host-level race — but fn must produce
// only order-independent effects: slot writes indexed by i, counter adds,
// stat increments.
func (e *Engine) scatterVolumes(t *sim.Thread, name string, vols []*aggregate.Volume, fn func(wt *sim.Thread, v *aggregate.Volume, i int)) {
	if !e.parallel() {
		for i, v := range vols {
			fn(t, v, i)
		}
		return
	}
	units := make([]waffinity.Unit, len(vols))
	for i, v := range vols {
		i, v := i, v
		units[i] = waffinity.Unit{
			Aff: e.h.Aggrs[0].Volumes[v.ID()].Volume,
			Cat: sim.CatCP,
			Fn: func(wt *sim.Thread) {
				start := wt.Now()
				fn(wt, v, i)
				// Per-volume phase span on the executing worker's own
				// track, so the fan-out's overlap is visible in the trace.
				if tr := wt.Tracer(); tr != nil {
					tr.Span(obs.PidThreads, wt.TrackID(), "cp",
						fmt.Sprintf("cp.%s vol%d", name, v.ID()),
						int64(start), int64(wt.Now()))
				}
			},
		}
	}
	e.w.ScatterJoin(t, units)
}

// Stats returns a snapshot of engine counters.
func (e *Engine) Stats() Stats { return e.stats }

// Running reports whether a CP is in progress.
func (e *Engine) Running() bool { return e.running }

// Stop makes the engine thread exit after the current CP.
func (e *Engine) Stop() {
	e.stopped = true
	e.trigger.Signal()
}

// RequestCP asks for a consistency point. If one is already running, the
// request is remembered and a back-to-back CP follows immediately — the
// state in which client writes stall on NVRAM space.
func (e *Engine) RequestCP() {
	if e.running {
		e.wantCP = true
		return
	}
	e.wantCP = true
	e.trigger.Signal()
}

// WaitCPDone blocks the calling thread until the next CP completes. Client
// operations stalled on NVRAM space use it to wait for a half to free up.
func (e *Engine) WaitCPDone(t *sim.Thread) {
	e.cpDone.Wait(t)
}

func (e *Engine) loop(t *sim.Thread) {
	for !e.stopped {
		for !e.wantCP && !e.stopped {
			e.trigger.Wait(t)
		}
		if e.stopped {
			return
		}
		e.wantCP = false
		e.running = true
		e.runCP(t)
		e.running = false
		if e.wantCP {
			e.stats.BackToBack++
		}
		e.cpDone.Broadcast()
	}
}

// runCP executes one full consistency point. The engine thread owns phase
// ordering, the drains, and the crash-boundary hooks; the per-volume work
// inside phases 1, 1b, 2b, 3, 3b, and 5 fans out across the Waffinity
// Volume affinities when ParallelCP is on (see scatterVolumes).
func (e *Engine) runCP(t *sim.Thread) {
	start := t.Now()
	tr := t.Tracer()
	ph := start // start of the phase currently executing

	// phase closes out the currently-running phase: it always feeds the
	// engine's duration histograms (wafltop's p50/p99 breakdown), and when
	// tracing also emits the span plus a cp.phase.<name> observation.
	phase := func(name string) {
		now := t.Now()
		e.observePhase(name, int64(now-ph))
		if tr != nil {
			tr.Span(obs.PidCP, e.track(tr), "cp", name, int64(ph), int64(now))
			tr.Observe("cp.phase."+name, int64(now-ph))
		}
		ph = now
	}

	e.boundary(t, "start")
	// Phase 1: freeze. Atomically capture the dirty state: switch NVRAM
	// halves and move every dirty inode's buffers into its frozen set.
	// Pending snapshot creates are taken in the same atomic cut (no yield
	// between the switch and the take): a create logged to the frozen half
	// is materialized by this CP, one logged after the switch waits for the
	// next — so an acked create is always covered by a committed CP or a
	// surviving log record.
	e.log.Switch()
	vols := e.a.Volumes()
	snapPend := make(map[int][]uint64)
	snapSetChanged := make(map[int]bool)
	restPend := make(map[int][]uint64)
	bindPend := make(map[int]bool)
	for _, v := range vols {
		if p := v.TakePendingSnapshots(); len(p) > 0 {
			snapPend[v.ID()] = p
		}
		// Restores and clone binds are part of the same atomic cut: an op
		// logged to the frozen half is applied by this CP, one logged after
		// the switch waits for the next. Restores are taken out of the volume
		// here; binds stay queued on the volume (MaterializeClone consumes
		// them) but the decision of *which* CP applies them is made now.
		if p := v.TakePendingRestores(); len(p) > 0 {
			restPend[v.ID()] = p
		}
		if v.ClonePending() {
			bindPend[v.ID()] = true
		}
	}
	// The freeze itself fans out per volume. Client writes interleave with
	// it either way (the serial loop yields in Consume between volumes):
	// a buffer dirtied after the switch but before its volume's freeze is
	// frozen into this CP with its log record in the next half, which is
	// safe because replay is idempotent. Under fan-out each volume's freeze
	// additionally excludes that volume's client ops (Stripes are
	// descendants of Volume), making the per-volume cut atomic.
	frozenSlots := make([][]*fs.File, len(vols))
	e.scatterVolumes(t, "freeze", vols, func(wt *sim.Thread, v *aggregate.Volume, i int) {
		files := v.FreezeAll()
		if len(files) > 0 {
			frozenSlots[i] = files
			wt.Consume(sim.Duration(len(files)) * e.costs.CPPerInode)
		}
	})
	var dirtyVols []*aggregate.Volume
	frozen := make(map[int][]*fs.File)
	for i, v := range vols {
		if len(frozenSlots[i]) > 0 {
			dirtyVols = append(dirtyVols, v)
			frozen[v.ID()] = frozenSlots[i]
		}
	}

	// Phase 1b: zombie processing — deleted files' on-disk blocks are
	// reclaimed through the same free-commit machinery, and their inode
	// records cleared. Deferred deletion, as in WAFL. Each volume's zombie
	// walks are independent (all state is per-volume; free commits are
	// asynchronous messages), so the walks fan out per volume.
	e.in.StartCP(dirtyVols)
	snapZSlots := make([][]*snap.Snapshot, len(vols))
	reapedSlots := make([]map[uint64]bool, len(vols))
	redriveSlots := make([]bool, len(vols))
	e.scatterVolumes(t, "zombies", vols, func(wt *sim.Thread, v *aggregate.Volume, i int) {
		// SnapRestores taken at the freeze cut apply first: the restored
		// image supersedes everything else queued on the volume (zombies and
		// dirty state were already discarded at request time, and clients
		// have been gated since). The active map converges on the snapmap by
		// a word-wise diff and the inode file becomes the inocopy image —
		// O(metadata), never data blocks.
		if ids := restPend[v.ID()]; len(ids) > 0 {
			for n, id := range ids {
				s := v.SnapshotByID(id)
				if s == nil {
					// Created and restored within one NVRAM window: the
					// target materializes later in this very CP (phase 2b).
					// Re-queue — the volume stays gated — and drive a
					// follow-up CP to apply it.
					v.DeferRestore(ids[n:])
					redriveSlots[i] = true
					break
				}
				pvbns, freedAlloc, walked := v.ApplyRestore(s)
				wt.Consume(sim.Duration(walked) * e.costs.CommitPerBlock)
				e.in.CommitFrees(wt, -1, pvbns)
				e.in.Counters.Add(e.in.AggrFreeID(), int64(len(pvbns)))
				e.in.Counters.Add(e.in.VolFreeID(v.ID()), int64(freedAlloc))
				e.stats.Restores++
				e.stats.RestoreFreed += uint64(len(pvbns))
				e.stats.RestoreBlocks += uint64(walked)
				if e.onRestore != nil {
					e.onRestore(v.ID())
				}
				if wtr := wt.Tracer(); wtr != nil {
					wtr.InstantArg(obs.PidCP, e.snapTrack(wtr), "snap", "snap-restore", int64(wt.Now()), int64(id))
				}
			}
		}
		// Clone binds queued before the freeze cut materialize next: the
		// clone's active map and inode file become the parent snapshot's
		// frozen image, the shared set is recorded in the base map and
		// summary-held. A bind whose parent snapshot is pending in this same
		// CP waits one more (same NVRAM-window reasoning as restores).
		if bindPend[v.ID()] {
			pv, ps := v.ClonePendingInfo()
			p := e.a.Volume(pv)
			if p.SnapshotByID(ps) == nil {
				redriveSlots[i] = true
			} else {
				activated, copied := v.MaterializeClone(p)
				wt.Consume(sim.Duration(copied) * e.costs.CommitPerBlock)
				// The newly active VVBNs were allocatable before the bind
				// (the slot map was empty and nothing summary-held them):
				// debit the loose volume free counter to match the index.
				e.in.Counters.Add(e.in.VolFreeID(v.ID()), -int64(activated))
				e.stats.CloneBinds++
				e.stats.CloneCopied += uint64(copied)
				if wtr := wt.Tracer(); wtr != nil {
					wtr.InstantArg(obs.PidCP, e.snapTrack(wtr), "snap", "clone-bind", int64(wt.Now()), int64(v.ID()))
				}
			}
		}
		for _, z := range v.TakeZombies() {
			if z.FrozenCount() > 0 {
				// The file was frozen into this very CP before being
				// deleted: its cleaning is about to rewrite the tree and
				// its record. Reap it next CP, from the stable image.
				v.DeferZombie(z)
				continue
			}
			pvbns, vvbns, walked := v.ZombieBlocks(z)
			wt.Consume(sim.Duration(walked) * e.costs.CommitPerBit)
			e.in.CommitFrees(wt, -1, pvbns)
			e.in.CommitFrees(wt, v.ID(), vvbns)
			// Zombie frees happen outside any cleaner token: account them
			// directly. The volume counter tracks *allocatable* VVBNs
			// (free = !active && !summary), so a block whose active bit
			// clears here but which a snapshot still summary-holds does
			// not credit it — its credit comes later, from the snapshot
			// reclaim that drops the last holder.
			alloc := 0
			for _, vv := range vvbns {
				if !v.SummaryHeld(vv) {
					alloc++
				}
			}
			e.in.Counters.Add(e.in.AggrFreeID(), int64(len(pvbns)))
			e.in.Counters.Add(e.in.VolFreeID(v.ID()), int64(alloc))
			v.ClearRecord(z.Ino())
			// Remember the reap: if the file was also in this CP's frozen
			// list (a record-only freeze deleted between the freeze and
			// zombie phases — both yield), phase 3 must not re-write its
			// record over the clear, or the deleted file is resurrected on
			// disk.
			if reapedSlots[i] == nil {
				reapedSlots[i] = make(map[uint64]bool)
			}
			reapedSlots[i][z.Ino()] = true
			e.stats.ZombiesReaped++
		}
		snapZSlots[i] = v.TakeSnapZombies()
	})
	reaped := make(map[int]map[uint64]bool)
	for i, v := range vols {
		if reapedSlots[i] != nil {
			reaped[v.ID()] = reapedSlots[i]
		}
	}
	var zvols []*aggregate.Volume
	var zlists [][]*snap.Snapshot
	for i, v := range vols {
		if len(snapZSlots[i]) > 0 {
			zvols = append(zvols, v)
			zlists = append(zlists, snapZSlots[i])
		}
	}
	// Splitting clones do their bounded block-copy step (or complete) after
	// the zombie walks; computed here because a bind materialized above may
	// have started a replay-queued split.
	var splitVols []*aggregate.Volume
	for _, v := range vols {
		if v.CloneSplitting() {
			splitVols = append(splitVols, v)
		}
	}
	if len(zvols) > 0 || len(splitVols) > 0 {
		// The file-zombie free commits above are applied asynchronously by
		// range-affinity messages. A snapshot reclaim diffs the victim's
		// snapmap against activemap *content*, so an in-flight clear — a file
		// deleted in this CP whose blocks a dying snapshot holds — would make
		// the reclaim see the VVBN as still active: it would clear the summary
		// bit but never free the physical block, leaking it permanently. A
		// clone-split completion makes the same content diff (live base
		// count), so it needs the same settling. Wait for the messages
		// (without entering drain mode — the cleaning phase's fill pipeline
		// hasn't started yet).
		e.in.DrainFrees(t)
	}
	if len(zvols) > 0 {
		// Snapshot zombies: diff the victim's snapmap against the active map
		// and surviving snapmaps, clear the summary bits nobody else holds,
		// and return exclusively-held blocks (plus the snapshot's own
		// metafile trees) to the aggregate. Same-CP physical reuse is fenced
		// by the pending-free set, exactly like file zombie frees.
		e.scatterVolumes(t, "snapreclaim", zvols, func(wt *sim.Thread, v *aggregate.Volume, i int) {
			zombies := zlists[i]
			for zi, z := range zombies {
				pvbns, freedVVBNs, walked := v.ReclaimSnapshot(z, zombies[zi+1:])
				wt.Consume(sim.Duration(walked) * e.costs.CommitPerBit)
				e.in.CommitFrees(wt, -1, pvbns)
				e.in.Counters.Add(e.in.AggrFreeID(), int64(len(pvbns)))
				// The reclaimed VVBNs' active bits were already clear and
				// their last summary holder is gone: they re-enter the
				// volume's allocatable pool, so credit the volume free
				// counter — the twin of the file-zombie credit above.
				e.in.Counters.Add(e.in.VolFreeID(v.ID()), int64(freedVVBNs))
				e.stats.SnapsDeleted++
				e.stats.SnapReclaimed += uint64(len(pvbns))
				snapSetChanged[v.ID()] = true
				if wtr := wt.Tracer(); wtr != nil {
					wtr.InstantArg(obs.PidCP, e.snapTrack(wtr), "snap", "snap-delete", int64(wt.Now()), int64(z.ID))
					wtr.Observe("snap.reclaimed", int64(len(pvbns)))
				}
			}
		})
	}
	if len(splitVols) > 0 {
		// Clone splits. While base blocks are live in the active map, rewrite
		// a bounded batch through the normal COW write path — they dirty into
		// the open generation and the *next* CP's cleaner assigns fresh
		// VVBN/physical homes, so each split CP is re-driven below. Once no
		// base block is live, completion clears the summary/base holds not
		// owned by clone-local snapshots and (when fully drained) frees the
		// base map metafile and drops the parent-snapshot delete guard.
		e.scatterVolumes(t, "clonesplit", splitVols, func(wt *sim.Thread, v *aggregate.Volume, i int) {
			st := v.CloneState()
			if live := v.CloneLiveBase(); live > 0 {
				copied, walked := v.SplitStep(e.opts.CloneSplitBatch)
				wt.Consume(sim.Duration(walked) * e.costs.CommitPerBit)
				e.stats.SplitCopied += uint64(copied)
				redriveSlots[i] = true
				return
			}
			pv, ps := st.ParentVol, st.ParentSnap
			basePvbns, freedAlloc, walked, done := v.CompleteSplit()
			wt.Consume(sim.Duration(walked) * e.costs.CommitPerBit)
			e.in.CommitFrees(wt, -1, basePvbns)
			e.in.Counters.Add(e.in.AggrFreeID(), int64(len(basePvbns)))
			e.in.Counters.Add(e.in.VolFreeID(v.ID()), int64(freedAlloc))
			if done {
				e.a.Volume(pv).DropCloneRef(ps)
				e.stats.SplitsDone++
				if wtr := wt.Tracer(); wtr != nil {
					wtr.InstantArg(obs.PidCP, e.snapTrack(wtr), "snap", "clone-split-done", int64(wt.Now()), int64(v.ID()))
				}
			}
		})
	}
	for _, r := range redriveSlots {
		if r {
			e.RequestCP()
			break
		}
	}

	// Phase 2: inode cleaning through the White Alligator API.
	var jobs []*core.Job
	for _, v := range dirtyVols {
		jobs = append(jobs, e.pool.BuildJobs(v, frozen[v.ID()], true)...)
	}
	cleanStart := t.Now()
	phase("freeze+zombies")
	e.pool.RunPhase(t, jobs)
	// Wait only for infrastructure messages: the allocation-bitmap state
	// must be final before metafiles are cleaned, but the tetris write
	// I/Os keep flowing underneath the metafile phases.
	e.in.DrainOps(t)
	e.stats.CleanDuration += sim.Duration(t.Now() - cleanStart)
	phase("clean")
	if tr != nil {
		tr.Observe("cp.clean", int64(t.Now()-cleanStart))
	}
	e.boundary(t, "clean")

	// Phase 2b: snapshot capture, part one. With cleaning drained, the
	// volume activemaps hold this CP's final allocation state: copy each
	// pending snapshot's snapmap from the live amap content and fold it into
	// the summary map, per volume. (The inode-file half of the image is
	// captured after phase 3, once records are written.)
	var pvols []*aggregate.Volume
	for _, v := range vols {
		if len(snapPend[v.ID()]) > 0 {
			pvols = append(pvols, v)
		}
	}
	snapSlots := make([][]*snap.Snapshot, len(pvols))
	e.scatterVolumes(t, "snapcapture", pvols, func(wt *sim.Thread, v *aggregate.Volume, i int) {
		ids := snapPend[v.ID()]
		out := make([]*snap.Snapshot, 0, len(ids))
		for _, id := range ids {
			s, copied := v.MaterializeSnapshot(id, e.a.CPCount()+1)
			wt.Consume(sim.Duration(copied) * e.costs.CommitPerBlock)
			out = append(out, s)
			if wtr := wt.Tracer(); wtr != nil {
				wtr.InstantArg(obs.PidCP, e.snapTrack(wtr), "snap", "snap-create", int64(wt.Now()), int64(id))
			}
		}
		snapSlots[i] = out
	})
	for i, v := range pvols {
		snapSetChanged[v.ID()] = true
		e.stats.SnapsCreated += uint64(len(snapSlots[i]))
	}

	// Phase 3: inode records. Roots are final; serialize the records into
	// the inode files, per volume.
	metaStart := t.Now()
	e.scatterVolumes(t, "records", dirtyVols, func(wt *sim.Thread, v *aggregate.Volume, i int) {
		files := frozen[v.ID()]
		written := 0
		for _, f := range files {
			if r := reaped[v.ID()]; r != nil && r[f.Ino()] {
				// Deleted after the freeze and already reaped by phase 1b
				// (possible only for a buffer-less record-only freeze):
				// writing the stale record would resurrect the file.
				continue
			}
			v.WriteRecord(f)
			wt.Consume(e.costs.RecordWrite)
			written++
		}
		e.stats.RecordsWritten += uint64(written)
		e.stats.InodesCleaned += uint64(len(files))
	})

	phase("records")
	e.boundary(t, "records")

	// Phase 3b: snapshot capture, part two. Inode-file content is final
	// (records written, deleted records cleared): copy it into each new
	// snapshot's inocopy metafile, per volume. Both snapshot metafiles are
	// then cleaned alongside the volume metafiles in phase 4.
	e.scatterVolumes(t, "inocopy", pvols, func(wt *sim.Thread, v *aggregate.Volume, i int) {
		for _, s := range snapSlots[i] {
			copied := snap.CopyContent(s.InoCopy, v.InoFile())
			wt.Consume(sim.Duration(copied) * e.costs.CommitPerBlock)
		}
	})
	var snapJobs []*core.Job
	for i, v := range pvols {
		for _, s := range snapSlots[i] {
			snapJobs = append(snapJobs,
				&core.Job{Vol: v, Files: []*fs.File{s.Snapmap}, Mode: core.JobFull},
				&core.Job{Vol: v, Files: []*fs.File{s.InoCopy}, Mode: core.JobFull})
		}
	}

	// Phase 4: volume metafiles (inode file, container map, volume
	// activemap, snapdir, summary map) plus any newborn snapshot metafiles,
	// cleaned through the same allocator.
	e.in.Prefill()
	metaJobs := snapJobs
	for _, v := range e.a.Volumes() {
		for _, mf := range v.Metafiles() {
			if mf.FrozenCount() > 0 {
				metaJobs = append(metaJobs, &core.Job{Vol: v, Files: []*fs.File{mf}, Mode: core.JobFull})
			}
		}
	}
	e.pool.RunPhase(t, metaJobs)
	phase("metafiles")
	e.boundary(t, "metafiles")

	// Phase 5: snapdir + volume table. Volumes whose snapshot set changed
	// rewrite their snapdir from the live set — the snapmap/inocopy roots
	// are final after phase 4 — per volume; the snapdir is cleaned before
	// the volume-table entries (which hold its root) are serialized. The
	// volume table itself is aggregate state: it stays on the engine thread.
	var svols []*aggregate.Volume
	for _, v := range vols {
		if snapSetChanged[v.ID()] {
			svols = append(svols, v)
		}
	}
	e.scatterVolumes(t, "snapdir", svols, func(wt *sim.Thread, v *aggregate.Volume, i int) {
		v.WriteSnapdirEntries()
		wt.Consume(e.costs.RecordWrite)
	})
	var sdJobs []*core.Job
	for _, v := range svols {
		if v.SnapdirFile().FrozenCount() > 0 {
			sdJobs = append(sdJobs, &core.Job{Vol: v, Files: []*fs.File{v.SnapdirFile()}, Mode: core.JobFull})
		}
	}
	if len(sdJobs) > 0 {
		e.pool.RunPhase(t, sdJobs)
	}
	e.a.WriteVolumeEntries()
	if e.a.VolTableFile().FrozenCount() > 0 {
		e.pool.RunPhase(t, []*core.Job{{Files: []*fs.File{e.a.VolTableFile()}, Mode: core.JobFull}})
	}
	e.in.DrainOps(t)
	phase("voltable")
	e.boundary(t, "voltable")

	// Phase 6: the self-referential aggregate activemap, via the
	// fixed-point flush planner; then wait for every outstanding write
	// I/O before committing.
	freeBefore := int64(e.a.TotalFree())
	writes := e.a.PlanAmapFlush(func() block.VBN { return e.in.FindMetaVBN(t) })
	// The flush planner allocates and frees directly; reconcile the loose
	// global counter with the net change — the per-CP "audit and correct"
	// step loose accounting requires (§III-C).
	e.in.Counters.Add(e.in.AggrFreeID(), int64(e.a.TotalFree())-freeBefore)
	e.stats.AmapWrites += uint64(len(writes))
	t.ConsumeAs(sim.CatInfra, sim.Duration(len(writes))*e.costs.CommitPerBlock)
	e.issueAmapWrites(t, writes)
	e.in.DrainIO(t)
	e.stats.MetaDuration += sim.Duration(t.Now() - metaStart)
	phase("amap flush")
	if tr != nil {
		tr.Observe("cp.meta", int64(t.Now()-metaStart))
	}
	e.boundary(t, "amap")

	// Phase 7: commit. The superblock overwrite is the atomic transition
	// to the new file system tree; afterwards the NVRAM half that fed
	// this CP is freed and same-CP-freed blocks become allocatable.
	e.boundary(t, "commit")
	e.a.SetCPCount(e.a.CPCount() + 1)
	e.a.WriteSuperblock(t)
	e.boundary(t, "post-commit")
	e.log.FreeFrozen()
	e.in.EndCP()
	// The applied restores are durable: reopen the client gates. Deferred
	// restores re-queued at phase 1b keep their volumes gated through
	// pendRestores until the follow-up CP applies them.
	for vid := range restPend {
		e.a.Volume(vid).FinishRestore()
	}
	e.boundary(t, "done")

	phase("commit")
	if tr != nil {
		tr.SpanArg(obs.PidCP, e.track(tr), "cp", "CP", int64(start), int64(t.Now()),
			int64(e.a.CPCount()))
		tr.Observe("cp.total", int64(t.Now()-start))
	}
	d := sim.Duration(t.Now() - start)
	e.observePhase("total", int64(d))
	e.stats.CPs++
	e.stats.TotalDuration += d
	e.stats.LastDuration = d
	if d > e.stats.LongestDuration {
		e.stats.LongestDuration = d
	}
}

// issueAmapWrites sends the planned activemap block writes to RAID, one
// grouped write per RAID group.
func (e *Engine) issueAmapWrites(t *sim.Thread, writes []aggregate.AmapWrite) {
	if len(writes) == 0 {
		return
	}
	geo := e.a.Geometry()
	perGroup := make(map[int][][]storage.WriteReq)
	for _, w := range writes {
		g, d, dbn := geo.Locate(w.VBN)
		reqs := perGroup[g]
		if reqs == nil {
			reqs = make([][]storage.WriteReq, geo.DataDrives)
		}
		reqs[d] = append(reqs[d], storage.WriteReq{DBN: dbn, Data: w.Data})
		perGroup[g] = reqs
	}
	for g := 0; g < e.a.Groups(); g++ {
		reqs, ok := perGroup[g]
		if !ok {
			continue
		}
		e.in.AddIO()
		res := e.a.Group(g).Write(reqs, e.costs.ParityPerBlock, e.in.IODone)
		if res.ParityCPU > 0 {
			t.ConsumeAs(sim.CatRAID, res.ParityCPU)
		}
	}
}

// VerifyClean panics if any file still has frozen buffers after a CP — a
// development invariant check used by tests.
func (e *Engine) VerifyClean() error {
	var bad []string
	check := func(f *fs.File, tag string) {
		if f.FrozenCount() > 0 {
			bad = append(bad, fmt.Sprintf("%s ino %d: %d frozen", tag, f.Ino(), f.FrozenCount()))
		}
	}
	check(e.a.AmapFile(), "aggr amap")
	check(e.a.VolTableFile(), "voltable")
	for _, v := range e.a.Volumes() {
		for _, mf := range v.Metafiles() {
			check(mf, fmt.Sprintf("vol%d metafile", v.ID()))
		}
		for _, s := range v.Snapshots() {
			check(s.Snapmap, fmt.Sprintf("vol%d snap%d snapmap", v.ID(), s.ID))
			check(s.InoCopy, fmt.Sprintf("vol%d snap%d inocopy", v.ID(), s.ID))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("cp: uncleaned state after CP: %v", bad)
	}
	return nil
}
