package cp

import (
	"bytes"
	"testing"

	"wafl/internal/aggregate"
	"wafl/internal/block"
	"wafl/internal/core"
	"wafl/internal/fs"
	"wafl/internal/nvlog"
	"wafl/internal/sim"
	"wafl/internal/storage"
	"wafl/internal/waffinity"
)

type env struct {
	s      *sim.Scheduler
	a      *aggregate.Aggregate
	in     *core.Infra
	pool   *core.Pool
	log    *nvlog.Log
	engine *Engine
}

func newEnv(t *testing.T) *env {
	t.Helper()
	s := sim.New(8, 1)
	w := waffinity.New(s, 8, 0)
	h := waffinity.NewHierarchy(w, waffinity.HierarchyConfig{
		Aggregates: 1, VolumesPerAgg: 2, StripesPerVol: 4, RangesPerVBN: 4,
	})
	a, err := aggregate.New(s, aggregate.Config{
		Geometry: aggregate.Geometry{NumGroups: 2, DataDrives: 3, Depth: 8192, AAStripes: 1024},
		Profile:  storage.SSD,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.AddVolume(1 << 15)
	a.AddVolume(1 << 15)
	opts := core.DefaultOptions()
	opts.MaxCleaners = 3
	opts.InitialCleaners = 3
	costs := core.DefaultCosts()
	in := core.NewInfra(w, h, a, opts, costs)
	pool := core.NewPool(in, opts, costs)
	log := nvlog.New(1 << 20)
	engine := New(w, h, a, in, pool, log, opts, costs)
	return &env{s: s, a: a, in: in, pool: pool, log: log, engine: engine}
}

// runCP triggers a CP and runs until it completes.
func (e *env) runCP(t *testing.T) {
	t.Helper()
	before := e.engine.Stats().CPs
	e.engine.RequestCP()
	for i := 0; i < 100 && e.engine.Stats().CPs == before; i++ {
		e.s.RunFor(50 * sim.Millisecond)
	}
	if e.engine.Stats().CPs == before {
		t.Fatal("CP did not complete")
	}
}

func payload(tag byte) []byte {
	p := make([]byte, block.Size)
	for i := range p {
		p[i] = tag ^ byte(i*3)
	}
	return p
}

func TestCPFlushesDirtyFile(t *testing.T) {
	e := newEnv(t)
	v := e.a.Volume(0)
	f := v.CreateFile(1 << 12)
	for i := 0; i < 50; i++ {
		f.WriteBlock(block.FBN(i), payload(byte(i)))
	}
	v.MarkDirty(f)
	e.log.Append(nvlog.Record{Kind: nvlog.OpWrite, Ino: f.Ino(), LogicalBytes: block.Size})
	e.runCP(t)

	if f.FrozenCount() != 0 || f.DirtyCount() != 0 {
		t.Fatalf("frozen=%d dirty=%d after CP", f.FrozenCount(), f.DirtyCount())
	}
	if err := e.engine.VerifyClean(); err != nil {
		t.Fatal(err)
	}
	// The data must be on committed media at the recorded locations.
	for i := 0; i < 50; i++ {
		b := f.Buffer(0, block.FBN(i))
		got := e.a.ReadVBNRaw(b.VBN())
		if !bytes.Equal(got, payload(byte(i))) {
			t.Fatalf("block %d content mismatch on media", i)
		}
	}
	if e.engine.Stats().InodesCleaned == 0 || e.engine.Stats().RecordsWritten == 0 {
		t.Fatal("stats not recorded")
	}
}

func TestCPCommitsSuperblockAndMounts(t *testing.T) {
	e := newEnv(t)
	v := e.a.Volume(0)
	f := v.CreateFile(1 << 12)
	f.WriteBlock(7, payload(0xAB))
	v.MarkDirty(f)
	e.runCP(t)

	m, err := aggregate.MountFrom(e.a)
	if err != nil {
		t.Fatal(err)
	}
	if m.CPCount() != 1 {
		t.Fatalf("mounted cp count = %d", m.CPCount())
	}
	mf := m.Volume(0).LookupFile(f.Ino())
	if mf == nil {
		t.Fatal("file lost across mount")
	}
	got := m.Volume(0).ReadFileBlock(nil, mf, 7)
	if !bytes.Equal(got, payload(0xAB)) {
		t.Fatal("mounted content mismatch")
	}
}

func TestEmptyCPStillCommits(t *testing.T) {
	e := newEnv(t)
	e.runCP(t)
	if e.a.CPCount() != 1 {
		t.Fatal("empty CP did not bump the superblock")
	}
	if _, err := aggregate.MountFrom(e.a); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialCPsReuseSpace(t *testing.T) {
	e := newEnv(t)
	v := e.a.Volume(0)
	f := v.CreateFile(1 << 12)
	var usedPeak uint64
	for round := 0; round < 5; round++ {
		for i := 0; i < 64; i++ {
			f.WriteBlock(block.FBN(i), payload(byte(round)))
		}
		v.MarkDirty(f)
		e.runCP(t)
		used := e.a.Activemap.Used()
		if round == 1 {
			usedPeak = used
		}
		if round > 1 && used > usedPeak+16 {
			t.Fatalf("space leak across CPs: round %d used %d > peak %d", round, used, usedPeak)
		}
	}
}

func TestBackToBackAccounting(t *testing.T) {
	e := newEnv(t)
	v := e.a.Volume(0)
	f := v.CreateFile(1 << 12)
	f.WriteBlock(0, payload(1))
	v.MarkDirty(f)
	e.engine.RequestCP()
	e.s.RunFor(100 * sim.Microsecond) // let CP 1 start
	if !e.engine.Running() {
		t.Fatal("CP should be running")
	}
	e.engine.RequestCP() // while running: chains back-to-back
	e.s.RunFor(2 * sim.Second)
	if e.engine.Stats().CPs < 2 {
		t.Fatalf("cps = %d, want 2 (chained)", e.engine.Stats().CPs)
	}
	if e.engine.Stats().BackToBack == 0 {
		t.Fatal("back-to-back not recorded")
	}
}

func TestWaitCPDoneWakesWaiters(t *testing.T) {
	e := newEnv(t)
	woken := false
	e.s.Go("waiter", sim.CatClient, func(th *sim.Thread) {
		e.engine.WaitCPDone(th)
		woken = true
	})
	e.s.RunFor(10 * sim.Millisecond)
	e.runCP(t)
	if !woken {
		t.Fatal("WaitCPDone waiter not woken")
	}
}

func TestCrashMidCPKeepsPreviousImage(t *testing.T) {
	e := newEnv(t)
	v := e.a.Volume(0)
	f := v.CreateFile(1 << 12)
	f.WriteBlock(0, payload(1))
	v.MarkDirty(f)
	e.runCP(t) // CP 1 commits content "1"

	// Dirty again and crash while the second CP is mid-flight.
	for i := 0; i < 200; i++ {
		f.WriteBlock(block.FBN(i), payload(2))
	}
	v.MarkDirty(f)
	e.engine.RequestCP()
	e.s.RunFor(200 * sim.Microsecond) // partway into CP 2
	if e.a.CPCount() >= 2 {
		t.Skip("CP 2 finished too fast to crash mid-flight")
	}
	e.a.CrashAll()
	m, err := aggregate.MountFrom(e.a)
	if err != nil {
		t.Fatal(err)
	}
	if m.CPCount() != 1 {
		t.Fatalf("mounted cp = %d, want 1 (previous image)", m.CPCount())
	}
	mf := m.Volume(0).LookupFile(f.Ino())
	got := m.Volume(0).ReadFileBlock(nil, mf, 0)
	if !bytes.Equal(got, payload(1)) {
		t.Fatal("previous CP's content corrupted by crashed CP")
	}
}

func TestMultiVolumeCP(t *testing.T) {
	e := newEnv(t)
	var files []*fs.File
	for vi := 0; vi < 2; vi++ {
		v := e.a.Volume(vi)
		f := v.CreateFile(1 << 12)
		for i := 0; i < 30; i++ {
			f.WriteBlock(block.FBN(i), payload(byte(vi*100+i)))
		}
		v.MarkDirty(f)
		files = append(files, f)
	}
	e.runCP(t)
	for vi, f := range files {
		if f.FrozenCount() != 0 {
			t.Fatalf("vol %d file not cleaned", vi)
		}
		b := f.Buffer(0, 3)
		if vol := e.a.Volume(vi); vol.Container(b.VVBN()) != b.VBN() {
			t.Fatalf("vol %d container entry missing", vi)
		}
	}
}

func TestStopEndsEngine(t *testing.T) {
	e := newEnv(t)
	e.engine.Stop()
	e.s.RunFor(100 * sim.Millisecond)
	if e.s.Live() == 0 {
		t.Skip("other threads keep the sim alive; just ensure no panic")
	}
}
