package wafl

import (
	"fmt"

	"wafl/internal/aggregate"
	"wafl/internal/bcache"
	"wafl/internal/block"
	"wafl/internal/core"
	"wafl/internal/cp"
	"wafl/internal/faultinject"
	"wafl/internal/nvlog"
	"wafl/internal/obs"
	"wafl/internal/sim"
	"wafl/internal/waffinity"
)

// Member is one constituent of a cluster: a complete per-aggregate storage
// stack — Waffinity hierarchy and worker pool, RAID aggregate with its
// FlexVols and superblock, White Alligator allocation infrastructure and
// cleaner pool, consistency-point engine, NVRAM log partition, and fault
// injector. A single-member System is exactly the pre-cluster single
// aggregate; a multi-member System stripes its namespace across members,
// each with its own CP cadence and its own crash domain.
//
// All of a member's service threads are spawned eagerly during
// construction, so they occupy a contiguous range of scheduler thread
// indices ([threadLo, threadHi)); crashing a member kills exactly that
// range while every other member's threads keep running.
type Member struct {
	sys    *System
	id     int
	w      *waffinity.Scheduler
	h      *waffinity.Hierarchy
	a      *aggregate.Aggregate
	in     *core.Infra
	pool   *core.Pool
	engine *cp.Engine
	log    *nvlog.Log
	tuner  *core.Tuner
	inj    *faultinject.Injector // nil unless Config.Faults enables an arm

	threadLo, threadHi int // scheduler thread-index range of service threads
	crashed            bool

	// reserved is the per-local-volume ingest reservation (blocks charged
	// by PlaceFile for files placed but not yet written). Host-side
	// placement state; never read by simulated threads. Reservations decay
	// as the placed writes land (reservation becomes consumption, which the
	// free-space counters then reflect) and the remainder is refunded when
	// the placed file is deleted — without the decay, a churning cluster
	// eventually reports zero reservation-net free space everywhere and
	// placement degenerates to member 0.
	reserved []int64
	// pendingPlace is, per local volume, the FIFO of placement charges not
	// yet bound to a created inode: PlaceFile pushes, the next create on
	// that volume pops and binds.
	pendingPlace [][]int64
	// placements maps a placed file (by local volume and inode) to the
	// blocks of its reservation not yet converted to consumption. Lookup
	// only — never iterated — so determinism is safe.
	placements map[placeKey]int64

	// bc is the member's sized buffer cache on the client read path, nil
	// when Config.BCacheBlocks is 0 (reads then always install into the
	// in-memory trees, the pre-cache behavior). Volatile: rebuilt cold on
	// recovery.
	bc *bcache.Cache

	// Admission-control state (Config.Admission). bulkHeld latches when the
	// NVRAM active half crosses the bulk delay watermark and releases only
	// once fullness drops below the resume watermark with no frozen half
	// draining — the hysteresis that stops admission flapping across CP
	// half-switches (fullness drops to ~0 the instant the halves switch,
	// long before the CP has actually freed anything).
	bulkHeld   bool
	shedOps    uint64       // bulk writes refused admission
	admitDelay sim.Duration // cumulative bulk admission delay

	// Per-member cumulative client statistics; Results windows diff these.
	opsDone   uint64
	blocksW   uint64
	blocksR   uint64
	stalls    uint64
	stallTime sim.Duration
	lat       *obs.Histogram // client op latency, log-linear buckets
}

// placeKey identifies a placed file's reservation: member-local volume and
// inode.
type placeKey struct {
	vol int
	ino uint64
}

// bindPlacement binds the oldest unbound placement charge on local volume
// lv to the newly created inode ino, so later writes to it can decay the
// reservation and a delete can refund the remainder. No-op when no
// placement is pending (plain creates).
//
// Concurrent placed creates on one volume may interleave between PlaceFile
// and the create, so a charge can bind to a different same-volume file than
// the one it was sized for; the invariant that matters — reserved[lv] equals
// pending plus bound remainders — holds regardless, and the FIFO keeps the
// binding deterministic.
func (m *Member) bindPlacement(lv int, ino uint64) {
	q := m.pendingPlace[lv]
	if len(q) == 0 {
		return
	}
	m.placements[placeKey{lv, ino}] = q[0]
	m.pendingPlace[lv] = q[1:]
}

// consumePlacement converts up to blocks of the file's outstanding
// placement reservation into consumption: the blocks just written are now
// counted by the free-space index itself, so the reservation standing in
// for them is released.
func (m *Member) consumePlacement(lv int, ino uint64, blocks int64) {
	k := placeKey{lv, ino}
	rem, ok := m.placements[k]
	if !ok {
		return
	}
	if blocks >= rem {
		m.reserved[lv] -= rem
		delete(m.placements, k)
		return
	}
	m.reserved[lv] -= blocks
	m.placements[k] = rem - blocks
}

// refundPlacement returns the unwritten remainder of a deleted placed
// file's reservation.
func (m *Member) refundPlacement(lv int, ino uint64) {
	k := placeKey{lv, ino}
	if rem, ok := m.placements[k]; ok {
		m.reserved[lv] -= rem
		delete(m.placements, k)
	}
}

// spawnPrefix returns the thread-name prefix for member id: empty for
// member 0 (so a single-member system's thread and trace-track names are
// byte-identical to the pre-cluster code), "m<id>." otherwise.
func spawnPrefix(id int) string {
	if id == 0 {
		return ""
	}
	return fmt.Sprintf("m%d.", id)
}

// buildMember constructs and formats one member on the cluster's shared
// scheduler. The construction sequence (waffinity scheduler and workers,
// hierarchy, aggregate, volumes, infra, cleaner pool, NVRAM log, CP
// engine, tuner) is the pre-cluster NewSystem sequence verbatim; for a
// single-member system the resulting event stream is bit-identical.
func buildMember(sys *System, id int) (*Member, error) {
	cfg := sys.cfg
	s := sys.s
	s.SetSpawnPrefix(spawnPrefix(id))
	defer s.SetSpawnPrefix("")
	// Clone slots are pre-provisioned member-local volumes after the client
	// volumes: indices [Volumes, Volumes+CloneSlots). With CloneSlots == 0
	// the layout (and every event) is identical to the pre-clone code.
	localVols := cfg.Volumes + cfg.CloneSlots
	m := &Member{sys: sys, id: id, threadLo: s.ThreadMark(), lat: obs.NewHistogram("client.lat"),
		reserved:     make([]int64, localVols),
		pendingPlace: make([][]int64, localVols),
		placements:   make(map[placeKey]int64)}
	if cfg.BCacheBlocks > 0 {
		m.bc = bcache.New(cfg.BCacheBlocks)
	}
	m.w = waffinity.New(s, cfg.Cores, cfg.Costs.MsgDispatch)
	m.h = waffinity.NewHierarchy(m.w, waffinity.HierarchyConfig{
		Aggregates:    1,
		VolumesPerAgg: localVols,
		StripesPerVol: cfg.StripesPerVolume,
		RangesPerVBN:  cfg.RangesPerVBN,
		FirstAggr:     id,
	})
	a, err := aggregate.New(s, aggregate.Config{
		Geometry: aggregate.Geometry{
			NumGroups:  cfg.RAIDGroups,
			DataDrives: cfg.DataDrives,
			Depth:      block.DBN(cfg.DriveBlocks),
			AAStripes:  block.DBN(cfg.AAStripes),
		},
		Profile: cfg.Drives.profile(),
	})
	if err != nil {
		return nil, err
	}
	m.a = a
	for i := 0; i < localVols; i++ {
		a.AddVolume(cfg.VolumeBlocks)
	}
	m.in = core.NewInfra(m.w, m.h, a, cfg.Allocator, cfg.Costs)
	m.pool = core.NewPool(m.in, cfg.Allocator, cfg.Costs)
	m.log = nvlog.New(cfg.NVRAMHalfBytes)
	m.engine = cp.New(m.w, m.h, a, m.in, m.pool, m.log, cfg.Allocator, cfg.Costs)
	m.engine.SetRestoreHook(m.onRestore)
	if cfg.Allocator.Dynamic {
		m.tuner = core.StartTuner(m.pool, cfg.Tuner)
	}
	m.threadHi = s.ThreadMark()
	return m, nil
}

// onRestore is the CP engine's post-SnapRestore-apply callback: the restored
// image supersedes the volume's volatile present, so evict its buffer-cache
// residency and refund every ingest reservation charged against it (bound or
// still pending) — the files those charges stood in for were discarded or
// reverted with the rest of the present.
func (m *Member) onRestore(lv int) {
	if m.bc != nil {
		m.bc.InvalidateVol(lv)
	}
	// Deleting map entries while iterating is fine in Go, and the resulting
	// reserved[lv] is a sum — order-independent, so determinism holds even
	// though the map iteration order is not.
	for k, rem := range m.placements {
		if k.vol == lv {
			m.reserved[lv] -= rem
			delete(m.placements, k)
		}
	}
	for _, q := range m.pendingPlace[lv] {
		m.reserved[lv] -= q
	}
	m.pendingPlace[lv] = nil
}

// remountMember rebuilds a crashed member from its persistent state: it
// mounts the last committed consistency point from the member's drives and
// replays the member's NVRAM log partition, leaving the replayed
// operations dirty for the next CP. The rebuilt member runs on the same
// scheduler and drives; cumulative client statistics carry over so
// measurement windows spanning the crash stay meaningful.
func (sys *System) remountMember(om *Member) (*Member, error) {
	a, err := aggregate.MountFrom(om.a)
	if err != nil {
		return nil, fmt.Errorf("wafl: recovery mount of member %d failed: %w", om.id, err)
	}
	cfg := sys.cfg
	s := sys.s
	s.SetSpawnPrefix(spawnPrefix(om.id))
	defer s.SetSpawnPrefix("")
	m := &Member{
		sys: sys, id: om.id, a: a, threadLo: s.ThreadMark(),
		opsDone: om.opsDone, blocksW: om.blocksW, blocksR: om.blocksR,
		stalls: om.stalls, stallTime: om.stallTime, lat: om.lat,
		shedOps: om.shedOps, admitDelay: om.admitDelay,
		// Deep-copy the placement state: sharing om.reserved's backing array
		// (the old `reserved: om.reserved`) let post-recovery reservation
		// mutations be observed through stale references to the dead member
		// held by in-flight measurement/debug paths.
		reserved:     append([]int64(nil), om.reserved...),
		pendingPlace: make([][]int64, len(om.pendingPlace)),
		placements:   make(map[placeKey]int64, len(om.placements)),
	}
	for v, q := range om.pendingPlace {
		m.pendingPlace[v] = append([]int64(nil), q...)
	}
	for k, rem := range om.placements {
		m.placements[k] = rem
	}
	// The buffer cache is volatile: a recovered member restarts cold.
	if cfg.BCacheBlocks > 0 {
		m.bc = bcache.New(cfg.BCacheBlocks)
	}
	// Everything volatile is rebuilt from scratch — including the Waffinity
	// scheduler and its worker threads (the crash destroyed the old ones).
	m.w = waffinity.New(s, cfg.Cores, cfg.Costs.MsgDispatch)
	m.h = waffinity.NewHierarchy(m.w, waffinity.HierarchyConfig{
		Aggregates:    1,
		VolumesPerAgg: cfg.Volumes + cfg.CloneSlots,
		StripesPerVol: cfg.StripesPerVolume,
		RangesPerVBN:  cfg.RangesPerVBN,
		FirstAggr:     om.id,
	})
	m.in = core.NewInfra(m.w, m.h, a, cfg.Allocator, cfg.Costs)
	m.pool = core.NewPool(m.in, cfg.Allocator, cfg.Costs)
	m.log = nvlog.New(cfg.NVRAMHalfBytes)
	m.engine = cp.New(m.w, m.h, a, m.in, m.pool, m.log, cfg.Allocator, cfg.Costs)
	m.engine.SetRestoreHook(m.onRestore)
	if cfg.Allocator.Dynamic {
		m.tuner = core.StartTuner(m.pool, cfg.Tuner)
	}
	// Replay the surviving NVRAM records, then re-log them into the new
	// log with their original sequence numbers. Replayed operations were
	// acknowledged to clients, so until a CP commits them they must stay
	// NVRAM-protected (§II-C): without re-logging, a second crash before
	// the next CP would silently lose them. The restored records may
	// exceed one half's capacity (they occupied up to two halves before
	// the crash); the over-full active half stalls new client ops until
	// the recovery CP below drains it.
	records := om.log.Replay()
	m.replay(records)
	m.log.Restore(records)
	if len(records) > 0 {
		// Schedule a recovery CP so the replayed state reaches disk (and
		// frees the log) promptly once the scheduler runs again.
		m.engine.RequestCP()
	}
	// Fault injection outlives the crash: the drives are the same objects
	// (media persists), so the plan wired into them keeps applying.
	m.inj = om.inj
	m.threadHi = s.ThreadMark()
	return m, nil
}

// crash destroys the member's volatile state: its service threads, its
// in-flight drive I/O, its buffer caches and allocator state. The member
// is unusable until remounted.
func (m *Member) crash() {
	m.crashed = true
	if m.tuner != nil {
		m.tuner.Stop()
	}
	m.sys.s.KillRange(m.threadLo, m.threadHi)
	m.a.CrashAll()
}

// replay reapplies logged operations in sequence order against the mounted
// member file system. Record coordinates (Vol, Ino) are member-local.
func (m *Member) replay(records []nvlog.Record) {
	for _, rec := range records {
		v := m.a.Volume(int(rec.Vol))
		switch rec.Kind {
		case nvlog.OpCreate:
			v.CreateFileAt(rec.Ino, rec.MaxBlocks)
		case nvlog.OpDelete:
			v.DeleteFile(rec.Ino) // idempotent

		case nvlog.OpSnapCreate:
			// Idempotent: a no-op if the snapshot was materialized by a CP
			// that committed before the crash; otherwise it is re-queued and
			// the recovery CP materializes it.
			v.RequestSnapshotAt(rec.Ino)
		case nvlog.OpSnapDelete:
			v.DeleteSnapshot(rec.Ino) // idempotent

		case nvlog.OpSnapRestore:
			// Re-queue the restore: the volume is gated again and the
			// recovery CP applies it. A surviving restore record implies the
			// volume was gated from the request on, so no later record in
			// this log touches the volume — the replayed DiscardVolatile
			// cannot erase replayed-and-acked state.
			v.RequestRestoreAt(rec.Ino)
		case nvlog.OpCloneCreate:
			// Ino carries the parent snapshot ID, FBN the parent's local
			// volume. A bind the crash interrupted is re-queued; one a
			// committed CP already materialized is a no-op — its delete
			// guard was rebuilt by the mount, so only a fresh queueing takes
			// a new reference.
			if !v.IsClone() && v.RequestCloneBind(int(rec.FBN), rec.Ino) {
				m.a.Volume(int(rec.FBN)).AddCloneRef(rec.Ino)
			}
		case nvlog.OpCloneSplit:
			v.StartSplit() // idempotent; no-op after a completed split

		case nvlog.OpWrite:
			f := v.LookupFile(rec.Ino)
			if f == nil {
				panic(fmt.Sprintf("wafl: replay write to unknown ino %d", rec.Ino))
			}
			// Install the block's existing location (if any) so the
			// replayed overwrite frees it at the next CP.
			v.EnsureL0Resident(f, rec.FBN)
			f.WriteBlock(rec.FBN, rec.Data)
			v.MarkDirty(f)
		}
	}
}

// volAffs is the single member-resolution point for the Waffinity
// hierarchy: every call site that needs a volume's affinity instances goes
// through here (and the helpers below) rather than indexing h.Aggrs
// directly — `make affcheck` enforces it.
func (m *Member) volAffs(localVol int) *waffinity.VolAffinities {
	return m.h.Aggrs[0].Volumes[localVol]
}

// stripeAff maps (local volume, fbn) to the stripe affinity owning that
// file region.
func (m *Member) stripeAff(localVol int, fbn FBN) *waffinity.Affinity {
	stripes := m.volAffs(localVol).Stripes
	idx := int(uint64(fbn)/m.sys.cfg.StripeWidthBlocks) % len(stripes)
	return stripes[idx]
}

// logicalAff returns the volume's Logical affinity (client-facing file
// operations outside any single stripe: creates, deletes, snapshots).
func (m *Member) logicalAff(localVol int) *waffinity.Affinity {
	return m.volAffs(localVol).Logical
}

// call executes fn inside aff on the member's Waffinity scheduler,
// blocking t until it completes.
func (m *Member) call(t *sim.Thread, aff *waffinity.Affinity, cat sim.Category, fn func(*sim.Thread)) {
	m.w.Call(t, aff, cat, fn)
}

// maybeTriggerCP starts a CP when the member's active NVRAM half passes
// the configured threshold.
func (m *Member) maybeTriggerCP() {
	if m.log.Fullness() >= m.sys.cfg.CPTriggerFullness && !m.log.HasFrozen() {
		m.engine.RequestCP()
	}
}

// Handle encoding: a file handle returned by Create/CreateFileDirect
// carries its member id in the top bits, making routing stateless after
// create — any node can derive the owning constituent from the handle
// alone, without a namespace lookup. Member 0 handles are the bare inode
// number, so single-member systems see exactly the pre-cluster handles.
const memberShift = 48

func memberHandle(id int, ino uint64) uint64 {
	if id == 0 {
		return ino
	}
	return uint64(id)<<memberShift | ino
}

func handleMember(ino uint64) int { return int(ino >> memberShift) }
func handleIno(ino uint64) uint64 { return ino & (1<<memberShift - 1) }

// m0 returns member 0 — the whole system when Members == 1. In-package
// tests reach single-member internals (aggregate, NVRAM log) through it.
func (sys *System) m0() *Member { return sys.members[0] }

// volMember resolves a global volume index to (member, member-local
// volume). Global volume v < Members*Volumes lives on member v /
// cfg.Volumes; clone volumes are addressed above that base — global clone
// slot s of member m is Members*Volumes + m*CloneSlots + s, mapping to
// member-local volume Volumes + s. A clone is always placed on its parent's
// member (the base blocks are physically there), so the routing stays
// stateless.
func (sys *System) volMember(vol int) (*Member, int) {
	base := sys.cfg.Volumes * len(sys.members)
	if vol >= base {
		cs := vol - base
		return sys.members[cs/sys.cfg.CloneSlots], sys.cfg.Volumes + cs%sys.cfg.CloneSlots
	}
	return sys.members[vol/sys.cfg.Volumes], vol % sys.cfg.Volumes
}

// globalVol is volMember's inverse: the global index of member mid's local
// volume lv.
func (sys *System) globalVol(mid, lv int) int {
	if lv < sys.cfg.Volumes {
		return mid*sys.cfg.Volumes + lv
	}
	return sys.cfg.Volumes*len(sys.members) + mid*sys.cfg.CloneSlots + (lv - sys.cfg.Volumes)
}

// resolve routes an operation addressed by (global volume, file handle) to
// its member: the handle's embedded constituent id wins when present
// (stateless routing); bare handles route by volume. Returns the member,
// the member-local volume index, and the member-local inode number.
func (sys *System) resolve(vol int, ino uint64) (*Member, int, uint64) {
	if mid := handleMember(ino); mid != 0 {
		_, lv := sys.volMember(vol)
		return sys.members[mid], lv, handleIno(ino)
	}
	m, lv := sys.volMember(vol)
	return m, lv, ino
}
