package wafl

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"testing"
)

// goldenScenario runs a fixed mixed workload (writes, creates, deletes,
// snapshot churn, reads) on a traced small system and returns digests of
// everything that must not change across refactors: the committed
// superblock bytes, the full trace-event stream, and the event count.
//
// The golden constants below were captured on the single-aggregate code
// BEFORE the Member/Cluster split (PR 6). With Members = 1 the cluster
// must be bit-identical to the pre-refactor system: same superblock, same
// trace stream, same event count. Any drift here means the refactor
// changed simulation behavior, not just structure.
func goldenScenario(t *testing.T, cfg Config) (superSHA, traceSHA string, events uint64) {
	t.Helper()
	cfg.Trace = true
	cfg.PayloadBytes = 512
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Shutdown()

	base := make([]uint64, 4)
	for i := range base {
		base[i] = sys.CreateFileDirect(i%cfg.Volumes, 512)
	}
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	done := 0
	for i := 0; i < 4; i++ {
		i := i
		vol := i % cfg.Volumes
		ino := base[i]
		sys.ClientThread("golden", func(c *ClientCtx) {
			var mine []uint64
			var snap uint64
			for op := 0; op < 120 && c.Alive(); op++ {
				switch {
				case op%40 == 39 && vol == 0:
					if snap == 0 {
						snap = c.SnapCreate(vol)
					} else {
						c.SnapDelete(vol, snap)
						snap = 0
					}
				case op%10 == 7:
					f := c.Create(vol, 32)
					c.Write(vol, f, 0, 2)
					mine = append(mine, f)
				case op%10 == 8 && len(mine) > 0:
					c.Delete(vol, mine[0])
					mine = mine[1:]
				case op%10 == 9:
					c.Read(vol, ino, FBN(c.Rand(500)), 2)
				default:
					c.Write(vol, ino, FBN(c.Rand(500)), 1+int(c.Rand(3)))
				}
			}
			done++
		})
	}
	for i := 0; i < 64 && done < 4; i++ {
		sys.Run(100 * Millisecond)
	}
	if done < 4 {
		t.Fatal("golden workload did not finish")
	}
	if err := sys.Quiesce(); err != nil {
		t.Fatal(err)
	}

	sh := sha256.Sum256(sys.SuperblockBytes())
	th := sha256.New()
	var buf [8]byte
	for _, e := range sys.Tracer().Events() {
		binary.LittleEndian.PutUint64(buf[:], uint64(e.Start))
		th.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(e.Dur))
		th.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(e.Arg))
		th.Write(buf[:])
		th.Write([]byte{byte(e.Pid), byte(e.Tid), byte(e.Ph)})
		th.Write([]byte(e.Name))
	}
	return hex.EncodeToString(sh[:]), hex.EncodeToString(th.Sum(nil)), sys.Events()
}

// Golden digests captured on the pre-refactor single-aggregate code (seed
// of PR 6). See goldenScenario.
const (
	goldenSuperSHA = "738a1d30506744024767acaae2e0a80ea5bbba0b1a291b793bfd781da853e86d"
	goldenTraceSHA = "c4f1ca6aeac20e897f3cb3bc03d305287eeae446a8bca271df73fb600002330f"
	goldenEvents   = 9225
)

// TestMembers1BitIdenticalToSeed locks the Members=1 cluster to the exact
// pre-refactor behavior: trace stream, superblock bytes, and event count
// must all match the golden digests captured before the Member/Cluster
// split.
func TestMembers1BitIdenticalToSeed(t *testing.T) {
	super, trace, events := goldenScenario(t, smallConfig())
	if super != goldenSuperSHA {
		t.Errorf("superblock digest drifted from pre-refactor golden:\n got %s\nwant %s", super, goldenSuperSHA)
	}
	if trace != goldenTraceSHA {
		t.Errorf("trace digest drifted from pre-refactor golden:\n got %s\nwant %s", trace, goldenTraceSHA)
	}
	if events != goldenEvents {
		t.Errorf("event count drifted from pre-refactor golden: got %d want %d", events, goldenEvents)
	}
}
