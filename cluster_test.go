package wafl

import (
	"bytes"
	"fmt"
	"testing"
)

// clusterConfig returns a fast two-member cluster configuration.
func clusterConfig(members int) Config {
	cfg := smallConfig()
	cfg.Members = members
	return cfg
}

// TestClusterBasic drives clients against every member of a two-member
// cluster through the global volume space and checks routing, handles,
// durability, and per-member fsck.
func TestClusterBasic(t *testing.T) {
	cfg := clusterConfig(2)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Shutdown()
	if sys.Members() != 2 {
		t.Fatalf("Members() = %d, want 2", sys.Members())
	}
	if sys.TotalVolumes() != 2*cfg.Volumes {
		t.Fatalf("TotalVolumes() = %d, want %d", sys.TotalVolumes(), 2*cfg.Volumes)
	}

	// One file per global volume; handles on member 1 must carry its id.
	inos := make([]uint64, sys.TotalVolumes())
	for v := range inos {
		inos[v] = sys.CreateFileDirect(v, 256)
		wantMember := v / cfg.Volumes
		if got := handleMember(inos[v]); got != wantMember {
			t.Fatalf("vol %d: handle member tag = %d, want %d", v, got, wantMember)
		}
	}

	done := 0
	for v := range inos {
		v := v
		sys.ClientThread(fmt.Sprintf("cluster-client-%d", v), func(c *ClientCtx) {
			for op := 0; op < 50; op++ {
				c.Write(v, inos[v], FBN(c.Rand(200)), 2)
			}
			c.Read(v, inos[v], 0, 1)
			done++
		})
	}
	for i := 0; i < 64 && done < len(inos); i++ {
		sys.Run(100 * Millisecond)
	}
	if done < len(inos) {
		t.Fatalf("only %d/%d clients finished", done, len(inos))
	}
	if err := sys.Quiesce(); err != nil {
		t.Fatal(err)
	}

	// Both members must have taken ops and committed CPs of their own.
	for i := 0; i < sys.Members(); i++ {
		info := sys.MemberInfo(i)
		if info.Ops == 0 {
			t.Errorf("member %d served no ops", i)
		}
		if info.CPs == 0 {
			t.Errorf("member %d committed no CPs", i)
		}
		if rep := sys.FsckMember(i); !rep.OK() {
			t.Errorf("member %d fsck: %s", i, rep)
			for _, e := range rep.Errors {
				t.Log("  ", e)
			}
		}
	}
	// Content spot check through the routing path.
	for v := range inos {
		if err := sys.VerifyAgainst(v, inos[v], 0); err != nil {
			// FBN 0 may be a hole if the random writes never hit it; only
			// writes at fbn 0 are guaranteed by the read above for holes.
			if sys.VerifyRead(v, inos[v], 0) != nil {
				t.Errorf("vol %d: %v", v, err)
			}
		}
	}
}

// TestClusterDeterminism runs the same two-member workload twice and
// requires identical event counts and superblock bytes — the cluster keeps
// the simulator's same-seed-same-run contract.
func TestClusterDeterminism(t *testing.T) {
	run := func() ([]byte, uint64) {
		sys, err := NewSystem(clusterConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Shutdown()
		inos := make([]uint64, sys.TotalVolumes())
		for v := range inos {
			inos[v] = sys.CreateFileDirect(v, 256)
		}
		done := 0
		for v := range inos {
			v := v
			sys.ClientThread(fmt.Sprintf("det-client-%d", v), func(c *ClientCtx) {
				for op := 0; op < 40; op++ {
					c.Write(v, inos[v], FBN(c.Rand(200)), 1+int(c.Rand(3)))
				}
				done++
			})
		}
		for i := 0; i < 64 && done < len(inos); i++ {
			sys.Run(100 * Millisecond)
		}
		if err := sys.Quiesce(); err != nil {
			t.Fatal(err)
		}
		return sys.SuperblockBytes(), sys.Events()
	}
	sb1, ev1 := run()
	sb2, ev2 := run()
	if ev1 != ev2 {
		t.Fatalf("event counts differ: %d vs %d", ev1, ev2)
	}
	if !bytes.Equal(sb1, sb2) {
		t.Fatal("superblock bytes differ between identical runs")
	}
}

// TestMemberCrashIndependence crashes one member of a two-member cluster
// while the other keeps serving, then recovers it in place: survivors must
// make progress during the outage, acknowledged writes on the crashed
// member must survive via NVRAM replay, and both members must fsck clean.
func TestMemberCrashIndependence(t *testing.T) {
	cfg := clusterConfig(2)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Shutdown()

	vol0 := 0           // member 0
	vol1 := cfg.Volumes // member 1's first global volume
	ino0 := sys.CreateFileDirect(vol0, 256)
	ino1 := sys.CreateFileDirect(vol1, 256)

	// A client on member 1 writes a known set of blocks, then the member
	// crashes mid-life with those writes acknowledged but not all committed.
	acked := 0
	c1 := sys.ClientThread("victim-client", func(c *ClientCtx) {
		for i := 0; c.Alive() && i < 10000; i++ {
			c.Write(vol1, ino1, FBN(i%64), 1)
			acked = i + 1
		}
	})
	// A survivor client on member 0 runs throughout.
	survOps := 0
	sys.ClientThread("survivor-client", func(c *ClientCtx) {
		for i := 0; c.Alive(); i++ {
			c.Write(vol0, ino0, FBN(i%64), 1)
			survOps++
		}
	})
	sys.Run(20 * Millisecond)
	if acked == 0 || survOps == 0 {
		t.Fatalf("workload did not start (acked=%d surv=%d)", acked, survOps)
	}

	sys.CrashMember(1, c1)
	ackedAtCrash := acked
	survAtCrash := survOps

	// Survivor keeps serving while member 1 is down.
	sys.Run(20 * Millisecond)
	if survOps <= survAtCrash {
		t.Fatalf("survivor made no progress during member outage (%d -> %d)", survAtCrash, survOps)
	}
	if acked != ackedAtCrash {
		t.Fatalf("crashed member acked ops while down (%d -> %d)", ackedAtCrash, acked)
	}

	if err := sys.RecoverMember(1); err != nil {
		t.Fatal(err)
	}
	// Let the recovery CP drain the replayed log, survivor still running.
	sys.Run(50 * Millisecond)

	// Every write acknowledged before the crash must be present.
	checked := 0
	for i := 0; i < ackedAtCrash && i < 64; i++ {
		if err := sys.VerifyAgainst(vol1, ino1, FBN(i)); err != nil {
			t.Errorf("acked write lost after member recovery: %v", err)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("nothing verified")
	}

	// Recovered member serves new work.
	done := false
	sys.ClientThread("post-recovery-client", func(c *ClientCtx) {
		c.Write(vol1, ino1, 200, 2)
		done = true
	})
	for i := 0; i < 32 && !done; i++ {
		sys.Run(10 * Millisecond)
	}
	if !done {
		t.Fatal("recovered member did not serve new work")
	}

	if err := sys.Quiesce(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sys.Members(); i++ {
		if rep := sys.FsckMember(i); !rep.OK() {
			t.Errorf("member %d fsck after crash/recovery: %s", i, rep)
			for _, e := range rep.Errors {
				t.Log("  ", e)
			}
		}
	}
}

// TestPlacement checks that the capacity-aware placement policy steers new
// files toward the member with more free space and that placed handles
// route back to the right member.
func TestPlacement(t *testing.T) {
	cfg := clusterConfig(2)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Shutdown()

	// Fill a chunk of member 0 so member 1 has clearly more free space.
	for v := 0; v < cfg.Volumes; v++ {
		ino := sys.CreateFileDirect(v, 8192)
		sys.Prewrite(v, ino, 8192, false)
	}
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}

	vol := sys.PlaceFile(64)
	if got := vol / cfg.Volumes; got != 1 {
		t.Fatalf("placement chose member %d (vol %d), want emptier member 1", got, vol)
	}

	var placedVol int
	var placedIno uint64
	done := false
	sys.ClientThread("placer", func(c *ClientCtx) {
		placedVol, placedIno = c.CreatePlaced(64)
		c.Write(placedVol, placedIno, 0, 2)
		done = true
	})
	for i := 0; i < 32 && !done; i++ {
		sys.Run(10 * Millisecond)
	}
	if !done {
		t.Fatal("placed create did not complete")
	}
	if handleMember(placedIno) != placedVol/cfg.Volumes {
		t.Fatalf("placed handle member %d does not match volume %d", handleMember(placedIno), placedVol)
	}
	if err := sys.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if err := sys.VerifyAgainst(placedVol, placedIno, 0); err != nil {
		t.Fatal(err)
	}
}
