package wafl

// Crash models a whole-node power loss: every simulated thread belonging
// to this System is destroyed (a CP caught mid-flight never finishes),
// every in-flight drive I/O on every member is dropped, and all volatile
// state (buffer caches, dirty lists, allocator state) is abandoned. The
// System is unusable afterwards; call Recover to mount a new System from
// the committed media plus the (nonvolatile) operation logs.
//
// For a partial failure — one member down, survivors serving traffic —
// use CrashMember/RecoverMember instead.
func (sys *System) Crash() {
	sys.stopped = true
	for _, m := range sys.members {
		if m.tuner != nil {
			m.tuner.Stop()
		}
	}
	sys.s.KillFrom(sys.threadMark)
	for _, m := range sys.members {
		m.a.CrashAll()
	}
}

// Recover mounts a fresh System from the crashed system's persistent
// state: each member loads its last committed consistency point from its
// drives and replays its NVRAM log partition (frozen half first, then
// active), leaving the replayed operations dirty in memory for the next
// CP — exactly the paper's §II-C recovery contract. The recovered System
// runs on the same simulated scheduler and drives.
//
// Mount-time and replay work is untimed: recovery latency is not part of
// any measured experiment.
func (sys *System) Recover() (*System, error) {
	ns := &System{cfg: sys.cfg, s: sys.s, threadMark: sys.s.ThreadMark()}
	for _, om := range sys.members {
		m, err := sys.remountMember(om)
		if err != nil {
			return nil, err
		}
		m.sys = ns
		ns.members = append(ns.members, m)
	}
	return ns, nil
}

// CrashMember models a single-member failure: member i's service threads
// are destroyed, its in-flight drive I/O is dropped, and its volatile
// state is abandoned — while every other member keeps serving traffic.
// Clients pinned to the failed member must go down with it (their
// closed-loop sessions die with the node that served them); pass them so
// their threads are killed too. The member is unusable until
// RecoverMember.
func (sys *System) CrashMember(i int, clients ...*ClientCtx) {
	for _, c := range clients {
		sys.s.KillRange(c.threadIdx, c.threadIdx+1)
	}
	sys.members[i].crash()
}

// RecoverMember remounts crashed member i in place from its persistent
// state — committed media plus its NVRAM log partition — while the rest of
// the cluster keeps running. New service threads are spawned on the shared
// scheduler; cumulative statistics carry over. Clients for the recovered
// member must be re-attached by the caller (ClientThread).
func (sys *System) RecoverMember(i int) error {
	m, err := sys.remountMember(sys.members[i])
	if err != nil {
		return err
	}
	sys.members[i] = m
	return nil
}
