package wafl

import (
	"fmt"

	"wafl/internal/aggregate"
	"wafl/internal/core"
	"wafl/internal/cp"
	"wafl/internal/nvlog"
	"wafl/internal/waffinity"
)

// Crash models a power loss: every simulated thread belonging to this
// System is destroyed (a CP caught mid-flight never finishes), every
// in-flight drive I/O is dropped, and all volatile state (buffer caches,
// dirty lists, allocator state) is abandoned. The System is unusable
// afterwards; call Recover to mount a new System from the committed media
// plus the (nonvolatile) operation log.
func (sys *System) Crash() {
	sys.stopped = true
	if sys.tuner != nil {
		sys.tuner.Stop()
	}
	sys.s.KillFrom(sys.threadMark)
	sys.a.CrashAll()
}

// Recover mounts a fresh System from the crashed system's persistent
// state: it loads the last committed consistency point from the drives and
// replays the NVRAM log (frozen half first, then active), leaving the
// replayed operations dirty in memory for the next CP — exactly the
// paper's §II-C recovery contract. The recovered System runs on the same
// simulated scheduler and drives.
//
// Mount-time and replay work is untimed: recovery latency is not part of
// any measured experiment.
func (sys *System) Recover() (*System, error) {
	a, err := aggregate.MountFrom(sys.a)
	if err != nil {
		return nil, fmt.Errorf("wafl: recovery mount failed: %w", err)
	}
	cfg := sys.cfg
	mark := sys.s.ThreadMark()
	// Everything volatile is rebuilt from scratch — including the Waffinity
	// scheduler and its worker threads (the crash destroyed the old ones).
	w := waffinity.New(sys.s, cfg.Cores, cfg.Costs.MsgDispatch)
	h := waffinity.NewHierarchy(w, waffinity.HierarchyConfig{
		Aggregates:    1,
		VolumesPerAgg: cfg.Volumes,
		StripesPerVol: cfg.StripesPerVolume,
		RangesPerVBN:  cfg.RangesPerVBN,
	})
	in := core.NewInfra(w, h, a, cfg.Allocator, cfg.Costs)
	pool := core.NewPool(in, cfg.Allocator, cfg.Costs)
	log := nvlog.New(cfg.NVRAMHalfBytes)
	engine := cp.New(w, h, a, in, pool, log, cfg.Allocator, cfg.Costs)
	ns := &System{cfg: cfg, s: sys.s, w: w, h: h, a: a, in: in, pool: pool, engine: engine, log: log, threadMark: mark}
	if cfg.Allocator.Dynamic {
		ns.tuner = core.StartTuner(pool, cfg.Tuner)
	}
	// Replay the surviving NVRAM records, then re-log them into the new
	// log with their original sequence numbers. Replayed operations were
	// acknowledged to clients, so until a CP commits them they must stay
	// NVRAM-protected (§II-C): without re-logging, a second crash before
	// the next CP would silently lose them. The restored records may
	// exceed one half's capacity (they occupied up to two halves before
	// the crash); the over-full active half stalls new client ops until
	// the recovery CP below drains it.
	records := sys.log.Replay()
	ns.replay(records)
	ns.log.Restore(records)
	if len(records) > 0 {
		// Schedule a recovery CP so the replayed state reaches disk (and
		// frees the log) promptly once the scheduler runs again.
		ns.engine.RequestCP()
	}
	// Fault injection outlives the crash: the drives are the same objects
	// (media persists), so the plan wired into them keeps applying.
	ns.inj = sys.inj
	return ns, nil
}

// replay reapplies logged operations in sequence order against the mounted
// file system.
func (ns *System) replay(records []nvlog.Record) {
	for _, rec := range records {
		v := ns.a.Volume(int(rec.Vol))
		switch rec.Kind {
		case nvlog.OpCreate:
			v.CreateFileAt(rec.Ino, rec.MaxBlocks)
		case nvlog.OpDelete:
			v.DeleteFile(rec.Ino) // idempotent

		case nvlog.OpSnapCreate:
			// Idempotent: a no-op if the snapshot was materialized by a CP
			// that committed before the crash; otherwise it is re-queued and
			// the recovery CP materializes it.
			v.RequestSnapshotAt(rec.Ino)
		case nvlog.OpSnapDelete:
			v.DeleteSnapshot(rec.Ino) // idempotent

		case nvlog.OpWrite:
			f := v.LookupFile(rec.Ino)
			if f == nil {
				panic(fmt.Sprintf("wafl: replay write to unknown ino %d", rec.Ino))
			}
			// Install the block's existing location (if any) so the
			// replayed overwrite frees it at the next CP.
			v.EnsureL0Resident(f, rec.FBN)
			f.WriteBlock(rec.FBN, rec.Data)
			v.MarkDirty(f)
		}
	}
}
