package wafl

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"wafl/internal/obs"
)

// synthPart builds one synthetic per-member window Results with a real
// latency histogram, the way memberDiffs would.
func synthPart(rng *rand.Rand, window Duration, cores CoreUsage) (Results, []int64) {
	n := int(rng.Int63n(400))
	lat := obs.NewHistogram("client.lat")
	samples := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		// Spread over several octaves like real op latencies (us..tens of ms).
		v := int64(1000) << uint(rng.Int63n(14))
		v += rng.Int63n(v)
		lat.Observe(v)
		samples = append(samples, v)
	}
	r := Results{
		Window:     window,
		Ops:        uint64(n),
		Blocks:     uint64(rng.Int63n(5000)),
		CPs:        uint64(rng.Int63n(10)),
		Stalls:     uint64(rng.Int63n(20)),
		StallTime:  Duration(rng.Int63n(int64(Millisecond))),
		Cores:      cores,
		FullStripe: rng.Float64(),
		Cleaners:   int(rng.Int63n(8)),
		lat:        lat,
	}
	if lat.Count > 0 {
		r.LatAvg = Duration(lat.Mean())
		r.LatP50 = Duration(lat.Quantile(0.50))
		r.LatP99 = Duration(lat.Quantile(0.99))
		r.LatMax = Duration(lat.Max)
	}
	return r, samples
}

// TestMergeResultsProperties checks MergeResults' documented contract over
// many randomized part sets: counter totals are exact sums, Window is the
// widest part, rates are recomputed from the merged totals, core usage is
// the Ops-weighted average, FullStripe is Blocks-weighted, and the merged
// latency distribution is bucket-exact (identical to one histogram fed
// every sample).
func TestMergeResultsProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		nParts := 1 + int(rng.Int63n(6))
		parts := make([]Results, nParts)
		var all []int64
		var wantOps, wantBlocks, wantCPs, wantStalls uint64
		var wantStallT, wantWindow Duration
		wantCleaners := 0
		var opsW, coreSum, stripeW, fullSum float64
		for i := range parts {
			window := Duration(1+rng.Int63n(3)) * 100 * Millisecond
			cores := CoreUsage{
				Client:  rng.Float64() * 4,
				Cleaner: rng.Float64() * 4,
				Infra:   rng.Float64() * 2,
			}
			p, samples := synthPart(rng, window, cores)
			parts[i] = p
			all = append(all, samples...)
			wantOps += p.Ops
			wantBlocks += p.Blocks
			wantCPs += p.CPs
			wantStalls += p.Stalls
			wantStallT += p.StallTime
			wantCleaners += p.Cleaners
			if window > wantWindow {
				wantWindow = window
			}
			opsW += float64(p.Ops)
			coreSum += float64(p.Ops) * p.Cores.Cleaner
			stripeW += float64(p.Blocks)
			fullSum += float64(p.Blocks) * p.FullStripe
		}
		m := MergeResults(parts)

		if m.Ops != wantOps || m.Blocks != wantBlocks || m.CPs != wantCPs ||
			m.Stalls != wantStalls || m.StallTime != wantStallT || m.Cleaners != wantCleaners {
			t.Fatalf("trial %d: totals not exact: got %+v", trial, m)
		}
		if m.Window != wantWindow {
			t.Fatalf("trial %d: Window = %v, want max %v", trial, m.Window, wantWindow)
		}
		if wantWindow > 0 {
			wantRate := float64(wantOps) / wantWindow.Seconds()
			if math.Abs(m.OpsPerSec-wantRate) > 1e-9*math.Max(1, wantRate) {
				t.Fatalf("trial %d: OpsPerSec = %v, want %v", trial, m.OpsPerSec, wantRate)
			}
		}
		if opsW > 0 {
			want := coreSum / opsW
			if math.Abs(m.Cores.Cleaner-want) > 1e-9 {
				t.Fatalf("trial %d: Cores.Cleaner = %v, want ops-weighted %v", trial, m.Cores.Cleaner, want)
			}
		}
		if stripeW > 0 {
			want := fullSum / stripeW
			if math.Abs(m.FullStripe-want) > 1e-9 {
				t.Fatalf("trial %d: FullStripe = %v, want blocks-weighted %v", trial, m.FullStripe, want)
			}
		}

		// Merged latency must equal a single histogram over all samples:
		// Merge adds buckets exactly, so quantiles agree bucket-for-bucket.
		ref := obs.NewHistogram("ref")
		for _, v := range all {
			ref.Observe(v)
		}
		for _, q := range []float64{0.50, 0.90, 0.99} {
			if got, want := m.lat.Quantile(q), ref.Quantile(q); got != want {
				t.Fatalf("trial %d: merged q%.2f = %d, reference %d", trial, q, got, want)
			}
		}
		if len(all) > 0 && (Duration(ref.Max) != m.LatMax || Duration(ref.Mean()) != m.LatAvg) {
			t.Fatalf("trial %d: merged max/avg %v/%v, reference %v/%v",
				trial, m.LatMax, m.LatAvg, Duration(ref.Max), Duration(ref.Mean()))
		}
	}
}

// TestMergeResultsEmptyWindows covers the degenerate cases: no parts merge
// to the zero Results; all-idle parts fall back to the unweighted core
// average; an empty part contributes no weight next to a busy one.
func TestMergeResultsEmptyWindows(t *testing.T) {
	if r := MergeResults(nil); r.Ops != 0 || r.Window != 0 || r.Cores.Total() != 0 {
		t.Fatalf("empty merge not zero: %+v", r)
	}

	idleA := Results{Window: Second, Cores: CoreUsage{Client: 2}}
	idleB := Results{Window: Second, Cores: CoreUsage{Client: 4}}
	r := MergeResults([]Results{idleA, idleB})
	if math.Abs(r.Cores.Client-3) > 1e-9 {
		t.Fatalf("idle cluster cores = %v, want unweighted average 3", r.Cores.Client)
	}
	if r.LatAvg != 0 || r.LatP99 != 0 {
		t.Fatalf("idle cluster reports latency: %+v", r)
	}

	busyLat := obs.NewHistogram("client.lat")
	busyLat.Observe(int64(5 * Millisecond))
	busy := Results{Window: Second, Ops: 1, Cores: CoreUsage{Client: 6}, lat: busyLat}
	r = MergeResults([]Results{idleA, busy})
	if math.Abs(r.Cores.Client-6) > 1e-9 {
		t.Fatalf("empty window carried weight: cores = %v, want 6", r.Cores.Client)
	}
	if r.Ops != 1 || r.LatMax != 5*Millisecond {
		t.Fatalf("busy part lost in merge: %+v", r)
	}
}

// TestHistogramQuantileAccuracy is the log-linear histogram's precision
// contract: p50/p90/p99 are within one sub-bucket (1/16 relative error) of
// the exact order statistics, and Max is exact.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := obs.NewHistogram("lat")
	var samples []int64
	for i := 0; i < 20000; i++ {
		// Log-normal-ish latencies across ~5 octaves.
		v := int64(50_000) + rng.Int63n(1_000_000)
		if rng.Int63n(100) < 5 {
			v *= 20 // tail
		}
		h.Observe(v)
		samples = append(samples, v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.50, 0.90, 0.99} {
		idx := int(q*float64(len(samples))) - 1
		if idx < 0 {
			idx = 0
		}
		exact := samples[idx]
		got := h.Quantile(q)
		// Quantile reports the containing bucket's upper bound; the bucket
		// spans at most exact/16, so the error is one sub-bucket.
		if got < exact || float64(got-exact) > float64(exact)/16+1 {
			t.Errorf("q%.2f = %d, exact %d (error %.2f%%, budget 6.25%%)",
				q, got, exact, 100*float64(got-exact)/float64(exact))
		}
	}
	if h.Max != samples[len(samples)-1] {
		t.Errorf("Max = %d, want exact %d", h.Max, samples[len(samples)-1])
	}
	if h.Min != samples[0] {
		t.Errorf("Min = %d, want exact %d", h.Min, samples[0])
	}
}

// TestMeasureMembersMidCP checks window accounting on a live two-member
// cluster when the measurement boundary lands mid-CP: per-member windows
// from MeasureMembers must merge to exactly the cluster-wide deltas over
// the same window, CPs included.
func TestMeasureMembersMidCP(t *testing.T) {
	cfg := clusterConfig(2)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Shutdown()

	inos := make([]uint64, sys.TotalVolumes())
	for v := range inos {
		inos[v] = sys.CreateFileDirect(v, 1<<13)
	}
	for v := range inos {
		v := v
		sys.ClientThread("load", func(c *ClientCtx) {
			for i := 0; c.Alive(); i++ {
				c.Write(v, inos[v], FBN((i*4)%4096), 4)
			}
		})
	}
	// Warm up, then force CPs so the window almost certainly opens and
	// closes with a CP in flight on at least one member.
	sys.Run(20 * Millisecond)
	sys.ForceCP()
	sys.Run(100 * Microsecond)

	cp0 := sys.CPCount()
	var ops0 uint64
	for i := 0; i < sys.Members(); i++ {
		ops0 += sys.MemberInfo(i).Ops
	}
	parts := sys.MeasureMembers(0, 50*Millisecond)
	cp1 := sys.CPCount()
	var ops1 uint64
	for i := 0; i < sys.Members(); i++ {
		ops1 += sys.MemberInfo(i).Ops
	}

	m := MergeResults(parts)
	if m.CPs != cp1-cp0 {
		t.Fatalf("merged CPs = %d, cluster delta %d", m.CPs, cp1-cp0)
	}
	if m.Ops != ops1-ops0 {
		t.Fatalf("merged Ops = %d, cluster delta %d", m.Ops, ops1-ops0)
	}
	if m.Ops == 0 {
		t.Fatal("window saw no ops")
	}
	var sumOps uint64
	for _, p := range parts {
		sumOps += p.Ops
		if p.Window != 50*Millisecond {
			t.Fatalf("part window = %v, want 50ms", p.Window)
		}
	}
	if sumOps != m.Ops {
		t.Fatalf("part sum %d != merged %d", sumOps, m.Ops)
	}
}
