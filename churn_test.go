package wafl

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestChurnWithCrashes is the system-level property test: random mixes of
// creates, writes, and deletes interleaved with crashes and recoveries.
// Invariant: every acknowledged operation survives — written blocks are
// byte-exact, deleted files stay deleted, created files exist — and the
// committed image passes fsck after every quiesce.
func TestChurnWithCrashes(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			churnRun(t, seed)
		})
	}
}

func churnRun(t *testing.T, seed int64) {
	cfg := fullPayloadConfig()
	cfg.Seed = seed
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed * 77))

	// The acknowledged-state model.
	files := make(map[uint64]*churnFile) // ino -> state (only vol-0 files)
	var deleted []uint64

	phase := func(label string) {
		ops := 120 + rng.Intn(120)
		done := false
		sys.stopped = false
		sys.ClientThread(label, func(c *ClientCtx) {
			for k := 0; k < ops && c.Alive(); k++ {
				switch r := rng.Intn(10); {
				case r < 2 || len(files) == 0: // create
					ino := c.Create(0, 512)
					files[ino] = &churnFile{vol: 0, written: make(map[FBN]bool)}
				case r < 8: // write to a random live file
					ino := pickIno(rng, files)
					fbn := FBN(rng.Intn(500))
					n := 1 + rng.Intn(3)
					c.Write(0, ino, fbn, n)
					for b := 0; b < n; b++ {
						files[ino].written[fbn+FBN(b)] = true
					}
				default: // delete
					ino := pickIno(rng, files)
					if c.Delete(0, ino) {
						delete(files, ino)
						deleted = append(deleted, ino)
					}
				}
			}
			done = true
		})
		sys.Run(2 * Second)
		if !done {
			t.Fatalf("phase %s did not finish", label)
		}
	}

	verify := func(where string) {
		t.Helper()
		for ino, st := range files {
			for fbn := range st.written {
				if err := sys.VerifyAgainst(st.vol, ino, fbn); err != nil {
					t.Fatalf("%s: %v", where, err)
				}
			}
		}
		for _, ino := range deleted {
			if _, recreated := files[ino]; recreated {
				continue
			}
			if sys.VerifyRead(0, ino, 0) != nil {
				t.Fatalf("%s: deleted ino %d readable", where, ino)
			}
		}
	}

	for round := 0; round < 4; round++ {
		phase(fmt.Sprintf("churn-%d", round))
		verify("after phase")
		switch round % 3 {
		case 0: // crash mid-flight and recover
			sys.Crash()
			rec, err := sys.Recover()
			if err != nil {
				t.Fatal(err)
			}
			sys = rec
			verify("after recovery")
		case 1: // clean flush + fsck
			if err := sys.Flush(); err != nil {
				t.Fatal(err)
			}
			rep := sys.Fsck()
			if !rep.OK() {
				t.Fatalf("fsck: %s %v", rep, rep.Errors)
			}
		}
	}
	if err := sys.Quiesce(); err != nil {
		t.Fatal(err)
	}
	rep := sys.Fsck()
	if !rep.OK() {
		t.Fatalf("final fsck: %s %v", rep, rep.Errors)
	}
	if int(rep.Files) != len(files) {
		if churnDebugHook != nil {
			churnDebugHook(sys, files, deleted)
		}
		t.Fatalf("fsck sees %d files, model has %d", rep.Files, len(files))
	}
	verify("final")
}

// churnDebugHook lets a debug test inspect model-vs-disk divergence.
var churnDebugHook func(*System, map[uint64]*churnFile, []uint64)

// churnFile is the model's view of one acknowledged file.
type churnFile struct {
	vol     int
	written map[FBN]bool
}

// pickIno returns a deterministic random live inode.
func pickIno(rng *rand.Rand, files map[uint64]*churnFile) uint64 {
	keys := make([]uint64, 0, len(files))
	for k := range files {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys[rng.Intn(len(keys))]
}
