// Command waflfs demonstrates the file system end to end: it formats a
// simulated aggregate, writes files through the client path, takes
// consistency points, verifies the committed image with fsck, then crashes
// the system mid-flight and recovers it from the superblock plus NVRAM
// replay, proving no acknowledged write was lost.
//
// Usage:
//
//	waflfs            # run the full demo
//	waflfs -files 8 -blocks 2000
package main

import (
	"flag"
	"fmt"
	"os"

	"wafl"
)

func main() {
	files := flag.Int("files", 4, "files to create")
	blocks := flag.Int("blocks", 1200, "blocks written per file")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	cfg := wafl.DefaultConfig()
	cfg.Seed = *seed
	cfg.PayloadBytes = 4096 // full content verification
	sys, err := wafl.NewSystem(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("formatted: %d cores, %d RAID groups x %d data drives, %d volumes\n",
		cfg.Cores, cfg.RAIDGroups, cfg.DataDrives, cfg.Volumes)

	// Phase 1: write files through the client path.
	inos := make([]uint64, *files)
	written := make([]int, *files)
	for i := range inos {
		vol := i % cfg.Volumes
		inos[i] = sys.CreateFileDirect(vol, uint64(*blocks)*2)
		i := i
		sys.ClientThread(fmt.Sprintf("writer-%d", i), func(c *wafl.ClientCtx) {
			for fbn := 0; fbn < *blocks && c.Alive(); fbn += 8 {
				c.Write(vol, inos[i], wafl.FBN(fbn), 8)
				written[i] = fbn + 8
			}
		})
	}
	sys.Run(2 * wafl.Second)
	fmt.Printf("wrote %d files x ~%d blocks; CPs so far: %d\n", *files, *blocks, sys.CPCount())

	// Phase 2: flush and verify the committed image.
	if err := sys.Flush(); err != nil {
		fail(err)
	}
	rep := sys.Fsck()
	fmt.Printf("%s\n", rep)
	if !rep.OK() {
		for _, e := range rep.Errors {
			fmt.Fprintln(os.Stderr, "fsck:", e)
		}
		fail(fmt.Errorf("fsck failed"))
	}

	// Phase 3: more writes, then a crash with operations still in NVRAM.
	fmt.Println("writing more, then crashing mid-flight...")
	for i := range inos {
		vol := i % cfg.Volumes
		i := i
		sys.ClientThread(fmt.Sprintf("rewriter-%d", i), func(c *wafl.ClientCtx) {
			for fbn := 0; fbn < *blocks && c.Alive(); fbn += 4 {
				c.Write(vol, inos[i], wafl.FBN(fbn), 4)
			}
		})
	}
	sys.Run(40 * wafl.Millisecond)
	sys.Crash()
	fmt.Printf("CRASH at t=%v with %d completed CPs\n", sys.Now(), sys.CPCount())

	// Phase 4: recover and verify every acknowledged write.
	rec, err := sys.Recover()
	if err != nil {
		fail(err)
	}
	fmt.Printf("recovered: mounted CP %d, NVRAM replayed\n", rec.CPCount())
	bad := 0
	checked := 0
	for i := range inos {
		vol := i % cfg.Volumes
		for fbn := 0; fbn < written[i]; fbn++ {
			if err := rec.VerifyAgainst(vol, inos[i], wafl.FBN(fbn)); err != nil {
				bad++
				if bad < 5 {
					fmt.Fprintln(os.Stderr, "verify:", err)
				}
			}
			checked++
		}
	}
	fmt.Printf("verified %d blocks after recovery: %d mismatches\n", checked, bad)
	if err := rec.Quiesce(); err != nil {
		fail(err)
	}
	rep = rec.Fsck()
	fmt.Printf("post-recovery %s\n", rep)
	if bad > 0 || !rep.OK() {
		fail(fmt.Errorf("demo failed"))
	}
	fmt.Println("OK: all acknowledged writes survived the crash")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "waflfs:", err)
	os.Exit(1)
}
