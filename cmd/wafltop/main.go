// Command wafltop is the introspection tool: it runs a short workload and
// renders the Hierarchical Waffinity affinity tree (paper Fig 1) with
// per-affinity message counts, the White Alligator allocator counters
// (bucket/tetris/stage lifecycle, Fig 2-3), the consistency-point phase
// breakdown, and the per-component core usage.
//
// Usage:
//
//	wafltop                  # run a mixed workload for 200ms and report
//	wafltop -tree            # affinity tree only
//	wafltop -run 500ms -workload random
//	wafltop -trace out.json  # also dump a Chrome/Perfetto trace timeline
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wafl"
	"wafl/workload"
)

func main() {
	treeOnly := flag.Bool("tree", false, "print the affinity hierarchy only")
	runFor := flag.Duration("run", 200*time.Millisecond, "simulated run length")
	wl := flag.String("workload", "seq", "workload: seq | random | oltp | nfs | snapchurn | clonefleet")
	cleaners := flag.Int("cleaners", 4, "cleaner threads")
	members := flag.Int("members", 1, "cluster width (FlexGroup constituents)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON timeline to this file")
	traceEvents := flag.Int("trace-events", 0, "trace ring-buffer capacity in events (0 = default)")
	flag.Parse()

	cfg := wafl.DefaultConfig()
	cfg.Allocator.InitialCleaners = *cleaners
	cfg.Allocator.MaxCleaners = *cleaners
	if *members > 1 {
		cfg.Members = *members
	}
	// The clone fleet brings its own volume shape: dense parents plus the
	// clone slots the fan-out binds into.
	var fleet workload.CloneFleet
	if *wl == "clonefleet" {
		fleet = workload.DefaultCloneFleet()
		cfg.Volumes = fleet.Volumes
		cfg.CloneSlots = fleet.Slots()
		cfg.VolumeBlocks = 1 << 18
		cfg.DriveBlocks = 131072
	}
	if *traceOut != "" {
		cfg.Trace = true
		cfg.TraceEvents = *traceEvents
	}
	sys, err := wafl.NewSystem(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wafltop:", err)
		os.Exit(1)
	}
	if *treeOnly {
		fmt.Print(sys.Hierarchy())
		return
	}

	// Scale the client spread with the cluster: the stock workloads stripe
	// round-robin over their Volumes setting, so widen it to the global
	// volume space (and grow the client count per member).
	n := sys.Members()
	switch *wl {
	case "random":
		w := workload.DefaultRandWrite()
		w.Clients *= n
		w.Volumes = sys.TotalVolumes()
		w.Attach(sys)
	case "oltp":
		w := workload.DefaultOLTP()
		w.Clients *= n
		w.Volumes = sys.TotalVolumes()
		w.Attach(sys)
	case "nfs":
		w := workload.DefaultNFSMix()
		w.Clients *= n
		w.Volumes = sys.TotalVolumes()
		w.Attach(sys)
	case "snapchurn":
		w := workload.DefaultSnapChurn()
		w.Clients *= n
		w.Volumes = sys.TotalVolumes()
		w.Attach(sys)
	case "clonefleet":
		// Brings its own clients/volumes; prefilled and cloned in Attach.
		fleet.Attach(sys)
	default:
		w := workload.DefaultSeqWrite()
		w.Clients *= n
		w.Volumes = sys.TotalVolumes()
		w.Attach(sys)
	}
	parts := sys.MeasureMembers(50*wafl.Millisecond, wafl.Duration(runFor.Nanoseconds()))
	res := wafl.MergeResults(parts)

	fmt.Println("=== results ===")
	fmt.Println(res)
	fmt.Println()
	if sys.Members() > 1 {
		fmt.Println("=== cluster members (measurement window + point-in-time state) ===")
		fmt.Printf("%-6s  %10s  %6s  %10s  %12s  %8s  %9s  %6s  %9s\n",
			"member", "ops/s", "cps", "nvlog-fill", "free-blocks", "cleaners", "reserved", "shed", "bc-hit%")
		for i := 0; i < sys.Members(); i++ {
			mi := sys.MemberInfo(i)
			bcHit := 0.0
			if lookups := mi.BCacheHits + mi.BCacheMisses; lookups > 0 {
				bcHit = 100 * float64(mi.BCacheHits) / float64(lookups)
			}
			fmt.Printf("%-6d  %10.0f  %6d  %9.0f%%  %12d  %8d  %9d  %6d  %8.1f%%\n",
				mi.ID, parts[i].OpsPerSec, parts[i].CPs, 100*mi.NVLogFullness, mi.FreeBlocks, mi.Cleaners,
				mi.Reserved, mi.ShedOps, bcHit)
		}
		fmt.Println()
	}
	if shed, delay := sys.AdmissionStats(); shed > 0 || delay > 0 {
		fmt.Printf("=== admission control ===\nshed %d bulk ops, %.1fms total delay applied\n\n",
			shed, delay.Millis())
	}
	if bc := sys.BCacheStats(); bc.Hits+bc.Misses > 0 {
		fmt.Printf("=== buffer cache ===\n%d hits / %d misses (%.1f%% hit rate), %d evictions, %d resident\n\n",
			bc.Hits, bc.Misses, 100*float64(bc.Hits)/float64(bc.Hits+bc.Misses), bc.Evictions, bc.Resident)
	}
	fmt.Println("=== allocator (buckets / tetris / stages; Fig 2-3 lifecycle) ===")
	fmt.Println(sys.InfraStats())
	fmt.Println()
	fmt.Println("=== consistency points ===")
	fmt.Println(sys.CPReport())
	fmt.Println()
	fmt.Println("=== CP phase durations (always on; no trace needed) ===")
	fmt.Println(sys.CPPhaseReport())
	fmt.Println()
	fmt.Println("=== volumes (snapshots & free-space split) ===")
	created, deleted, reclaimed := sys.SnapStats()
	fmt.Printf("%-4s  %6s  %10s  %10s  %10s\n", "vol", "snaps", "active", "snap-held", "free")
	for v := 0; v < sys.TotalVolumes(); v++ {
		fs := sys.FreeSpaceBreakdown(v)
		fmt.Printf("%-4d  %6d  %10d  %10d  %10d\n",
			v, len(sys.SnapshotIDs(v)), fs.Active, fs.SnapOnly, fs.Free)
	}
	fmt.Printf("snapshot ops: %d created, %d deleted, %d blocks reclaimed\n", created, deleted, reclaimed)
	fmt.Println()
	if cs := sys.CloneStats(); cs.Binds > 0 || cs.Restores > 0 || cs.Bound > 0 {
		fmt.Println("=== clones & restores ===")
		fmt.Printf("%-6s  %-6s  %-6s  %10s  %12s\n", "clone", "parent", "snap", "base-held", "split-pend")
		for _, cv := range sys.CloneVolumes() {
			fs := sys.FreeSpaceBreakdown(cv)
			pv, ps, _ := sys.CloneParent(cv)
			fmt.Printf("%-6d  %-6d  %-6d  %10d  %12d\n", cv, pv, ps, fs.CloneHeld, fs.SplitPending)
		}
		fmt.Printf("clone ops: %d bound (%d live, %d splitting), %d splits done (%d blocks copied)\n",
			cs.Binds, cs.Bound, cs.Splitting, cs.SplitsDone, cs.SplitCopied)
		fmt.Printf("restore ops: %d restores, %d blocks freed, %d metadata blocks rewritten\n",
			cs.Restores, cs.RestoreFreed, cs.RestoreBlocks)
		fmt.Println()
	}
	fmt.Println("=== affinity hierarchy (Fig 1), messages executed ===")
	fmt.Print(sys.Hierarchy())

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wafltop:", err)
			os.Exit(1)
		}
		if err := sys.WriteTrace(f); err != nil {
			fmt.Fprintln(os.Stderr, "wafltop:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Println()
		fmt.Println("=== trace latency histograms ===")
		fmt.Print(sys.TraceReport())
		tr := sys.Tracer()
		fmt.Printf("\nwrote %d trace events to %s (%d dropped by ring wrap); open at ui.perfetto.dev\n",
			tr.Len(), *traceOut, tr.Dropped())
	}
}
