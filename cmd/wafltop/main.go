// Command wafltop is the introspection tool: it runs a short workload and
// renders the Hierarchical Waffinity affinity tree (paper Fig 1) with
// per-affinity message counts, the White Alligator allocator counters
// (bucket/tetris/stage lifecycle, Fig 2-3), the consistency-point phase
// breakdown, and the per-component core usage.
//
// Usage:
//
//	wafltop                  # run a mixed workload for 200ms and report
//	wafltop -tree            # affinity tree only
//	wafltop -run 500ms -workload random
//	wafltop -trace out.json  # also dump a Chrome/Perfetto trace timeline
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wafl"
	"wafl/workload"
)

func main() {
	treeOnly := flag.Bool("tree", false, "print the affinity hierarchy only")
	runFor := flag.Duration("run", 200*time.Millisecond, "simulated run length")
	wl := flag.String("workload", "seq", "workload: seq | random | oltp | nfs | snapchurn")
	cleaners := flag.Int("cleaners", 4, "cleaner threads")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON timeline to this file")
	traceEvents := flag.Int("trace-events", 0, "trace ring-buffer capacity in events (0 = default)")
	flag.Parse()

	cfg := wafl.DefaultConfig()
	cfg.Allocator.InitialCleaners = *cleaners
	cfg.Allocator.MaxCleaners = *cleaners
	if *traceOut != "" {
		cfg.Trace = true
		cfg.TraceEvents = *traceEvents
	}
	sys, err := wafl.NewSystem(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wafltop:", err)
		os.Exit(1)
	}
	if *treeOnly {
		fmt.Print(sys.Hierarchy())
		return
	}

	switch *wl {
	case "random":
		workload.DefaultRandWrite().Attach(sys)
	case "oltp":
		workload.DefaultOLTP().Attach(sys)
	case "nfs":
		workload.DefaultNFSMix().Attach(sys)
	case "snapchurn":
		workload.DefaultSnapChurn().Attach(sys)
	default:
		workload.DefaultSeqWrite().Attach(sys)
	}
	res := sys.Measure(50*wafl.Millisecond, wafl.Duration(runFor.Nanoseconds()))

	fmt.Println("=== results ===")
	fmt.Println(res)
	fmt.Println()
	fmt.Println("=== allocator (buckets / tetris / stages; Fig 2-3 lifecycle) ===")
	fmt.Println(sys.InfraStats())
	fmt.Println()
	fmt.Println("=== consistency points ===")
	fmt.Println(sys.CPReport())
	fmt.Println()
	fmt.Println("=== CP phase durations (always on; no trace needed) ===")
	fmt.Println(sys.CPPhaseReport())
	fmt.Println()
	fmt.Println("=== volumes (snapshots & free-space split) ===")
	created, deleted, reclaimed := sys.SnapStats()
	fmt.Printf("%-4s  %6s  %10s  %10s  %10s\n", "vol", "snaps", "active", "snap-held", "free")
	for v := 0; v < cfg.Volumes; v++ {
		fs := sys.FreeSpaceBreakdown(v)
		fmt.Printf("%-4d  %6d  %10d  %10d  %10d\n",
			v, len(sys.SnapshotIDs(v)), fs.Active, fs.SnapOnly, fs.Free)
	}
	fmt.Printf("snapshot ops: %d created, %d deleted, %d blocks reclaimed\n", created, deleted, reclaimed)
	fmt.Println()
	fmt.Println("=== affinity hierarchy (Fig 1), messages executed ===")
	fmt.Print(sys.Hierarchy())

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wafltop:", err)
			os.Exit(1)
		}
		if err := sys.WriteTrace(f); err != nil {
			fmt.Fprintln(os.Stderr, "wafltop:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Println()
		fmt.Println("=== trace latency histograms ===")
		fmt.Print(sys.TraceReport())
		tr := sys.Tracer()
		fmt.Printf("\nwrote %d trace events to %s (%d dropped by ring wrap); open at ui.perfetto.dev\n",
			tr.Len(), *traceOut, tr.Dropped())
	}
}
