// Command waflbench regenerates the paper's evaluation results (§V): every
// figure and the §V-C batching table, printed as text tables. Absolute
// numbers are simulator units; the shapes are the reproduction target (see
// EXPERIMENTS.md).
//
// Usage:
//
//	waflbench                 # run everything
//	waflbench -exp fig4       # one experiment: fig4..fig9, batch, ablations
//	waflbench -window 400ms   # measurement window
//	waflbench -exp fig4 -trace fig4   # dump fig4-NNN.json Perfetto timelines
//	waflbench -crashsweep     # crash-schedule fault-injection sweep (§II-C)
//	waflbench -clustersweep   # independent member-crash sweep on a cluster
//	waflbench -exp agedvol -benchjson BENCH.json   # machine-readable results
//	waflbench -exp flexgroup -members 4 -benchjson BENCH.json  # cluster scaling
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"wafl"
	"wafl/harness"
	"wafl/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig4 fig5 fig6 fig7 fig8 fig9 batch ablations snapchurn agedvol clonefleet parallelcp flexgroup overload all")
	benchjson := flag.String("benchjson", "", "write machine-readable results (ops/sec, fill words, walloc cores, get waits) to this JSON file")
	window := flag.Duration("window", 400*time.Millisecond, "measurement window (simulated)")
	warmup := flag.Duration("warmup", 200*time.Millisecond, "warmup (simulated)")
	cleaners := flag.Int("cleaners", 4, "parallel cleaner-thread count for the permutation experiments")
	members := flag.Int("members", 1, "cluster width: flexgroup sweeps 1..members (doubling); other experiments run at this width")
	trace := flag.String("trace", "", "dump one Chrome trace JSON per measurement as <prefix>-NNN.json")
	traceEvents := flag.Int("trace-events", 0, "trace ring-buffer capacity in events (0 = default)")
	crashsweep := flag.Bool("crashsweep", false, "run the crash-schedule fault-injection sweep instead of the figures")
	crashPoints := flag.Int("crashpoints", 8, "crashsweep: event-index crash points per seed")
	crashSeeds := flag.String("crashseeds", "1,2", "crashsweep: comma-separated workload seeds")
	crashPhases := flag.Int("crashphases", 9, "crashsweep: CP phase-boundary crash points (0 = off)")
	clustersweep := flag.Bool("clustersweep", false, "run the independent member-crash sweep instead of the figures")
	clonecheck := flag.Bool("clonecheck", false, "run the clone/restore crash sweep (clone create, split, SnapRestore crashed at CP phase boundaries) instead of the figures")
	clonePoints := flag.Int("clonepoints", 18, "clonecheck: CP phase-boundary crash points inside the clone-ops window")
	overloadcheck := flag.Bool("overloadcheck", false, "run the admission-control SLO check instead of the figures (exit 1 on violation)")
	flag.Parse()

	if *overloadcheck {
		rc := harness.DefaultRun()
		start := time.Now()
		if err := harness.OverloadCheck(rc); err != nil {
			fmt.Fprintf(os.Stderr, "overloadcheck: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("overloadcheck: admission SLO holds (%.1fs host time)\n", time.Since(start).Seconds())
		return
	}

	if *crashsweep {
		runCrashSweep(*crashPoints, *crashSeeds, *crashPhases)
		return
	}
	if *clustersweep {
		runClusterSweep(*members, *crashPoints, *crashSeeds)
		return
	}
	if *clonecheck {
		runCloneCheck(*clonePoints)
		return
	}

	if *trace != "" {
		harness.EnableTracing(*trace, *traceEvents)
	}

	rc := harness.DefaultRun()
	rc.Window = wafl.Duration(window.Nanoseconds())
	rc.Warmup = wafl.Duration(warmup.Nanoseconds())
	if *members > 1 {
		rc.Base.Members = *members
	}

	var benchResults []harness.BenchResult

	run := func(name string, fn func() (harness.Table, error)) {
		if *exp != "all" && !strings.EqualFold(*exp, name) {
			return
		}
		start := time.Now()
		t, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(t.String())
		fmt.Printf("(%s took %.1fs host time)\n\n", name, time.Since(start).Seconds())
	}

	if *exp == "inspect" {
		inspect(rc, *cleaners)
		return
	}

	run("fig4", func() (harness.Table, error) {
		t, _, err := harness.Fig4(rc, *cleaners)
		return t, err
	})
	run("fig5", func() (harness.Table, error) {
		t, _, err := harness.Fig5(rc, 6)
		return t, err
	})
	run("fig6", func() (harness.Table, error) {
		t, _, err := harness.Fig6(rc, *cleaners)
		return t, err
	})
	run("fig7", func() (harness.Table, error) {
		t, _, err := harness.Fig7(rc, *cleaners)
		return t, err
	})
	run("fig8", func() (harness.Table, error) {
		t, _, err := harness.Fig8(rc)
		return t, err
	})
	run("fig9", func() (harness.Table, error) {
		t, _, err := harness.Fig9(rc)
		return t, err
	})
	run("batch", func() (harness.Table, error) {
		t, _, err := harness.BatchedCleaning(rc)
		return t, err
	})
	run("ablations", func() (harness.Table, error) {
		t, err := harness.Ablations(rc)
		return t, err
	})
	run("snapchurn", func() (harness.Table, error) {
		t, _, err := harness.SnapshotChurn(rc)
		return t, err
	})
	run("agedvol", func() (harness.Table, error) {
		t, res, err := harness.AgedVolume(rc)
		benchResults = append(benchResults, res...)
		return t, err
	})
	run("clonefleet", func() (harness.Table, error) {
		t, res, err := harness.CloneFleet(rc)
		benchResults = append(benchResults, res...)
		return t, err
	})
	run("parallelcp", func() (harness.Table, error) {
		t, res, err := harness.ParallelCP(rc)
		benchResults = append(benchResults, res...)
		return t, err
	})
	run("overload", func() (harness.Table, error) {
		t, points, err := harness.Overload(rc)
		benchResults = append(benchResults, harness.OverloadBench(points, rc.Window)...)
		return t, err
	})
	run("flexgroup", func() (harness.Table, error) {
		fc := harness.DefaultFlexgroup()
		fc.Base = harness.DefaultRun().Base // widths come from the sweep, not -members
		fc.MemberCounts = nil
		for n := 1; n <= *members; n *= 2 {
			fc.MemberCounts = append(fc.MemberCounts, n)
		}
		if len(fc.MemberCounts) < 2 {
			fc.MemberCounts = []int{1, 2, 4}
		}
		t, _, res, err := harness.Flexgroup(fc)
		benchResults = append(benchResults, res...)
		return t, err
	})

	if *benchjson != "" {
		if len(benchResults) == 0 {
			fmt.Fprintf(os.Stderr, "-benchjson: no experiments produced machine-readable results (try -exp agedvol)\n")
			os.Exit(1)
		}
		if err := harness.WriteBenchJSON(*benchjson, benchResults); err != nil {
			fmt.Fprintf(os.Stderr, "-benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d benchmark results to %s\n", len(benchResults), *benchjson)
	}
}

// runCrashSweep executes the crash-schedule sweep and exits nonzero if any
// crash point fails verification.
func runCrashSweep(points int, seeds string, phases int) {
	cfg := harness.DefaultCrashSweep()
	cfg.Points = points
	cfg.Phases = phases
	cfg.Seeds = nil
	for _, s := range strings.Split(seeds, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		var seed int64
		if _, err := fmt.Sscanf(s, "%d", &seed); err != nil {
			fmt.Fprintf(os.Stderr, "crashsweep: bad seed %q: %v\n", s, err)
			os.Exit(2)
		}
		cfg.Seeds = append(cfg.Seeds, seed)
	}
	if len(cfg.Seeds) == 0 {
		fmt.Fprintln(os.Stderr, "crashsweep: no seeds")
		os.Exit(2)
	}
	start := time.Now()
	tab, res, err := harness.CrashSweep(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crashsweep: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(tab.String())
	fmt.Printf("(crashsweep took %.1fs host time)\n", time.Since(start).Seconds())
	if !res.OK() {
		os.Exit(1)
	}
}

// runCloneCheck executes only the clone-ops crash schedule — the scripted
// snapshot → clone create → divergence → split → SnapRestore window crashed
// at consecutive CP phase boundaries — and exits nonzero on any failure.
func runCloneCheck(points int) {
	cfg := harness.DefaultCrashSweep()
	cfg.Points = 0
	cfg.Phases = 0
	cfg.Overload = false
	cfg.CloneOps = true
	cfg.ClonePoints = points
	cfg.Seeds = []int64{1}
	start := time.Now()
	tab, res, err := harness.CrashSweep(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clonecheck: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(tab.String())
	fmt.Printf("(clonecheck took %.1fs host time)\n", time.Since(start).Seconds())
	if !res.OK() {
		os.Exit(1)
	}
}

// runClusterSweep executes the independent member-crash sweep and exits
// nonzero if any crash point fails verification.
func runClusterSweep(members, points int, seeds string) {
	cfg := harness.DefaultClusterSweep()
	if members > 1 {
		cfg.Base.Members = members
	}
	cfg.Points = points
	cfg.Seeds = nil
	for _, s := range strings.Split(seeds, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		var seed int64
		if _, err := fmt.Sscanf(s, "%d", &seed); err != nil {
			fmt.Fprintf(os.Stderr, "clustersweep: bad seed %q: %v\n", s, err)
			os.Exit(2)
		}
		cfg.Seeds = append(cfg.Seeds, seed)
	}
	if len(cfg.Seeds) == 0 {
		fmt.Fprintln(os.Stderr, "clustersweep: no seeds")
		os.Exit(2)
	}
	start := time.Now()
	tab, res, err := harness.ClusterSweep(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clustersweep: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(tab.String())
	fmt.Printf("(clustersweep took %.1fs host time)\n", time.Since(start).Seconds())
	if !res.OK() {
		os.Exit(1)
	}
}

// inspect runs one workload/config pair and dumps detailed internals —
// the calibration and debugging view.
func inspect(rc harness.RunConfig, cleaners int) {
	for _, mode := range []struct {
		name     string
		infra    bool
		cleaners int
	}{
		{"baseline", false, 1},
		{"wa", true, cleaners},
	} {
		cfg := rc.Base
		cfg.Allocator.InfraParallel = mode.infra
		cfg.Allocator.InitialCleaners = mode.cleaners
		cfg.Allocator.MaxCleaners = mode.cleaners
		sys, err := wafl.NewSystem(cfg)
		if err != nil {
			panic(err)
		}
		w := workload.DefaultSeqWrite()
		w.Attach(sys)
		res := sys.Measure(rc.Warmup, rc.Window)
		fmt.Printf("[%s] %s\n", mode.name, res)
		fmt.Printf("[%s] %s\n", mode.name, sys.InfraStats())
		fmt.Printf("[%s] cp: %s\n\n", mode.name, sys.CPReport())
	}
}
