package wafl

import (
	"bytes"
	"fmt"
	"testing"

	"wafl/internal/block"
)

// expectSnapBlock checks one block of a snapshot's frozen image against the
// expected tagged payload (or a hole when tag < 0).
func expectSnapBlock(t *testing.T, sys *System, snapID, ino uint64, fbn FBN, tag int, label string) {
	t.Helper()
	data, ok := sys.SnapVerifyRead(0, snapID, ino, fbn)
	if !ok {
		t.Fatalf("%s: snap %d has no image of ino %d", label, snapID, ino)
	}
	if tag < 0 {
		if data != nil {
			t.Fatalf("%s: snap %d fbn %d: want hole, got data", label, snapID, fbn)
		}
		return
	}
	want := sys.payload(ino, fbn, byte(tag))
	if data == nil {
		t.Fatalf("%s: snap %d fbn %d: want tag %q, got hole", label, snapID, fbn, byte(tag))
	}
	if !bytes.Equal(data[:len(want)], want) {
		t.Fatalf("%s: snap %d fbn %d: frozen content mutated (want tag %q)", label, snapID, fbn, byte(tag))
	}
}

// TestSnapshotEndToEnd drives the full snapshot lifecycle under overwrite
// churn: two snapshots freeze distinct images (tags A and B) while the live
// file system moves on (tag C); the free-space breakdown exposes the
// snapshot-held blocks; fsck stays clean with the snapshots present; and
// deleting both returns every exclusively-held block to the free pool.
// The allocator invariant (never hand out a summary-held VVBN) is enforced
// throughout by the panic in commitVBucketBody.
func TestSnapshotEndToEnd(t *testing.T) {
	sys, ino := newCrashSystem(t, crashConfig())
	const n = 64
	var snap1, snap2 uint64
	sys.ClientThread("snapper", func(c *ClientCtx) {
		for fbn := FBN(0); fbn < n; fbn++ {
			c.WriteTag(0, ino, fbn, 1, 'A')
		}
		snap1 = c.SnapCreate(0)
		// Overwrite the first half and extend past the frozen image.
		for fbn := FBN(0); fbn < n/2; fbn++ {
			c.WriteTag(0, ino, fbn, 1, 'B')
		}
		for fbn := FBN(n); fbn < n+16; fbn++ {
			c.WriteTag(0, ino, fbn, 1, 'B')
		}
		snap2 = c.SnapCreate(0)
		for fbn := FBN(0); fbn < n+16; fbn++ {
			c.WriteTag(0, ino, fbn, 1, 'C')
		}
	})
	sys.Run(10 * Second)
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	if snap1 == 0 || snap2 == 0 {
		t.Fatal("snapshots were not created")
	}

	// (a) Frozen content under churn: snap1 is all-A with holes past n;
	// snap2 sees the B overwrites and the extension; the live file is all-C.
	for fbn := FBN(0); fbn < n; fbn++ {
		expectSnapBlock(t, sys, snap1, ino, fbn, 'A', "snap1")
	}
	for fbn := FBN(n); fbn < n+16; fbn++ {
		expectSnapBlock(t, sys, snap1, ino, fbn, -1, "snap1")
	}
	for fbn := FBN(0); fbn < n/2; fbn++ {
		expectSnapBlock(t, sys, snap2, ino, fbn, 'B', "snap2")
	}
	for fbn := FBN(n / 2); fbn < FBN(n); fbn++ {
		expectSnapBlock(t, sys, snap2, ino, fbn, 'A', "snap2")
	}
	for fbn := FBN(n); fbn < n+16; fbn++ {
		expectSnapBlock(t, sys, snap2, ino, fbn, 'B', "snap2")
	}
	for fbn := FBN(0); fbn < n+16; fbn++ {
		want := sys.payload(ino, fbn, 'C')
		got := sys.VerifyRead(0, ino, fbn)
		if got == nil || !bytes.Equal(got[:len(want)], want) {
			t.Fatalf("live fbn %d: want tag C content", fbn)
		}
	}

	// (b) Snapshot-held blocks are visible in the breakdown and excluded
	// from the free pool (free = !active && !summary).
	fsWith := sys.FreeSpaceBreakdown(0)
	if fsWith.SnapOnly == 0 {
		t.Fatal("no snapshot-held blocks after overwriting under two snapshots")
	}
	if fsWith.Active+fsWith.SnapOnly+fsWith.Free != fsWith.Total {
		t.Fatalf("breakdown does not partition the VVBN space: %+v", fsWith)
	}

	// (d) fsck clean with snapshots present: frozen trees are reachable,
	// snapshot-held blocks are neither leaked nor double-referenced.
	if rep := sys.Fsck(); !rep.OK() || rep.Snapshots != 2 {
		t.Fatalf("fsck with snapshots: %s", rep)
	}

	// (c) Deleting the last snapshot holding a block returns it to the free
	// pool, observable in the breakdown.
	sys.ClientThread("deleter", func(c *ClientCtx) {
		c.SnapDelete(0, snap1)
		c.SnapDelete(0, snap2)
	})
	sys.Run(2 * Second)
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	fsAfter := sys.FreeSpaceBreakdown(0)
	if fsAfter.SnapOnly != 0 {
		t.Fatalf("blocks still snapshot-held after deleting every snapshot: %+v", fsAfter)
	}
	if fsAfter.Free <= fsWith.Free {
		t.Fatalf("deleting the snapshots freed nothing: %+v -> %+v", fsWith, fsAfter)
	}
	if rep := sys.Fsck(); !rep.OK() || rep.Snapshots != 0 {
		t.Fatalf("fsck after snapshot deletes: %s", rep)
	}
}

// TestSnapshotCrashAtEveryCPPhase runs a tagged-write workload with snapshot
// creates and deletes mixed in, then crashes at each CP phase boundary once
// snapshots exist. After recovery every acknowledged write, every
// acknowledged snapshot image (content and holes), and every acknowledged
// delete must be intact — and fsck must be clean before and after quiescing.
func TestSnapshotCrashAtEveryCPPhase(t *testing.T) {
	for j, want := range cpBoundaries {
		j, want := j+1, want
		t.Run(fmt.Sprintf("%02d-%s", j, want), func(t *testing.T) {
			sys, ino := newCrashSystem(t, crashConfig())
			written := map[FBN]byte{}
			type ackedSnap struct {
				id    uint64
				image map[FBN]byte // written-set at the acknowledged create
			}
			var (
				acked     []ackedSnap
				ackedDels []uint64
				pendFBN   = FBN(^uint64(0)) // in-flight write at crash time
				pendTag   byte
				pendDel   = uint64(0) // in-flight snapshot delete at crash time
			)
			tags := []byte{'A', 'B', 'C', 'D'}
			sys.ClientThread("snapwriter", func(c *ClientCtx) {
				for i := 0; c.Alive() && i < 2000; i++ {
					if i%150 == 140 {
						if i%300 == 140 && len(acked) > len(ackedDels) {
							victim := acked[len(ackedDels)].id
							pendDel = victim
							if c.SnapDelete(0, victim) {
								ackedDels = append(ackedDels, victim)
							}
							pendDel = 0
						} else {
							id := c.SnapCreate(0)
							img := make(map[FBN]byte, len(written))
							for k, v := range written {
								img[k] = v
							}
							acked = append(acked, ackedSnap{id, img})
						}
						continue
					}
					fbn := FBN(c.Rand(512))
					tag := tags[i%len(tags)]
					pendFBN, pendTag = fbn, tag
					c.WriteTag(0, ino, fbn, 1, tag)
					written[fbn] = tag
					pendFBN = FBN(^uint64(0))
				}
			})
			// Crash only once snapshot state is in play: count boundaries
			// after the first create and delete have both been acknowledged.
			hits := 0
			var got string
			sys.SetCPPhaseHook(func(phase string) bool {
				if len(acked) < 2 || len(ackedDels) < 1 {
					return false
				}
				hits++
				if hits == j {
					got = phase
					sys.RequestHalt()
					return true
				}
				return false
			})
			sys.Run(10 * Second)
			if !sys.Halted() {
				t.Fatalf("boundary %d never reached", j)
			}
			if got != want {
				t.Fatalf("boundary %d is %q, want %q", j, got, want)
			}
			sys.Crash()
			rec, err := sys.Recover()
			if err != nil {
				t.Fatal(err)
			}
			deleted := map[uint64]bool{}
			for _, id := range ackedDels {
				deleted[id] = true
			}
			verify := func(label string) {
				for fbn, tag := range written {
					gotb := rec.VerifyRead(0, ino, fbn)
					want := rec.payload(ino, fbn, tag)
					match := gotb != nil && bytes.Equal(gotb[:len(want)], want)
					if !match && fbn == pendFBN {
						// An in-flight write at crash time may have been
						// logged without being acknowledged; replay then
						// legitimately applies it over the acked content.
						pw := rec.payload(ino, fbn, pendTag)
						match = gotb != nil && bytes.Equal(gotb[:len(pw)], pw)
					}
					if !match {
						t.Fatalf("%s: acked write fbn %d tag %q lost", label, fbn, tag)
					}
				}
				for _, s := range acked {
					if deleted[s.id] {
						if rec.SnapshotExists(0, s.id) {
							t.Fatalf("%s: snapshot %d survives its acked delete", label, s.id)
						}
						continue
					}
					if !rec.SnapshotExists(0, s.id) {
						if s.id == pendDel {
							continue // unacked delete may have been logged
						}
						t.Fatalf("%s: acked snapshot %d missing", label, s.id)
					}
					for fbn := FBN(0); fbn < 512; fbn++ {
						tag, wrote := s.image[fbn]
						if !wrote {
							expectSnapBlock(t, rec, s.id, ino, fbn, -1, label)
						} else {
							expectSnapBlock(t, rec, s.id, ino, fbn, int(tag), label)
						}
					}
				}
			}
			verify("recovery")
			if rep := rec.Fsck(); !rep.OK() {
				t.Fatalf("fsck after crash at %q: %s", want, rep)
			}
			if err := rec.Quiesce(); err != nil {
				t.Fatal(err)
			}
			verify("after quiesce")
			if rep := rec.Fsck(); !rep.OK() {
				t.Fatalf("fsck after quiesce: %s", rep)
			}
			rec.Shutdown()
		})
	}
}

// TestSnapshotDoubleCrashSurvival crashes twice in a row — the second time
// before the recovered system runs a single event — and checks acknowledged
// snapshots (and acked deletes) survive both, protected by NVRAM re-logging.
func TestSnapshotDoubleCrashSurvival(t *testing.T) {
	sys, ino := newCrashSystem(t, crashConfig())
	var (
		snapID uint64
		img    map[FBN]byte
		delID  uint64
	)
	sys.ClientThread("w", func(c *ClientCtx) {
		for fbn := FBN(0); c.Alive() && fbn < 128; fbn++ {
			c.WriteTag(0, ino, fbn, 1, 'A')
		}
		delID = c.SnapCreate(0)
		c.SnapDelete(0, delID)
		for fbn := FBN(0); c.Alive() && fbn < 64; fbn++ {
			c.WriteTag(0, ino, fbn, 1, 'B')
		}
		snapID = c.SnapCreate(0)
		// Keep writing so the crash lands with ops (and possibly snapshot
		// records) still in NVRAM.
		for i := 0; c.Alive() && i < 1000; i++ {
			c.WriteTag(0, ino, FBN(c.Rand(512)), 1, 'C')
		}
	})
	sys.SetCPPhaseHook(func(phase string) bool {
		if snapID == 0 {
			return false
		}
		sys.RequestHalt()
		return true
	})
	sys.Run(10 * Second)
	if snapID == 0 {
		t.Fatal("snapshot never created")
	}
	img = map[FBN]byte{}
	for fbn := FBN(0); fbn < 128; fbn++ {
		if fbn < 64 {
			img[fbn] = 'B'
		} else {
			img[fbn] = 'A'
		}
	}
	sys.Crash()
	rec, err := sys.Recover()
	if err != nil {
		t.Fatal(err)
	}
	rec.Crash()
	rec2, err := rec.Recover()
	if err != nil {
		t.Fatal(err)
	}
	check := func(s *System, label string) {
		if !s.SnapshotExists(0, snapID) {
			t.Fatalf("%s: acked snapshot %d missing", label, snapID)
		}
		if s.SnapshotExists(0, delID) {
			t.Fatalf("%s: snapshot %d survives its acked delete", label, delID)
		}
		for fbn, tag := range img {
			expectSnapBlock(t, s, snapID, ino, fbn, int(tag), label)
		}
	}
	check(rec2, "double-crash recovery")
	if err := rec2.Quiesce(); err != nil {
		t.Fatal(err)
	}
	check(rec2, "after quiesce")
	if rep := rec2.Fsck(); !rep.OK() {
		t.Fatalf("post-double-crash fsck: %s", rep)
	}
}

// TestFsckFlagsOwnerlessSummaryBit corrupts the committed summary map —
// setting a bit no snapshot owns — and checks fsck flags it instead of
// silently pinning the block forever.
func TestFsckFlagsOwnerlessSummaryBit(t *testing.T) {
	sys, ino := newCrashSystem(t, crashConfig())
	sys.ClientThread("w", func(c *ClientCtx) {
		for fbn := FBN(0); fbn < 64; fbn++ {
			c.WriteTag(0, ino, fbn, 1, 'A')
		}
		c.SnapCreate(0)
	})
	sys.Run(5 * Second)
	if err := sys.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if rep := sys.Fsck(); !rep.OK() || rep.Snapshots != 1 {
		t.Fatalf("baseline fsck: %s", rep)
	}

	// Pick a VVBN in the summary file's first block that nothing owns.
	v := sys.m0().a.Volume(0)
	limit := v.VVBNBlocks()
	if limit > block.Size*8 {
		limit = block.Size * 8
	}
	target, found := uint64(0), false
	for bn := uint64(0); bn < limit; bn++ {
		if !v.Activemap.IsSet(bn) && !v.Summary.IsSet(bn) {
			target, found = bn, true
			break
		}
	}
	if !found {
		t.Fatal("no free vvbn inside the summary map's first block")
	}

	// Walk the committed summary tree to its first L0 and flip the bit
	// directly on the media image.
	f := v.SummaryFile()
	if f.RootVBN == block.InvalidVBN {
		t.Fatal("summary map has no committed tree")
	}
	vbn := f.RootVBN
	for level := f.Height(); level > 0; level-- {
		data := sys.m0().a.ReadVBNRaw(vbn)
		if data == nil {
			t.Fatal("summary tree unreadable")
		}
		_, cvbn := block.GetPtr(data, 0)
		if cvbn == 0 || cvbn == block.InvalidVBN {
			t.Fatal("summary map block 0 is a hole")
		}
		vbn = cvbn
	}
	g, d, dbn := sys.m0().a.Geometry().Locate(vbn)
	media := sys.m0().a.Group(g).Drive(d).Peek(dbn)
	media[target/8] |= 1 << (target % 8)

	rep := sys.Fsck()
	if rep.OK() {
		t.Fatal("fsck passed with an ownerless summary bit")
	}
	if rep.SnapErrs == 0 {
		t.Fatalf("corruption not flagged as a snapshot error: %s", rep)
	}
}

// TestSnapshotReclaimWithSameCPFileDelete regression-tests a space leak in
// the phase-1b ordering: a file whose blocks a snapshot holds is deleted in
// the same CP that reclaims the snapshot. The file zombie frees its VVBNs
// through asynchronous free-commit messages; if the snapshot reclaim diffs
// its snapmap against the activemap before those clears settle, the shared
// blocks look active — their summary bits are cleared but the physical homes
// (reachable only through the container map) are never freed. Both deletes
// are queued directly with the scheduler stopped, so one CP deterministically
// processes the file zombie first and the snapshot zombie right after.
func TestSnapshotReclaimWithSameCPFileDelete(t *testing.T) {
	sys, ino := newCrashSystem(t, crashConfig())
	sys.ClientThread("w", func(c *ClientCtx) {
		for fbn := FBN(0); fbn < 64; fbn++ {
			c.WriteTag(0, ino, fbn, 1, 'A')
		}
	})
	sys.Run(5 * Second)
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}

	v := sys.m0().a.Volume(0)
	snapID := v.RequestSnapshot()
	if err := sys.Flush(); err != nil { // materialize: snapshot holds ino's blocks
		t.Fatal(err)
	}
	if !v.SnapshotExists(snapID) {
		t.Fatal("snapshot was not materialized")
	}

	// File delete and snapshot delete land as zombies of the same CP.
	if !v.DeleteFile(ino) {
		t.Fatal("file delete failed")
	}
	if !v.DeleteSnapshot(snapID) {
		t.Fatal("snapshot delete failed")
	}
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}

	if fs := sys.FreeSpaceBreakdown(0); fs.SnapOnly != 0 {
		t.Fatalf("blocks still snapshot-held after the snapshot died: %+v", fs)
	}
	if rep := sys.Fsck(); !rep.OK() {
		t.Fatalf("fsck after same-CP file+snapshot delete: %s", rep)
	}
}
