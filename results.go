package wafl

import (
	"fmt"
	"strings"

	"wafl/internal/obs"
	"wafl/internal/sim"
)

// CoreUsage is per-component average simulated core occupancy over a
// measurement window — the metric the paper's Figures 4-7 plot alongside
// throughput ("2.35 infrastructure + 3.88 cleaner cores").
type CoreUsage struct {
	Client    float64
	Waffinity float64
	Cleaner   float64
	Infra     float64
	CP        float64
	RAID      float64
	Other     float64
}

// Total returns the sum across components.
func (c CoreUsage) Total() float64 {
	return c.Client + c.Waffinity + c.Cleaner + c.Infra + c.CP + c.RAID + c.Other
}

// WriteAllocation returns the cores doing write-allocation work: cleaner
// threads plus infrastructure (the paper's "write allocation core usage").
func (c CoreUsage) WriteAllocation() float64 { return c.Cleaner + c.Infra }

// Results summarizes one measurement window. Latency percentiles come from
// a log-linear histogram (16 sub-buckets per octave), so they are exact to
// within one bucket — and the window's memory cost is O(1) regardless of
// how many operations it covers.
//
// A cluster measurement is the merge of per-member windows (MergeResults):
// op, block, CP, and stall totals are exact sums; core usage is the
// event-weighted average of the per-window values (CPU is a shared
// cluster-wide resource, so each per-member window reports the cluster's
// core usage and the weighted average recovers it); latency percentiles
// come from the merged histograms.
type Results struct {
	Window     Duration
	Ops        uint64
	Blocks     uint64
	OpsPerSec  float64
	MBPerSec   float64
	LatAvg     Duration
	LatP50     Duration
	LatP90     Duration
	LatP99     Duration
	LatP999    Duration // p99.9 — the overload-study tail metric
	LatMax     Duration
	Cores      CoreUsage
	CPs        uint64
	Stalls     uint64
	StallTime  Duration
	FullStripe float64 // fraction of stripes written full (no parity reads)
	Cleaners   int     // active cleaner threads at window end

	// lat is the window's latency histogram, kept so windows can be merged
	// (MergeResults) without losing distribution information. Nil on a
	// zero Results.
	lat *obs.Histogram
}

// String renders the results as a compact report.
func (r Results) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "window=%v ops=%d (%.0f ops/s, %.1f MB/s) ", r.Window, r.Ops, r.OpsPerSec, r.MBPerSec)
	fmt.Fprintf(&b, "lat avg=%v p50=%v p99=%v ", r.LatAvg, r.LatP50, r.LatP99)
	fmt.Fprintf(&b, "cores total=%.2f (client=%.2f cleaner=%.2f infra=%.2f cp=%.2f raid=%.2f waff=%.2f) ",
		r.Cores.Total(), r.Cores.Client, r.Cores.Cleaner, r.Cores.Infra, r.Cores.CP, r.Cores.RAID, r.Cores.Waffinity)
	fmt.Fprintf(&b, "cps=%d stalls=%d fullstripe=%.0f%%", r.CPs, r.Stalls, r.FullStripe*100)
	return b.String()
}

// memberSnap captures one member's counters at a snapshot instant.
type memberSnap struct {
	ops         uint64
	blocks      uint64
	stalls      uint64
	stallT      Duration
	lat         *obs.Histogram // clone of the member's cumulative histogram
	cps         uint64
	fullStripes uint64
	partStripes uint64
}

// snapshot captures the counters Measure diffs.
type snapshot struct {
	at      Time
	cpu     sim.CPUStats
	members []memberSnap
}

func (sys *System) snap() snapshot {
	sn := snapshot{at: sys.s.Now(), cpu: sys.s.CPU()}
	for _, m := range sys.members {
		var full, part uint64
		for gi := 0; gi < m.a.Groups(); gi++ {
			st := m.a.Group(gi).Stats()
			full += st.FullStripeWrites
			part += st.PartialStripeWrites
		}
		sn.members = append(sn.members, memberSnap{
			ops:         m.opsDone,
			blocks:      m.blocksW,
			stalls:      m.stalls,
			stallT:      m.stallTime,
			lat:         m.lat.Clone(),
			cps:         m.a.CPCount(),
			fullStripes: full,
			partStripes: part,
		})
	}
	return sn
}

// Measure runs the simulation for warmup, then for window, and returns the
// cluster-wide metrics over the window.
func (sys *System) Measure(warmup, window Duration) Results {
	sys.Run(warmup)
	start := sys.snap()
	sys.Run(window)
	end := sys.snap()
	return MergeResults(sys.memberDiffs(start, end))
}

// MeasureMembers runs the simulation for warmup, then for window, and
// returns one Results per member over the window. MergeResults combines
// them into the cluster-wide view Measure would have returned.
func (sys *System) MeasureMembers(warmup, window Duration) []Results {
	sys.Run(warmup)
	start := sys.snap()
	sys.Run(window)
	end := sys.snap()
	return sys.memberDiffs(start, end)
}

// memberDiffs converts a pair of snapshots into per-member window Results.
// Core usage is cluster-wide (the CPU pool is shared; per-member
// attribution is not available), so every part carries the same CoreUsage
// and MergeResults' event-weighted average recovers it.
func (sys *System) memberDiffs(start, end snapshot) []Results {
	wall := Duration(end.at - start.at)
	cores := CoreUsage{
		Client:    end.cpu.Cores(start.cpu, sim.CatClient),
		Waffinity: end.cpu.Cores(start.cpu, sim.CatWaffinity),
		Cleaner:   end.cpu.Cores(start.cpu, sim.CatCleaner),
		Infra:     end.cpu.Cores(start.cpu, sim.CatInfra),
		CP:        end.cpu.Cores(start.cpu, sim.CatCP),
		RAID:      end.cpu.Cores(start.cpu, sim.CatRAID),
		Other:     end.cpu.Cores(start.cpu, sim.CatOther),
	}
	out := make([]Results, len(sys.members))
	for i, m := range sys.members {
		ms, me := start.members[i], end.members[i]
		r := Results{
			Window:    wall,
			Ops:       me.ops - ms.ops,
			Blocks:    me.blocks - ms.blocks,
			CPs:       me.cps - ms.cps,
			Stalls:    me.stalls - ms.stalls,
			StallTime: me.stallT - ms.stallT,
			Cores:     cores,
			Cleaners:  m.pool.Active(),
		}
		secs := wall.Seconds()
		if secs > 0 {
			r.OpsPerSec = float64(r.Ops) / secs
			r.MBPerSec = float64(r.Blocks) * 4096 / (1 << 20) / secs
		}
		d := me.lat.Delta(ms.lat)
		r.lat = d
		if d.Count > 0 {
			r.LatAvg = Duration(d.Mean())
			r.LatP50 = Duration(d.Quantile(0.50))
			r.LatP90 = Duration(d.Quantile(0.90))
			r.LatP99 = Duration(d.Quantile(0.99))
			r.LatP999 = Duration(d.Quantile(0.999))
			r.LatMax = Duration(d.Max)
		}
		dFull := me.fullStripes - ms.fullStripes
		dPart := me.partStripes - ms.partStripes
		if dFull+dPart > 0 {
			r.FullStripe = float64(dFull) / float64(dFull+dPart)
		}
		out[i] = r
	}
	return out
}

// MergeResults combines per-member window Results into one cluster-wide
// Results. Ops, Blocks, CPs, Stalls, StallTime, and Cleaners sum exactly;
// Window is the widest part; core usage is the Ops-weighted average of the
// parts (each part reports cluster-wide usage, so identical parts merge to
// the same value, and empty windows carry no weight); FullStripe is
// Blocks-weighted; latency statistics come from the merged histograms.
// Rates (OpsPerSec, MBPerSec) are recomputed from the summed totals over
// the merged window. An empty slice merges to the zero Results.
func MergeResults(parts []Results) Results {
	var r Results
	if len(parts) == 0 {
		return r
	}
	lat := obs.NewHistogram("client.lat")
	var coreW float64
	var cores [7]float64
	var stripeW float64
	var fullFrac float64
	for _, p := range parts {
		r.Ops += p.Ops
		r.Blocks += p.Blocks
		r.CPs += p.CPs
		r.Stalls += p.Stalls
		r.StallTime += p.StallTime
		r.Cleaners += p.Cleaners
		if p.Window > r.Window {
			r.Window = p.Window
		}
		w := float64(p.Ops)
		coreW += w
		for i, v := range [7]float64{p.Cores.Client, p.Cores.Waffinity, p.Cores.Cleaner,
			p.Cores.Infra, p.Cores.CP, p.Cores.RAID, p.Cores.Other} {
			cores[i] += w * v
		}
		stripeW += float64(p.Blocks)
		fullFrac += float64(p.Blocks) * p.FullStripe
		lat.Merge(p.lat)
	}
	if coreW > 0 {
		r.Cores = CoreUsage{
			Client: cores[0] / coreW, Waffinity: cores[1] / coreW,
			Cleaner: cores[2] / coreW, Infra: cores[3] / coreW,
			CP: cores[4] / coreW, RAID: cores[5] / coreW, Other: cores[6] / coreW,
		}
	} else {
		// No events anywhere: fall back to the unweighted average so a
		// fully idle cluster still reports its (shared) core usage.
		for _, p := range parts {
			r.Cores.Client += p.Cores.Client / float64(len(parts))
			r.Cores.Waffinity += p.Cores.Waffinity / float64(len(parts))
			r.Cores.Cleaner += p.Cores.Cleaner / float64(len(parts))
			r.Cores.Infra += p.Cores.Infra / float64(len(parts))
			r.Cores.CP += p.Cores.CP / float64(len(parts))
			r.Cores.RAID += p.Cores.RAID / float64(len(parts))
			r.Cores.Other += p.Cores.Other / float64(len(parts))
		}
	}
	if stripeW > 0 {
		r.FullStripe = fullFrac / stripeW
	}
	secs := r.Window.Seconds()
	if secs > 0 {
		r.OpsPerSec = float64(r.Ops) / secs
		r.MBPerSec = float64(r.Blocks) * 4096 / (1 << 20) / secs
	}
	r.lat = lat
	if lat.Count > 0 {
		r.LatAvg = Duration(lat.Mean())
		r.LatP50 = Duration(lat.Quantile(0.50))
		r.LatP90 = Duration(lat.Quantile(0.90))
		r.LatP99 = Duration(lat.Quantile(0.99))
		r.LatP999 = Duration(lat.Quantile(0.999))
		r.LatMax = Duration(lat.Max)
	}
	return r
}

// CPReport summarizes consistency-point engine activity: counts, average
// duration, and the split between the cleaning phase and the metafile
// phases (the CP "tail" that no cleaner parallelism can hide).
func (sys *System) CPReport() string {
	st := sys.CPStats()
	if st.CPs == 0 {
		return "no CPs"
	}
	avg := st.TotalDuration / Duration(st.CPs)
	return fmt.Sprintf("cps=%d avg=%v clean=%v meta=%v longest=%v back2back=%d inodes=%d amapwrites=%d",
		st.CPs, avg,
		st.CleanDuration/Duration(st.CPs), st.MetaDuration/Duration(st.CPs),
		st.LongestDuration, st.BackToBack, st.InodesCleaned, st.AmapWrites)
}

// SnapStats returns cumulative snapshot activity: images materialized,
// snapshots reclaimed, and physical blocks returned to the aggregate free
// pool by snapshot deletes.
func (sys *System) SnapStats() (created, deleted, reclaimedBlocks uint64) {
	st := sys.CPStats()
	return st.SnapsCreated, st.SnapsDeleted, st.SnapReclaimed
}

// CloneStats is the cumulative clone/restore activity rollup plus the
// point-in-time block debt the clone fleet still owes its parents.
type CloneStats struct {
	Binds         uint64 // clones materialized at a CP
	SplitsDone    uint64 // clone splits driven to completion
	SplitCopied   uint64 // blocks rewritten by background split copy
	Restores      uint64 // SnapRestore reverts committed
	RestoreFreed  uint64 // blocks freed by reverting past the snapshot
	RestoreBlocks uint64 // metadata blocks rewritten during restores
	CloneHeld     uint64 // live base blocks still shared with parents
	SplitPending  uint64 // of CloneHeld, blocks a running split has left
	Bound         int    // clone volumes currently bound
	Splitting     int    // of Bound, clones with a split in flight
}

// CloneStats aggregates the clone/restore counters across members and
// walks the bound clone volumes for their live summary-hold debt.
func (sys *System) CloneStats() CloneStats {
	st := sys.CPStats()
	cs := CloneStats{
		Binds:         st.CloneBinds,
		SplitsDone:    st.SplitsDone,
		SplitCopied:   st.SplitCopied,
		Restores:      st.Restores,
		RestoreFreed:  st.RestoreFreed,
		RestoreBlocks: st.RestoreBlocks,
	}
	for _, cv := range sys.CloneVolumes() {
		fs := sys.FreeSpaceBreakdown(cv)
		cs.CloneHeld += fs.CloneHeld
		cs.SplitPending += fs.SplitPending
		cs.Bound++
		if fs.SplitPending > 0 {
			cs.Splitting++
		}
	}
	return cs
}

// CleanerJobStats returns the cleaner pools' cumulative job and batch
// counts (equal unless batched inode cleaning merged jobs).
func (sys *System) CleanerJobStats() (jobs, batches uint64) {
	for _, m := range sys.members {
		st := m.pool.Stats()
		jobs += st.JobsRun
		batches += st.BatchesRun
	}
	return jobs, batches
}

// InfraStats exposes the allocator infrastructure counters.
func (sys *System) InfraStats() interface{ String() string } {
	return infraStatsView{sys}
}

type infraStatsView struct{ sys *System }

func (v infraStatsView) String() string {
	st := v.sys.Counters()
	var ps struct{ JobsRun, BatchesRun, BuffersCleaned, FilesSplit uint64 }
	for _, m := range v.sys.members {
		s := m.pool.Stats()
		ps.JobsRun += s.JobsRun
		ps.BatchesRun += s.BatchesRun
		ps.BuffersCleaned += s.BuffersCleaned
		ps.FilesSplit += s.FilesSplit
	}
	return fmt.Sprintf(
		"buckets filled=%d committed=%d vbuckets=%d/%d tetris=%d (%d blk) stagemsgs=%d frees=%d fillwords=%d vfillwords=%d getwaits=%d | jobs=%d batches=%d buffers=%d splits=%d",
		st.BucketsFilled, st.BucketsCommitted, st.VBucketsFilled, st.VBucketsCommitted,
		st.TetrisesSent, st.TetrisBlocks, st.StageCommitMsgs, st.FreesCommitted,
		st.FillWords, st.VFillWords, st.GetWaits,
		ps.JobsRun, ps.BatchesRun, ps.BuffersCleaned, ps.FilesSplit)
}
