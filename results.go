package wafl

import (
	"fmt"
	"sort"
	"strings"

	"wafl/internal/sim"
)

// CoreUsage is per-component average simulated core occupancy over a
// measurement window — the metric the paper's Figures 4-7 plot alongside
// throughput ("2.35 infrastructure + 3.88 cleaner cores").
type CoreUsage struct {
	Client    float64
	Waffinity float64
	Cleaner   float64
	Infra     float64
	CP        float64
	RAID      float64
	Other     float64
}

// Total returns the sum across components.
func (c CoreUsage) Total() float64 {
	return c.Client + c.Waffinity + c.Cleaner + c.Infra + c.CP + c.RAID + c.Other
}

// WriteAllocation returns the cores doing write-allocation work: cleaner
// threads plus infrastructure (the paper's "write allocation core usage").
func (c CoreUsage) WriteAllocation() float64 { return c.Cleaner + c.Infra }

// Results summarizes one measurement window.
type Results struct {
	Window     Duration
	Ops        uint64
	Blocks     uint64
	OpsPerSec  float64
	MBPerSec   float64
	LatAvg     Duration
	LatP50     Duration
	LatP90     Duration
	LatP99     Duration
	LatMax     Duration
	Cores      CoreUsage
	CPs        uint64
	Stalls     uint64
	StallTime  Duration
	FullStripe float64 // fraction of stripes written full (no parity reads)
	Cleaners   int     // active cleaner threads at window end
}

// String renders the results as a compact report.
func (r Results) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "window=%v ops=%d (%.0f ops/s, %.1f MB/s) ", r.Window, r.Ops, r.OpsPerSec, r.MBPerSec)
	fmt.Fprintf(&b, "lat avg=%v p50=%v p99=%v ", r.LatAvg, r.LatP50, r.LatP99)
	fmt.Fprintf(&b, "cores total=%.2f (client=%.2f cleaner=%.2f infra=%.2f cp=%.2f raid=%.2f waff=%.2f) ",
		r.Cores.Total(), r.Cores.Client, r.Cores.Cleaner, r.Cores.Infra, r.Cores.CP, r.Cores.RAID, r.Cores.Waffinity)
	fmt.Fprintf(&b, "cps=%d stalls=%d fullstripe=%.0f%%", r.CPs, r.Stalls, r.FullStripe*100)
	return b.String()
}

// snapshot captures the counters Measure diffs.
type snapshot struct {
	at          Time
	cpu         sim.CPUStats
	ops         uint64
	blocks      uint64
	stalls      uint64
	stallT      Duration
	latIdx      int
	cps         uint64
	fullStripes uint64
	partStripes uint64
}

func (sys *System) snap() snapshot {
	var full, part uint64
	for gi := 0; gi < sys.a.Groups(); gi++ {
		st := sys.a.Group(gi).Stats()
		full += st.FullStripeWrites
		part += st.PartialStripeWrites
	}
	return snapshot{
		at:          sys.s.Now(),
		cpu:         sys.s.CPU(),
		ops:         sys.opsDone,
		blocks:      sys.blocksW,
		stalls:      sys.stalls,
		stallT:      sys.stallTime,
		latIdx:      len(sys.latencies),
		cps:         sys.a.CPCount(),
		fullStripes: full,
		partStripes: part,
	}
}

// Measure runs the simulation for warmup, then for window, and returns the
// metrics over the window.
func (sys *System) Measure(warmup, window Duration) Results {
	sys.Run(warmup)
	start := sys.snap()
	sys.Run(window)
	end := sys.snap()
	return sys.diff(start, end)
}

func (sys *System) diff(start, end snapshot) Results {
	wall := Duration(end.at - start.at)
	r := Results{
		Window:    wall,
		Ops:       end.ops - start.ops,
		Blocks:    end.blocks - start.blocks,
		CPs:       end.cps - start.cps,
		Stalls:    end.stalls - start.stalls,
		StallTime: end.stallT - start.stallT,
		Cleaners:  sys.pool.Active(),
	}
	secs := wall.Seconds()
	if secs > 0 {
		r.OpsPerSec = float64(r.Ops) / secs
		r.MBPerSec = float64(r.Blocks) * 4096 / (1 << 20) / secs
	}
	r.Cores = CoreUsage{
		Client:    end.cpu.Cores(start.cpu, sim.CatClient),
		Waffinity: end.cpu.Cores(start.cpu, sim.CatWaffinity),
		Cleaner:   end.cpu.Cores(start.cpu, sim.CatCleaner),
		Infra:     end.cpu.Cores(start.cpu, sim.CatInfra),
		CP:        end.cpu.Cores(start.cpu, sim.CatCP),
		RAID:      end.cpu.Cores(start.cpu, sim.CatRAID),
		Other:     end.cpu.Cores(start.cpu, sim.CatOther),
	}
	lats := sys.latencies[start.latIdx:end.latIdx]
	if len(lats) > 0 {
		sorted := make([]Duration, len(lats))
		copy(sorted, lats)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		var sum Duration
		for _, l := range sorted {
			sum += l
		}
		r.LatAvg = sum / Duration(len(sorted))
		r.LatP50 = sorted[len(sorted)*50/100]
		r.LatP90 = sorted[len(sorted)*90/100]
		r.LatP99 = sorted[len(sorted)*99/100]
		r.LatMax = sorted[len(sorted)-1]
	}
	dFull := end.fullStripes - start.fullStripes
	dPart := end.partStripes - start.partStripes
	if dFull+dPart > 0 {
		r.FullStripe = float64(dFull) / float64(dFull+dPart)
	}
	return r
}

// CPReport summarizes consistency-point engine activity: counts, average
// duration, and the split between the cleaning phase and the metafile
// phases (the CP "tail" that no cleaner parallelism can hide).
func (sys *System) CPReport() string {
	st := sys.engine.Stats()
	if st.CPs == 0 {
		return "no CPs"
	}
	avg := st.TotalDuration / Duration(st.CPs)
	return fmt.Sprintf("cps=%d avg=%v clean=%v meta=%v longest=%v back2back=%d inodes=%d amapwrites=%d",
		st.CPs, avg,
		st.CleanDuration/Duration(st.CPs), st.MetaDuration/Duration(st.CPs),
		st.LongestDuration, st.BackToBack, st.InodesCleaned, st.AmapWrites)
}

// SnapStats returns cumulative snapshot activity: images materialized,
// snapshots reclaimed, and physical blocks returned to the aggregate free
// pool by snapshot deletes.
func (sys *System) SnapStats() (created, deleted, reclaimedBlocks uint64) {
	st := sys.engine.Stats()
	return st.SnapsCreated, st.SnapsDeleted, st.SnapReclaimed
}

// CleanerJobStats returns the cleaner pool's cumulative job and batch
// counts (equal unless batched inode cleaning merged jobs).
func (sys *System) CleanerJobStats() (jobs, batches uint64) {
	st := sys.pool.Stats()
	return st.JobsRun, st.BatchesRun
}

// InfraStats exposes the allocator infrastructure counters.
func (sys *System) InfraStats() interface{ String() string } {
	return infraStatsView{sys}
}

type infraStatsView struct{ sys *System }

func (v infraStatsView) String() string {
	st := v.sys.in.Stats()
	ps := v.sys.pool.Stats()
	return fmt.Sprintf(
		"buckets filled=%d committed=%d vbuckets=%d/%d tetris=%d (%d blk) stagemsgs=%d frees=%d fillwords=%d vfillwords=%d getwaits=%d | jobs=%d batches=%d buffers=%d splits=%d",
		st.BucketsFilled, st.BucketsCommitted, st.VBucketsFilled, st.VBucketsCommitted,
		st.TetrisesSent, st.TetrisBlocks, st.StageCommitMsgs, st.FreesCommitted,
		st.FillWords, st.VFillWords, st.GetWaits,
		ps.JobsRun, ps.BatchesRun, ps.BuffersCleaned, ps.FilesSplit)
}
