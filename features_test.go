package wafl

import (
	"testing"
)

func TestDeleteReclaimsSpace(t *testing.T) {
	sys, err := NewSystem(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	ino := sys.CreateFileDirect(0, 4096)
	var deleted bool
	sys.ClientThread("life", func(c *ClientCtx) {
		for i := 0; i < 600; i += 4 {
			c.Write(0, ino, FBN(i), 4)
		}
	})
	sys.Run(500 * Millisecond)
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	usedBefore := uint64(sys.cfg.DriveBlocks) // placeholder, replaced below
	usedBefore = sys.m0().a.Activemap.Used()

	sys.stopped = false
	sys.ClientThread("reaper", func(c *ClientCtx) {
		deleted = c.Delete(0, ino)
	})
	sys.Run(100 * Millisecond)
	if !deleted {
		t.Fatal("delete failed")
	}
	if sys.VerifyRead(0, ino, 0) != nil {
		t.Fatal("file readable after delete")
	}
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	usedAfter := sys.m0().a.Activemap.Used()
	// The file's ~600 L0 blocks plus indirects must have been reclaimed.
	if usedBefore-usedAfter < 600 {
		t.Fatalf("reclaimed only %d blocks", usedBefore-usedAfter)
	}
	rep := sys.Fsck()
	if !rep.OK() {
		t.Fatalf("fsck after delete: %s %v", rep, rep.Errors)
	}
	if rep.Files != 0 {
		t.Fatalf("fsck sees %d files after delete", rep.Files)
	}
}

func TestDeleteIsIdempotentAndGuardsResurrection(t *testing.T) {
	sys, err := NewSystem(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	ino := sys.CreateFileDirect(0, 256)
	sys.ClientThread("w", func(c *ClientCtx) {
		c.Write(0, ino, 0, 2)
	})
	sys.Run(50 * Millisecond)
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	sys.stopped = false
	var first, second bool
	sys.ClientThread("d", func(c *ClientCtx) {
		first = c.Delete(0, ino)
		second = c.Delete(0, ino) // before any CP clears the record
	})
	sys.Run(50 * Millisecond)
	if !first || second {
		t.Fatalf("delete results: first=%v second=%v, want true/false", first, second)
	}
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	if !sys.Fsck().OK() {
		t.Fatal("fsck failed after double delete")
	}
}

func TestDeleteSurvivesCrashReplay(t *testing.T) {
	cfg := fullPayloadConfig()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	keep := sys.CreateFileDirect(0, 256)
	kill := sys.CreateFileDirect(0, 256)
	sys.ClientThread("setup", func(c *ClientCtx) {
		c.Write(0, keep, 0, 2)
		c.Write(0, kill, 0, 2)
	})
	sys.Run(100 * Millisecond)
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	sys.stopped = false
	sys.ClientThread("deleter", func(c *ClientCtx) {
		c.Delete(0, kill)
	})
	sys.Run(20 * Millisecond)
	sys.Crash() // delete may only exist in NVRAM
	rec, err := sys.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.VerifyRead(0, kill, 0) != nil {
		t.Fatal("deleted file resurrected by replay")
	}
	if err := rec.VerifyAgainst(0, keep, 0); err != nil {
		t.Fatal(err)
	}
	if err := rec.Quiesce(); err != nil {
		t.Fatal(err)
	}
	rep := rec.Fsck()
	if !rep.OK() || rep.Files != 1 {
		t.Fatalf("post-recovery fsck: %s %v", rep, rep.Errors)
	}
}

func TestFsckDetectsCorruption(t *testing.T) {
	sys, err := NewSystem(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	ino := sys.CreateFileDirect(0, 1024)
	sys.ClientThread("w", func(c *ClientCtx) {
		for i := 0; i < 200; i += 4 {
			c.Write(0, ino, FBN(i), 4)
		}
	})
	sys.Run(300 * Millisecond)
	if err := sys.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if !sys.Fsck().OK() {
		t.Fatal("baseline fsck should pass")
	}
	// Inject corruption: flip a used bit off in the in-memory activemap
	// and persist it via another CP — the block becomes referenced but
	// not marked used.
	f := sys.m0().a.Volume(0).LookupFile(ino)
	b := f.Buffer(0, 0)
	sys.m0().a.Activemap.Clear(uint64(b.VBN()))
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	rep := sys.Fsck()
	if rep.OK() {
		t.Fatal("fsck missed an intentionally corrupted bitmap")
	}
	if rep.Missing == 0 {
		t.Fatalf("corruption classified wrong: %s", rep)
	}
}

func TestReadsReturnWrittenData(t *testing.T) {
	cfg := fullPayloadConfig()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ino := sys.CreateFileDirect(0, 1024)
	var readLat Duration
	sys.ClientThread("rw", func(c *ClientCtx) {
		c.Write(0, ino, 10, 4)
		readLat = c.Read(0, ino, 10, 4)
	})
	sys.Run(100 * Millisecond)
	if readLat == 0 {
		t.Fatal("read did not complete")
	}
	if err := sys.VerifyAgainst(0, ino, 10); err != nil {
		t.Fatal(err)
	}
}

func TestPostRecoveryColdReadIsTimed(t *testing.T) {
	cfg := fullPayloadConfig()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ino := sys.CreateFileDirect(0, 1024)
	sys.ClientThread("w", func(c *ClientCtx) {
		for i := 0; i < 64; i += 4 {
			c.Write(0, ino, FBN(i), 4)
		}
	})
	sys.Run(200 * Millisecond)
	if err := sys.Quiesce(); err != nil {
		t.Fatal(err)
	}
	sys.Crash()
	rec, err := sys.Recover()
	if err != nil {
		t.Fatal(err)
	}
	var cold, warm Duration
	rec.ClientThread("reader", func(c *ClientCtx) {
		cold = c.Read(0, ino, 5, 1) // miss: must pay drive latency
		warm = c.Read(0, ino, 5, 1) // hit
	})
	rec.Run(100 * Millisecond)
	if cold <= warm {
		t.Fatalf("cold read (%v) should cost more than warm read (%v)", cold, warm)
	}
}

func TestHistoricalSerialAffinityMode(t *testing.T) {
	// The pre-2008 design: inode cleaning inside the Serial affinity.
	cfg := smallConfig()
	cfg.Allocator.CleanInSerialAffinity = true
	cfg.Allocator.MaxCleaners = 1
	cfg.Allocator.InitialCleaners = 1
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ino := sys.CreateFileDirect(0, 4096)
	sys.ClientThread("w", func(c *ClientCtx) {
		i := 0
		for c.Alive() {
			c.Write(0, ino, FBN((i*4)%2048), 4)
			i++
		}
	})
	res := sys.Measure(50*Millisecond, 200*Millisecond)
	if res.Ops == 0 || res.CPs == 0 {
		t.Fatalf("serial-affinity mode made no progress: %s", res)
	}
	if err := sys.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if !sys.Fsck().OK() {
		t.Fatal("fsck failed in serial-affinity mode")
	}
}

func TestStallAccountingUnderOverload(t *testing.T) {
	cfg := smallConfig()
	cfg.NVRAMHalfBytes = 256 << 10 // tiny log: constant back-to-back CPs
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ino := sys.CreateFileDirect(0, 4096)
	for i := 0; i < 8; i++ {
		sys.ClientThread("w", func(c *ClientCtx) {
			j := 0
			for c.Alive() {
				c.Write(0, ino, FBN((j*8)%4000), 8)
				j++
			}
		})
	}
	res := sys.Measure(50*Millisecond, 200*Millisecond)
	if res.Stalls == 0 || res.StallTime == 0 {
		t.Fatalf("overload must stall clients: %s", res)
	}
	if res.LatP99 <= res.LatP50 {
		t.Fatalf("stalls should fatten the latency tail: p50=%v p99=%v", res.LatP50, res.LatP99)
	}
}

func TestDynamicTunerSamplesExposed(t *testing.T) {
	cfg := smallConfig()
	cfg.Allocator.Dynamic = true
	cfg.Allocator.InitialCleaners = 1
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ino := sys.CreateFileDirect(0, 4096)
	sys.ClientThread("w", func(c *ClientCtx) {
		j := 0
		for c.Alive() {
			c.Write(0, ino, FBN((j*8)%4000), 8)
			j++
		}
	})
	sys.Run(400 * Millisecond)
	if len(sys.TunerSamples()) == 0 {
		t.Fatal("no tuner samples recorded")
	}
	if sys.ActiveCleaners() < 1 {
		t.Fatal("tuner must keep at least one thread")
	}
}

func TestLooseAccountingMatchesGroundTruth(t *testing.T) {
	sys, err := NewSystem(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	ino := sys.CreateFileDirect(0, 4096)
	sys.ClientThread("w", func(c *ClientCtx) {
		for i := 0; i < 500 && c.Alive(); i += 4 {
			c.Write(0, ino, FBN(i%2048), 4)
		}
	})
	sys.Run(300 * Millisecond)
	if err := sys.Quiesce(); err != nil {
		t.Fatal(err)
	}
	// After quiesce every token has flushed: the loose counter equals the
	// activemap's ground truth.
	if got, want := sys.AggrFreeBlocks(), int64(sys.m0().a.TotalFree()); got != want {
		t.Fatalf("loose counter %d != ground truth %d", got, want)
	}
}

func TestHierarchyRendering(t *testing.T) {
	sys, err := NewSystem(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := sys.Hierarchy()
	for _, want := range []string{"Serial", "AggrVBN", "VolLogical", "Range"} {
		if !contains(out, want) {
			t.Fatalf("hierarchy missing %q", want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
