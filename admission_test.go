package wafl

import (
	"testing"
)

// admissionLoad drives one member with hammering bulk writers per volume
// plus a paced latency-sensitive writer, and returns the LS latency
// histogram, the measured results, and the admission stats. The NVRAM
// halves are shrunk so the bulk load actually pressures the log.
func admissionLoad(t *testing.T, enabled bool) (*TraceHistogram, Results, uint64, Duration) {
	t.Helper()
	cfg := smallConfig()
	cfg.NVRAMHalfBytes = 256 << 10
	cfg.Admission = DefaultAdmission()
	cfg.Admission.Enabled = enabled
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lsHist := NewHistogram("test.ls")
	for v := 0; v < cfg.Volumes; v++ {
		v := v
		lsIno := sys.CreateFileDirect(v, 1024)
		for b := 0; b < 4; b++ {
			bulkIno := sys.CreateFileDirect(v, 4096)
			sys.ClientThread("bulk", func(c *ClientCtx) {
				var fbn FBN
				for c.Alive() {
					c.WriteBulk(v, bulkIno, fbn%4000, 16)
					fbn += 16
				}
			})
		}
		sys.ClientThread("ls", func(c *ClientCtx) {
			var fbn FBN
			for c.Alive() {
				lat := c.Write(v, lsIno, fbn%1000, 1)
				lsHist.Observe(int64(lat))
				fbn++
				c.Think(200 * Microsecond)
			}
		})
	}
	res := sys.Measure(50*Millisecond, 200*Millisecond)
	shed, delay := sys.AdmissionStats()
	sys.Shutdown()
	return lsHist, res, shed, delay
}

// TestAdmissionShedsBulkUnderPressure checks the watermark mechanism: with
// admission off, the bulk load fills the NVRAM log and every writer —
// including the latency-sensitive one — stalls behind back-to-back CPs;
// with admission on, bulk writes are delayed and shed at the watermarks,
// the log stays below the stall point, and the LS writer's tail latency
// drops by an order of magnitude.
func TestAdmissionShedsBulkUnderPressure(t *testing.T) {
	offHist, offRes, offShed, offDelay := admissionLoad(t, false)
	onHist, onRes, onShed, onDelay := admissionLoad(t, true)

	if offShed != 0 || offDelay != 0 {
		t.Fatalf("admission-off gated ops (shed %d, delay %v) while disabled", offShed, offDelay)
	}
	if offRes.Stalls == 0 {
		t.Fatal("admission-off load never stalled the NVLog: test load too light to mean anything")
	}
	if onShed == 0 && onDelay == 0 {
		t.Fatal("admission-on neither delayed nor shed: controller never engaged")
	}
	if onRes.Stalls*2 > offRes.Stalls {
		t.Fatalf("admission barely reduced stalls: %d on vs %d off", onRes.Stalls, offRes.Stalls)
	}
	// Gating bulk must not hurt the latency-sensitive class (the tail
	// *improvement* at scale is asserted by harness.OverloadCheck, where
	// CPs are long enough for the stall regime to dominate the p99).
	offP99 := Duration(offHist.Quantile(0.99))
	onP99 := Duration(onHist.Quantile(0.99))
	if onP99 > 2*offP99 {
		t.Fatalf("LS p99 %v with admission worse than %v without", onP99, offP99)
	}
	// The SLO itself: with bulk gated, an LS single-block write's p99 is
	// service time plus modest queueing, far below the CP-stall regime.
	if onP99 > 5*Millisecond {
		t.Fatalf("admission-on LS p99 = %v, want < 5ms", onP99)
	}
}

// TestAdmissionHysteresis checks the back-to-back guard: once bulk is held,
// it stays held until fullness falls below ResumeAt AND the frozen half has
// drained — the fullness drop at a CP half-switch alone must not release
// the gate (that is the flapping the hysteresis exists to prevent).
func TestAdmissionHysteresis(t *testing.T) {
	cfg := smallConfig()
	cfg.NVRAMHalfBytes = 256 << 10
	cfg.Admission = DefaultAdmission()
	// Raise ResumeAt to the delay watermark: even with this degenerate
	// band, the frozen-half condition alone must prevent immediate resume
	// during back-to-back CPs. A tight delay budget makes held ops fall
	// through to the shed tier whenever the CP outlasts two delay rounds.
	cfg.Admission.ResumeAt = cfg.Admission.BulkDelayAt
	cfg.Admission.MaxDelay = 2 * cfg.Admission.DelayStep
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	admitted, refused := 0, 0
	for b := 0; b < 4; b++ {
		ino := sys.CreateFileDirect(0, 4096)
		sys.ClientThread("bulk", func(c *ClientCtx) {
			var fbn FBN
			for c.Alive() {
				_, ok := c.WriteBulk(0, ino, fbn%4000, 16)
				if ok {
					admitted++
				} else {
					refused++
				}
				fbn += 16
			}
		})
	}
	sys.Run(300 * Millisecond)
	sys.Shutdown()
	if admitted == 0 {
		t.Fatal("no bulk writes admitted at all")
	}
	if refused == 0 {
		t.Fatal("hammering bulk writer never refused: watermarks not enforced")
	}
}
