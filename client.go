package wafl

import (
	"fmt"

	"wafl/internal/aggregate"
	"wafl/internal/bcache"
	"wafl/internal/block"
	"wafl/internal/nvlog"
	"wafl/internal/obs"
	"wafl/internal/sim"
	"wafl/internal/waffinity"
)

// ClientCtx is a closed-loop client session: a simulated thread issuing
// operations against the system, one at a time, measuring per-op latency.
// Workload generators receive a ClientCtx and drive it. Operations address
// volumes by global index; the owning member is resolved per op (from the
// file handle's embedded constituent id when present, else the volume).
type ClientCtx struct {
	sys *System
	t   *sim.Thread
	id  int

	// threadIdx is the client thread's scheduler index, recorded so a
	// member crash can take down the clients pinned to it
	// (CrashMember(i, clients...)).
	threadIdx int

	// per-client statistics
	Ops        uint64
	Blocks     uint64
	Stalled    uint64
	Shed       uint64   // bulk writes refused by admission control
	AdmitDelay Duration // cumulative bulk admission delay
}

// ClientThread spawns a closed-loop client running fn. Call before Run /
// Measure.
func (sys *System) ClientThread(name string, fn func(*ClientCtx)) *ClientCtx {
	c := &ClientCtx{sys: sys, id: len(sys.clients), threadIdx: sys.s.ThreadMark()}
	sys.clients = append(sys.clients, c)
	sys.s.Go(name, sim.CatClient, func(t *sim.Thread) {
		c.t = t
		fn(c)
	})
	return c
}

// Alive reports whether the client should keep issuing operations.
func (c *ClientCtx) Alive() bool { return !c.sys.stopped }

// Now returns the current simulated time.
func (c *ClientCtx) Now() Time { return c.t.Now() }

// Think blocks the client for d without consuming CPU (client-side delay /
// open-loop pacing).
func (c *ClientCtx) Think(d Duration) { c.t.Sleep(d) }

// Rand returns a deterministic pseudo-random int in [0, n).
func (c *ClientCtx) Rand(n int64) int64 {
	return c.sys.s.Rand().Int63n(n)
}

// RandFloat64 returns a deterministic pseudo-random float in [0, 1) — the
// open-loop generators use it for exponential inter-arrival sampling.
func (c *ClientCtx) RandFloat64() float64 {
	return c.sys.s.Rand().Float64()
}

// WaitQueue is a parking lot for simulated client threads — the queueing
// primitive open-loop workloads use to hand arrived operations to worker
// threads (re-exported from the simulation kernel).
type WaitQueue = sim.WaitQueue

// NewWaitQueue creates a wait queue on the system's scheduler. name is used
// in diagnostics and trace spans.
func (sys *System) NewWaitQueue(name string) *WaitQueue {
	return sim.NewWaitQueue(sys.s, name)
}

// Wait parks the client on q until another client Signals it.
func (c *ClientCtx) Wait(q *WaitQueue) { q.Wait(c.t) }

// payload builds the pattern content for a block write. The pattern is
// derived from the file handle as the client holds it (member tag
// included), so content checks work with the handle alone.
func (sys *System) payload(ino uint64, fbn FBN, tag byte) []byte {
	n := sys.cfg.PayloadBytes
	if n <= 0 {
		n = 64
	}
	if n > block.Size {
		n = block.Size
	}
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(ino) ^ byte(uint64(fbn)>>(uint(i)%24)) ^ tag ^ byte(i)
	}
	return p
}

// reserveLog reserves NVRAM space on member m for an op's records, stalling
// the client (and requesting CPs) until space frees up. Returns the op's
// reservation and the stall time.
func (c *ClientCtx) reserveLog(m *Member, bytes uint64) (*nvlog.Reservation, Duration) {
	var stalled Duration
	res, ok := m.log.Reserve(bytes)
	for !ok {
		// Back-to-back CP: both halves occupied. Wait for the running CP.
		start := c.t.Now()
		c.Stalled++
		m.stalls++
		m.engine.RequestCP()
		m.engine.WaitCPDone(c.t)
		stalled += Duration(c.t.Now() - start)
		if tr := c.t.Tracer(); tr != nil {
			tr.Span(obs.PidThreads, c.t.TrackID(), "client", "nvram stall",
				int64(start), int64(c.t.Now()))
			tr.Observe("client.stall", int64(c.t.Now()-start))
		}
		res, ok = m.log.Reserve(bytes)
	}
	return res, stalled
}

// stallRestore charges one restore-gate stall round: request a CP (the gate
// reopens when the CP applying the restore commits) and wait it out.
func (c *ClientCtx) stallRestore(m *Member) {
	c.Stalled++
	m.stalls++
	m.engine.RequestCP()
	m.engine.WaitCPDone(c.t)
}

// gatedCall runs fn inside aff, stalling and retrying while the volume's
// SnapRestore gate is closed. The gate check and fn run in the same message
// with no yield between them, so an operation that logs inside fn can never
// place its record after a restore record the volume hasn't applied yet —
// the invariant NVRAM replay depends on.
func (c *ClientCtx) gatedCall(m *Member, v *aggregate.Volume, aff *waffinity.Affinity, fn func(wt *sim.Thread)) {
	for {
		gated := false
		m.call(c.t, aff, sim.CatClient, func(wt *sim.Thread) {
			if v.RestorePending() {
				gated = true
				return
			}
			fn(wt)
		})
		if !gated {
			return
		}
		c.stallRestore(m)
	}
}

// Write performs one client write of nblocks 4 KiB blocks at fbn: it logs
// to NVRAM, then dirties the buffers inside the owning stripe affinities
// (one message per stripe touched), and returns when the (logged) operation
// is acknowledged — long before the data reaches a drive, as in the real
// system.
//
// Writes respect the volume's SnapRestore gate: while a restore is pending
// or uncommitted the op stalls, so no write record can land after a restore
// record the volume has not applied.
func (c *ClientCtx) Write(vol int, ino uint64, fbn FBN, nblocks int) Duration {
	return c.WriteTag(vol, ino, fbn, nblocks, 0)
}

// WriteTag is Write with a caller-chosen payload tag. The default pattern
// content depends only on (ino, fbn), so overwrites are byte-identical;
// tagged writes give tests distinguishable generations — the only way to
// prove a snapshot image stayed frozen while the active file system churned
// over it.
func (c *ClientCtx) WriteTag(vol int, ino uint64, fbn FBN, nblocks int, tag byte) Duration {
	sys := c.sys
	m, lv, li := sys.resolve(vol, ino)
	start := c.t.Now()
	c.t.Consume(sys.cfg.Costs.ClientOp)
	blocks := make([][]byte, nblocks)
	recBytes := uint64(0)
	for b := 0; b < nblocks; b++ {
		blocks[b] = sys.payload(ino, fbn+FBN(b), tag)
		recBytes += nvlog.Record{Data: blocks[b], LogicalBytes: block.Size}.Size()
	}
	// Reserve NVRAM space up front (this is where overload stalls the op);
	// the records themselves are appended inside the stripe messages,
	// immediately adjacent to dirtying each buffer, so a record and its
	// dirty state always land in the same CP generation. A SnapRestore
	// landing mid-op closes the volume's gate: the touched stripes abort,
	// the reservation is released, and the whole op retries after the
	// restore commits — re-appending already-logged blocks is idempotent
	// (same content), and the pre-restore records are discarded identically
	// in the live and replay legs.
	var stalled Duration
	v := m.a.Volume(lv)
	for {
		res, st := c.reserveLog(m, recBytes)
		stalled += st
		gated := false
		// Group contiguous blocks by owning stripe affinity: one message each.
		for lo := 0; lo < nblocks && !gated; {
			aff := m.stripeAff(lv, fbn+FBN(lo))
			hi := lo + 1
			for hi < nblocks && m.stripeAff(lv, fbn+FBN(hi)) == aff {
				hi++
			}
			lo0, hi0 := lo, hi
			m.call(c.t, aff, sim.CatClient, func(wt *sim.Thread) {
				// Gate check and appends share the message: no yield between
				// them, so no write record can follow an unapplied restore
				// record.
				if v.RestorePending() {
					gated = true
					return
				}
				wt.Consume(sim.Duration(hi0-lo0) * sys.cfg.Costs.ClientPerBlock)
				f := v.LookupFile(li)
				if f == nil {
					panic(fmt.Sprintf("wafl: write to nonexistent ino %d", ino))
				}
				for b := lo0; b < hi0; b++ {
					// Post-recovery write path: install the block's existing
					// location (and the indirect path) so the overwrite frees
					// the old block instead of leaking it.
					v.EnsureL0Resident(f, fbn+FBN(b))
					// Log + dirty with no simulation primitive in between:
					// atomic with respect to CP freezes. Records carry
					// member-local coordinates.
					res.Append(nvlog.Record{
						Kind: nvlog.OpWrite, Vol: uint32(lv), Ino: li,
						FBN: fbn + FBN(b), Data: blocks[b], LogicalBytes: block.Size,
					})
					f.WriteBlock(fbn+FBN(b), blocks[b])
					if m.bc != nil {
						// A freshly written block is buffer-cache resident.
						m.bc.Insert(bcache.Key{Vol: lv, Ino: li, FBN: fbn + FBN(b)})
					}
				}
				v.MarkDirty(f)
			})
			lo = hi
		}
		res.Release()
		if !gated {
			break
		}
		rst := c.t.Now()
		c.stallRestore(m)
		stalled += Duration(c.t.Now() - rst)
	}
	// Landed writes convert this file's ingest reservation (if it was
	// placed) into consumption the free-space counters now carry.
	m.consumePlacement(lv, li, int64(nblocks))
	if !m.log.HasFrozen() {
		m.maybeTriggerCP()
	}
	lat := Duration(c.t.Now() - start)
	if tr := c.t.Tracer(); tr != nil {
		tr.SpanArg(obs.PidThreads, c.t.TrackID(), "client", "write",
			int64(start), int64(c.t.Now()), int64(nblocks))
		tr.Observe("client.write", int64(lat))
	}
	c.Ops++
	c.Blocks += uint64(nblocks)
	m.opsDone++
	m.blocksW += uint64(nblocks)
	m.stallTime += stalled
	m.lat.Observe(int64(lat))
	return lat
}

// admitBulk runs the bulk-class admission gate against member m's NVRAM
// watermarks: it returns true when the op may proceed (possibly after
// delaying), false when the op is shed. Latency-sensitive ops never pass
// through here. The bulkHeld latch provides back-to-back-CP hysteresis:
// once bulk is held it stays held until the active half is below ResumeAt
// AND no frozen half is draining, so the fullness cliff at a half-switch
// does not reopen the gate while the CP is still paying down the log.
func (c *ClientCtx) admitBulk(m *Member) bool {
	ac := &c.sys.cfg.Admission
	if !ac.Enabled {
		return true
	}
	var delayed Duration
	for {
		full := m.log.Fullness()
		if m.bulkHeld {
			if full < ac.ResumeAt && !m.log.HasFrozen() {
				m.bulkHeld = false
			}
		} else if full >= ac.BulkDelayAt {
			m.bulkHeld = true
		}
		if !m.bulkHeld {
			return true
		}
		if full >= ac.BulkShedAt || (ac.MaxDelay > 0 && delayed >= ac.MaxDelay) {
			c.Shed++
			m.shedOps++
			m.maybeTriggerCP()
			if tr := c.t.Tracer(); tr != nil {
				tr.Instant(obs.PidThreads, c.t.TrackID(), "client", "bulk shed", int64(c.t.Now()))
			}
			return false
		}
		// Delay round: nudge a CP if none is draining, sleep, re-check.
		start := c.t.Now()
		if !m.log.HasFrozen() {
			m.maybeTriggerCP()
		}
		c.t.Sleep(ac.DelayStep)
		d := Duration(c.t.Now() - start)
		delayed += d
		c.AdmitDelay += d
		m.admitDelay += d
		if tr := c.t.Tracer(); tr != nil {
			tr.Span(obs.PidThreads, c.t.TrackID(), "client", "admission delay",
				int64(start), int64(c.t.Now()))
			tr.Observe("client.admit", int64(d))
		}
	}
}

// WriteBulk performs a bulk-class write: identical to Write except it is
// subject to admission control — under NVRAM pressure the op is delayed,
// and past the shed watermark it is refused outright. Returns the op
// latency (including any admission delay) and whether the write was
// admitted; a shed write performed no work and was not acknowledged.
// Latency-sensitive clients use Write, which is never gated.
func (c *ClientCtx) WriteBulk(vol int, ino uint64, fbn FBN, nblocks int) (Duration, bool) {
	m, _, _ := c.sys.resolve(vol, ino)
	start := c.t.Now()
	if !c.admitBulk(m) {
		// A refused op still costs the client round trip. Consuming
		// simulated time here also keeps a hammering retry loop from
		// livelocking the single-threaded simulation.
		c.t.Consume(c.sys.cfg.Costs.ClientOp)
		return Duration(c.t.Now() - start), false
	}
	c.WriteTag(vol, ino, fbn, nblocks, 0)
	return Duration(c.t.Now() - start), true
}

// Read performs one client read of nblocks blocks at fbn, demand-loading
// missing blocks from the drives with timed I/O.
func (c *ClientCtx) Read(vol int, ino uint64, fbn FBN, nblocks int) Duration {
	sys := c.sys
	m, lv, li := sys.resolve(vol, ino)
	start := c.t.Now()
	v := m.a.Volume(lv)
	for b := 0; b < nblocks; b++ {
		fbn := fbn + FBN(b)
		m.call(c.t, m.stripeAff(lv, fbn), sim.CatClient, func(wt *sim.Thread) {
			wt.Consume(sys.cfg.Costs.ClientPerBlock)
			f := v.LookupFile(li)
			if f == nil {
				return
			}
			if m.bc == nil {
				// Pre-cache behavior: demand-load installs into the
				// in-memory tree forever, so a block read once never pays
				// media again.
				v.ReadFileBlock(wt, f, fbn)
				return
			}
			// Buffer-cache read path: residency decides whether the read
			// pays media latency; the in-memory trees stay the content
			// authority but no longer model an unbounded cache.
			key := bcache.Key{Vol: lv, Ino: li, FBN: fbn}
			if m.bc.Touch(key) {
				if tr := wt.Tracer(); tr != nil {
					tr.Instant(obs.PidThreads, wt.TrackID(), "client", "bcache hit", int64(wt.Now()))
				}
				return // memory hit: no media I/O
			}
			miss := wt.Now()
			v.ReadMediaBlock(wt, f, fbn)
			m.bc.Insert(key)
			if tr := wt.Tracer(); tr != nil {
				tr.Span(obs.PidThreads, wt.TrackID(), "client", "bcache miss",
					int64(miss), int64(wt.Now()))
				tr.Observe("client.bcache.miss", int64(wt.Now()-miss))
			}
		})
	}
	c.t.Consume(sys.cfg.Costs.ClientOp)
	lat := Duration(c.t.Now() - start)
	if tr := c.t.Tracer(); tr != nil {
		tr.SpanArg(obs.PidThreads, c.t.TrackID(), "client", "read",
			int64(start), int64(c.t.Now()), int64(nblocks))
		tr.Observe("client.read", int64(lat))
	}
	c.Ops++
	m.opsDone++
	m.blocksR += uint64(nblocks)
	m.lat.Observe(int64(lat))
	return lat
}

// Create makes a new file on the (globally addressed) volume and returns
// its handle: the member-local inode number with the owning constituent id
// in the top bits (bare inode on member 0). The create executes first
// (assigning the inode) and is then logged to NVRAM with that inode
// number, so replay is exact; the client is not acknowledged until the
// record is logged.
func (c *ClientCtx) Create(vol int, maxBlocks uint64) uint64 {
	sys := c.sys
	m, lv := sys.volMember(vol)
	start := c.t.Now()
	var ino uint64
	v := m.a.Volume(lv)
	// Reserve the record's NVRAM space first so the append can run inside
	// the affinity message, atomically adjacent to the namespace change —
	// a restore record logged by another client can then never separate the
	// create from its record.
	res, _ := c.reserveLog(m, nvlog.Record{Kind: nvlog.OpCreate}.Size())
	// Creates operate outside any single stripe: Volume Logical affinity.
	c.gatedCall(m, v, m.logicalAff(lv), func(wt *sim.Thread) {
		wt.Consume(sys.cfg.Costs.ClientOp)
		f := v.CreateFile(maxBlocks)
		ino = f.Ino()
		res.Append(nvlog.Record{Kind: nvlog.OpCreate, Vol: uint32(lv), Ino: ino, MaxBlocks: maxBlocks})
	})
	res.Release()
	// Bind the oldest unbound placement charge (if the volume came from
	// PlaceFile) to this inode, so its writes decay the reservation.
	m.bindPlacement(lv, ino)
	c.t.Consume(sys.cfg.Costs.ClientOp)
	c.Ops++
	m.opsDone++
	m.lat.Observe(int64(c.t.Now() - start))
	if !m.log.HasFrozen() {
		m.maybeTriggerCP()
	}
	return memberHandle(m.id, ino)
}

// CreatePlaced creates a new file on the member the placement policy
// picks (capacity- and load-aware; see System.PlaceFile) and returns the
// chosen global volume along with the file handle.
func (c *ClientCtx) CreatePlaced(maxBlocks uint64) (vol int, ino uint64) {
	vol = c.sys.PlaceFile(maxBlocks)
	return vol, c.Create(vol, maxBlocks)
}

// Delete removes a file. The namespace change is immediate; the file's
// blocks are reclaimed by the next consistency point (deferred deletion).
// Returns false if the inode does not exist.
func (c *ClientCtx) Delete(vol int, ino uint64) bool {
	sys := c.sys
	m, lv, li := sys.resolve(vol, ino)
	start := c.t.Now()
	var ok bool
	v := m.a.Volume(lv)
	res, _ := c.reserveLog(m, nvlog.Record{Kind: nvlog.OpDelete}.Size())
	c.gatedCall(m, v, m.logicalAff(lv), func(wt *sim.Thread) {
		wt.Consume(sys.cfg.Costs.ClientOp / 2)
		ok = v.DeleteFile(li)
		if ok {
			res.Append(nvlog.Record{Kind: nvlog.OpDelete, Vol: uint32(lv), Ino: li})
		}
	})
	res.Release()
	if ok {
		// Refund whatever part of the file's ingest reservation its writes
		// never consumed; without this, create/delete churn starves the
		// placement score's reservation-net free space.
		m.refundPlacement(lv, li)
		if m.bc != nil {
			// Coherence: a later create can reuse this inode number; stale
			// resident blocks must not satisfy its reads.
			m.bc.InvalidateFile(lv, li)
		}
		if !m.log.HasFrozen() {
			m.maybeTriggerCP()
		}
	}
	c.t.Consume(sys.cfg.Costs.ClientOp / 2)
	c.Ops++
	m.opsDone++
	m.lat.Observe(int64(c.t.Now() - start))
	return ok
}

// Getattr models a metadata read: a cheap operation in the volume's
// logical affinity.
func (c *ClientCtx) Getattr(vol int, ino uint64) Duration {
	sys := c.sys
	m, lv, li := sys.resolve(vol, ino)
	start := c.t.Now()
	v := m.a.Volume(lv)
	m.call(c.t, m.logicalAff(lv), sim.CatClient, func(wt *sim.Thread) {
		wt.Consume(sys.cfg.Costs.ClientOp / 2)
		v.LookupFile(li)
	})
	c.t.Consume(sys.cfg.Costs.ClientOp / 2)
	c.Ops++
	m.opsDone++
	m.lat.Observe(int64(c.t.Now() - start))
	return Duration(c.t.Now() - start)
}

// SnapCreate takes a point-in-time snapshot of the volume and returns its
// ID. The request is NVRAM-logged and then driven to durability: the call
// blocks until a consistency point has materialized the image and committed
// it to the superblock-reachable metadata, so an acknowledged SnapCreate
// always survives a crash.
func (c *ClientCtx) SnapCreate(vol int) uint64 {
	sys := c.sys
	m, lv := sys.volMember(vol)
	start := c.t.Now()
	var id uint64
	v := m.a.Volume(lv)
	res, _ := c.reserveLog(m, nvlog.Record{Kind: nvlog.OpSnapCreate}.Size())
	c.gatedCall(m, v, m.logicalAff(lv), func(wt *sim.Thread) {
		wt.Consume(sys.cfg.Costs.ClientOp)
		id = v.RequestSnapshot()
		res.Append(nvlog.Record{Kind: nvlog.OpSnapCreate, Vol: uint32(lv), Ino: id})
	})
	res.Release()
	m.engine.RequestCP()
	for !v.SnapshotExists(id) {
		m.engine.WaitCPDone(c.t)
		if !v.SnapshotExists(id) {
			m.engine.RequestCP()
		}
	}
	c.t.Consume(sys.cfg.Costs.ClientOp)
	lat := Duration(c.t.Now() - start)
	if tr := c.t.Tracer(); tr != nil {
		tr.SpanArg(obs.PidThreads, c.t.TrackID(), "client", "snap-create",
			int64(start), int64(c.t.Now()), int64(id))
	}
	c.Ops++
	m.opsDone++
	m.lat.Observe(int64(lat))
	return id
}

// SnapDelete removes a snapshot. The namespace change is immediate and the
// op is NVRAM-logged; exclusively-held blocks are reclaimed by the next
// consistency point (deferred, like file deletion). Returns false if the
// snapshot does not exist.
func (c *ClientCtx) SnapDelete(vol int, id uint64) bool {
	sys := c.sys
	m, lv := sys.volMember(vol)
	start := c.t.Now()
	var ok bool
	v := m.a.Volume(lv)
	res, _ := c.reserveLog(m, nvlog.Record{Kind: nvlog.OpSnapDelete}.Size())
	c.gatedCall(m, v, m.logicalAff(lv), func(wt *sim.Thread) {
		wt.Consume(sys.cfg.Costs.ClientOp / 2)
		ok = v.DeleteSnapshot(id)
		if ok {
			res.Append(nvlog.Record{Kind: nvlog.OpSnapDelete, Vol: uint32(lv), Ino: id})
		}
	})
	res.Release()
	if ok {
		if !m.log.HasFrozen() {
			m.maybeTriggerCP()
		}
	}
	c.t.Consume(sys.cfg.Costs.ClientOp / 2)
	c.Ops++
	m.opsDone++
	m.lat.Observe(int64(c.t.Now() - start))
	return ok
}

// SnapRestore reverts the volume to snapshot id without copying data
// blocks: the request is NVRAM-logged and queued, volatile state is
// discarded immediately, and the next consistency point rebinds the active
// file system to the snapshot's frozen image (O(metadata) — bitmap words
// plus inode-file blocks). The volume's client gate closes at the request
// and reopens when the applying CP commits; this call blocks until then, so
// an acknowledged SnapRestore always survives a crash. Returns false if the
// snapshot does not exist (nor is pending).
func (c *ClientCtx) SnapRestore(vol int, id uint64) bool {
	sys := c.sys
	m, lv := sys.volMember(vol)
	start := c.t.Now()
	var ok bool
	v := m.a.Volume(lv)
	res, _ := c.reserveLog(m, nvlog.Record{Kind: nvlog.OpSnapRestore}.Size())
	m.call(c.t, m.logicalAff(lv), sim.CatClient, func(wt *sim.Thread) {
		wt.Consume(sys.cfg.Costs.ClientOp)
		ok = v.RequestRestore(id)
		if ok {
			res.Append(nvlog.Record{Kind: nvlog.OpSnapRestore, Vol: uint32(lv), Ino: id})
		}
	})
	res.Release()
	if ok {
		m.engine.RequestCP()
		for v.RestorePending() {
			m.engine.WaitCPDone(c.t)
			if v.RestorePending() {
				m.engine.RequestCP()
			}
		}
	}
	c.t.Consume(sys.cfg.Costs.ClientOp)
	lat := Duration(c.t.Now() - start)
	if tr := c.t.Tracer(); tr != nil {
		tr.SpanArg(obs.PidThreads, c.t.TrackID(), "client", "snap-restore",
			int64(start), int64(c.t.Now()), int64(id))
		tr.Observe("client.restore", int64(lat))
	}
	c.Ops++
	m.opsDone++
	m.lat.Observe(int64(lat))
	return ok
}

// CloneCreate binds a free clone slot on the parent's member as a writable
// clone of snapshot snapID and returns the clone's global volume index. The
// slot scan, parent delete guard, and NVRAM record land in one affinity
// message, so two in-flight creates can never race for a slot or a deleted
// snapshot. Blocks until a consistency point has materialized the bind (the
// clone starts by sharing every base block with the parent snapshot —
// no data is copied). Returns (-1, false) if the snapshot does not exist or
// every clone slot on the member is taken.
func (c *ClientCtx) CloneCreate(parentVol int, snapID uint64) (int, bool) {
	sys := c.sys
	m, plv := sys.volMember(parentVol)
	start := c.t.Now()
	pv := m.a.Volume(plv)
	slot := -1
	res, _ := c.reserveLog(m, nvlog.Record{Kind: nvlog.OpCloneCreate}.Size())
	c.gatedCall(m, pv, m.logicalAff(plv), func(wt *sim.Thread) {
		wt.Consume(sys.cfg.Costs.ClientOp)
		if !pv.SnapshotExists(snapID) {
			return
		}
		for s := sys.cfg.Volumes; s < sys.cfg.Volumes+sys.cfg.CloneSlots; s++ {
			if m.a.Volume(s).CloneSlotFree() {
				slot = s
				break
			}
		}
		if slot < 0 {
			return
		}
		m.a.Volume(slot).RequestCloneBind(plv, snapID)
		pv.AddCloneRef(snapID)
		res.Append(nvlog.Record{
			Kind: nvlog.OpCloneCreate, Vol: uint32(slot), Ino: snapID, FBN: FBN(plv),
		})
	})
	res.Release()
	if slot < 0 {
		c.Ops++
		m.opsDone++
		return -1, false
	}
	cv := m.a.Volume(slot)
	m.engine.RequestCP()
	for !cv.IsClone() {
		m.engine.WaitCPDone(c.t)
		if !cv.IsClone() {
			m.engine.RequestCP()
		}
	}
	c.t.Consume(sys.cfg.Costs.ClientOp)
	lat := Duration(c.t.Now() - start)
	if tr := c.t.Tracer(); tr != nil {
		tr.SpanArg(obs.PidThreads, c.t.TrackID(), "client", "clone-create",
			int64(start), int64(c.t.Now()), int64(slot))
		tr.Observe("client.clone", int64(lat))
	}
	c.Ops++
	m.opsDone++
	m.lat.Observe(int64(lat))
	return sys.globalVol(m.id, slot), true
}

// CloneSplit starts splitting the clone from its parent snapshot: each
// subsequent consistency point block-copies a bounded batch of still-shared
// base blocks through the normal COW write path until none remain, then the
// parent holds and delete guard drop. The call is NVRAM-logged and returns
// as soon as the split is queued (the copy is background work); poll
// System.CloneSplitDone or Flush to drive it to completion. Returns false if
// the volume is not a clone.
func (c *ClientCtx) CloneSplit(vol int) bool {
	sys := c.sys
	m, lv := sys.volMember(vol)
	start := c.t.Now()
	var ok bool
	v := m.a.Volume(lv)
	res, _ := c.reserveLog(m, nvlog.Record{Kind: nvlog.OpCloneSplit}.Size())
	c.gatedCall(m, v, m.logicalAff(lv), func(wt *sim.Thread) {
		wt.Consume(sys.cfg.Costs.ClientOp)
		ok = v.StartSplit()
		if ok {
			res.Append(nvlog.Record{Kind: nvlog.OpCloneSplit, Vol: uint32(lv)})
		}
	})
	res.Release()
	if ok {
		m.engine.RequestCP()
	}
	c.t.Consume(sys.cfg.Costs.ClientOp)
	c.Ops++
	m.opsDone++
	m.lat.Observe(int64(c.t.Now() - start))
	return ok
}

// SnapRead reads nblocks blocks at fbn of inode ino from a snapshot's
// frozen image, with timed media walks (snapshot trees live only on media).
// Returns false if the snapshot, or the inode within it, does not exist.
func (c *ClientCtx) SnapRead(vol int, snapID, ino uint64, fbn FBN, nblocks int) (Duration, bool) {
	sys := c.sys
	m, lv, li := sys.resolve(vol, ino)
	start := c.t.Now()
	ok := true
	v := m.a.Volume(lv)
	for b := 0; b < nblocks; b++ {
		fbn := fbn + FBN(b)
		m.call(c.t, m.logicalAff(lv), sim.CatClient, func(wt *sim.Thread) {
			wt.Consume(sys.cfg.Costs.ClientPerBlock)
			if _, found := v.SnapReadBlock(wt, snapID, li, fbn); !found {
				ok = false
			}
		})
	}
	c.t.Consume(sys.cfg.Costs.ClientOp)
	lat := Duration(c.t.Now() - start)
	if tr := c.t.Tracer(); tr != nil {
		tr.SpanArg(obs.PidThreads, c.t.TrackID(), "client", "snap-read",
			int64(start), int64(c.t.Now()), int64(nblocks))
	}
	c.Ops++
	m.opsDone++
	m.blocksR += uint64(nblocks)
	m.lat.Observe(int64(lat))
	return lat, ok
}

// VerifyRead returns the committed-or-cached content of a block without
// timing effects (nil for holes) — the test/validation path.
func (sys *System) VerifyRead(vol int, ino uint64, fbn FBN) []byte {
	m, lv, li := sys.resolve(vol, ino)
	v := m.a.Volume(lv)
	f := v.LookupFile(li)
	if f == nil {
		return nil
	}
	return v.ReadFileBlock(nil, f, fbn)
}

// CreateFileDirect makes a file without logging or timing (test setup) and
// returns its handle (member-tagged; bare inode on member 0).
func (sys *System) CreateFileDirect(vol int, maxBlocks uint64) uint64 {
	m, lv := sys.volMember(vol)
	ino := m.a.Volume(lv).CreateFile(maxBlocks).Ino()
	m.bindPlacement(lv, ino)
	return memberHandle(m.id, ino)
}

// SnapVerifyRead returns block fbn of inode ino from a snapshot's frozen
// image without timing effects — the test/oracle path. The second result is
// false if the snapshot or the inode does not exist in it; a nil slice with
// true means a hole in the frozen image.
func (sys *System) SnapVerifyRead(vol int, snapID, ino uint64, fbn FBN) ([]byte, bool) {
	m, lv, li := sys.resolve(vol, ino)
	return m.a.Volume(lv).SnapReadBlock(nil, snapID, li, fbn)
}

// SnapshotExists reports whether the volume has a materialized snapshot id.
func (sys *System) SnapshotExists(vol int, id uint64) bool {
	m, lv := sys.volMember(vol)
	return m.a.Volume(lv).SnapshotExists(id)
}

// SnapshotIDs returns the volume's materialized snapshot IDs, ascending.
func (sys *System) SnapshotIDs(vol int) []uint64 {
	m, lv := sys.volMember(vol)
	return m.a.Volume(lv).SnapshotIDs()
}

// FreeSpace is a per-volume free-space breakdown over the VVBN space:
// Active blocks are in the live file system, SnapOnly blocks are held only
// by snapshots (active bit clear, summary bit set), Free blocks are
// allocatable (clear in both maps).
type FreeSpace struct {
	Total    uint64
	Active   uint64
	SnapOnly uint64
	Free     uint64

	// CloneHeld counts base VVBNs a bound clone still shares with its parent
	// snapshot (their physical homes are parent-owned); SplitPending counts
	// the subset still live in the active map that a running split has yet to
	// block-copy. Both are zero for ordinary volumes.
	CloneHeld    uint64
	SplitPending uint64
}

// FreeSpaceBreakdown computes the volume's active / snap-held / free block
// counts from the live activemap and snapshot summary map, plus the
// clone-held and split-pending counts for clone volumes.
func (sys *System) FreeSpaceBreakdown(vol int) FreeSpace {
	m, lv := sys.volMember(vol)
	v := m.a.Volume(lv)
	total := v.VVBNBlocks()
	free, _ := v.Activemap.CountFreeNotIn(v.Summary, 0, total)
	active := v.Activemap.Used()
	fsb := FreeSpace{
		Total:    total,
		Active:   active,
		SnapOnly: total - active - free,
		Free:     free,
	}
	if st := v.CloneState(); st != nil {
		fsb.CloneHeld = st.Held()
		if st.Splitting {
			fsb.SplitPending = v.CloneLiveBase()
		}
	}
	return fsb
}
