package wafl

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// runTraced builds a system with the given tracing setting, runs the
// standard small sequential-write workload, and returns the system and its
// measurement. The workload is fully deterministic for a fixed config.
func runTraced(t *testing.T, trace bool) (*System, Results) {
	t.Helper()
	cfg := smallConfig()
	cfg.Trace = trace
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ino := sys.CreateFileDirect(0, 1<<14)
	sys.ClientThread("writer", func(c *ClientCtx) {
		i := 0
		for c.Alive() {
			c.Write(0, ino, FBN((i*8)%8192), 8)
			i++
		}
	})
	res := sys.Measure(50*Millisecond, 150*Millisecond)
	return sys, res
}

// TestTracingDeterminism is the regression guard for the observability
// spine's core contract: enabling tracing must not change simulation
// results in any way — same event count, same throughput, same latencies.
func TestTracingDeterminism(t *testing.T) {
	sysOff, resOff := runTraced(t, false)
	evOff := sysOff.s.Events()
	sysOff.Shutdown()
	sysOn, resOn := runTraced(t, true)
	evOn := sysOn.s.Events()
	defer sysOn.Shutdown()

	// Results carries its window histogram as a pointer; compare values.
	resOff.lat, resOn.lat = nil, nil
	if resOff != resOn {
		t.Fatalf("tracing changed results:\noff: %+v\non:  %+v", resOff, resOn)
	}
	if evOff != evOn {
		t.Fatalf("tracing changed simulation event count: off=%d on=%d", evOff, evOn)
	}
	if sysOff.Tracer() != nil {
		t.Fatal("tracing off but Tracer() non-nil")
	}
	if sysOn.Tracer() == nil || sysOn.Tracer().Len() == 0 {
		t.Fatal("tracing on but no events recorded")
	}
}

func TestTraceExport(t *testing.T) {
	sys, _ := runTraced(t, true)
	defer sys.Shutdown()

	var buf bytes.Buffer
	if err := sys.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Pid  int32          `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}

	// Timestamps must be sorted; distinct tracks must exist for cleaner
	// threads, client ops, affinities, CP phases, and drives.
	lastTs := -1.0
	threadNames := map[string]bool{}
	pids := map[int32]bool{}
	eventNames := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			if e.Name == "thread_name" {
				if n, ok := e.Args["name"].(string); ok {
					threadNames[n] = true
				}
			}
			continue
		}
		if e.Ts < lastTs {
			t.Fatalf("events not timestamp-ordered at %q: %v < %v", e.Name, e.Ts, lastTs)
		}
		lastTs = e.Ts
		pids[e.Pid] = true
		eventNames[e.Name] = true
	}

	hasPrefix := func(prefix string) bool {
		for n := range threadNames {
			if strings.HasPrefix(n, prefix) {
				return true
			}
		}
		return false
	}
	for _, prefix := range []string{"cleaner-", "waff-worker-", "core", "cp-engine", "writer"} {
		if !hasPrefix(prefix) {
			t.Fatalf("no track named %s*; tracks: %v", prefix, threadNames)
		}
	}
	// Affinity tracks are interned on first message, so assert on the
	// stripe and range affinities the write workload necessarily exercises.
	hasSubstr := func(sub string) bool {
		for n := range threadNames {
			if strings.Contains(n, sub) {
				return true
			}
		}
		return false
	}
	if !hasSubstr(".stripe") || !hasSubstr(".range") {
		t.Fatalf("no stripe/range affinity tracks; tracks: %v", threadNames)
	}
	for _, pid := range []int32{1, 2, 3, 4, 5, 6} { // cores..infra
		if !pids[pid] {
			t.Fatalf("no events under pid %d; pids: %v", pid, pids)
		}
	}
	for _, name := range []string{"write", "CP", "clean", "enqueue"} {
		if !eventNames[name] {
			t.Fatalf("no %q events in trace", name)
		}
	}

	if !strings.Contains(sys.TraceReport(), "client.write") {
		t.Fatalf("TraceReport lacks client.write histogram:\n%s", sys.TraceReport())
	}
}

// TestTraceForensics verifies the double-allocation forensics moved from
// the old WAFL_TRACE global map onto the tracer: committed blocks carry a
// note naming the committing context.
func TestTraceForensics(t *testing.T) {
	sys, _ := runTraced(t, true)
	defer sys.Shutdown()
	tr := sys.Tracer()
	// Find any committed block by scanning the activemap for a set bit.
	found := false
	for bn := uint64(1); bn < 4096 && !found; bn++ {
		if note := tr.BlockNote(bn); strings.Contains(note, "commitBucket") {
			found = true
		}
	}
	if !found {
		t.Fatal("no commitBucket forensic note recorded for any early block")
	}
}
