package wafl

import (
	"testing"
)

// verifyFreeIndexes checks every live volume's free-space index against a
// full recount of its activemap and summary map.
func verifyFreeIndexes(t *testing.T, sys *System, label string) {
	t.Helper()
	for _, v := range sys.m0().a.Volumes() {
		if errs := v.FreeIdx.Verify(); len(errs) != 0 {
			t.Fatalf("%s: vol %d free-space index inconsistent: %v", label, v.ID(), errs)
		}
	}
}

// TestFreeIndexConsistentUnderChurn drives a seeded random mix of
// allocations (writes), frees (overwrites and file deletes), snapshot
// creates (summary OrFrom folds) and snapshot deletes (summary reclaim
// clears), then a crash and recovery (mount-time rebuild) — and requires
// the per-vregion counters and the free-words summary bitmap to equal a
// full recount at every checkpoint. This is the system-level half of the
// property test: every transition path the real allocator exercises must
// feed the index.
func TestFreeIndexConsistentUnderChurn(t *testing.T) {
	sys, ino := newCrashSystem(t, crashConfig())
	var snaps []uint64
	sys.ClientThread("churn", func(c *ClientCtx) {
		for round := 0; c.Alive() && round < 6; round++ {
			for i := 0; i < 150; i++ {
				c.Write(0, ino, FBN(c.Rand(2048)), 2)
			}
			// Rotate a two-deep snapshot ring so folds and reclaims both
			// happen against a populated summary map.
			snaps = append(snaps, c.SnapCreate(0))
			if len(snaps) > 2 {
				c.SnapDelete(0, snaps[0])
				snaps = snaps[1:]
			}
		}
	})
	sys.Run(5 * Second)
	verifyFreeIndexes(t, sys, "mid-churn")
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	verifyFreeIndexes(t, sys, "after flush")
	if rep := sys.Fsck(); !rep.OK() {
		t.Fatalf("fsck after churn: %s", rep)
	}

	// Crash and recover: the mounted volumes rebuild their indexes word-wise
	// from media, and further churn keeps them consistent.
	sys.Crash()
	sys2, err := sys.Recover()
	if err != nil {
		t.Fatal(err)
	}
	verifyFreeIndexes(t, sys2, "after recovery")
	sys2.ClientThread("churn2", func(c *ClientCtx) {
		for i := 0; c.Alive() && i < 300; i++ {
			c.Write(0, ino, FBN(c.Rand(2048)), 2)
		}
	})
	sys2.Run(2 * Second)
	if err := sys2.Flush(); err != nil {
		t.Fatal(err)
	}
	verifyFreeIndexes(t, sys2, "after post-recovery churn")
	if rep := sys2.Fsck(); !rep.OK() {
		t.Fatalf("fsck after recovery churn: %s", rep)
	}
}

// TestFsckCatchesFreeIndexCorruption injects drift into both levels of a
// live volume's free-space index and requires Fsck to flag each as IdxErrs.
func TestFsckCatchesFreeIndexCorruption(t *testing.T) {
	sys, ino := newCrashSystem(t, crashConfig())
	sys.ClientThread("writer", func(c *ClientCtx) {
		for i := 0; c.Alive() && i < 200; i++ {
			c.Write(0, ino, FBN(c.Rand(1024)), 2)
		}
	})
	sys.Run(2 * Second)
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	if rep := sys.Fsck(); !rep.OK() {
		t.Fatalf("baseline fsck: %s", rep)
	}

	idx := sys.m0().a.Volume(0).FreeIdx
	idx.CorruptRegionCounter(0, -7)
	if rep := sys.Fsck(); rep.IdxErrs == 0 || rep.OK() {
		t.Fatalf("fsck missed corrupted region counter: %s", rep)
	}
	idx.CorruptRegionCounter(0, 7)

	idx.CorruptFreeWord(3)
	if rep := sys.Fsck(); rep.IdxErrs == 0 || rep.OK() {
		t.Fatalf("fsck missed corrupted free-words bit: %s", rep)
	}
	idx.CorruptFreeWord(3)

	if rep := sys.Fsck(); !rep.OK() {
		t.Fatalf("fsck after restoring corruption: %s", rep)
	}
}
