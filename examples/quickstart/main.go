// Quickstart: build a simulated storage server, run a write workload
// through the White Alligator allocator, and read the same metrics the
// paper reports — throughput, latency, and per-component core usage.
package main

import (
	"fmt"

	"wafl"
)

func main() {
	// A 20-core all-SSD system, like the paper's mid-range testbed.
	cfg := wafl.DefaultConfig()
	sys, err := wafl.NewSystem(cfg)
	if err != nil {
		panic(err)
	}

	// One file per volume, one sequential-write client per file.
	for vol := 0; vol < cfg.Volumes; vol++ {
		ino := sys.CreateFileDirect(vol, 8192)
		vol := vol
		sys.ClientThread(fmt.Sprintf("client-%d", vol), func(c *wafl.ClientCtx) {
			fbn := wafl.FBN(0)
			for c.Alive() {
				c.Write(vol, ino, fbn, 8) // one 32 KiB write op
				fbn = (fbn + 8) % 8000
			}
		})
	}

	// Run 100ms of simulated warmup, then measure 400ms.
	res := sys.Measure(100*wafl.Millisecond, 400*wafl.Millisecond)
	fmt.Println("results:", res)
	fmt.Printf("write allocation used %.2f cores (%.2f cleaner + %.2f infrastructure)\n",
		res.Cores.WriteAllocation(), res.Cores.Cleaner, res.Cores.Infra)
	fmt.Printf("%d consistency points committed, %.0f%% full-stripe writes\n",
		res.CPs, res.FullStripe*100)

	// The committed image is a real file system: check it.
	if err := sys.Quiesce(); err != nil {
		panic(err)
	}
	fmt.Println(sys.Fsck())
}
