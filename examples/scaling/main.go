// Scaling: reproduce the paper's headline result interactively — the same
// sequential-write workload under the four §V-A parallelization
// permutations, showing how cleaner-thread and infrastructure parallelism
// compose (Figure 4: +7% infra-only, +82% cleaners-only, +274% both).
package main

import (
	"fmt"

	"wafl"
	"wafl/workload"
)

func main() {
	permutations := []struct {
		name     string
		infra    bool
		cleaners int
	}{
		{"serialized (pre-2008 style baseline)", false, 1},
		{"parallel infrastructure only", true, 1},
		{"parallel cleaner threads only", false, 6},
		{"White Alligator (both parallel)", true, 6},
	}
	var base float64
	for _, p := range permutations {
		cfg := wafl.DefaultConfig()
		cfg.Allocator.InfraParallel = p.infra
		cfg.Allocator.InitialCleaners = p.cleaners
		cfg.Allocator.MaxCleaners = p.cleaners
		sys, err := wafl.NewSystem(cfg)
		if err != nil {
			panic(err)
		}
		workload.DefaultSeqWrite().Attach(sys)
		res := sys.Measure(150*wafl.Millisecond, 400*wafl.Millisecond)
		if base == 0 {
			base = res.OpsPerSec
		}
		fmt.Printf("%-40s %7.0f ops/s (%+.0f%%)  walloc=%.2f cores (%.2f cleaner + %.2f infra)\n",
			p.name, res.OpsPerSec, (res.OpsPerSec/base-1)*100,
			res.Cores.WriteAllocation(), res.Cores.Cleaner, res.Cores.Infra)
		sys.Shutdown()
	}
	fmt.Println("\npaper (Fig 4): +7% infra-only, +82% cleaners-only, +274% both;")
	fmt.Println("full parallel uses ~6.2 write-allocation cores (2.35 infra + 3.88 cleaners)")
}
