// Dynamictuning: watch the §V-B dynamic cleaner-thread tuner react to a
// changing workload — ramping threads up under a write burst and parking
// them when the load drops — and compare it against static thread counts.
package main

import (
	"fmt"

	"wafl"
	"wafl/workload"
)

func main() {
	cfg := wafl.DefaultConfig()
	cfg.Allocator.Dynamic = true
	cfg.Allocator.InitialCleaners = 1
	cfg.Allocator.MaxCleaners = 6
	sys, err := wafl.NewSystem(cfg)
	if err != nil {
		panic(err)
	}

	// Phase 1: light load — the tuner should stay near one thread.
	w := workload.DefaultSeqWrite()
	w.Clients = 4
	w.Attach(sys)
	sys.Run(300 * wafl.Millisecond)
	fmt.Printf("light load (4 clients): %d active cleaner threads\n", sys.ActiveCleaners())

	// Phase 2: heavy burst — more clients pile on.
	burst := workload.DefaultSeqWrite()
	burst.Clients = 32
	burst.Attach(sys)
	sys.Run(400 * wafl.Millisecond)
	fmt.Printf("heavy burst (36 clients): %d active cleaner threads\n", sys.ActiveCleaners())

	// Print the tuner's decision trace.
	fmt.Println("\ntuner trace (50ms optimization period, activate >90%, park <50%):")
	for _, s := range sys.TunerSamples() {
		fmt.Printf("  t=%-12v utilization=%4.0f%%  active=%d\n",
			wafl.Duration(s.At), s.Utilization*100, s.Active)
	}
	fmt.Println("\npaper §V-B: dynamic tuning matches the best static thread count at")
	fmt.Println("every load level by using fewer threads during lighter intervals")
}
