// Crashrecovery: demonstrate the consistency-point crash contract — a
// power loss mid-CP loses nothing that was acknowledged: the last committed
// superblock plus NVRAM log replay reconstruct every logged write, and the
// recovered image passes a full fsck.
package main

import (
	"fmt"

	"wafl"
)

func main() {
	cfg := wafl.DefaultConfig()
	cfg.PayloadBytes = 4096 // store full content so verification is byte-exact
	sys, err := wafl.NewSystem(cfg)
	if err != nil {
		panic(err)
	}

	ino := sys.CreateFileDirect(0, 4096)
	var acked int
	sys.ClientThread("writer", func(c *wafl.ClientCtx) {
		for i := 0; c.Alive() && i < 3000; i++ {
			c.Write(0, ino, wafl.FBN(i%2048), 2)
			acked = i + 1
		}
	})

	// Crash while CPs are mid-flight and the NVRAM log holds
	// not-yet-checkpointed operations.
	sys.Run(120 * wafl.Millisecond)
	fmt.Printf("crashing at t=%v: %d ops acknowledged, %d CPs committed, NVRAM non-empty\n",
		sys.Now(), acked, sys.CPCount())
	sys.Crash()

	rec, err := sys.Recover()
	if err != nil {
		panic(err)
	}
	fmt.Printf("mounted CP %d and replayed the NVRAM log\n", rec.CPCount())

	// Every acknowledged write must be intact.
	bad := 0
	for fbn := wafl.FBN(0); fbn < 2048; fbn++ {
		if rec.VerifyRead(0, ino, fbn) == nil {
			continue // hole: never written
		}
		if err := rec.VerifyAgainst(0, ino, fbn); err != nil {
			bad++
		}
	}
	fmt.Printf("content check: %d mismatches\n", bad)

	if err := rec.Quiesce(); err != nil {
		panic(err)
	}
	rep := rec.Fsck()
	fmt.Println("post-recovery", rep)
	if bad == 0 && rep.OK() {
		fmt.Println("OK: crash consistency held")
	}
}
