// History: walk the paper's §III evolution of WAFL write-allocation
// parallelism on the same workload —
//
//  1. pre-2008: inode cleaning runs inside the Serial affinity, excluding
//     ALL other file system work (even client reads and writes);
//  2. Data ONTAP 7.3 (2008): one cleaner thread runs in parallel with
//     Waffinity, but all metafile access is serialized;
//  3. Data ONTAP 8.1 (2011): White Alligator — parallel cleaner threads
//     over a parallelized, Waffinity-managed infrastructure.
package main

import (
	"fmt"

	"wafl"
	"wafl/workload"
)

func main() {
	type era struct {
		name string
		mut  func(*wafl.Config)
	}
	eras := []era{
		{"pre-2008: cleaning in the Serial affinity", func(c *wafl.Config) {
			c.Allocator.CleanInSerialAffinity = true
			c.Allocator.InfraParallel = false
			c.Allocator.InitialCleaners = 1
			c.Allocator.MaxCleaners = 1
		}},
		{"2008 (ONTAP 7.3): one cleaner thread, serialized metafiles", func(c *wafl.Config) {
			c.Allocator.InfraParallel = false
			c.Allocator.InitialCleaners = 1
			c.Allocator.MaxCleaners = 1
		}},
		{"2011 (ONTAP 8.1): White Alligator", func(c *wafl.Config) {
			c.Allocator.InfraParallel = true
			c.Allocator.InitialCleaners = 6
			c.Allocator.MaxCleaners = 6
		}},
	}
	var base float64
	for _, e := range eras {
		cfg := wafl.DefaultConfig()
		e.mut(&cfg)
		sys, err := wafl.NewSystem(cfg)
		if err != nil {
			panic(err)
		}
		workload.DefaultSeqWrite().Attach(sys)
		res := sys.Measure(150*wafl.Millisecond, 300*wafl.Millisecond)
		if base == 0 {
			base = res.OpsPerSec
		}
		fmt.Printf("%-60s %7.0f ops/s (%+5.0f%%)  lat p50=%v\n",
			e.name, res.OpsPerSec, (res.OpsPerSec/base-1)*100, res.LatP50)
		sys.Shutdown()
	}
	fmt.Println("\nSerial-affinity cleaning blocks client operations outright; the 2008")
	fmt.Println("model unblocks them but caps allocation at one thread plus serialized")
	fmt.Println("metafile access; White Alligator parallelizes both sides (paper §III-IV).")
}
