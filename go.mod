module wafl

go 1.22
