package workload

import (
	"fmt"
	"math"

	"wafl"
)

// Phase is one segment of an open-loop arrival schedule: for Dur, arrivals
// come at RateMul times the workload's base rate. Chaining phases builds
// diurnal curves (e.g. 0.5x night, 1x day, 1.5x evening) or bursts (1x,
// 4x, 1x); the schedule cycles until the run ends.
type Phase struct {
	Name    string
	Dur     wafl.Duration
	RateMul float64
}

// OpClass labels an arrived operation for QoS purposes.
type OpClass int

// Operation classes: latency-sensitive ops are never gated by admission
// control; bulk ops are delayed and shed under NVRAM pressure.
const (
	ClassLS OpClass = iota
	ClassBulk
)

// OpenLoop is the open-loop arrival workload: a Poisson arrival process
// (optionally phase-modulated) over thousands of lightweight client
// streams, multiplexed onto a small pool of simulated worker threads.
// Unlike the closed-loop generators, arrivals do not self-throttle — when
// the system falls behind, operations queue and sojourn time (completion
// minus arrival, queue wait included) grows without bound. That makes
// overload visible as tail latency rather than as throughput collapse,
// which is how production filers experience it.
//
// Each arrival is assigned a stream (its file), a class (latency-sensitive
// or bulk), and an op type (read or write). The two classes have separate
// FIFO queues and worker pools — the usual QoS structure — so admission
// backpressure applied to bulk writes parks only bulk workers and never
// head-of-line blocks a latency-sensitive op. Bulk writes go through
// WriteBulk and may be delayed or shed by admission control. Per-class
// sojourn histograms accumulate across the whole run.
type OpenLoop struct {
	Streams     int     // lightweight client streams (one small file each)
	Workers     int     // worker threads draining the latency-sensitive queue
	BulkWorkers int     // worker threads draining the bulk queue
	RatePerSec  float64 // base aggregate arrival rate (merged Poisson)
	Phases      []Phase // rate-multiplier schedule; empty = constant rate
	OpBlocks    int     // blocks per write op
	FileBlocks  uint64  // per-stream file size
	Volumes     int     // stripe streams over this many (global) volumes
	ReadPct     int     // percentage of arrivals that are reads
	BulkPct     int     // percentage of write arrivals that are bulk-class
	QueueCap    int     // per-queue pending-op bound; beyond it drop (0 = unbounded)

	// Results, populated while the workload runs.
	LSLat        *wafl.TraceHistogram // sojourn time of latency-sensitive ops
	BulkLat      *wafl.TraceHistogram // sojourn time of admitted bulk ops
	Arrivals     uint64               // ops generated
	Dropped      uint64               // arrivals dropped at QueueCap
	Shed         uint64               // bulk writes refused by admission
	Completed    uint64               // ops finished by workers
	LSQueueMax   int                  // high-water LS pending-op count
	BulkQueueMax int                  // high-water bulk pending-op count
}

// DefaultOpenLoop returns a burst-shaped open-loop load: a baseline phase,
// a 4x burst, and a recovery phase, over 2000 streams on 8 workers.
func DefaultOpenLoop() OpenLoop {
	return OpenLoop{
		Streams:     2000,
		Workers:     8,
		BulkWorkers: 6,
		RatePerSec:  30000,
		Phases: []Phase{
			{Name: "base", Dur: 80 * wafl.Millisecond, RateMul: 1.0},
			{Name: "burst", Dur: 120 * wafl.Millisecond, RateMul: 4.0},
			{Name: "recover", Dur: 100 * wafl.Millisecond, RateMul: 0.5},
		},
		OpBlocks:   2,
		FileBlocks: 64,
		Volumes:    4,
		ReadPct:    30,
		BulkPct:    60,
		QueueCap:   0,
	}
}

// openOp is one arrived-but-not-yet-served operation.
type openOp struct {
	stream  int
	arrival wafl.Time
	fbn     wafl.FBN
	read    bool
	bulk    bool
}

// Attach creates the stream files and spawns the arrival generator plus the
// worker pool. Call before Run/Measure.
func (w *OpenLoop) Attach(sys *wafl.System) {
	if w.LSLat == nil {
		w.LSLat = wafl.NewHistogram("openloop.ls")
	}
	if w.BulkLat == nil {
		w.BulkLat = wafl.NewHistogram("openloop.bulk")
	}
	vols := make([]int, w.Streams)
	inos := make([]uint64, w.Streams)
	for i := 0; i < w.Streams; i++ {
		vols[i] = i % w.Volumes
		inos[i] = sys.CreateFileDirect(vols[i], w.FileBlocks)
	}

	var lsQueue, bulkQueue []openOp
	lsReady := sys.NewWaitQueue("openloop-ls")
	bulkReady := sys.NewWaitQueue("openloop-bulk")

	// The arrival generator: one simulated thread producing the merged
	// Poisson process for all streams (the superposition of independent
	// Poisson streams is Poisson at the summed rate, so one generator
	// models thousands of streams exactly). Phase multipliers rescale the
	// rate; sampling uses the scheduler's seeded RNG, so the schedule is
	// deterministic per seed.
	var cycle wafl.Duration
	for _, p := range w.Phases {
		cycle += p.Dur
	}
	sys.ClientThread("openloop-gen", func(c *wafl.ClientCtx) {
		epoch := c.Now()
		for c.Alive() {
			mul := 1.0
			if cycle > 0 {
				off := wafl.Duration(c.Now()-epoch) % cycle
				for _, p := range w.Phases {
					if off < p.Dur {
						mul = p.RateMul
						break
					}
					off -= p.Dur
				}
			}
			rate := w.RatePerSec * mul
			if rate <= 0 {
				c.Think(wafl.Millisecond)
				continue
			}
			// Exponential inter-arrival: -ln(U)/rate seconds.
			u := c.RandFloat64()
			for u == 0 {
				u = c.RandFloat64()
			}
			gap := wafl.Duration(-math.Log(u) / rate * float64(wafl.Second))
			if gap < 1 {
				gap = 1
			}
			c.Think(gap)
			if !c.Alive() {
				break
			}
			op := openOp{
				stream:  int(c.Rand(int64(w.Streams))),
				arrival: c.Now(),
				read:    int(c.Rand(100)) < w.ReadPct,
			}
			op.fbn = wafl.FBN(c.Rand(int64(w.FileBlocks) - int64(w.OpBlocks) + 1))
			if !op.read {
				op.bulk = int(c.Rand(100)) < w.BulkPct
			}
			w.Arrivals++
			if op.bulk {
				if w.QueueCap > 0 && len(bulkQueue) >= w.QueueCap {
					w.Dropped++
					continue
				}
				bulkQueue = append(bulkQueue, op)
				if len(bulkQueue) > w.BulkQueueMax {
					w.BulkQueueMax = len(bulkQueue)
				}
				bulkReady.Signal()
			} else {
				if w.QueueCap > 0 && len(lsQueue) >= w.QueueCap {
					w.Dropped++
					continue
				}
				lsQueue = append(lsQueue, op)
				if len(lsQueue) > w.LSQueueMax {
					w.LSQueueMax = len(lsQueue)
				}
				lsReady.Signal()
			}
		}
		lsReady.Broadcast() // release parked workers at shutdown
		bulkReady.Broadcast()
	})

	worker := func(queue *[]openOp, ready *wafl.WaitQueue) func(*wafl.ClientCtx) {
		return func(c *wafl.ClientCtx) {
			for c.Alive() {
				for len(*queue) == 0 {
					if !c.Alive() {
						return
					}
					c.Wait(ready)
				}
				op := (*queue)[0]
				*queue = (*queue)[1:]
				vol, ino := vols[op.stream], inos[op.stream]
				admitted := true
				switch {
				case op.read:
					c.Read(vol, ino, op.fbn, w.OpBlocks)
				case op.bulk:
					_, admitted = c.WriteBulk(vol, ino, op.fbn, w.OpBlocks)
				default:
					c.Write(vol, ino, op.fbn, w.OpBlocks)
				}
				// Sojourn time = completion - arrival: queue wait included.
				// That is the open-loop latency a client stream experiences.
				sojourn := int64(c.Now() - op.arrival)
				if op.bulk {
					if admitted {
						w.BulkLat.Observe(sojourn)
					} else {
						w.Shed++
					}
				} else {
					w.LSLat.Observe(sojourn)
				}
				w.Completed++
			}
		}
	}
	for i := 0; i < w.Workers; i++ {
		sys.ClientThread(fmt.Sprintf("openloop-ls-%d", i), worker(&lsQueue, lsReady))
	}
	for i := 0; i < w.BulkWorkers; i++ {
		sys.ClientThread(fmt.Sprintf("openloop-bulk-%d", i), worker(&bulkQueue, bulkReady))
	}
}
