package workload

import (
	"testing"

	"wafl"
)

// smallCfg keeps workload tests fast.
func smallCfg() wafl.Config {
	cfg := wafl.DefaultConfig()
	cfg.Cores = 8
	cfg.RAIDGroups = 2
	cfg.DataDrives = 3
	cfg.DriveBlocks = 16384
	cfg.AAStripes = 1024
	cfg.Volumes = 2
	cfg.VolumeBlocks = 1 << 15
	cfg.NVRAMHalfBytes = 2 << 20
	cfg.StripesPerVolume = 8
	cfg.RangesPerVBN = 4
	cfg.Allocator.MaxCleaners = 3
	cfg.Allocator.InitialCleaners = 2
	return cfg
}

func runWorkload(t *testing.T, w interface{ Attach(*wafl.System) }) wafl.Results {
	t.Helper()
	sys, err := wafl.NewSystem(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	w.Attach(sys)
	res := sys.Measure(50*wafl.Millisecond, 150*wafl.Millisecond)
	sys.Shutdown()
	return res
}

func TestSeqWriteProducesLoad(t *testing.T) {
	w := DefaultSeqWrite()
	w.Clients = 4
	w.Volumes = 2
	w.FileBlocks = 2048
	res := runWorkload(t, w)
	if res.Ops == 0 || res.Blocks == 0 {
		t.Fatal("no load produced")
	}
	if res.Blocks != res.Ops*uint64(w.OpBlocks) {
		t.Fatalf("blocks=%d ops=%d opblocks=%d", res.Blocks, res.Ops, w.OpBlocks)
	}
	if res.CPs == 0 {
		t.Fatal("write load must trigger CPs")
	}
	// Sequential layout should give a decent full-stripe rate even on this
	// tiny test aggregate, where every CP boundary strands partial
	// tetrises (the production-sized config measures ~85-95%).
	if res.FullStripe < 0.25 {
		t.Fatalf("full stripe = %.2f, expected higher for sequential", res.FullStripe)
	}
}

func TestSnapChurnRotatesSnapshots(t *testing.T) {
	w := DefaultSnapChurn()
	w.Clients = 4
	w.Volumes = 2
	w.FileBlocks = 2048
	w.MaxSnaps = 2
	w.SnapEvery = 4
	w.Think = wafl.Millisecond
	sys, err := wafl.NewSystem(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	w.Attach(sys)
	res := sys.Measure(50*wafl.Millisecond, 250*wafl.Millisecond)
	if res.Ops == 0 {
		t.Fatal("no load produced")
	}
	created, deleted, _ := sys.SnapStats()
	if created == 0 {
		t.Fatal("churn created no snapshots")
	}
	if deleted == 0 {
		t.Fatal("ring never rotated: no snapshot deletes")
	}
	held := uint64(0)
	for v := 0; v < 2; v++ {
		held += sys.FreeSpaceBreakdown(v).SnapOnly
		if n := len(sys.SnapshotIDs(v)); n > w.MaxSnaps+1 {
			t.Fatalf("vol %d holds %d snapshots, ring size %d", v, n, w.MaxSnaps)
		}
	}
	if held == 0 {
		t.Fatal("no snapshot-held blocks under overwrite churn")
	}
	sys.Shutdown()
}

func TestRandWritePrefillAges(t *testing.T) {
	w := DefaultRandWrite()
	w.Clients = 4
	w.Volumes = 2
	w.FileBlocks = 2048
	sys, err := wafl.NewSystem(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	w.Attach(sys) // prefill runs inside Attach
	// After aging, the files are fully populated and persisted.
	if sys.CPCount() == 0 {
		t.Fatal("prefill flush should have committed CPs")
	}
	free0 := sys.AggrFreeBlocks()
	res := sys.Measure(50*wafl.Millisecond, 150*wafl.Millisecond)
	if res.Ops == 0 {
		t.Fatal("no random writes")
	}
	// Steady-state overwrites: net space use stays near flat.
	drift := free0 - sys.AggrFreeBlocks()
	if drift > 2000 || drift < -2000 {
		t.Fatalf("space drifted by %d blocks during pure overwrites", drift)
	}
	sys.Shutdown()
}

func TestOLTPMixesReadsAndWrites(t *testing.T) {
	w := DefaultOLTP()
	w.Clients = 4
	w.Volumes = 2
	w.FileBlocks = 4096
	res := runWorkload(t, w)
	if res.Ops == 0 {
		t.Fatal("no OLTP ops")
	}
	// With 60% writes of 2 blocks, written blocks < 2*ops.
	if res.Blocks >= res.Ops*2 {
		t.Fatalf("blocks=%d ops=%d: reads missing from the mix", res.Blocks, res.Ops)
	}
	if res.Blocks == 0 {
		t.Fatal("writes missing from the mix")
	}
}

func TestNFSMixManySmallFiles(t *testing.T) {
	w := DefaultNFSMix()
	w.Clients = 8
	w.Volumes = 2
	w.FilesPerV = 50
	res := runWorkload(t, w)
	if res.Ops == 0 {
		t.Fatal("no NFS ops")
	}
	// Metadata ops and reads mean blocks written per op is well below 2.
	if float64(res.Blocks) > 1.5*float64(res.Ops) {
		t.Fatalf("mix looks write-only: blocks=%d ops=%d", res.Blocks, res.Ops)
	}
}

func TestWorkloadsAreDeterministic(t *testing.T) {
	run := func() uint64 {
		sys, err := wafl.NewSystem(smallCfg())
		if err != nil {
			t.Fatal(err)
		}
		w := DefaultOLTP()
		w.Clients = 4
		w.Volumes = 2
		w.FileBlocks = 2048
		w.Attach(sys)
		res := sys.Measure(50*wafl.Millisecond, 100*wafl.Millisecond)
		sys.Shutdown()
		return res.Ops
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic workload: %d vs %d ops", a, b)
	}
}
