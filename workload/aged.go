package workload

import (
	"fmt"

	"wafl"
)

// AgedVol reproduces the aged, snapshotted volume that makes bitmap-scan
// cost pathological: the volume is prefilled dense (≥75% of the VVBN space),
// a base snapshot pins the whole prefill image for the life of the run, and
// overwrite rounds under a rotating snapshot ring scatter summary-held bits
// (clear in the activemap, set in the summary — candidates a legacy
// activemap scan keeps returning and rejecting) and true-free bits (holes
// reclaimed when a ring snapshot is deleted) through the dense regions.
// Measurement then runs random overwrites with one snapshot-manager per
// volume keeping the ring churning, so steady-state bucket fills face
// mostly-full fragmented maps — the paper's scan-cost-grows-with-occupancy
// regime, and the setting where hierarchical free-space accounting pays.
type AgedVol struct {
	Clients    int
	OpBlocks   int
	FileBlocks uint64 // per-file size
	FilesPerV  int
	Volumes    int

	AgeRounds   int    // aging passes before measurement
	AgePerRound int    // random blocks overwritten per file per pass
	AgeSpan     uint64 // fbns per file eligible for overwrite (aging + steady state)

	MaxSnaps int           // ring snapshots per volume (besides the base)
	Think    wafl.Duration // manager pause between snapshot rotations
}

// DefaultAgedVol fills two volumes to 75% and ages them to ~82% occupancy
// (active + snapshot-held) with one pinned base snapshot each. Overwrites —
// during aging and measurement alike — are confined to the first AgeSpan
// fbns of each file: with the base snapshot pinning every overwritten
// original forever, the snapshot-held set grows with the count of distinct
// fbns ever rewritten, and an unbounded span would eat the volume's entire
// free space mid-run.
func DefaultAgedVol() AgedVol {
	return AgedVol{Clients: 48, OpBlocks: 2, FileBlocks: 24576, FilesPerV: 8,
		Volumes: 2, AgeRounds: 3, AgePerRound: 1024, AgeSpan: 2560,
		MaxSnaps: 2, Think: 2 * wafl.Millisecond}
}

// Attach prefills, snapshots, and ages the volumes, then spawns the writer
// and snapshot-manager clients. Aging happens in simulated time before the
// caller starts the measurement clock.
func (w AgedVol) Attach(sys *wafl.System) {
	flush := func(stage string) {
		if err := sys.Flush(); err != nil {
			panic(fmt.Sprintf("agedvol %s: %v", stage, err))
		}
	}
	// Dense prefill: FilesPerV files per volume, shuffled so the aged frees
	// scatter from the first overwrite.
	inos := make([][]uint64, w.Volumes)
	for v := 0; v < w.Volumes; v++ {
		for k := 0; k < w.FilesPerV; k++ {
			ino := sys.CreateFileDirect(v, w.FileBlocks)
			sys.Prewrite(v, ino, w.FileBlocks, true)
			inos[v] = append(inos[v], ino)
		}
	}
	flush("prefill")
	// The base snapshot pins the prefill image: every original block
	// overwritten from here on stays summary-held for the whole run.
	for v := 0; v < w.Volumes; v++ {
		sys.SnapCreateDirect(v)
	}
	flush("base snapshot")
	// Aging: overwrite under a rotating ring snapshot, deleting the previous
	// one each round. Blocks written in round k and overwritten in round k+1
	// are held only by the ring — deleting it frees them, scattered through
	// round k's allocation range.
	ring := make([]uint64, w.Volumes)
	for r := 0; r < w.AgeRounds; r++ {
		for v := 0; v < w.Volumes; v++ {
			prev := ring[v]
			ring[v] = sys.SnapCreateDirect(v)
			for _, ino := range inos[v] {
				sys.AgeOverwrite(v, ino, w.AgePerRound, w.AgeSpan)
			}
			if prev != 0 {
				sys.SnapDeleteDirect(v, prev)
			}
		}
		flush(fmt.Sprintf("age round %d", r))
	}
	for v := 0; v < w.Volumes; v++ {
		if ring[v] != 0 {
			sys.SnapDeleteDirect(v, ring[v])
		}
	}
	flush("age cleanup")

	// Steady state: random overwrites plus a per-volume manager rotating a
	// MaxSnaps-deep ring. The base snapshot is never deleted, so at least
	// one live snapshot holds the aged fragmentation in place throughout.
	for i := 0; i < w.Clients; i++ {
		vol := i % w.Volumes
		ino := inos[vol][i%w.FilesPerV]
		i := i
		sys.ClientThread(fmt.Sprintf("aged-client-%d", i), func(c *wafl.ClientCtx) {
			span := int64(w.AgeSpan) - int64(w.OpBlocks)
			for c.Alive() {
				c.Write(vol, ino, wafl.FBN(c.Rand(span)), w.OpBlocks)
			}
		})
	}
	for v := 0; v < w.Volumes; v++ {
		v := v
		sys.ClientThread(fmt.Sprintf("aged-snap-manager-%d", v), func(c *wafl.ClientCtx) {
			var ring []uint64
			for c.Alive() {
				if len(ring) >= w.MaxSnaps {
					c.SnapDelete(v, ring[0])
					ring = ring[1:]
				}
				ring = append(ring, c.SnapCreate(v))
				c.Think(w.Think)
			}
		})
	}
}
