package workload

import (
	"testing"

	"wafl"
)

// smallOpenLoop scales the open-loop workload to the test config.
func smallOpenLoop() OpenLoop {
	w := DefaultOpenLoop()
	w.Streams = 200
	w.Workers = 4
	w.BulkWorkers = 2
	w.RatePerSec = 10000
	w.Volumes = 2
	w.Phases = nil
	return w
}

func TestOpenLoopPoissonRate(t *testing.T) {
	w := smallOpenLoop()
	sys, err := wafl.NewSystem(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	w.Attach(sys)
	const dur = 200 * wafl.Millisecond
	sys.Run(dur)
	sys.Shutdown()
	// A Poisson process at 10k/s over 200ms expects ~2000 arrivals; the
	// standard deviation is sqrt(2000) ~ 45, so +-10% is > 4 sigma.
	want := w.RatePerSec * float64(dur) / float64(wafl.Second)
	if got := float64(w.Arrivals); got < 0.9*want || got > 1.1*want {
		t.Fatalf("arrivals = %.0f, want %.0f +-10%% (Poisson rate off)", got, want)
	}
	if w.Completed == 0 || w.LSLat.Count == 0 || w.BulkLat.Count == 0 {
		t.Fatalf("no completions recorded: done=%d ls=%d bulk=%d",
			w.Completed, w.LSLat.Count, w.BulkLat.Count)
	}
}

func TestOpenLoopPhasesModulateRate(t *testing.T) {
	base := smallOpenLoop()
	sys, err := wafl.NewSystem(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	base.Attach(sys)
	sys.Run(200 * wafl.Millisecond)
	sys.Shutdown()

	burst := smallOpenLoop()
	burst.Phases = []Phase{{Name: "hot", Dur: 100 * wafl.Millisecond, RateMul: 3.0}}
	sys2, err := wafl.NewSystem(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	burst.Attach(sys2)
	sys2.Run(200 * wafl.Millisecond)
	sys2.Shutdown()

	// The 3x phase covers the whole run, so arrivals should roughly triple.
	ratio := float64(burst.Arrivals) / float64(base.Arrivals)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("phase multiplier ineffective: %d vs %d arrivals (ratio %.2f, want ~3)",
			burst.Arrivals, base.Arrivals, ratio)
	}
}

// TestOpenLoopQueuesDoNotThrottle checks the defining open-loop property:
// when service capacity is short, arrivals keep coming and the queue
// grows — the generator never self-throttles to the service rate.
func TestOpenLoopQueuesDoNotThrottle(t *testing.T) {
	w := smallOpenLoop()
	w.Workers = 1 // starve the LS class
	w.BulkWorkers = 1
	w.RatePerSec = 40000
	sys, err := wafl.NewSystem(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	w.Attach(sys)
	sys.Run(200 * wafl.Millisecond)
	sys.Shutdown()
	if w.Arrivals <= w.Completed {
		t.Fatalf("arrivals %d <= completions %d under starvation: workload is throttling",
			w.Arrivals, w.Completed)
	}
	if w.LSQueueMax < 100 {
		t.Fatalf("LS queue high-water %d: queue did not grow open-loop", w.LSQueueMax)
	}
	// Sojourn must include the queue wait: with hundreds queued behind one
	// worker, the p99 is far beyond any single-op service time.
	if p99 := wafl.Duration(w.LSLat.Quantile(0.99)); p99 < 5*wafl.Millisecond {
		t.Fatalf("LS p99 sojourn %v too small: queue wait not accounted", p99)
	}
}

func TestOpenLoopDeterministic(t *testing.T) {
	run := func() (uint64, uint64) {
		w := smallOpenLoop()
		w.Phases = []Phase{
			{Name: "a", Dur: 50 * wafl.Millisecond, RateMul: 1},
			{Name: "b", Dur: 50 * wafl.Millisecond, RateMul: 2},
		}
		sys, err := wafl.NewSystem(smallCfg())
		if err != nil {
			t.Fatal(err)
		}
		w.Attach(sys)
		sys.Run(150 * wafl.Millisecond)
		sys.Shutdown()
		return w.Arrivals, w.Completed
	}
	a1, c1 := run()
	a2, c2 := run()
	if a1 != a2 || c1 != c2 {
		t.Fatalf("nondeterministic open loop: (%d,%d) vs (%d,%d)", a1, c1, a2, c2)
	}
}
