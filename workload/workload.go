// Package workload provides the client workload generators used by the
// paper's evaluation (§V): sequential write and random write from FC-like
// clients (Figs 4-7, 9), an OLTP-style mix (Fig 8), and an NFSv3-style
// mixed operation load over many small files (§V-C).
//
// Each generator attaches closed-loop client threads to a wafl.System; the
// number of clients is the load level.
package workload

import (
	"fmt"

	"wafl"
)

// SeqWrite is the sequential-write workload of §V-A1: each client streams
// large writes through its own file, wrapping at the end — every write
// allocates new blocks and frees the overwritten ones.
type SeqWrite struct {
	Clients    int
	OpBlocks   int    // blocks per write op (8 = 32 KiB)
	FileBlocks uint64 // per-client file size
	Volumes    int    // spread clients over this many volumes
}

// DefaultSeqWrite matches the mid-range FC testbed shape.
func DefaultSeqWrite() SeqWrite {
	return SeqWrite{Clients: 56, OpBlocks: 8, FileBlocks: 8192, Volumes: 4}
}

// Attach creates the files and spawns the client threads.
func (w SeqWrite) Attach(sys *wafl.System) {
	for i := 0; i < w.Clients; i++ {
		vol := i % w.Volumes
		ino := sys.CreateFileDirect(vol, w.FileBlocks)
		i := i
		sys.ClientThread(fmt.Sprintf("seq-client-%d", i), func(c *wafl.ClientCtx) {
			fbn := wafl.FBN(0)
			for c.Alive() {
				c.Write(vol, ino, fbn, w.OpBlocks)
				fbn += wafl.FBN(w.OpBlocks)
				if uint64(fbn)+uint64(w.OpBlocks) > w.FileBlocks {
					fbn = 0
				}
			}
		})
	}
}

// RandWrite is the random-write workload of §V-A2: small overwrites at
// uniformly random offsets. The frees it generates scatter across the VBN
// space, multiplying allocation-metafile block updates.
type RandWrite struct {
	Clients    int
	OpBlocks   int // blocks per op (2 = 8 KiB)
	FileBlocks uint64
	Volumes    int
	Prefill    bool // write the file once first so every op frees blocks
}

// DefaultRandWrite matches the paper's random-write setup.
func DefaultRandWrite() RandWrite {
	return RandWrite{Clients: 56, OpBlocks: 2, FileBlocks: 8192, Volumes: 4, Prefill: true}
}

// Attach creates the files — pre-aged with a shuffled prewrite so frees
// scatter from the first overwrite — and spawns the client threads.
func (w RandWrite) Attach(sys *wafl.System) {
	inos := make([]uint64, w.Clients)
	vols := make([]int, w.Clients)
	for i := 0; i < w.Clients; i++ {
		vols[i] = i % w.Volumes
		inos[i] = sys.CreateFileDirect(vols[i], w.FileBlocks)
		if w.Prefill {
			sys.Prewrite(vols[i], inos[i], w.FileBlocks, true)
		}
	}
	if w.Prefill {
		if err := sys.Flush(); err != nil {
			panic(err)
		}
	}
	for i := 0; i < w.Clients; i++ {
		vol, ino, i := vols[i], inos[i], i
		sys.ClientThread(fmt.Sprintf("rand-client-%d", i), func(c *wafl.ClientCtx) {
			span := int64(w.FileBlocks) - int64(w.OpBlocks)
			for c.Alive() {
				fbn := wafl.FBN(c.Rand(span))
				c.Write(vol, ino, fbn, w.OpBlocks)
			}
		})
	}
}

// ManyFile models a metadata-heavy home-directory workload: each client
// spreads small writes across its own set of small files, so every CP
// freezes and records hundreds of inodes. This is the workload class whose
// CP cost is dominated by the per-volume metadata phases (inode freeze,
// record writes) rather than by buffer cleaning — the phases the parallel
// CP engine fans out across Volume affinities.
type ManyFile struct {
	Clients    int
	FilesPer   int // files per client
	OpBlocks   int
	FileBlocks uint64
	Volumes    int
	// Placed selects cluster-aware placement: instead of striping files
	// round-robin over the first Volumes volumes, every file is placed on
	// the volume chosen by the system's capacity- and load-aware policy
	// (wafl.System.PlaceFile), spreading the working set across all
	// FlexGroup members. With a single member the two are equivalent loads.
	Placed bool
}

// DefaultManyFile gives every CP a few hundred dirty inodes per volume.
func DefaultManyFile() ManyFile {
	return ManyFile{Clients: 56, FilesPer: 16, OpBlocks: 1, FileBlocks: 64, Volumes: 4}
}

// Attach creates the per-client file sets and spawns the client threads.
func (w ManyFile) Attach(sys *wafl.System) {
	for i := 0; i < w.Clients; i++ {
		vols := make([]int, w.FilesPer)
		inos := make([]uint64, w.FilesPer)
		for f := range inos {
			if w.Placed {
				vols[f] = sys.PlaceFile(w.FileBlocks)
			} else {
				vols[f] = i % w.Volumes
			}
			inos[f] = sys.CreateFileDirect(vols[f], w.FileBlocks)
		}
		i := i
		sys.ClientThread(fmt.Sprintf("manyfile-client-%d", i), func(c *wafl.ClientCtx) {
			j := 0
			for c.Alive() {
				k := j % w.FilesPer
				fbn := wafl.FBN(c.Rand(int64(w.FileBlocks) - int64(w.OpBlocks) + 1))
				c.Write(vols[k], inos[k], fbn, w.OpBlocks)
				j++
			}
		})
	}
}

// OLTP models the internal OLTP benchmark of §V-B: latency-sensitive FC
// clients issuing small random writes and reads against a database-like
// working set, with client-side think time so the system can run below
// saturation (the "knee" regime).
type OLTP struct {
	Clients    int
	FileBlocks uint64
	Volumes    int
	WritePct   int           // percentage of ops that are writes
	Think      wafl.Duration // per-op client think time
	Prefill    bool          // age the database files before measuring
}

// DefaultOLTP matches the Flash Pool testbed shape.
func DefaultOLTP() OLTP {
	return OLTP{Clients: 16, FileBlocks: 16384, Volumes: 2, WritePct: 60, Think: 200 * wafl.Microsecond, Prefill: true}
}

// Attach creates (and, with Prefill, ages) the database files and spawns
// the client threads.
func (w OLTP) Attach(sys *wafl.System) {
	inos := make([]uint64, w.Volumes)
	for v := 0; v < w.Volumes; v++ {
		inos[v] = sys.CreateFileDirect(v, w.FileBlocks)
		if w.Prefill {
			sys.Prewrite(v, inos[v], w.FileBlocks, true)
		}
	}
	if w.Prefill {
		if err := sys.Flush(); err != nil {
			panic(err)
		}
	}
	for i := 0; i < w.Clients; i++ {
		vol := i % w.Volumes
		ino := inos[vol]
		i := i
		sys.ClientThread(fmt.Sprintf("oltp-client-%d", i), func(c *wafl.ClientCtx) {
			span := int64(w.FileBlocks) - 2
			for c.Alive() {
				fbn := wafl.FBN(c.Rand(span))
				if int(c.Rand(100)) < w.WritePct {
					c.Write(vol, ino, fbn, 2)
				} else {
					c.Read(vol, ino, fbn, 2)
				}
				if w.Think > 0 {
					c.Think(w.Think)
				}
			}
		})
	}
}

// SnapChurn overlays snapshot churn on a random-overwrite load: writer
// clients overwrite their files steadily while one manager client per volume
// maintains a rotating ring of snapshots — create one every SnapEvery ops,
// delete the oldest once MaxSnaps are live. Overwrites under a snapshot
// cannot free their old blocks (the summary map holds them), so the workload
// exercises the allocator's free = !active && !summary path, summary-held
// write suppression in the cleaner, and steady reclamation at snapshot
// delete — the snapshot analogue of the paper's aged-volume setting.
type SnapChurn struct {
	Clients    int
	OpBlocks   int
	FileBlocks uint64
	Volumes    int
	SnapEvery  int           // manager think interval, in write-op units
	MaxSnaps   int           // live snapshots per volume before rotation
	Think      wafl.Duration // manager pause between snapshot ops
	Prefill    bool
}

// DefaultSnapChurn keeps a ring of 4 snapshots per volume under steady
// random overwrites.
func DefaultSnapChurn() SnapChurn {
	return SnapChurn{Clients: 32, OpBlocks: 2, FileBlocks: 8192, Volumes: 4,
		SnapEvery: 64, MaxSnaps: 4, Think: 2 * wafl.Millisecond, Prefill: true}
}

// Attach creates and ages the files, spawns the writer clients, and one
// snapshot-manager client per volume.
func (w SnapChurn) Attach(sys *wafl.System) {
	rw := RandWrite{Clients: w.Clients, OpBlocks: w.OpBlocks,
		FileBlocks: w.FileBlocks, Volumes: w.Volumes, Prefill: w.Prefill}
	rw.Attach(sys)
	for v := 0; v < w.Volumes; v++ {
		v := v
		sys.ClientThread(fmt.Sprintf("snap-manager-%d", v), func(c *wafl.ClientCtx) {
			var ring []uint64
			for c.Alive() {
				if len(ring) >= w.MaxSnaps {
					c.SnapDelete(v, ring[0])
					ring = ring[1:]
				}
				ring = append(ring, c.SnapCreate(v))
				// Pace the churn: roughly one create per SnapEvery write
				// ops per client, approximated with think time.
				c.Think(wafl.Duration(w.SnapEvery) * w.Think)
			}
		})
	}
}

// NFSMix models the §V-C benchmark: a mix of NFSv3 reads, writes, and
// metadata operations across a large number of inodes — many dirty inodes
// with few dirty buffers each, the case batched inode cleaning exists for.
type NFSMix struct {
	Clients    int
	FilesPerV  int
	FileBlocks uint64
	Volumes    int
	Think      wafl.Duration
}

// DefaultNFSMix matches the SAS-drive testbed shape.
func DefaultNFSMix() NFSMix {
	return NFSMix{Clients: 64, FilesPerV: 400, FileBlocks: 64, Volumes: 4, Think: 100 * wafl.Microsecond}
}

// Attach creates the file population and spawns the client threads.
func (w NFSMix) Attach(sys *wafl.System) {
	files := make([][]uint64, w.Volumes)
	for v := 0; v < w.Volumes; v++ {
		for k := 0; k < w.FilesPerV; k++ {
			files[v] = append(files[v], sys.CreateFileDirect(v, w.FileBlocks))
		}
	}
	for i := 0; i < w.Clients; i++ {
		vol := i % w.Volumes
		i := i
		sys.ClientThread(fmt.Sprintf("nfs-client-%d", i), func(c *wafl.ClientCtx) {
			pop := files[vol]
			for c.Alive() {
				ino := pop[c.Rand(int64(len(pop)))]
				fbn := wafl.FBN(c.Rand(int64(w.FileBlocks - 2)))
				switch r := c.Rand(100); {
				case r < 40: // write: 1-2 blocks of a small file
					c.Write(vol, ino, fbn, 1+int(c.Rand(2)))
				case r < 75: // read
					c.Read(vol, ino, fbn, 1)
				default: // metadata op
					c.Getattr(vol, ino)
				}
				if w.Think > 0 {
					c.Think(w.Think)
				}
			}
		})
	}
}
