package workload

import (
	"fmt"

	"wafl"
)

// CloneFleet is the dev/test-fleet scenario writable clones exist for: a
// few dense, snapshotted parent volumes fan out into a fleet of writable
// clones, each clone is aged by divergence overwrites (every one a
// copy-on-first-write against a summary-held base block), and steady state
// runs random writers across the fleet while a per-parent manager churns
// and instantly SnapRestores its volume and a background split peels one
// clone off its parent. The clone-held summary bits are the worst case
// for the free index: dense regions where almost nothing is allocatable
// yet nothing is active-mapped either.
type CloneFleet struct {
	Clients    int
	OpBlocks   int
	FileBlocks uint64 // per-file size
	FilesPerV  int
	Volumes    int // parent volumes; the fleet rides on clone slots

	ClonesPerVol int // writable clones created from each parent's base snapshot

	AgeRounds   int    // divergence passes over each clone before measurement
	AgePerRound int    // random blocks overwritten per file per pass
	AgeSpan     uint64 // fbns per file eligible for overwrite

	RestoreEvery wafl.Duration // per-parent churn → SnapRestore cadence
	SplitClones  int           // clones put into background split at steady state
}

// DefaultCloneFleet fans two 75%-full parents into eight clones and ages
// every clone through two divergence rounds, so measurement-time writes
// face parents whose summary maps are pinned by both a base snapshot and
// the fleet's base-block holds.
func DefaultCloneFleet() CloneFleet {
	return CloneFleet{Clients: 48, OpBlocks: 2, FileBlocks: 16384, FilesPerV: 6,
		Volumes: 2, ClonesPerVol: 4, AgeRounds: 2, AgePerRound: 768, AgeSpan: 2048,
		RestoreEvery: 4 * wafl.Millisecond, SplitClones: 1}
}

// Slots returns the clone-slot count the system config must provide.
func (w CloneFleet) Slots() int { return w.Volumes * w.ClonesPerVol }

// Attach prefills and snapshots the parents, creates and ages the clone
// fleet in simulated time, then spawns the steady-state clients: writers
// across the clones, one churn-and-restore manager per parent, and a split
// kicked off on the first SplitClones clones.
func (w CloneFleet) Attach(sys *wafl.System) {
	flush := func(stage string) {
		if err := sys.Flush(); err != nil {
			panic(fmt.Sprintf("clonefleet %s: %v", stage, err))
		}
	}
	// Dense parent prefill, then the base snapshot every clone binds to.
	inos := make([][]uint64, w.Volumes)
	for v := 0; v < w.Volumes; v++ {
		for k := 0; k < w.FilesPerV; k++ {
			ino := sys.CreateFileDirect(v, w.FileBlocks)
			sys.Prewrite(v, ino, w.FileBlocks, true)
			inos[v] = append(inos[v], ino)
		}
	}
	flush("prefill")
	base := make([]uint64, w.Volumes)
	for v := 0; v < w.Volumes; v++ {
		base[v] = sys.SnapCreateDirect(v)
	}
	flush("base snapshot")

	// Fan out the fleet. The binds all materialize in one CP; nothing is
	// copied — every clone starts as pure summary-held base blocks.
	var clones []int
	cloneParent := map[int]int{}
	for v := 0; v < w.Volumes; v++ {
		for k := 0; k < w.ClonesPerVol; k++ {
			cv := sys.CloneCreateDirect(v, base[v])
			if cv < 0 {
				panic("clonefleet: clone slot exhausted (config CloneSlots too small)")
			}
			clones = append(clones, cv)
			cloneParent[cv] = v
		}
	}
	flush("clone fan-out")

	// Age the fleet: divergence overwrites on every clone. Each first-touch
	// of a base block is a COW against the parent snapshot's hold.
	for r := 0; r < w.AgeRounds; r++ {
		for _, cv := range clones {
			for _, ino := range inos[cloneParent[cv]] {
				sys.AgeOverwrite(cv, ino, w.AgePerRound, w.AgeSpan)
			}
		}
		flush(fmt.Sprintf("divergence round %d", r))
	}

	// Steady state: random writers across the fleet.
	for i := 0; i < w.Clients; i++ {
		cv := clones[i%len(clones)]
		ino := inos[cloneParent[cv]][i%w.FilesPerV]
		i := i
		sys.ClientThread(fmt.Sprintf("clone-client-%d", i), func(c *wafl.ClientCtx) {
			span := int64(w.AgeSpan) - int64(w.OpBlocks)
			for c.Alive() {
				c.Write(cv, ino, wafl.FBN(c.Rand(span)), w.OpBlocks)
			}
		})
	}
	// Per-parent restore manager: churn a slice of the parent, then revert
	// it to the base snapshot — the instant-restore cycle. The parent's own
	// writes are scoped to the manager, so the gate stalls nobody else.
	for v := 0; v < w.Volumes; v++ {
		v := v
		ino := inos[v][0]
		sys.ClientThread(fmt.Sprintf("clone-restore-manager-%d", v), func(c *wafl.ClientCtx) {
			span := int64(w.AgeSpan) - int64(w.OpBlocks)
			for c.Alive() {
				for b := 0; b < 32 && c.Alive(); b++ {
					c.Write(v, ino, wafl.FBN(c.Rand(span)), w.OpBlocks)
				}
				c.SnapRestore(v, base[v])
				c.Think(w.RestoreEvery)
			}
		})
	}
	// Background splits: peel the first SplitClones clones off their
	// parents; the bounded per-CP copy runs under the measurement load.
	if w.SplitClones > 0 {
		sys.ClientThread("clone-split-manager", func(c *wafl.ClientCtx) {
			for k := 0; k < w.SplitClones && k < len(clones) && c.Alive(); k++ {
				c.CloneSplit(clones[k])
			}
		})
	}
}
