// Package wafl is the public facade of a simulation-faithful reproduction
// of the WAFL file system's White Alligator write allocator ("Scalable
// Write Allocation in the WAFL File System", Curtis-Maury, Kesavan &
// Bhattacharjee, ICPP 2017).
//
// A System is a complete simulated storage server: a many-core CPU model,
// one or more cluster Members — each a RAID aggregate with FlexVol
// volumes, an NVRAM log partition, a Hierarchical Waffinity message
// scheduler, the White Alligator write allocation infrastructure with its
// pool of parallel cleaner threads, and a consistency-point engine — and a
// FlexGroup-style router that stripes files and volumes across members.
// Client workloads drive it through ClientThread sessions; Measure reports
// throughput, latency, and per-component simulated core usage — the same
// metrics the paper's instrumented kernels report.
//
// With Config.Members <= 1 the System is a single aggregate, bit-identical
// to the pre-cluster code. With N members, volumes are addressed by a
// global index (member = vol / Config.Volumes), file handles embed their
// owning constituent id (routing is stateless after create), and each
// member keeps its own CP cadence and crash domain.
//
// Quick start:
//
//	sys, _ := wafl.NewSystem(wafl.DefaultConfig())
//	ino := sys.CreateFileDirect(0, 8192)
//	sys.ClientThread("writer", func(c *wafl.ClientCtx) {
//	    for i := 0; c.Alive(); i++ {
//	        c.Write(0, ino, wafl.FBN((i*8)%8000), 8)
//	    }
//	})
//	res := sys.Measure(100*wafl.Millisecond, wafl.Second)
//	fmt.Println(res)
package wafl

import (
	"fmt"
	"io"
	"strings"

	"wafl/internal/aggregate"
	"wafl/internal/bcache"
	"wafl/internal/block"
	"wafl/internal/core"
	"wafl/internal/cp"
	"wafl/internal/faultinject"
	"wafl/internal/obs"
	"wafl/internal/sim"
	"wafl/internal/storage"
)

// Re-exported simulation types, so library users never import internal
// packages directly.
type (
	// Duration is simulated time in nanoseconds.
	Duration = sim.Duration
	// Time is a point in simulated time.
	Time = sim.Time
	// FBN is a file block number.
	FBN = block.FBN
	// AllocatorOptions configures White Alligator (chunk size, parallelism
	// knobs, batching, dynamic tuning, ablation switches).
	AllocatorOptions = core.Options
	// CostModel holds the simulated CPU service demands.
	CostModel = core.CostModel
	// TunerConfig parameterizes the dynamic cleaner-thread tuner.
	TunerConfig = core.TunerConfig
	// AAPolicy selects the Allocation Area selection policy.
	AAPolicy = core.AAPolicy
	// Tracer is the observability spine: trace events, latency histograms,
	// and Chrome-trace export. Nil when tracing is off.
	Tracer = obs.Tracer
	// Event is one buffered trace event; determinism tests compare whole
	// streams of these across runs.
	Event = obs.Event
	// TraceHistogram is one latency histogram recorded by the tracer.
	TraceHistogram = obs.Histogram
	// FaultConfig selects the deterministic drive-fault plan (torn writes,
	// dropped/delayed completions, transient read errors) for crash tests.
	FaultConfig = faultinject.Config
	// FaultInjector is the wired fault plan; obtain it via Injector.
	FaultInjector = faultinject.Injector
	// FaultStats is a snapshot of fault-injection decisions.
	FaultStats = faultinject.Stats
	// RepairStats counts fault repairs on the raw read path (retries of
	// transient errors, RAID reconstructions of persistent ones).
	RepairStats = aggregate.RepairStats
	// BCacheStats is a snapshot of the buffer-cache counters
	// (hits/misses/evictions/resident blocks).
	BCacheStats = bcache.Stats
)

// NewHistogram creates a standalone log-linear latency histogram for
// callers that keep their own metric state (e.g. the open-loop workload's
// per-class sojourn-time distributions).
func NewHistogram(name string) *TraceHistogram { return obs.NewHistogram(name) }

// Allocation Area policies (re-exported).
const (
	AAMostFree   = core.AAMostFree
	AAFirstFit   = core.AAFirstFit
	AARoundRobin = core.AARoundRobin
)

// Re-exported duration units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// DriveClass selects a drive service-time model.
type DriveClass int

// Drive classes used by the paper's three testbeds.
const (
	SSD DriveClass = iota // all-SSD mid-range system (§V-A)
	FlashPool
	HDD
)

func (d DriveClass) profile() storage.Profile {
	switch d {
	case HDD:
		return storage.HDD
	case FlashPool:
		return storage.FlashPool
	default:
		return storage.SSD
	}
}

// Config describes a simulated storage server.
type Config struct {
	// Cores is the simulated CPU count per member (the paper's testbeds
	// have 20); a cluster models Cores × Members cores in total.
	Cores int
	// Seed drives all simulation randomness; same seed, same run.
	Seed int64

	// Members is the cluster width: the number of constituent aggregates
	// the namespace is striped across. 0 or 1 selects a single-member
	// system, bit-identical to the pre-cluster single-aggregate code.
	// Every member gets its own aggregate (the geometry below), its own
	// Volumes volumes, and its own NVRAM log partition; volumes are
	// addressed globally as member*Volumes + localVol.
	Members int

	// Aggregate geometry (per member).
	Drives      DriveClass
	RAIDGroups  int
	DataDrives  int // per group, excluding parity
	DriveBlocks uint64
	AAStripes   uint64

	// Volumes (per member).
	Volumes      int
	VolumeBlocks uint64

	// CloneSlots pre-provisions, per member, this many extra volumes usable
	// only as writable clones (CloneCreate binds one to a parent snapshot).
	// Clone volumes are addressed globally above the client volumes: clone
	// slot s of member m is Members*Volumes + m*CloneSlots + s. 0 (the
	// default) disables clones and keeps the system bit-identical to the
	// pre-clone code. Slots are not recycled: a split-or-deleted clone's
	// slot stays consumed for the System's lifetime.
	CloneSlots int

	// NVRAMHalfBytes sizes each NVRAM log half (per member); the CP
	// cadence follows from it.
	NVRAMHalfBytes uint64
	// CPTriggerFullness starts a CP when the active half passes this
	// fraction.
	CPTriggerFullness float64

	// StripesPerVolume and RangesPerVBN size the Waffinity hierarchy.
	StripesPerVolume int
	RangesPerVBN     int
	// StripeWidthBlocks is the contiguous FBN range mapped to one stripe
	// affinity.
	StripeWidthBlocks uint64

	// PayloadBytes is how many bytes of real pattern data each 4 KiB
	// block write carries (the rest is zeros). NVRAM and drive accounting
	// always use the full block size; smaller payloads just make long
	// simulations cheaper on the host. Use 4096 when byte-exact content
	// verification matters.
	PayloadBytes int

	// Trace enables the observability spine: structured trace events and
	// latency histograms, exportable as Chrome trace JSON (WriteTrace).
	// Tracing never changes simulation results — runs are bit-identical
	// with it on or off.
	Trace bool
	// TraceEvents bounds the trace ring buffer (events, not bytes); zero
	// selects the default capacity. Oldest events drop first.
	TraceEvents int

	// Faults configures deterministic drive-fault injection (crash-schedule
	// testing). The zero value disables every fault arm; injection never
	// runs during initial format, so a fresh System is always mountable.
	// Each member gets its own injector wired to its own drives.
	Faults FaultConfig

	// BCacheBlocks sizes each member's buffer cache on the client read path,
	// in 4 KiB blocks. 0 disables the cache: reads then install demand-loaded
	// blocks into the in-memory trees forever (the pre-cache behavior, kept
	// bit-identical for existing configurations). With a cache, client reads
	// and writes occupy cache residency with LRU eviction; a read outside the
	// resident set pays a timed media I/O — the CAWL-style regime split
	// between below-cache-capacity fast paths and eviction-limited steady
	// state.
	BCacheBlocks int

	// Admission configures NVLog watermark-based admission control for
	// bulk-class writes. The zero value disables it.
	Admission AdmissionConfig

	Allocator AllocatorOptions
	Costs     CostModel
	Tuner     TunerConfig
}

// AdmissionConfig is the per-class QoS policy: latency-sensitive writes are
// always admitted, while bulk writes are delayed and eventually shed as the
// NVRAM active half fills. Hysteresis: once bulk is held, it stays held
// until fullness drops below ResumeAt with no frozen half draining, so
// admission does not flap across CP half-switches.
type AdmissionConfig struct {
	// Enabled turns the gate on; all other fields are ignored when false.
	Enabled bool
	// BulkDelayAt is the active-half fullness fraction at which bulk writes
	// start being delayed.
	BulkDelayAt float64
	// BulkShedAt is the fullness at which delayed bulk writes are refused
	// outright (shed) instead of waiting.
	BulkShedAt float64
	// ResumeAt is the hysteresis release point: bulk resumes only below this
	// fullness and only once no frozen half is draining.
	ResumeAt float64
	// DelayStep is the per-round delay a held bulk write sleeps before
	// re-checking the watermarks.
	DelayStep Duration
	// MaxDelay bounds one op's cumulative admission delay; past it the op is
	// shed even below the shed watermark.
	MaxDelay Duration
}

// DefaultAdmission returns an enabled admission policy with watermarks
// placed around the default CP trigger (0.5): bulk delays once the active
// half is 70% full, sheds at 92%, and resumes below 55% after the CP
// commits.
func DefaultAdmission() AdmissionConfig {
	return AdmissionConfig{
		Enabled:     true,
		BulkDelayAt: 0.70,
		BulkShedAt:  0.92,
		ResumeAt:    0.55,
		DelayStep:   200 * Microsecond,
		MaxDelay:    20 * Millisecond,
	}
}

// DefaultConfig returns a configuration modelling the paper's mid-range
// testbed: 20 cores, an all-SSD aggregate of two RAID groups, four volumes,
// one member.
func DefaultConfig() Config {
	return Config{
		Cores:             20,
		Seed:              1,
		Members:           1,
		Drives:            SSD,
		RAIDGroups:        2,
		DataDrives:        4,
		DriveBlocks:       65536,
		AAStripes:         2048,
		Volumes:           4,
		VolumeBlocks:      1 << 17,
		NVRAMHalfBytes:    24 << 20,
		CPTriggerFullness: 0.5,
		StripesPerVolume:  16,
		RangesPerVBN:      8,
		StripeWidthBlocks: 2048,
		PayloadBytes:      64,
		Allocator:         core.DefaultOptions(),
		Costs:             core.DefaultCosts(),
		Tuner:             core.DefaultTuner(),
	}
}

// System is a running simulated storage server: a cluster of one or more
// Members sharing one discrete-event scheduler, fronted by a router that
// stripes the namespace across them.
type System struct {
	cfg     Config
	s       *sim.Scheduler
	members []*Member

	clients    []*ClientCtx
	threadMark int // first sim thread belonging to this System
	stopped    bool
}

// NewSystem builds and formats a simulated storage server.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Cores < 1 {
		return nil, fmt.Errorf("wafl: need at least one core")
	}
	if cfg.Members < 0 || cfg.Members >= 1<<16 {
		return nil, fmt.Errorf("wafl: Members must be in [0, 65535], got %d", cfg.Members)
	}
	if cfg.Members < 1 {
		cfg.Members = 1
	}
	s := sim.New(cfg.Cores*cfg.Members, cfg.Seed)
	if cfg.Trace {
		s.SetTracer(obs.New(obs.Options{Capacity: cfg.TraceEvents}))
	}
	sys := &System{cfg: cfg, s: s, threadMark: s.ThreadMark()}
	for i := 0; i < cfg.Members; i++ {
		m, err := buildMember(sys, i)
		if err != nil {
			return nil, err
		}
		sys.members = append(sys.members, m)
	}
	// Commit an initial (empty) CP on every member so the media always
	// carries a valid superblock — a freshly formatted system must be
	// mountable even if it crashes before any client-triggered CP.
	for _, m := range sys.members {
		m.engine.RequestCP()
	}
	for i := 0; i < 100 && !sys.allFormatted(); i++ {
		s.RunFor(10 * sim.Millisecond)
	}
	if !sys.allFormatted() {
		return nil, fmt.Errorf("wafl: initial consistency point did not complete")
	}
	// Wire fault injection only after the initial format committed: a
	// fresh system must always be mountable. The wiring point is fixed, so
	// identical configs still yield identical event streams.
	if cfg.Faults.Enabled() {
		for _, m := range sys.members {
			m.inj = faultinject.New(cfg.Faults)
			m.a.SetInjector(m.inj)
		}
	}
	return sys, nil
}

// allFormatted reports whether every member has committed its initial CP.
func (sys *System) allFormatted() bool {
	for _, m := range sys.members {
		if m.a.CPCount() == 0 {
			return false
		}
	}
	return true
}

// Members returns the cluster width (the number of constituent
// aggregates).
func (sys *System) Members() int { return len(sys.members) }

// TotalVolumes returns the number of globally addressable volumes:
// Config.Volumes per member times the cluster width.
func (sys *System) TotalVolumes() int { return sys.cfg.Volumes * len(sys.members) }

// MemberInfo is a point-in-time summary of one cluster member, for
// monitoring tools (wafltop's per-member section).
type MemberInfo struct {
	ID            int
	Ops           uint64  // cumulative client ops served by this member
	Blocks        uint64  // cumulative blocks written
	CPs           uint64  // completed consistency points
	NVLogFullness float64 // active NVRAM half fullness [0, 1]
	FreeBlocks    int64   // allocatable VVBNs across the member's volumes
	Reserved      int64   // outstanding ingest-reservation blocks (placement)
	Cleaners      int     // active cleaner threads
	Crashed       bool
	ShedOps       uint64 // bulk writes refused by admission control
	BCacheHits    uint64 // buffer-cache hits (0 when the cache is off)
	BCacheMisses  uint64 // buffer-cache misses / timed media reads
}

// MemberInfo returns the current summary of member i.
func (sys *System) MemberInfo(i int) MemberInfo {
	m := sys.members[i]
	var free int64
	for v := 0; v < sys.cfg.Volumes; v++ {
		free += m.in.VolFree(v)
	}
	mi := MemberInfo{
		ID:            m.id,
		Ops:           m.opsDone,
		Blocks:        m.blocksW,
		CPs:           m.a.CPCount(),
		NVLogFullness: m.log.Fullness(),
		FreeBlocks:    free,
		Cleaners:      m.pool.Active(),
		Crashed:       m.crashed,
		ShedOps:       m.shedOps,
	}
	for _, r := range m.reserved {
		mi.Reserved += r
	}
	if m.bc != nil {
		st := m.bc.Stats()
		mi.BCacheHits, mi.BCacheMisses = st.Hits, st.Misses
	}
	return mi
}

// BCacheStats returns the buffer-cache counters summed across members
// (all zero when Config.BCacheBlocks is 0).
func (sys *System) BCacheStats() BCacheStats {
	var t BCacheStats
	for _, m := range sys.members {
		if m.bc == nil {
			continue
		}
		st := m.bc.Stats()
		t.Hits += st.Hits
		t.Misses += st.Misses
		t.Evictions += st.Evictions
		t.Resident += st.Resident
	}
	return t
}

// AdmissionStats returns cluster-wide admission-control activity: bulk
// writes shed and cumulative bulk delay time.
func (sys *System) AdmissionStats() (shed uint64, delay Duration) {
	for _, m := range sys.members {
		shed += m.shedOps
		delay += m.admitDelay
	}
	return shed, delay
}

// placementLogPenalty weighs NVRAM occupancy against free-space fraction
// in the placement score: a member whose log is nearly full (a CP is
// imminent and incoming ops may stall) is penalized as if it had that much
// less free space.
const placementLogPenalty = 0.5

// PlaceFile picks the best member for a new file of up to sizeBlocks
// blocks — deterministic, capacity- and load-aware — and returns a global
// volume index on it. The score combines the member's allocatable-block
// fraction (from the hierarchical free-space index counters, net of ingest
// reservations) with its NVRAM log occupancy; ties break toward the lowest
// member id, and within the chosen member the volume with the most
// reservation-adjusted free space wins.
//
// Each placement charges sizeBlocks against the chosen volume as an ingest
// reservation, so a burst of placements on an idle cluster stripes across
// members instead of piling onto whichever one happened to score first:
// the free-space counters only move once the placed files are written, and
// the reservation stands in for that forthcoming usage.
func (sys *System) PlaceFile(sizeBlocks uint64) int {
	best, bestScore := 0, -1.0e300
	capacity := float64(sys.cfg.Volumes) * float64(sys.cfg.VolumeBlocks)
	for i, m := range sys.members {
		if m.crashed {
			continue
		}
		var free int64
		for v := 0; v < sys.cfg.Volumes; v++ {
			if f := m.in.VolFree(v) - m.reserved[v]; f > 0 {
				free += f
			}
		}
		score := float64(free)/capacity - placementLogPenalty*m.log.Fullness()
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	m := sys.members[best]
	bestVol, bestFree := 0, int64(-1<<62)
	for v := 0; v < sys.cfg.Volumes; v++ {
		if f := m.in.VolFree(v) - m.reserved[v]; f > bestFree {
			bestVol, bestFree = v, f
		}
	}
	m.reserved[bestVol] += int64(sizeBlocks)
	// The charge starts unbound; the next create on the volume binds it to
	// its inode (Member.bindPlacement), after which landed writes decay it
	// and a delete refunds the rest.
	m.pendingPlace[bestVol] = append(m.pendingPlace[bestVol], int64(sizeBlocks))
	return best*sys.cfg.Volumes + bestVol
}

// ReservedBlocks returns member i's outstanding ingest reservations, summed
// across its volumes: blocks charged by PlaceFile not yet written (as
// consumption) or refunded (by delete). On an idle cluster after churn this
// returns to ~0 — only charges never bound to a create linger.
func (sys *System) ReservedBlocks(i int) int64 {
	var t int64
	for _, r := range sys.members[i].reserved {
		t += r
	}
	return t
}

// Run advances the simulation by d.
func (sys *System) Run(d Duration) { sys.s.RunFor(d) }

// Events returns the number of simulation events dispatched so far — the
// reproducible crash-point coordinate: with a fixed Config (including
// Seed), event index k names the same instant in every run.
func (sys *System) Events() uint64 { return sys.s.Events() }

// RunToEvent advances the simulation until event index n has been
// dispatched, running at most max simulated time. It reports whether the
// halt was reached (false means the run drained or hit max first). The
// scheduler is stopped between events afterwards — the state Crash
// requires.
func (sys *System) RunToEvent(n uint64, max Duration) bool {
	sys.s.HaltAtEvent(n)
	sys.s.RunFor(max)
	sys.s.HaltAtEvent(0)
	return sys.s.Halted()
}

// RequestHalt asks the scheduler to stop before dispatching the next event.
// Call it from inside the simulation (e.g. a CP phase hook); the current
// Run returns once the running event finishes.
func (sys *System) RequestHalt() { sys.s.RequestHalt() }

// Halted reports whether the last Run stopped on a halt request rather
// than draining or reaching its time bound.
func (sys *System) Halted() bool { return sys.s.Halted() }

// SetCPPhaseHook installs fn to be called at every CP phase boundary
// ("start", "clean", "records", "metafiles", "voltable", "amap", "commit",
// "post-commit", "done") on every member. Returning true halts the
// scheduler at that boundary — pair with Crash for phase-targeted crash
// tests. A hook that returns false has no effect on the simulation.
func (sys *System) SetCPPhaseHook(fn func(phase string) bool) {
	for _, m := range sys.members {
		m.engine.SetPhaseHook(fn)
	}
}

// FileExists reports whether ino exists (and is not deleted) on vol.
func (sys *System) FileExists(vol int, ino uint64) bool {
	m, lv, li := sys.resolve(vol, ino)
	return m.a.Volume(lv).LookupFile(li) != nil
}

// Injector returns member 0's wired fault injector, or nil when
// Config.Faults is zero. Use it to install persistent per-block read
// errors (FailBlock); for other members use MemberInjector.
func (sys *System) Injector() *faultinject.Injector { return sys.members[0].inj }

// MemberInjector returns member i's fault injector (nil when faults are
// off).
func (sys *System) MemberInjector(i int) *faultinject.Injector { return sys.members[i].inj }

// FaultStats returns a cluster-wide snapshot of fault-injection decisions,
// summed across members (zero when injection is off).
func (sys *System) FaultStats() FaultStats {
	var t FaultStats
	for _, m := range sys.members {
		if m.inj == nil {
			continue
		}
		st := m.inj.Stats()
		t.WritesSeen += st.WritesSeen
		t.ReadsSeen += st.ReadsSeen
		t.PeeksSeen += st.PeeksSeen
		t.TornPlanned += st.TornPlanned
		t.Dropped += st.Dropped
		t.Delayed += st.Delayed
		t.PeekErrs += st.PeekErrs
	}
	return t
}

// RepairStats returns the raw-read-path fault-repair counters, summed
// across members.
func (sys *System) RepairStats() RepairStats {
	var t RepairStats
	for _, m := range sys.members {
		st := m.a.Repairs()
		t.Retries += st.Retries
		t.Reconstructs += st.Reconstructs
	}
	return t
}

// Shutdown terminates every simulated thread so the whole system becomes
// garbage-collectable. Call it when done with a System (experiment harness
// loops leak goroutines otherwise). The System is unusable afterwards; do
// not Shutdown a crashed system you still intend to Recover from (recovery
// shares the scheduler).
func (sys *System) Shutdown() {
	sys.stopped = true
	for _, m := range sys.members {
		if m.tuner != nil {
			m.tuner.Stop()
		}
	}
	sys.s.Shutdown()
}

// Now returns the current simulated time.
func (sys *System) Now() Time { return sys.s.Now() }

// Tracer returns the observability tracer, or nil when Config.Trace is off.
func (sys *System) Tracer() *Tracer { return sys.s.Tracer() }

// WriteTrace writes the buffered trace events as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. With tracing
// off it writes an empty, still-valid trace document.
func (sys *System) WriteTrace(w io.Writer) error {
	return sys.s.Tracer().WriteChromeTrace(w)
}

// TraceReport renders the tracer's latency histograms (p50/p95/p99 per
// metric), or "" when tracing is off.
func (sys *System) TraceReport() string {
	return sys.s.Tracer().HistogramReport()
}

// Stop makes client loops exit at their next Alive check.
func (sys *System) Stop() { sys.stopped = true }

// ActiveCleaners returns the current active cleaner-thread count, summed
// across members.
func (sys *System) ActiveCleaners() int {
	n := 0
	for _, m := range sys.members {
		n += m.pool.Active()
	}
	return n
}

// CPCount returns the number of completed consistency points, summed
// across members.
func (sys *System) CPCount() uint64 {
	var n uint64
	for _, m := range sys.members {
		n += m.a.CPCount()
	}
	return n
}

// AggrFreeBlocks returns the loosely-accounted aggregate free-block count,
// summed across members.
func (sys *System) AggrFreeBlocks() int64 {
	var n int64
	for _, m := range sys.members {
		n += m.in.AggrFree()
	}
	return n
}

// TunerSamples returns member 0's dynamic tuner decision trace (nil when
// the tuner is off).
func (sys *System) TunerSamples() []core.TunerSample {
	if sys.members[0].tuner == nil {
		return nil
	}
	return sys.members[0].tuner.Samples
}

// Hierarchy renders the Waffinity affinity trees of all members.
func (sys *System) Hierarchy() string {
	if len(sys.members) == 1 {
		return sys.members[0].h.String()
	}
	var b strings.Builder
	for _, m := range sys.members {
		fmt.Fprintf(&b, "member %d:\n%s", m.id, m.h.String())
	}
	return b.String()
}

// ForceCP requests a consistency point on every member and returns
// immediately.
func (sys *System) ForceCP() {
	for _, m := range sys.members {
		m.engine.RequestCP()
	}
}

// Prewrite populates a file directly — no client protocol, no NVRAM — to
// age the file system before a measurement. With shuffle the blocks are
// written in random FBN order, so their physical locations scramble and the
// first overwrite wave already frees blocks scattered across the VBN space
// (the aged state a long-running random-write workload converges to).
// Call Flush afterwards to push the blocks to storage.
func (sys *System) Prewrite(vol int, ino uint64, blocks uint64, shuffle bool) {
	m, lv, li := sys.resolve(vol, ino)
	v := m.a.Volume(lv)
	f := v.LookupFile(li)
	if f == nil {
		panic(fmt.Sprintf("wafl: Prewrite of unknown ino %d", ino))
	}
	order := make([]uint64, blocks)
	for i := range order {
		order[i] = uint64(i)
	}
	if shuffle {
		sys.s.Rand().Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	for _, fbn := range order {
		f.WriteBlock(FBN(fbn), sys.payload(ino, FBN(fbn), 0))
	}
	v.MarkDirty(f)
}

// AgeOverwrite dirties n random distinct blocks of the file's first span
// blocks without logging or timing (benchmark setup): combined with live
// snapshots, repeated overwrite rounds fragment the volume's free space the
// way months of production churn would. Call Flush between rounds so each
// round's frees land before the next scatters more.
func (sys *System) AgeOverwrite(vol int, ino uint64, n int, span uint64) {
	m, lv, li := sys.resolve(vol, ino)
	v := m.a.Volume(lv)
	f := v.LookupFile(li)
	if f == nil {
		panic(fmt.Sprintf("wafl: AgeOverwrite of unknown ino %d", ino))
	}
	order := make([]uint64, span)
	for i := range order {
		order[i] = uint64(i)
	}
	sys.s.Rand().Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	if n > len(order) {
		n = len(order)
	}
	for _, fbn := range order[:n] {
		v.EnsureL0Resident(f, FBN(fbn))
		f.WriteBlock(FBN(fbn), sys.payload(ino, FBN(fbn), 1))
	}
	v.MarkDirty(f)
}

// SnapCreateDirect queues a snapshot create without logging or timing
// (benchmark setup); the next CP — e.g. a Flush — materializes it.
func (sys *System) SnapCreateDirect(vol int) uint64 {
	m, lv := sys.volMember(vol)
	return m.a.Volume(lv).RequestSnapshot()
}

// SnapDeleteDirect removes a snapshot without logging or timing (benchmark
// setup); the next CP reclaims its exclusively-held blocks.
func (sys *System) SnapDeleteDirect(vol int, id uint64) bool {
	m, lv := sys.volMember(vol)
	return m.a.Volume(lv).DeleteSnapshot(id)
}

// SnapRestoreDirect queues reverting the volume to snapshot id without
// logging or timing (benchmark/test setup); the next CP — e.g. a Flush —
// applies it. Returns false if the snapshot does not exist (nor is pending).
func (sys *System) SnapRestoreDirect(vol int, id uint64) bool {
	m, lv := sys.volMember(vol)
	return m.a.Volume(lv).RequestRestore(id)
}

// CloneCreateDirect binds a free clone slot on the parent's member as a
// writable clone of snapshot snapID, without logging or timing (benchmark
// setup); the next CP materializes the bind. Returns the clone's global
// volume index, or -1 if the snapshot does not exist or no slot is free.
func (sys *System) CloneCreateDirect(parentVol int, snapID uint64) int {
	m, plv := sys.volMember(parentVol)
	pv := m.a.Volume(plv)
	if !pv.SnapshotExists(snapID) {
		return -1
	}
	for s := sys.cfg.Volumes; s < sys.cfg.Volumes+sys.cfg.CloneSlots; s++ {
		if m.a.Volume(s).CloneSlotFree() {
			m.a.Volume(s).RequestCloneBind(plv, snapID)
			pv.AddCloneRef(snapID)
			return sys.globalVol(m.id, s)
		}
	}
	return -1
}

// CloneSplitDirect starts splitting the clone from its parent without
// logging or timing (benchmark setup); subsequent CPs perform the bounded
// block copies. Returns false if the volume is not a clone.
func (sys *System) CloneSplitDirect(vol int) bool {
	m, lv := sys.volMember(vol)
	return m.a.Volume(lv).StartSplit()
}

// CloneBound reports whether the (globally addressed) volume is a bound
// writable clone.
func (sys *System) CloneBound(vol int) bool {
	m, lv := sys.volMember(vol)
	return m.a.Volume(lv).IsClone()
}

// CloneSplitDone reports whether a requested split has fully completed: the
// volume no longer carries clone state (parent holds and delete guard
// dropped). False for a still-bound clone; true for a never-cloned volume.
func (sys *System) CloneSplitDone(vol int) bool {
	m, lv := sys.volMember(vol)
	v := m.a.Volume(lv)
	return !v.IsClone() && !v.ClonePending()
}

// CloneParent returns the clone's parent as (global parent volume, snapshot
// ID); ok is false if the volume is not a bound clone.
func (sys *System) CloneParent(vol int) (parentVol int, snapID uint64, ok bool) {
	m, lv := sys.volMember(vol)
	st := m.a.Volume(lv).CloneState()
	if st == nil {
		return 0, 0, false
	}
	return sys.globalVol(m.id, st.ParentVol), st.ParentSnap, true
}

// CloneVolumes returns the global volume indices of every bound clone (and
// every clone whose bind is pending), in member-then-slot order.
func (sys *System) CloneVolumes() []int {
	var out []int
	for _, m := range sys.members {
		for s := sys.cfg.Volumes; s < sys.cfg.Volumes+sys.cfg.CloneSlots; s++ {
			v := m.a.Volume(s)
			if v.IsClone() || v.ClonePending() {
				out = append(out, sys.globalVol(m.id, s))
			}
		}
	}
	return out
}

// InfraCounters is the allocator infrastructure's cumulative counter set.
type InfraCounters = core.InfraStats

// Counters returns a snapshot of the infrastructure counters for metric
// diffing around a measurement window (FillWords, GetWaits, ...), summed
// across members.
func (sys *System) Counters() InfraCounters {
	if len(sys.members) == 1 {
		return sys.members[0].in.Stats()
	}
	var t InfraCounters
	for _, m := range sys.members {
		st := m.in.Stats()
		t.BucketsFilled += st.BucketsFilled
		t.BucketsCommitted += st.BucketsCommitted
		t.VBucketsFilled += st.VBucketsFilled
		t.VBucketsCommitted += st.VBucketsCommitted
		t.StageCommitMsgs += st.StageCommitMsgs
		t.FreesCommitted += st.FreesCommitted
		t.TetrisesSent += st.TetrisesSent
		t.TetrisBlocks += st.TetrisBlocks
		t.FillWords += st.FillWords
		t.VFillWords += st.VFillWords
		t.GetWaits += st.GetWaits
		t.WindowsSkipped += st.WindowsSkipped
	}
	return t
}

// CPStats is the consistency-point engine's cumulative counter set.
type CPStats = cp.Stats

// CPStats returns a snapshot of the CP engine counters for metric diffing
// around a measurement window (TotalDuration, BackToBack, ...). For a
// cluster the counters and durations sum across members; LastDuration and
// LongestDuration take the maximum.
func (sys *System) CPStats() CPStats {
	if len(sys.members) == 1 {
		return sys.members[0].engine.Stats()
	}
	var t CPStats
	for _, m := range sys.members {
		st := m.engine.Stats()
		t.CPs += st.CPs
		t.InodesCleaned += st.InodesCleaned
		t.RecordsWritten += st.RecordsWritten
		t.ZombiesReaped += st.ZombiesReaped
		t.SnapsCreated += st.SnapsCreated
		t.SnapsDeleted += st.SnapsDeleted
		t.SnapReclaimed += st.SnapReclaimed
		t.Restores += st.Restores
		t.RestoreFreed += st.RestoreFreed
		t.RestoreBlocks += st.RestoreBlocks
		t.CloneBinds += st.CloneBinds
		t.CloneCopied += st.CloneCopied
		t.SplitCopied += st.SplitCopied
		t.SplitsDone += st.SplitsDone
		t.AmapWrites += st.AmapWrites
		t.TotalDuration += st.TotalDuration
		t.CleanDuration += st.CleanDuration
		t.MetaDuration += st.MetaDuration
		t.BackToBack += st.BackToBack
		if st.LastDuration > t.LastDuration {
			t.LastDuration = st.LastDuration
		}
		if st.LongestDuration > t.LongestDuration {
			t.LongestDuration = st.LongestDuration
		}
	}
	return t
}

// CPPhaseReport renders the per-phase CP duration breakdown (p50/p99 per
// phase) from the engines' always-on histograms.
func (sys *System) CPPhaseReport() string {
	if len(sys.members) == 1 {
		return sys.members[0].engine.PhaseReport()
	}
	var b strings.Builder
	for _, m := range sys.members {
		fmt.Fprintf(&b, "member %d:\n%s", m.id, m.engine.PhaseReport())
	}
	return b.String()
}

// VolFreeBlocks returns the loosely-accounted allocatable-VVBN counter of
// one (globally addressed) volume (free = !active && !summary). After a
// Quiesce it matches FreeSpaceBreakdown(vol).Free exactly.
func (sys *System) VolFreeBlocks(vol int) int64 {
	m, lv := sys.volMember(vol)
	return m.in.VolFree(lv)
}

// SuperblockBytes returns the encoded current superblock — the exact bytes
// the last commit persisted. For a cluster, the members' superblocks are
// concatenated in member order. Determinism tests compare it across runs
// as a compact digest of the committed trees.
func (sys *System) SuperblockBytes() []byte {
	if len(sys.members) == 1 {
		return sys.members[0].a.SuperblockBytes()
	}
	var out []byte
	for _, m := range sys.members {
		out = append(out, m.a.SuperblockBytes()...)
	}
	return out
}

// Flush drives consistency points until all dirty state is persisted on
// every member, without stopping client threads.
func (sys *System) Flush() error {
	for i := 0; i < 8; i++ {
		for _, m := range sys.members {
			m.engine.RequestCP()
		}
		sys.Run(2 * Second)
		if sys.allClean() {
			return nil
		}
	}
	m := sys.dirtiest()
	return fmt.Errorf("wafl: system did not flush (member %d: log ops=%d, frozen=%v)",
		m.id, m.log.ActiveOps(), m.log.HasFrozen())
}

// Quiesce stops accepting new client work (clients see Alive() == false)
// and drives consistency points until every dirty buffer and logged
// operation on every member has reached persistent storage.
func (sys *System) Quiesce() error {
	sys.stopped = true
	for i := 0; i < 8; i++ {
		for _, m := range sys.members {
			m.engine.RequestCP()
		}
		sys.Run(2 * Second)
		if sys.allClean() {
			return nil
		}
	}
	m := sys.dirtiest()
	return fmt.Errorf("wafl: system did not quiesce (member %d: log ops=%d, frozen=%v)",
		m.id, m.log.ActiveOps(), m.log.HasFrozen())
}

// allClean reports whether every member has no logged ops, no frozen log
// half, no running CP, no dirty files, and quiescent snapshot, clone, and
// restore machinery.
func (sys *System) allClean() bool {
	for _, m := range sys.members {
		clean := m.log.ActiveOps() == 0 && !m.log.HasFrozen() && !m.engine.Running()
		for _, v := range m.a.Volumes() {
			if v.DirtyFiles() > 0 || !v.SnapshotsQuiescent() || !v.CloneRestoreQuiescent() {
				clean = false
			}
		}
		if !clean {
			return false
		}
	}
	return true
}

// dirtiest returns a member still holding un-flushed state (for error
// messages), or member 0.
func (sys *System) dirtiest() *Member {
	for _, m := range sys.members {
		if m.log.ActiveOps() != 0 || m.log.HasFrozen() || m.engine.Running() {
			return m
		}
	}
	return sys.members[0]
}
