// Package wafl is the public facade of a simulation-faithful reproduction
// of the WAFL file system's White Alligator write allocator ("Scalable
// Write Allocation in the WAFL File System", Curtis-Maury, Kesavan &
// Bhattacharjee, ICPP 2017).
//
// A System is a complete simulated storage server: a many-core CPU model, a
// RAID aggregate with FlexVol volumes, an NVRAM operation log, a
// Hierarchical Waffinity message scheduler, the White Alligator write
// allocation infrastructure with its pool of parallel cleaner threads, and
// a consistency-point engine. Client workloads drive it through
// ClientThread sessions; Measure reports throughput, latency, and
// per-component simulated core usage — the same metrics the paper's
// instrumented kernels report.
//
// Quick start:
//
//	sys, _ := wafl.NewSystem(wafl.DefaultConfig())
//	ino := sys.CreateFileDirect(0, 8192)
//	sys.ClientThread("writer", func(c *wafl.ClientCtx) {
//	    for i := 0; c.Alive(); i++ {
//	        c.Write(0, ino, wafl.FBN((i*8)%8000), 8)
//	    }
//	})
//	res := sys.Measure(100*wafl.Millisecond, wafl.Second)
//	fmt.Println(res)
package wafl

import (
	"fmt"
	"io"

	"wafl/internal/aggregate"
	"wafl/internal/block"
	"wafl/internal/core"
	"wafl/internal/cp"
	"wafl/internal/faultinject"
	"wafl/internal/nvlog"
	"wafl/internal/obs"
	"wafl/internal/sim"
	"wafl/internal/storage"
	"wafl/internal/waffinity"
)

// Re-exported simulation types, so library users never import internal
// packages directly.
type (
	// Duration is simulated time in nanoseconds.
	Duration = sim.Duration
	// Time is a point in simulated time.
	Time = sim.Time
	// FBN is a file block number.
	FBN = block.FBN
	// AllocatorOptions configures White Alligator (chunk size, parallelism
	// knobs, batching, dynamic tuning, ablation switches).
	AllocatorOptions = core.Options
	// CostModel holds the simulated CPU service demands.
	CostModel = core.CostModel
	// TunerConfig parameterizes the dynamic cleaner-thread tuner.
	TunerConfig = core.TunerConfig
	// AAPolicy selects the Allocation Area selection policy.
	AAPolicy = core.AAPolicy
	// Tracer is the observability spine: trace events, latency histograms,
	// and Chrome-trace export. Nil when tracing is off.
	Tracer = obs.Tracer
	// Event is one buffered trace event; determinism tests compare whole
	// streams of these across runs.
	Event = obs.Event
	// TraceHistogram is one latency histogram recorded by the tracer.
	TraceHistogram = obs.Histogram
	// FaultConfig selects the deterministic drive-fault plan (torn writes,
	// dropped/delayed completions, transient read errors) for crash tests.
	FaultConfig = faultinject.Config
	// FaultInjector is the wired fault plan; obtain it via Injector.
	FaultInjector = faultinject.Injector
	// FaultStats is a snapshot of fault-injection decisions.
	FaultStats = faultinject.Stats
	// RepairStats counts fault repairs on the raw read path (retries of
	// transient errors, RAID reconstructions of persistent ones).
	RepairStats = aggregate.RepairStats
)

// Allocation Area policies (re-exported).
const (
	AAMostFree   = core.AAMostFree
	AAFirstFit   = core.AAFirstFit
	AARoundRobin = core.AARoundRobin
)

// Re-exported duration units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// DriveClass selects a drive service-time model.
type DriveClass int

// Drive classes used by the paper's three testbeds.
const (
	SSD DriveClass = iota // all-SSD mid-range system (§V-A)
	FlashPool
	HDD
)

func (d DriveClass) profile() storage.Profile {
	switch d {
	case HDD:
		return storage.HDD
	case FlashPool:
		return storage.FlashPool
	default:
		return storage.SSD
	}
}

// Config describes a simulated storage server.
type Config struct {
	// Cores is the simulated CPU count (the paper's testbeds have 20).
	Cores int
	// Seed drives all simulation randomness; same seed, same run.
	Seed int64

	// Aggregate geometry.
	Drives      DriveClass
	RAIDGroups  int
	DataDrives  int // per group, excluding parity
	DriveBlocks uint64
	AAStripes   uint64

	// Volumes.
	Volumes      int
	VolumeBlocks uint64

	// NVRAMHalfBytes sizes each NVRAM log half; the CP cadence follows
	// from it.
	NVRAMHalfBytes uint64
	// CPTriggerFullness starts a CP when the active half passes this
	// fraction.
	CPTriggerFullness float64

	// StripesPerVolume and RangesPerVBN size the Waffinity hierarchy.
	StripesPerVolume int
	RangesPerVBN     int
	// StripeWidthBlocks is the contiguous FBN range mapped to one stripe
	// affinity.
	StripeWidthBlocks uint64

	// PayloadBytes is how many bytes of real pattern data each 4 KiB
	// block write carries (the rest is zeros). NVRAM and drive accounting
	// always use the full block size; smaller payloads just make long
	// simulations cheaper on the host. Use 4096 when byte-exact content
	// verification matters.
	PayloadBytes int

	// Trace enables the observability spine: structured trace events and
	// latency histograms, exportable as Chrome trace JSON (WriteTrace).
	// Tracing never changes simulation results — runs are bit-identical
	// with it on or off.
	Trace bool
	// TraceEvents bounds the trace ring buffer (events, not bytes); zero
	// selects the default capacity. Oldest events drop first.
	TraceEvents int

	// Faults configures deterministic drive-fault injection (crash-schedule
	// testing). The zero value disables every fault arm; injection never
	// runs during initial format, so a fresh System is always mountable.
	Faults FaultConfig

	Allocator AllocatorOptions
	Costs     CostModel
	Tuner     TunerConfig
}

// DefaultConfig returns a configuration modelling the paper's mid-range
// testbed: 20 cores, an all-SSD aggregate of two RAID groups, four volumes.
func DefaultConfig() Config {
	return Config{
		Cores:             20,
		Seed:              1,
		Drives:            SSD,
		RAIDGroups:        2,
		DataDrives:        4,
		DriveBlocks:       65536,
		AAStripes:         2048,
		Volumes:           4,
		VolumeBlocks:      1 << 17,
		NVRAMHalfBytes:    24 << 20,
		CPTriggerFullness: 0.5,
		StripesPerVolume:  16,
		RangesPerVBN:      8,
		StripeWidthBlocks: 2048,
		PayloadBytes:      64,
		Allocator:         core.DefaultOptions(),
		Costs:             core.DefaultCosts(),
		Tuner:             core.DefaultTuner(),
	}
}

// System is a running simulated storage server.
type System struct {
	cfg    Config
	s      *sim.Scheduler
	w      *waffinity.Scheduler
	h      *waffinity.Hierarchy
	a      *aggregate.Aggregate
	in     *core.Infra
	pool   *core.Pool
	engine *cp.Engine
	log    *nvlog.Log
	tuner  *core.Tuner
	inj    *faultinject.Injector // nil unless Config.Faults enables an arm

	clients    []*ClientCtx
	threadMark int // first sim thread belonging to this System
	stopped    bool
	opsDone    uint64
	blocksW    uint64
	blocksR    uint64
	stalls     uint64
	stallTime  sim.Duration
	latencies  []sim.Duration
}

// NewSystem builds and formats a simulated storage server.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Cores < 1 {
		return nil, fmt.Errorf("wafl: need at least one core")
	}
	s := sim.New(cfg.Cores, cfg.Seed)
	if cfg.Trace {
		s.SetTracer(obs.New(obs.Options{Capacity: cfg.TraceEvents}))
	}
	threadMark := s.ThreadMark()
	w := waffinity.New(s, cfg.Cores, cfg.Costs.MsgDispatch)
	h := waffinity.NewHierarchy(w, waffinity.HierarchyConfig{
		Aggregates:    1,
		VolumesPerAgg: cfg.Volumes,
		StripesPerVol: cfg.StripesPerVolume,
		RangesPerVBN:  cfg.RangesPerVBN,
	})
	a, err := aggregate.New(s, aggregate.Config{
		Geometry: aggregate.Geometry{
			NumGroups:  cfg.RAIDGroups,
			DataDrives: cfg.DataDrives,
			Depth:      block.DBN(cfg.DriveBlocks),
			AAStripes:  block.DBN(cfg.AAStripes),
		},
		Profile: cfg.Drives.profile(),
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Volumes; i++ {
		a.AddVolume(cfg.VolumeBlocks)
	}
	in := core.NewInfra(w, h, a, cfg.Allocator, cfg.Costs)
	pool := core.NewPool(in, cfg.Allocator, cfg.Costs)
	log := nvlog.New(cfg.NVRAMHalfBytes)
	engine := cp.New(w, h, a, in, pool, log, cfg.Allocator, cfg.Costs)
	sys := &System{cfg: cfg, s: s, w: w, h: h, a: a, in: in, pool: pool, engine: engine, log: log, threadMark: threadMark}
	if cfg.Allocator.Dynamic {
		sys.tuner = core.StartTuner(pool, cfg.Tuner)
	}
	// Commit an initial (empty) CP so the media always carries a valid
	// superblock — a freshly formatted system must be mountable even if it
	// crashes before any client-triggered CP.
	engine.RequestCP()
	for i := 0; i < 100 && a.CPCount() == 0; i++ {
		s.RunFor(10 * sim.Millisecond)
	}
	if a.CPCount() == 0 {
		return nil, fmt.Errorf("wafl: initial consistency point did not complete")
	}
	// Wire fault injection only after the initial format committed: a
	// fresh system must always be mountable. The wiring point is fixed, so
	// identical configs still yield identical event streams.
	if cfg.Faults.Enabled() {
		sys.inj = faultinject.New(cfg.Faults)
		a.SetInjector(sys.inj)
	}
	return sys, nil
}

// Run advances the simulation by d.
func (sys *System) Run(d Duration) { sys.s.RunFor(d) }

// Events returns the number of simulation events dispatched so far — the
// reproducible crash-point coordinate: with a fixed Config (including
// Seed), event index k names the same instant in every run.
func (sys *System) Events() uint64 { return sys.s.Events() }

// RunToEvent advances the simulation until event index n has been
// dispatched, running at most max simulated time. It reports whether the
// halt was reached (false means the run drained or hit max first). The
// scheduler is stopped between events afterwards — the state Crash
// requires.
func (sys *System) RunToEvent(n uint64, max Duration) bool {
	sys.s.HaltAtEvent(n)
	sys.s.RunFor(max)
	sys.s.HaltAtEvent(0)
	return sys.s.Halted()
}

// RequestHalt asks the scheduler to stop before dispatching the next event.
// Call it from inside the simulation (e.g. a CP phase hook); the current
// Run returns once the running event finishes.
func (sys *System) RequestHalt() { sys.s.RequestHalt() }

// Halted reports whether the last Run stopped on a halt request rather
// than draining or reaching its time bound.
func (sys *System) Halted() bool { return sys.s.Halted() }

// SetCPPhaseHook installs fn to be called at every CP phase boundary
// ("start", "clean", "records", "metafiles", "voltable", "amap", "commit",
// "post-commit", "done"). Returning true halts the scheduler at that
// boundary — pair with Crash for phase-targeted crash tests. A hook that
// returns false has no effect on the simulation.
func (sys *System) SetCPPhaseHook(fn func(phase string) bool) {
	sys.engine.SetPhaseHook(fn)
}

// FileExists reports whether ino exists (and is not deleted) on vol.
func (sys *System) FileExists(vol int, ino uint64) bool {
	return sys.a.Volume(vol).LookupFile(ino) != nil
}

// Injector returns the wired fault injector, or nil when Config.Faults is
// zero. Use it to install persistent per-block read errors (FailBlock).
func (sys *System) Injector() *faultinject.Injector { return sys.inj }

// FaultStats returns a snapshot of fault-injection decisions (zero when
// injection is off).
func (sys *System) FaultStats() FaultStats {
	if sys.inj == nil {
		return FaultStats{}
	}
	return sys.inj.Stats()
}

// RepairStats returns the raw-read-path fault-repair counters.
func (sys *System) RepairStats() RepairStats { return sys.a.Repairs() }

// Shutdown terminates every simulated thread so the whole system becomes
// garbage-collectable. Call it when done with a System (experiment harness
// loops leak goroutines otherwise). The System is unusable afterwards; do
// not Shutdown a crashed system you still intend to Recover from (recovery
// shares the scheduler).
func (sys *System) Shutdown() {
	sys.stopped = true
	if sys.tuner != nil {
		sys.tuner.Stop()
	}
	sys.s.Shutdown()
}

// Now returns the current simulated time.
func (sys *System) Now() Time { return sys.s.Now() }

// Tracer returns the observability tracer, or nil when Config.Trace is off.
func (sys *System) Tracer() *Tracer { return sys.s.Tracer() }

// WriteTrace writes the buffered trace events as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. With tracing
// off it writes an empty, still-valid trace document.
func (sys *System) WriteTrace(w io.Writer) error {
	return sys.s.Tracer().WriteChromeTrace(w)
}

// TraceReport renders the tracer's latency histograms (p50/p95/p99 per
// metric), or "" when tracing is off.
func (sys *System) TraceReport() string {
	return sys.s.Tracer().HistogramReport()
}

// Stop makes client loops exit at their next Alive check.
func (sys *System) Stop() { sys.stopped = true }

// ActiveCleaners returns the current active cleaner-thread count.
func (sys *System) ActiveCleaners() int { return sys.pool.Active() }

// CPCount returns the number of completed consistency points.
func (sys *System) CPCount() uint64 { return sys.a.CPCount() }

// AggrFreeBlocks returns the loosely-accounted aggregate free-block count.
func (sys *System) AggrFreeBlocks() int64 { return sys.in.AggrFree() }

// TunerSamples returns the dynamic tuner's decision trace (nil when the
// tuner is off).
func (sys *System) TunerSamples() []core.TunerSample {
	if sys.tuner == nil {
		return nil
	}
	return sys.tuner.Samples
}

// Hierarchy renders the Waffinity affinity tree.
func (sys *System) Hierarchy() string { return sys.h.String() }

// maybeTriggerCP starts a CP when the active NVRAM half passes the
// configured threshold.
func (sys *System) maybeTriggerCP() {
	if sys.log.Fullness() >= sys.cfg.CPTriggerFullness && !sys.log.HasFrozen() {
		sys.engine.RequestCP()
	}
}

// ForceCP requests a consistency point and returns immediately.
func (sys *System) ForceCP() { sys.engine.RequestCP() }

// Prewrite populates a file directly — no client protocol, no NVRAM — to
// age the file system before a measurement. With shuffle the blocks are
// written in random FBN order, so their physical locations scramble and the
// first overwrite wave already frees blocks scattered across the VBN space
// (the aged state a long-running random-write workload converges to).
// Call Flush afterwards to push the blocks to storage.
func (sys *System) Prewrite(vol int, ino uint64, blocks uint64, shuffle bool) {
	v := sys.a.Volume(vol)
	f := v.LookupFile(ino)
	if f == nil {
		panic(fmt.Sprintf("wafl: Prewrite of unknown ino %d", ino))
	}
	order := make([]uint64, blocks)
	for i := range order {
		order[i] = uint64(i)
	}
	if shuffle {
		sys.s.Rand().Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	for _, fbn := range order {
		f.WriteBlock(FBN(fbn), sys.payload(ino, FBN(fbn), 0))
	}
	v.MarkDirty(f)
}

// AgeOverwrite dirties n random distinct blocks of the file's first span
// blocks without logging or timing (benchmark setup): combined with live
// snapshots, repeated overwrite rounds fragment the volume's free space the
// way months of production churn would. Call Flush between rounds so each
// round's frees land before the next scatters more.
func (sys *System) AgeOverwrite(vol int, ino uint64, n int, span uint64) {
	v := sys.a.Volume(vol)
	f := v.LookupFile(ino)
	if f == nil {
		panic(fmt.Sprintf("wafl: AgeOverwrite of unknown ino %d", ino))
	}
	order := make([]uint64, span)
	for i := range order {
		order[i] = uint64(i)
	}
	sys.s.Rand().Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	if n > len(order) {
		n = len(order)
	}
	for _, fbn := range order[:n] {
		v.EnsureL0Resident(f, FBN(fbn))
		f.WriteBlock(FBN(fbn), sys.payload(ino, FBN(fbn), 1))
	}
	v.MarkDirty(f)
}

// SnapCreateDirect queues a snapshot create without logging or timing
// (benchmark setup); the next CP — e.g. a Flush — materializes it.
func (sys *System) SnapCreateDirect(vol int) uint64 {
	return sys.a.Volume(vol).RequestSnapshot()
}

// SnapDeleteDirect removes a snapshot without logging or timing (benchmark
// setup); the next CP reclaims its exclusively-held blocks.
func (sys *System) SnapDeleteDirect(vol int, id uint64) bool {
	return sys.a.Volume(vol).DeleteSnapshot(id)
}

// InfraCounters is the allocator infrastructure's cumulative counter set.
type InfraCounters = core.InfraStats

// Counters returns a snapshot of the infrastructure counters for metric
// diffing around a measurement window (FillWords, GetWaits, ...).
func (sys *System) Counters() InfraCounters { return sys.in.Stats() }

// CPStats is the consistency-point engine's cumulative counter set.
type CPStats = cp.Stats

// CPStats returns a snapshot of the CP engine counters for metric diffing
// around a measurement window (TotalDuration, BackToBack, ...).
func (sys *System) CPStats() CPStats { return sys.engine.Stats() }

// CPPhaseReport renders the per-phase CP duration breakdown (p50/p99 per
// phase) from the engine's always-on histograms.
func (sys *System) CPPhaseReport() string { return sys.engine.PhaseReport() }

// VolFreeBlocks returns the loosely-accounted allocatable-VVBN counter of
// one volume (free = !active && !summary). After a Quiesce it matches
// FreeSpaceBreakdown(vol).Free exactly.
func (sys *System) VolFreeBlocks(vol int) int64 { return sys.in.VolFree(vol) }

// SuperblockBytes returns the encoded current superblock — the exact bytes
// the last commit persisted. Determinism tests compare it across runs as a
// compact digest of the committed tree.
func (sys *System) SuperblockBytes() []byte { return sys.a.SuperblockBytes() }

// Flush drives consistency points until all dirty state is persisted,
// without stopping client threads.
func (sys *System) Flush() error {
	for i := 0; i < 8; i++ {
		sys.engine.RequestCP()
		sys.Run(2 * Second)
		clean := sys.log.ActiveOps() == 0 && !sys.log.HasFrozen() && !sys.engine.Running()
		for _, v := range sys.a.Volumes() {
			if v.DirtyFiles() > 0 || !v.SnapshotsQuiescent() {
				clean = false
			}
		}
		if clean {
			return nil
		}
	}
	return fmt.Errorf("wafl: system did not flush (log ops=%d, frozen=%v)",
		sys.log.ActiveOps(), sys.log.HasFrozen())
}

// Quiesce stops accepting new client work (clients see Alive() == false)
// and drives consistency points until every dirty buffer and logged
// operation has reached persistent storage.
func (sys *System) Quiesce() error {
	sys.stopped = true
	for i := 0; i < 8; i++ {
		sys.engine.RequestCP()
		sys.Run(2 * Second)
		clean := sys.log.ActiveOps() == 0 && !sys.log.HasFrozen() && !sys.engine.Running()
		for _, v := range sys.a.Volumes() {
			if v.DirtyFiles() > 0 || !v.SnapshotsQuiescent() {
				clean = false
			}
		}
		if clean {
			return nil
		}
	}
	return fmt.Errorf("wafl: system did not quiesce (log ops=%d, frozen=%v)",
		sys.log.ActiveOps(), sys.log.HasFrozen())
}
