package wafl

import (
	"bytes"
	"reflect"
	"testing"
)

// runOverloadedCP drives a back-to-back-CP workload (tiny NVRAM, closed-loop
// writers across both volumes) with ParallelCP on or off and returns the
// measured window plus cumulative CP-engine stats. Everything else — seed,
// workload, geometry — is identical, so the two modes are directly
// comparable.
func runOverloadedCP(t *testing.T, parallel bool) (Results, CPStats) {
	t.Helper()
	cfg := smallConfig()
	cfg.Volumes = 4
	cfg.VolumeBlocks = 1 << 14
	cfg.NVRAMHalfBytes = 256 << 10 // tiny log: constant back-to-back CPs
	cfg.Allocator.ParallelCP = parallel
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Many small files per volume: every CP freezes and records dozens of
	// inodes, so the per-volume CP phases carry real work.
	const filesPerVol = 32
	inos := make([][]uint64, cfg.Volumes)
	for v := range inos {
		inos[v] = make([]uint64, filesPerVol)
		for f := range inos[v] {
			inos[v][f] = sys.CreateFileDirect(v, 256)
		}
	}
	for i := 0; i < 8; i++ {
		vol := i % cfg.Volumes
		id := i
		sys.ClientThread("w", func(c *ClientCtx) {
			j := 0
			for c.Alive() {
				f := (j + id*7) % filesPerVol
				c.Write(vol, inos[vol][f], FBN((j*3)%250), 1)
				j++
			}
		})
	}
	res := sys.Measure(50*Millisecond, 200*Millisecond)
	st := sys.CPStats()
	sys.Shutdown()
	return res, st
}

// TestParallelCPReducesStallTime is the headline regression test for
// parallel consistency points: under NVRAM pressure the CP is the
// bottleneck, so fanning per-volume CP phases across Volume affinities must
// strictly shrink both the mean CP duration and the client-visible NVRAM
// stall time relative to the serial engine on the same seed.
func TestParallelCPReducesStallTime(t *testing.T) {
	serial, sst := runOverloadedCP(t, false)
	par, pst := runOverloadedCP(t, true)
	if serial.Stalls == 0 || serial.StallTime == 0 {
		t.Fatalf("workload must overload the serial engine: %s", serial)
	}
	if sst.CPs == 0 || pst.CPs == 0 {
		t.Fatalf("no CPs measured: serial=%d parallel=%d", sst.CPs, pst.CPs)
	}
	sAvg := sst.TotalDuration / Duration(sst.CPs)
	pAvg := pst.TotalDuration / Duration(pst.CPs)
	t.Logf("serial:   %s cpAvg=%v back2back=%d", serial, sAvg, sst.BackToBack)
	t.Logf("parallel: %s cpAvg=%v back2back=%d", par, pAvg, pst.BackToBack)
	if pAvg >= sAvg {
		t.Fatalf("parallel CP not faster: avg %v vs serial %v", pAvg, sAvg)
	}
	if par.StallTime >= serial.StallTime {
		t.Fatalf("parallel CP did not reduce client stall time: %v vs serial %v",
			par.StallTime, serial.StallTime)
	}
}

// runDeterminismProbe runs a fixed parallel-CP workload (writes, snapshot
// create/delete, file churn on both volumes) to quiescence and returns the
// run's full fingerprint: total scheduler event count, the buffered trace
// event stream, and the committed superblock bytes.
func runDeterminismProbe(t *testing.T) (uint64, []Event, []byte) {
	t.Helper()
	cfg := smallConfig()
	cfg.Trace = true
	cfg.NVRAMHalfBytes = 512 << 10
	cfg.Allocator.ParallelCP = true
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inos := make([]uint64, cfg.Volumes)
	for v := range inos {
		inos[v] = sys.CreateFileDirect(v, 1<<14)
	}
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		vol := i % cfg.Volumes
		id := i
		sys.ClientThread("w", func(c *ClientCtx) {
			var snap uint64
			for j := 0; j < 150; j++ {
				c.Write(vol, inos[vol], FBN((j*8+id*997)%12000), 8)
				if id == 0 && j == 40 {
					snap = c.SnapCreate(vol)
				}
				if id == 0 && j == 120 && snap != 0 {
					c.SnapDelete(vol, snap)
				}
			}
		})
	}
	sys.Run(5 * Second)
	if err := sys.Quiesce(); err != nil {
		t.Fatal(err)
	}
	events := sys.Events()
	trace := sys.Tracer().Events()
	sb := sys.SuperblockBytes()
	sys.Shutdown()
	return events, trace, sb
}

// TestParallelCPDeterminism proves the parallel engine keeps the simulator's
// determinism contract: two runs with identical seeds produce bit-identical
// schedules (event counts), bit-identical trace streams, and bit-identical
// committed superblocks.
func TestParallelCPDeterminism(t *testing.T) {
	ev1, tr1, sb1 := runDeterminismProbe(t)
	ev2, tr2, sb2 := runDeterminismProbe(t)
	if ev1 != ev2 {
		t.Fatalf("event counts diverge: %d vs %d", ev1, ev2)
	}
	if len(tr1) != len(tr2) {
		t.Fatalf("trace lengths diverge: %d vs %d", len(tr1), len(tr2))
	}
	if !reflect.DeepEqual(tr1, tr2) {
		for i := range tr1 {
			if tr1[i] != tr2[i] {
				t.Fatalf("trace diverges at event %d: %+v vs %+v", i, tr1[i], tr2[i])
			}
		}
	}
	if !bytes.Equal(sb1, sb2) {
		t.Fatal("committed superblocks diverge across identical runs")
	}
}

// TestSnapReclaimVolFreeCounterHonest exercises the snapshot lifecycle
// (write, snap, overwrite, delete snap) and checks the volume free-space
// counter against the ground-truth bitmap scan at every quiescent point:
// reclaiming a snapshot must credit the freed VVBNs back to the counter.
func TestSnapReclaimVolFreeCounterHonest(t *testing.T) {
	sys, err := NewSystem(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	ino := sys.CreateFileDirect(0, 1<<14)
	check := func(label string) {
		t.Helper()
		if err := sys.Quiesce(); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		fs := sys.FreeSpaceBreakdown(0)
		if got := sys.VolFreeBlocks(0); got != int64(fs.Free) {
			t.Fatalf("%s: vol free counter %d, bitmap says %d free", label, got, fs.Free)
		}
		sys.stopped = false // rearm after Quiesce for the next phase
	}

	var snap uint64
	sys.ClientThread("base", func(c *ClientCtx) {
		for fbn := FBN(0); fbn < 128; fbn++ {
			c.WriteTag(0, ino, fbn, 1, 'A')
		}
		snap = c.SnapCreate(0)
	})
	sys.Run(2 * Second)
	check("after snapshot create")
	if snap == 0 {
		t.Fatal("snapshot not created")
	}

	sys.ClientThread("churn", func(c *ClientCtx) {
		for fbn := FBN(0); fbn < 128; fbn++ {
			c.WriteTag(0, ino, fbn, 1, 'B')
		}
	})
	sys.Run(2 * Second)
	check("after overwrite under snapshot")

	var deleted bool
	sys.ClientThread("reaper", func(c *ClientCtx) {
		deleted = c.SnapDelete(0, snap)
	})
	sys.Run(2 * Second)
	check("after snapshot delete")
	if !deleted {
		t.Fatal("snapshot delete failed")
	}
	if fs := sys.FreeSpaceBreakdown(0); fs.SnapOnly != 0 {
		t.Fatalf("snap-held blocks remain after reclaim: %d", fs.SnapOnly)
	}
}
