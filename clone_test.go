package wafl

import (
	"bytes"
	"fmt"
	"testing"
)

// cloneConfig is crashConfig with clone slots provisioned.
func cloneConfig() Config {
	cfg := crashConfig()
	cfg.CloneSlots = 2
	return cfg
}

// expectBlock checks one live block of (vol, ino) against the tagged payload
// (or a hole when tag < 0).
func expectBlock(t *testing.T, sys *System, vol int, ino uint64, fbn FBN, tag int, label string) {
	t.Helper()
	got := sys.VerifyRead(vol, ino, fbn)
	if tag < 0 {
		if got != nil {
			t.Fatalf("%s: vol %d fbn %d: want hole, got data", label, vol, fbn)
		}
		return
	}
	want := sys.payload(ino, fbn, byte(tag))
	if got == nil {
		t.Fatalf("%s: vol %d fbn %d: want tag %q, got hole", label, vol, fbn, byte(tag))
	}
	if !bytes.Equal(got[:len(want)], want) {
		t.Fatalf("%s: vol %d fbn %d: content mismatch (want tag %q)", label, vol, fbn, byte(tag))
	}
}

// TestCloneEndToEnd drives the full clone lifecycle: a clone binds to a
// parent snapshot sharing every base block (no data copy), diverges by
// copy-on-first-write without disturbing the parent or its snapshot, holds
// the parent snapshot against deletion, surfaces clone-held blocks in the
// space breakdown, and a split block-copies the remaining shared blocks
// until the parent hold and delete guard drop. fsck stays clean throughout
// (shared base blocks are neither leaked nor double-referenced).
func TestCloneEndToEnd(t *testing.T) {
	sys, ino := newCrashSystem(t, cloneConfig())
	const n = 96
	var snapID uint64
	var cloneVol int
	var cloneOK bool
	sys.ClientThread("cloner", func(c *ClientCtx) {
		for fbn := FBN(0); fbn < n; fbn++ {
			c.WriteTag(0, ino, fbn, 1, 'A')
		}
		snapID = c.SnapCreate(0)
		// The parent's live file system moves on past the snapshot.
		for fbn := FBN(0); fbn < n/2; fbn++ {
			c.WriteTag(0, ino, fbn, 1, 'B')
		}
		cloneVol, cloneOK = c.CloneCreate(0, snapID)
		if !cloneOK {
			return
		}
		// The clone diverges over the first quarter.
		for fbn := FBN(0); fbn < n/4; fbn++ {
			c.WriteTag(cloneVol, ino, fbn, 1, 'D')
		}
	})
	sys.Run(10 * Second)
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	if !cloneOK {
		t.Fatal("clone create failed")
	}
	if !sys.CloneBound(cloneVol) {
		t.Fatal("clone not bound after flush")
	}
	if vols := sys.CloneVolumes(); len(vols) != 1 || vols[0] != cloneVol {
		t.Fatalf("CloneVolumes = %v, want [%d]", vols, cloneVol)
	}
	if pv, ps, ok := sys.CloneParent(cloneVol); !ok || pv != 0 || ps != snapID {
		t.Fatalf("CloneParent = (%d, %d, %v), want (0, %d, true)", pv, ps, ok, snapID)
	}

	// (a) Content: the clone sees its own writes over the snapshot image;
	// the parent live file system and the frozen snapshot are untouched.
	for fbn := FBN(0); fbn < n/4; fbn++ {
		expectBlock(t, sys, cloneVol, ino, fbn, 'D', "clone diverged")
	}
	for fbn := FBN(n / 4); fbn < n; fbn++ {
		expectBlock(t, sys, cloneVol, ino, fbn, 'A', "clone base")
	}
	for fbn := FBN(0); fbn < n/2; fbn++ {
		expectBlock(t, sys, 0, ino, fbn, 'B', "parent live")
	}
	for fbn := FBN(n / 2); fbn < n; fbn++ {
		expectBlock(t, sys, 0, ino, fbn, 'A', "parent live")
	}
	for fbn := FBN(0); fbn < n; fbn++ {
		expectSnapBlock(t, sys, snapID, ino, fbn, 'A', "parent snapshot under clone")
	}

	// (b) Space accounting: base blocks are clone-held; the diverged ones
	// are still held (summary hold outlives divergence until a split).
	fsb := sys.FreeSpaceBreakdown(cloneVol)
	if fsb.CloneHeld == 0 {
		t.Fatalf("clone reports no clone-held blocks: %+v", fsb)
	}
	if fsb.SplitPending != 0 {
		t.Fatalf("split pending before any split: %+v", fsb)
	}

	// (c) Delete guard: the parent snapshot cannot die while the clone
	// shares its blocks.
	if sys.SnapDeleteDirect(0, snapID) {
		t.Fatal("parent snapshot deleted while a clone references it")
	}

	// (d) CP accounting and integrity with a live clone.
	if st := sys.CPStats(); st.CloneBinds != 1 {
		t.Fatalf("CloneBinds = %d, want 1", st.CloneBinds)
	}
	if rep := sys.Fsck(); !rep.OK() {
		t.Fatalf("fsck with bound clone: %s", rep)
	}

	// (e) Split: background block copy until no base block is shared, then
	// the parent hold and delete guard drop.
	sys.ClientThread("splitter", func(c *ClientCtx) {
		if !c.CloneSplit(cloneVol) {
			t.Error("CloneSplit refused")
		}
	})
	sys.Run(2 * Second)
	for i := 0; i < 50 && !sys.CloneSplitDone(cloneVol); i++ {
		sys.ForceCP()
		sys.Run(500 * Millisecond)
	}
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	if !sys.CloneSplitDone(cloneVol) {
		t.Fatal("split did not complete")
	}
	if st := sys.CPStats(); st.SplitsDone != 1 || st.SplitCopied == 0 {
		t.Fatalf("split counters: done=%d copied=%d", st.SplitsDone, st.SplitCopied)
	}
	if fsb := sys.FreeSpaceBreakdown(cloneVol); fsb.CloneHeld != 0 || fsb.SplitPending != 0 {
		t.Fatalf("clone-held blocks after split: %+v", fsb)
	}

	// (f) Guard dropped: the parent snapshot can die now, and the split
	// volume keeps its content (its own copies).
	if !sys.SnapDeleteDirect(0, snapID) {
		t.Fatal("parent snapshot still guarded after split")
	}
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	for fbn := FBN(0); fbn < n/4; fbn++ {
		expectBlock(t, sys, cloneVol, ino, fbn, 'D', "split volume")
	}
	for fbn := FBN(n / 4); fbn < n; fbn++ {
		expectBlock(t, sys, cloneVol, ino, fbn, 'A', "split volume")
	}
	if rep := sys.Fsck(); !rep.OK() {
		t.Fatalf("fsck after split and parent snapshot delete: %s", rep)
	}
}

// TestSnapRestoreEndToEnd checks instant SnapRestore: a volume reverts to a
// snapshot without data copy — overwritten and extended blocks vanish, the
// freed space returns to the pool, the gate reopens for new writes — and the
// CP-side work is O(metadata), far below the data size being "restored".
func TestSnapRestoreEndToEnd(t *testing.T) {
	sys, ino := newCrashSystem(t, cloneConfig())
	const n = 256
	var snapID uint64
	var restored bool
	var freeBefore uint64
	sys.ClientThread("restorer", func(c *ClientCtx) {
		for fbn := FBN(0); fbn < n; fbn++ {
			c.WriteTag(0, ino, fbn, 1, 'A')
		}
		snapID = c.SnapCreate(0)
		// Churn past the snapshot: overwrite everything, extend the file.
		for fbn := FBN(0); fbn < n; fbn++ {
			c.WriteTag(0, ino, fbn, 1, 'B')
		}
		for fbn := FBN(n); fbn < n+64; fbn++ {
			c.WriteTag(0, ino, fbn, 1, 'B')
		}
		freeBefore = sys.FreeSpaceBreakdown(0).Free
		restored = c.SnapRestore(0, snapID)
		if !restored {
			return
		}
		// The gate reopened: the volume accepts writes again.
		c.WriteTag(0, ino, 0, 1, 'C')
	})
	sys.Run(20 * Second)
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	if !restored {
		t.Fatal("SnapRestore failed")
	}

	// Content reverted: block 0 carries the post-restore write, the rest of
	// the snapshot image is back, and the post-snapshot extension is gone.
	expectBlock(t, sys, 0, ino, 0, 'C', "post-restore write")
	for fbn := FBN(1); fbn < n; fbn++ {
		expectBlock(t, sys, 0, ino, fbn, 'A', "restored image")
	}
	for fbn := FBN(n); fbn < n+64; fbn++ {
		expectBlock(t, sys, 0, ino, fbn, -1, "discarded extension")
	}
	// The snapshot itself survives the restore.
	for fbn := FBN(0); fbn < n; fbn++ {
		expectSnapBlock(t, sys, snapID, ino, fbn, 'A', "snapshot after restore")
	}

	// Space: the discarded present's blocks returned to the free pool.
	fsb := sys.FreeSpaceBreakdown(0)
	if fsb.Free <= freeBefore {
		t.Fatalf("restore freed nothing: free %d -> %d", freeBefore, fsb.Free)
	}

	// O(metadata): the CP-side restore walk is bitmap words plus inode-file
	// blocks — far below the ~320 data blocks whose ownership flipped.
	st := sys.CPStats()
	if st.Restores != 1 {
		t.Fatalf("Restores = %d, want 1", st.Restores)
	}
	if st.RestoreBlocks == 0 || st.RestoreBlocks > n/2 {
		t.Fatalf("restore walked %d metadata blocks; want (0, %d] — not O(data)", st.RestoreBlocks, n/2)
	}
	if st.RestoreFreed == 0 {
		t.Fatalf("restore freed no blocks: %+v", st)
	}
	if rep := sys.Fsck(); !rep.OK() {
		t.Fatalf("fsck after restore: %s", rep)
	}
}

// TestSnapRestoreOfClone restores a clone volume to its own snapshot: the
// two subsystems compose — the clone's snapshot captures diverged state, a
// later overwrite is rolled back, and the base holds stay intact.
func TestSnapRestoreOfClone(t *testing.T) {
	sys, ino := newCrashSystem(t, cloneConfig())
	const n = 64
	var cloneVol int
	var ok, restored bool
	var cloneSnap uint64
	sys.ClientThread("w", func(c *ClientCtx) {
		for fbn := FBN(0); fbn < n; fbn++ {
			c.WriteTag(0, ino, fbn, 1, 'A')
		}
		parentSnap := c.SnapCreate(0)
		cloneVol, ok = c.CloneCreate(0, parentSnap)
		if !ok {
			return
		}
		for fbn := FBN(0); fbn < n/2; fbn++ {
			c.WriteTag(cloneVol, ino, fbn, 1, 'D')
		}
		cloneSnap = c.SnapCreate(cloneVol)
		for fbn := FBN(0); fbn < n; fbn++ {
			c.WriteTag(cloneVol, ino, fbn, 1, 'E')
		}
		restored = c.SnapRestore(cloneVol, cloneSnap)
	})
	sys.Run(20 * Second)
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	if !ok || !restored {
		t.Fatalf("clone=%v restore=%v", ok, restored)
	}
	for fbn := FBN(0); fbn < n/2; fbn++ {
		expectBlock(t, sys, cloneVol, ino, fbn, 'D', "restored clone")
	}
	for fbn := FBN(n / 2); fbn < n; fbn++ {
		expectBlock(t, sys, cloneVol, ino, fbn, 'A', "restored clone base")
	}
	if fsb := sys.FreeSpaceBreakdown(cloneVol); fsb.CloneHeld == 0 {
		t.Fatalf("clone lost its base holds across a restore: %+v", fsb)
	}
	if rep := sys.Fsck(); !rep.OK() {
		t.Fatalf("fsck after clone restore: %s", rep)
	}
}

// cloneCrashSweep crashes at CP phase boundary j (1-based) inside the
// window opened by op, then verifies the recovered image with verify (run
// twice: right after recovery and again after a quiesce) and fsck.
func cloneCrashSweep(t *testing.T, setup func(sys *System, ino uint64, window *bool), verify func(t *testing.T, rec *System, ino uint64, label string)) {
	for j := 1; j <= len(cpBoundaries); j++ {
		j := j
		t.Run(fmt.Sprintf("boundary-%02d", j), func(t *testing.T) {
			sys, ino := newCrashSystem(t, cloneConfig())
			window := false
			setup(sys, ino, &window)
			hits := 0
			sys.SetCPPhaseHook(func(phase string) bool {
				if !window {
					return false
				}
				hits++
				if hits == j {
					sys.RequestHalt()
					return true
				}
				return false
			})
			sys.Run(30 * Second)
			if !sys.Halted() {
				t.Fatalf("boundary %d never reached inside the op window", j)
			}
			sys.Crash()
			rec, err := sys.Recover()
			if err != nil {
				t.Fatal(err)
			}
			verify(t, rec, ino, "recovery")
			if rep := rec.Fsck(); !rep.OK() {
				t.Fatalf("fsck after crash at boundary %d: %s", j, rep)
			}
			if err := rec.Quiesce(); err != nil {
				t.Fatal(err)
			}
			verify(t, rec, ino, "after quiesce")
			if rep := rec.Fsck(); !rep.OK() {
				t.Fatalf("fsck after quiesce: %s", rep)
			}
			rec.Shutdown()
		})
	}
}

// TestCloneCreateCrashAtEveryCPPhase crashes at each CP phase boundary while
// a CloneCreate is in flight. The create was never acknowledged, so both
// legs are legal: no clone at all, or (once the logged record replays and a
// CP commits) a fully bound clone whose content is exactly the parent
// snapshot's frozen image — never anything in between.
func TestCloneCreateCrashAtEveryCPPhase(t *testing.T) {
	const n = 48
	var snapID uint64
	setup := func(sys *System, ino uint64, window *bool) {
		snapID = 0
		sys.ClientThread("w", func(c *ClientCtx) {
			for fbn := FBN(0); fbn < n; fbn++ {
				c.WriteTag(0, ino, fbn, 1, 'A')
			}
			snapID = c.SnapCreate(0)
			*window = true
			cv, ok := c.CloneCreate(0, snapID)
			*window = false
			if ok {
				for fbn := FBN(0); fbn < 8; fbn++ {
					c.WriteTag(cv, ino, fbn, 1, 'D')
				}
			}
		})
	}
	verify := func(t *testing.T, rec *System, ino uint64, label string) {
		t.Helper()
		if snapID == 0 || !rec.SnapshotExists(0, snapID) {
			t.Fatalf("%s: acked parent snapshot missing", label)
		}
		for fbn := FBN(0); fbn < n; fbn++ {
			expectBlock(t, rec, 0, ino, fbn, 'A', label)
			expectSnapBlock(t, rec, snapID, ino, fbn, 'A', label)
		}
		// If the logged create replayed, the clone must converge to a full
		// bind with exactly the frozen image (it may still be pending right
		// after recovery; after quiesce a pending bind must have resolved).
		for _, cv := range rec.CloneVolumes() {
			if label == "after quiesce" && !rec.CloneBound(cv) {
				t.Fatalf("%s: replayed clone bind never materialized", label)
			}
			if rec.CloneBound(cv) {
				for fbn := FBN(0); fbn < n; fbn++ {
					expectBlock(t, rec, cv, ino, fbn, 'A', label+" clone image")
				}
				if rec.SnapDeleteDirect(0, snapID) {
					t.Fatalf("%s: parent snapshot not guarded by recovered clone", label)
				}
			}
		}
	}
	cloneCrashSweep(t, setup, verify)
}

// TestCloneSplitCrashAtEveryCPPhase crashes at each CP phase boundary after
// a CloneSplit was issued (the window stays open through the copying CPs).
// The clone's acknowledged content — diverged writes over the base image —
// must survive every crash; after quiescing, the split either completed
// (holds and guard dropped) or the still-bound clone still guards its
// parent, but never a half-state.
func TestCloneSplitCrashAtEveryCPPhase(t *testing.T) {
	const n = 48
	var snapID uint64
	var cloneVol int
	var cloneOK bool
	setup := func(sys *System, ino uint64, window *bool) {
		snapID, cloneVol, cloneOK = 0, 0, false
		sys.ClientThread("w", func(c *ClientCtx) {
			for fbn := FBN(0); fbn < n; fbn++ {
				c.WriteTag(0, ino, fbn, 1, 'A')
			}
			snapID = c.SnapCreate(0)
			cloneVol, cloneOK = c.CloneCreate(0, snapID)
			if !cloneOK {
				return
			}
			for fbn := FBN(0); fbn < n/4; fbn++ {
				c.WriteTag(cloneVol, ino, fbn, 1, 'D')
			}
			*window = true
			c.CloneSplit(cloneVol)
			// Pump writes so CPs keep coming while the split copies.
			for i := 0; c.Alive() && i < 2000; i++ {
				c.WriteTag(0, ino, FBN(i%int(n)), 1, 'B')
			}
		})
	}
	verify := func(t *testing.T, rec *System, ino uint64, label string) {
		t.Helper()
		if !cloneOK {
			t.Fatalf("%s: clone never bound before the split window", label)
		}
		for fbn := FBN(0); fbn < n/4; fbn++ {
			expectBlock(t, rec, cloneVol, ino, fbn, 'D', label+" clone")
		}
		for fbn := FBN(n / 4); fbn < n; fbn++ {
			expectBlock(t, rec, cloneVol, ino, fbn, 'A', label+" clone base")
		}
		for fbn := FBN(0); fbn < n; fbn++ {
			expectSnapBlock(t, rec, snapID, ino, fbn, 'A', label+" parent snap")
		}
		if rec.CloneSplitDone(cloneVol) {
			if fsb := rec.FreeSpaceBreakdown(cloneVol); fsb.CloneHeld != 0 {
				t.Fatalf("%s: split done but %d blocks still clone-held", label, fsb.CloneHeld)
			}
		} else if rec.CloneBound(cloneVol) {
			if rec.SnapDeleteDirect(0, snapID) {
				t.Fatalf("%s: mid-split clone no longer guards its parent snapshot", label)
			}
		}
	}
	cloneCrashSweep(t, setup, verify)
}

// TestSnapRestoreCrashAtEveryCPPhase crashes at each CP phase boundary while
// a SnapRestore is in flight. The restore was never acknowledged, so two
// legs are legal — the volume fully reverted to the snapshot image, or the
// pre-restore acknowledged writes fully intact — but never a mix: the
// restore is atomic with a committed CP.
func TestSnapRestoreCrashAtEveryCPPhase(t *testing.T) {
	const n = 48
	var snapID uint64
	setup := func(sys *System, ino uint64, window *bool) {
		snapID = 0
		sys.ClientThread("w", func(c *ClientCtx) {
			for fbn := FBN(0); fbn < n; fbn++ {
				c.WriteTag(0, ino, fbn, 1, 'A')
			}
			snapID = c.SnapCreate(0)
			for fbn := FBN(0); fbn < n/2; fbn++ {
				c.WriteTag(0, ino, fbn, 1, 'B')
			}
			*window = true
			c.SnapRestore(0, snapID)
			*window = false
		})
	}
	verify := func(t *testing.T, rec *System, ino uint64, label string) {
		t.Helper()
		if snapID == 0 || !rec.SnapshotExists(0, snapID) {
			t.Fatalf("%s: acked snapshot missing", label)
		}
		// Decide the leg from block 0, then the whole image must agree.
		legB := false
		if got := rec.VerifyRead(0, ino, 0); got != nil {
			wantB := rec.payload(ino, 0, 'B')
			legB = bytes.Equal(got[:len(wantB)], wantB)
		}
		for fbn := FBN(0); fbn < n; fbn++ {
			want := 'A'
			if legB && fbn < n/2 {
				want = 'B'
			}
			expectBlock(t, rec, 0, ino, fbn, int(want), fmt.Sprintf("%s (legB=%v)", label, legB))
		}
		for fbn := FBN(0); fbn < n; fbn++ {
			expectSnapBlock(t, rec, snapID, ino, fbn, 'A', label)
		}
	}
	cloneCrashSweep(t, setup, verify)
}

// TestBCacheRestoreCoherence is the buffer-cache coherence regression: a
// SnapRestore must invalidate the volume's resident blocks — the discarded
// present's residency must not let post-restore reads skip media — and a
// file delete must evict the file's blocks from the resident set.
func TestBCacheRestoreCoherence(t *testing.T) {
	cfg := cloneConfig()
	cfg.BCacheBlocks = 4096
	sys, ino := newCrashSystem(t, cfg)
	const n = 64
	var snapID uint64
	var missesBeforeReread, missesAfterReread uint64
	var residentWithFile, residentAfterDelete int
	sys.ClientThread("w", func(c *ClientCtx) {
		for fbn := FBN(0); fbn < n; fbn++ {
			c.WriteTag(0, ino, fbn, 1, 'A')
		}
		snapID = c.SnapCreate(0)
		for fbn := FBN(0); fbn < n; fbn++ {
			c.WriteTag(0, ino, fbn, 1, 'B')
		}
		// Warm: every block is resident from its write.
		c.Read(0, ino, 0, n)
		if !c.SnapRestore(0, snapID) {
			t.Error("restore failed")
			return
		}
		missesBeforeReread = sys.BCacheStats().Misses
		c.Read(0, ino, 0, n)
		missesAfterReread = sys.BCacheStats().Misses
		// Delete-path coherence: a deleted file's blocks leave the
		// resident set.
		f := c.Create(0, 64)
		c.Write(0, f, 0, 32)
		residentWithFile = sys.BCacheStats().Resident
		c.Delete(0, f)
		residentAfterDelete = sys.BCacheStats().Resident
	})
	sys.Run(20 * Second)
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := missesAfterReread - missesBeforeReread; got < n {
		t.Fatalf("re-read after restore took %d misses, want >= %d: stale residency survived the restore", got, n)
	}
	if residentAfterDelete >= residentWithFile {
		t.Fatalf("delete evicted nothing: resident %d -> %d", residentWithFile, residentAfterDelete)
	}
	// Content correctness through the cache after the restore.
	for fbn := FBN(0); fbn < n; fbn++ {
		expectBlock(t, sys, 0, ino, fbn, 'A', "post-restore read-through")
	}
	if rep := sys.Fsck(); !rep.OK() {
		t.Fatalf("fsck: %s", rep)
	}
}

// TestCloneFreeRunBitIdenticalToBaseline pins the clone subsystem's zero-
// cost contract: with CloneSlots = 0 (the default) the system is
// bit-identical — superblock, trace stream, event count — to the PR 6
// Members=1 golden baseline captured before clones existed.
func TestCloneFreeRunBitIdenticalToBaseline(t *testing.T) {
	cfg := smallConfig()
	cfg.CloneSlots = 0
	super, trace, events := goldenScenario(t, cfg)
	if super != goldenSuperSHA {
		t.Errorf("superblock digest drifted with CloneSlots=0:\n got %s\nwant %s", super, goldenSuperSHA)
	}
	if trace != goldenTraceSHA {
		t.Errorf("trace digest drifted with CloneSlots=0:\n got %s\nwant %s", trace, goldenTraceSHA)
	}
	if events != goldenEvents {
		t.Errorf("event count drifted with CloneSlots=0: got %d want %d", events, goldenEvents)
	}
}
