package wafl

import (
	"bytes"
	"fmt"

	"wafl/internal/aggregate"
	"wafl/internal/block"
	"wafl/internal/fs"
	"wafl/internal/snap"
)

// FsckReport summarizes an offline consistency check of the committed
// (on-media) file system image.
type FsckReport struct {
	ReferencedBlocks uint64 // blocks reachable from the superblock
	UsedBits         uint64 // bits set in the persisted activemap
	Leaked           uint64 // used but unreachable (space leak)
	DoubleRefs       uint64 // blocks referenced by two pointers
	Missing          uint64 // referenced but not marked used (corruption)
	ContainerErrs    uint64 // container-map entries disagreeing with trees
	VVBNErrs         uint64 // volume activemap bits disagreeing with trees
	SnapErrs         uint64 // summary/snapmap disagreements, ownerless bits
	IdxErrs          uint64 // free-space index counters/summary vs recount
	Files            uint64
	Snapshots        uint64 // materialized snapshots found on media
	Errors           []string
}

// OK reports whether the image is fully consistent. Leaked blocks are a
// space bug; Missing and DoubleRefs are corruption.
func (r FsckReport) OK() bool {
	return r.Missing == 0 && r.DoubleRefs == 0 && r.Leaked == 0 &&
		r.ContainerErrs == 0 && r.VVBNErrs == 0 && r.SnapErrs == 0 &&
		r.IdxErrs == 0 && len(r.Errors) == 0
}

func (r FsckReport) String() string {
	return fmt.Sprintf("fsck: refs=%d used=%d leaked=%d double=%d missing=%d containerErrs=%d vvbnErrs=%d snapErrs=%d idxErrs=%d files=%d snaps=%d errs=%d",
		r.ReferencedBlocks, r.UsedBits, r.Leaked, r.DoubleRefs, r.Missing,
		r.ContainerErrs, r.VVBNErrs, r.SnapErrs, r.IdxErrs, r.Files, r.Snapshots, len(r.Errors))
}

// Fsck checks every member's committed media image and merges the
// reports: counters sum, errors concatenate (member-prefixed on a
// cluster). It never touches the running system's in-memory state.
func (sys *System) Fsck() FsckReport {
	if len(sys.members) == 1 {
		return sys.members[0].fsck()
	}
	var r FsckReport
	for _, mem := range sys.members {
		mr := mem.fsck()
		r.ReferencedBlocks += mr.ReferencedBlocks
		r.UsedBits += mr.UsedBits
		r.Leaked += mr.Leaked
		r.DoubleRefs += mr.DoubleRefs
		r.Missing += mr.Missing
		r.ContainerErrs += mr.ContainerErrs
		r.VVBNErrs += mr.VVBNErrs
		r.SnapErrs += mr.SnapErrs
		r.IdxErrs += mr.IdxErrs
		r.Files += mr.Files
		r.Snapshots += mr.Snapshots
		for _, e := range mr.Errors {
			r.Errors = appendCapped(r.Errors, fmt.Sprintf("member %d: %s", mem.id, e))
		}
	}
	return r
}

// FsckMember checks the committed media image of one member.
func (sys *System) FsckMember(i int) FsckReport { return sys.members[i].fsck() }

// fsck mounts the member's committed media image and cross-checks it:
// every block reachable from the superblock must be marked used in the
// persisted activemap, every used bit must be reachable (no leaks), no
// block may be referenced twice, and for user files the container map and
// volume activemaps must agree with the buffer trees.
func (mem *Member) fsck() FsckReport {
	var r FsckReport
	m, err := aggregate.MountFrom(mem.a)
	if err != nil {
		r.Errors = append(r.Errors, err.Error())
		return r
	}
	geo := m.Geometry()
	refs := make(map[block.VBN]int)
	ref := func(vbn block.VBN, what string) {
		if vbn == 0 || vbn == block.InvalidVBN {
			return
		}
		refs[vbn]++
		if refs[vbn] == 2 {
			r.DoubleRefs++
			r.Errors = appendCapped(r.Errors, fmt.Sprintf("double reference to %v (%s)", vbn, what))
		}
	}

	// Reserved stripe-0 blocks are implicitly referenced (vbn 0 holds the
	// superblock itself).
	for gi := 0; gi < geo.NumGroups; gi++ {
		for di := 0; di < geo.DataDrives; di++ {
			refs[geo.VBNOf(gi, di, 0)] = 1
		}
	}

	// walkSkip traverses a buffer tree on media. skip (nil for most trees)
	// suppresses the physical reference for blocks whose VVBN it reports
	// true for: a clone's base blocks are physically owned — and referenced
	// — by the parent snapshot, so counting the clone's pointer too would
	// read as a double reference.
	var walkSkip func(f *fs.File, tag string, skip func(block.VVBN) bool, onL0 func(idx block.FBN, vvbn block.VVBN, vbn block.VBN))
	walkSkip = func(f *fs.File, tag string, skip func(block.VVBN) bool, onL0 func(block.FBN, block.VVBN, block.VBN)) {
		if f.RootVBN == block.InvalidVBN {
			return
		}
		if skip == nil || f.RootVVBN == block.InvalidVVBN || !skip(f.RootVVBN) {
			ref(f.RootVBN, tag+" root")
		}
		var rec func(level int, idx block.FBN, vbn block.VBN)
		rec = func(level int, idx block.FBN, vbn block.VBN) {
			data := m.ReadVBNRaw(vbn)
			if data == nil {
				r.Missing++
				r.Errors = appendCapped(r.Errors, fmt.Sprintf("%s: unreadable block at %v", tag, vbn))
				return
			}
			if level == 0 {
				return
			}
			for i := 0; i < block.PtrsPerBlock; i++ {
				cvv, cvbn := block.GetPtr(data, i)
				if cvbn == 0 || cvbn == block.InvalidVBN {
					continue
				}
				childIdx := idx*block.PtrsPerBlock + block.FBN(i)
				if skip == nil || cvv == block.InvalidVVBN || !skip(cvv) {
					ref(cvbn, fmt.Sprintf("%s L%d", tag, level-1))
				}
				if level-1 == 0 && onL0 != nil {
					onL0(childIdx, cvv, cvbn)
				}
				rec(level-1, childIdx, cvbn)
			}
		}
		rec(f.Height(), 0, f.RootVBN)
	}
	walk := func(f *fs.File, tag string, onL0 func(block.FBN, block.VVBN, block.VBN)) {
		walkSkip(f, tag, nil, onL0)
	}

	walk(m.AmapFile(), "aggr-amap", nil)
	walk(m.VolTableFile(), "voltable", nil)
	for _, v := range m.Volumes() {
		vvbnUsed := make(map[block.VVBN]bool)
		walk(v.InoFile(), fmt.Sprintf("vol%d-inofile", v.ID()), nil)
		walk(v.ContainerFile(), fmt.Sprintf("vol%d-container", v.ID()), nil)
		walk(v.AmapFile(), fmt.Sprintf("vol%d-amap", v.ID()), nil)
		walk(v.SnapdirFile(), fmt.Sprintf("vol%d-snapdir", v.ID()), nil)
		walk(v.SummaryFile(), fmt.Sprintf("vol%d-summary", v.ID()), nil)
		// Clone state: the base map metafile is an ordinary clone-owned
		// metafile; base-marked VVBNs resolve to parent-owned physical
		// blocks the parent snapshot references, so the clone's own tree
		// pointers to them must not be counted as references.
		st := v.CloneState()
		var inBase func(block.VVBN) bool
		var parent *aggregate.Volume
		if st != nil {
			walk(st.BaseFile, fmt.Sprintf("vol%d-basemap", v.ID()), nil)
			inBase = func(vv block.VVBN) bool { return st.Base.IsSet(uint64(vv)) }
			parent = m.Volume(st.ParentVol)
			if !parent.SnapshotExists(st.ParentSnap) {
				r.SnapErrs++
				r.Errors = appendCapped(r.Errors, fmt.Sprintf(
					"vol%d: clone of vol%d snap %d but the snapshot is gone (delete guard breached)",
					v.ID(), st.ParentVol, st.ParentSnap))
			}
		}
		snaps := v.Snapshots()
		r.Snapshots += uint64(len(snaps))
		for _, s := range snaps {
			walk(s.Snapmap, fmt.Sprintf("vol%d-snap%d-snapmap", v.ID(), s.ID), nil)
			walk(s.InoCopy, fmt.Sprintf("vol%d-snap%d-inocopy", v.ID(), s.ID), nil)
		}
		// User files, from inode records.
		for ino := uint64(aggregate.FirstUserIno); ino < v.NextIno(); ino++ {
			f := v.LookupFile(ino)
			if f == nil {
				continue
			}
			r.Files++
			tag := fmt.Sprintf("vol%d-ino%d", v.ID(), ino)
			walkSkip(f, tag, inBase, func(idx block.FBN, vvbn block.VVBN, vbn block.VBN) {
				if vvbn == block.InvalidVVBN {
					return
				}
				if got := v.Container(vvbn); got != vbn {
					r.ContainerErrs++
					r.Errors = appendCapped(r.Errors, fmt.Sprintf("%s fbn %d: container[%v]=%v want %v", tag, idx, vvbn, got, vbn))
				}
				vvbnUsed[vvbn] = true
			})
			// Dual-addressed indirect blocks also occupy VVBNs.
			collectIndirectVVBNs(m, f, vvbnUsed)
		}
		// Snapshot cross-checks, bit by bit over the VVBN space. The
		// persisted summary map must equal the OR of the persisted
		// snapmaps — OR'd with the base map for a clone: a summary bit no
		// owner holds pins a block forever (space held with no owner); a
		// snapmap/base bit missing from the summary lets the allocator
		// reuse a block a snapshot (or the parent-shared base) still
		// references. A VVBN held only by snapshots (clear in the
		// activemap) must still have a valid container entry — that entry
		// is the only path to the block's physical home, which we
		// reference here so snapshot-held blocks are neither leaked nor
		// reclaimable in the aggregate check below. Base-held VVBNs resolve
		// to parent-owned physical blocks: the parent references them, so
		// here we only verify the clone's container agrees with the
		// parent's (shared addressing) instead of referencing again.
		for bn := uint64(0); bn < v.VVBNBlocks(); bn++ {
			held := false
			for _, s := range snaps {
				if snap.BitSet(s.Snapmap, bn) {
					held = true
					break
				}
			}
			baseHeld := st != nil && st.Base.IsSet(bn)
			if sum := v.Summary.IsSet(bn); sum != (held || baseHeld) {
				r.SnapErrs++
				if sum {
					r.Errors = appendCapped(r.Errors, fmt.Sprintf("vol%d: summary bit %d set but no snapshot or base holds it", v.ID(), bn))
				} else {
					r.Errors = appendCapped(r.Errors, fmt.Sprintf("vol%d: vvbn %d held by a snapmap or the base map but clear in summary", v.ID(), bn))
				}
			}
			if baseHeld {
				pvbn := v.Container(block.VVBN(bn))
				if pvbn == 0 || pvbn == block.InvalidVBN {
					r.SnapErrs++
					r.Errors = appendCapped(r.Errors, fmt.Sprintf("vol%d: base-held vvbn %d has no container entry", v.ID(), bn))
				} else if pp := parent.Container(block.VVBN(bn)); pp != pvbn {
					r.SnapErrs++
					r.Errors = appendCapped(r.Errors, fmt.Sprintf("vol%d: base vvbn %d container=%v but parent vol%d has %v", v.ID(), bn, pvbn, st.ParentVol, pp))
				}
				continue
			}
			if held && !v.Activemap.IsSet(bn) {
				pvbn := v.Container(block.VVBN(bn))
				if pvbn == 0 || pvbn == block.InvalidVBN {
					r.SnapErrs++
					r.Errors = appendCapped(r.Errors, fmt.Sprintf("vol%d: snapshot-held vvbn %d has no container entry", v.ID(), bn))
				} else {
					ref(pvbn, fmt.Sprintf("vol%d snap-held vvbn %d", v.ID(), bn))
				}
			}
		}
		// Cross-check the volume activemap against the referenced set
		// bit by bit: a set bit nobody references is a leaked VVBN, a
		// referenced VVBN whose bit is clear is corruption. Counting by
		// subtraction (used − referenced) underflowed when references
		// outnumbered used bits, and let the two error directions cancel.
		for bn := uint64(0); bn < v.VVBNBlocks(); bn++ {
			set := v.Activemap.IsSet(bn)
			refd := vvbnUsed[block.VVBN(bn)]
			switch {
			case set && !refd:
				r.VVBNErrs++
				r.Errors = appendCapped(r.Errors, fmt.Sprintf("vol%d: vvbn %d marked used but unreferenced", v.ID(), bn))
			case !set && refd:
				r.VVBNErrs++
				r.Errors = appendCapped(r.Errors, fmt.Sprintf("vol%d: vvbn %d referenced but not marked used", v.ID(), bn))
			}
		}
		// The free-space index must match a full recount of the maps it
		// summarizes — on the mounted image (exercising the word-wise
		// mount-time rebuild) and on the live volume (catching incremental
		// maintenance drift, e.g. a transition path that skipped the
		// OnChange hooks).
		for _, e := range v.FreeIdx.Verify() {
			r.IdxErrs++
			r.Errors = appendCapped(r.Errors, fmt.Sprintf("vol%d (mounted): %s", v.ID(), e))
		}
	}
	for _, v := range mem.a.Volumes() {
		for _, e := range v.FreeIdx.Verify() {
			r.IdxErrs++
			r.Errors = appendCapped(r.Errors, fmt.Sprintf("vol%d (live): %s", v.ID(), e))
		}
	}

	r.ReferencedBlocks = uint64(len(refs))
	r.UsedBits = m.Activemap.Used()
	// Same per-bit cross-check for the aggregate activemap: leaks and
	// missing references must be counted independently, not derived from
	// the difference of two totals (where they cancel pairwise).
	for bn := uint64(0); bn < geo.TotalBlocks(); bn++ {
		set := m.Activemap.IsSet(bn)
		refd := refs[block.VBN(bn)] > 0
		switch {
		case set && !refd:
			r.Leaked++
			r.Errors = appendCapped(r.Errors, fmt.Sprintf("vbn %d marked used but unreachable", bn))
		case !set && refd:
			r.Missing++
			r.Errors = appendCapped(r.Errors, fmt.Sprintf("referenced vbn %d not marked used", bn))
		}
	}
	return r
}

// collectIndirectVVBNs walks a file's indirect blocks on media recording
// their VVBNs.
func collectIndirectVVBNs(m *aggregate.Aggregate, f *fs.File, out map[block.VVBN]bool) {
	if f.RootVBN == block.InvalidVBN {
		return
	}
	if f.RootVVBN != block.InvalidVVBN {
		out[f.RootVVBN] = true
	}
	var rec func(level int, vbn block.VBN)
	rec = func(level int, vbn block.VBN) {
		if level <= 1 {
			return
		}
		data := m.ReadVBNRaw(vbn)
		if data == nil {
			return
		}
		for i := 0; i < block.PtrsPerBlock; i++ {
			cvv, cvbn := block.GetPtr(data, i)
			if cvbn == 0 || cvbn == block.InvalidVBN {
				continue
			}
			if cvv != block.InvalidVVBN {
				out[cvv] = true
			}
			rec(level-1, cvbn)
		}
	}
	rec(f.Height(), f.RootVBN)
}

// VerifyAgainst recomputes the expected payload for (ino, fbn) and checks
// the committed content matches (test helper).
func (sys *System) VerifyAgainst(vol int, ino uint64, fbn FBN) error {
	got := sys.VerifyRead(vol, ino, fbn)
	want := sys.payload(ino, fbn, 0)
	if got == nil {
		return fmt.Errorf("vol %d ino %d fbn %d: hole, want data", vol, ino, fbn)
	}
	if !bytes.Equal(got[:len(want)], want) {
		return fmt.Errorf("vol %d ino %d fbn %d: content mismatch", vol, ino, fbn)
	}
	return nil
}

// SnapVerifyAgainst checks block fbn of ino inside snapshot snapID's frozen
// image: when expectData is true the block must hold the oracle payload,
// otherwise it must be a hole (test helper, untimed).
func (sys *System) SnapVerifyAgainst(vol int, snapID, ino uint64, fbn FBN, expectData bool) error {
	got, ok := sys.SnapVerifyRead(vol, snapID, ino, fbn)
	if !ok {
		return fmt.Errorf("vol %d snap %d: no image of ino %d", vol, snapID, ino)
	}
	if !expectData {
		if got != nil {
			return fmt.Errorf("vol %d snap %d ino %d fbn %d: data, want hole", vol, snapID, ino, fbn)
		}
		return nil
	}
	want := sys.payload(ino, fbn, 0)
	if got == nil {
		return fmt.Errorf("vol %d snap %d ino %d fbn %d: hole, want data", vol, snapID, ino, fbn)
	}
	if !bytes.Equal(got[:len(want)], want) {
		return fmt.Errorf("vol %d snap %d ino %d fbn %d: frozen content mismatch", vol, snapID, ino, fbn)
	}
	return nil
}

func appendCapped(errs []string, msg string) []string {
	if len(errs) < 50 {
		errs = append(errs, msg)
	}
	return errs
}
