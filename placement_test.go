package wafl

import (
	"testing"
)

// TestPlacementReservationsDrain is the regression test for the placement
// ingest-reservation leak: PlaceFile charges Member.reserved with the
// file's expected size, and before the fix nothing ever released the
// charge — every placed create permanently shrank the member's effective
// free space, so a long-lived cluster's placement decisions degraded
// without bound. With the fix, placed writes consume their file's
// reservation as they land and Delete refunds the remainder, so under
// create/write/delete churn the outstanding reservation must return to
// zero and placement must stay balanced across identical members.
func TestPlacementReservationsDrain(t *testing.T) {
	cfg := clusterConfig(2)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Shutdown()

	const rounds = 200
	const size = 64
	counts := make([]int, 2)
	done := false
	sys.ClientThread("churn", func(c *ClientCtx) {
		type placed struct {
			vol int
			ino uint64
		}
		var partial []placed // partially written files awaiting delete
		for r := 0; r < rounds && c.Alive(); r++ {
			vol, ino := c.CreatePlaced(size)
			counts[vol/cfg.Volumes]++
			if r%2 == 0 {
				// Fully written: the reservation drains block by block as
				// the writes land.
				for fbn := FBN(0); fbn < size; fbn += 8 {
					c.Write(vol, ino, fbn, 8)
				}
			} else {
				// Half written: the rest of the reservation is only
				// released by the refund on delete.
				for fbn := FBN(0); fbn < size/2; fbn += 8 {
					c.Write(vol, ino, fbn, 8)
				}
				partial = append(partial, placed{vol, ino})
			}
			if len(partial) > 4 {
				old := partial[0]
				partial = partial[1:]
				if !c.Delete(old.vol, old.ino) {
					t.Errorf("delete of churn file vol%d ino%d failed", old.vol, old.ino)
				}
			}
		}
		// Drain the tail: every partially written file must be deleted so
		// its bound remainder is refunded.
		for _, p := range partial {
			if !c.Delete(p.vol, p.ino) {
				t.Errorf("final delete of vol%d ino%d failed", p.vol, p.ino)
			}
		}
		done = true
	})
	for i := 0; i < 64 && !done; i++ {
		sys.Run(50 * Millisecond)
	}
	if !done {
		t.Fatal("churn did not finish")
	}

	// The leak assertion: with every placed file either fully written or
	// deleted, no ingest reservation may remain outstanding. Pre-fix code
	// fails here with rounds*size blocks still reserved.
	var reserved int64
	for i := 0; i < sys.Members(); i++ {
		reserved += sys.ReservedBlocks(i)
	}
	if reserved != 0 {
		t.Fatalf("reservations leaked: %d blocks still reserved after churn (pre-fix bug)", reserved)
	}

	// Balance assertion: identical members under symmetric churn must split
	// placements evenly (within 1% of the round count).
	diff := counts[0] - counts[1]
	if diff < 0 {
		diff = -diff
	}
	if diff > rounds/100 {
		t.Fatalf("placement spread %d/%d exceeds 1%% of %d rounds", counts[0], counts[1], rounds)
	}
}

// TestRemountPreservesReservations pins the remount path's deep copy of the
// reservation state: a crash/recover cycle must carry outstanding ingest
// reservations over to the new Member without aliasing the old slice (the
// original bug shared the slice header, so post-recovery mutations wrote
// through to the dead member's state and vice versa).
func TestRemountPreservesReservations(t *testing.T) {
	cfg := clusterConfig(2)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Charge a reservation and leave it outstanding (no writes land).
	vol := sys.PlaceFile(128)
	member := vol / cfg.Volumes
	if got := sys.ReservedBlocks(member); got != 128 {
		t.Fatalf("ReservedBlocks(%d) = %d, want 128", member, got)
	}

	sys.Crash()
	rec, err := sys.Recover()
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Shutdown()
	if got := rec.ReservedBlocks(member); got != 128 {
		t.Fatalf("reservation lost across remount: ReservedBlocks(%d) = %d, want 128", member, got)
	}
	// Mutating the recovered member's reservations must not write through
	// to the crashed system's state.
	rec.PlaceFile(64)
	var old, now int64
	for i := 0; i < 2; i++ {
		old += sys.ReservedBlocks(i)
		now += rec.ReservedBlocks(i)
	}
	if old != 128 {
		t.Fatalf("recovered-system mutation aliased into old member state: old total = %d, want 128", old)
	}
	if now != 128+64 {
		t.Fatalf("recovered total = %d, want %d", now, 128+64)
	}
}
