package wafl

import (
	"fmt"
	"testing"

	"wafl/internal/block"
)

// crashConfig is fullPayloadConfig with a small NVRAM (frequent CPs) so a
// 300ms run crosses several consistency points with ops still in flight.
func crashConfig() Config {
	cfg := smallConfig()
	cfg.PayloadBytes = 4096
	cfg.NVRAMHalfBytes = 512 << 10
	return cfg
}

// newCrashSystem builds a crashConfig system with one committed base file:
// the direct create must reach media before any crash, or replaying a
// logged write to it would fault.
func newCrashSystem(t *testing.T, cfg Config) (*System, uint64) {
	t.Helper()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ino := sys.CreateFileDirect(0, 1<<14)
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	return sys, ino
}

// attachTrackedWriter attaches a single client writing random blocks of a
// base file, recording each acknowledged write host-side. The returned
// slice aliases the recording; read it only while the scheduler is stopped.
func attachTrackedWriter(sys *System, ino uint64, acked *[]FBN) {
	sys.ClientThread("writer", func(c *ClientCtx) {
		for i := 0; c.Alive() && i < 3000; i++ {
			fbn := FBN(c.Rand(2048))
			c.Write(0, ino, fbn, 2)
			*acked = append(*acked, fbn)
		}
	})
}

func verifyAckedWrites(t *testing.T, sys *System, ino uint64, acked []FBN, label string) {
	t.Helper()
	for _, fbn := range acked {
		for b := FBN(0); b < 2; b++ {
			if err := sys.VerifyAgainst(0, ino, fbn+b); err != nil {
				t.Fatalf("%s: acked write lost: %v", label, err)
			}
		}
	}
}

// TestDoubleCrashSurvival is the §II-C regression test for the Recover
// re-logging fix: operations replayed from NVRAM must be re-protected in
// the recovered system's log, so a second crash before the next CP commits
// still cannot lose them. With the fix reverted (Recover not calling
// log.Restore), the second recovery loses every op that was in NVRAM at
// the first crash and this test fails.
func TestDoubleCrashSurvival(t *testing.T) {
	sys, ino := newCrashSystem(t, crashConfig())
	var acked []FBN
	attachTrackedWriter(sys, ino, &acked)
	sys.Run(300 * Millisecond)
	if len(acked) < 50 {
		t.Fatalf("only %d acked ops before crash", len(acked))
	}
	// The test is only meaningful if acknowledged ops are still in NVRAM.
	if sys.m0().log.ActiveOps() == 0 && !sys.m0().log.HasFrozen() {
		t.Fatal("no operations in NVRAM at crash time; grow the workload")
	}

	sys.Crash()
	rec, err := sys.Recover()
	if err != nil {
		t.Fatal(err)
	}
	verifyAckedWrites(t, rec, ino, acked, "first recovery")

	// Second power loss before the recovered system runs a single event:
	// everything must still be protected by the restored NVRAM log.
	rec.Crash()
	rec2, err := rec.Recover()
	if err != nil {
		t.Fatal(err)
	}
	verifyAckedWrites(t, rec2, ino, acked, "double-crash recovery")

	if err := rec2.Quiesce(); err != nil {
		t.Fatal(err)
	}
	verifyAckedWrites(t, rec2, ino, acked, "after quiesce")
	if rep := rec2.Fsck(); !rep.OK() {
		t.Fatalf("post-double-crash fsck failed: %s", rep)
	}
}

// TestReplayedOpsReprotected checks the mechanism directly: after Recover,
// the new log holds exactly the replayed records, sequence order intact.
func TestReplayedOpsReprotected(t *testing.T) {
	sys, ino := newCrashSystem(t, crashConfig())
	var acked []FBN
	attachTrackedWriter(sys, ino, &acked)
	sys.Run(300 * Millisecond)
	before := sys.m0().log.Replay()
	if len(before) == 0 {
		t.Fatal("no records in NVRAM at crash time")
	}
	sys.Crash()
	rec, err := sys.Recover()
	if err != nil {
		t.Fatal(err)
	}
	after := rec.m0().log.Replay()
	if len(after) != len(before) {
		t.Fatalf("recovered log holds %d records, want %d", len(after), len(before))
	}
	for i := range before {
		if after[i].Seq != before[i].Seq || after[i].Kind != before[i].Kind ||
			after[i].Ino != before[i].Ino || after[i].FBN != before[i].FBN {
			t.Fatalf("record %d mutated across recovery: %+v vs %+v", i, after[i], before[i])
		}
	}
}

// cpBoundaries is the phase-boundary sequence of one consistency point.
var cpBoundaries = []string{
	"start", "clean", "records", "metafiles", "voltable", "amap",
	"commit", "post-commit", "done",
}

// TestCrashAtEveryCPPhase crashes a workload run at each of the nine phase
// boundaries of its first client-triggered CP, recovering and verifying
// every acknowledged operation each time.
func TestCrashAtEveryCPPhase(t *testing.T) {
	for j, want := range cpBoundaries {
		j, want := j+1, want
		t.Run(fmt.Sprintf("%02d-%s", j, want), func(t *testing.T) {
			sys, ino := newCrashSystem(t, crashConfig())
			var acked []FBN
			attachTrackedWriter(sys, ino, &acked)
			hits := 0
			var got string
			sys.SetCPPhaseHook(func(phase string) bool {
				hits++
				if hits == j {
					got = phase
					sys.RequestHalt()
					return true
				}
				return false
			})
			sys.Run(2 * Second)
			if !sys.Halted() {
				t.Fatalf("boundary %d never reached", j)
			}
			if got != want {
				t.Fatalf("boundary %d is %q, want %q", j, got, want)
			}
			sys.Crash()
			rec, err := sys.Recover()
			if err != nil {
				t.Fatal(err)
			}
			verifyAckedWrites(t, rec, ino, acked, "recovery")
			if rep := rec.Fsck(); !rep.OK() {
				t.Fatalf("fsck after crash at %q: %s", want, rep)
			}
			if err := rec.Quiesce(); err != nil {
				t.Fatal(err)
			}
			verifyAckedWrites(t, rec, ino, acked, "after quiesce")
			rec.Shutdown()
		})
	}
}

// TestTornWriteRecovery crashes mid-CP with always-tear fault injection, so
// in-flight multi-block writes land only a prefix on media. The committed
// image must be unaffected: CPs drain all I/O before the superblock commit,
// so torn blocks are never referenced by the mounted tree.
func TestTornWriteRecovery(t *testing.T) {
	cfg := crashConfig()
	cfg.Faults = FaultConfig{TornWriteEvery: 1, TornWritePrefix: -1}
	sys, ino := newCrashSystem(t, cfg)
	var acked []FBN
	attachTrackedWriter(sys, ino, &acked)
	// Halt at every CP phase boundary and crash at the first one where a
	// multi-block write is still in flight — the population the crash-time
	// torn-write fault actually tears. Whether the first boundary qualifies
	// depends on drive timing, so probe until one does.
	sys.SetCPPhaseHook(func(phase string) bool {
		sys.RequestHalt()
		return true
	})
	inflight := func() int {
		n := 0
		for g := 0; g < sys.m0().a.Groups(); g++ {
			grp := sys.m0().a.Group(g)
			for d := 0; d < grp.DataDrives(); d++ {
				n += grp.Drive(d).InflightMultiBlock()
			}
			n += grp.ParityDrive().InflightMultiBlock()
		}
		return n
	}
	found := false
	for i := 0; i < 500; i++ {
		sys.Run(2 * Second)
		if !sys.Halted() {
			break // workload finished without a qualifying boundary
		}
		if inflight() > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no CP boundary had a multi-block write in flight")
	}
	sys.Crash()
	torn := uint64(0)
	for g := 0; g < sys.m0().a.Groups(); g++ {
		grp := sys.m0().a.Group(g)
		for d := 0; d < grp.DataDrives(); d++ {
			torn += grp.Drive(d).Stats().TornWrites
		}
		torn += grp.ParityDrive().Stats().TornWrites
	}
	if torn == 0 {
		t.Fatal("crash tore no writes; the fault plan did not engage")
	}
	rec, err := sys.Recover()
	if err != nil {
		t.Fatal(err)
	}
	verifyAckedWrites(t, rec, ino, acked, "recovery")
	if rep := rec.Fsck(); !rep.OK() {
		t.Fatalf("fsck after torn-write crash: %s", rep)
	}
	if err := rec.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if rep := rec.Fsck(); !rep.OK() {
		t.Fatalf("fsck after quiesce: %s", rep)
	}
}

// TestPersistentReadErrorReconstructed installs a hard per-block read error
// on the OS read path and checks ReadVBNRaw repairs it from RAID parity.
func TestPersistentReadErrorReconstructed(t *testing.T) {
	cfg := crashConfig()
	// Enable injection (any arm) so the injector is wired; the transient
	// arms stay off — only the explicit FailBlock below fires.
	cfg.Faults = FaultConfig{TornWriteEvery: 1 << 30, TornWritePrefix: 0}
	sys, ino := newCrashSystem(t, cfg)
	sys.ClientThread("w", func(c *ClientCtx) {
		for i := 0; c.Alive() && i < 400; i++ {
			c.Write(0, ino, FBN(i*2%1024), 2)
		}
	})
	sys.Run(300 * Millisecond)
	if err := sys.Quiesce(); err != nil {
		t.Fatal(err)
	}
	// Pick a committed data block outside the reserved stripe 0.
	geo := sys.m0().a.Geometry()
	var vbn block.VBN
	found := false
	for bn := uint64(0); bn < geo.TotalBlocks(); bn++ {
		_, _, dbn := geo.Locate(block.VBN(bn))
		if dbn == 0 {
			continue
		}
		if sys.m0().a.ReadVBNRaw(block.VBN(bn)) != nil {
			vbn, found = block.VBN(bn), true
			break
		}
	}
	if !found {
		t.Fatal("no committed block found")
	}
	want := append([]byte(nil), sys.m0().a.ReadVBNRaw(vbn)...)
	g, d, dbn := geo.Locate(vbn)
	drive := sys.m0().a.Group(g).Drive(d)
	sys.Injector().FailBlock(drive.Name(), dbn)
	got := sys.m0().a.ReadVBNRaw(vbn)
	if got == nil {
		t.Fatal("read not repaired")
	}
	if string(got) != string(want) {
		t.Fatal("reconstructed content differs from original")
	}
	if rs := sys.RepairStats(); rs.Reconstructs == 0 {
		t.Fatalf("no reconstruction recorded: %+v", rs)
	}
	// Fsck reads every block through the same path; it must stay clean
	// with the bad block still failing.
	if rep := sys.Fsck(); !rep.OK() {
		t.Fatalf("fsck with persistent read error: %s", rep)
	}
}
