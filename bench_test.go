package wafl_test

// One benchmark per table/figure of the paper's evaluation (§V), plus the
// design-choice ablations. Each benchmark iteration builds a fresh
// simulated storage server, runs the workload for a fixed simulated window,
// and reports the simulated metrics (ops/s, write-allocation cores,
// latency). Absolute values are simulator units; EXPERIMENTS.md maps them
// to the paper's claims. `go run ./cmd/waflbench` produces the full tables.

import (
	"testing"

	"wafl"
	"wafl/harness"
	"wafl/workload"
)

const (
	benchWarmup = 150 * wafl.Millisecond
	benchWindow = 250 * wafl.Millisecond
)

// benchRun builds a system, attaches the workload, measures one window, and
// reports simulated metrics.
func benchRun(b *testing.B, cfg wafl.Config, w harness.Attacher) {
	b.Helper()
	var last wafl.Results
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, _, err := harness.Measure(cfg, w, benchWarmup, benchWindow)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.OpsPerSec, "simops/s")
	b.ReportMetric(last.MBPerSec, "simMB/s")
	b.ReportMetric(last.Cores.WriteAllocation(), "walloc-cores")
	b.ReportMetric(last.LatAvg.Micros(), "simlat-us")
}

// permCfg builds a config for one {infra, cleaners} permutation.
func permCfg(infraParallel bool, cleaners int) wafl.Config {
	cfg := wafl.DefaultConfig()
	cfg.Allocator.InfraParallel = infraParallel
	cfg.Allocator.InitialCleaners = cleaners
	cfg.Allocator.MaxCleaners = cleaners
	cfg.Allocator.Dynamic = false
	return cfg
}

// BenchmarkFig4SeqWritePermutations regenerates Figure 4: sequential write
// under the four parallelization permutations (paper: +7% infra-only, +82%
// cleaners-only, +274% both).
func BenchmarkFig4SeqWritePermutations(b *testing.B) {
	for _, p := range []struct {
		name     string
		infra    bool
		cleaners int
	}{
		{"serialized", false, 1},
		{"infra-only", true, 1},
		{"cleaners-only", false, 6},
		{"white-alligator", true, 6},
	} {
		b.Run(p.name, func(b *testing.B) {
			benchRun(b, permCfg(p.infra, p.cleaners), workload.DefaultSeqWrite())
		})
	}
}

// BenchmarkFig5CleanerScaling regenerates Figure 5: throughput vs static
// cleaner-thread count with the infrastructure parallel (paper: near-linear
// until CPU saturation).
func BenchmarkFig5CleanerScaling(b *testing.B) {
	for n := 1; n <= 6; n++ {
		b.Run(itoa(n), func(b *testing.B) {
			benchRun(b, permCfg(true, n), workload.DefaultSeqWrite())
		})
	}
}

// BenchmarkFig6InfraParallelization regenerates Figure 6: infrastructure
// serialized vs parallel with parallel cleaners (paper: 0.94 -> 2.35 infra
// cores, +106% throughput).
func BenchmarkFig6InfraParallelization(b *testing.B) {
	for _, p := range []struct {
		name  string
		infra bool
	}{{"serialized", false}, {"parallel", true}} {
		b.Run(p.name, func(b *testing.B) {
			benchRun(b, permCfg(p.infra, 6), workload.DefaultSeqWrite())
		})
	}
}

// BenchmarkFig7RandomWritePermutations regenerates Figure 7: random write
// under the four permutations (paper shape inverted vs Fig 4: +25%
// infra-only > +14% cleaners-only; +50% both).
func BenchmarkFig7RandomWritePermutations(b *testing.B) {
	for _, p := range []struct {
		name     string
		infra    bool
		cleaners int
	}{
		{"serialized", false, 1},
		{"infra-only", true, 1},
		{"cleaners-only", false, 6},
		{"white-alligator", true, 6},
	} {
		b.Run(p.name, func(b *testing.B) {
			benchRun(b, permCfg(p.infra, p.cleaners), workload.DefaultRandWrite())
		})
	}
}

// fig8Cfg builds a Flash Pool OLTP configuration.
func fig8Cfg(dynamic bool, threads int) wafl.Config {
	cfg := wafl.DefaultConfig()
	cfg.Drives = wafl.FlashPool
	cfg.Allocator.InfraParallel = true
	cfg.Allocator.SplitLargeFiles = false
	cfg.Allocator.Dynamic = dynamic
	cfg.Allocator.MaxCleaners = 4
	if dynamic {
		cfg.Allocator.InitialCleaners = 1
	} else {
		cfg.Allocator.InitialCleaners = threads
		cfg.Allocator.MaxCleaners = threads
	}
	return cfg
}

// BenchmarkFig8OLTPCleanerCount regenerates Figure 8: OLTP peak throughput
// for 1..4 static cleaner threads and dynamic tuning (paper: 2 optimal, >2
// degrades, dynamic best).
func BenchmarkFig8OLTPCleanerCount(b *testing.B) {
	peak := workload.DefaultOLTP()
	peak.Clients = 80
	peak.Think = 0
	for n := 1; n <= 4; n++ {
		b.Run(itoa(n), func(b *testing.B) {
			benchRun(b, fig8Cfg(false, n), peak)
		})
	}
	b.Run("dynamic", func(b *testing.B) {
		benchRun(b, fig8Cfg(true, 0), peak)
	})
}

// BenchmarkFig9ThroughputLatency regenerates the Figure 9 curves at two
// load points per configuration (off-peak and peak; the waflbench tool
// sweeps the full load range).
func BenchmarkFig9ThroughputLatency(b *testing.B) {
	for _, cc := range []struct {
		name    string
		dynamic bool
		threads int
	}{
		{"3-threads", false, 3},
		{"4-threads", false, 4},
		{"dynamic", true, 0},
	} {
		for _, clients := range []int{8, 24} {
			b.Run(cc.name+"/clients-"+itoa(clients), func(b *testing.B) {
				cfg := wafl.DefaultConfig()
				cfg.Allocator.InfraParallel = true
				cfg.Allocator.Dynamic = cc.dynamic
				if cc.dynamic {
					cfg.Allocator.InitialCleaners = 1
					cfg.Allocator.MaxCleaners = 4
				} else {
					cfg.Allocator.InitialCleaners = cc.threads
					cfg.Allocator.MaxCleaners = cc.threads
				}
				w := workload.DefaultSeqWrite()
				w.Clients = clients
				benchRun(b, cfg, w)
			})
		}
	}
}

// BenchmarkVCBatchedCleaning regenerates the §V-C in-text table: the NFSv3
// mix with and without batched inode cleaning (paper: +3.8% ops/s, latency
// 6.7ms -> 6.5ms).
func BenchmarkVCBatchedCleaning(b *testing.B) {
	for _, batching := range []struct {
		name string
		on   bool
	}{{"off", false}, {"on", true}} {
		b.Run(batching.name, func(b *testing.B) {
			cfg := wafl.DefaultConfig()
			cfg.Drives = wafl.HDD
			cfg.RAIDGroups = 4
			cfg.DriveBlocks = 32768
			cfg.Allocator.BatchedCleaning = batching.on
			w := workload.DefaultNFSMix()
			w.Think = 0
			w.FilesPerV = 800
			benchRun(b, cfg, w)
		})
	}
}

// BenchmarkAblationBucketSize measures the §IV-C claim that buckets
// amortize allocation overhead: chunk size one is legal but pays full
// synchronization and scan cost per block.
func BenchmarkAblationBucketSize(b *testing.B) {
	for _, chunk := range []int{1, 8, 64, 256} {
		b.Run(itoa(chunk), func(b *testing.B) {
			cfg := permCfg(true, 4)
			cfg.Allocator.ChunkBlocks = chunk
			benchRun(b, cfg, workload.DefaultSeqWrite())
		})
	}
}

// BenchmarkAblationAAPolicy measures the §IV-D claim that most-free AA
// selection maximizes full-stripe writes.
func BenchmarkAblationAAPolicy(b *testing.B) {
	for _, p := range []struct {
		name   string
		policy wafl.AAPolicy
	}{{"most-free", wafl.AAMostFree}, {"first-fit", wafl.AAFirstFit}, {"round-robin", wafl.AARoundRobin}} {
		b.Run(p.name, func(b *testing.B) {
			cfg := permCfg(true, 4)
			cfg.Allocator.AASelection = p.policy
			benchRun(b, cfg, workload.DefaultSeqWrite())
		})
	}
}

// BenchmarkAblationLooseAccounting measures the §III-C claim: staging
// counter updates in per-thread tokens vs taking the global counter lock on
// every update.
func BenchmarkAblationLooseAccounting(b *testing.B) {
	for _, p := range []struct {
		name  string
		loose bool
	}{{"loose", true}, {"locked", false}} {
		b.Run(p.name, func(b *testing.B) {
			cfg := permCfg(true, 6)
			cfg.Allocator.LooseAccounting = p.loose
			benchRun(b, cfg, workload.DefaultSeqWrite())
		})
	}
}

// BenchmarkAblationEqualProgress measures the §IV-D synchronized
// whole-window bucket insertion vs inserting each bucket as it fills.
func BenchmarkAblationEqualProgress(b *testing.B) {
	for _, p := range []struct {
		name string
		eq   bool
	}{{"synchronized", true}, {"immediate", false}} {
		b.Run(p.name, func(b *testing.B) {
			cfg := permCfg(true, 6)
			cfg.Allocator.EqualProgress = p.eq
			benchRun(b, cfg, workload.DefaultRandWrite())
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
