package harness

import (
	"fmt"

	"wafl"
	"wafl/workload"
)

// SnapshotChurn measures the cost of write allocation under snapshot churn:
// the same random-overwrite load is run bare, then with a rotating ring of
// per-volume snapshots (create every few thousand ops, delete the oldest
// beyond the ring size). Snapshots force the allocator onto the
// free = !active && !summary path and make every overwrite of a held block
// consume a fresh VVBN, so the comparison exposes the summary-map scan and
// reclamation overheads alongside the free-space split they produce.
func SnapshotChurn(rc RunConfig) (Table, []wafl.Results, error) {
	t := Table{
		ID:    "snapchurn",
		Title: "Random overwrite under snapshot churn (rotating per-volume ring)",
		Headers: []string{"mode", "MB/s", "lat p50", "lat p99", "CPs",
			"snaps +/-", "reclaimed blks", "active", "snap-held", "free"},
	}
	var out []wafl.Results

	type mode struct {
		name string
		mk   func() Attacher
	}
	churn := workload.DefaultSnapChurn()
	modes := []mode{
		{"no snapshots", func() Attacher {
			w := workload.DefaultRandWrite()
			w.Clients = churn.Clients
			w.OpBlocks = churn.OpBlocks
			w.FileBlocks = churn.FileBlocks
			w.Volumes = churn.Volumes
			return w
		}},
		{"snapshot churn", func() Attacher { return churn }},
	}
	for _, m := range modes {
		cfg := rc.Base
		res, sys, err := Measure(cfg, m.mk(), rc.Warmup, rc.Window)
		if err != nil {
			return t, out, err
		}
		out = append(out, res)
		created, deleted, reclaimed := sys.SnapStats()
		var active, held, free uint64
		for v := 0; v < cfg.Volumes; v++ {
			fs := sys.FreeSpaceBreakdown(v)
			active += fs.Active
			held += fs.SnapOnly
			free += fs.Free
		}
		t.Rows = append(t.Rows, []string{
			m.name, f2(res.MBPerSec), ms(res.LatP50), ms(res.LatP99),
			fmt.Sprintf("%d", res.CPs),
			fmt.Sprintf("%d/%d", created, deleted),
			fmt.Sprintf("%d", reclaimed),
			fmt.Sprintf("%d", active), fmt.Sprintf("%d", held), fmt.Sprintf("%d", free),
		})
	}
	t.Notes = append(t.Notes,
		"snap-held blocks are clear in the activemap but pinned by the summary map until the last holding snapshot is deleted")
	return t, out, nil
}
