package harness

import (
	"strings"
	"testing"

	"wafl"
	"wafl/workload"
)

func TestKneeHalfLatencyRule(t *testing.T) {
	lats := []wafl.Duration{100, 120, 150, 199, 210, 500}
	if k := Knee(lats); k != 3 {
		t.Fatalf("knee = %d, want 3 (last point <= 2x base)", k)
	}
	if k := Knee([]wafl.Duration{100}); k != 0 {
		t.Fatalf("single-point knee = %d", k)
	}
	if k := Knee(nil); k != -1 {
		t.Fatalf("empty knee = %d", k)
	}
	// Monotone low latencies: knee is the last point.
	if k := Knee([]wafl.Duration{100, 110, 120}); k != 2 {
		t.Fatalf("knee = %d, want 2", k)
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{
		ID:      "T1",
		Title:   "demo",
		Headers: []string{"a", "bee"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"a note"},
	}
	out := tab.String()
	for _, want := range []string{"== T1: demo ==", "a    bee", "333  4", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestPermutationsShape(t *testing.T) {
	ps := permutations(6)
	if len(ps) != 4 {
		t.Fatalf("permutations = %d, want 4", len(ps))
	}
	if ps[0].InfraParallel || ps[0].Cleaners != 1 {
		t.Fatal("baseline must be fully serialized")
	}
	if !ps[3].InfraParallel || ps[3].Cleaners != 6 {
		t.Fatal("last permutation must be fully parallel")
	}
}

// smallRun shrinks the experiment for unit testing.
func smallRun() RunConfig {
	rc := DefaultRun()
	rc.Base.Cores = 8
	rc.Base.RAIDGroups = 2
	rc.Base.DataDrives = 3
	rc.Base.DriveBlocks = 16384
	rc.Base.AAStripes = 1024
	rc.Base.Volumes = 2
	rc.Base.VolumeBlocks = 1 << 15
	rc.Base.NVRAMHalfBytes = 2 << 20
	rc.Base.Allocator.MaxCleaners = 3
	rc.Warmup = 30 * wafl.Millisecond
	rc.Window = 80 * wafl.Millisecond
	return rc
}

func TestMeasureRunsAndTearsDown(t *testing.T) {
	rc := smallRun()
	w := workload.DefaultSeqWrite()
	w.Clients = 4
	w.Volumes = 2
	w.FileBlocks = 2048
	res, sys, err := Measure(rc.Base, w, rc.Warmup, rc.Window)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no ops measured")
	}
	if sys == nil {
		t.Fatal("system not returned for stats")
	}
}

func TestRunPermutationsOrdering(t *testing.T) {
	rc := smallRun()
	prs, err := RunPermutations(rc, func() Attacher {
		w := workload.DefaultSeqWrite()
		w.Clients = 6
		w.Volumes = 2
		w.FileBlocks = 2048
		return w
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(prs) != 4 {
		t.Fatalf("%d results", len(prs))
	}
	base := prs[0].Res.OpsPerSec
	full := prs[3].Res.OpsPerSec
	if full <= base {
		t.Fatalf("full parallelism (%f) must beat the serialized baseline (%f)", full, base)
	}
	// Cleaners-parallel should beat the baseline too (the paper's +82%).
	if prs[2].Res.OpsPerSec <= base {
		t.Fatal("parallel cleaners did not improve on the baseline")
	}
}

func TestPermTableHasRelativeColumns(t *testing.T) {
	rc := smallRun()
	prs, err := RunPermutations(rc, func() Attacher {
		w := workload.DefaultSeqWrite()
		w.Clients = 4
		w.Volumes = 2
		w.FileBlocks = 2048
		return w
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	tab := permTable("FigX", "test", prs)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][2] != "+0%" {
		t.Fatalf("baseline rel = %q", tab.Rows[0][2])
	}
}
