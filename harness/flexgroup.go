package harness

import (
	"fmt"

	"wafl"
	"wafl/workload"
)

// FlexgroupConfig parameterizes the cluster scaling experiment: the same
// per-member manyfile load is applied at each cluster width, so ideal
// scaling is ops/s proportional to the member count.
type FlexgroupConfig struct {
	// Base is the per-member system configuration; Base.Members is
	// overridden by each entry of MemberCounts.
	Base wafl.Config
	// MemberCounts lists the cluster widths swept (first entry is the
	// scaling baseline, conventionally 1).
	MemberCounts []int
	// ClientsPerMember, FilesPerClient, FileBlocks, OpBlocks shape the
	// manyfile load; the client count is ClientsPerMember x members, and
	// files are spread by the cluster's placement policy.
	ClientsPerMember int
	FilesPerClient   int
	FileBlocks       uint64
	OpBlocks         int
	Warmup, Window   wafl.Duration
}

// DefaultFlexgroup sizes the sweep for CI: 1/2/4 members under the
// metadata-heavy manyfile load (the workload whose CPs are dominated by
// per-volume metadata phases — the hardest one to scale).
func DefaultFlexgroup() FlexgroupConfig {
	return FlexgroupConfig{
		Base:             wafl.DefaultConfig(),
		MemberCounts:     []int{1, 2, 4},
		ClientsPerMember: 56,
		FilesPerClient:   16,
		FileBlocks:       64,
		OpBlocks:         1,
		Warmup:           100 * wafl.Millisecond,
		Window:           300 * wafl.Millisecond,
	}
}

// FlexgroupResult is one cluster width's measurement.
type FlexgroupResult struct {
	Members   int
	Res       wafl.Results   // cluster-wide window (merge of PerMember)
	PerMember []wafl.Results // one window per member
	Speedup   float64        // ops/s relative to the first (baseline) width
}

// Flexgroup runs the cluster scaling sweep: for each member count it builds
// a cluster, applies members x ClientsPerMember manyfile clients placed by
// the capacity-aware policy, and measures per-member and cluster-wide
// throughput. Returns the rendered table, the per-width results, and
// machine-readable bench entries (named manyfile-membersN).
func Flexgroup(cfg FlexgroupConfig) (Table, []FlexgroupResult, []BenchResult, error) {
	tab := Table{
		ID:    "flexgroup",
		Title: "FlexGroup cluster scaling: manyfile ops/s vs member count",
		Headers: []string{"members", "ops/s", "speedup", "MB/s", "lat-p50", "lat-p99",
			"cps", "member-min-ops/s", "member-max-ops/s"},
	}
	var out []FlexgroupResult
	var bench []BenchResult
	var base float64
	for _, n := range cfg.MemberCounts {
		c := cfg.Base
		c.Members = n
		sys, err := wafl.NewSystem(c)
		if err != nil {
			return tab, nil, nil, fmt.Errorf("flexgroup members=%d: %w", n, err)
		}
		w := workload.ManyFile{
			Clients:    cfg.ClientsPerMember * n,
			FilesPer:   cfg.FilesPerClient,
			OpBlocks:   cfg.OpBlocks,
			FileBlocks: cfg.FileBlocks,
			Volumes:    c.Volumes * n,
			Placed:     n > 1,
		}
		w.Attach(sys)
		sys.Run(cfg.Warmup)
		c0 := sys.Counters()
		s0 := sys.CPStats()
		parts := sys.MeasureMembers(0, cfg.Window)
		c1 := sys.Counters()
		s1 := sys.CPStats()
		res := wafl.MergeResults(parts)
		sys.Shutdown()

		if base == 0 {
			base = res.OpsPerSec
		}
		speedup := 0.0
		if base > 0 {
			speedup = res.OpsPerSec / base
		}
		out = append(out, FlexgroupResult{Members: n, Res: res, PerMember: parts, Speedup: speedup})

		minOps, maxOps := parts[0].OpsPerSec, parts[0].OpsPerSec
		for _, p := range parts[1:] {
			if p.OpsPerSec < minOps {
				minOps = p.OpsPerSec
			}
			if p.OpsPerSec > maxOps {
				maxOps = p.OpsPerSec
			}
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", n), f0(res.OpsPerSec), fmt.Sprintf("%.2fx", speedup),
			f2(res.MBPerSec), us(res.LatP50), us(res.LatP99),
			fmt.Sprintf("%d", res.CPs), f0(minOps), f0(maxOps),
		})

		b := benchResultFrom(fmt.Sprintf("manyfile-members%d", n), "flexgroup", res, c0, c1)
		addCPStats(&b, s0, s1)
		bench = append(bench, b)
	}
	tab.Notes = append(tab.Notes,
		"same per-member load at every width; ideal scaling = Nx the 1-member ops/s")
	return tab, out, bench, nil
}
