package harness

import (
	"fmt"

	"wafl"
	"wafl/workload"
)

// OverloadPoint is one mode's outcome in the open-loop overload study: the
// per-class sojourn tail (queue wait included), admission-control activity,
// and the NVLog stall attribution that explains the tail.
type OverloadPoint struct {
	Mode string // "admission-off" | "admission-on"

	// Sojourn (arrival -> completion) quantiles over the measurement
	// window, per QoS class.
	LSP50, LSP99, LSP999 wafl.Duration
	BulkP50, BulkP999    wafl.Duration

	// Open-loop accounting for the window.
	Arrivals, Completed      uint64
	Shed                     uint64 // bulk writes refused by admission
	LSQueueMax, BulkQueueMax int    // high-water pending-op depth (whole run)

	// Attribution: why the tail is what it is.
	Stalls                   uint64        // NVLog-full write stalls (hit every class)
	StallTime                wafl.Duration // total time writers sat in those stalls
	AdmitDelay               wafl.Duration // total admission backpressure applied to bulk
	CPs                      uint64
	BCacheHits, BCacheMisses uint64
}

// OverloadConfig returns the study's system config: the default box with a
// small NVRAM log (so the burst phase actually pressures it), the buffer
// cache enabled at well under the streams' working set (reads mix cache
// hits with timed media reads, as in CAWL's capacity regimes), and
// admission control parameters tuned for the burst.
func OverloadConfig(base wafl.Config) wafl.Config {
	cfg := base
	cfg.NVRAMHalfBytes = 1 << 20 // 1 MiB halves: burst writes cross watermarks
	cfg.BCacheBlocks = 8192      // working set is 2000 streams x 64 blocks = 128k
	cfg.Admission = wafl.DefaultAdmission()
	cfg.Admission.Enabled = false // each mode sets this explicitly
	return cfg
}

// overloadWorkload is the shared burst shape for both modes.
func overloadWorkload() workload.OpenLoop {
	return workload.DefaultOpenLoop()
}

// runOverload measures one admission mode and returns its point.
func runOverload(cfg wafl.Config, warmup, window wafl.Duration, mode string) (OverloadPoint, error) {
	w := overloadWorkload()
	sys, err := wafl.NewSystem(cfg)
	if err != nil {
		return OverloadPoint{}, err
	}
	w.Attach(sys)
	sys.Run(warmup)

	// Window baselines: histograms and counters accumulate from t=0, so
	// snapshot at the window edge and diff.
	ls0, bulk0 := w.LSLat.Clone(), w.BulkLat.Clone()
	arr0, done0, shed0 := w.Arrivals, w.Completed, w.Shed
	shedSys0, delay0 := sys.AdmissionStats()
	_ = shedSys0
	bc0 := sys.BCacheStats()
	res := sys.Measure(0, window)
	ls := w.LSLat.Delta(ls0)
	bulk := w.BulkLat.Delta(bulk0)
	_, delay1 := sys.AdmissionStats()
	bc1 := sys.BCacheStats()
	p := OverloadPoint{
		Mode:         mode,
		LSP50:        wafl.Duration(ls.Quantile(0.50)),
		LSP99:        wafl.Duration(ls.Quantile(0.99)),
		LSP999:       wafl.Duration(ls.Quantile(0.999)),
		BulkP50:      wafl.Duration(bulk.Quantile(0.50)),
		BulkP999:     wafl.Duration(bulk.Quantile(0.999)),
		Arrivals:     w.Arrivals - arr0,
		Completed:    w.Completed - done0,
		Shed:         w.Shed - shed0,
		LSQueueMax:   w.LSQueueMax,
		BulkQueueMax: w.BulkQueueMax,
		Stalls:       res.Stalls,
		StallTime:    res.StallTime,
		AdmitDelay:   delay1 - delay0,
		CPs:          res.CPs,
		BCacheHits:   bc1.Hits - bc0.Hits,
		BCacheMisses: bc1.Misses - bc0.Misses,
	}
	sys.Shutdown()
	return p, nil
}

// Overload runs the open-loop overload study: the burst-shaped Poisson
// arrival process against the same system with admission control off and
// on. Off, the burst fills the NVRAM log, every write (both classes)
// stalls behind back-to-back CPs, the queue grows open-loop, and the
// latency-sensitive p99.9 is unbounded — it scales with burst length, not
// service time. On, bulk writes are delayed and then shed as the log
// crosses the watermarks; the log stays below the stall point, and the
// latency-sensitive tail stays bounded while bulk degrades gracefully.
func Overload(rc RunConfig) (Table, []OverloadPoint, error) {
	t := Table{
		ID:    "Overload",
		Title: "Open-loop burst: per-class p99.9 with and without NVLog admission control",
		Headers: []string{"admission", "ls p50", "ls p99", "ls p99.9", "bulk p99.9",
			"shed", "stalls", "stall time", "admit delay", "cps", "bc hit%"},
	}
	base := OverloadConfig(rc.Base)
	var points []OverloadPoint
	for _, on := range []bool{false, true} {
		cfg := base
		cfg.Admission.Enabled = on
		mode := "admission-off"
		if on {
			mode = "admission-on"
		}
		p, err := runOverload(cfg, rc.Warmup, rc.Window, mode)
		if err != nil {
			return Table{}, nil, err
		}
		points = append(points, p)
		hitPct := 0.0
		if lookups := p.BCacheHits + p.BCacheMisses; lookups > 0 {
			hitPct = 100 * float64(p.BCacheHits) / float64(lookups)
		}
		t.Rows = append(t.Rows, []string{
			mode, us(p.LSP50), us(p.LSP99), ms(p.LSP999), ms(p.BulkP999),
			fmt.Sprintf("%d", p.Shed), fmt.Sprintf("%d", p.Stalls), ms(p.StallTime),
			ms(p.AdmitDelay), fmt.Sprintf("%d", p.CPs), f2(hitPct),
		})
	}
	t.Notes = append(t.Notes,
		"sojourn latency: completion - arrival, queue wait included (open loop)",
		"off: burst fills NVLog, back-to-back CP stalls hit both classes",
		"on: bulk delayed/shed at the watermarks, LS tail stays bounded")
	return t, points, nil
}

// OverloadBench converts the study's points to bench-JSON entries.
func OverloadBench(points []OverloadPoint, window wafl.Duration) []BenchResult {
	var out []BenchResult
	secs := window.Micros() / 1e6
	for _, p := range points {
		b := BenchResult{
			Name:         "overload",
			Mode:         p.Mode,
			OpsPerSec:    float64(p.Completed) / secs,
			LatP50Us:     p.LSP50.Micros(),
			LatP99Us:     p.LSP99.Micros(),
			LatP999Us:    p.LSP999.Micros(),
			BulkP999Us:   p.BulkP999.Micros(),
			ShedOps:      p.Shed,
			AdmitDelayUs: p.AdmitDelay.Micros(),
			BCacheHits:   p.BCacheHits,
			BCacheMisses: p.BCacheMisses,
			CPs:          p.CPs,
			Stalls:       p.Stalls,
			StallTimeUs:  p.StallTime.Micros(),
		}
		out = append(out, b)
	}
	return out
}

// OverloadCheck runs the study and asserts the SLO contract that the
// admission controller exists to provide:
//
//  1. with admission off, the burst drives the latency-sensitive p99.9
//     into open-loop blowup (well beyond any service-time bound);
//  2. with admission on, bulk load is actually shed (the controller
//     engaged) and the latency-sensitive p99.9 stays bounded — an order
//     of magnitude below the admission-off tail.
//
// It is wired into `make overloadcheck` / CI.
func OverloadCheck(rc RunConfig) error {
	_, points, err := Overload(rc)
	if err != nil {
		return err
	}
	var off, on OverloadPoint
	for _, p := range points {
		if p.Mode == "admission-on" {
			on = p
		} else {
			off = p
		}
	}
	const lsSLO = 20 * wafl.Millisecond
	if off.LSP999 < 2*lsSLO {
		return fmt.Errorf("admission-off LS p99.9 = %v: burst did not overload the system (want >= %v)",
			off.LSP999, 2*lsSLO)
	}
	if on.Shed == 0 {
		return fmt.Errorf("admission-on shed no bulk writes: controller never engaged")
	}
	if on.LSP999 > lsSLO {
		return fmt.Errorf("admission-on LS p99.9 = %v exceeds SLO %v", on.LSP999, lsSLO)
	}
	if on.LSP999*4 > off.LSP999 {
		return fmt.Errorf("admission-on LS p99.9 = %v not well under admission-off %v", on.LSP999, off.LSP999)
	}
	return nil
}
