package harness

import "testing"

// TestCrashSweepSmall runs a miniature crash-schedule sweep — one seed, a
// few event-index points, a few phase boundaries — end to end. The full
// sweep is `make crashcheck`; this keeps `go test ./...` coverage of the
// harness itself cheap.
func TestCrashSweepSmall(t *testing.T) {
	cfg := DefaultCrashSweep()
	cfg.Seeds = []int64{1}
	cfg.Points = 2
	cfg.Phases = 3
	cfg.Clients = 2
	cfg.OpsPerClient = 60
	cfg.ClonePoints = 3
	tab, res, err := CrashSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PointsRun == 0 {
		t.Fatal("sweep ran no crash points")
	}
	if !res.OK() {
		t.Fatalf("sweep failed:\n%s", tab.String())
	}
}
