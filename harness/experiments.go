package harness

import (
	"fmt"

	"wafl"
	"wafl/workload"
)

// Permutation names one {cleaner, infrastructure} parallelization setting
// of the §V-A instrumented kernels.
type Permutation struct {
	Name          string
	InfraParallel bool
	Cleaners      int
}

// permutations returns the four Fig 4 / Fig 7 configurations.
func permutations(parallelCleaners int) []Permutation {
	return []Permutation{
		{"serialized (baseline)", false, 1},
		{"+parallel infra", true, 1},
		{"+parallel cleaners", false, parallelCleaners},
		{"White Alligator (both)", true, parallelCleaners},
	}
}

// PermutationResult pairs a permutation with its measurement.
type PermutationResult struct {
	Permutation
	Res wafl.Results
}

// RunPermutations measures a workload under the four parallelization
// permutations.
func RunPermutations(rc RunConfig, mk func() Attacher, parallelCleaners int) ([]PermutationResult, error) {
	var out []PermutationResult
	for _, p := range permutations(parallelCleaners) {
		cfg := rc.Base
		cfg.Allocator.InfraParallel = p.InfraParallel
		cfg.Allocator.InitialCleaners = p.Cleaners
		cfg.Allocator.MaxCleaners = p.Cleaners
		cfg.Allocator.Dynamic = false
		res, _, err := Measure(cfg, mk(), rc.Warmup, rc.Window)
		if err != nil {
			return nil, err
		}
		out = append(out, PermutationResult{p, res})
	}
	return out, nil
}

// permTable renders permutation results in the Fig 4 / Fig 7 format:
// relative throughput plus write-allocation core usage.
func permTable(id, title string, prs []PermutationResult) Table {
	t := Table{
		ID:    id,
		Title: title,
		Headers: []string{"configuration", "ops/s", "rel-throughput", "cleaner-cores", "infra-cores",
			"walloc-cores", "total-cores"},
	}
	base := prs[0].Res.OpsPerSec
	for _, pr := range prs {
		t.Rows = append(t.Rows, []string{
			pr.Name,
			f0(pr.Res.OpsPerSec),
			pct(pr.Res.OpsPerSec, base),
			f2(pr.Res.Cores.Cleaner),
			f2(pr.Res.Cores.Infra),
			f2(pr.Res.Cores.WriteAllocation()),
			f2(pr.Res.Cores.Total()),
		})
	}
	return t
}

// Fig4 reproduces Figure 4: sequential write under the four permutations.
// Paper shape: +7% (infra only), +82% (cleaners only), +274% (both);
// ~6.2 write-allocation cores at full parallelism.
func Fig4(rc RunConfig, parallelCleaners int) (Table, []PermutationResult, error) {
	prs, err := RunPermutations(rc, func() Attacher {
		w := workload.DefaultSeqWrite()
		return w
	}, parallelCleaners)
	if err != nil {
		return Table{}, nil, err
	}
	t := permTable("Fig4", "Sequential write: throughput & core usage by parallelization", prs)
	t.Notes = append(t.Notes, "paper: +7% infra-only, +82% cleaners-only, +274% both")
	return t, prs, nil
}

// Fig7 reproduces Figure 7: random write under the four permutations.
// Paper shape (inverted vs Fig 4): +25% infra-only, +14% cleaners-only,
// +50% both.
func Fig7(rc RunConfig, parallelCleaners int) (Table, []PermutationResult, error) {
	prs, err := RunPermutations(rc, func() Attacher {
		w := workload.DefaultRandWrite()
		return w
	}, parallelCleaners)
	if err != nil {
		return Table{}, nil, err
	}
	t := permTable("Fig7", "Random write: throughput & core usage by parallelization", prs)
	t.Notes = append(t.Notes, "paper: +25% infra-only, +14% cleaners-only, +50% both")
	return t, prs, nil
}

// Fig5 reproduces Figure 5: sequential-write throughput and cleaner core
// usage as the (static) cleaner-thread count rises, with the
// infrastructure parallel. Paper shape: near-linear until CPU saturation.
func Fig5(rc RunConfig, maxCleaners int) (Table, []wafl.Results, error) {
	t := Table{
		ID:      "Fig5",
		Title:   "Sequential write vs number of cleaner threads (parallel infra)",
		Headers: []string{"cleaners", "ops/s", "rel", "cleaner-cores", "infra-cores", "total-cores"},
	}
	var all []wafl.Results
	var base float64
	for n := 1; n <= maxCleaners; n++ {
		cfg := rc.Base
		cfg.Allocator.InfraParallel = true
		cfg.Allocator.InitialCleaners = n
		cfg.Allocator.MaxCleaners = n
		cfg.Allocator.Dynamic = false
		res, _, err := Measure(cfg, workload.DefaultSeqWrite(), rc.Warmup, rc.Window)
		if err != nil {
			return Table{}, nil, err
		}
		if n == 1 {
			base = res.OpsPerSec
		}
		all = append(all, res)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), f0(res.OpsPerSec), pct(res.OpsPerSec, base),
			f2(res.Cores.Cleaner), f2(res.Cores.Infra), f2(res.Cores.Total()),
		})
	}
	return t, all, nil
}

// Fig6 reproduces Figure 6: infrastructure core usage and throughput with
// and without infrastructure parallelization, cleaners parallel. Paper:
// 0.94 -> 2.35 infra cores, +106% throughput.
func Fig6(rc RunConfig, parallelCleaners int) (Table, []wafl.Results, error) {
	t := Table{
		ID:      "Fig6",
		Title:   "Infrastructure parallelization (cleaners parallel)",
		Headers: []string{"infrastructure", "ops/s", "rel", "infra-cores", "total-cores"},
	}
	var all []wafl.Results
	var base float64
	for _, par := range []bool{false, true} {
		cfg := rc.Base
		cfg.Allocator.InfraParallel = par
		cfg.Allocator.InitialCleaners = parallelCleaners
		cfg.Allocator.MaxCleaners = parallelCleaners
		cfg.Allocator.Dynamic = false
		res, _, err := Measure(cfg, workload.DefaultSeqWrite(), rc.Warmup, rc.Window)
		if err != nil {
			return Table{}, nil, err
		}
		if !par {
			base = res.OpsPerSec
		}
		all = append(all, res)
		name := "serialized"
		if par {
			name = "parallel"
		}
		t.Rows = append(t.Rows, []string{
			name, f0(res.OpsPerSec), pct(res.OpsPerSec, base),
			f2(res.Cores.Infra), f2(res.Cores.Total()),
		})
	}
	t.Notes = append(t.Notes, "paper: infra cores 0.94 -> 2.35, throughput +106%")
	return t, all, nil
}
