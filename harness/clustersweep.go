package harness

import (
	"fmt"

	"wafl"
)

// ClusterSweepConfig parameterizes the multi-member crash sweep: a seeded
// per-member workload is run to completion once to learn its event span,
// then re-run and halted at evenly spaced event indices. At each point one
// member is crashed (victims rotate across points) while the survivors keep
// serving; the sweep then verifies survivor progress, recovers the member
// in place, crashes it again immediately (the double crash that catches
// NVRAM re-protection bugs), recovers again, and checks every acknowledged
// operation and every member's fsck.
type ClusterSweepConfig struct {
	// Base is the cluster configuration; Base.Members must be >= 2.
	// Base.Seed is overridden by Seeds.
	Base wafl.Config
	// Seeds are the workload seeds swept.
	Seeds []int64
	// Points is how many evenly spaced event-index crash points to sweep
	// per seed.
	Points int
	// ClientsPerMember and OpsPerClient bound the workload. Clients are
	// pinned to their member's volumes, so a member crash takes down
	// exactly its own clients.
	ClientsPerMember int
	OpsPerClient     int
	// BaseBlocks is the size of each client's preallocated base file.
	BaseBlocks int64
	// MaxRun bounds one simulated run segment.
	MaxRun wafl.Duration
}

// DefaultClusterSweep returns a bounded two-member sweep sized for CI,
// with the crash-sweep fault plan (torn writes, delays, read errors) live
// on every member.
func DefaultClusterSweep() ClusterSweepConfig {
	base := DefaultCrashSweep().Base
	base.Members = 2
	return ClusterSweepConfig{
		Base:             base,
		Seeds:            []int64{1, 2},
		Points:           6,
		ClientsPerMember: 3,
		OpsPerClient:     150,
		BaseBlocks:       512,
		MaxRun:           2 * wafl.Second,
	}
}

// ClusterSweepResult is the machine-readable sweep outcome.
type ClusterSweepResult struct {
	PointsRun int
	Failures  []string
}

// OK reports whether every swept crash point passed.
func (r ClusterSweepResult) OK() bool { return len(r.Failures) == 0 }

// clusterRun is one constructed sweep system: per-member ack logs, client
// handles (for CrashMember pinning), and per-member completion counts.
type clusterRun struct {
	sys     *wafl.System
	acks    []*ackLog           // one per member
	clients [][]*wafl.ClientCtx // client handles, per member
	e0      uint64
}

// buildClusterRun constructs a cluster for one sweep run: per-member base
// files are created and committed, then ClientsPerMember clients attach to
// each member, pinned to its volumes. The workload is the crash-sweep mix
// minus snapshots: base-file writes, creates (immediately written), deletes
// of own earlier creates, and getattrs.
func buildClusterRun(cfg ClusterSweepConfig, seed int64) (*clusterRun, error) {
	c := cfg.Base
	c.Seed = seed
	sys, err := wafl.NewSystem(c)
	if err != nil {
		return nil, err
	}
	members := sys.Members()
	r := &clusterRun{sys: sys, acks: make([]*ackLog, members), clients: make([][]*wafl.ClientCtx, members)}
	base := make([][]uint64, members)
	for mi := 0; mi < members; mi++ {
		r.acks[mi] = newAckLog()
		r.acks[mi].baseBlocks = cfg.BaseBlocks
		for i := 0; i < cfg.ClientsPerMember; i++ {
			vol := mi*c.Volumes + i%c.Volumes
			base[mi] = append(base[mi], sys.CreateFileDirect(vol, uint64(cfg.BaseBlocks)))
		}
	}
	if err := sys.Flush(); err != nil {
		sys.Shutdown()
		return nil, fmt.Errorf("setup flush: %w", err)
	}
	for mi := 0; mi < members; mi++ {
		ack := r.acks[mi]
		for i := 0; i < cfg.ClientsPerMember; i++ {
			vol := mi*c.Volumes + i%c.Volumes
			ino := base[mi][i]
			cc := sys.ClientThread(fmt.Sprintf("m%d-sweep-%d", mi, i), func(cl *wafl.ClientCtx) {
				var mine []uint64
				for op := 0; op < cfg.OpsPerClient && cl.Alive(); op++ {
					switch rnd := cl.Rand(10); {
					case rnd < 7:
						fbn := wafl.FBN(cl.Rand(cfg.BaseBlocks - 4))
						n := 1 + int(cl.Rand(4))
						cl.Write(vol, ino, fbn, n)
						ack.ops = append(ack.ops, ackOp{'w', vol, ino, fbn, n})
					case rnd == 7:
						f := cl.Create(vol, 64)
						ack.ops = append(ack.ops, ackOp{'c', vol, f, 0, 0})
						cl.Write(vol, f, 0, 1)
						ack.ops = append(ack.ops, ackOp{'w', vol, f, 0, 1})
						mine = append(mine, f)
					case rnd == 8 && len(mine) > 0:
						f := mine[0]
						mine = mine[1:]
						ack.ops = append(ack.ops, ackOp{'D', vol, f, 0, 0})
						if cl.Delete(vol, f) {
							ack.ops = append(ack.ops, ackOp{'d', vol, f, 0, 0})
						}
					default:
						cl.Getattr(vol, ino)
					}
				}
				ack.done++
			})
			r.clients[mi] = append(r.clients[mi], cc)
		}
	}
	r.e0 = sys.Events()
	return r, nil
}

// doneClients sums finished clients across the given members.
func (r *clusterRun) doneClients(skip int) (done, want int) {
	for mi, a := range r.acks {
		if mi == skip {
			continue
		}
		done += a.done
		want += len(r.clients[mi])
	}
	return done, want
}

// ClusterSweep runs the member-crash sweep and returns a rendered table
// plus the machine-readable result.
func ClusterSweep(cfg ClusterSweepConfig) (Table, ClusterSweepResult, error) {
	var res ClusterSweepResult
	tab := Table{
		ID:      "clustersweep",
		Title:   "independent member crash/recovery under surviving traffic",
		Headers: []string{"seed", "points", "acked ops", "failures"},
	}
	if cfg.Base.Members < 2 {
		return tab, res, fmt.Errorf("clustersweep: Base.Members must be >= 2 (got %d)", cfg.Base.Members)
	}
	for _, seed := range cfg.Seeds {
		// Baseline: learn the crashable event span [e0, e1].
		r, err := buildClusterRun(cfg, seed)
		if err != nil {
			return tab, res, err
		}
		for i := 0; i < 64; i++ {
			if d, w := r.doneClients(-1); d >= w {
				break
			}
			r.sys.Run(cfg.MaxRun)
		}
		if d, w := r.doneClients(-1); d < w {
			r.sys.Shutdown()
			return tab, res, fmt.Errorf("seed %d: baseline workload did not finish (%d/%d)", seed, d, w)
		}
		e0, e1 := r.e0, r.sys.Events()
		var totalOps int
		for _, a := range r.acks {
			totalOps += len(a.ops)
		}
		r.sys.Shutdown()
		if e1 <= e0+1 {
			return tab, res, fmt.Errorf("seed %d: empty crashable region [%d,%d]", seed, e0, e1)
		}

		failsBefore := len(res.Failures)
		for i := 0; i < cfg.Points; i++ {
			k := e0 + uint64(i+1)*(e1-e0)/uint64(cfg.Points+1)
			victim := i % cfg.Base.Members
			label := fmt.Sprintf("seed%d@event%d/victim%d", seed, k, victim)
			res.Failures = clusterCrashPoint(cfg, seed, k, victim, label, res.Failures)
			res.PointsRun++
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", seed), fmt.Sprintf("%d", cfg.Points),
			fmt.Sprintf("%d", totalOps), fmt.Sprintf("%d", len(res.Failures)-failsBefore),
		})
	}

	for _, f := range res.Failures {
		tab.Notes = append(tab.Notes, "FAIL "+f)
	}
	if res.OK() {
		tab.Notes = append(tab.Notes, fmt.Sprintf(
			"%d member-crash points: survivor progress, recovery, double crash, per-member fsck all verified",
			res.PointsRun))
	}
	return tab, res, nil
}

// clusterCrashPoint exercises one crash point: run to event k, crash the
// victim member (and its pinned clients), let survivors run and check they
// progress, recover the victim in place, immediately crash and recover it
// again, drain the cluster, then verify every member's acknowledged ops and
// fsck. The victim's ack log is frozen at the crash instant — exactly the
// set of ops §II-C binds it to.
func clusterCrashPoint(cfg ClusterSweepConfig, seed int64, k uint64, victim int, label string, fails []string) []string {
	r, err := buildClusterRun(cfg, seed)
	if err != nil {
		return append(fails, fmt.Sprintf("%s: build: %v", label, err))
	}
	sys := r.sys
	defer sys.Shutdown()
	if !sys.RunToEvent(k, 128*cfg.MaxRun) {
		return append(fails, fmt.Sprintf("%s: halt not reached", label))
	}

	victimAcked := r.acks[victim].freeze()
	survOpsAtCrash := 0
	for mi, a := range r.acks {
		if mi != victim {
			survOpsAtCrash += len(a.ops)
		}
	}
	survDoneAtCrash, survWant := r.doneClients(victim)
	sys.CrashMember(victim, r.clients[victim]...)

	// Survivors keep serving while the victim is down.
	for i := 0; i < 64; i++ {
		if d, w := r.doneClients(victim); d >= w {
			break
		}
		sys.Run(cfg.MaxRun)
	}
	if d, w := r.doneClients(victim); d < w {
		fails = append(fails, fmt.Sprintf("%s: survivors did not finish (%d/%d)", label, d, w))
	}
	survOpsAfter := 0
	for mi, a := range r.acks {
		if mi != victim {
			survOpsAfter += len(a.ops)
		}
	}
	// Survivors must have kept serving during the outage — unless they had
	// already finished their bounded workload before the crash point.
	if survDoneAtCrash < survWant && survOpsAfter <= survOpsAtCrash {
		fails = append(fails, fmt.Sprintf("%s: survivors made no progress during outage (%d -> %d)",
			label, survOpsAtCrash, survOpsAfter))
	}

	// Recover the victim, then crash it again before it runs a single
	// event: everything acked before the first crash must still be
	// NVRAM-protected by the remounted log.
	if err := sys.RecoverMember(victim); err != nil {
		return append(fails, fmt.Sprintf("%s: recovery failed: %v", label, err))
	}
	sys.CrashMember(victim)
	if err := sys.RecoverMember(victim); err != nil {
		return append(fails, fmt.Sprintf("%s: double-crash recovery failed: %v", label, err))
	}

	// Drain the recovery CP and the survivors' tail, then verify: the
	// victim against its frozen ack set, survivors against their full logs.
	if err := sys.Quiesce(); err != nil {
		fails = append(fails, fmt.Sprintf("%s: quiesce: %v", label, err))
	}
	fails = verifyAcked(sys, victimAcked, label+"/victim", fails)
	for mi, a := range r.acks {
		if mi == victim {
			continue
		}
		fails = verifyAcked(sys, a, fmt.Sprintf("%s/survivor%d", label, mi), fails)
	}
	for mi := 0; mi < sys.Members(); mi++ {
		if rep := sys.FsckMember(mi); !rep.OK() {
			fails = append(fails, fmt.Sprintf("%s: member %d fsck: %s", label, mi, rep))
		}
	}
	return fails
}
