package harness

import (
	"fmt"

	"wafl"
	"wafl/workload"
)

// cleanerConfigs returns the Fig 8 / Fig 9 thread configurations: static
// 1..max plus dynamic.
type cleanerConfig struct {
	Name    string
	Static  int // 0 => dynamic
	Max     int
	Dynamic bool
}

func cleanerConfigs(max int) []cleanerConfig {
	var out []cleanerConfig
	for n := 1; n <= max; n++ {
		out = append(out, cleanerConfig{Name: fmt.Sprintf("%d threads", n), Static: n, Max: n})
	}
	out = append(out, cleanerConfig{Name: "dynamic", Max: max, Dynamic: true})
	return out
}

func (cc cleanerConfig) apply(cfg *wafl.Config) {
	cfg.Allocator.InfraParallel = true
	cfg.Allocator.Dynamic = cc.Dynamic
	cfg.Allocator.MaxCleaners = cc.Max
	if cc.Dynamic {
		cfg.Allocator.InitialCleaners = 1
	} else {
		cfg.Allocator.InitialCleaners = cc.Static
	}
}

// Fig8Result is one Fig 8 row: peak throughput and off-peak (knee)
// latency for a cleaner-thread configuration.
type Fig8Result struct {
	Name     string
	PeakOps  float64
	KneeLat  wafl.Duration
	Cleaners int
}

// Fig8 reproduces Figure 8: the OLTP benchmark on the Flash Pool system
// with 1..4 static cleaner threads and dynamic tuning, reporting peak-load
// throughput and off-peak ("knee") latency. Paper shape: two static
// threads beat one on both metrics; more than two degrade (-3% peak
// throughput, higher latency); dynamic matches or beats the best static.
func Fig8(rc RunConfig) (Table, []Fig8Result, error) {
	base := rc.Base
	base.Drives = wafl.FlashPool

	peak := workload.DefaultOLTP()
	peak.Clients = 80
	peak.Think = 0

	knee := workload.DefaultOLTP()
	knee.Clients = 60

	t := Table{
		ID:      "Fig8",
		Title:   "OLTP (Flash Pool): peak throughput & knee latency vs cleaner threads",
		Headers: []string{"cleaners", "peak ops/s", "rel", "knee latency", "rel"},
	}
	var out []Fig8Result
	var baseOps float64
	var baseLat wafl.Duration
	for _, cc := range cleanerConfigs(4) {
		cfgPeak := base
		cc.apply(&cfgPeak)
		// OLTP LUN cleaning parallelism on this testbed equals the volume
		// count (2): per-inode splitting is not in play (§V-C's feature
		// targets single-file hotspots, not steady OLTP).
		cfgPeak.Allocator.SplitLargeFiles = false
		resPeak, _, err := Measure(cfgPeak, peak, rc.Warmup, rc.Window)
		if err != nil {
			return Table{}, nil, err
		}
		cfgKnee := base
		cc.apply(&cfgKnee)
		cfgKnee.Allocator.SplitLargeFiles = false
		resKnee, _, err := Measure(cfgKnee, knee, rc.Warmup, rc.Window)
		if err != nil {
			return Table{}, nil, err
		}
		if baseOps == 0 {
			baseOps = resPeak.OpsPerSec
			baseLat = resKnee.LatAvg
		}
		out = append(out, Fig8Result{Name: cc.Name, PeakOps: resPeak.OpsPerSec, KneeLat: resKnee.LatAvg})
		t.Rows = append(t.Rows, []string{
			cc.Name, f0(resPeak.OpsPerSec), pct(resPeak.OpsPerSec, baseOps),
			us(resKnee.LatAvg), pct(float64(resKnee.LatAvg), float64(baseLat)),
		})
	}
	t.Notes = append(t.Notes, "paper: 2 static threads optimal; >2 adds latency and -3% throughput; dynamic best overall")
	return t, out, nil
}

// Fig9Point is one (load, throughput, latency) sample of a Fig 9 curve.
type Fig9Point struct {
	Config  string
	Clients int
	MBps    float64
	Lat     wafl.Duration
}

// Fig9 reproduces Figure 9: sequential-write throughput vs latency at
// increasing client load for 1..4 static cleaner threads and dynamic
// tuning. Paper shape: 4 threads win peak throughput, 3 threads have lower
// off-peak latency, and dynamic tuning traces the lower envelope.
func Fig9(rc RunConfig) (Table, []Fig9Point, error) {
	loads := []int{4, 8, 16, 24}
	t := Table{
		ID:      "Fig9",
		Title:   "Sequential write: throughput vs latency at rising load",
		Headers: []string{"config", "clients", "MB/s", "avg latency"},
	}
	var points []Fig9Point
	for _, cc := range cleanerConfigs(4) {
		for _, clients := range loads {
			cfg := rc.Base
			cc.apply(&cfg)
			w := workload.DefaultSeqWrite()
			w.Clients = clients
			res, _, err := Measure(cfg, w, rc.Warmup, rc.Window)
			if err != nil {
				return Table{}, nil, err
			}
			points = append(points, Fig9Point{Config: cc.Name, Clients: clients, MBps: res.MBPerSec, Lat: res.LatAvg})
			t.Rows = append(t.Rows, []string{cc.Name, fmt.Sprintf("%d", clients), f2(res.MBPerSec), us(res.LatAvg)})
		}
	}
	t.Notes = append(t.Notes, "paper: peak with 4 threads, lower off-peak latency with 3, dynamic ≥ both")
	return t, points, nil
}

// BatchedCleaning reproduces the §V-C in-text result: the NFSv3 mix on SAS
// drives with and without batched inode cleaning. Paper: 21.2K -> 22.0K
// ops/s (+3.8%) and latency 6.7ms -> 6.5ms.
func BatchedCleaning(rc RunConfig) (Table, []wafl.Results, error) {
	base := rc.Base
	base.Drives = wafl.HDD
	// The SAS testbed spreads load over a shelf of spindles: four RAID
	// groups, so drive bandwidth is not the CP bottleneck.
	base.RAIDGroups = 4
	base.DriveBlocks = 32768
	t := Table{
		ID:      "V-C",
		Title:   "NFSv3 mix (SAS): batched inode cleaning",
		Headers: []string{"batching", "ops/s", "rel", "avg latency", "rel", "jobs", "batches"},
	}
	var all []wafl.Results
	var baseOps float64
	var baseLat wafl.Duration
	for _, batching := range []bool{false, true} {
		cfg := base
		cfg.Allocator.InfraParallel = true
		cfg.Allocator.BatchedCleaning = batching
		// Measure at saturation (no think time): throughput is CP-drain
		// bound, which is where per-inode message overhead shows.
		w := workload.DefaultNFSMix()
		w.Think = 0
		w.FilesPerV = 800
		res, sys, err := Measure(cfg, w, rc.Warmup, rc.Window)
		if err != nil {
			return Table{}, nil, err
		}
		if !batching {
			baseOps = res.OpsPerSec
			baseLat = res.LatAvg
		}
		all = append(all, res)
		name := "off"
		if batching {
			name = "on"
		}
		jobs, batches := sys.CleanerJobStats()
		t.Rows = append(t.Rows, []string{
			name, f0(res.OpsPerSec), pct(res.OpsPerSec, baseOps),
			us(res.LatAvg), pct(float64(res.LatAvg), float64(baseLat)),
			fmt.Sprintf("%d", jobs), fmt.Sprintf("%d", batches),
		})
	}
	t.Notes = append(t.Notes, "paper: +3.8% ops/s, latency 6.7ms -> 6.5ms")
	return t, all, nil
}

// Ablations measures the design choices §IV calls out: bucket (chunk)
// size, AA selection policy, loose accounting, and equal-progress bucket
// insertion.
func Ablations(rc RunConfig) (Table, error) {
	t := Table{
		ID:      "Ablations",
		Title:   "Design-choice ablations (sequential write, White Alligator config)",
		Headers: []string{"ablation", "setting", "ops/s", "full-stripe%", "get-waits"},
	}
	run := func(name, setting string, mut func(*wafl.Config)) error {
		cfg := rc.Base
		cfg.Allocator.InfraParallel = true
		mut(&cfg)
		sys, err := wafl.NewSystem(cfg)
		if err != nil {
			return err
		}
		w := workload.DefaultSeqWrite()
		w.Attach(sys)
		res := sys.Measure(rc.Warmup, rc.Window)
		sys.Shutdown()
		st := fmt.Sprintf("%v", sys.InfraStats())
		_ = st
		t.Rows = append(t.Rows, []string{
			name, setting, f0(res.OpsPerSec), f0(res.FullStripe * 100), "-",
		})
		return nil
	}
	for _, chunk := range []int{1, 8, 64, 256} {
		if err := run("bucket-size", fmt.Sprintf("%d blocks", chunk), func(c *wafl.Config) {
			c.Allocator.ChunkBlocks = chunk
		}); err != nil {
			return Table{}, err
		}
	}
	policies := []struct {
		name   string
		policy wafl.AAPolicy
	}{{"most-free", wafl.AAMostFree}, {"first-fit", wafl.AAFirstFit}, {"round-robin", wafl.AARoundRobin}}
	for _, p := range policies {
		p := p
		if err := run("aa-policy", p.name, func(c *wafl.Config) {
			c.Allocator.AASelection = p.policy
		}); err != nil {
			return Table{}, err
		}
	}
	for _, loose := range []bool{true, false} {
		if err := run("loose-accounting", fmt.Sprintf("%v", loose), func(c *wafl.Config) {
			c.Allocator.LooseAccounting = loose
		}); err != nil {
			return Table{}, err
		}
	}
	for _, eq := range []bool{true, false} {
		if err := run("equal-progress", fmt.Sprintf("%v", eq), func(c *wafl.Config) {
			c.Allocator.EqualProgress = eq
		}); err != nil {
			return Table{}, err
		}
	}
	return t, nil
}
