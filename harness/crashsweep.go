package harness

import (
	"fmt"
	"strings"

	"wafl"
)

// CrashSweepConfig parameterizes a crash-schedule sweep: a seeded workload
// is run to completion once to learn its event-index span, then re-run and
// crashed at evenly spaced event indices (and, optionally, at CP phase
// boundaries). After every crash the system is recovered, checked with
// Fsck, and every acknowledged operation is verified against the data
// oracle; then the *recovered* system is crashed again before it can run —
// the double-crash that catches NVRAM-protection bugs — and re-verified.
type CrashSweepConfig struct {
	// Base is the system configuration, including the fault plan
	// (Base.Faults). Base.Seed is overridden by Seeds.
	Base wafl.Config
	// Seeds are the workload seeds swept; every seed gets its own set of
	// crash points.
	Seeds []int64
	// Points is how many evenly spaced event-index crash points to sweep
	// per seed.
	Points int
	// Phases, when > 0, additionally crashes at the first Phases CP
	// phase-boundary hits of the first seed's run (a CP has nine
	// boundaries, so Phases = 9 covers one full CP, 18 two, ...).
	Phases int
	// Clients and OpsPerClient bound the workload.
	Clients      int
	OpsPerClient int
	// SnapEvery, when > 0, makes each client run a snapshot op every
	// SnapEvery ops: a create when the client holds no snapshot of its own,
	// otherwise a delete of the one it holds (each client keeps at most one).
	SnapEvery int
	// BaseBlocks is the size of each client's preallocated base file.
	BaseBlocks int64
	// MaxRun bounds one simulated run segment.
	MaxRun wafl.Duration
	// Modes lists the ParallelCP settings to sweep; every mode repeats the
	// full event-index and phase-boundary schedule, so each CP boundary is
	// crash-tested both under fan-out and on the serial ablation. Empty
	// means "just Base.Allocator.ParallelCP as configured".
	Modes []bool
	// Overload adds one crash point taken while NVLog admission control is
	// actively shedding bulk load: the crash lands mid-shed and recovery
	// must replay exactly the admitted (logged, acked) writes — shed writes
	// were never logged and must stay absent from the contract.
	Overload bool
	// CloneOps adds ClonePoints CP phase-boundary crash points taken inside
	// a scripted clone window (snapshot → parent churn → clone create →
	// clone writes → clone split → SnapRestore → post-restore writes), each
	// verified against a dedicated oracle: an acked clone serves the frozen
	// parent image plus its own acked writes, an acked restore is
	// all-or-nothing and supersedes the parent's post-snapshot churn, and
	// fsck must hold zero leaked/missing blocks on every recovery leg.
	CloneOps bool
	// ClonePoints is how many boundary points the clone-ops schedule
	// sweeps (0 with CloneOps set means 12 — more than one full CP).
	ClonePoints int
}

// DefaultCrashSweep returns a bounded sweep sized for CI: a small server,
// two seeds, torn writes + delayed completions + transient read errors.
func DefaultCrashSweep() CrashSweepConfig {
	cfg := wafl.DefaultConfig()
	cfg.Cores = 8
	cfg.RAIDGroups = 2
	cfg.DataDrives = 3
	cfg.DriveBlocks = 16384
	cfg.AAStripes = 1024
	cfg.Volumes = 2
	cfg.VolumeBlocks = 1 << 15
	cfg.NVRAMHalfBytes = 512 << 10
	cfg.StripesPerVolume = 8
	cfg.RangesPerVBN = 4
	cfg.PayloadBytes = 4096 // byte-exact content verification
	cfg.Allocator.MaxCleaners = 4
	cfg.Allocator.InitialCleaners = 2
	cfg.Faults = wafl.FaultConfig{
		TornWriteEvery:  3,
		TornWritePrefix: -1,
		DelayWriteEvery: 7,
		DelayReadEvery:  5,
		Delay:           200 * wafl.Microsecond,
		ReadErrEvery:    9,
	}
	return CrashSweepConfig{
		Base:         cfg,
		Seeds:        []int64{1, 2},
		Points:       8,
		Phases:       9,
		Clients:      4,
		OpsPerClient: 200,
		SnapEvery:    25,
		BaseBlocks:   512,
		MaxRun:       2 * wafl.Second,
		Modes:        []bool{true, false},
		Overload:     true,
		CloneOps:     true,
		ClonePoints:  12,
	}
}

// CrashSweepResult is the machine-readable sweep outcome.
type CrashSweepResult struct {
	PointsRun int      // crash points actually exercised (incl. phase points)
	Failures  []string // verification/fsck failures, capped
}

// OK reports whether every swept crash point passed.
func (r CrashSweepResult) OK() bool { return len(r.Failures) == 0 }

// ackOp is one acknowledged client operation, recorded host-side the
// instant the simulated call returns (so it is exactly the set of ops the
// crash contract §II-C covers). Kind 'D' is a delete *intent*, recorded
// before the delete is issued: a crash can land after the delete applied
// and logged but before the client saw the ack, in which case the op may
// legitimately have survived — the contract only binds acknowledged ops.
type ackOp struct {
	kind byte // 'w' write, 'c' create, 'd' delete, 'D' delete intent
	vol  int
	ino  uint64
	fbn  wafl.FBN
	n    int
}

// snapKey identifies one snapshot across the sweep's bookkeeping maps.
type snapKey struct {
	vol int
	id  uint64
}

// ackSnap is one acknowledged snapshot create. SnapCreate acks only after
// the materializing CP commits, so an acked snapshot must survive any later
// crash. image is the set of base-file blocks the owning client had written
// (and been acked for) when the create returned: only that client writes its
// base file and it blocks for the whole create, so the frozen image holds
// exactly those blocks — written ones as the oracle payload, the rest holes.
type ackSnap struct {
	vol     int
	id      uint64
	baseIno uint64
	image   map[wafl.FBN]bool
}

// ackLog collects acknowledged operations and workload progress. The
// simulation serializes client threads, so no locking is needed.
type ackLog struct {
	ops        []ackOp
	snaps      []ackSnap        // acked snapshot creates ('s')
	delIntent  map[snapKey]bool // snapshot delete issued, maybe unacked ('T')
	delAcked   map[snapKey]bool // snapshot delete acknowledged ('t')
	baseBlocks int64            // base-file span, for hole probing
	done       int              // clients finished
}

func newAckLog() *ackLog {
	return &ackLog{delIntent: map[snapKey]bool{}, delAcked: map[snapKey]bool{}}
}

// freeze returns an immutable copy of the ack state for post-crash checks.
func (a *ackLog) freeze() *ackLog {
	c := newAckLog()
	c.baseBlocks = a.baseBlocks
	c.ops = append([]ackOp(nil), a.ops...)
	c.snaps = append([]ackSnap(nil), a.snaps...)
	for k := range a.delIntent {
		c.delIntent[k] = true
	}
	for k := range a.delAcked {
		c.delAcked[k] = true
	}
	return c
}

// sweepWorkload attaches the oracle workload: per client, a mix of writes
// to a preallocated base file, creates (immediately written), deletes of
// the client's own earlier creates, and getattrs. Inodes are never reused
// and base files are never deleted, so replay verification is exact.
func sweepWorkload(sys *wafl.System, cfg CrashSweepConfig, base []uint64, ack *ackLog) {
	for i := 0; i < cfg.Clients; i++ {
		i := i
		vol := i % cfg.Base.Volumes
		ino := base[i]
		sys.ClientThread(fmt.Sprintf("sweep-%d", i), func(c *wafl.ClientCtx) {
			var mine []uint64 // own created files, oldest first
			var ownSnap uint64
			written := map[wafl.FBN]bool{} // acked base-file blocks
			for op := 0; op < cfg.OpsPerClient && c.Alive(); op++ {
				if cfg.SnapEvery > 0 && op%cfg.SnapEvery == cfg.SnapEvery-1 {
					if ownSnap != 0 {
						k := snapKey{vol, ownSnap}
						ack.delIntent[k] = true
						if c.SnapDelete(vol, ownSnap) {
							ack.delAcked[k] = true
						}
						ownSnap = 0
					} else {
						id := c.SnapCreate(vol)
						img := make(map[wafl.FBN]bool, len(written))
						for k := range written {
							img[k] = true
						}
						ack.snaps = append(ack.snaps, ackSnap{vol, id, ino, img})
						ownSnap = id
					}
					continue
				}
				r := c.Rand(10)
				switch {
				case r < 7:
					fbn := wafl.FBN(c.Rand(cfg.BaseBlocks - 4))
					n := 1 + int(c.Rand(4))
					c.Write(vol, ino, fbn, n)
					ack.ops = append(ack.ops, ackOp{'w', vol, ino, fbn, n})
					for b := 0; b < n; b++ {
						written[fbn+wafl.FBN(b)] = true
					}
				case r == 7:
					f := c.Create(vol, 64)
					ack.ops = append(ack.ops, ackOp{'c', vol, f, 0, 0})
					c.Write(vol, f, 0, 1)
					ack.ops = append(ack.ops, ackOp{'w', vol, f, 0, 1})
					mine = append(mine, f)
				case r == 8 && len(mine) > 0:
					f := mine[0]
					mine = mine[1:]
					ack.ops = append(ack.ops, ackOp{'D', vol, f, 0, 0})
					if c.Delete(vol, f) {
						ack.ops = append(ack.ops, ackOp{'d', vol, f, 0, 0})
					}
				default:
					c.Getattr(vol, ino)
				}
			}
			ack.done++
		})
	}
}

// buildSweepSystem constructs a system for one sweep run: base files are
// created and committed (so their inode records are on media before any
// logged write references them), then the workload clients attach. The
// returned event index marks the start of the crashable region.
func buildSweepSystem(cfg CrashSweepConfig, seed int64) (*wafl.System, *ackLog, uint64, error) {
	c := cfg.Base
	c.Seed = seed
	sys, err := wafl.NewSystem(c)
	if err != nil {
		return nil, nil, 0, err
	}
	base := make([]uint64, cfg.Clients)
	for i := range base {
		base[i] = sys.CreateFileDirect(i%c.Volumes, uint64(cfg.BaseBlocks))
	}
	if err := sys.Flush(); err != nil {
		sys.Shutdown()
		return nil, nil, 0, fmt.Errorf("setup flush: %w", err)
	}
	ack := newAckLog()
	ack.baseBlocks = cfg.BaseBlocks
	sweepWorkload(sys, cfg, base, ack)
	return sys, ack, sys.Events(), nil
}

// verifyAcked checks every acknowledged operation against the system: a
// created-and-not-deleted file exists, a deleted file does not, every write
// to a live file reads back as the oracle payload, and every acknowledged
// snapshot still serves its exact frozen image (acked deletes stay deleted).
func verifyAcked(sys *wafl.System, ack *ackLog, label string, fails []string) []string {
	ops := ack.ops
	type fileKey struct {
		vol int
		ino uint64
	}
	// intent covers inos whose delete was issued but possibly unacked at
	// the crash: those may or may not survive, so only the acked-delete
	// direction is checked for them.
	intent := make(map[fileKey]bool)
	deleted := make(map[fileKey]bool)
	for _, op := range ops {
		switch op.kind {
		case 'D':
			intent[fileKey{op.vol, op.ino}] = true
		case 'd':
			deleted[fileKey{op.vol, op.ino}] = true
		}
	}
	add := func(msg string) []string {
		if len(fails) < 40 {
			fails = append(fails, msg)
		}
		return fails
	}
	for _, op := range ops {
		k := fileKey{op.vol, op.ino}
		switch op.kind {
		case 'c':
			if !intent[k] && !sys.FileExists(op.vol, op.ino) {
				fails = add(fmt.Sprintf("%s: acked create vol%d ino%d lost", label, op.vol, op.ino))
			}
		case 'd':
			if sys.FileExists(op.vol, op.ino) {
				fails = add(fmt.Sprintf("%s: acked delete vol%d ino%d resurrected", label, op.vol, op.ino))
			}
		case 'w':
			if intent[k] {
				continue
			}
			for b := 0; b < op.n; b++ {
				if err := sys.VerifyAgainst(op.vol, op.ino, op.fbn+wafl.FBN(b)); err != nil {
					fails = add(fmt.Sprintf("%s: acked write lost: %v", label, err))
					break
				}
			}
		}
	}
	// Snapshot images: an acked create must exist (unless its delete was at
	// least issued) and serve exactly the frozen base-file image — the
	// oracle payload where the owner had written, holes everywhere else. An
	// acked delete must stay deleted across recovery.
	for _, s := range ack.snaps {
		k := snapKey{s.vol, s.id}
		if ack.delAcked[k] {
			if sys.SnapshotExists(s.vol, s.id) {
				fails = add(fmt.Sprintf("%s: acked snap delete vol%d id%d resurrected", label, s.vol, s.id))
			}
			continue
		}
		if !sys.SnapshotExists(s.vol, s.id) {
			if !ack.delIntent[k] {
				fails = add(fmt.Sprintf("%s: acked snapshot vol%d id%d lost", label, s.vol, s.id))
			}
			continue
		}
		bad := false
		for fbn := range s.image {
			if err := sys.SnapVerifyAgainst(s.vol, s.id, s.baseIno, fbn, true); err != nil {
				fails = add(fmt.Sprintf("%s: snap image: %v", label, err))
				bad = true
				break
			}
		}
		if bad {
			continue
		}
		// Hole direction: probe a few unwritten blocks inside the base
		// file's span.
		probed := 0
		for fbn := wafl.FBN(0); probed < sampleHoles && fbn < wafl.FBN(ack.baseBlocks); fbn++ {
			if s.image[fbn] {
				continue
			}
			if err := sys.SnapVerifyAgainst(s.vol, s.id, s.baseIno, fbn, false); err != nil {
				fails = add(fmt.Sprintf("%s: snap image: %v", label, err))
				break
			}
			probed++
		}
	}
	return fails
}

// sampleHoles is how many unwritten base-file blocks each snapshot-image
// verification probes for the hole direction.
const sampleHoles = 8

// verifyFn checks one recovery leg against an oracle, appending failures.
type verifyFn func(sys *wafl.System, label string, fails []string) []string

// ackedVerifier adapts a frozen ackLog to the pluggable verifier shape.
func ackedVerifier(acked *ackLog) verifyFn {
	return func(sys *wafl.System, label string, fails []string) []string {
		return verifyAcked(sys, acked, label, fails)
	}
}

// crashCycle performs the full per-crash-point check on a halted system:
// crash → recover → verify + fsck, immediately crash the recovered system
// again (double crash, before it runs) → recover → verify + fsck, then let
// it quiesce and verify the final committed image. Returns the surviving
// failure list and the final system (for Shutdown), which may be nil if
// recovery itself failed.
func crashCycle(sys *wafl.System, verify verifyFn, label string, fails []string) ([]string, *wafl.System) {
	sys.Crash()
	rec, err := sys.Recover()
	if err != nil {
		return append(fails, fmt.Sprintf("%s: recovery failed: %v", label, err)), nil
	}
	fails = verify(rec, label+"/recover", fails)
	if r := rec.Fsck(); !r.OK() {
		fails = append(fails, fmt.Sprintf("%s/recover: %s", label, r))
	}

	// Double crash: the recovered system loses power again before a single
	// event runs. Everything acknowledged before the first crash must
	// still be protected by the recovered NVRAM log.
	rec.Crash()
	rec2, err := rec.Recover()
	if err != nil {
		return append(fails, fmt.Sprintf("%s: double-crash recovery failed: %v", label, err)), nil
	}
	fails = verify(rec2, label+"/double", fails)
	if r := rec2.Fsck(); !r.OK() {
		fails = append(fails, fmt.Sprintf("%s/double: %s", label, r))
	}

	// Drain the replayed state to disk and check the committed image.
	if err := rec2.Quiesce(); err != nil {
		fails = append(fails, fmt.Sprintf("%s: quiesce: %v", label, err))
	}
	fails = verify(rec2, label+"/quiesced", fails)
	if r := rec2.Fsck(); !r.OK() {
		fails = append(fails, fmt.Sprintf("%s/quiesced: %s", label, r))
	}
	return fails, rec2
}

// runWorkload advances sys until every client finished (or the segment
// budget runs out). Returns false on timeout.
func runWorkload(sys *wafl.System, cfg CrashSweepConfig, ack *ackLog) bool {
	for i := 0; i < 64 && ack.done < cfg.Clients; i++ {
		sys.Run(cfg.MaxRun)
	}
	return ack.done >= cfg.Clients
}

// CrashSweep runs the crash-schedule sweep described by cfg — once per
// entry of cfg.Modes (ParallelCP on/off) — and returns a rendered table
// plus the machine-readable result.
func CrashSweep(cfg CrashSweepConfig) (Table, CrashSweepResult, error) {
	var res CrashSweepResult
	tab := Table{
		ID:      "crashsweep",
		Title:   "systematic crash/recovery verification (§II-C contract)",
		Headers: []string{"seed", "mode", "points", "acked ops", "failures"},
	}
	modes := cfg.Modes
	if len(modes) == 0 {
		modes = []bool{cfg.Base.Allocator.ParallelCP}
	}
	if cfg.Points == 0 && cfg.Phases == 0 {
		modes = nil // clone-ops/overload-only invocation: skip the baselines
	}
	for _, parallel := range modes {
		cfg := cfg
		cfg.Base.Allocator.ParallelCP = parallel
		modeTag := "serial-cp"
		if parallel {
			modeTag = "parallel-cp"
		}
		if err := crashSweepMode(cfg, modeTag, &tab, &res); err != nil {
			return tab, res, err
		}
	}
	if cfg.Overload {
		if err := overloadCrashPoint(cfg, &tab, &res); err != nil {
			return tab, res, err
		}
	}
	if cfg.CloneOps {
		if err := cloneCrashPoints(cfg, &tab, &res); err != nil {
			return tab, res, err
		}
	}

	for _, f := range res.Failures {
		tab.Notes = append(tab.Notes, "FAIL "+f)
	}
	if res.OK() {
		tab.Notes = append(tab.Notes,
			fmt.Sprintf("%d crash points: recovery + double-crash recovery all verified", res.PointsRun))
	}
	return tab, res, nil
}

// overloadCrashPoint builds a system with a small NVRAM log and admission
// control tuned to shed readily, drives it with hammering bulk writers
// (plus occasional latency-sensitive writes), runs until the controller is
// observed actively shedding, and crashes it right there. The ack log
// records a bulk write only when WriteBulk admitted it, so verification
// proves the shed-load crash contract: every admitted write replays, and
// nothing that was shed leaks into the recovered image.
func overloadCrashPoint(cfg CrashSweepConfig, tab *Table, res *CrashSweepResult) error {
	c := cfg.Base
	if len(cfg.Seeds) > 0 {
		c.Seed = cfg.Seeds[0]
	}
	c.NVRAMHalfBytes = 256 << 10
	c.Admission = wafl.DefaultAdmission()
	// Shed after two delay rounds: the point exists to crash mid-shed, so
	// the controller must reach the shed tier quickly and repeatedly.
	c.Admission.MaxDelay = 2 * c.Admission.DelayStep
	sys, err := wafl.NewSystem(c)
	if err != nil {
		return err
	}
	base := make([]uint64, cfg.Clients)
	for i := range base {
		base[i] = sys.CreateFileDirect(i%c.Volumes, uint64(cfg.BaseBlocks))
	}
	if err := sys.Flush(); err != nil {
		sys.Shutdown()
		return fmt.Errorf("overload setup flush: %w", err)
	}
	ack := newAckLog()
	ack.baseBlocks = cfg.BaseBlocks
	for i := 0; i < cfg.Clients; i++ {
		vol := i % c.Volumes
		ino := base[i]
		sys.ClientThread(fmt.Sprintf("overload-%d", i), func(cc *wafl.ClientCtx) {
			for cc.Alive() {
				fbn := wafl.FBN(cc.Rand(cfg.BaseBlocks - 16))
				if cc.Rand(4) == 0 {
					cc.Write(vol, ino, fbn, 2)
					ack.ops = append(ack.ops, ackOp{'w', vol, ino, fbn, 2})
				} else if _, ok := cc.WriteBulk(vol, ino, fbn, 16); ok {
					ack.ops = append(ack.ops, ackOp{'w', vol, ino, fbn, 16})
				}
			}
		})
	}
	const label = "overload@shed"
	shedding := false
	for i := 0; i < 256 && !shedding; i++ {
		sys.Run(2 * wafl.Millisecond)
		if shed, _ := sys.AdmissionStats(); shed > 0 {
			shedding = true
		}
	}
	if shedding {
		// Run deeper into the shed regime so the crash lands with a real
		// mix of admitted-during-shedding and refused ops in flight.
		sys.Run(10 * wafl.Millisecond)
	}
	failsBefore := len(res.Failures)
	if !shedding {
		res.Failures = append(res.Failures, label+": admission never shed; crash point not reached")
		sys.Shutdown()
	} else {
		var final *wafl.System
		res.Failures, final = crashCycle(sys, ackedVerifier(ack.freeze()), label, res.Failures)
		res.PointsRun++
		if final != nil {
			final.Shutdown()
		} else {
			sys.Shutdown()
		}
	}
	tab.Rows = append(tab.Rows, []string{
		fmt.Sprintf("%d", c.Seed), "overload-shed", "1",
		fmt.Sprintf("%d", len(ack.ops)), fmt.Sprintf("%d", len(res.Failures)-failsBefore),
	})
	return nil
}

// crashSweepMode runs the full event-index + phase-boundary schedule for
// one ParallelCP mode, appending rows to tab and failures to res.
func crashSweepMode(cfg CrashSweepConfig, modeTag string, tab *Table, res *CrashSweepResult) error {
	for _, seed := range cfg.Seeds {
		// Baseline: learn the crashable event-index span [e0, e1].
		sys, ack, e0, err := buildSweepSystem(cfg, seed)
		if err != nil {
			return err
		}
		if !runWorkload(sys, cfg, ack) {
			sys.Shutdown()
			return fmt.Errorf("seed %d (%s): baseline workload did not finish", seed, modeTag)
		}
		e1 := sys.Events()
		totalOps := len(ack.ops)
		sys.Shutdown()
		if e1 <= e0+1 {
			return fmt.Errorf("seed %d (%s): empty crashable region [%d,%d]", seed, modeTag, e0, e1)
		}

		// Event-index sweep: evenly spaced points strictly inside (e0, e1).
		failsBefore := len(res.Failures)
		for i := 0; i < cfg.Points; i++ {
			k := e0 + uint64(i+1)*(e1-e0)/uint64(cfg.Points+1)
			label := fmt.Sprintf("seed%d@event%d/%s", seed, k, modeTag)
			sys, ack, _, err := buildSweepSystem(cfg, seed)
			if err != nil {
				return err
			}
			if !sys.RunToEvent(k, 128*cfg.MaxRun) {
				sys.Shutdown()
				res.Failures = append(res.Failures, fmt.Sprintf("%s: halt not reached", label))
				continue
			}
			var final *wafl.System
			res.Failures, final = crashCycle(sys, ackedVerifier(ack.freeze()), label, res.Failures)
			res.PointsRun++
			if final != nil {
				final.Shutdown()
			} else {
				sys.Shutdown()
			}
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", seed), "event-index/" + modeTag, fmt.Sprintf("%d", cfg.Points),
			fmt.Sprintf("%d", totalOps), fmt.Sprintf("%d", len(res.Failures)-failsBefore),
		})
	}

	// CP phase-boundary sweep on the first seed: crash exactly at the j-th
	// phase boundary hit, for j = 1..Phases.
	if cfg.Phases > 0 && len(cfg.Seeds) > 0 {
		seed := cfg.Seeds[0]
		failsBefore := len(res.Failures)
		points := 0
		for j := 1; j <= cfg.Phases; j++ {
			sys, ack, _, err := buildSweepSystem(cfg, seed)
			if err != nil {
				return err
			}
			hits, target := 0, j
			var phaseName string
			sys.SetCPPhaseHook(func(phase string) bool {
				hits++
				if hits == target {
					phaseName = phase
					sys.RequestHalt()
					return true
				}
				return false
			})
			halted := false
			for i := 0; i < 64 && ack.done < cfg.Clients; i++ {
				sys.Run(cfg.MaxRun)
				if sys.Halted() {
					halted = true
					break
				}
			}
			if !halted {
				// The workload finished before its j-th boundary: the
				// phase space is exhausted.
				sys.Shutdown()
				break
			}
			label := fmt.Sprintf("seed%d@phase%d(%s)/%s", seed, j, phaseName, modeTag)
			var final *wafl.System
			res.Failures, final = crashCycle(sys, ackedVerifier(ack.freeze()), label, res.Failures)
			res.PointsRun++
			points++
			if final != nil {
				final.Shutdown()
			} else {
				sys.Shutdown()
			}
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", seed), "cp-phase/" + modeTag, fmt.Sprintf("%d", points),
			"-", fmt.Sprintf("%d", len(res.Failures)-failsBefore),
		})
	}
	return nil
}

// The clone-ops crash script writes four disjoint FBN spans of one base
// file so every recovery leg can attribute each block to a script step:
// the frozen image (pre-snapshot), parent churn (post-snapshot, reverted
// by SnapRestore), clone-side divergence, and post-restore writes.
const (
	cloneImgBlocks  = 64 // fbn 0..63: pre-snapshot writes, the frozen image
	cloneChurnBase  = 64 // fbn 64..95: post-snapshot parent churn
	cloneChurnSpan  = 32 //   (block 64 doubles as the restore-leg probe)
	cloneWriteBase  = 96 // fbn 96..111: clone-side divergence after the bind
	cloneWriteSpan  = 16
	clonePostBase   = 128 // fbn 128..135: parent writes after the restore ack
	clonePostSpan   = 8
	cloneSampleStep = 8 // image sampling stride for per-leg verification
)

// cloneAckState is the clone-window script's acknowledged progress, copied
// by value at the instant of the crash so verification sees exactly the
// contract the crashed system had acknowledged.
type cloneAckState struct {
	vol, cloneVol           int
	ino, snapID             uint64
	churnAcked              int // churn blocks acked before the crash
	cloneAcked              int // clone-divergence blocks acked
	postAcked               int // post-restore blocks acked
	cloneIssued, splitAcked bool
	restoreIssued, restored bool
	done                    bool
}

// cloneVerifier builds the per-leg oracle for one clone-ops crash point.
func cloneVerifier(st cloneAckState) verifyFn {
	return func(sys *wafl.System, label string, fails []string) []string {
		add := func(msg string) {
			if len(fails) < 40 {
				fails = append(fails, fmt.Sprintf("%s: %s", label, msg))
			}
		}
		quiesced := strings.HasSuffix(label, "/quiesced")

		// The snapshot was acked before the window opened: it must exist on
		// every leg and still serve its exact frozen image (data inside the
		// image span, a hole where only post-snapshot churn wrote).
		if !sys.SnapshotExists(st.vol, st.snapID) {
			add(fmt.Sprintf("acked snapshot %d lost", st.snapID))
		} else {
			for fbn := wafl.FBN(0); fbn < cloneImgBlocks; fbn += cloneSampleStep {
				if err := sys.SnapVerifyAgainst(st.vol, st.snapID, st.ino, fbn, true); err != nil {
					add(fmt.Sprintf("snapshot image: %v", err))
					break
				}
			}
			if err := sys.SnapVerifyAgainst(st.vol, st.snapID, st.ino, cloneChurnBase, false); err != nil {
				add(fmt.Sprintf("snapshot image: %v", err))
			}
		}

		// Parent, image span: in the snapshot and never deleted, so it is
		// data whether or not the revert committed.
		for fbn := wafl.FBN(0); fbn < cloneImgBlocks; fbn += cloneSampleStep {
			if err := sys.VerifyAgainst(st.vol, st.ino, fbn); err != nil {
				add(fmt.Sprintf("parent image span: %v", err))
				break
			}
		}

		// Parent, churn span: the probe block decides which restore leg this
		// recovery landed on — a hole iff the revert committed. An acked
		// restore must have committed, and whichever leg holds, the whole
		// churn span must agree with the probe: that is the all-or-nothing
		// check on SnapRestore.
		restored := sys.VerifyRead(st.vol, st.ino, cloneChurnBase) == nil
		if st.restored && !restored {
			add("acked SnapRestore lost")
		}
		if !st.restoreIssued && restored {
			add("restore applied but never issued")
		}
		for b := 0; b < st.churnAcked; b++ {
			fbn := wafl.FBN(cloneChurnBase + b)
			if restored {
				if sys.VerifyRead(st.vol, st.ino, fbn) != nil {
					add(fmt.Sprintf("torn restore: churn fbn %d survived the revert", fbn))
					break
				}
			} else if err := sys.VerifyAgainst(st.vol, st.ino, fbn); err != nil {
				add(fmt.Sprintf("torn restore: %v", err))
				break
			}
		}
		for b := 0; b < st.postAcked; b++ {
			if err := sys.VerifyAgainst(st.vol, st.ino, wafl.FBN(clonePostBase+b)); err != nil {
				add(fmt.Sprintf("acked post-restore write lost: %v", err))
				break
			}
		}

		// Clone content: the frozen image plus the acked divergence writes,
		// and none of the parent's post-snapshot churn. Holds at the same
		// address whether the clone is still summary-held or a completed
		// split already promoted it to a normal volume.
		checkClone := func(cv, cloneWrites int) {
			for fbn := wafl.FBN(0); fbn < cloneImgBlocks; fbn += cloneSampleStep {
				if err := sys.VerifyAgainst(cv, st.ino, fbn); err != nil {
					add(fmt.Sprintf("clone base image: %v", err))
					return
				}
			}
			if sys.VerifyRead(cv, st.ino, cloneChurnBase) != nil {
				add("clone leaked post-snapshot parent churn")
			}
			for b := 0; b < cloneWrites; b++ {
				if err := sys.VerifyAgainst(cv, st.ino, wafl.FBN(cloneWriteBase+b)); err != nil {
					add(fmt.Sprintf("acked clone write lost: %v", err))
					return
				}
			}
		}
		if st.cloneVol >= 0 {
			// The create acked, so the bind had committed: the clone serves
			// its contract on every leg, including after the parent restore.
			checkClone(st.cloneVol, st.cloneAcked)
		} else if st.cloneIssued {
			// Issued but unacked: the logged intent may have replayed. Any
			// clone recovery surfaces must be pending or bound — and once
			// bound (mandatory after quiesce) it serves exactly the frozen
			// image, since no divergence write was issued before the ack.
			for _, cv := range sys.CloneVolumes() {
				if !sys.CloneBound(cv) {
					if quiesced {
						add(fmt.Sprintf("replayed clone %d still unbound after quiesce", cv))
					}
					continue
				}
				checkClone(cv, 0)
			}
		}
		return fails
	}
}

// cloneCrashPoints runs the scripted clone window once per boundary index
// j = 1..ClonePoints, crashing at the j-th CP phase boundary hit after the
// window opens and driving the full crash → double-crash → quiesce cycle
// against the clone oracle.
func cloneCrashPoints(cfg CrashSweepConfig, tab *Table, res *CrashSweepResult) error {
	c := cfg.Base
	if len(cfg.Seeds) > 0 {
		c.Seed = cfg.Seeds[0]
	}
	c.CloneSlots = 2
	points := cfg.ClonePoints
	if points <= 0 {
		points = 12
	}
	failsBefore := len(res.Failures)
	ran := 0
	for j := 1; j <= points; j++ {
		sys, err := wafl.NewSystem(c)
		if err != nil {
			return err
		}
		ino := sys.CreateFileDirect(0, 256)
		if err := sys.Flush(); err != nil {
			sys.Shutdown()
			return fmt.Errorf("cloneops setup flush: %w", err)
		}
		st := &cloneAckState{vol: 0, cloneVol: -1, ino: ino}
		window := false
		sys.ClientThread("cloneops", func(cc *wafl.ClientCtx) {
			cc.Write(st.vol, ino, 0, cloneImgBlocks)
			st.snapID = cc.SnapCreate(st.vol)
			for b := 0; b < cloneChurnSpan; b++ {
				cc.Write(st.vol, ino, wafl.FBN(cloneChurnBase+b), 1)
				st.churnAcked++
			}
			window = true
			st.cloneIssued = true
			if cv, ok := cc.CloneCreate(st.vol, st.snapID); ok {
				st.cloneVol = cv
				for b := 0; b < cloneWriteSpan; b++ {
					cc.Write(cv, ino, wafl.FBN(cloneWriteBase+b), 1)
					st.cloneAcked++
				}
				if cc.CloneSplit(cv) {
					st.splitAcked = true
				}
			}
			st.restoreIssued = true
			if cc.SnapRestore(st.vol, st.snapID) {
				st.restored = true
				for b := 0; b < clonePostSpan; b++ {
					cc.Write(st.vol, ino, wafl.FBN(clonePostBase+b), 1)
					st.postAcked++
				}
			}
			st.done = true
		})
		hits, target := 0, j
		sys.SetCPPhaseHook(func(phase string) bool {
			if !window {
				return false
			}
			hits++
			if hits == target {
				sys.RequestHalt()
				return true
			}
			return false
		})
		halted := false
		for i := 0; i < 64 && !halted; i++ {
			sys.Run(cfg.MaxRun)
			halted = sys.Halted()
			if st.done && !halted {
				// The script finished; give the tail CPs (split completion,
				// final commits) a few more segments to reach boundary j,
				// then treat the window's boundary space as exhausted.
				for k := 0; k < 4 && !halted; k++ {
					sys.Run(cfg.MaxRun)
					halted = sys.Halted()
				}
				break
			}
		}
		if !halted {
			sys.Shutdown()
			break
		}
		label := fmt.Sprintf("cloneops@boundary%d", j)
		var final *wafl.System
		res.Failures, final = crashCycle(sys, cloneVerifier(*st), label, res.Failures)
		res.PointsRun++
		ran++
		if final != nil {
			final.Shutdown()
		} else {
			sys.Shutdown()
		}
	}
	tab.Rows = append(tab.Rows, []string{
		fmt.Sprintf("%d", c.Seed), "clone-ops", fmt.Sprintf("%d", ran),
		"-", fmt.Sprintf("%d", len(res.Failures)-failsBefore),
	})
	return nil
}
