package harness

import (
	"testing"

	"wafl"
)

// TestClusterSweepSmall runs a miniature member-crash sweep — one seed, a
// few event-index points on a two-member cluster — end to end. The full
// sweep is `make clustercheck`; this keeps `go test ./...` coverage of the
// cluster harness cheap.
func TestClusterSweepSmall(t *testing.T) {
	cfg := DefaultClusterSweep()
	cfg.Seeds = []int64{1}
	cfg.Points = 3
	cfg.ClientsPerMember = 2
	cfg.OpsPerClient = 60
	tab, res, err := ClusterSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PointsRun != 3 {
		t.Fatalf("ran %d points, want 3", res.PointsRun)
	}
	if !res.OK() {
		t.Fatalf("sweep failed:\n%s", tab.String())
	}
}

// TestFlexgroupSmall runs a two-width scaling sweep on a small cluster and
// checks that two members beat one by a clear margin (the full 1/2/4 curve
// with the paper-shaped config is `waflbench -exp flexgroup`).
func TestFlexgroupSmall(t *testing.T) {
	base := DefaultCrashSweep().Base // small, fast server shape
	base.Faults = wafl.FaultConfig{} // no fault injection in a perf sweep
	base.NVRAMHalfBytes = 2 << 20
	cfg := FlexgroupConfig{
		Base:             base,
		MemberCounts:     []int{1, 2},
		ClientsPerMember: 8,
		FilesPerClient:   4,
		FileBlocks:       64,
		OpBlocks:         1,
		Warmup:           20 * wafl.Millisecond,
		Window:           80 * wafl.Millisecond,
	}
	tab, res, bench, err := Flexgroup(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || len(bench) != 2 {
		t.Fatalf("want 2 widths, got %d results / %d bench entries", len(res), len(bench))
	}
	if res[1].Speedup < 1.4 {
		t.Fatalf("2 members only %.2fx the 1-member throughput:\n%s", res[1].Speedup, tab.String())
	}
	if got := len(res[1].PerMember); got != 2 {
		t.Fatalf("2-member run reports %d per-member windows", got)
	}
	for i, p := range res[1].PerMember {
		if p.Ops == 0 {
			t.Fatalf("member %d served no ops in the window:\n%s", i, tab.String())
		}
	}
	if bench[1].Name != "manyfile-members2" || bench[1].Mode != "flexgroup" {
		t.Fatalf("bench entry misnamed: %+v", bench[1])
	}
}
