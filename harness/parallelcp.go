package harness

import (
	"fmt"

	"wafl"
	"wafl/workload"
)

// ParallelCP measures the tentpole of parallel consistency points: the same
// workload run with the serial CP engine and with per-volume CP phases
// fanned across the Volume affinities. NVRAM is shrunk so the CP cadence is
// the bottleneck — client writes stall on log-half exhaustion whenever the
// CP tail is too slow — which makes CP duration directly visible as client
// NVRAM-stall time and back-to-back CP counts.
func ParallelCP(rc RunConfig) (Table, []BenchResult, error) {
	t := Table{
		ID:    "parallelcp",
		Title: "Parallel vs serial consistency points under NVRAM pressure",
		Headers: []string{"workload", "mode", "ops/s", "MB/s", "lat p99",
			"cps", "cp avg", "back2back", "stalls", "stall time"},
	}
	var out []BenchResult

	workloads := []struct {
		name   string
		attach func(cfg *wafl.Config) func(*wafl.System)
	}{
		{"manyfile", func(cfg *wafl.Config) func(*wafl.System) {
			w := workload.DefaultManyFile()
			cfg.Volumes = w.Volumes
			return w.Attach
		}},
		{"randwrite", func(cfg *wafl.Config) func(*wafl.System) {
			w := workload.DefaultRandWrite()
			cfg.Volumes = w.Volumes
			return w.Attach
		}},
		{"agedvol", func(cfg *wafl.Config) func(*wafl.System) {
			w := workload.DefaultAgedVol()
			cfg.Volumes = w.Volumes
			cfg.VolumeBlocks = 1 << 18 // 8 vregions; aged to ~84% occupancy
			cfg.DriveBlocks = 131072   // physical headroom for the aged image
			return w.Attach
		}},
	}
	modes := []struct {
		name     string
		parallel bool
	}{
		{"serial", false},
		{"parallel", true},
	}
	for _, w := range workloads {
		var pair []BenchResult
		for _, m := range modes {
			cfg := rc.Base
			cfg.NVRAMHalfBytes = 2 << 20 // CP-bound: the log half fills fast
			cfg.Allocator.ParallelCP = m.parallel
			attach := w.attach(&cfg)
			sys, err := wafl.NewSystem(cfg)
			if err != nil {
				return t, out, err
			}
			attach(sys)
			sys.Run(rc.Warmup)
			c0, s0 := sys.Counters(), sys.CPStats()
			res := sys.Measure(0, rc.Window)
			c1, s1 := sys.Counters(), sys.CPStats()
			sys.Shutdown()
			b := benchResultFrom("parallelcp/"+w.name, m.name, res, c0, c1)
			addCPStats(&b, s0, s1)
			pair = append(pair, b)
			out = append(out, b)
			t.Rows = append(t.Rows, []string{
				w.name, m.name, f0(b.OpsPerSec), f2(b.MBPerSec), ms(res.LatP99),
				fmt.Sprintf("%d", b.CPs), fmt.Sprintf("%.0fus", b.CPAvgUs),
				fmt.Sprintf("%d", b.BackToBack),
				fmt.Sprintf("%d", b.Stalls), ms(res.StallTime),
			})
		}
		if len(pair) == 2 && pair[1].CPAvgUs > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s: cp avg %.0fus -> %.0fus (%.2fx), stall time %.1fms -> %.1fms, back2back %d -> %d",
				w.name, pair[0].CPAvgUs, pair[1].CPAvgUs,
				pair[0].CPAvgUs/pair[1].CPAvgUs,
				pair[0].StallTimeUs/1000, pair[1].StallTimeUs/1000,
				pair[0].BackToBack, pair[1].BackToBack))
		}
	}
	return t, out, nil
}
