package harness

import (
	"fmt"

	"wafl"
	"wafl/workload"
)

// CloneFleet is the clone-heavy variant of the aged-volume benchmark: two
// dense snapshotted parents fan into a fleet of aged writable clones, and
// measurement runs fleet-wide random writers while per-parent managers
// cycle churn → instant SnapRestore and a background split peels one clone
// off. Every clone write is a COW against a summary-held base block and
// every parent map is pinned by both the base snapshot and the fleet's
// holds, so bucket fills face the worst free-index shape the subsystem can
// produce — compared, like agedvol, between the legacy bitmap scan and
// hierarchical free accounting. The restore columns are the O(metadata)
// evidence: blocks rewritten per revert against the volume's block count.
func CloneFleet(rc RunConfig) (Table, []BenchResult, error) {
	t := Table{
		ID:    "clonefleet",
		Title: "Aged clone fleet: COW divergence + instant restore churn vs free-index mode",
		Headers: []string{"mode", "ops/s", "MB/s", "lat p50", "lat p99",
			"words/vbucket", "clone-held", "restores", "meta-blk/restore", "splits", "infra cores"},
	}
	var out []BenchResult

	w := workload.DefaultCloneFleet()
	modes := []struct {
		name string
		hier bool
	}{
		{"legacy scan", false},
		{"hierarchical", true},
	}
	for _, m := range modes {
		cfg := rc.Base
		cfg.Volumes = w.Volumes
		cfg.CloneSlots = w.Slots()
		cfg.VolumeBlocks = 1 << 18 // same aged shape as agedvol
		cfg.DriveBlocks = 131072
		cfg.Allocator.HierarchicalFree = m.hier
		sys, err := wafl.NewSystem(cfg)
		if err != nil {
			return t, out, err
		}
		w.Attach(sys) // prefill + fan-out + divergence aging in simulated time
		sys.Run(rc.Warmup)
		c0 := sys.Counters()
		res := sys.Measure(0, rc.Window)
		c1 := sys.Counters()
		cs := sys.CloneStats()
		sys.Shutdown()
		b := benchResultFrom("clonefleet", m.name, res, c0, c1)
		b.CloneBinds = cs.Binds
		b.CloneHeld = cs.CloneHeld
		b.SplitsDone = cs.SplitsDone
		b.SplitCopied = cs.SplitCopied
		b.Restores = cs.Restores
		b.RestoreFreed = cs.RestoreFreed
		b.RestoreBlocks = cs.RestoreBlocks
		if cs.Restores > 0 {
			b.RestoreMetaPerOp = float64(cs.RestoreBlocks) / float64(cs.Restores)
			b.RestoreMetaPerVol = b.RestoreMetaPerOp / float64(cfg.VolumeBlocks)
		}
		out = append(out, b)
		t.Rows = append(t.Rows, []string{
			m.name, f0(b.OpsPerSec), f2(b.MBPerSec), ms(res.LatP50), ms(res.LatP99),
			f2(b.FillWordsPerVBucket), fmt.Sprintf("%d", b.CloneHeld),
			fmt.Sprintf("%d", b.Restores), f0(b.RestoreMetaPerOp),
			fmt.Sprintf("%d", b.SplitsDone), f2(b.InfraCores),
		})
	}
	if len(out) == 2 {
		if out[1].FillWordsPerVBucket > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"fill words per installed vbucket under clone holds: %.1f -> %.1f (%.1fx reduction)",
				out[0].FillWordsPerVBucket, out[1].FillWordsPerVBucket,
				out[0].FillWordsPerVBucket/out[1].FillWordsPerVBucket))
		}
		if out[1].Restores > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"SnapRestore is O(metadata): %.0f blocks rewritten per revert of a %d-block volume (%.2f%%), zero data copies",
				out[1].RestoreMetaPerOp, 1<<18, 100*out[1].RestoreMetaPerVol))
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"%d clones per run (%d parents x %d), aged %d divergence rounds; %d background split(s)",
		w.Slots(), w.Volumes, w.ClonesPerVol, w.AgeRounds, w.SplitClones))
	return t, out, nil
}
