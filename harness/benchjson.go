package harness

import (
	"encoding/json"
	"os"

	"wafl"
)

// BenchResult is one machine-readable benchmark measurement, emitted by
// waflbench -benchjson so the perf trajectory can be tracked across commits.
// Counter fields are deltas over the measurement window.
type BenchResult struct {
	Name                string  `json:"name"`
	Mode                string  `json:"mode,omitempty"`
	OpsPerSec           float64 `json:"ops_per_sec"`
	MBPerSec            float64 `json:"mb_per_sec"`
	LatP50Us            float64 `json:"lat_p50_us"`
	LatP99Us            float64 `json:"lat_p99_us"`
	LatP999Us           float64 `json:"lat_p999_us,omitempty"`
	BulkP999Us          float64 `json:"bulk_p999_us,omitempty"`
	ShedOps             uint64  `json:"shed_ops,omitempty"`
	AdmitDelayUs        float64 `json:"admit_delay_us,omitempty"`
	BCacheHits          uint64  `json:"bcache_hits,omitempty"`
	BCacheMisses        uint64  `json:"bcache_misses,omitempty"`
	WallocCores         float64 `json:"walloc_cores"` // cleaner + infra
	InfraCores          float64 `json:"infra_cores"`
	CPs                 uint64  `json:"cps"`
	Stalls              uint64  `json:"stalls,omitempty"`
	StallTimeUs         float64 `json:"stall_time_us,omitempty"`
	CPAvgUs             float64 `json:"cp_avg_us,omitempty"`
	CPLongestUs         float64 `json:"cp_longest_us,omitempty"`
	BackToBack          uint64  `json:"back_to_back,omitempty"`
	FillWords           uint64  `json:"fill_words"`
	VFillWords          uint64  `json:"vfill_words"`
	VBucketsFilled      uint64  `json:"vbuckets_filled"`
	FillWordsPerVBucket float64 `json:"fill_words_per_vbucket"`
	GetWaits            uint64  `json:"get_waits"`

	// Clone/restore fields (clonefleet experiment).
	CloneBinds        uint64  `json:"clone_binds,omitempty"`
	CloneHeld         uint64  `json:"clone_held_blocks,omitempty"`
	SplitsDone        uint64  `json:"splits_done,omitempty"`
	SplitCopied       uint64  `json:"split_copied_blocks,omitempty"`
	Restores          uint64  `json:"restores,omitempty"`
	RestoreFreed      uint64  `json:"restore_freed_blocks,omitempty"`
	RestoreBlocks     uint64  `json:"restore_metadata_blocks,omitempty"`
	RestoreMetaPerOp  float64 `json:"restore_metadata_per_op,omitempty"`
	RestoreMetaPerVol float64 `json:"restore_metadata_vs_volume,omitempty"`
}

// benchResultFrom assembles a BenchResult from a window's Results and the
// counter snapshots taken at its edges.
func benchResultFrom(name, mode string, res wafl.Results, c0, c1 wafl.InfraCounters) BenchResult {
	b := BenchResult{
		Name:           name,
		Mode:           mode,
		OpsPerSec:      res.OpsPerSec,
		MBPerSec:       res.MBPerSec,
		LatP50Us:       res.LatP50.Micros(),
		LatP99Us:       res.LatP99.Micros(),
		WallocCores:    res.Cores.WriteAllocation(),
		InfraCores:     res.Cores.Infra,
		CPs:            res.CPs,
		Stalls:         res.Stalls,
		StallTimeUs:    res.StallTime.Micros(),
		FillWords:      c1.FillWords - c0.FillWords,
		VFillWords:     c1.VFillWords - c0.VFillWords,
		VBucketsFilled: c1.VBucketsFilled - c0.VBucketsFilled,
		GetWaits:       c1.GetWaits - c0.GetWaits,
	}
	if b.VBucketsFilled > 0 {
		b.FillWordsPerVBucket = float64(b.VFillWords) / float64(b.VBucketsFilled)
	}
	return b
}

// addCPStats fills the CP-engine delta fields from CPStats snapshots taken
// at the measurement window's edges.
func addCPStats(b *BenchResult, s0, s1 wafl.CPStats) {
	if cps := s1.CPs - s0.CPs; cps > 0 {
		b.CPAvgUs = wafl.Duration(s1.TotalDuration-s0.TotalDuration).Micros() / float64(cps)
	}
	b.CPLongestUs = s1.LongestDuration.Micros()
	b.BackToBack = s1.BackToBack - s0.BackToBack
}

// WriteBenchJSON writes the collected results to path as indented JSON.
func WriteBenchJSON(path string, results []BenchResult) error {
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
