package harness

import (
	"fmt"

	"wafl"
	"wafl/workload"
)

// AgedVolume measures steady-state bucket fills on an aged, snapshotted
// volume — prefilled dense, fragmented by overwrite rounds under snapshot
// churn, with a pinned base snapshot keeping the fragmentation alive — and
// compares the legacy scan path (region recounts + word-by-word FindFree
// with per-bit summary rejection) against hierarchical free-space
// accounting (per-vregion counters + free-words summary bitmap). The
// headline metric is volume fill words charged per installed virtual
// bucket: the simulated CPU the infrastructure burns scanning bitmaps for
// each bucket of allocatable VVBNs it delivers.
func AgedVolume(rc RunConfig) (Table, []BenchResult, error) {
	t := Table{
		ID:    "agedvol",
		Title: "Aged snapshotted volume: legacy bitmap scan vs hierarchical free accounting",
		Headers: []string{"mode", "ops/s", "MB/s", "lat p50", "lat p99",
			"vfillwords", "vbuckets", "words/vbucket", "infra cores", "getwaits"},
	}
	var out []BenchResult

	w := workload.DefaultAgedVol()
	modes := []struct {
		name string
		hier bool
	}{
		{"legacy scan", false},
		{"hierarchical", true},
	}
	for _, m := range modes {
		cfg := rc.Base
		cfg.Volumes = w.Volumes
		cfg.VolumeBlocks = 1 << 18 // 8 vregions; aged to ~84% occupancy
		cfg.DriveBlocks = 131072   // physical headroom for the aged image
		cfg.Allocator.HierarchicalFree = m.hier
		sys, err := wafl.NewSystem(cfg)
		if err != nil {
			return t, out, err
		}
		w.Attach(sys) // prefill + age in simulated time
		sys.Run(rc.Warmup)
		c0 := sys.Counters()
		res := sys.Measure(0, rc.Window)
		c1 := sys.Counters()
		sys.Shutdown()
		b := benchResultFrom("agedvol", m.name, res, c0, c1)
		out = append(out, b)
		t.Rows = append(t.Rows, []string{
			m.name, f0(b.OpsPerSec), f2(b.MBPerSec), ms(res.LatP50), ms(res.LatP99),
			fmt.Sprintf("%d", b.VFillWords), fmt.Sprintf("%d", b.VBucketsFilled),
			f2(b.FillWordsPerVBucket), f2(b.InfraCores), fmt.Sprintf("%d", b.GetWaits),
		})
	}
	if len(out) == 2 && out[1].FillWordsPerVBucket > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"fill words per installed vbucket: %.1f -> %.1f (%.1fx reduction)",
			out[0].FillWordsPerVBucket, out[1].FillWordsPerVBucket,
			out[0].FillWordsPerVBucket/out[1].FillWordsPerVBucket))
	}
	t.Notes = append(t.Notes,
		"both volumes ~82% occupied (active + snapshot-held) with a pinned base snapshot and a rotating 2-deep ring")
	return t, out, nil
}
