// Package harness runs the paper's experiments (§V, Figures 4-9 and the
// §V-C batching result) against the simulated storage server and renders
// the same tables/series the paper reports. Each experiment function
// returns both machine-readable results (for tests and regression checks)
// and a formatted table.
package harness

import (
	"fmt"
	"os"
	"strings"

	"wafl"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Attacher is any workload that can attach clients to a system (the
// workload package's generators all implement it).
type Attacher interface {
	Attach(sys *wafl.System)
}

// RunConfig bundles the common experiment parameters.
type RunConfig struct {
	Base   wafl.Config
	Warmup wafl.Duration
	Window wafl.Duration
}

// DefaultRun returns the standard measurement setup: the paper's 20-core
// SSD system, measured over a 400ms window after 200ms warmup.
func DefaultRun() RunConfig {
	return RunConfig{
		Base:   wafl.DefaultConfig(),
		Warmup: 200 * wafl.Millisecond,
		Window: 400 * wafl.Millisecond,
	}
}

// tracing holds the package-level trace hook state set by EnableTracing.
var tracing struct {
	prefix string
	events int
	seq    int
}

// EnableTracing makes every subsequent Measure run with the observability
// spine on, dumping one Chrome trace-event JSON timeline per measurement to
// <prefix>-NNN.json (numbered in run order). events bounds the trace ring
// buffer; 0 selects the default. Tracing never changes measured results.
func EnableTracing(prefix string, events int) {
	tracing.prefix = prefix
	tracing.events = events
	tracing.seq = 0
}

// DisableTracing turns the Measure trace hook back off.
func DisableTracing() { tracing.prefix = "" }

// Measure builds a system with cfg, attaches the workload, measures, and
// tears the system down (the returned *System is only good for reading
// statistics). With EnableTracing active, the run is traced and its
// timeline written before teardown.
func Measure(cfg wafl.Config, w Attacher, warmup, window wafl.Duration) (wafl.Results, *wafl.System, error) {
	if tracing.prefix != "" {
		cfg.Trace = true
		cfg.TraceEvents = tracing.events
	}
	sys, err := wafl.NewSystem(cfg)
	if err != nil {
		return wafl.Results{}, nil, err
	}
	w.Attach(sys)
	res := sys.Measure(warmup, window)
	if tracing.prefix != "" {
		name := fmt.Sprintf("%s-%03d.json", tracing.prefix, tracing.seq)
		tracing.seq++
		if f, err := os.Create(name); err != nil {
			fmt.Fprintln(os.Stderr, "harness: trace:", err)
		} else {
			if err := sys.WriteTrace(f); err != nil {
				fmt.Fprintln(os.Stderr, "harness: trace:", err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "harness: wrote trace %s (%d events)\n", name, sys.Tracer().Len())
		}
	}
	sys.Shutdown()
	return res, sys, nil
}

// Knee finds the knee of a load/latency curve by the half-latency rule
// (Patel, SIGMETRICS PER 2015, the paper's reference [11]): the highest
// load whose latency does not exceed twice the low-load base latency.
// Returns the index of the knee point.
func Knee(latencies []wafl.Duration) int {
	if len(latencies) == 0 {
		return -1
	}
	base := latencies[0]
	knee := 0
	for i, l := range latencies {
		if l <= 2*base {
			knee = i
		}
	}
	return knee
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func pct(v, base float64) string {
	return fmt.Sprintf("%+.0f%%", (v/base-1)*100)
}
func ms(d wafl.Duration) string { return fmt.Sprintf("%.3fms", d.Millis()) }
func us(d wafl.Duration) string { return fmt.Sprintf("%.1fus", d.Micros()) }
